// Tristate numbers: the verifier's abstract domain for tracking which bits
// of a register are known. Each tnum is (value, mask): mask bits are
// unknown, and for every known bit the corresponding value bit holds its
// value (value & mask == 0 is the representation invariant). The algebra
// follows kernel/bpf/tnum.c, whose soundness and precision are analysed in
// Vishwanathan et al., "Sound, Precise, and Fast Abstract Interpretation
// with Tristate Numbers" (CGO '22) — reference [50] of the paper.
#pragma once

#include <string>

#include "src/xbase/types.h"

namespace ebpf {

struct Tnum {
  xbase::u64 value = 0;
  xbase::u64 mask = 0;

  bool IsConst() const { return mask == 0; }
  bool IsUnknown() const { return mask == ~xbase::u64{0}; }
  // True if this tnum admits the concrete value `v`.
  bool Contains(xbase::u64 v) const { return ((v ^ value) & ~mask) == 0; }

  bool operator==(const Tnum&) const = default;

  std::string ToString() const;
};

inline constexpr Tnum TnumConst(xbase::u64 value) { return Tnum{value, 0}; }
inline constexpr Tnum TnumUnknown() { return Tnum{0, ~xbase::u64{0}}; }

// Smallest tnum containing every value in [min, max].
Tnum TnumRange(xbase::u64 min, xbase::u64 max);

Tnum TnumAdd(Tnum a, Tnum b);
Tnum TnumSub(Tnum a, Tnum b);
Tnum TnumAnd(Tnum a, Tnum b);
Tnum TnumOr(Tnum a, Tnum b);
Tnum TnumXor(Tnum a, Tnum b);
Tnum TnumMul(Tnum a, Tnum b);
Tnum TnumLshift(Tnum a, xbase::u8 shift);
Tnum TnumRshift(Tnum a, xbase::u8 shift);
Tnum TnumArshift(Tnum a, xbase::u8 shift, xbase::u8 insn_bitness);

// Greatest lower bound: the tnum whose concretization is (approximately) the
// intersection; callers must know a and b are consistent.
Tnum TnumIntersect(Tnum a, Tnum b);

// Truncate to `size` bytes.
Tnum TnumCast(Tnum a, xbase::u8 size);

bool TnumIsAligned(Tnum a, xbase::u64 size);

// True if b is a subset of a (every value b admits, a admits).
bool TnumIn(Tnum a, Tnum b);

// 32-bit subregister views.
Tnum TnumSubreg(Tnum a);
Tnum TnumClearSubreg(Tnum a);
Tnum TnumWithSubreg(Tnum reg, Tnum subreg);
Tnum TnumConstSubreg(Tnum reg, xbase::u32 value);

}  // namespace ebpf

#include "src/ebpf/interp.h"

#include <algorithm>
#include <cstring>

#include "src/ebpf/disasm.h"
#include "src/ebpf/interp_internal.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

using simkern::Addr;
using xbase::StrFormat;

namespace internal {

xbase::Result<ExecResult> Execution::Run(Addr ctx_addr) {
  ctx_addr_ = ctx_addr;
  constexpr xbase::usize kStackBytes =
      static_cast<xbase::usize>(kFrameBytes) * kMaxRuntimeFrames;
  // Steady state reuses the Bpf-cached stack mapping (re-zeroed on lease);
  // a fresh region is mapped only when the cache is held by a concurrent
  // execution.
  stack_base_ = bpf_.AcquireExecStack(kStackBytes);
  if (stack_base_ != 0) {
    leased_stack_ = true;
  } else {
    XB_ASSIGN_OR_RETURN(
        stack_base_,
        kernel_.mem().Map(kStackBytes, simkern::MemPerm::kReadWrite,
                          simkern::RegionKind::kExtensionStack, "bpf-stack"));
  }
  // kCpuInherit runs on the calling thread's bound CPU; an explicit cpu
  // rebinds the thread for the duration of the run (and restores after, so
  // harnesses that pin executions to a CPU keep their thread's binding).
  const bool rebind = opts_.cpu != kCpuInherit;
  const u32 prev_cpu = rebind ? kernel_.current_cpu() : 0;
  if (rebind) {
    kernel_.set_current_cpu(opts_.cpu);
  }
  // Resolve the bound CPU's clock cell once; Charge() runs per dispatched
  // micro-op and must not pay the TLS resolution every time.
  clock_cell_ = &kernel_.clock().BoundCell();
  if (opts_.wrap_in_rcu) {
    kernel_.rcu().ReadLock(kernel_.clock(), "bpf-prog");
  }

  u64 regs[kNumRegs] = {};
  regs[R1] = ctx_addr;
  regs[R10] = stack_base_ + kFrameBytes;  // frame 0 top

  auto result = opts_.engine == ExecEngine::kLegacy
                    ? RunFrom(0, regs, /*depth=*/0)
                    : RunThreaded(0, regs, /*depth=*/0);

  if (opts_.wrap_in_rcu) {
    (void)kernel_.rcu().ReadUnlock();
  }
  if (rebind) {
    kernel_.set_current_cpu(prev_cpu);
  }
  if (!result.ok()) {
    return result.status();
  }
  stats_.open_refs_at_exit = open_refs_.size();
  ExecResult out;
  out.r0 = result.value();
  out.stats = stats_;
  return out;
}

xbase::Result<u64> Execution::RunFrom(u32 pc, u64* regs, u32 depth) {
  stats_.max_frame_depth = std::max(stats_.max_frame_depth, depth);

  // Saved caller contexts for bpf2bpf calls within this RunFrom activation.
  struct SavedFrame {
    u64 regs[kNumRegs];
    u32 return_pc;
  };
  std::vector<SavedFrame> call_stack;
  u32 bpf_frame = depth;

  while (true) {
    if (pc >= insns_->size()) {
      return RuntimeFault(xbase::KernelFault(
          StrFormat("bpf: pc %u out of range (JIT image corruption?)", pc)));
    }
    ++stats_.insns;
    Charge(simkern::kCostPerInsnNs);
    if ((stats_.insns & 0xfff) == 0) {
      kernel_.rcu().CheckStall(kernel_.clock());
    }
    if (stats_.insns > opts_.max_insns) {
      return xbase::Terminated(StrFormat(
          "harness insn cap (%llu) exceeded — the kernel itself would keep "
          "running",
          static_cast<unsigned long long>(opts_.max_insns)));
    }

    const Insn insn = (*insns_)[pc];
    if (opts_.tracer != nullptr) {
      opts_.tracer->OnInsn(pc, regs);
    }
    const u8 cls = insn.Class();

    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        const bool is64 = cls == BPF_ALU64;
        const u8 op = insn.AluOp();
        u64 src = insn.UsesRegSrc()
                      ? regs[insn.src]
                      : (is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                              : static_cast<u32>(insn.imm));
        u64& dst = regs[insn.dst];
        if (!is64) {
          src = static_cast<u32>(src);
        }
        u64 value = is64 ? dst : static_cast<u32>(dst);
        switch (op) {
          case BPF_ADD:
            value += src;
            break;
          case BPF_SUB:
            value -= src;
            break;
          case BPF_MUL:
            value *= src;
            break;
          case BPF_DIV:
            value = src == 0 ? 0 : value / src;
            break;
          case BPF_MOD:
            value = src == 0 ? value : value % src;
            break;
          case BPF_OR:
            value |= src;
            break;
          case BPF_AND:
            value &= src;
            break;
          case BPF_XOR:
            value ^= src;
            break;
          case BPF_LSH:
            value <<= (src & (is64 ? 63 : 31));
            break;
          case BPF_RSH:
            value >>= (src & (is64 ? 63 : 31));
            break;
          case BPF_ARSH:
            if (is64) {
              value = static_cast<u64>(static_cast<s64>(value) >>
                                       (src & 63));
            } else {
              value = static_cast<u32>(static_cast<s32>(value) >>
                                       (src & 31));
            }
            break;
          case BPF_NEG:
            value = ~value + 1;
            break;
          case BPF_MOV:
            value = src;
            break;
          case BPF_END: {
            const u32 bits = static_cast<u32>(insn.imm);
            u64 v = dst;
            if (insn.UsesRegSrc()) {  // to big-endian: swap
              u8 buf[8];
              xbase::StoreLe64(buf, v);
              std::reverse(buf, buf + bits / 8);
              u8 full[8] = {};
              std::memcpy(full, buf, bits / 8);
              v = xbase::LoadLe64(full);
            }
            if (bits < 64) {
              v &= (u64{1} << bits) - 1;
            }
            value = v;
            break;
          }
          default:
            return RuntimeFault(
                xbase::KernelFault("bpf: unknown ALU opcode at runtime"));
        }
        dst = is64 ? value : static_cast<u32>(value);
        ++pc;
        break;
      }

      case BPF_LD: {
        // ld_imm64 (pseudo values resolved here, mirroring load-time fixup).
        if (!insn.IsLdImm64() || pc + 1 >= insns_->size()) {
          return RuntimeFault(xbase::KernelFault("bpf: bad ld_imm64"));
        }
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          regs[insn.dst] = MapHandleFromFd(insn.imm);
        } else if (insn.src == BPF_PSEUDO_FUNC) {
          regs[insn.dst] = static_cast<u32>(insn.imm);
        } else {
          regs[insn.dst] =
              (static_cast<u64>(static_cast<u32>((*insns_)[pc + 1].imm))
               << 32) |
              static_cast<u32>(insn.imm);
        }
        pc += 2;
        break;
      }

      case BPF_LDX: {
        const u32 size = SizeBytes(insn.Size());
        XB_ASSIGN_OR_RETURN(
            regs[insn.dst],
            ReadSized(regs[insn.src] + static_cast<s64>(insn.off), size));
        ++pc;
        break;
      }
      case BPF_STX: {
        const u32 size = SizeBytes(insn.Size());
        const Addr addr = regs[insn.dst] + static_cast<s64>(insn.off);
        if (insn.Mode() == BPF_ATOMIC) {
          if (insn.imm != BPF_ADD) {
            return RuntimeFault(
                xbase::KernelFault("bpf: unsupported atomic op at runtime"));
          }
          XB_ASSIGN_OR_RETURN(const u64 old_value, ReadSized(addr, size));
          XB_RETURN_IF_ERROR(
              WriteSized(addr, size, old_value + regs[insn.src]));
          ++pc;
          break;
        }
        XB_RETURN_IF_ERROR(WriteSized(addr, size, regs[insn.src]));
        ++pc;
        break;
      }
      case BPF_ST: {
        const u32 size = SizeBytes(insn.Size());
        XB_RETURN_IF_ERROR(WriteSized(
            regs[insn.dst] + static_cast<s64>(insn.off), size,
            static_cast<u64>(static_cast<s64>(insn.imm))));
        ++pc;
        break;
      }

      case BPF_JMP:
      case BPF_JMP32: {
        const u8 op = insn.JmpOp();
        if (op == BPF_EXIT) {
          if (!call_stack.empty()) {
            // Return from bpf2bpf call.
            const u64 r0 = regs[R0];
            SavedFrame& saved = call_stack.back();
            std::memcpy(regs, saved.regs, sizeof(saved.regs));
            regs[R0] = r0;
            pc = saved.return_pc;
            call_stack.pop_back();
            --bpf_frame;
            break;
          }
          return regs[R0];
        }
        if (op == BPF_CALL) {
          if (insn.IsPseudoCall()) {
            if (bpf_frame + 1 >= kMaxRuntimeFrames) {
              return RuntimeFault(
                  xbase::KernelFault("bpf: call stack overflow"));
            }
            SavedFrame saved;
            std::memcpy(saved.regs, regs, sizeof(saved.regs));
            saved.return_pc = pc + 1;
            call_stack.push_back(saved);
            ++bpf_frame;
            stats_.max_frame_depth =
                std::max(stats_.max_frame_depth, bpf_frame);
            regs[R10] = stack_base_ + kFrameBytes * (bpf_frame + 1);
            pc = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.imm);
            break;
          }
          // Helper or kfunc call.
          ++stats_.helper_calls;
          xbase::Result<const HelperFn*> fn = xbase::NotFound("");
          u64 cost_ns = simkern::kCostHelperCallNs;
          if (insn.IsKfuncCall()) {
            auto spec = bpf_.kfuncs().FindSpec(static_cast<u32>(insn.imm));
            if (!spec.ok()) {
              return RuntimeFault(xbase::KernelFault(
                  StrFormat("bpf: call to unknown kfunc #%d", insn.imm)));
            }
            cost_ns = spec.value()->cost_ns;
            fn = bpf_.kfuncs().FindFn(static_cast<u32>(insn.imm));
          } else {
            // Consult the lowering's access-control verdict for this call
            // site (same bit the threaded engine checks, so the engines
            // deny identically when the verifier wrongly admitted a call).
            if (pc < decoded_->ops.size()) {
              const MicroOp& mop = decoded_->ops[pc];
              if (mop.handler == static_cast<u16>(UOp::kCallHelper) &&
                  decoded_->calls[mop.jump].gate_denied) {
                return RuntimeFault(xbase::KernelFault(StrFormat(
                    "bpf: helper call #%d denied by access contract at "
                    "dispatch",
                    insn.imm)));
              }
            }
            auto spec = bpf_.helpers().FindSpec(static_cast<u32>(insn.imm));
            if (!spec.ok()) {
              return RuntimeFault(xbase::KernelFault(
                  StrFormat("bpf: call to unknown helper #%d", insn.imm)));
            }
            cost_ns = spec.value()->cost_ns;
            fn = bpf_.helpers().FindFn(static_cast<u32>(insn.imm));
          }
          Charge(cost_ns);
          HelperCtx hctx = bpf_.MakeHelperCtx(this);
          const HelperArgs args = {regs[R1], regs[R2], regs[R3], regs[R4],
                                   regs[R5]};
          auto ret = (*fn.value())(hctx, args);
          if (!ret.ok()) {
            return ret.status();
          }
          regs[R0] = ret.value();
          // Scratch registers die across calls; poison them so buggy
          // programs fail loudly rather than silently.
          for (int r = R1; r <= R5; ++r) {
            regs[r] = 0xdead2bad00000000ULL + static_cast<u64>(r);
          }
          if (pending_tail_call_.has_value()) {
            const u32 target_id = *pending_tail_call_;
            pending_tail_call_.reset();
            if (!SwitchToTailTarget(target_id)) {
              return RuntimeFault(
                  xbase::KernelFault("bpf: tail call to missing program"));
            }
            regs[R1] = ctx_addr_;
            pc = 0;
            break;
          }
          ++pc;
          break;
        }
        if (op == BPF_JA) {
          pc = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
          break;
        }
        // Conditional branches.
        const bool is32 = cls == BPF_JMP32;
        u64 dst = regs[insn.dst];
        u64 src = insn.UsesRegSrc()
                      ? regs[insn.src]
                      : static_cast<u64>(static_cast<s64>(insn.imm));
        if (is32) {
          dst = static_cast<u32>(dst);
          src = static_cast<u32>(src);
        }
        const s64 sdst = is32 ? static_cast<s32>(dst)
                              : static_cast<s64>(dst);
        const s64 ssrc = is32 ? static_cast<s32>(src)
                              : static_cast<s64>(src);
        bool taken = false;
        switch (op) {
          case BPF_JEQ:
            taken = dst == src;
            break;
          case BPF_JNE:
            taken = dst != src;
            break;
          case BPF_JGT:
            taken = dst > src;
            break;
          case BPF_JGE:
            taken = dst >= src;
            break;
          case BPF_JLT:
            taken = dst < src;
            break;
          case BPF_JLE:
            taken = dst <= src;
            break;
          case BPF_JSGT:
            taken = sdst > ssrc;
            break;
          case BPF_JSGE:
            taken = sdst >= ssrc;
            break;
          case BPF_JSLT:
            taken = sdst < ssrc;
            break;
          case BPF_JSLE:
            taken = sdst <= ssrc;
            break;
          case BPF_JSET:
            taken = (dst & src) != 0;
            break;
          default:
            return RuntimeFault(
                xbase::KernelFault("bpf: unknown jump opcode"));
        }
        pc = taken ? static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off)
                   : pc + 1;
        break;
      }

      default:
        return RuntimeFault(
            xbase::KernelFault("bpf: unknown instruction class at runtime"));
    }
  }
}

}  // namespace internal

xbase::Result<ExecResult> Execute(Bpf& bpf, const LoadedProgram& prog,
                                  Addr ctx_addr, const ExecOptions& options,
                                  const Loader* loader) {
  internal::Execution execution(bpf, prog, options, loader);
  return execution.Run(ctx_addr);
}

}  // namespace ebpf

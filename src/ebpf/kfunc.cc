#include "src/ebpf/kfunc.h"

#include "src/ebpf/runtime.h"
#include "src/simkern/subsys.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

xbase::Status KfuncRegistry::Register(KfuncSpec spec, KfuncFn fn) {
  if (kfuncs_.contains(spec.btf_id)) {
    return xbase::AlreadyExists(
        xbase::StrFormat("kfunc btf_id %u already registered", spec.btf_id));
  }
  const u32 id = spec.btf_id;
  kfuncs_.emplace(id, Entry{std::move(spec), std::move(fn)});
  return xbase::Status::Ok();
}

xbase::Result<const KfuncSpec*> KfuncRegistry::FindSpec(u32 btf_id) const {
  auto it = kfuncs_.find(btf_id);
  if (it == kfuncs_.end()) {
    return xbase::NotFound(
        xbase::StrFormat("unknown kfunc btf_id %u", btf_id));
  }
  return &it->second.spec;
}

xbase::Result<const KfuncFn*> KfuncRegistry::FindFn(u32 btf_id) const {
  auto it = kfuncs_.find(btf_id);
  if (it == kfuncs_.end()) {
    return xbase::NotFound(
        xbase::StrFormat("unknown kfunc btf_id %u", btf_id));
  }
  return &it->second.fn;
}

std::vector<const KfuncSpec*> KfuncRegistry::AllSpecs() const {
  std::vector<const KfuncSpec*> specs;
  for (const auto& [_, entry] : kfuncs_) {
    specs.push_back(&entry.spec);
  }
  return specs;
}

xbase::usize KfuncRegistry::CountAtVersion(
    simkern::KernelVersion version) const {
  xbase::usize count = 0;
  for (const auto& [_, entry] : kfuncs_) {
    if (entry.spec.introduced <= version) {
      ++count;
    }
  }
  return count;
}

namespace {

void LinkKfunc(simkern::Kernel& kernel, const std::string& entry,
               const char* subsys, xbase::usize reach) {
  kernel.callgraph().Intern(entry);
  for (const simkern::SubsystemSpec& spec : simkern::DefaultSubsystems()) {
    if (spec.name == subsys) {
      kernel.callgraph().AddEdge(
          entry, simkern::SubsystemEntry(subsys, spec.function_count, reach));
      return;
    }
  }
}

}  // namespace

xbase::Status RegisterDefaultKfuncs(KfuncRegistry& registry,
                                    simkern::Kernel& kernel) {
  using simkern::Addr;

  {
    KfuncSpec spec;
    spec.btf_id = kKfuncTaskAcquire;
    spec.name = "bpf_task_acquire";
    spec.introduced = {5, 13};
    spec.args = {ArgType::kAnything, ArgType::kNone, ArgType::kNone,
                 ArgType::kNone, ArgType::kNone};
    spec.acquires_ref = true;
    spec.entry_func = spec.name;
    LinkKfunc(kernel, spec.name, "task", 60);
    XB_RETURN_IF_ERROR(registry.Register(
        spec, [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          auto task = ctx.kernel.tasks().FindByAddr(a[0]);
          if (!task.ok()) {
            // Internal callers never pass junk; a hostile BPF caller makes
            // this an oops, not an errno.
            return ctx.kernel.Route(
                xbase::KernelFault("task_acquire on non-task address"));
          }
          XB_RETURN_IF_ERROR(ctx.kernel.Route(
              ctx.kernel.objects().Acquire(task.value()->object_id)));
          if (ctx.hooks != nullptr) {
            ctx.hooks->NoteAcquire(task.value()->object_id);
          }
          return a[0];
        }));
  }

  {
    KfuncSpec spec;
    spec.btf_id = kKfuncTaskRelease;
    spec.name = "bpf_task_release";
    spec.introduced = {5, 13};
    spec.args = {ArgType::kAnything, ArgType::kNone, ArgType::kNone,
                 ArgType::kNone, ArgType::kNone};
    spec.releases_ref = true;
    spec.entry_func = spec.name;
    LinkKfunc(kernel, spec.name, "task", 40);
    XB_RETURN_IF_ERROR(registry.Register(
        spec, [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          auto task = ctx.kernel.tasks().FindByAddr(a[0]);
          if (!task.ok()) {
            return ctx.kernel.Route(
                xbase::KernelFault("task_release on non-task address"));
          }
          XB_RETURN_IF_ERROR(ctx.kernel.Route(
              ctx.kernel.objects().Release(task.value()->object_id)));
          if (ctx.hooks != nullptr) {
            ctx.hooks->NoteRelease(task.value()->object_id);
          }
          return 0;
        }));
  }

  {
    KfuncSpec spec;
    spec.btf_id = kKfuncSkbSummarize;
    spec.name = "bpf_skb_summarize";
    spec.introduced = {5, 15};
    spec.args = {ArgType::kCtx, ArgType::kNone, ArgType::kNone,
                 ArgType::kNone, ArgType::kNone};
    spec.entry_func = spec.name;
    spec.cost_ns = 80;
    LinkKfunc(kernel, spec.name, "net_core", 220);
    XB_RETURN_IF_ERROR(registry.Register(
        spec, [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          auto len = ctx.kernel.mem().ReadU32(
              a[0] + simkern::SkBuffLayout::kLen);
          auto data = ctx.kernel.mem().ReadU64(
              a[0] + simkern::SkBuffLayout::kDataPtr);
          if (!len.ok() || !data.ok()) {
            return NegErrno(kEInval);
          }
          std::vector<u8> head(std::min<u32>(len.value(), 32));
          if (!head.empty() &&
              !ctx.kernel.mem().Read(data.value(), head).ok()) {
            return NegErrno(kEFault);
          }
          return xbase::Fnv1a(head);
        }));
  }

  {
    // The "not written with eBPF in mind" specimen: its contract is "pass
    // a valid task_struct you already hold" — internal callers always do.
    // There is no NULL check, no liveness check, no sanitization; the
    // verifier's shallow kfunc spec cannot require any of that.
    KfuncSpec spec;
    spec.btf_id = kKfuncVmaLookup;
    spec.name = "find_vma";
    spec.introduced = {5, 17};
    spec.args = {ArgType::kAnything, ArgType::kAnything, ArgType::kNone,
                 ArgType::kNone, ArgType::kNone};
    spec.entry_func = "kfunc_find_vma";
    spec.cost_ns = 200;
    LinkKfunc(kernel, spec.entry_func, "mm", 420);
    XB_RETURN_IF_ERROR(registry.Register(
        spec, [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          // Walks task->stack_ptr without any validation of a[0].
          xbase::u8 buf[8];
          xbase::Status status = ctx.kernel.mem().ReadChecked(
              a[0] + simkern::TaskLayout::kStackPtr, buf, 0);
          if (!status.ok()) {
            return ctx.kernel.Route(std::move(status));  // oops
          }
          const Addr stack = xbase::LoadLe64(buf);
          const Addr addr = a[1];
          if (addr >= stack && addr < stack + 8192) {
            return stack;  // "vma" base
          }
          return 0;
        }));
  }

  {
    KfuncSpec spec;
    spec.btf_id = kKfuncCgroupAncestor;
    spec.name = "bpf_cgroup_ancestor";
    spec.introduced = {6, 1};
    spec.args = {ArgType::kAnything, ArgType::kAnything, ArgType::kNone,
                 ArgType::kNone, ArgType::kNone};
    spec.entry_func = spec.name;
    LinkKfunc(kernel, spec.name, "cgroup", 90);
    XB_RETURN_IF_ERROR(registry.Register(
        spec, [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
          return 1;  // root cgroup
        }));
  }

  return xbase::Status::Ok();
}

}  // namespace ebpf

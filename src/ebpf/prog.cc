#include "src/ebpf/prog.h"

namespace ebpf {

std::string_view ProgTypeName(ProgType type) {
  switch (type) {
    case ProgType::kSocketFilter:
      return "socket_filter";
    case ProgType::kKprobe:
      return "kprobe";
    case ProgType::kTracepoint:
      return "tracepoint";
    case ProgType::kXdp:
      return "xdp";
    case ProgType::kPerfEvent:
      return "perf_event";
    case ProgType::kCgroupSkb:
      return "cgroup_skb";
    case ProgType::kSyscall:
      return "syscall";
    case ProgType::kSchedExt:
      return "sched_ext";
    case ProgType::kLsm:
      return "lsm";
  }
  return "unknown";
}

}  // namespace ebpf

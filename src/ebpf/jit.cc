#include "src/ebpf/jit.h"

#include <algorithm>

#include "src/ebpf/runtime.h"

namespace ebpf {

namespace {

// Per-op handler selection for the four ALU/JMP width-and-form variants.
// `base` is the kAlu64<Name>Imm / kJmp64<Name>Imm enumerator; the variants
// are laid out Imm64, Reg64, Imm32, Reg32 by EBPF_UOP_ALU4/JMP4.
u16 Variant(UOp base, bool is64, bool reg_src) {
  return static_cast<u16>(static_cast<u16>(base) + (is64 ? 0 : 2) +
                          (reg_src ? 1 : 0));
}

UOp AluBase(u8 op) {
  switch (op) {
    case BPF_ADD:
      return UOp::kAlu64AddImm;
    case BPF_SUB:
      return UOp::kAlu64SubImm;
    case BPF_MUL:
      return UOp::kAlu64MulImm;
    case BPF_DIV:
      return UOp::kAlu64DivImm;
    case BPF_MOD:
      return UOp::kAlu64ModImm;
    case BPF_OR:
      return UOp::kAlu64OrImm;
    case BPF_AND:
      return UOp::kAlu64AndImm;
    case BPF_XOR:
      return UOp::kAlu64XorImm;
    case BPF_LSH:
      return UOp::kAlu64LshImm;
    case BPF_RSH:
      return UOp::kAlu64RshImm;
    case BPF_ARSH:
      return UOp::kAlu64ArshImm;
    case BPF_MOV:
      return UOp::kAlu64MovImm;
  }
  return UOp::kUnknownAlu;
}

UOp JmpBase(u8 op) {
  switch (op) {
    case BPF_JEQ:
      return UOp::kJmp64JeqImm;
    case BPF_JNE:
      return UOp::kJmp64JneImm;
    case BPF_JGT:
      return UOp::kJmp64JgtImm;
    case BPF_JGE:
      return UOp::kJmp64JgeImm;
    case BPF_JLT:
      return UOp::kJmp64JltImm;
    case BPF_JLE:
      return UOp::kJmp64JleImm;
    case BPF_JSGT:
      return UOp::kJmp64JsgtImm;
    case BPF_JSGE:
      return UOp::kJmp64JsgeImm;
    case BPF_JSLT:
      return UOp::kJmp64JsltImm;
    case BPF_JSLE:
      return UOp::kJmp64JsleImm;
    case BPF_JSET:
      return UOp::kJmp64JsetImm;
  }
  return UOp::kUnknownJmp;
}

UOp SizedOp(UOp byte_variant, u8 size_code) {
  const u16 base = static_cast<u16>(byte_variant);
  switch (size_code) {
    case BPF_B:
      return static_cast<UOp>(base);
    case BPF_H:
      return static_cast<UOp>(base + 1);
    case BPF_W:
      return static_cast<UOp>(base + 2);
    default:  // BPF_DW
      return static_cast<UOp>(base + 3);
  }
}

// Binds a helper/kfunc call site, resolving the function pointer and cost
// now if the registry is available (it is on every Loader path; a null
// registry defers to the legacy runtime lookup with identical faults).
// Helper sites are additionally re-checked against the declared access
// contract when a gate version is supplied — the dispatch layer does not
// trust that the verifier ran its own gates.
u32 AddCallSite(DecodedImage& out, const Insn& insn, bool is_kfunc,
                ProgType type, const HelperRegistry* helpers,
                const KfuncRegistry* kfuncs, JitStats* stats,
                const simkern::KernelVersion* gate_version, bool skip_gate) {
  CallSite site;
  site.id = static_cast<u32>(insn.imm);
  site.imm = insn.imm;
  site.is_kfunc = is_kfunc;
  if (is_kfunc && kfuncs != nullptr) {
    auto spec = kfuncs->FindSpec(site.id);
    if (spec.ok()) {
      site.cost_ns = spec.value()->cost_ns;
      auto fn = kfuncs->FindFn(site.id);
      site.fn = fn.ok() ? fn.value() : nullptr;
    }
  } else if (!is_kfunc && helpers != nullptr) {
    auto spec = helpers->FindSpec(site.id);
    if (spec.ok()) {
      site.cost_ns = spec.value()->cost_ns;
      auto fn = helpers->FindFn(site.id);
      site.fn = fn.ok() ? fn.value() : nullptr;
      if (gate_version != nullptr && !skip_gate &&
          (!FamilyAdmitsProgType(spec.value()->family, type) ||
           spec.value()->introduced > *gate_version)) {
        site.gate_denied = true;
        if (stats != nullptr) {
          ++stats->call_sites_gate_denied;
        }
      }
    }
  }
  if (site.fn != nullptr && stats != nullptr) {
    ++stats->call_sites_resolved;
  }
  out.calls.push_back(site);
  return static_cast<u32>(out.calls.size() - 1);
}

bool MemProven(const RangeTrace* trace, u32 pc) {
  return trace != nullptr && pc < trace->mem_per_pc.size() &&
         trace->mem_per_pc[pc].seen && trace->mem_per_pc[pc].proven;
}

// Whether the memory access at `pc` may lose its runtime bounds check.
// Fail-closed: no claims, no verifier proof, or a supplied-but-unproven
// staticcheck trace all keep the check. The jit.elide_unproven fault is
// the dispatch-layer defect that elides regardless — the runtime trusts a
// proof nobody produced.
bool ElideAt(const JitClaims* claims, const FaultRegistry* faults, u32 pc) {
  if (claims == nullptr || !claims->elide) {
    return false;
  }
  if (faults != nullptr && faults->IsActive(kFaultJitElideUnproven)) {
    return true;
  }
  if (!MemProven(claims->verifier, pc)) {
    return false;
  }
  if (claims->staticcheck != nullptr &&
      !MemProven(claims->staticcheck, pc)) {
    return false;
  }
  return true;
}

bool IsHandler(const MicroOp& op, UOp uop) {
  return op.handler == static_cast<u16>(uop);
}

// Superblock pair fusion over the lowered micro-ops. A matched head is
// rewritten to execute both halves in one dispatch; the tail slot at
// pc + 1 is left INTACT so a branch that enters mid-pair still sees the
// original single-op semantics. Heads bake the tail's pre-rewrite fields
// and the scan is left-to-right, so fusion chains (a tail that is itself
// the head of the next pair) stay correct: tails are never modified and
// each head reads its tail before that tail could become a head.
// Memory-op patterns key on the *unchecked* handlers, so a fused memory
// pair only exists where elision already proved the access — fusion never
// widens the unchecked surface.
void FusePairs(DecodedImage& out, const Program& image, JitStats* stats) {
  const u32 n = static_cast<u32>(out.ops.size());
  for (u32 pc = 0; pc + 1 < n; ++pc) {
    if (image.insns[pc].IsLdImm64()) {
      ++pc;  // never treat an ld_imm64 payload slot as a head
      continue;
    }
    MicroOp& head = out.ops[pc];
    const MicroOp& tail = out.ops[pc + 1];
    u16 fused = 0;
    if (IsHandler(head, UOp::kAlu64AddImm)) {
      if (IsHandler(tail, UOp::kAlu64AddImm)) {
        // head: dst += imm; tail: src += (s32)jump (re-sign-extended at
        // dispatch; the source imm is an s32 so the truncation is lossless).
        head.src = tail.dst;
        head.jump = static_cast<u32>(tail.imm);
        fused = static_cast<u16>(UOp::kFuseAddImmAddImm);
      } else if (IsHandler(tail, UOp::kJa)) {
        // head: dst += imm; then jump to the tail's pre-relocated target.
        head.jump = tail.jump;
        fused = static_cast<u16>(UOp::kFuseAddImmJa);
      }
    } else if (IsHandler(head, UOp::kAlu64AddReg) &&
               IsHandler(tail, UOp::kAlu64AddImm)) {
      // head: dst += src; tail: (reg jump) += imm.
      head.jump = tail.dst;
      head.imm = tail.imm;
      fused = static_cast<u16>(UOp::kFuseAddRegAddImm);
    } else if (IsHandler(head, UOp::kAlu64MovReg) &&
               IsHandler(tail, UOp::kAlu64AddImm) &&
               tail.dst == head.dst) {
      // dst = src; dst += imm.
      head.imm = tail.imm;
      fused = static_cast<u16>(UOp::kFuseMovRegAddImm);
    } else if (IsHandler(head, UOp::kAlu64MovImm) &&
               IsHandler(tail, UOp::kExit)) {
      // dst = imm; exit.
      fused = static_cast<u16>(UOp::kFuseMovImmExit);
    } else if (IsHandler(head, UOp::kLdxWU) &&
               IsHandler(tail, UOp::kAlu64AddImm) &&
               tail.dst == head.dst) {
      // dst = *(u32*)(src + off); dst += imm. jump keeps the memory
      // offset, so the add immediate rides in imm (unused by loads).
      head.imm = tail.imm;
      fused = static_cast<u16>(UOp::kFuseLdxWUAddImm);
    } else if (IsHandler(head, UOp::kLdxDwU) &&
               IsHandler(tail, UOp::kAlu64AddImm) &&
               tail.dst == head.dst) {
      head.imm = tail.imm;
      fused = static_cast<u16>(UOp::kFuseLdxDwUAddImm);
    }
    if (fused != 0) {
      head.handler = fused;
      if (stats != nullptr) {
        ++stats->pairs_fused;
      }
    }
  }
  // Second pass: extend the hot loop-body pair into a triple. A fused
  // add-reg/add-imm head whose intact pc+2 slot is an unconditional jump
  // becomes one dispatch for the whole back-edge body. Slots pc+1 and
  // pc+2 stay intact as always; the jump target and the add immediate
  // share the imm field (target in the high half — the immediate is an
  // s32, so the truncation round-trips).
  for (u32 pc = 0; pc + 2 < n; ++pc) {
    MicroOp& head = out.ops[pc];
    if (!IsHandler(head, UOp::kFuseAddRegAddImm) ||
        !IsHandler(out.ops[pc + 2], UOp::kJa)) {
      continue;
    }
    head.imm = (static_cast<u64>(out.ops[pc + 2].jump) << 32) |
               static_cast<u64>(static_cast<u32>(head.imm));
    head.handler = static_cast<u16>(UOp::kFuseAddRegAddImmJa);
    if (stats != nullptr) {
      ++stats->pairs_fused;
    }
  }
}

// Micro-ops a superblock may contain: straight-line, non-faulting, and
// non-observable mid-block — plain ALU plus the *unchecked* memory ops
// (whose only side effects, wild counters, are order-insensitive). Jumps,
// calls, checked memory, atomics, div/mod (cost parity is simpler to keep
// per-insn) and ld_imm64 (two slots) all break a block.
bool BlockableOp(const MicroOp& op) {
  switch (static_cast<UOp>(op.handler)) {
    case UOp::kAlu64AddImm: case UOp::kAlu64AddReg:
    case UOp::kAlu32AddImm: case UOp::kAlu32AddReg:
    case UOp::kAlu64SubImm: case UOp::kAlu64SubReg:
    case UOp::kAlu32SubImm: case UOp::kAlu32SubReg:
    case UOp::kAlu64AndImm: case UOp::kAlu64AndReg:
    case UOp::kAlu32AndImm: case UOp::kAlu32AndReg:
    case UOp::kAlu64OrImm: case UOp::kAlu64OrReg:
    case UOp::kAlu32OrImm: case UOp::kAlu32OrReg:
    case UOp::kAlu64XorImm: case UOp::kAlu64XorReg:
    case UOp::kAlu32XorImm: case UOp::kAlu32XorReg:
    case UOp::kAlu64MovImm: case UOp::kAlu64MovReg:
    case UOp::kAlu32MovImm: case UOp::kAlu32MovReg:
    case UOp::kLdxBU: case UOp::kLdxHU: case UOp::kLdxWU: case UOp::kLdxDwU:
    case UOp::kStxBU: case UOp::kStxHU: case UOp::kStxWU: case UOp::kStxDwU:
    case UOp::kStBU: case UOp::kStHU: case UOp::kStWU: case UOp::kStDwU:
      return true;
    default:
      return false;
  }
}

// Lower maximal straight-line runs of blockable ops into entry-charged
// superblocks: the head slot becomes kSuperBlock (len in imm, sb_ops start
// index in jump) and the run's original ops are copied to the side table
// for the tight fast loop. Interiors stay intact, so *any* entry into the
// middle of a block (branch, callback entry, periodic re-dispatch) simply
// executes per-insn — no entry-point analysis is needed for correctness.
// Runs before FusePairs so the side-table copies are the plain per-insn
// form; pair fusion may still rewrite interior slots afterwards, which
// only affects the (already-bookkept) per-insn path.
void BuildSuperBlocks(DecodedImage& out, JitStats* stats) {
  constexpr u32 kMinSuperBlock = 4;  // below this the extra dispatch loses
  // Cap block length: the fast path bails to per-insn execution whenever
  // the 4096-insn RCU probe boundary falls inside the block, so a block
  // anywhere near 4096 long would cross on almost every execution. At 256
  // only ~1/16 of executions straddle a boundary.
  constexpr u32 kMaxSuperBlock = 256;
  const u32 n = static_cast<u32>(out.ops.size());
  u32 pc = 0;
  while (pc < n) {
    if (!BlockableOp(out.ops[pc])) {
      ++pc;
      continue;
    }
    u32 end = pc;
    while (end < n && end - pc < kMaxSuperBlock && BlockableOp(out.ops[end])) {
      ++end;
    }
    const u32 len = end - pc;
    if (len >= kMinSuperBlock) {
      const u32 start = static_cast<u32>(out.sb_ops.size());
      // Side-table layout per block: [start] = the head's ORIGINAL op (the
      // slow path re-dispatches it), [start+1 .. start+1+m) = the block's
      // constant-folded op list the fast path runs. Folding is legal
      // precisely because the block is proven straight-line and fault-free:
      // a run of add-immediates to one register collapses to a single
      // wrapping add with identical end state, and the per-insn trace the
      // fold erases is only observable under a tracer — which forces the
      // slow path.
      out.sb_ops.push_back(out.ops[pc]);
      u32 m = 0;
      for (u32 i = pc; i < end; ++i) {
        const MicroOp& cur = out.ops[i];
        if (m > 0) {
          MicroOp& prev = out.sb_ops.back();
          if (IsHandler(cur, UOp::kAlu64AddImm) && prev.dst == cur.dst &&
              (IsHandler(prev, UOp::kAlu64AddImm) ||
               IsHandler(prev, UOp::kAlu64MovImm))) {
            prev.imm += cur.imm;  // wrapping, same as executing both
            continue;
          }
        }
        out.sb_ops.push_back(cur);
        ++m;
      }
      MicroOp head;
      head.handler = static_cast<u16>(UOp::kSuperBlock);
      head.jump = start;
      head.imm = (static_cast<u64>(m) << 32) | len;
      out.ops[pc] = head;
      if (stats != nullptr) {
        ++stats->superblocks;
      }
    }
    pc = end;
  }
}

}  // namespace

DecodedImage DecodeProgram(const Program& image,
                           const HelperRegistry* helpers,
                           const KfuncRegistry* kfuncs, JitStats* stats,
                           const simkern::KernelVersion* gate_version,
                           const FaultRegistry* faults,
                           const JitClaims* claims) {
  DecodedImage out;
  const u32 n = image.len();
  out.ops.resize(n);
  // The injected dispatch defect: the lowering trusts the verifier
  // completely and skips its own contract re-check.
  const bool skip_gate =
      faults != nullptr && faults->IsActive(kFaultRuntimeDispatchUnverified);

  for (u32 pc = 0; pc < n; ++pc) {
    const Insn& insn = image.insns[pc];
    MicroOp& op = out.ops[pc];
    op.dst = insn.dst;
    op.src = insn.src;
    const u8 cls = insn.Class();

    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        const bool is64 = cls == BPF_ALU64;
        const u8 alu_op = insn.AluOp();
        if (alu_op == BPF_NEG) {
          op.handler = static_cast<u16>(is64 ? UOp::kNeg64 : UOp::kNeg32);
          break;
        }
        if (alu_op == BPF_END) {
          const u32 bits = static_cast<u32>(insn.imm);
          u64 mask = bits < 64 ? (u64{1} << bits) - 1 : ~u64{0};
          if (!is64) {
            mask &= 0xffffffffULL;  // the ALU-class width truncation
          }
          op.imm = mask;
          if (insn.UsesRegSrc()) {  // to big-endian: swap
            op.handler = static_cast<u16>(UOp::kEndSwap);
            op.src = static_cast<u8>(std::min<u32>(bits / 8, 8));
          } else {
            op.handler = static_cast<u16>(UOp::kEndMask);
          }
          break;
        }
        const UOp base = AluBase(alu_op);
        if (base == UOp::kUnknownAlu) {
          op.handler = static_cast<u16>(UOp::kUnknownAlu);
          break;
        }
        op.handler = Variant(base, is64, insn.UsesRegSrc());
        if (!insn.UsesRegSrc()) {
          op.imm = is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                        : static_cast<u64>(static_cast<u32>(insn.imm));
        }
        break;
      }

      case BPF_LD: {
        if (!insn.IsLdImm64() || pc + 1 >= n) {
          op.handler = static_cast<u16>(UOp::kBadLdImm64);
          break;
        }
        op.handler = static_cast<u16>(UOp::kLdImm64);
        op.jump = pc + 2;
        // Pseudo values resolved once, mirroring load-time fixup: a map
        // reference becomes the tagged runtime handle, a callback ref its
        // entry pc.
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          op.imm = MapHandleFromFd(insn.imm);
        } else if (insn.src == BPF_PSEUDO_FUNC) {
          op.imm = static_cast<u32>(insn.imm);
        } else {
          op.imm = (static_cast<u64>(
                        static_cast<u32>(image.insns[pc + 1].imm))
                    << 32) |
                   static_cast<u32>(insn.imm);
        }
        break;
      }

      case BPF_LDX:
        if (ElideAt(claims, faults, pc)) {
          op.handler = static_cast<u16>(SizedOp(UOp::kLdxBU, insn.Size()));
          if (stats != nullptr) {
            ++stats->checks_elided;
          }
        } else {
          op.handler = static_cast<u16>(SizedOp(UOp::kLdxB, insn.Size()));
        }
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        break;

      case BPF_STX:
        if (insn.Mode() == BPF_ATOMIC) {
          // Atomics are never elided: their read-modify-write must stay an
          // observable single point for fault ordering.
          op.handler = static_cast<u16>(
              insn.imm == BPF_ADD ? SizedOp(UOp::kAtomicAddB, insn.Size())
                                  : UOp::kAtomicBad);
        } else if (ElideAt(claims, faults, pc)) {
          op.handler = static_cast<u16>(SizedOp(UOp::kStxBU, insn.Size()));
          if (stats != nullptr) {
            ++stats->checks_elided;
          }
        } else {
          op.handler = static_cast<u16>(SizedOp(UOp::kStxB, insn.Size()));
        }
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        break;

      case BPF_ST:
        if (ElideAt(claims, faults, pc)) {
          op.handler = static_cast<u16>(SizedOp(UOp::kStBU, insn.Size()));
          if (stats != nullptr) {
            ++stats->checks_elided;
          }
        } else {
          op.handler = static_cast<u16>(SizedOp(UOp::kStB, insn.Size()));
        }
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        op.imm = static_cast<u64>(static_cast<s64>(insn.imm));
        break;

      case BPF_JMP:
      case BPF_JMP32: {
        const u8 jmp_op = insn.JmpOp();
        if (jmp_op == BPF_EXIT) {
          op.handler = static_cast<u16>(UOp::kExit);
          break;
        }
        if (jmp_op == BPF_CALL) {
          if (insn.IsPseudoCall()) {
            op.handler = static_cast<u16>(UOp::kCallBpf);
            op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.imm);
          } else if (insn.IsKfuncCall()) {
            op.handler = static_cast<u16>(UOp::kCallKfunc);
            op.jump = AddCallSite(out, insn, /*is_kfunc=*/true, image.type,
                                  helpers, kfuncs, stats, gate_version,
                                  skip_gate);
          } else {
            op.handler = static_cast<u16>(UOp::kCallHelper);
            op.jump = AddCallSite(out, insn, /*is_kfunc=*/false, image.type,
                                  helpers, kfuncs, stats, gate_version,
                                  skip_gate);
          }
          break;
        }
        if (jmp_op == BPF_JA) {
          op.handler = static_cast<u16>(UOp::kJa);
          op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
          break;
        }
        const UOp base = JmpBase(jmp_op);
        if (base == UOp::kUnknownJmp) {
          op.handler = static_cast<u16>(UOp::kUnknownJmp);
          break;
        }
        op.handler = Variant(base, cls == BPF_JMP, insn.UsesRegSrc());
        op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
        if (!insn.UsesRegSrc()) {
          // Sign-extended for the 64-bit compare; the 32-bit handlers
          // truncate at dispatch, exactly like the legacy operand path.
          op.imm = static_cast<u64>(static_cast<s64>(insn.imm));
        }
        break;
      }

      default:
        op.handler = static_cast<u16>(UOp::kUnknownClass);
        break;
    }
  }

  if (claims != nullptr && claims->fuse) {
    BuildSuperBlocks(out, stats);
    FusePairs(out, image, stats);
  }

  if (stats != nullptr) {
    stats->micro_ops = n;
  }
  return out;
}

xbase::Result<JitImage> JitCompile(const Program& prog,
                                   const FaultRegistry& faults,
                                   const HelperRegistry* helpers,
                                   const KfuncRegistry* kfuncs,
                                   const simkern::KernelVersion*
                                       gate_version,
                                   const JitClaims* claims) {
  JitImage out;
  out.image = prog;
  out.stats.insns_translated = prog.len();

  const bool corrupt_branches = faults.IsActive(kFaultJitBranchOffByOne);

  for (u32 pc = 0; pc < out.image.len(); ++pc) {
    Insn& insn = out.image.insns[pc];
    if (insn.IsLdImm64()) {
      ++pc;
      continue;
    }
    const u8 cls = insn.Class();
    if ((cls == BPF_JMP || cls == BPF_JMP32) && !insn.IsCall() &&
        !insn.IsExit()) {
      ++out.stats.branches_relocated;
      if (corrupt_branches && insn.off > 15) {
        // CVE-2021-29154 class: during image finalization the displacement
        // of a long branch is computed against the wrong base and lands one
        // instruction short. The verifier's control-flow proof is now
        // meaningless.
        insn.off = static_cast<s16>(insn.off - 1);
        ++out.stats.branches_corrupted;
      }
    }
  }

  // Lower the finalized (possibly corrupted) image: the off-by-one above
  // becomes an off-by-one in the pre-relocated micro-op targets, so the
  // fault reaches the threaded engine too.
  out.decoded = DecodeProgram(out.image, helpers, kfuncs, &out.stats,
                              gate_version, &faults, claims);
  return out;
}

}  // namespace ebpf

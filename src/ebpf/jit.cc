#include "src/ebpf/jit.h"

#include <algorithm>

#include "src/ebpf/runtime.h"

namespace ebpf {

namespace {

// Per-op handler selection for the four ALU/JMP width-and-form variants.
// `base` is the kAlu64<Name>Imm / kJmp64<Name>Imm enumerator; the variants
// are laid out Imm64, Reg64, Imm32, Reg32 by EBPF_UOP_ALU4/JMP4.
u16 Variant(UOp base, bool is64, bool reg_src) {
  return static_cast<u16>(static_cast<u16>(base) + (is64 ? 0 : 2) +
                          (reg_src ? 1 : 0));
}

UOp AluBase(u8 op) {
  switch (op) {
    case BPF_ADD:
      return UOp::kAlu64AddImm;
    case BPF_SUB:
      return UOp::kAlu64SubImm;
    case BPF_MUL:
      return UOp::kAlu64MulImm;
    case BPF_DIV:
      return UOp::kAlu64DivImm;
    case BPF_MOD:
      return UOp::kAlu64ModImm;
    case BPF_OR:
      return UOp::kAlu64OrImm;
    case BPF_AND:
      return UOp::kAlu64AndImm;
    case BPF_XOR:
      return UOp::kAlu64XorImm;
    case BPF_LSH:
      return UOp::kAlu64LshImm;
    case BPF_RSH:
      return UOp::kAlu64RshImm;
    case BPF_ARSH:
      return UOp::kAlu64ArshImm;
    case BPF_MOV:
      return UOp::kAlu64MovImm;
  }
  return UOp::kUnknownAlu;
}

UOp JmpBase(u8 op) {
  switch (op) {
    case BPF_JEQ:
      return UOp::kJmp64JeqImm;
    case BPF_JNE:
      return UOp::kJmp64JneImm;
    case BPF_JGT:
      return UOp::kJmp64JgtImm;
    case BPF_JGE:
      return UOp::kJmp64JgeImm;
    case BPF_JLT:
      return UOp::kJmp64JltImm;
    case BPF_JLE:
      return UOp::kJmp64JleImm;
    case BPF_JSGT:
      return UOp::kJmp64JsgtImm;
    case BPF_JSGE:
      return UOp::kJmp64JsgeImm;
    case BPF_JSLT:
      return UOp::kJmp64JsltImm;
    case BPF_JSLE:
      return UOp::kJmp64JsleImm;
    case BPF_JSET:
      return UOp::kJmp64JsetImm;
  }
  return UOp::kUnknownJmp;
}

UOp SizedOp(UOp byte_variant, u8 size_code) {
  const u16 base = static_cast<u16>(byte_variant);
  switch (size_code) {
    case BPF_B:
      return static_cast<UOp>(base);
    case BPF_H:
      return static_cast<UOp>(base + 1);
    case BPF_W:
      return static_cast<UOp>(base + 2);
    default:  // BPF_DW
      return static_cast<UOp>(base + 3);
  }
}

// Binds a helper/kfunc call site, resolving the function pointer and cost
// now if the registry is available (it is on every Loader path; a null
// registry defers to the legacy runtime lookup with identical faults).
// Helper sites are additionally re-checked against the declared access
// contract when a gate version is supplied — the dispatch layer does not
// trust that the verifier ran its own gates.
u32 AddCallSite(DecodedImage& out, const Insn& insn, bool is_kfunc,
                ProgType type, const HelperRegistry* helpers,
                const KfuncRegistry* kfuncs, JitStats* stats,
                const simkern::KernelVersion* gate_version, bool skip_gate) {
  CallSite site;
  site.id = static_cast<u32>(insn.imm);
  site.imm = insn.imm;
  site.is_kfunc = is_kfunc;
  if (is_kfunc && kfuncs != nullptr) {
    auto spec = kfuncs->FindSpec(site.id);
    if (spec.ok()) {
      site.cost_ns = spec.value()->cost_ns;
      auto fn = kfuncs->FindFn(site.id);
      site.fn = fn.ok() ? fn.value() : nullptr;
    }
  } else if (!is_kfunc && helpers != nullptr) {
    auto spec = helpers->FindSpec(site.id);
    if (spec.ok()) {
      site.cost_ns = spec.value()->cost_ns;
      auto fn = helpers->FindFn(site.id);
      site.fn = fn.ok() ? fn.value() : nullptr;
      if (gate_version != nullptr && !skip_gate &&
          (!FamilyAdmitsProgType(spec.value()->family, type) ||
           spec.value()->introduced > *gate_version)) {
        site.gate_denied = true;
        if (stats != nullptr) {
          ++stats->call_sites_gate_denied;
        }
      }
    }
  }
  if (site.fn != nullptr && stats != nullptr) {
    ++stats->call_sites_resolved;
  }
  out.calls.push_back(site);
  return static_cast<u32>(out.calls.size() - 1);
}

}  // namespace

DecodedImage DecodeProgram(const Program& image,
                           const HelperRegistry* helpers,
                           const KfuncRegistry* kfuncs, JitStats* stats,
                           const simkern::KernelVersion* gate_version,
                           const FaultRegistry* faults) {
  DecodedImage out;
  const u32 n = image.len();
  out.ops.resize(n);
  // The injected dispatch defect: the lowering trusts the verifier
  // completely and skips its own contract re-check.
  const bool skip_gate =
      faults != nullptr && faults->IsActive(kFaultRuntimeDispatchUnverified);

  for (u32 pc = 0; pc < n; ++pc) {
    const Insn& insn = image.insns[pc];
    MicroOp& op = out.ops[pc];
    op.dst = insn.dst;
    op.src = insn.src;
    const u8 cls = insn.Class();

    switch (cls) {
      case BPF_ALU64:
      case BPF_ALU: {
        const bool is64 = cls == BPF_ALU64;
        const u8 alu_op = insn.AluOp();
        if (alu_op == BPF_NEG) {
          op.handler = static_cast<u16>(is64 ? UOp::kNeg64 : UOp::kNeg32);
          break;
        }
        if (alu_op == BPF_END) {
          const u32 bits = static_cast<u32>(insn.imm);
          u64 mask = bits < 64 ? (u64{1} << bits) - 1 : ~u64{0};
          if (!is64) {
            mask &= 0xffffffffULL;  // the ALU-class width truncation
          }
          op.imm = mask;
          if (insn.UsesRegSrc()) {  // to big-endian: swap
            op.handler = static_cast<u16>(UOp::kEndSwap);
            op.src = static_cast<u8>(std::min<u32>(bits / 8, 8));
          } else {
            op.handler = static_cast<u16>(UOp::kEndMask);
          }
          break;
        }
        const UOp base = AluBase(alu_op);
        if (base == UOp::kUnknownAlu) {
          op.handler = static_cast<u16>(UOp::kUnknownAlu);
          break;
        }
        op.handler = Variant(base, is64, insn.UsesRegSrc());
        if (!insn.UsesRegSrc()) {
          op.imm = is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                        : static_cast<u64>(static_cast<u32>(insn.imm));
        }
        break;
      }

      case BPF_LD: {
        if (!insn.IsLdImm64() || pc + 1 >= n) {
          op.handler = static_cast<u16>(UOp::kBadLdImm64);
          break;
        }
        op.handler = static_cast<u16>(UOp::kLdImm64);
        op.jump = pc + 2;
        // Pseudo values resolved once, mirroring load-time fixup: a map
        // reference becomes the tagged runtime handle, a callback ref its
        // entry pc.
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          op.imm = MapHandleFromFd(insn.imm);
        } else if (insn.src == BPF_PSEUDO_FUNC) {
          op.imm = static_cast<u32>(insn.imm);
        } else {
          op.imm = (static_cast<u64>(
                        static_cast<u32>(image.insns[pc + 1].imm))
                    << 32) |
                   static_cast<u32>(insn.imm);
        }
        break;
      }

      case BPF_LDX:
        op.handler = static_cast<u16>(SizedOp(UOp::kLdxB, insn.Size()));
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        break;

      case BPF_STX:
        if (insn.Mode() == BPF_ATOMIC) {
          op.handler = static_cast<u16>(
              insn.imm == BPF_ADD ? SizedOp(UOp::kAtomicAddB, insn.Size())
                                  : UOp::kAtomicBad);
        } else {
          op.handler = static_cast<u16>(SizedOp(UOp::kStxB, insn.Size()));
        }
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        break;

      case BPF_ST:
        op.handler = static_cast<u16>(SizedOp(UOp::kStB, insn.Size()));
        op.jump = static_cast<u32>(static_cast<s32>(insn.off));
        op.imm = static_cast<u64>(static_cast<s64>(insn.imm));
        break;

      case BPF_JMP:
      case BPF_JMP32: {
        const u8 jmp_op = insn.JmpOp();
        if (jmp_op == BPF_EXIT) {
          op.handler = static_cast<u16>(UOp::kExit);
          break;
        }
        if (jmp_op == BPF_CALL) {
          if (insn.IsPseudoCall()) {
            op.handler = static_cast<u16>(UOp::kCallBpf);
            op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.imm);
          } else if (insn.IsKfuncCall()) {
            op.handler = static_cast<u16>(UOp::kCallKfunc);
            op.jump = AddCallSite(out, insn, /*is_kfunc=*/true, image.type,
                                  helpers, kfuncs, stats, gate_version,
                                  skip_gate);
          } else {
            op.handler = static_cast<u16>(UOp::kCallHelper);
            op.jump = AddCallSite(out, insn, /*is_kfunc=*/false, image.type,
                                  helpers, kfuncs, stats, gate_version,
                                  skip_gate);
          }
          break;
        }
        if (jmp_op == BPF_JA) {
          op.handler = static_cast<u16>(UOp::kJa);
          op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
          break;
        }
        const UOp base = JmpBase(jmp_op);
        if (base == UOp::kUnknownJmp) {
          op.handler = static_cast<u16>(UOp::kUnknownJmp);
          break;
        }
        op.handler = Variant(base, cls == BPF_JMP, insn.UsesRegSrc());
        op.jump = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
        if (!insn.UsesRegSrc()) {
          // Sign-extended for the 64-bit compare; the 32-bit handlers
          // truncate at dispatch, exactly like the legacy operand path.
          op.imm = static_cast<u64>(static_cast<s64>(insn.imm));
        }
        break;
      }

      default:
        op.handler = static_cast<u16>(UOp::kUnknownClass);
        break;
    }
  }

  if (stats != nullptr) {
    stats->micro_ops = n;
  }
  return out;
}

xbase::Result<JitImage> JitCompile(const Program& prog,
                                   const FaultRegistry& faults,
                                   const HelperRegistry* helpers,
                                   const KfuncRegistry* kfuncs,
                                   const simkern::KernelVersion*
                                       gate_version) {
  JitImage out;
  out.image = prog;
  out.stats.insns_translated = prog.len();

  const bool corrupt_branches = faults.IsActive(kFaultJitBranchOffByOne);

  for (u32 pc = 0; pc < out.image.len(); ++pc) {
    Insn& insn = out.image.insns[pc];
    if (insn.IsLdImm64()) {
      ++pc;
      continue;
    }
    const u8 cls = insn.Class();
    if ((cls == BPF_JMP || cls == BPF_JMP32) && !insn.IsCall() &&
        !insn.IsExit()) {
      ++out.stats.branches_relocated;
      if (corrupt_branches && insn.off > 15) {
        // CVE-2021-29154 class: during image finalization the displacement
        // of a long branch is computed against the wrong base and lands one
        // instruction short. The verifier's control-flow proof is now
        // meaningless.
        insn.off = static_cast<s16>(insn.off - 1);
        ++out.stats.branches_corrupted;
      }
    }
  }

  // Lower the finalized (possibly corrupted) image: the off-by-one above
  // becomes an off-by-one in the pre-relocated micro-op targets, so the
  // fault reaches the threaded engine too.
  out.decoded = DecodeProgram(out.image, helpers, kfuncs, &out.stats,
                              gate_version, &faults);
  return out;
}

}  // namespace ebpf

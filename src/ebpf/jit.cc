#include "src/ebpf/jit.h"

namespace ebpf {

xbase::Result<JitImage> JitCompile(const Program& prog,
                                   const FaultRegistry& faults) {
  JitImage out;
  out.image = prog;
  out.stats.insns_translated = prog.len();

  const bool corrupt_branches = faults.IsActive(kFaultJitBranchOffByOne);

  for (u32 pc = 0; pc < out.image.len(); ++pc) {
    Insn& insn = out.image.insns[pc];
    if (insn.IsLdImm64()) {
      ++pc;
      continue;
    }
    const u8 cls = insn.Class();
    if ((cls == BPF_JMP || cls == BPF_JMP32) && !insn.IsCall() &&
        !insn.IsExit()) {
      ++out.stats.branches_relocated;
      if (corrupt_branches && insn.off > 15) {
        // CVE-2021-29154 class: during image finalization the displacement
        // of a long branch is computed against the wrong base and lands one
        // instruction short. The verifier's control-flow proof is now
        // meaningless.
        insn.off = static_cast<s16>(insn.off - 1);
        ++out.stats.branches_corrupted;
      }
    }
  }
  return out;
}

}  // namespace ebpf

// Program container and program types. A Program is what userspace submits
// to the load path: raw instructions plus metadata. Nothing here is trusted;
// the verifier decides whether it runs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/xbase/status.h"

namespace ebpf {

enum class ProgType : u8 {
  kSocketFilter,  // v3.19-era classic attach point
  kKprobe,        // tracing
  kTracepoint,
  kXdp,           // packet processing, ctx = xdp_md-like
  kPerfEvent,
  kCgroupSkb,
  kSyscall,       // bpf_sys_bpf-capable programs (v5.14+)
  kSchedExt,      // scheduler policy: picks the next task (v6.12+)
  kLsm,           // access-control hooks: allow/deny verdicts (v6.12+)
};

std::string_view ProgTypeName(ProgType type);

// Every program type, for exhaustive admission-cell enumeration (the
// permcheck census walks helpers x prog types x privilege x versions).
inline constexpr ProgType kAllProgTypes[] = {
    ProgType::kSocketFilter, ProgType::kKprobe,    ProgType::kTracepoint,
    ProgType::kXdp,          ProgType::kPerfEvent, ProgType::kCgroupSkb,
    ProgType::kSyscall,      ProgType::kSchedExt,  ProgType::kLsm,
};
inline constexpr xbase::usize kProgTypeCount =
    sizeof(kAllProgTypes) / sizeof(kAllProgTypes[0]);

// Verdicts XDP programs return.
inline constexpr u64 kXdpAborted = 0;
inline constexpr u64 kXdpDrop = 1;
inline constexpr u64 kXdpPass = 2;
inline constexpr u64 kXdpTx = 3;

struct Program {
  std::string name;
  ProgType type = ProgType::kSocketFilter;
  std::vector<Insn> insns;
  bool gpl_compatible = true;
  // Subprogram entry points (instruction indices), discovered by the
  // verifier from pseudo calls; entry 0 is implicit.
  std::vector<u32> subprog_starts;

  u32 len() const { return static_cast<u32>(insns.size()); }
};

}  // namespace ebpf

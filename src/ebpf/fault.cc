#include "src/ebpf/fault.h"

namespace ebpf {

const std::vector<FaultInfo>& FaultRegistry::Catalog() {
  static const std::vector<FaultInfo> kCatalog = {
      {std::string(kFaultVerifierScalarBounds), "verifier",
       "Arbitrary read/write", "CVE-2022-23222",
       "missing validation of pointer arithmetic lets a program walk a map "
       "value pointer anywhere in kernel memory"},
      {std::string(kFaultVerifierPtrLeak), "verifier", "Kernel pointer leak",
       "CVE-2021-45402 class",
       "pointer-to-scalar leak check disabled: programs can return or store "
       "kernel addresses"},
      {std::string(kFaultVerifierJmp32Bounds), "verifier",
       "Out-of-bound access", "commit 3844d153a41a",
       "insufficient bounds propagation from 32-bit compares admits "
       "out-of-bounds offsets"},
      {std::string(kFaultVerifierAlu32BoundsTrunc), "verifier",
       "Out-of-bound access", "CVE-2020-8835",
       "32-bit ALU results keep bounds truncated modulo 2^32 instead of "
       "recomputing them, so a wrapped add claims a narrow range"},
      {std::string(kFaultVerifierSignExtConfusion), "verifier",
       "Out-of-bound access", "CVE-2017-16995",
       "mov32 with a negative immediate records the sign-extended 64-bit "
       "constant although the runtime zero-extends"},
      {std::string(kFaultVerifierJgtOffByOne), "verifier",
       "Out-of-bound access", "JGT refinement off-by-one (Table 1 bounds "
       "class)",
       "the JGT fall-through edge refines umax to bound-1 instead of "
       "bound, claiming one value too few"},
      {std::string(kFaultVerifierTnumMulPrecision), "verifier",
       "Out-of-bound access", "tnum_mul rewrite class (commit 05924717ac70)",
       "multiplication propagates only the operands' known bits and drops "
       "the uncertainty product, inventing known-zero bits"},
      {std::string(kFaultVerifierSpinLock), "verifier", "Deadlock/Hang",
       "bpf_spin_lock tracking",
       "lock tracking disabled: double-acquire passes verification and "
       "deadlocks at runtime"},
      {std::string(kFaultVerifierLoopInlineUaf), "verifier", "Use-after-free",
       "commit fb4e3b33e3e7",
       "loop-inlining pass reuses a freed verifier state"},
      {std::string(kFaultVerifierStateLeak), "verifier", "Memory leak",
       "verifier state allocation",
       "explored-state bookkeeping leaks state objects on a rejection path"},
      {std::string(kFaultVerifierRefTracking), "verifier",
       "Reference count leak", "release_reference class (commit f1db2081)",
       "acquired-reference tracking disabled: programs may exit while "
       "holding socket references"},
      {std::string(kFaultHelperTaskStackLeak), "helper",
       "Reference count leak", "commit 06ab134ce8ec",
       "bpf_get_task_stack takes a task reference and forgets to drop it on "
       "the error path"},
      {std::string(kFaultHelperSkLookupLeak), "helper",
       "Reference count leak", "commit 3046a827316c",
       "sk lookup helpers leak request_sock references"},
      {std::string(kFaultHelperArrayOverflow), "helper",
       "Integer overflow/underflow", "commit 87ac0d600943",
       "array map element offset computed in 32 bits wraps for large "
       "index*value_size"},
      {std::string(kFaultHelperTaskStorageNull), "helper",
       "Null-pointer dereference", "commit 1a9c72ad4c26",
       "bpf_task_storage_get dereferences the owner task pointer without a "
       "NULL check"},
      {std::string(kFaultJitBranchOffByOne), "jit",
       "Arbitrary read/write", "CVE-2021-29154",
       "branch displacement miscomputed during image finalization hijacks "
       "control flow"},
  };
  return kCatalog;
}

void FaultRegistry::Inject(std::string_view id) {
  active_.insert(std::string(id));
}

void FaultRegistry::Clear(std::string_view id) {
  auto it = active_.find(id);
  if (it != active_.end()) {
    active_.erase(it);
  }
}

bool FaultRegistry::IsActive(std::string_view id) const {
  return active_.contains(id);
}

}  // namespace ebpf

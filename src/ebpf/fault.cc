#include "src/ebpf/fault.h"

#include <map>

namespace ebpf {

const std::vector<FaultInfo>& FaultRegistry::Catalog() {
  static const std::vector<FaultInfo> kCatalog = {
      {std::string(kFaultVerifierScalarBounds), "verifier",
       "Arbitrary read/write", "CVE-2022-23222",
       "missing validation of pointer arithmetic lets a program walk a map "
       "value pointer anywhere in kernel memory"},
      {std::string(kFaultVerifierPtrLeak), "verifier", "Kernel pointer leak",
       "CVE-2021-45402 class",
       "pointer-to-scalar leak check disabled: programs can return or store "
       "kernel addresses"},
      {std::string(kFaultVerifierJmp32Bounds), "verifier",
       "Out-of-bound access", "commit 3844d153a41a",
       "insufficient bounds propagation from 32-bit compares admits "
       "out-of-bounds offsets"},
      {std::string(kFaultVerifierAlu32BoundsTrunc), "verifier",
       "Out-of-bound access", "CVE-2020-8835",
       "32-bit ALU results keep bounds truncated modulo 2^32 instead of "
       "recomputing them, so a wrapped add claims a narrow range"},
      {std::string(kFaultVerifierSignExtConfusion), "verifier",
       "Out-of-bound access", "CVE-2017-16995",
       "mov32 with a negative immediate records the sign-extended 64-bit "
       "constant although the runtime zero-extends"},
      {std::string(kFaultVerifierJgtOffByOne), "verifier",
       "Out-of-bound access", "JGT refinement off-by-one (Table 1 bounds "
       "class)",
       "the JGT fall-through edge refines umax to bound-1 instead of "
       "bound, claiming one value too few"},
      {std::string(kFaultVerifierRegRegOffByOne), "verifier",
       "Out-of-bound access", "LT/LE range markings class (commit "
       "fb2a311a31d3)",
       "register-register branch refinement tightens the bounded side one "
       "value too far, so a runtime value the refinement excluded still "
       "reaches the guarded access"},
      {std::string(kFaultVerifierSpillWidth), "verifier",
       "Out-of-bound access", "STACK_SPILL partial overwrite (commit "
       "27113c59b6d0)",
       "a narrow store into a spilled-register slot fails to demote the "
       "slot, so a later fill restores the stale pre-overwrite bounds"},
      {std::string(kFaultVerifierPktRangeStale), "verifier",
       "Out-of-bound access", "skb_change_proto invalidation class (commit "
       "36bbef52c7eb)",
       "packet pointers are not invalidated after a helper that reallocates "
       "packet data, so stale data/data_end ranges authorize reads into "
       "freed or moved memory"},
      {std::string(kFaultVerifierTnumMulPrecision), "verifier",
       "Out-of-bound access", "tnum_mul rewrite class (commit 05924717ac70)",
       "multiplication propagates only the operands' known bits and drops "
       "the uncertainty product, inventing known-zero bits"},
      {std::string(kFaultVerifierSpinLock), "verifier", "Deadlock/Hang",
       "bpf_spin_lock tracking",
       "lock tracking disabled: double-acquire passes verification and "
       "deadlocks at runtime"},
      {std::string(kFaultVerifierLoopInlineUaf), "verifier", "Use-after-free",
       "commit fb4e3b33e3e7",
       "loop-inlining pass reuses a freed verifier state"},
      {std::string(kFaultVerifierStateLeak), "verifier", "Memory leak",
       "verifier state allocation",
       "explored-state bookkeeping leaks state objects on a rejection path"},
      {std::string(kFaultVerifierRefTracking), "verifier",
       "Reference count leak", "release_reference class (commit f1db2081)",
       "acquired-reference tracking disabled: programs may exit while "
       "holding socket references"},
      {std::string(kFaultHelperTaskStackLeak), "helper",
       "Reference count leak", "commit 06ab134ce8ec",
       "bpf_get_task_stack takes a task reference and forgets to drop it on "
       "the error path"},
      {std::string(kFaultHelperSkLookupLeak), "helper",
       "Reference count leak", "commit 3046a827316c",
       "sk lookup helpers leak request_sock references"},
      {std::string(kFaultHelperArrayOverflow), "helper",
       "Integer overflow/underflow", "commit 87ac0d600943",
       "array map element offset computed in 32 bits wraps for large "
       "index*value_size"},
      {std::string(kFaultHelperTaskStorageNull), "helper",
       "Null-pointer dereference", "commit 1a9c72ad4c26",
       "bpf_task_storage_get dereferences the owner task pointer without a "
       "NULL check"},
      {std::string(kFaultJitBranchOffByOne), "jit",
       "Arbitrary read/write", "CVE-2021-29154",
       "branch displacement miscomputed during image finalization hijacks "
       "control flow"},
      {std::string(kFaultJitElideUnproven), "jit",
       "Arbitrary read/write", "check-elision soundness class",
       "JIT lowering elides runtime bounds checks for memory micro-ops the "
       "static analyses never proved in-bounds"},
      {std::string(kFaultSchedStallLoop), "helper", "Deadlock/Hang",
       "sched_ext watchdog timeout class",
       "bpf_sched_pick_default spins over a corrupted dispatch list, "
       "burning CPU far past the pick deadline on every call"},
      {std::string(kFaultSchedPickInvalidPid), "helper", "Use-after-free",
       "stale pid reuse class",
       "bpf_sched_peek_pid serves a cached pid of an already-exited task, "
       "steering the scheduler at freed state"},
      {std::string(kFaultSchedRunnableFilter), "helper", "Starvation",
       "runqueue enumeration off-by-one class",
       "bpf_sched_nr_runnable/peek_pid skip the newest runnable task, so "
       "any enumerating policy starves it indefinitely"},
      {std::string(kFaultSchedCrashOnPick), "helper",
       "Null-pointer dereference", "sched_ext NULL task walk class",
       "bpf_sched_wait_ns walks a NULL task_struct when the queue entry is "
       "mid-update, oopsing on the pick path"},
      {std::string(kFaultVerifierFamilyGateSkip), "verifier",
       "Missing permission check", "ACHyb KACV census class",
       "the helper-family gate is skipped at admission: restricted-family "
       "helpers (sched/lsm) verify fine from any program type, and net "
       "helpers verify from decision-maker programs"},
      {std::string(kFaultVerifierVersionGateOffByOne), "verifier",
       "Missing permission check", "feature-gate off-by-one class",
       "the version gate compares against the next minor release, so a "
       "helper is admitted one kernel version before it exists"},
      {std::string(kFaultRuntimeDispatchUnverified), "runtime",
       "Missing permission check", "dispatch-table confusion class",
       "the JIT call-site binding skips the family/version contract "
       "re-check, so a call the verifier never approved still resolves to "
       "a live helper function at dispatch"},
  };
  return kCatalog;
}

FaultRegistry::FaultRegistry() : flags_(Catalog().size()) {}

xbase::usize FaultRegistry::IndexOf(std::string_view id) {
  static const std::map<std::string_view, xbase::usize>* kIndex = [] {
    auto* index = new std::map<std::string_view, xbase::usize>();
    const auto& catalog = Catalog();
    for (xbase::usize i = 0; i < catalog.size(); ++i) {
      (*index)[catalog[i].id] = i;  // keys view Catalog()'s static strings
    }
    return index;
  }();
  const auto it = kIndex->find(id);
  return it == kIndex->end() ? static_cast<xbase::usize>(-1) : it->second;
}

void FaultRegistry::Inject(std::string_view id) {
  const xbase::usize index = IndexOf(id);
  std::lock_guard<std::mutex> lock(mu_);
  if (index != static_cast<xbase::usize>(-1)) {
    if (!flags_[index].exchange(true, std::memory_order_release)) {
      epoch_.fetch_add(1, std::memory_order_release);
    }
  } else if (other_active_.insert(std::string(id)).second) {
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

void FaultRegistry::Clear(std::string_view id) {
  const xbase::usize index = IndexOf(id);
  std::lock_guard<std::mutex> lock(mu_);
  if (index != static_cast<xbase::usize>(-1)) {
    if (flags_[index].exchange(false, std::memory_order_release)) {
      epoch_.fetch_add(1, std::memory_order_release);
    }
  } else if (other_active_.erase(std::string(id)) > 0) {
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

void FaultRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = false;
  for (std::atomic<bool>& flag : flags_) {
    changed |= flag.exchange(false, std::memory_order_release);
  }
  if (!other_active_.empty()) {
    other_active_.clear();
    changed = true;
  }
  if (changed) {
    epoch_.fetch_add(1, std::memory_order_release);
  }
}

bool FaultRegistry::IsActive(std::string_view id) const {
  const xbase::usize index = IndexOf(id);
  if (index != static_cast<xbase::usize>(-1)) {
    // The hot path: one atomic load, no lock shared with other readers.
    return flags_[index].load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(mu_);
  return other_active_.contains(id);
}

xbase::usize FaultRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  xbase::usize count = other_active_.size();
  for (const std::atomic<bool>& flag : flags_) {
    count += flag.load(std::memory_order_acquire) ? 1 : 0;
  }
  return count;
}

}  // namespace ebpf

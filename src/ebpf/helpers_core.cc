// Core helper suite: maps, time, tasks, tracing, strings, locks, ring
// buffers, bpf_loop and bpf_sys_bpf. Every helper registers its verifier
// argument specification, its introduction version (Figure 4) and its call
// graph footprint (Figure 3), then an implementation that does real work
// against the simulated kernel.
#include <cstring>

#include "src/ebpf/helpers_internal.h"
#include "src/simkern/subsys.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

using simkern::Addr;
using simkern::KernelVersion;
using xbase::usize;

void LinkHelperCallGraph(
    simkern::Kernel& kernel, const std::string& entry,
    std::initializer_list<std::pair<const char*, usize>> links) {
  simkern::CallGraph& graph = kernel.callgraph();
  graph.Intern(entry);
  for (const auto& [subsys, reach] : links) {
    usize count = 0;
    for (const simkern::SubsystemSpec& spec : simkern::DefaultSubsystems()) {
      if (spec.name == subsys) {
        count = spec.function_count;
        break;
      }
    }
    if (count == 0 || reach == 0) {
      continue;
    }
    graph.AddEdge(entry, simkern::SubsystemEntry(subsys, count, reach));
  }
}

xbase::Result<std::vector<u8>> ReadMem(simkern::Kernel& kernel, Addr addr,
                                       usize size) {
  std::vector<u8> out(size);
  xbase::Status status = kernel.mem().ReadChecked(addr, out, 0);
  if (!status.ok()) {
    return kernel.Route(std::move(status));
  }
  return out;
}

xbase::Status WriteMem(simkern::Kernel& kernel, Addr addr,
                       std::span<const u8> data) {
  return kernel.Route(kernel.mem().WriteChecked(addr, data, 0));
}

xbase::Result<Map*> ResolveMapArg(HelperCtx& ctx, u64 arg) {
  XB_ASSIGN_OR_RETURN(const int fd, FdFromMapHandle(arg));
  return ctx.maps.Find(fd);
}

namespace {

// Registration shorthand.
struct Def {
  HelperWiring& wiring;

  xbase::Status operator()(
      HelperSpec spec,
      std::initializer_list<std::pair<const char*, usize>> links,
      HelperFn fn) {
    if (spec.entry_func.empty()) {
      spec.entry_func = spec.name;
    }
    LinkHelperCallGraph(wiring.kernel, spec.entry_func, links);
    return wiring.registry.Register(std::move(spec), std::move(fn));
  }
};

HelperSpec MakeSpec(u32 id, const char* name, KernelVersion version,
                    std::initializer_list<ArgType> args, RetType ret,
                    u64 cost_ns = simkern::kCostHelperCallNs) {
  HelperSpec spec;
  spec.id = id;
  spec.name = name;
  spec.introduced = version;
  int i = 0;
  for (ArgType arg : args) {
    spec.args[i++] = arg;
  }
  spec.ret = ret;
  spec.cost_ns = cost_ns;
  return spec;
}

constexpr ArgType kA = ArgType::kAnything;
constexpr ArgType kMapPtr = ArgType::kConstMapPtr;
constexpr ArgType kKey = ArgType::kMapKey;
constexpr ArgType kVal = ArgType::kMapValue;
constexpr ArgType kMem = ArgType::kPtrToMem;
constexpr ArgType kUMem = ArgType::kPtrToUninitMem;
constexpr ArgType kSz = ArgType::kMemSize;
constexpr ArgType kCtxA = ArgType::kCtx;
constexpr ArgType kScalarA = ArgType::kScalar;

// Reads a map key argument (key size taken from the map).
xbase::Result<std::vector<u8>> ReadKey(HelperCtx& ctx, Map* map, u64 addr) {
  return ReadMem(ctx.kernel, addr, map->spec().key_size);
}

}  // namespace

xbase::Status RegisterCoreHelpers(HelperWiring& wiring) {
  Def def{wiring};
  std::shared_ptr<HelperState> state = wiring.state;

  // --- maps (v3.18, the original trio) ----------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperMapLookupElem, "bpf_map_lookup_elem", {3, 18},
               {kMapPtr, kKey}, RetType::kMapValueOrNull,
               simkern::kCostMapOpNs),
      {{"map_impl", 280}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> key,
                            ReadKey(ctx, map, a[1]));
        auto addr = map->LookupAddr(ctx.kernel, key);
        if (!addr.ok()) {
          return 0;  // NULL
        }
        return addr.value();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperMapUpdateElem, "bpf_map_update_elem", {3, 18},
               {kMapPtr, kKey, kVal, kA}, RetType::kInteger,
               simkern::kCostMapOpNs),
      {{"map_impl", 300}, {"mm", 260}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> key,
                            ReadKey(ctx, map, a[1]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> value,
                            ReadMem(ctx.kernel, a[2],
                                    map->spec().value_size));
        const xbase::Status status =
            map->Update(ctx.kernel, key, value, a[3]);
        if (status.code() == xbase::Code::kResourceExhausted) {
          return NegErrno(kE2Big);
        }
        if (status.code() == xbase::Code::kAlreadyExists) {
          return NegErrno(kEExist);
        }
        if (status.code() == xbase::Code::kNotFound) {
          return NegErrno(kENoEnt);
        }
        if (!status.ok()) {
          return status;
        }
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperMapDeleteElem, "bpf_map_delete_elem", {3, 18},
               {kMapPtr, kKey}, RetType::kInteger, simkern::kCostMapOpNs),
      {{"map_impl", 290}, {"mm", 100}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> key,
                            ReadKey(ctx, map, a[1]));
        const xbase::Status status = map->Delete(ctx.kernel, key);
        if (status.code() == xbase::Code::kNotFound) {
          return NegErrno(kENoEnt);
        }
        if (status.code() == xbase::Code::kInvalidArgument) {
          return NegErrno(kEInval);
        }
        if (!status.ok()) {
          return status;
        }
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperMapPushElem, "bpf_map_push_elem", {4, 20},
               {kMapPtr, kVal, kA}, RetType::kInteger,
               simkern::kCostMapOpNs),
      {{"map_impl", 260}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        // Modelled on the queue/stack maps: push == update with a
        // synthesized key (entry count).
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> value,
                            ReadMem(ctx.kernel, a[1],
                                    map->spec().value_size));
        std::vector<u8> key(map->spec().key_size, 0);
        if (key.size() >= 4) {
          xbase::StoreLe32(key.data(), map->entry_count());
        }
        const xbase::Status status =
            map->Update(ctx.kernel, key, value, kBpfAny);
        return status.ok() ? u64{0} : NegErrno(kE2Big);
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperMapPopElem, "bpf_map_pop_elem", {4, 20},
               {kMapPtr, kUMem, kSz}, RetType::kInteger,
               simkern::kCostMapOpNs),
      {{"map_impl", 255}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        std::vector<u8> key(map->spec().key_size, 0);
        if (key.size() >= 4 && map->entry_count() > 0) {
          xbase::StoreLe32(key.data(), map->entry_count() - 1);
        }
        auto addr = map->LookupAddr(ctx.kernel, key);
        if (!addr.ok()) {
          return NegErrno(kENoEnt);
        }
        XB_ASSIGN_OR_RETURN(
            const std::vector<u8> value,
            ReadMem(ctx.kernel, addr.value(), map->spec().value_size));
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[1], value));
        (void)map->Delete(ctx.kernel, key);
        return 0;
      }));

  // --- probing (v4.1) -----------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperProbeRead, "bpf_probe_read", {4, 1},
               {kUMem, kSz, kA}, RetType::kInteger),
      {{"mm", 20}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        // The fault-tolerant reader: a bad source address returns -EFAULT
        // instead of oopsing (it is the one helper that *may* take any
        // address).
        std::vector<u8> buf(a[1]);
        if (buf.size() > 4096) {
          return NegErrno(kEInval);
        }
        if (!ctx.kernel.mem().Read(a[2], buf).ok()) {
          return NegErrno(kEFault);
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[0], buf));
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperProbeReadStr, "bpf_probe_read_str", {4, 11},
               {kUMem, kSz, kA}, RetType::kInteger),
      {{"mm", 22}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const usize cap = std::min<u64>(a[1], 4096);
        std::vector<u8> out;
        for (usize i = 0; i < cap; ++i) {
          u8 byte;
          if (!ctx.kernel.mem().Read(a[2] + i, {&byte, 1}).ok()) {
            return NegErrno(kEFault);
          }
          out.push_back(byte);
          if (byte == 0) {
            break;
          }
        }
        if (!out.empty() && out.back() != 0) {
          out.back() = 0;
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[0], out));
        return out.size();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperProbeWriteUser, "bpf_probe_write_user", {4, 8},
               {kA, kMem, kSz}, RetType::kInteger),
      {{"mm", 200}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const std::vector<u8> data,
                            ReadMem(ctx.kernel, a[1], a[2]));
        if (!ctx.kernel.mem().Write(a[0], data).ok()) {
          return NegErrno(kEFault);
        }
        return 0;
      }));

  // --- time ------------------------------------------------------------------
  const auto ktime = [](HelperCtx& ctx,
                        const HelperArgs&) -> xbase::Result<u64> {
    return ctx.kernel.clock().now_ns();
  };
  XB_RETURN_IF_ERROR(def(MakeSpec(kHelperKtimeGetNs, "bpf_ktime_get_ns",
                                  {4, 1}, {}, RetType::kInteger),
                         {{"timekeeping", 8}}, ktime));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperKtimeGetBootNs, "bpf_ktime_get_boot_ns", {5, 8}, {},
               RetType::kInteger),
      {{"timekeeping", 8}}, ktime));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperKtimeGetTaiNs, "bpf_ktime_get_tai_ns", {6, 1}, {},
               RetType::kInteger),
      {{"timekeeping", 8}}, ktime));

  // --- cpu / randomness --------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetPrandomU32, "bpf_get_prandom_u32", {4, 1}, {},
               RetType::kInteger),
      {{"util", 2}},
      [state](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        std::lock_guard<std::mutex> lock(state->mu);
        return state->rng.NextU32();
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetSmpProcessorId, "bpf_get_smp_processor_id", {4, 1},
               {}, RetType::kInteger),
      {},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        return ctx.kernel.current_cpu();
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetNumaNodeId, "bpf_get_numa_node_id", {4, 10}, {},
               RetType::kInteger),
      {}, [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));

  // --- current task -----------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCurrentPidTgid, "bpf_get_current_pid_tgid", {4, 2},
               {}, RetType::kInteger),
      {},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        const simkern::Task* task = ctx.kernel.tasks().current();
        if (task == nullptr) {
          return NegErrno(kEInval);
        }
        return (static_cast<u64>(task->tgid) << 32) | task->pid;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCurrentUidGid, "bpf_get_current_uid_gid", {4, 2},
               {}, RetType::kInteger),
      {{"util", 3}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;  // root in the simulation
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCurrentComm, "bpf_get_current_comm", {4, 2},
               {kUMem, kSz}, RetType::kInteger),
      {{"util", 4}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const simkern::Task* task = ctx.kernel.tasks().current();
        if (task == nullptr) {
          return NegErrno(kEInval);
        }
        std::vector<u8> buf(std::min<u64>(a[1], 16), 0);
        std::memcpy(buf.data(), task->comm.c_str(),
                    std::min(buf.size() - 1, task->comm.size()));
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[0], buf));
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCurrentTask, "bpf_get_current_task", {4, 8}, {},
               RetType::kInteger),
      {},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        // Returns the raw task_struct address as a *scalar* — a kernel
        // pointer handed straight to the program. This is faithful to the
        // real helper and is itself a controlled info-leak the verifier
        // cannot do anything about.
        const simkern::Task* task = ctx.kernel.tasks().current();
        return task == nullptr ? 0 : task->struct_addr;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCurrentTaskBtf, "bpf_get_current_task_btf", {5, 11},
               {}, RetType::kTaskOrNull),
      {},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        const simkern::Task* task = ctx.kernel.tasks().current();
        return task == nullptr ? 0 : task->struct_addr;
      }));

  // --- tracing ------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperTracePrintk, "bpf_trace_printk", {4, 1}, {kMem, kSz},
               RetType::kInteger, 100),
      {{"trace", 420}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const std::vector<u8> fmt,
                            ReadMem(ctx.kernel, a[0],
                                    std::min<u64>(a[1], 128)));
        std::string text(fmt.begin(), fmt.end());
        if (const auto nul = text.find('\0'); nul != std::string::npos) {
          text.resize(nul);
        }
        ctx.kernel.Printk("bpf_trace_printk: " + text);
        return text.size();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperPerfEventRead, "bpf_perf_event_read", {4, 3},
               {kMapPtr, kA}, RetType::kInteger),
      {{"trace", 300}},
      [state](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        std::lock_guard<std::mutex> lock(state->mu);
        return state->rng.NextBelow(1 << 20);  // synthetic counter value
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperPerfEventReadValue, "bpf_perf_event_read_value",
               {4, 15}, {kMapPtr, kA, kUMem, kSz}, RetType::kInteger),
      {{"trace", 310}},
      [state](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        std::vector<u8> buf(std::min<u64>(a[3], 24), 0);
        if (buf.size() >= 8) {
          std::lock_guard<std::mutex> lock(state->mu);
          xbase::StoreLe64(buf.data(), state->rng.NextBelow(1 << 20));
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[2], buf));
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperPerfEventOutput, "bpf_perf_event_output", {4, 4},
               {kCtxA, kMapPtr, kA, kMem, kSz}, RetType::kInteger, 150),
      {{"trace", 520}},
      [state](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const std::vector<u8> data,
                            ReadMem(ctx.kernel, a[3],
                                    std::min<u64>(a[4], 512)));
        std::lock_guard<std::mutex> lock(state->mu);
        state->perf_events.push_back(data);
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetStackid, "bpf_get_stackid", {4, 6},
               {kCtxA, kMapPtr, kA}, RetType::kInteger, 200),
      {{"trace", 510}, {"mm", 40}},
      [state](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        std::lock_guard<std::mutex> lock(state->mu);
        return state->rng.NextBelow(1024);  // synthetic stack bucket
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetStack, "bpf_get_stack", {4, 18},
               {kCtxA, kUMem, kSz, kA}, RetType::kInteger, 200),
      {{"trace", 500}, {"mm", 40}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const simkern::Task* task = ctx.kernel.tasks().current();
        if (task == nullptr) {
          return NegErrno(kEInval);
        }
        const usize bytes = std::min<u64>(a[2], 64) & ~usize{7};
        std::vector<u8> frames(bytes, 0);
        for (usize off = 0; off + 8 <= bytes; off += 8) {
          xbase::StoreLe64(frames.data() + off, task->stack_addr + off);
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[1], frames));
        return bytes;
      }));

  // bpf_get_task_stack: the Table 1 refcount-leak site (commit 06ab134c).
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetTaskStack, "bpf_get_task_stack", {5, 9},
               {ArgType::kTask, kUMem, kSz, kA}, RetType::kInteger, 250),
      {{"task", 500}, {"mm", 60}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        auto task_result = ctx.kernel.tasks().FindByAddr(a[0]);
        if (!task_result.ok()) {
          return NegErrno(kEInval);
        }
        const simkern::Task* task = task_result.value();
        // The helper pins the task while it walks the stack.
        XB_RETURN_IF_ERROR(
            ctx.kernel.Route(ctx.kernel.objects().Acquire(task->object_id)));
        if (ctx.hooks != nullptr) {
          ctx.hooks->NoteAcquire(task->object_id);
        }
        const usize bytes = std::min<u64>(a[2], 64) & ~usize{7};
        if (bytes < 8) {
          // Error path. The injected defect models the real bug: the early
          // return forgets to drop the reference it took above.
          if (!ctx.faults.IsActive(kFaultHelperTaskStackLeak)) {
            XB_RETURN_IF_ERROR(ctx.kernel.Route(
                ctx.kernel.objects().Release(task->object_id)));
            if (ctx.hooks != nullptr) {
              ctx.hooks->NoteRelease(task->object_id);
            }
          }
          return NegErrno(kEFault);
        }
        std::vector<u8> frames(bytes, 0);
        for (usize off = 0; off + 8 <= bytes; off += 8) {
          xbase::StoreLe64(frames.data() + off, task->stack_addr + off);
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[1], frames));
        XB_RETURN_IF_ERROR(
            ctx.kernel.Route(ctx.kernel.objects().Release(task->object_id)));
        if (ctx.hooks != nullptr) {
          ctx.hooks->NoteRelease(task->object_id);
        }
        return bytes;
      }));

  // --- cgroups ----------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetCgroupClassid, "bpf_get_cgroup_classid", {4, 3},
               {kCtxA}, RetType::kInteger),
      {{"cgroup", 25}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 1;  // root cgroup class
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperCurrentTaskUnderCgroup, "bpf_current_task_under_cgroup",
               {4, 9}, {kMapPtr, kA}, RetType::kInteger),
      {{"cgroup", 130}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 1;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperCgrpStorageGet, "bpf_cgrp_storage_get", {6, 1},
               {kMapPtr, kA, kA, kA}, RetType::kMapValueOrNull,
               simkern::kCostMapOpNs),
      {{"cgroup", 160}, {"mm", 140}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        std::vector<u8> key(map->spec().key_size, 0);
        auto addr = map->LookupAddr(ctx.kernel, key);
        return addr.ok() ? addr.value() : u64{0};
      }));

  // --- signals ------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSendSignal, "bpf_send_signal", {5, 3}, {kA},
               RetType::kInteger),
      {{"task", 400}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const simkern::Task* task = ctx.kernel.tasks().current();
        ctx.kernel.Printk(xbase::StrFormat(
            "bpf_send_signal: sig %llu to pid %u",
            static_cast<unsigned long long>(a[0]),
            task == nullptr ? 0 : task->pid));
        return 0;
      }));

  // --- spin locks (v5.1) ----------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSpinLock, "bpf_spin_lock", {5, 1},
               {ArgType::kSpinLock}, RetType::kVoid),
      {{"util", 1}},
      [state](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        // Resolve/create the id under state->mu, but drop it before
        // Acquire: a contended cross-CPU acquire blocks, and holding
        // state->mu through the wait would deadlock against the holder's
        // eventual bpf_spin_unlock (which needs state->mu too).
        simkern::LockId id;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          auto it = state->lock_ids.find(a[0]);
          if (it == state->lock_ids.end()) {
            it = state->lock_ids
                     .emplace(a[0],
                              ctx.kernel.locks().Create(xbase::StrFormat(
                                  "bpf_spin_lock@0x%llx",
                                  static_cast<unsigned long long>(a[0]))))
                     .first;
          }
          id = it->second;
        }
        XB_RETURN_IF_ERROR(
            ctx.kernel.Route(ctx.kernel.locks().Acquire(id, "bpf")));
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSpinUnlock, "bpf_spin_unlock", {5, 1},
               {ArgType::kSpinLock}, RetType::kVoid),
      {{"util", 1}},
      [state](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        simkern::LockId id;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          auto it = state->lock_ids.find(a[0]);
          if (it == state->lock_ids.end()) {
            return ctx.kernel.Route(
                xbase::KernelFault("bpf_spin_unlock of unknown lock"));
          }
          id = it->second;
        }
        XB_RETURN_IF_ERROR(ctx.kernel.Route(ctx.kernel.locks().Release(id)));
        return 0;
      }));

  // --- strings (the §3.2 "retirable" helpers) --------------------------------------
  const auto strtol_impl = [](HelperCtx& ctx, const HelperArgs& a,
                              bool is_signed) -> xbase::Result<u64> {
    const usize len = std::min<u64>(a[1], 64);
    XB_ASSIGN_OR_RETURN(const std::vector<u8> raw,
                        ReadMem(ctx.kernel, a[0], len));
    usize pos = 0;
    while (pos < raw.size() && (raw[pos] == ' ' || raw[pos] == '\t')) {
      ++pos;
    }
    bool negative = false;
    if (is_signed && pos < raw.size() &&
        (raw[pos] == '-' || raw[pos] == '+')) {
      negative = raw[pos] == '-';
      ++pos;
    }
    const usize digits_start = pos;
    s64 value = 0;
    while (pos < raw.size() && raw[pos] >= '0' && raw[pos] <= '9') {
      value = value * 10 + (raw[pos] - '0');
      ++pos;
    }
    if (pos == digits_start) {
      return NegErrno(kEInval);
    }
    if (negative) {
      value = -value;
    }
    u8 out[8];
    xbase::StoreLe64(out, static_cast<u64>(value));
    XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[3], out));
    return pos;
  };
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperStrtol, "bpf_strtol", {5, 2}, {kMem, kSz, kA, kUMem},
               RetType::kInteger),
      {{"util", 10}},
      [strtol_impl](HelperCtx& ctx, const HelperArgs& a) {
        return strtol_impl(ctx, a, true);
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperStrtoul, "bpf_strtoul", {5, 2}, {kMem, kSz, kA, kUMem},
               RetType::kInteger),
      {{"util", 10}},
      [strtol_impl](HelperCtx& ctx, const HelperArgs& a) {
        return strtol_impl(ctx, a, false);
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperStrncmp, "bpf_strncmp", {5, 17}, {kMem, kSz, kMem},
               RetType::kInteger),
      {{"util", 8}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const usize len = std::min<u64>(a[1], 256);
        XB_ASSIGN_OR_RETURN(const std::vector<u8> s1,
                            ReadMem(ctx.kernel, a[0], len));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> s2,
                            ReadMem(ctx.kernel, a[2], len));
        for (usize i = 0; i < len; ++i) {
          if (s1[i] != s2[i]) {
            return static_cast<u64>(
                static_cast<s64>(s1[i]) - static_cast<s64>(s2[i]));
          }
          if (s1[i] == 0) {
            break;
          }
        }
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      // The format string is ARG_PTR_TO_CONST_STR in the kernel: walked
      // byte-by-byte to its NUL rather than size-checked.
      MakeSpec(kHelperSnprintf, "bpf_snprintf", {5, 13},
               {kUMem, kSz, kA, kMem, kSz}, RetType::kInteger, 150),
      {{"util", 14}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        std::vector<u8> fmt_raw;
        for (usize i = 0; i < 128; ++i) {
          u8 byte;
          if (!ctx.kernel.mem().Read(a[2] + i, {&byte, 1}).ok()) {
            return NegErrno(kEFault);
          }
          fmt_raw.push_back(byte);
          if (byte == 0) {
            break;
          }
        }
        XB_ASSIGN_OR_RETURN(const std::vector<u8> data,
                            ReadMem(ctx.kernel, a[3],
                                    std::min<u64>(a[4], 64)));
        std::string out;
        usize arg_index = 0;
        for (usize i = 0; i < fmt_raw.size() && fmt_raw[i] != 0; ++i) {
          const char c = static_cast<char>(fmt_raw[i]);
          if (c != '%' || i + 1 >= fmt_raw.size()) {
            out.push_back(c);
            continue;
          }
          const char kind = static_cast<char>(fmt_raw[++i]);
          u64 value = 0;
          if (arg_index * 8 + 8 <= data.size()) {
            value = xbase::LoadLe64(data.data() + arg_index * 8);
          }
          switch (kind) {
            case 'd':
              out += std::to_string(static_cast<s64>(value));
              ++arg_index;
              break;
            case 'u':
              out += std::to_string(value);
              ++arg_index;
              break;
            case 'x':
              out += xbase::StrFormat(
                  "%llx", static_cast<unsigned long long>(value));
              ++arg_index;
              break;
            case '%':
              out.push_back('%');
              break;
            default:
              return NegErrno(kEInval);
          }
        }
        std::vector<u8> buf(std::min<u64>(a[1], out.size() + 1));
        std::memcpy(buf.data(), out.data(),
                    std::min(buf.empty() ? 0 : buf.size() - 1, out.size()));
        if (!buf.empty()) {
          buf.back() = 0;
        }
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[0], buf));
        return out.size() + 1;
      }));

  // --- ring buffer (v5.8) -------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperRingbufOutput, "bpf_ringbuf_output", {5, 8},
               {kMapPtr, kMem, kSz, kA}, RetType::kInteger, 120),
      {{"mm", 350}, {"map_impl", 160}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        auto* ringbuf = dynamic_cast<RingBufMap*>(map);
        if (ringbuf == nullptr) {
          return NegErrno(kEInval);
        }
        XB_ASSIGN_OR_RETURN(const std::vector<u8> data,
                            ReadMem(ctx.kernel, a[1],
                                    std::min<u64>(a[2], 4096)));
        const xbase::Status status = ringbuf->Output(ctx.kernel, data);
        return status.ok() ? u64{0} : NegErrno(kENoSpc);
      }));

  struct RingbufRec {
    std::map<Addr, simkern::ObjectId> live;
  };
  auto ringbuf_recs = std::make_shared<RingbufRec>();

  {
    HelperSpec spec =
        MakeSpec(kHelperRingbufReserve, "bpf_ringbuf_reserve", {5, 8},
                 {kMapPtr, kSz, kA}, RetType::kMemOrNull, 100);
    spec.acquires_ref = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"mm", 280}, {"map_impl", 110}},
        [ringbuf_recs](HelperCtx& ctx,
                       const HelperArgs& a) -> xbase::Result<u64> {
          XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
          auto* ringbuf = dynamic_cast<RingBufMap*>(map);
          if (ringbuf == nullptr) {
            return NegErrno(kEInval);
          }
          auto addr = ringbuf->Reserve(ctx.kernel, static_cast<u32>(a[1]));
          if (!addr.ok()) {
            return 0;  // NULL
          }
          const simkern::ObjectId id = ctx.kernel.objects().Create(
              simkern::ObjectType::kOther, "ringbuf-record");
          ringbuf_recs->live.emplace(addr.value(), id);
          if (ctx.hooks != nullptr) {
            ctx.hooks->NoteAcquire(id);
          }
          return addr.value();
        }));
  }

  const auto finish_record = [ringbuf_recs](HelperCtx& ctx, u64 addr,
                                            bool commit)
      -> xbase::Result<u64> {
    auto it = ringbuf_recs->live.find(addr);
    if (it == ringbuf_recs->live.end()) {
      return ctx.kernel.Route(
          xbase::KernelFault("ringbuf submit/discard of unknown record"));
    }
    if (ctx.hooks != nullptr) {
      ctx.hooks->NoteRelease(it->second);
    }
    (void)ctx.kernel.objects().Release(it->second);
    // Locate the owning ringbuf by scanning maps (few maps per kernel).
    ringbuf_recs->live.erase(it);
    (void)commit;
    return 0;
  };
  {
    HelperSpec spec = MakeSpec(kHelperRingbufSubmit, "bpf_ringbuf_submit",
                               {5, 8}, {kA, kA}, RetType::kVoid);
    spec.releases_ref_arg = 1;
    XB_RETURN_IF_ERROR(def(std::move(spec), {{"map_impl", 30}},
                           [finish_record](HelperCtx& ctx,
                                           const HelperArgs& a) {
                             return finish_record(ctx, a[0], true);
                           }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperRingbufDiscard, "bpf_ringbuf_discard",
                               {5, 8}, {kA, kA}, RetType::kVoid);
    spec.releases_ref_arg = 1;
    XB_RETURN_IF_ERROR(def(std::move(spec), {{"map_impl", 28}},
                           [finish_record](HelperCtx& ctx,
                                           const HelperArgs& a) {
                             return finish_record(ctx, a[0], false);
                           }));
  }

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperUserRingbufDrain, "bpf_user_ringbuf_drain", {6, 1},
               {kMapPtr, kA, kA, kA}, RetType::kInteger, 200),
      {{"mm", 360}, {"map_impl", 160}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;  // no user-side producer in the simulation
      }));

  // --- task storage (v5.11): the NULL-owner bug site -----------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperTaskStorageGet, "bpf_task_storage_get", {5, 11},
               {kMapPtr, ArgType::kTask, kA, kA}, RetType::kMapValueOrNull,
               simkern::kCostMapOpNs),
      {{"task", 380}, {"mm", 140}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        auto* storage = dynamic_cast<TaskStorageMap*>(map);
        if (storage == nullptr) {
          return NegErrno(kEInval);
        }
        // Commit 1a9c72ad4c26 added exactly this check; with the defect
        // injected the helper dereferences the NULL owner and oopses.
        if (a[1] == 0 &&
            !ctx.faults.IsActive(kFaultHelperTaskStorageNull)) {
          return 0;  // NULL
        }
        const bool create = (a[3] & 1) != 0;
        auto addr = storage->GetForTask(ctx.kernel, a[1], create);
        if (!addr.ok()) {
          if (addr.status().code() == xbase::Code::kKernelFault) {
            return ctx.kernel.Route(addr.status());
          }
          return 0;
        }
        return addr.value();
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperTaskStorageDelete, "bpf_task_storage_delete", {5, 11},
               {kMapPtr, ArgType::kTask}, RetType::kInteger,
               simkern::kCostMapOpNs),
      {{"task", 340}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        if (a[1] == 0) {
          return NegErrno(kEInval);
        }
        u8 pid_bytes[4];
        const xbase::Status read_status = ctx.kernel.mem().ReadChecked(
            a[1] + simkern::TaskLayout::kPid, pid_bytes, 0);
        if (!read_status.ok()) {
          return ctx.kernel.Route(read_status);
        }
        const xbase::Status status = map->Delete(ctx.kernel, pid_bytes);
        return status.ok() ? u64{0} : NegErrno(kENoEnt);
      }));

  // --- find_vma ---------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperFindVma, "bpf_find_vma", {5, 17},
               {ArgType::kTask, kA, kA, kA, kA}, RetType::kInteger, 300),
      {{"mm", 450}, {"task", 100}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        auto task = ctx.kernel.tasks().FindByAddr(a[0]);
        if (!task.ok()) {
          return NegErrno(kEInval);
        }
        const u64 addr = a[1];
        if (addr >= task.value()->stack_addr &&
            addr < task.value()->stack_addr + task.value()->stack_size) {
          return 0;
        }
        return NegErrno(kENoEnt);
      }));

  // --- tail calls --------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperTailCall, "bpf_tail_call", {4, 2},
               {kCtxA, kMapPtr, kA}, RetType::kVoid),
      {{"bpf_syscall", 25}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[1]));
        auto* progs = dynamic_cast<ProgArrayMap*>(map);
        if (progs == nullptr) {
          return NegErrno(kEInval);
        }
        const auto prog_id = progs->ProgIdAt(static_cast<u32>(a[2]));
        if (!prog_id.has_value()) {
          return NegErrno(kENoEnt);  // fall through, keep executing
        }
        if (ctx.hooks == nullptr) {
          return NegErrno(kEInval);
        }
        if (!ctx.hooks->RequestTailCall(*prog_id).ok()) {
          // Tail-call chain limit reached: the helper fails and execution
          // falls through, like the kernel's MAX_TAIL_CALL_CNT behaviour.
          return NegErrno(kEPerm);
        }
        return 0;
      }));

  // --- bpf_loop (v5.17): the §2.2 termination exploit's vehicle ------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperLoop, "bpf_loop", {5, 17},
               {kA, ArgType::kFunc, kA, kA}, RetType::kInteger),
      {{"bpf_syscall", 5}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        if (ctx.hooks == nullptr) {
          return NegErrno(kEInval);
        }
        const u64 nr_loops = std::min<u64>(a[0], 1ULL << 23);
        const u32 callback_pc = static_cast<u32>(a[1]);
        u64 i = 0;
        for (; i < nr_loops; ++i) {
          XB_ASSIGN_OR_RETURN(const u64 ret,
                              ctx.hooks->InvokeCallback(callback_pc, i,
                                                        a[2]));
          if (ret != 0) {
            ++i;
            break;
          }
        }
        return i;
      }));

  // --- bpf_sys_bpf (v5.14): the §2.2 safety exploit's vehicle --------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSysBpf, "bpf_sys_bpf", {5, 14}, {kA, kMem, kSz},
               RetType::kInteger, 500),
      {{"bpf_syscall", 4800}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const u32 cmd = static_cast<u32>(a[0]);
        if (a[2] < 16) {
          return NegErrno(kEInval);
        }
        XB_ASSIGN_OR_RETURN(const std::vector<u8> attr,
                            ReadMem(ctx.kernel, a[1],
                                    std::min<u64>(a[2], 64)));
        switch (cmd) {
          case kSysBpfMapCreate: {
            MapSpec spec;
            spec.type = MapType::kArray;
            spec.key_size = 4;
            spec.value_size =
                std::max<u32>(1, xbase::LoadLe32(attr.data() + 4));
            spec.max_entries =
                std::max<u32>(1, xbase::LoadLe32(attr.data() + 8));
            spec.name = "sys_bpf-map";
            auto fd = ctx.maps.Create(spec);
            if (!fd.ok()) {
              return NegErrno(kEInval);
            }
            return static_cast<u64>(fd.value());
          }
          case kSysBpfProgLoad: {
            // The attr is a *union*; for PROG_LOAD the second qword is a
            // pointer to the instruction buffer. The verifier proved that
            // `attr` points to attr_size readable bytes — it knows nothing
            // about the pointer stored inside. Dereferencing it with a NULL
            // or garbage field is the paper's §2.2 kernel crash.
            const u64 insns_ptr =
                xbase::LoadLe64(attr.data() + kSysBpfAttrInsnsPtrOff);
            u8 first_insn[8];
            const xbase::Status status =
                ctx.kernel.mem().ReadChecked(insns_ptr, first_insn, 0);
            if (!status.ok()) {
              return ctx.kernel.Route(status);  // oops
            }
            ctx.kernel.Printk("bpf_sys_bpf: nested prog_load accepted");
            return 0;
          }
          default:
            return NegErrno(kEInval);
        }
      }));

  return xbase::Status::Ok();
}

}  // namespace ebpf

#include "src/ebpf/asm.h"

#include <limits>

#include "src/xbase/strfmt.h"

namespace ebpf {

ProgramBuilder& ProgramBuilder::JmpTo(u8 op, u8 dst, s32 imm,
                                      const std::string& label) {
  fixups_.push_back(Fixup{prog_.len(), label, FixupKind::kJump});
  prog_.insns.push_back(JmpImm(op, dst, imm, 0));
  return *this;
}

ProgramBuilder& ProgramBuilder::JmpRegTo(u8 op, u8 dst, u8 src,
                                         const std::string& label) {
  fixups_.push_back(Fixup{prog_.len(), label, FixupKind::kJump});
  prog_.insns.push_back(JmpReg(op, dst, src, 0));
  return *this;
}

ProgramBuilder& ProgramBuilder::JaTo(const std::string& label) {
  fixups_.push_back(Fixup{prog_.len(), label, FixupKind::kJump});
  prog_.insns.push_back(Ja(0));
  return *this;
}

ProgramBuilder& ProgramBuilder::CallTo(const std::string& label) {
  fixups_.push_back(Fixup{prog_.len(), label, FixupKind::kCall});
  prog_.insns.push_back(CallPseudo(0));
  return *this;
}

ProgramBuilder& ProgramBuilder::LdFuncTo(u8 dst, const std::string& label) {
  fixups_.push_back(Fixup{prog_.len(), label, FixupKind::kFunc});
  Ins(LdFunc(dst, 0));
  return *this;
}

ProgramBuilder& ProgramBuilder::Bind(const std::string& label) {
  labels_[label] = prog_.len();
  return *this;
}

xbase::Result<Program> ProgramBuilder::Build() {
  for (const Fixup& fixup : fixups_) {
    auto it = labels_.find(fixup.label);
    if (it == labels_.end()) {
      return xbase::InvalidArgument("unbound label: " + fixup.label);
    }
    switch (fixup.kind) {
      case FixupKind::kFunc:
        // Absolute instruction index.
        prog_.insns[fixup.insn_index].imm = static_cast<s32>(it->second);
        break;
      case FixupKind::kCall: {
        const s64 delta = static_cast<s64>(it->second) -
                          static_cast<s64>(fixup.insn_index) - 1;
        prog_.insns[fixup.insn_index].imm = static_cast<s32>(delta);
        break;
      }
      case FixupKind::kJump: {
        // Jump offsets are relative to the instruction *after* the jump.
        const s64 delta = static_cast<s64>(it->second) -
                          static_cast<s64>(fixup.insn_index) - 1;
        if (delta < std::numeric_limits<s16>::min() ||
            delta > std::numeric_limits<s16>::max()) {
          return xbase::InvalidArgument("jump target out of range: " +
                                        fixup.label);
        }
        prog_.insns[fixup.insn_index].off = static_cast<s16>(delta);
        break;
      }
    }
  }
  return prog_;
}

}  // namespace ebpf

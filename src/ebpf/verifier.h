// The in-kernel eBPF verifier: symbolic execution over all program paths,
// tracking a type + tristate-number + range abstraction per register and per
// stack slot, with state pruning at branch targets. Structured like
// kernel/bpf/verifier.c and gated by the per-version feature table so that a
// "v4.9 verifier" genuinely lacks the passes later kernels added.
//
// This is the component the paper argues should retire; building it
// faithfully is what makes the argument measurable (Fig. 2 growth, path
// explosion, Table 1 verifier-bug exploits).
#pragma once

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ebpf/fault.h"
#include "src/ebpf/helper.h"
#include "src/ebpf/kfunc.h"
#include "src/ebpf/map.h"
#include "src/ebpf/prog.h"
#include "src/ebpf/rangetrace.h"
#include "src/ebpf/tnum.h"
#include "src/ebpf/verifier_features.h"
#include "src/simkern/version.h"

namespace ebpf {

// ---- register abstraction ----------------------------------------------------

enum class RegType : u8 {
  kNotInit = 0,
  kScalar,
  kPtrToCtx,
  kConstPtrToMap,
  kPtrToMapValue,
  kPtrToMapValueOrNull,
  kPtrToStack,
  kPtrToPacket,
  kPtrToPacketEnd,
  kPtrToMem,        // helper-provided memory (ringbuf record)
  kPtrToMemOrNull,
  kPtrToSock,
  kPtrToSockOrNull,
  kPtrToTask,
  kPtrToTaskOrNull,
  kPtrToFunc,  // callback reference from a BPF_PSEUDO_FUNC ld_imm64
};

std::string_view RegTypeName(RegType type);

inline bool IsPointerType(RegType type) {
  return type != RegType::kNotInit && type != RegType::kScalar;
}
inline bool IsOrNullType(RegType type) {
  return type == RegType::kPtrToMapValueOrNull ||
         type == RegType::kPtrToMemOrNull ||
         type == RegType::kPtrToSockOrNull ||
         type == RegType::kPtrToTaskOrNull;
}
RegType UnwrapOrNull(RegType type);

struct RegState {
  RegType type = RegType::kNotInit;
  // Scalar abstraction (also the variable part of pointer offsets).
  Tnum var_off = TnumUnknown();
  s64 smin = std::numeric_limits<s64>::min();
  s64 smax = std::numeric_limits<s64>::max();
  u64 umin = 0;
  u64 umax = std::numeric_limits<u64>::max();
  // Pointer payload.
  s32 off = 0;        // fixed offset from the object base
  int map_fd = -1;    // kConstPtrToMap / map values
  u32 mem_size = 0;   // kPtrToMem
  u32 pkt_range = 0;  // kPtrToPacket: bytes proven readable past base
  u32 id = 0;         // join key for OrNull refinement & packet ranges
  u32 ref_obj_id = 0; // nonzero if this reg carries an acquired reference

  bool operator==(const RegState&) const = default;

  void MarkUnknownScalar();
  // Unknown scalar bounded by a zero-extending load of `size` bytes.
  void MarkScalarLoad(u32 size);
  void MarkConst(u64 value);
  bool IsConst() const { return type == RegType::kScalar && var_off.IsConst(); }

  // Re-derives bounds from var_off and vice versa (the kernel's
  // __update_reg_bounds / __reg_deduce_bounds / __reg_bound_offset trio).
  void SyncBounds();

  std::string ToString() const;
};

// ---- stack abstraction ----------------------------------------------------------

enum class SlotKind : u8 { kInvalid = 0, kSpill, kMisc, kZero };

struct StackSlot {
  SlotKind kind = SlotKind::kInvalid;
  RegState spilled;  // valid when kind == kSpill

  bool operator==(const StackSlot&) const = default;
};

inline constexpr u32 kStackSlots = kMaxStackBytes / 8;

// ---- per-frame and per-path state ---------------------------------------------------

struct FuncState {
  RegState regs[kNumRegs];
  std::vector<StackSlot> stack{kStackSlots};
  u32 callsite = 0;       // return pc in the caller (frames > 0)
  u32 frame_no = 0;
  u32 subprog_start = 0;

  bool operator==(const FuncState&) const = default;
};

struct VerifierState {
  std::vector<FuncState> frames;
  std::vector<u32> acquired_refs;  // open ref_obj_ids
  u32 active_spin_lock_id = 0;     // nonzero while a lock is held

  FuncState& cur() { return frames.back(); }
  const FuncState& cur() const { return frames.back(); }
};

// ---- options & results -----------------------------------------------------------------

struct VerifyOptions {
  simkern::KernelVersion version = simkern::kV5_18;
  bool privileged = true;
  // Injected verifier defects consulted during checking (may be null).
  const FaultRegistry* faults = nullptr;
  // kfunc registry for BPF_PSEUDO_KFUNC_CALL checking (may be null: all
  // kfunc calls rejected).
  const class KfuncRegistry* kfuncs = nullptr;
  // Ablation knob: keep state bookkeeping (and infinite-loop detection)
  // but never prune against completed paths. Exposes what states_equal
  // pruning buys (bench/ablation_pruning).
  bool disable_pruning = false;
  // When set, every explored (pc, register) pair joins its scalar claim
  // here: the verifier's side of the range differential oracle. Reset to
  // the program length by Verify itself. Pruning keeps the trace sound:
  // pruned states are subsumed by a stored state that was walked.
  RangeTrace* range_trace = nullptr;
};

struct VerifyStats {
  u64 insns_processed = 0;   // total simulated instructions walked
  u64 states_explored = 0;   // pushed branch states
  u64 states_pruned = 0;     // pruned by states_equal
  u64 peak_states = 0;       // max pending + stored states
  u64 states_leaked = 0;     // nonzero only under the state-leak defect
  u64 verification_wall_ns = 0;
  u32 prog_len = 0;
  u32 subprog_count = 1;
  u32 max_stack_depth = 0;
};

struct VerifyResult {
  VerifyStats stats;
  // Subprogram entry points discovered (pc 0 implicit).
  std::vector<u32> subprog_starts;
  // Instruction indexes of verified bpf_loop callbacks.
  std::vector<u32> callback_entries;
};

// Verifies `prog` against the map table and helper registry. Returns
// Rejected with the kernel-style message on refusal; Internal if the
// verifier itself malfunctions (only under injected defects).
xbase::Result<VerifyResult> Verify(const Program& prog, const MapTable& maps,
                                   const HelperRegistry& helpers,
                                   const VerifyOptions& options);

// Context layout metadata the verifier uses per program type.
struct CtxRules {
  u32 size = 64;
  bool writable = true;
  bool has_packet_ptrs = false;  // data/data_end fields yield packet ptrs
};
CtxRules CtxRulesFor(ProgType type);

}  // namespace ebpf

// Helper function registry. A helper is a normal kernel function exposed to
// BPF programs: it has (a) an argument/return specification the verifier
// enforces at the call site, (b) an implementation that runs against the
// simulated kernel, (c) the kernel version that introduced it (Figure 4
// census), and (d) an entry point in the kernel call graph (Figure 3
// complexity measurement). The specification is shallow by design — that
// shallowness is the paper's §2.2 point: the verifier checks that an
// argument *is* a pointer to N readable bytes, never what is *inside*.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/ebpf/fault.h"
#include "src/ebpf/map.h"
#include "src/ebpf/prog.h"
#include "src/simkern/kernel.h"
#include "src/xbase/status.h"

namespace ebpf {

// Argument classes, mirroring the kernel's bpf_arg_type.
enum class ArgType : u8 {
  kNone = 0,
  kAnything,       // any initialized value
  kConstMapPtr,    // must be a ld_imm64 map reference
  kMapKey,         // pointer to key_size readable bytes
  kMapValue,       // pointer to value_size readable bytes
  kPtrToMem,       // pointer to readable bytes, size in the next arg
  kPtrToUninitMem, // pointer to writable bytes, size in the next arg
  kMemSize,        // byte count for the preceding pointer
  kCtx,            // the program context pointer
  kScalar,         // any scalar (non-pointer)
  kSock,           // socket obtained from an acquiring helper
  kTask,           // task_struct pointer
  kSpinLock,       // pointer to a map value holding a spin lock
  kFunc,           // callback reference (bpf_loop)
};

enum class RetType : u8 {
  kInteger = 0,
  kVoid,
  kMapValueOrNull,
  kSockOrNull,
  kTaskOrNull,
  kMemOrNull,
};

// Helper families gate which program types may call a helper. This is the
// privilege model of the scheduler and LSM hook families: scheduler
// helpers mutate the runqueue, so only sched_ext programs (attachable by
// privileged loaders only) may call them — and a sched_ext program has no
// packet, so the net family is off limits to it. LSM helpers read the
// access-control decision context and emit audit state, so only lsm
// programs (also privileged-only) may call them.
enum class HelperFamily : u8 {
  kGeneric,  // callable from any program type
  kNet,      // packet/socket helpers: not callable from sched_ext/lsm
  kSched,    // runqueue helpers: callable only from sched_ext
  kLsm,      // access-control helpers: callable only from lsm programs
};

std::string_view HelperFamilyName(HelperFamily family);

// The declared access-control contract, stated once and consumed by every
// enforcement layer (verifier gate, runtime dispatch gate) and by the
// permcheck census that model-checks those layers against it. A layer that
// disagrees with these predicates has dropped a permission check.
//
// Which program types a family admits: kGeneric admits all; kNet admits
// everything except the decision-maker families (sched_ext, lsm); kSched
// admits only sched_ext; kLsm admits only lsm.
bool FamilyAdmitsProgType(HelperFamily family, ProgType type);
// Whether loading a program of `type` requires a privileged loader
// regardless of the unprivileged-bpf sysctl (sched_ext picks every task's
// CPU; lsm decides every access): the loader-layer half of the contract.
bool ProgTypeRequiresPrivilege(ProgType type);
// The single program type a restricted family admits (kSched -> sched_ext,
// kLsm -> lsm); used for witness synthesis and gate messages. Generic/net
// families return the neutral kSocketFilter.
ProgType AdmittingProgType(HelperFamily family);

// Runtime services helpers need from the executor. Implemented by the
// interpreter; null when a helper is unit-tested in isolation.
class RuntimeHooks {
 public:
  virtual ~RuntimeHooks() = default;
  // Runs a callback subprogram (bpf_loop, bpf_for_each_map_elem).
  virtual xbase::Result<u64> InvokeCallback(u32 entry_pc, u64 arg1,
                                            u64 arg2) = 0;
  // Requests a tail call into the loaded program with this id; takes effect
  // when the current helper returns.
  virtual xbase::Status RequestTailCall(u32 prog_id) = 0;
  // Reference bookkeeping for acquire/release helpers.
  virtual void NoteAcquire(simkern::ObjectId id) = 0;
  virtual void NoteRelease(simkern::ObjectId id) = 0;
  // Charges simulated time (helpers with real work charge more).
  virtual void Charge(u64 ns) = 0;
  // The context address the program was invoked with.
  virtual simkern::Addr ctx_addr() const = 0;
};

struct HelperCtx {
  simkern::Kernel& kernel;
  MapTable& maps;
  FaultRegistry& faults;
  RuntimeHooks* hooks = nullptr;  // may be null outside program execution
};

using HelperArgs = std::array<u64, 5>;
using HelperFn =
    std::function<xbase::Result<u64>(HelperCtx&, const HelperArgs&)>;

struct HelperSpec {
  u32 id = 0;
  std::string name;
  simkern::KernelVersion introduced;
  std::array<ArgType, 5> args = {ArgType::kNone, ArgType::kNone,
                                 ArgType::kNone, ArgType::kNone,
                                 ArgType::kNone};
  RetType ret = RetType::kInteger;
  bool acquires_ref = false;   // returned object carries a reference
  int releases_ref_arg = 0;    // 1-based arg index releasing a reference
  bool gpl_only = false;
  bool changes_packet_data = false;
  // Capability bit: true when the helper mutates kernel or shared state
  // (maps, runqueue, audit log) rather than only reading it. Census
  // severity metadata: a missing permission check in front of a writing
  // helper is a worse gap than one in front of a pure reader.
  bool writes_state = false;
  HelperFamily family = HelperFamily::kGeneric;
  std::string entry_func;      // call-graph node of the implementation
  u64 cost_ns = simkern::kCostHelperCallNs;

  int arg_count() const {
    int count = 0;
    for (ArgType arg : args) {
      if (arg != ArgType::kNone) {
        ++count;
      }
    }
    return count;
  }
};

// Real Linux helper ids for the helpers this kernel implements.
enum HelperId : u32 {
  kHelperMapLookupElem = 1,
  kHelperMapUpdateElem = 2,
  kHelperMapDeleteElem = 3,
  kHelperProbeRead = 4,
  kHelperKtimeGetNs = 5,
  kHelperTracePrintk = 6,
  kHelperGetPrandomU32 = 7,
  kHelperGetSmpProcessorId = 8,
  kHelperSkbStoreBytes = 9,
  kHelperL3CsumReplace = 10,
  kHelperL4CsumReplace = 11,
  kHelperTailCall = 12,
  kHelperCloneRedirect = 13,
  kHelperGetCurrentPidTgid = 14,
  kHelperGetCurrentUidGid = 15,
  kHelperGetCurrentComm = 16,
  kHelperGetCgroupClassid = 17,
  kHelperSkbVlanPush = 18,
  kHelperSkbVlanPop = 19,
  kHelperSkbGetTunnelKey = 20,
  kHelperSkbSetTunnelKey = 21,
  kHelperPerfEventRead = 22,
  kHelperRedirect = 23,
  kHelperGetRouteRealm = 24,
  kHelperPerfEventOutput = 25,
  kHelperSkbLoadBytes = 26,
  kHelperGetStackid = 27,
  kHelperCsumDiff = 28,
  kHelperSkbChangeProto = 31,
  kHelperSkbChangeType = 32,
  kHelperSkbUnderCgroup = 33,
  kHelperGetHashRecalc = 34,
  kHelperGetCurrentTask = 35,
  kHelperProbeWriteUser = 36,
  kHelperCurrentTaskUnderCgroup = 37,
  kHelperSkbChangeTail = 38,
  kHelperSkbPullData = 39,
  kHelperGetNumaNodeId = 42,
  kHelperXdpAdjustHead = 44,
  kHelperProbeReadStr = 45,
  kHelperGetSocketCookie = 46,
  kHelperGetSocketUid = 47,
  kHelperSetHash = 48,
  kHelperSetsockopt = 49,
  kHelperSkbAdjustRoom = 50,
  kHelperXdpAdjustMeta = 54,
  kHelperPerfEventReadValue = 55,
  kHelperGetStack = 67,
  kHelperFibLookup = 69,
  kHelperSkLookupTcp = 84,
  kHelperSkLookupUdp = 85,
  kHelperSkRelease = 86,
  kHelperMapPushElem = 87,
  kHelperMapPopElem = 88,
  kHelperSpinLock = 93,
  kHelperSpinUnlock = 94,
  kHelperStrtol = 105,
  kHelperStrtoul = 106,
  kHelperSkStorageGet = 107,
  kHelperSendSignal = 109,
  kHelperKtimeGetBootNs = 125,
  kHelperRingbufOutput = 130,
  kHelperRingbufReserve = 131,
  kHelperRingbufSubmit = 132,
  kHelperRingbufDiscard = 133,
  kHelperCsumLevel = 135,
  kHelperGetTaskStack = 141,
  kHelperSnprintf = 165,
  kHelperTaskStorageGet = 156,
  kHelperTaskStorageDelete = 157,
  kHelperGetCurrentTaskBtf = 158,
  kHelperSysBpf = 166,
  kHelperFindVma = 180,
  kHelperLoop = 181,
  kHelperStrncmp = 182,
  kHelperKtimeGetTaiNs = 208,
  kHelperUserRingbufDrain = 209,
  kHelperCgrpStorageGet = 210,
  // Scheduler family (v6.12 sched_ext). Real kernels expose these as
  // kfuncs rather than numbered helpers; we model them as a versioned
  // helper family, numbered above the real-Linux id range.
  kHelperSchedNrRunnable = 230,
  kHelperSchedPeekPid = 231,
  kHelperSchedWaitNs = 232,
  kHelperSchedEnqueue = 233,
  kHelperSchedDequeue = 234,
  kHelperSchedPickDefault = 235,
  kHelperSchedYield = 236,
  // LSM family (v6.12). Access-control helpers for lsm programs deciding
  // file-open verdicts; numbered above the sched family.
  kHelperLsmInodeId = 240,
  kHelperLsmOpenFlags = 241,
  kHelperLsmCurrentUid = 242,
  kHelperLsmReadPath = 243,
  kHelperLsmAudit = 244,
  kHelperLsmRatelimit = 245,
};

// bpf_sys_bpf sub-commands (subset).
inline constexpr u32 kSysBpfMapCreate = 0;
inline constexpr u32 kSysBpfProgLoad = 5;
// Layout of the attr union passed to bpf_sys_bpf for kSysBpfProgLoad:
// offset 0: u32 prog_type; offset 8: u64 pointer to instruction buffer.
// The pointer inside the union is exactly what the verifier cannot see.
inline constexpr u32 kSysBpfAttrInsnsPtrOff = 8;

class HelperRegistry {
 public:
  xbase::Status Register(HelperSpec spec, HelperFn fn);

  xbase::Result<const HelperSpec*> FindSpec(u32 id) const;
  xbase::Result<const HelperFn*> FindFn(u32 id) const;

  // All registered helpers ordered by id.
  std::vector<const HelperSpec*> AllSpecs() const;
  // Number available at a given kernel version (Figure 4 series).
  xbase::usize CountAtVersion(simkern::KernelVersion version) const;

  // Registry-wide consistency assert, run at kernel construction: every
  // helper has a unique id (Register enforces), a non-empty unique name, a
  // known family, a non-zero introduction version, an entry function, and
  // a gap-free argument spec (no argument after the first kNone). Catches
  // silent table drift when a new family is wired in.
  xbase::Status Validate() const;

 private:
  struct Entry {
    HelperSpec spec;
    HelperFn fn;
  };
  std::map<u32, Entry> helpers_;
};

// Registers the full default helper suite into `registry`, wiring entry
// points and call edges into `kernel`'s call graph.
xbase::Status RegisterDefaultHelpers(HelperRegistry& registry,
                                     simkern::Kernel& kernel);

}  // namespace ebpf

// The eBPF instruction set, encoded exactly as Linux defines it
// (include/uapi/linux/bpf.h): 8-byte instructions with a 3-bit class, 1-bit
// source and 4-bit operation in the opcode, 4-bit dst/src register fields, a
// 16-bit signed offset and a 32-bit signed immediate. Using the real
// encoding keeps the verifier, interpreter and JIT honest: they face the
// same decode problems the kernel does.
#pragma once

#include <string_view>
#include <vector>

#include "src/xbase/types.h"

namespace ebpf {

using xbase::s16;
using xbase::s32;
using xbase::s64;
using xbase::u16;
using xbase::u32;
using xbase::u64;
using xbase::u8;

// ---- instruction classes (opcode & 0x07) ----------------------------------
inline constexpr u8 BPF_LD = 0x00;
inline constexpr u8 BPF_LDX = 0x01;
inline constexpr u8 BPF_ST = 0x02;
inline constexpr u8 BPF_STX = 0x03;
inline constexpr u8 BPF_ALU = 0x04;   // 32-bit ALU
inline constexpr u8 BPF_JMP = 0x05;   // 64-bit compares
inline constexpr u8 BPF_JMP32 = 0x06; // 32-bit compares (v5.1+)
inline constexpr u8 BPF_ALU64 = 0x07;

// ---- size modifiers for LD/LDX/ST/STX (opcode & 0x18) ---------------------
inline constexpr u8 BPF_W = 0x00;   // 4 bytes
inline constexpr u8 BPF_H = 0x08;   // 2 bytes
inline constexpr u8 BPF_B = 0x10;   // 1 byte
inline constexpr u8 BPF_DW = 0x18;  // 8 bytes

// ---- mode modifiers (opcode & 0xe0) ----------------------------------------
inline constexpr u8 BPF_IMM = 0x00;
inline constexpr u8 BPF_ABS = 0x20;
inline constexpr u8 BPF_IND = 0x40;
inline constexpr u8 BPF_MEM = 0x60;
inline constexpr u8 BPF_ATOMIC = 0xc0;

// ---- source (opcode & 0x08) -------------------------------------------------
inline constexpr u8 BPF_K = 0x00;  // immediate operand
inline constexpr u8 BPF_X = 0x08;  // register operand

// ---- ALU operations (opcode & 0xf0) ----------------------------------------
inline constexpr u8 BPF_ADD = 0x00;
inline constexpr u8 BPF_SUB = 0x10;
inline constexpr u8 BPF_MUL = 0x20;
inline constexpr u8 BPF_DIV = 0x30;
inline constexpr u8 BPF_OR = 0x40;
inline constexpr u8 BPF_AND = 0x50;
inline constexpr u8 BPF_LSH = 0x60;
inline constexpr u8 BPF_RSH = 0x70;
inline constexpr u8 BPF_NEG = 0x80;
inline constexpr u8 BPF_MOD = 0x90;
inline constexpr u8 BPF_XOR = 0xa0;
inline constexpr u8 BPF_MOV = 0xb0;
inline constexpr u8 BPF_ARSH = 0xc0;
inline constexpr u8 BPF_END = 0xd0;

// ---- JMP operations (opcode & 0xf0) ----------------------------------------
inline constexpr u8 BPF_JA = 0x00;
inline constexpr u8 BPF_JEQ = 0x10;
inline constexpr u8 BPF_JGT = 0x20;
inline constexpr u8 BPF_JGE = 0x30;
inline constexpr u8 BPF_JSET = 0x40;
inline constexpr u8 BPF_JNE = 0x50;
inline constexpr u8 BPF_JSGT = 0x60;
inline constexpr u8 BPF_JSGE = 0x70;
inline constexpr u8 BPF_CALL = 0x80;
inline constexpr u8 BPF_EXIT = 0x90;
inline constexpr u8 BPF_JLT = 0xa0;
inline constexpr u8 BPF_JLE = 0xb0;
inline constexpr u8 BPF_JSLT = 0xc0;
inline constexpr u8 BPF_JSLE = 0xd0;

// ---- registers ---------------------------------------------------------------
inline constexpr u8 R0 = 0;   // return value
inline constexpr u8 R1 = 1;   // arg1 / context on entry
inline constexpr u8 R2 = 2;
inline constexpr u8 R3 = 3;
inline constexpr u8 R4 = 4;
inline constexpr u8 R5 = 5;   // last argument register
inline constexpr u8 R6 = 6;   // callee-saved from here
inline constexpr u8 R7 = 7;
inline constexpr u8 R8 = 8;
inline constexpr u8 R9 = 9;
inline constexpr u8 R10 = 10; // frame pointer, read-only
inline constexpr int kNumRegs = 11;

// ---- pseudo src_reg values on BPF_LD_IMM64 / BPF_CALL ------------------------
inline constexpr u8 BPF_PSEUDO_MAP_FD = 1;  // ld_imm64 imm = map fd
inline constexpr u8 BPF_PSEUDO_CALL = 1;    // call imm = relative subprog pc
inline constexpr u8 BPF_PSEUDO_KFUNC_CALL = 2;
inline constexpr u8 BPF_PSEUDO_FUNC = 4;    // ld_imm64 imm = callback pc

// ---- limits -------------------------------------------------------------------
inline constexpr u32 kMaxStackBytes = 512;
inline constexpr u32 kMaxProgLenUnpriv = 4096;
inline constexpr u32 kMaxTailCallDepth = 33;
inline constexpr u32 kMaxCallFrames = 8;

struct Insn {
  u8 opcode = 0;
  u8 dst = 0;  // 4-bit in the wire format; kept as u8 for convenience
  u8 src = 0;
  s16 off = 0;
  s32 imm = 0;

  u8 Class() const { return opcode & 0x07; }
  u8 AluOp() const { return opcode & 0xf0; }
  u8 JmpOp() const { return opcode & 0xf0; }
  u8 Size() const { return opcode & 0x18; }
  u8 Mode() const { return opcode & 0xe0; }
  bool UsesRegSrc() const { return (opcode & BPF_X) != 0; }

  bool IsLdImm64() const {
    return opcode == (BPF_LD | BPF_DW | BPF_IMM);
  }
  bool IsCall() const {
    return Class() == BPF_JMP && JmpOp() == BPF_CALL;
  }
  bool IsHelperCall() const { return IsCall() && src == 0; }
  bool IsPseudoCall() const { return IsCall() && src == BPF_PSEUDO_CALL; }
  bool IsKfuncCall() const {
    return IsCall() && src == BPF_PSEUDO_KFUNC_CALL;
  }
  bool IsExit() const {
    return Class() == BPF_JMP && JmpOp() == BPF_EXIT;
  }

  bool operator==(const Insn&) const = default;
};

// Byte width of a memory access opcode (1, 2, 4 or 8).
inline u32 SizeBytes(u8 size_code) {
  switch (size_code) {
    case BPF_B:
      return 1;
    case BPF_H:
      return 2;
    case BPF_W:
      return 4;
    case BPF_DW:
      return 8;
  }
  return 0;
}

std::string_view AluOpName(u8 op);
std::string_view JmpOpName(u8 op);

}  // namespace ebpf

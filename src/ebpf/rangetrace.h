// Per-instruction register range claims, exported by both the verifier
// (path-sensitive, joined over every explored path) and staticcheck's
// range dataflow (path-insensitive fixpoint). This header is plain data —
// no analysis logic — so that staticcheck may include it without touching
// the verifier it cross-checks (the independence invariant greps only for
// verifier includes, but keeping this dependency-free keeps the boundary
// honest).
//
// A claim is a *may* statement: "every concrete value this register can
// hold when execution reaches this pc is admitted". The three consumers:
//   - analysis/diffcheck compares the two analyses' claims per (pc, reg)
//     and flags disjoint intervals (at least one analysis must be wrong);
//   - analysis/rangefuzz checks concrete interpreter register values
//     against the claims (a value outside a claim is an unsoundness
//     witness — the CVE-2020-8835 shape);
//   - tools/xcheck --ranges renders the side-by-side table for humans.
#pragma once

#include <array>
#include <limits>
#include <string>
#include <vector>

#include "src/ebpf/insn.h"
#include "src/xbase/strfmt.h"
#include "src/xbase/types.h"

namespace ebpf {

struct RegClaim {
  enum class Kind : u8 {
    kNone,    // pc never reached with this register live
    kScalar,  // every path reaching here holds a scalar: ranges apply
    kOther,   // pointer / uninitialized / mixed: ranges unchecked
  };

  Kind kind = Kind::kNone;
  u64 umin = 0;
  u64 umax = ~u64{0};
  s64 smin = std::numeric_limits<s64>::min();
  s64 smax = std::numeric_limits<s64>::max();
  // Known-bits claim (tnum shape): bit i of `bits_mask` set means bit i is
  // unknown; where clear, bit i equals bit i of `bits_value`.
  u64 bits_value = 0;
  u64 bits_mask = ~u64{0};

  // Whether a concrete 64-bit register value satisfies the claim. Only
  // meaningful for kScalar; other kinds admit everything (unchecked).
  bool Admits(u64 v) const {
    if (kind != Kind::kScalar) {
      return true;
    }
    return v >= umin && v <= umax && static_cast<s64>(v) >= smin &&
           static_cast<s64>(v) <= smax &&
           ((v ^ bits_value) & ~bits_mask) == 0;
  }

  // Joins a scalar observation into the claim (union).
  void JoinScalar(u64 new_umin, u64 new_umax, s64 new_smin, s64 new_smax,
                  u64 value, u64 mask) {
    if (kind == Kind::kOther) {
      return;
    }
    if (kind == Kind::kNone) {
      kind = Kind::kScalar;
      umin = new_umin;
      umax = new_umax;
      smin = new_smin;
      smax = new_smax;
      bits_value = value;
      bits_mask = mask;
      return;
    }
    umin = umin < new_umin ? umin : new_umin;
    umax = umax > new_umax ? umax : new_umax;
    smin = smin < new_smin ? smin : new_smin;
    smax = smax > new_smax ? smax : new_smax;
    // Tnum union: a bit stays known only where both claims know it and
    // agree on it.
    const u64 unknown = bits_mask | mask | (bits_value ^ value);
    bits_value = bits_value & value & ~unknown;
    bits_mask = unknown;
  }

  // Any non-scalar observation (pointer, not-init) poisons the claim:
  // concrete values can no longer be checked against it.
  void JoinOther() { kind = Kind::kOther; }

  // Unsigned interval width, saturating at u64 max; the precision metric.
  u64 Width() const { return umax - umin; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kNone:
        return "-";
      case Kind::kOther:
        return "nonscalar";
      case Kind::kScalar:
        break;
    }
    if (umin == umax) {
      return xbase::StrFormat("{%llu}",
                              static_cast<unsigned long long>(umin));
    }
    return xbase::StrFormat(
        "u[%llu,%llu] s[%lld,%lld] tnum(%llx/%llx)",
        static_cast<unsigned long long>(umin),
        static_cast<unsigned long long>(umax),
        static_cast<long long>(smin), static_cast<long long>(smax),
        static_cast<unsigned long long>(bits_value),
        static_cast<unsigned long long>(bits_mask));
  }
};

// Two scalar claims with no common value: at least one analysis is wrong
// about this register — unless the pc is unreachable, where any claim is
// vacuously sound (rangefuzz therefore only treats disjointness at
// concretely-executed pcs as a finding).
inline bool ClaimsDisjoint(const RegClaim& a, const RegClaim& b) {
  if (a.kind != RegClaim::Kind::kScalar ||
      b.kind != RegClaim::Kind::kScalar) {
    return false;
  }
  const u64 lo = a.umin > b.umin ? a.umin : b.umin;
  const u64 hi = a.umax < b.umax ? a.umax : b.umax;
  if (lo > hi) {
    return true;
  }
  const s64 slo = a.smin > b.smin ? a.smin : b.smin;
  const s64 shi = a.smax < b.smax ? a.smax : b.smax;
  if (slo > shi) {
    return true;
  }
  // Known bits that contradict: both claim to know a bit, differently.
  return ((a.bits_value ^ b.bits_value) & ~a.bits_mask & ~b.bits_mask) != 0;
}

// ---------------------------------------------------------------------------
// Relational claims: per-pc upper bounds on pairwise register differences,
// `(s64)R[i] - (s64)R[j] <= bound[i][j]`, where the subtraction is
// mathematical (evaluated in 128 bits, no wraparound). Exported by the
// verifier as path-joined facts (per-path smax_i - smin_j, max over
// paths — tighter than what the joined intervals imply whenever paths
// correlate registers) and by staticcheck's zone domain. Like RegClaim, a
// relational claim is a *may* statement and bounds only pairs that are
// scalars on every contributing path.
// ---------------------------------------------------------------------------

inline constexpr int kRelRegs = 10;  // R0..R9; R10 is never a scalar
inline constexpr s64 kRelInf = std::numeric_limits<s64>::max();

struct RelClaims {
  bool seen = false;  // pc reached by at least one contributing path/state
  std::array<s64, kRelRegs * kRelRegs> bound;

  RelClaims() { bound.fill(kRelInf); }

  s64 At(int i, int j) const {
    return bound[static_cast<xbase::usize>(i * kRelRegs + j)];
  }
  void Set(int i, int j, s64 c) {
    bound[static_cast<xbase::usize>(i * kRelRegs + j)] = c;
  }

  // Joins one path's (or the fixpoint's) bounds: first contribution copies,
  // later ones take the elementwise max (union of admitted states).
  void JoinPath(const std::array<s64, kRelRegs * kRelRegs>& path) {
    if (!seen) {
      seen = true;
      bound = path;
      return;
    }
    for (xbase::usize k = 0; k < bound.size(); ++k) {
      if (path[k] > bound[k]) bound[k] = path[k];
    }
  }

  // Whether concrete register values satisfy every finite bound.
  bool Admits(const std::array<u64, kRelRegs>& regs) const {
    if (!seen) return true;
    for (int i = 0; i < kRelRegs; ++i) {
      for (int j = 0; j < kRelRegs; ++j) {
        const s64 c = At(i, j);
        if (i == j || c == kRelInf) continue;
        const __int128 diff =
            static_cast<__int128>(static_cast<s64>(regs[static_cast<xbase::usize>(i)])) -
            static_cast<__int128>(static_cast<s64>(regs[static_cast<xbase::usize>(j)]));
        if (diff > static_cast<__int128>(c)) return false;
      }
    }
    return true;
  }
};

// Two finite bounds a: (ri - rj <= x) and b: (rj - ri <= y) contradict when
// x + y < 0 — no concrete pair satisfies both, so at least one analysis is
// wrong (modulo unreachable pcs, same caveat as ClaimsDisjoint).
inline bool RelBoundsContradict(s64 a_ij, s64 b_ji) {
  if (a_ij == kRelInf || b_ji == kRelInf) return false;
  return static_cast<__int128>(a_ij) + static_cast<__int128>(b_ji) < 0;
}

// Per-pc memory-safety claim: "every bounds check this analysis ran at
// this pc succeeded". `seen` distinguishes "never analysed" (fail-closed:
// the JIT must keep the runtime check) from "analysed and proven".
// `proven` is ANDed over every visit, so a pc reached on multiple paths
// is only claimed when all of them are in bounds.
struct MemClaim {
  bool seen = false;
  bool proven = true;
  void Record(bool ok) {
    seen = true;
    proven = proven && ok;
  }
};

struct RangeTrace {
  std::vector<std::array<RegClaim, kNumRegs>> per_pc;
  std::vector<RelClaims> rel_per_pc;
  std::vector<MemClaim> mem_per_pc;
  // When set before verification, only mem_per_pc is populated; the
  // per-register interval and relational claims (the expensive part of
  // trace recording) are skipped. The loader uses this so check elision
  // never pays the differential-testing export cost on the load path.
  bool mem_only = false;

  void Reset(xbase::usize prog_len) {
    mem_per_pc.assign(prog_len, {});
    if (mem_only) {
      per_pc.clear();
      rel_per_pc.clear();
      return;
    }
    per_pc.assign(prog_len, {});
    rel_per_pc.assign(prog_len, {});
  }
  bool empty() const { return per_pc.empty(); }
};

// Renders the finite difference bounds at one pc, e.g.
// "r1-r2<=-1 r2-r1<=32"; "-" when nothing is bounded.
inline std::string FormatRelClaims(const RelClaims& rc) {
  if (!rc.seen) return "-";
  std::string out;
  for (int i = 0; i < kRelRegs; ++i) {
    for (int j = 0; j < kRelRegs; ++j) {
      if (i == j || rc.At(i, j) == kRelInf) continue;
      if (!out.empty()) out += " ";
      out += xbase::StrFormat("r%d-r%d<=%lld", i, j,
                              static_cast<long long>(rc.At(i, j)));
    }
  }
  return out.empty() ? "(top)" : out;
}

}  // namespace ebpf

#include "src/ebpf/map.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <shared_mutex>

#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

u64 Map::NextGeneration() {
  static std::atomic<u64> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

using simkern::MemPerm;
using simkern::RegionKind;
using xbase::StrFormat;
using xbase::u16;
using xbase::usize;

std::string_view MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray:
      return "array";
    case MapType::kHash:
      return "hash";
    case MapType::kPercpuArray:
      return "percpu_array";
    case MapType::kProgArray:
      return "prog_array";
    case MapType::kRingBuf:
      return "ringbuf";
    case MapType::kTaskStorage:
      return "task_storage";
  }
  return "unknown";
}

xbase::Status Map::CheckKeySize(std::span<const u8> key) const {
  if (key.size() != spec_.key_size) {
    return xbase::InvalidArgument(
        StrFormat("map %s: key size %zu != %u", spec_.name.c_str(),
                  key.size(), spec_.key_size));
  }
  return xbase::Status::Ok();
}

xbase::Status Map::CheckValueSize(std::span<const u8> value) const {
  if (value.size() != spec_.value_size) {
    return xbase::InvalidArgument(
        StrFormat("map %s: value size %zu != %u", spec_.name.c_str(),
                  value.size(), spec_.value_size));
  }
  return xbase::Status::Ok();
}

// ---- ArrayMap ----------------------------------------------------------------

xbase::Result<std::unique_ptr<ArrayMap>> ArrayMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  if (spec.key_size != 4) {
    return xbase::InvalidArgument("array map key must be u32");
  }
  if (spec.max_entries == 0 || spec.value_size == 0) {
    return xbase::InvalidArgument("array map needs entries and value size");
  }
  auto map = std::unique_ptr<ArrayMap>(new ArrayMap(fd, std::move(spec)));
  XB_ASSIGN_OR_RETURN(
      map->values_base_,
      kernel.mem().Map(static_cast<usize>(map->spec().value_size) *
                           map->spec().max_entries,
                       MemPerm::kReadWrite, RegionKind::kMapData,
                       "map:" + map->spec().name));
  return map;
}

xbase::Result<Addr> ArrayMap::LookupAddr(simkern::Kernel& kernel,
                                         std::span<const u8> key) {
  (void)kernel;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  const u32 index = xbase::LoadLe32(key.data());
  if (index >= spec().max_entries) {
    return xbase::NotFound("array index out of range");
  }
  if (index_overflow_bug_) {
    // Injected defect (commit 87ac0d600943 class): the element offset is
    // computed in narrow arithmetic, so index * value_size wraps and
    // aliases a lower element. Linux wrapped at 32 bits with multi-GB
    // maps; the simulation wraps at 16 bits so the aliasing is observable
    // with kilobyte-scale maps — same bug shape, scaled geometry.
    const u16 wrapped = static_cast<u16>(index * spec().value_size);
    return values_base_ + wrapped;
  }
  return values_base_ + static_cast<u64>(index) * spec().value_size;
}

xbase::Status ArrayMap::DoUpdate(simkern::Kernel& kernel,
                               std::span<const u8> key,
                               std::span<const u8> value, u64 flags) {
  XB_RETURN_IF_ERROR(CheckValueSize(value));
  if (flags == kBpfNoExist) {
    return xbase::AlreadyExists("array elements always exist");
  }
  XB_ASSIGN_OR_RETURN(const Addr addr, LookupAddr(kernel, key));
  return kernel.mem().Write(addr, value);
}

xbase::Status ArrayMap::DoDelete(simkern::Kernel& kernel,
                               std::span<const u8> key) {
  (void)kernel;
  (void)key;
  return xbase::InvalidArgument("array map elements cannot be deleted");
}

// ---- HashMap -----------------------------------------------------------------

xbase::Result<std::unique_ptr<HashMap>> HashMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  (void)kernel;
  if (spec.max_entries == 0 || spec.key_size == 0 || spec.value_size == 0) {
    return xbase::InvalidArgument("hash map needs sizes and entries");
  }
  return std::unique_ptr<HashMap>(new HashMap(fd, std::move(spec)));
}

xbase::Result<Addr> HashMap::LookupAddr(simkern::Kernel& kernel,
                                        std::span<const u8> key) {
  (void)kernel;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::vector<u8>(key.begin(), key.end()));
  if (it == entries_.end()) {
    return xbase::NotFound("no hash entry");
  }
  return it->second;
}

xbase::Status HashMap::DoUpdate(simkern::Kernel& kernel,
                              std::span<const u8> key,
                              std::span<const u8> value, u64 flags) {
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  XB_RETURN_IF_ERROR(CheckValueSize(value));
  std::vector<u8> key_vec(key.begin(), key.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key_vec);
  if (it != entries_.end()) {
    if (flags == kBpfNoExist) {
      return xbase::AlreadyExists("hash key exists");
    }
    return kernel.mem().Write(it->second, value);
  }
  if (flags == kBpfExist) {
    return xbase::NotFound("hash key does not exist");
  }
  if (entries_.size() >= spec().max_entries) {
    return xbase::ResourceExhausted("hash map full");
  }
  XB_ASSIGN_OR_RETURN(
      const Addr addr,
      kernel.mem().Map(spec().value_size, MemPerm::kReadWrite,
                       RegionKind::kMapData,
                       StrFormat("map:%s[%s]", spec().name.c_str(),
                                 xbase::ToHex(key).c_str())));
  XB_RETURN_IF_ERROR(kernel.mem().Write(addr, value));
  entries_.emplace(std::move(key_vec), addr);
  return xbase::Status::Ok();
}

xbase::Status HashMap::DoDelete(simkern::Kernel& kernel,
                              std::span<const u8> key) {
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::vector<u8>(key.begin(), key.end()));
  if (it == entries_.end()) {
    return xbase::NotFound("no hash entry");
  }
  // Unmapping makes any stale value pointer fault — the honest
  // use-after-free behaviour.
  XB_RETURN_IF_ERROR(kernel.mem().Unmap(it->second));
  entries_.erase(it);
  return xbase::Status::Ok();
}

// ---- PercpuArrayMap ------------------------------------------------------------

xbase::Result<std::unique_ptr<PercpuArrayMap>> PercpuArrayMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  if (spec.key_size != 4) {
    return xbase::InvalidArgument("percpu array key must be u32");
  }
  auto map = std::unique_ptr<PercpuArrayMap>(
      new PercpuArrayMap(fd, std::move(spec)));
  // The backing store is genuinely per-CPU: one full value array per
  // configured CPU, cpu-major, so concurrent fires on different CPUs
  // write disjoint bytes with no locking.
  map->num_cpus_ = kernel.config().num_cpus;
  XB_ASSIGN_OR_RETURN(
      map->values_base_,
      kernel.mem().Map(static_cast<usize>(map->spec().value_size) *
                           map->spec().max_entries * map->num_cpus_,
                       MemPerm::kReadWrite, RegionKind::kPerCpu,
                       "map:" + map->spec().name));
  return map;
}

xbase::Result<Addr> PercpuArrayMap::LookupAddrForCpu(std::span<const u8> key,
                                                     u32 cpu) {
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  const u32 index = xbase::LoadLe32(key.data());
  if (index >= spec().max_entries) {
    return xbase::NotFound("percpu index out of range");
  }
  if (cpu >= num_cpus_) {
    return xbase::InvalidArgument("bad cpu");
  }
  const u64 cpu_stride =
      static_cast<u64>(spec().value_size) * spec().max_entries;
  return values_base_ + cpu * cpu_stride +
         static_cast<u64>(index) * spec().value_size;
}

xbase::Result<Addr> PercpuArrayMap::LookupAddr(simkern::Kernel& kernel,
                                               std::span<const u8> key) {
  // Resolve against the CPU the extension is executing on. The old code
  // hardcoded cpu0, so every CPU's lookups aliased one slot and per-CPU
  // counters silently merged.
  return LookupAddrForCpu(key, kernel.current_cpu());
}

xbase::Status PercpuArrayMap::DoUpdate(simkern::Kernel& kernel,
                                     std::span<const u8> key,
                                     std::span<const u8> value, u64 flags) {
  XB_RETURN_IF_ERROR(CheckValueSize(value));
  if (flags == kBpfNoExist) {
    return xbase::AlreadyExists("percpu elements always exist");
  }
  XB_ASSIGN_OR_RETURN(const Addr addr, LookupAddr(kernel, key));
  return kernel.mem().Write(addr, value);
}

xbase::Status PercpuArrayMap::DoDelete(simkern::Kernel& kernel,
                                     std::span<const u8> key) {
  (void)kernel;
  (void)key;
  return xbase::InvalidArgument("percpu array elements cannot be deleted");
}

// ---- ProgArrayMap ---------------------------------------------------------------

xbase::Result<std::unique_ptr<ProgArrayMap>> ProgArrayMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  (void)kernel;
  if (spec.key_size != 4 || spec.value_size != 4) {
    return xbase::InvalidArgument("prog array needs u32 key and value");
  }
  auto map =
      std::unique_ptr<ProgArrayMap>(new ProgArrayMap(fd, std::move(spec)));
  map->slots_.resize(map->spec().max_entries);
  return map;
}

xbase::Result<Addr> ProgArrayMap::LookupAddr(simkern::Kernel& kernel,
                                             std::span<const u8> key) {
  (void)kernel;
  (void)key;
  // Programs may not read prog-array values; only tail calls consume them.
  return xbase::PermissionDenied("prog array values are not readable");
}

xbase::Status ProgArrayMap::DoUpdate(simkern::Kernel& kernel,
                                   std::span<const u8> key,
                                   std::span<const u8> value, u64 flags) {
  (void)kernel;
  (void)flags;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  XB_RETURN_IF_ERROR(CheckValueSize(value));
  const u32 index = xbase::LoadLe32(key.data());
  if (index >= spec().max_entries) {
    return xbase::OutOfRange("prog array index");
  }
  std::lock_guard<std::mutex> lock(mu_);
  slots_[index] = xbase::LoadLe32(value.data());
  return xbase::Status::Ok();
}

xbase::Status ProgArrayMap::DoDelete(simkern::Kernel& kernel,
                                   std::span<const u8> key) {
  (void)kernel;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  const u32 index = xbase::LoadLe32(key.data());
  if (index >= spec().max_entries) {
    return xbase::OutOfRange("prog array index");
  }
  std::lock_guard<std::mutex> lock(mu_);
  slots_[index].reset();
  return xbase::Status::Ok();
}

u32 ProgArrayMap::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  u32 count = 0;
  for (const auto& slot : slots_) {
    if (slot.has_value()) {
      ++count;
    }
  }
  return count;
}

std::optional<u32> ProgArrayMap::ProgIdAt(u32 index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= slots_.size()) {
    return std::nullopt;
  }
  return slots_[index];
}

// ---- RingBufMap -----------------------------------------------------------------

xbase::Result<std::unique_ptr<RingBufMap>> RingBufMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  if (spec.max_entries == 0 ||
      (spec.max_entries & (spec.max_entries - 1)) != 0) {
    return xbase::InvalidArgument("ringbuf size must be a power of two");
  }
  auto map = std::unique_ptr<RingBufMap>(new RingBufMap(fd, std::move(spec)));
  map->capacity_ = map->spec().max_entries;
  XB_ASSIGN_OR_RETURN(
      map->data_base_,
      kernel.mem().Map(map->capacity_, MemPerm::kReadWrite,
                       RegionKind::kMapData, "ringbuf:" + map->spec().name));
  return map;
}

xbase::Result<Addr> RingBufMap::LookupAddr(simkern::Kernel& kernel,
                                           std::span<const u8> key) {
  (void)kernel;
  (void)key;
  return xbase::PermissionDenied("ringbuf has no direct lookup");
}

xbase::Status RingBufMap::DoUpdate(simkern::Kernel& kernel,
                                 std::span<const u8> key,
                                 std::span<const u8> value, u64 flags) {
  (void)kernel;
  (void)key;
  (void)value;
  (void)flags;
  return xbase::PermissionDenied("ringbuf has no direct update");
}

xbase::Status RingBufMap::DoDelete(simkern::Kernel& kernel,
                                 std::span<const u8> key) {
  (void)kernel;
  (void)key;
  return xbase::PermissionDenied("ringbuf has no direct delete");
}

xbase::Result<Addr> RingBufMap::ReserveLocked(u32 size) {
  if (size == 0 || size > capacity_) {
    return xbase::InvalidArgument("bad ringbuf record size");
  }
  if (head_ + size > capacity_) {
    ++dropped_;
    return xbase::ResourceExhausted("ringbuf full");
  }
  const Addr addr = data_base_ + head_;
  head_ += size;
  ++pending_;
  records_.push_back(Record{addr, size, false});
  return addr;
}

xbase::Result<Addr> RingBufMap::Reserve(simkern::Kernel& kernel, u32 size) {
  (void)kernel;
  std::lock_guard<std::mutex> lock(mu_);
  return ReserveLocked(size);
}

xbase::Status RingBufMap::CommitLocked(Addr record) {
  for (Record& rec : records_) {
    if (rec.addr == record && !rec.committed) {
      rec.committed = true;
      return xbase::Status::Ok();
    }
  }
  return xbase::InvalidArgument("commit of unreserved ringbuf record");
}

xbase::Status RingBufMap::Commit(Addr record) {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(record);
}

xbase::Status RingBufMap::Discard(Addr record) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->addr == record && !it->committed) {
      records_.erase(it);
      --pending_;
      return xbase::Status::Ok();
    }
  }
  return xbase::InvalidArgument("discard of unreserved ringbuf record");
}

xbase::Status RingBufMap::Output(simkern::Kernel& kernel,
                                 std::span<const u8> data) {
  // One critical section for reserve+write+commit so concurrent producers
  // can't interleave inside a record.
  std::lock_guard<std::mutex> lock(mu_);
  XB_ASSIGN_OR_RETURN(const Addr addr,
                      ReserveLocked(static_cast<u32>(data.size())));
  XB_RETURN_IF_ERROR(kernel.mem().Write(addr, data));
  return CommitLocked(addr);
}

xbase::Result<std::vector<u8>> RingBufMap::Consume(simkern::Kernel& kernel) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->committed) {
      std::vector<u8> out(it->size);
      XB_RETURN_IF_ERROR(kernel.mem().Read(it->addr, out));
      records_.erase(it);
      --pending_;
      return out;
    }
  }
  return xbase::NotFound("ringbuf empty");
}

// ---- TaskStorageMap --------------------------------------------------------------

xbase::Result<std::unique_ptr<TaskStorageMap>> TaskStorageMap::Create(
    simkern::Kernel& kernel, int fd, MapSpec spec) {
  (void)kernel;
  if (spec.key_size != 4) {
    return xbase::InvalidArgument("task storage key must be pid (u32)");
  }
  return std::unique_ptr<TaskStorageMap>(
      new TaskStorageMap(fd, std::move(spec)));
}

xbase::Result<Addr> TaskStorageMap::LookupAddr(simkern::Kernel& kernel,
                                               std::span<const u8> key) {
  (void)kernel;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  const u32 pid = xbase::LoadLe32(key.data());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) {
    return xbase::NotFound("no storage for task");
  }
  return it->second;
}

xbase::Status TaskStorageMap::DoUpdate(simkern::Kernel& kernel,
                                     std::span<const u8> key,
                                     std::span<const u8> value, u64 flags) {
  (void)flags;
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  XB_RETURN_IF_ERROR(CheckValueSize(value));
  const u32 pid = xbase::LoadLe32(key.data());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) {
    XB_ASSIGN_OR_RETURN(
        const Addr addr,
        kernel.mem().Map(spec().value_size, MemPerm::kReadWrite,
                         RegionKind::kMapData,
                         StrFormat("task-storage:%s:%u", spec().name.c_str(),
                                   pid)));
    it = entries_.emplace(pid, addr).first;
  }
  return kernel.mem().Write(it->second, value);
}

xbase::Status TaskStorageMap::DoDelete(simkern::Kernel& kernel,
                                     std::span<const u8> key) {
  XB_RETURN_IF_ERROR(CheckKeySize(key));
  const u32 pid = xbase::LoadLe32(key.data());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(pid);
  if (it == entries_.end()) {
    return xbase::NotFound("no storage for task");
  }
  XB_RETURN_IF_ERROR(kernel.mem().Unmap(it->second));
  entries_.erase(it);
  return xbase::Status::Ok();
}

xbase::Result<Addr> TaskStorageMap::GetForTask(simkern::Kernel& kernel,
                                               Addr task_addr, bool create) {
  // Reading the pid out of the task struct *is* the dereference: a NULL
  // task pointer faults here, which is CVE-2021-xxxx (commit 1a9c72ad4c26)
  // when the helper forgets to check for NULL first.
  xbase::u8 pid_bytes[4];
  XB_RETURN_IF_ERROR(
      kernel.mem().ReadChecked(task_addr + simkern::TaskLayout::kPid,
                               pid_bytes, /*access_key=*/0));
  const u32 pid = xbase::LoadLe32(pid_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(pid);
  if (it != entries_.end()) {
    return it->second;
  }
  if (!create) {
    return xbase::NotFound("no storage for task");
  }
  XB_ASSIGN_OR_RETURN(
      const Addr addr,
      kernel.mem().Map(spec().value_size, MemPerm::kReadWrite,
                       RegionKind::kMapData,
                       StrFormat("task-storage:%s:%u", spec().name.c_str(),
                                 pid)));
  entries_.emplace(pid, addr);
  return addr;
}

// ---- MapTable ---------------------------------------------------------------------

xbase::Result<int> MapTable::Create(const MapSpec& spec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int fd = next_fd_++;
  std::unique_ptr<Map> map;
  switch (spec.type) {
    case MapType::kArray: {
      XB_ASSIGN_OR_RETURN(map, ArrayMap::Create(kernel_, fd, spec));
      break;
    }
    case MapType::kHash: {
      XB_ASSIGN_OR_RETURN(map, HashMap::Create(kernel_, fd, spec));
      break;
    }
    case MapType::kPercpuArray: {
      XB_ASSIGN_OR_RETURN(map, PercpuArrayMap::Create(kernel_, fd, spec));
      break;
    }
    case MapType::kProgArray: {
      XB_ASSIGN_OR_RETURN(map, ProgArrayMap::Create(kernel_, fd, spec));
      break;
    }
    case MapType::kRingBuf: {
      XB_ASSIGN_OR_RETURN(map, RingBufMap::Create(kernel_, fd, spec));
      break;
    }
    case MapType::kTaskStorage: {
      XB_ASSIGN_OR_RETURN(map, TaskStorageMap::Create(kernel_, fd, spec));
      break;
    }
  }
  kernel_.objects().Create(simkern::ObjectType::kMap, "map:" + spec.name);
  maps_.emplace(fd, std::move(map));
  return fd;
}

xbase::Result<Map*> MapTable::Find(int fd) {
  ReadGuard guard(*this);
  auto it = maps_.find(fd);
  if (it == maps_.end()) {
    return xbase::NotFound(StrFormat("no map with fd %d", fd));
  }
  return it->second.get();
}

xbase::Result<const Map*> MapTable::Find(int fd) const {
  ReadGuard guard(*this);
  auto it = maps_.find(fd);
  if (it == maps_.end()) {
    return xbase::NotFound(StrFormat("no map with fd %d", fd));
  }
  return static_cast<const Map*>(it->second.get());
}

xbase::Status MapTable::Destroy(int fd) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (maps_.erase(fd) == 0) {
    return xbase::NotFound(StrFormat("no map with fd %d", fd));
  }
  return xbase::Status::Ok();
}

Map* MapTable::FindByValueAddr(Addr addr) {
  const simkern::Region* region =
      kernel_.mem().FindRegionContaining(addr);
  if (region == nullptr) {
    return nullptr;
  }
  ReadGuard guard(*this);
  for (auto& [_, map] : maps_) {
    if (auto* array = dynamic_cast<ArrayMap*>(map.get())) {
      if (array->values_base() == region->base) {
        return map.get();
      }
    }
  }
  return nullptr;
}

}  // namespace ebpf

// Disassembler: renders instructions in the bpftool xlated style. Used by
// verifier rejection messages and test diagnostics.
#pragma once

#include <string>
#include <string_view>

#include "src/ebpf/prog.h"

namespace ebpf {

// Static helper-id -> name table (every registered family: core, net,
// sched, lsm). Returns "" for ids outside the table; consistency with the
// live registry (HelperSpec::name) is asserted by the permcheck tests.
std::string_view HelperName(u32 helper_id);

std::string DisasmInsn(const Insn& insn);
// Whole-program listing with pc column; ld_imm64 pairs rendered as one line.
std::string DisasmProgram(const Program& prog);

}  // namespace ebpf

// Disassembler: renders instructions in the bpftool xlated style. Used by
// verifier rejection messages and test diagnostics.
#pragma once

#include <string>

#include "src/ebpf/prog.h"

namespace ebpf {

std::string DisasmInsn(const Insn& insn);
// Whole-program listing with pc column; ld_imm64 pairs rendered as one line.
std::string DisasmProgram(const Program& prog);

}  // namespace ebpf

// The lowered execution form the threaded engine dispatches over. The JIT
// (src/ebpf/jit.cc) translates a verified image into one MicroOp per
// instruction slot: the opcode is resolved to a dense handler id, operands
// are pre-extracted and pre-sign-extended for their width, branch targets
// are pre-relocated to absolute pcs, ld_imm64 pseudo values (map handles,
// callback pcs) are resolved once, and helper/kfunc call sites carry a
// pre-looked-up function pointer and cost. Everything the legacy
// interpreter re-derives on every step is derived here exactly once, after
// verification — which is also why the CVE-2021-29154 branch fault
// propagates into this form: the lowering runs over the already-finalized
// (possibly corrupted) image, so a miscomputed displacement becomes a
// miscomputed pre-relocated target the verifier never saw.
#pragma once

#include <vector>

#include "src/ebpf/helper.h"
#include "src/ebpf/insn.h"

namespace ebpf {

// Every micro-op handler. The X-macro keeps the enum, the computed-goto
// label table and the switch fallback in lockstep: adding a handler here
// adds it everywhere or the build breaks.
//
// The trailing groups are only ever emitted by analysis-driven lowering
// (never straight decode): the `...U` variants are unchecked memory ops —
// the runtime bounds check is elided because both the verifier and (when
// run) staticcheck proved the access in bounds at that pc — and the
// `Fuse...` superops execute two adjacent micro-ops in one dispatch. A
// fused head keeps its tail slot intact so mid-pair branch entries still
// work; the packing of the second op's fields is described at each
// handler in interp_threaded.cc.
#define EBPF_UOP_ALU4(X, Name)                                       \
  X(Alu64##Name##Imm) X(Alu64##Name##Reg)                            \
  X(Alu32##Name##Imm) X(Alu32##Name##Reg)
#define EBPF_UOP_JMP4(X, Name)                                       \
  X(Jmp64##Name##Imm) X(Jmp64##Name##Reg)                            \
  X(Jmp32##Name##Imm) X(Jmp32##Name##Reg)

#define EBPF_UOP_LIST(X)                                             \
  X(LdImm64) X(BadLdImm64)                                           \
  X(LdxB) X(LdxH) X(LdxW) X(LdxDw)                                   \
  X(StxB) X(StxH) X(StxW) X(StxDw)                                   \
  X(StB) X(StH) X(StW) X(StDw)                                       \
  X(AtomicAddB) X(AtomicAddH) X(AtomicAddW) X(AtomicAddDw)           \
  X(AtomicBad)                                                       \
  X(Ja) X(Exit) X(CallBpf) X(CallHelper) X(CallKfunc)                \
  X(Neg64) X(Neg32) X(EndSwap) X(EndMask)                            \
  X(UnknownAlu) X(UnknownJmp) X(UnknownClass)                        \
  EBPF_UOP_ALU4(X, Add) EBPF_UOP_ALU4(X, Sub) EBPF_UOP_ALU4(X, Mul)  \
  EBPF_UOP_ALU4(X, Div) EBPF_UOP_ALU4(X, Mod) EBPF_UOP_ALU4(X, Or)   \
  EBPF_UOP_ALU4(X, And) EBPF_UOP_ALU4(X, Xor) EBPF_UOP_ALU4(X, Lsh)  \
  EBPF_UOP_ALU4(X, Rsh) EBPF_UOP_ALU4(X, Arsh) EBPF_UOP_ALU4(X, Mov) \
  EBPF_UOP_JMP4(X, Jeq) EBPF_UOP_JMP4(X, Jne) EBPF_UOP_JMP4(X, Jgt)  \
  EBPF_UOP_JMP4(X, Jge) EBPF_UOP_JMP4(X, Jlt) EBPF_UOP_JMP4(X, Jle)  \
  EBPF_UOP_JMP4(X, Jsgt) EBPF_UOP_JMP4(X, Jsge)                      \
  EBPF_UOP_JMP4(X, Jslt) EBPF_UOP_JMP4(X, Jsle) EBPF_UOP_JMP4(X, Jset) \
  X(LdxBU) X(LdxHU) X(LdxWU) X(LdxDwU)                               \
  X(StxBU) X(StxHU) X(StxWU) X(StxDwU)                               \
  X(StBU) X(StHU) X(StWU) X(StDwU)                                   \
  X(FuseAddImmAddImm) X(FuseAddImmJa) X(FuseAddRegAddImm)            \
  X(FuseMovRegAddImm) X(FuseMovImmExit)                              \
  X(FuseLdxWUAddImm) X(FuseLdxDwUAddImm)                             \
  X(FuseAddRegAddImmJa)                                              \
  X(SuperBlock)

enum class UOp : u16 {
#define EBPF_UOP_ENUM(Name) k##Name,
  EBPF_UOP_LIST(EBPF_UOP_ENUM)
#undef EBPF_UOP_ENUM
      kCount,
};

// One pre-decoded instruction slot, 16 bytes, semantics per handler:
//   jump — pre-relocated branch target / pc after ld_imm64 / call-site
//          index / memory offset bit pattern ((u32)(s32)off);
//   imm  — pre-extracted, pre-sign-extended operand (full 64-bit value for
//          ld_imm64, final mask for END, store value for ST).
struct MicroOp {
  u16 handler = 0;  // a UOp value
  u8 dst = 0;
  u8 src = 0;
  u32 jump = 0;
  u64 imm = 0;
};
static_assert(sizeof(MicroOp) == 16, "micro-op layout is load-bearing");

// A pre-resolved helper/kfunc call site. `fn` is a pointer into the
// registry (stable for the Bpf instance's lifetime); null means the
// registry was unavailable or the id unknown at lowering time, and the
// engine falls back to the legacy lookup — preserving the exact
// "call to unknown helper" fault behaviour.
struct CallSite {
  const HelperFn* fn = nullptr;
  u64 cost_ns = simkern::kCostHelperCallNs;
  u32 id = 0;
  s32 imm = 0;  // raw imm, for fault-message fidelity
  bool is_kfunc = false;
  // The runtime's own copy of the access-control decision: at lowering time
  // the call site is re-checked against the helper contract (family admits
  // the program type, helper exists at the gate version). A verifier that
  // wrongly admitted the call (family-gate-skip / version off-by-one
  // faults) still hits this independent layer — both engines consult the
  // same bit, so they deny identically.
  bool gate_denied = false;
};

struct DecodedImage {
  std::vector<MicroOp> ops;     // 1:1 with image instruction slots
  std::vector<CallSite> calls;  // indexed by MicroOp::jump of Call* ops
  // Side table for kSuperBlock heads: the original per-insn micro-ops of
  // each superblock, stored contiguously (jump = start index, imm = len).
  // The block's interior slots in `ops` stay INTACT, so a branch entering
  // mid-block executes them one at a time; only the head slot is replaced,
  // and its fast path runs these copies in a tight loop with the block's
  // insn cost charged at entry.
  std::vector<MicroOp> sb_ops;

  bool empty() const { return ops.empty(); }
};

}  // namespace ebpf

// The verifier's feature timeline. Every check/pass the verifier performs is
// attributed to the kernel version that introduced it; constructing a
// verifier "as of vX.Y" genuinely disables the later passes, and Figure 2's
// LoC-growth series is the cumulative sum over this table.
//
// LoC attribution: behavioural features carry the line count of the era
// that introduced them in Linux's kernel/bpf/verifier.c (derived from the
// paper's Figure 2 trajectory and, where the paper states a number — e.g.
// "500 lines of C" for BPF-to-BPF calls — that number). Our implementing
// passes are smaller by a roughly constant factor; EXPERIMENTS.md records
// both series.
#pragma once

#include <string>
#include <vector>

#include "src/simkern/version.h"
#include "src/xbase/types.h"

namespace ebpf {

enum class VFeature : xbase::u8 {
  kBase,               // v3.18: CFG, reg types, stack, helper arg checks
  kCtxAccessTables,    // v4.3: per-prog-type context access rules
  kDirectPacketAccess, // v4.9-era: packet pointers + range tracking
  kFullRangeTracking,  // v4.14: smin/smax/umin/umax + tnum everywhere
  kBpf2BpfCalls,       // v4.16: function calls ("500 lines of C", [45])
  kSpectreSanitation,  // v4.17: speculative-execution masking ([46,47])
  kRefTracking,        // v4.20: acquire/release reference discipline
  kInsnBudget1M,       // v5.2: 1M instruction budget + pruning rework
  kBoundedLoops,       // v5.3: back-edges allowed, iteration exploration
  kSpinLockTracking,   // v5.1 (plotted v5.4): bpf_spin_lock checks ([48])
  k32BitBounds,        // v5.7-v5.10: JMP32 + 32-bit subregister bounds
  kKfuncCalls,         // v5.13: calls into unlisted kernel functions [16]
  kBtfTracking,        // v5.11-5.15: BTF-typed pointer tracking
  kMiscHardening,      // v5.15: ALU sanitation reworks, bounds fixes
  kBpfLoopCallbacks,   // v5.17: bpf_loop callback verification
  kDynptr,             // v6.1: dynptr/kptr logic
  kSchedExtChecks,     // v6.12: sched_ext program/helper-family gating
};

struct VFeatureInfo {
  VFeature id;
  simkern::KernelVersion introduced;
  xbase::u32 linux_loc;  // LoC attributed in Linux's verifier.c
  std::string name;
  std::string description;
  bool behavioural;  // true if this repo's verifier changes behaviour on it
};

const std::vector<VFeatureInfo>& VerifierFeatureTable();

bool FeatureEnabled(VFeature feature, simkern::KernelVersion version);

// Cumulative Linux-attributed verifier LoC at `version` (Figure 2 series).
xbase::u32 VerifierLocAtVersion(simkern::KernelVersion version);

// Number of distinct checks/passes active at `version`.
xbase::usize VerifierFeatureCountAtVersion(simkern::KernelVersion version);

// The instruction-exploration budget at `version`.
xbase::u32 InsnBudgetAtVersion(simkern::KernelVersion version);

}  // namespace ebpf

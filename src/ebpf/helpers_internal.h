// Internal plumbing shared by the helper implementation files. Not part of
// the public surface; include only from src/ebpf/helpers_*.cc.
#pragma once

#include <memory>
#include <mutex>

#include "src/ebpf/helper.h"
#include "src/ebpf/runtime.h"
#include "src/simkern/kernel.h"
#include "src/xbase/rand.h"

namespace ebpf {

// Mutable state shared across helper invocations of one kernel instance.
// `mu` guards every field: helpers fire concurrently from all simulated
// CPUs once Kernel::StartCpus has run.
struct HelperState {
  std::mutex mu;
  xbase::Rng rng{0x5eed5eedULL};
  // bpf_spin_lock addresses -> simkern lock identities, created on first
  // acquire of each distinct lock address.
  std::map<simkern::Addr, simkern::LockId> lock_ids;
  // perf_event_output sink: (cpu, payload) records for tests to inspect.
  std::vector<std::vector<u8>> perf_events;
  // bpf_lsm_audit sink: raw audit records for tests to inspect (bounded;
  // oldest dropped first).
  std::vector<std::vector<u8>> lsm_audit;
  // bpf_lsm_ratelimit token buckets, keyed by the program-chosen key.
  std::map<u64, u64> lsm_buckets;
};

struct HelperWiring {
  HelperRegistry& registry;
  simkern::Kernel& kernel;
  std::shared_ptr<HelperState> state;
};

// Registration units (one per implementation file).
xbase::Status RegisterCoreHelpers(HelperWiring& wiring);
xbase::Status RegisterNetHelpers(HelperWiring& wiring);
xbase::Status RegisterSchedHelpers(HelperWiring& wiring);
xbase::Status RegisterLsmHelpers(HelperWiring& wiring);

// Shared utilities -----------------------------------------------------------

// Links a helper's entry function into the kernel call graph: creates the
// entry node and an edge to the given subsystem node (named per
// simkern::SubsystemEntry). `links` pairs are (subsystem, reach).
void LinkHelperCallGraph(simkern::Kernel& kernel, const std::string& entry,
                         std::initializer_list<std::pair<const char*,
                                                         xbase::usize>>
                             links);

// Memory convenience wrappers: checked accesses on behalf of the running
// extension (key 0 = kernel default domain).
xbase::Result<std::vector<u8>> ReadMem(simkern::Kernel& kernel,
                                       simkern::Addr addr, xbase::usize size);
xbase::Status WriteMem(simkern::Kernel& kernel, simkern::Addr addr,
                       std::span<const u8> data);

// Resolves a map-handle argument to the Map object.
xbase::Result<Map*> ResolveMapArg(HelperCtx& ctx, u64 arg);

}  // namespace ebpf

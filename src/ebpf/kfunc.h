// kfuncs: internal kernel functions exposed to BPF programs (v5.13+,
// LWN "Calling kernel functions from BPF" — reference [16] of the paper).
// Unlike helpers, these were *not written with eBPF usage in mind*: their
// argument specifications are whatever BTF can express, their bodies
// perform no extension-grade input sanitization, and the paper predicts
// this interface will widen the attack surface faster than helpers did.
// The registry mirrors that reality: specs are shallower than helper specs
// and the example kfuncs below include one that genuinely cannot tolerate
// a hostile argument.
#pragma once

#include "src/ebpf/helper.h"

namespace ebpf {

struct KfuncSpec {
  u32 btf_id = 0;
  std::string name;
  simkern::KernelVersion introduced;
  // Shallow argument classes: kfuncs only distinguish "pointer-ish" from
  // scalar; sizes and pointee types are BTF's problem, which the verifier
  // of this simulation (like early kernels) does not model deeply.
  std::array<ArgType, 5> args = {ArgType::kNone, ArgType::kNone,
                                 ArgType::kNone, ArgType::kNone,
                                 ArgType::kNone};
  bool acquires_ref = false;  // KF_ACQUIRE
  bool releases_ref = false;  // KF_RELEASE (first argument)
  std::string entry_func;     // call-graph node
  u64 cost_ns = simkern::kCostHelperCallNs;

  int arg_count() const {
    int count = 0;
    for (ArgType arg : args) {
      if (arg != ArgType::kNone) {
        ++count;
      }
    }
    return count;
  }
};

using KfuncFn = HelperFn;

class KfuncRegistry {
 public:
  xbase::Status Register(KfuncSpec spec, KfuncFn fn);
  xbase::Result<const KfuncSpec*> FindSpec(u32 btf_id) const;
  xbase::Result<const KfuncFn*> FindFn(u32 btf_id) const;
  std::vector<const KfuncSpec*> AllSpecs() const;
  xbase::usize CountAtVersion(simkern::KernelVersion version) const;

 private:
  struct Entry {
    KfuncSpec spec;
    KfuncFn fn;
  };
  std::map<u32, Entry> kfuncs_;
};

// Registers the default kfunc set and wires its call-graph entries.
xbase::Status RegisterDefaultKfuncs(KfuncRegistry& registry,
                                    simkern::Kernel& kernel);

// The btf_ids of the default set (stable for tests/benches).
enum KfuncId : u32 {
  kKfuncTaskAcquire = 1001,   // v5.13: take a task reference
  kKfuncTaskRelease = 1002,   // v5.13
  kKfuncSkbSummarize = 1101,  // v5.15: fold packet bytes into a cookie
  kKfuncVmaLookup = 1201,     // v5.17: walk a task's memory map — written
                              // for in-kernel callers that pass sane
                              // arguments; a hostile task pointer oopses.
  kKfuncCgroupAncestor = 1301,  // v6.1
};

}  // namespace ebpf

// BPF maps. Map storage lives inside SimMemory, so value pointers handed to
// programs are real simulated-kernel addresses: a verifier bug that lets a
// program walk a value pointer out of bounds produces honest out-of-bounds
// traffic against the memory model, and a deleted hash entry leaves a stale
// address whose use faults — the use-after-free shape of Table 1.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/simkern/kernel.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace ebpf {

using simkern::Addr;
using xbase::u32;
using xbase::u64;
using xbase::u8;

enum class MapType : u8 {
  kArray,
  kHash,
  kPercpuArray,
  kProgArray,    // tail-call targets
  kRingBuf,
  kTaskStorage,  // per-task local storage
};

std::string_view MapTypeName(MapType type);

// Update flags, as the kernel defines them.
inline constexpr u64 kBpfAny = 0;
inline constexpr u64 kBpfNoExist = 1;
inline constexpr u64 kBpfExist = 2;

inline constexpr u32 kNumSimCpus = 4;

struct MapSpec {
  MapType type = MapType::kArray;
  u32 key_size = 4;
  u32 value_size = 8;
  u32 max_entries = 1;
  std::string name;
};

class Map {
 public:
  Map(int fd, MapSpec spec) : fd_(fd), spec_(std::move(spec)) {}
  virtual ~Map() = default;
  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  int fd() const { return fd_; }
  const MapSpec& spec() const { return spec_; }

  // Address of the value bytes for `key`, or NotFound. What programs get
  // back from bpf_map_lookup_elem.
  virtual xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                         std::span<const u8> key) = 0;
  // Mutations funnel through these non-virtual wrappers so every one
  // advances the generation stamp the engines' lookup inline caches key
  // on. The stamp comes from a process-global monotonic counter (not a
  // per-map ++), so a map destroyed and recreated at the same address can
  // never resurrect a cached entry (no ABA).
  xbase::Status Update(simkern::Kernel& kernel, std::span<const u8> key,
                       std::span<const u8> value, u64 flags) {
    generation_ = NextGeneration();
    return DoUpdate(kernel, key, value, flags);
  }
  xbase::Status Delete(simkern::Kernel& kernel, std::span<const u8> key) {
    generation_ = NextGeneration();
    return DoDelete(kernel, key);
  }
  u64 generation() const { return generation_; }

  virtual u32 entry_count() const = 0;

 protected:
  virtual xbase::Status DoUpdate(simkern::Kernel& kernel,
                                 std::span<const u8> key,
                                 std::span<const u8> value, u64 flags) = 0;
  virtual xbase::Status DoDelete(simkern::Kernel& kernel,
                                 std::span<const u8> key) = 0;

  xbase::Status CheckKeySize(std::span<const u8> key) const;
  xbase::Status CheckValueSize(std::span<const u8> value) const;

 private:
  static u64 NextGeneration();

  int fd_;
  MapSpec spec_;
  u64 generation_ = NextGeneration();
};

// ---- array ------------------------------------------------------------------
class ArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<ArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override { return spec().max_entries; }

  Addr values_base() const { return values_base_; }

  // Injectable defect (CVE-2022-xxxx class, commit 87ac0d600943): compute
  // the element offset in 32 bits so a large index*value_size wraps.
  void InjectIndexOverflow(bool on) { index_overflow_bug_ = on; }

 private:
  ArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  Addr values_base_ = 0;
  bool index_overflow_bug_ = false;
};

// ---- hash -------------------------------------------------------------------
class HashMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<HashMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override {
    return static_cast<u32>(entries_.size());
  }

 private:
  HashMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  std::map<std::vector<u8>, Addr> entries_;
};

// ---- per-CPU array ------------------------------------------------------------
class PercpuArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<PercpuArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  // Lookup resolves to the *current CPU's* slot, like the in-kernel helper.
  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Result<Addr> LookupAddrForCpu(std::span<const u8> key, u32 cpu);
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override { return spec().max_entries; }

 private:
  PercpuArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  Addr values_base_ = 0;  // cpu-major layout
};

// ---- prog array (tail calls) ---------------------------------------------------
class ProgArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<ProgArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override;

  std::optional<u32> ProgIdAt(u32 index) const;

 private:
  ProgArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  std::vector<std::optional<u32>> slots_;
};

// ---- ring buffer ----------------------------------------------------------------
class RingBufMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<RingBufMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override { return pending_; }

  // Producer API used by bpf_ringbuf_output / reserve+commit.
  xbase::Result<Addr> Reserve(simkern::Kernel& kernel, u32 size);
  xbase::Status Commit(Addr record);
  xbase::Status Discard(Addr record);
  xbase::Status Output(simkern::Kernel& kernel, std::span<const u8> data);

  // Consumer API for userspace-side tests.
  xbase::Result<std::vector<u8>> Consume(simkern::Kernel& kernel);
  u32 dropped() const { return dropped_; }

 private:
  RingBufMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  struct Record {
    Addr addr;
    u32 size;
    bool committed;
  };

  Addr data_base_ = 0;
  u32 capacity_ = 0;
  u32 head_ = 0;  // next free byte offset
  u32 pending_ = 0;
  u32 dropped_ = 0;
  std::vector<Record> records_;
};

// ---- task storage ---------------------------------------------------------------
class TaskStorageMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<TaskStorageMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  // Keyed by pid (u32 key).
  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override {
    return static_cast<u32>(entries_.size());
  }

  // The helper-facing entry point: get (optionally creating) the storage
  // for the task whose struct lives at `task_addr`.
  xbase::Result<Addr> GetForTask(simkern::Kernel& kernel, Addr task_addr,
                                 bool create);

 private:
  TaskStorageMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  std::map<u32, Addr> entries_;  // pid -> value region
};

// ---- table ------------------------------------------------------------------------
class MapTable {
 public:
  explicit MapTable(simkern::Kernel& kernel) : kernel_(kernel) {}

  xbase::Result<int> Create(const MapSpec& spec);
  xbase::Result<Map*> Find(int fd);
  xbase::Result<const Map*> Find(int fd) const;
  xbase::Status Destroy(int fd);

  // Reverse lookup: which map owns this address? Used by the verifier's
  // runtime oracle and the analysis tools.
  Map* FindByValueAddr(Addr addr);

  xbase::usize size() const { return maps_.size(); }

 private:
  simkern::Kernel& kernel_;
  std::map<int, std::unique_ptr<Map>> maps_;
  int next_fd_ = 3;
};

}  // namespace ebpf

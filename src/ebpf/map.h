// BPF maps. Map storage lives inside SimMemory, so value pointers handed to
// programs are real simulated-kernel addresses: a verifier bug that lets a
// program walk a value pointer out of bounds produces honest out-of-bounds
// traffic against the memory model, and a deleted hash entry leaves a stale
// address whose use faults — the use-after-free shape of Table 1.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/simkern/kernel.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace ebpf {

using simkern::Addr;
using xbase::u32;
using xbase::u64;
using xbase::u8;

enum class MapType : u8 {
  kArray,
  kHash,
  kPercpuArray,
  kProgArray,    // tail-call targets
  kRingBuf,
  kTaskStorage,  // per-task local storage
};

std::string_view MapTypeName(MapType type);

// Update flags, as the kernel defines them.
inline constexpr u64 kBpfAny = 0;
inline constexpr u64 kBpfNoExist = 1;
inline constexpr u64 kBpfExist = 2;

struct MapSpec {
  MapType type = MapType::kArray;
  u32 key_size = 4;
  u32 value_size = 8;
  u32 max_entries = 1;
  std::string name;
};

class Map {
 public:
  Map(int fd, MapSpec spec) : fd_(fd), spec_(std::move(spec)) {}
  virtual ~Map() = default;
  Map(const Map&) = delete;
  Map& operator=(const Map&) = delete;

  int fd() const { return fd_; }
  const MapSpec& spec() const { return spec_; }

  // Address of the value bytes for `key`, or NotFound. What programs get
  // back from bpf_map_lookup_elem.
  virtual xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                         std::span<const u8> key) = 0;
  // Mutations funnel through these non-virtual wrappers so every one
  // advances the generation stamp the engines' lookup inline caches key
  // on. The stamp comes from a process-global monotonic counter (not a
  // per-map ++), so a map destroyed and recreated at the same address can
  // never resurrect a cached entry (no ABA).
  xbase::Status Update(simkern::Kernel& kernel, std::span<const u8> key,
                       std::span<const u8> value, u64 flags) {
    generation_.store(NextGeneration(), std::memory_order_release);
    return DoUpdate(kernel, key, value, flags);
  }
  xbase::Status Delete(simkern::Kernel& kernel, std::span<const u8> key) {
    generation_.store(NextGeneration(), std::memory_order_release);
    return DoDelete(kernel, key);
  }
  u64 generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  virtual u32 entry_count() const = 0;

 protected:
  virtual xbase::Status DoUpdate(simkern::Kernel& kernel,
                                 std::span<const u8> key,
                                 std::span<const u8> value, u64 flags) = 0;
  virtual xbase::Status DoDelete(simkern::Kernel& kernel,
                                 std::span<const u8> key) = 0;

  xbase::Status CheckKeySize(std::span<const u8> key) const;
  xbase::Status CheckValueSize(std::span<const u8> value) const;

 private:
  static u64 NextGeneration();

  int fd_;
  MapSpec spec_;
  // Atomic: cross-CPU fires stamp and read it concurrently; the inline
  // lookup caches only need a monotonic "something changed" witness.
  std::atomic<u64> generation_{NextGeneration()};
};

// ---- array ------------------------------------------------------------------
class ArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<ArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override { return spec().max_entries; }

  Addr values_base() const { return values_base_; }

  // Injectable defect (CVE-2022-xxxx class, commit 87ac0d600943): compute
  // the element offset in 32 bits so a large index*value_size wraps.
  void InjectIndexOverflow(bool on) { index_overflow_bug_ = on; }

 private:
  ArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  Addr values_base_ = 0;
  bool index_overflow_bug_ = false;
};

// ---- hash -------------------------------------------------------------------
class HashMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<HashMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<u32>(entries_.size());
  }

 private:
  HashMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  mutable std::mutex mu_;  // guards entries_ across CPUs
  std::map<std::vector<u8>, Addr> entries_;
};

// ---- per-CPU array ------------------------------------------------------------
class PercpuArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<PercpuArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  // Lookup resolves to the *current CPU's* slot, like the in-kernel helper.
  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Result<Addr> LookupAddrForCpu(std::span<const u8> key, u32 cpu);
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override { return spec().max_entries; }

  u32 num_cpus() const { return num_cpus_; }

 private:
  PercpuArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  Addr values_base_ = 0;  // cpu-major layout
  u32 num_cpus_ = 1;      // captured from KernelConfig::num_cpus at Create
};

// ---- prog array (tail calls) ---------------------------------------------------
class ProgArrayMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<ProgArrayMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override;

  std::optional<u32> ProgIdAt(u32 index) const;

 private:
  ProgArrayMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  mutable std::mutex mu_;  // guards slots_ across CPUs
  std::vector<std::optional<u32>> slots_;
};

// ---- ring buffer ----------------------------------------------------------------
class RingBufMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<RingBufMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
  }

  // Producer API used by bpf_ringbuf_output / reserve+commit.
  xbase::Result<Addr> Reserve(simkern::Kernel& kernel, u32 size);
  xbase::Status Commit(Addr record);
  xbase::Status Discard(Addr record);
  xbase::Status Output(simkern::Kernel& kernel, std::span<const u8> data);

  // Consumer API for userspace-side tests.
  xbase::Result<std::vector<u8>> Consume(simkern::Kernel& kernel);
  u32 dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

 private:
  RingBufMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  xbase::Result<Addr> ReserveLocked(u32 size);
  xbase::Status CommitLocked(Addr record);

  struct Record {
    Addr addr;
    u32 size;
    bool committed;
  };

  // One producer/consumer lock: ringbuf ordering across CPUs is the
  // kernel's own contract (the real ringbuf serializes reservations too).
  mutable std::mutex mu_;
  Addr data_base_ = 0;
  u32 capacity_ = 0;
  u32 head_ = 0;  // next free byte offset
  u32 pending_ = 0;
  u32 dropped_ = 0;
  std::vector<Record> records_;
};

// ---- task storage ---------------------------------------------------------------
class TaskStorageMap : public Map {
 public:
  static xbase::Result<std::unique_ptr<TaskStorageMap>> Create(
      simkern::Kernel& kernel, int fd, MapSpec spec);

  // Keyed by pid (u32 key).
  xbase::Result<Addr> LookupAddr(simkern::Kernel& kernel,
                                 std::span<const u8> key) override;
  xbase::Status DoUpdate(simkern::Kernel& kernel, std::span<const u8> key,
                         std::span<const u8> value, u64 flags) override;
  xbase::Status DoDelete(simkern::Kernel& kernel,
                         std::span<const u8> key) override;
  u32 entry_count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<u32>(entries_.size());
  }

  // The helper-facing entry point: get (optionally creating) the storage
  // for the task whose struct lives at `task_addr`.
  xbase::Result<Addr> GetForTask(simkern::Kernel& kernel, Addr task_addr,
                                 bool create);

 private:
  TaskStorageMap(int fd, MapSpec spec) : Map(fd, std::move(spec)) {}

  mutable std::mutex mu_;        // guards entries_ across CPUs
  std::map<u32, Addr> entries_;  // pid -> value region
};

// ---- table ------------------------------------------------------------------------
// The fd table locks only once Kernel::StartCpus has armed SMP; the
// single-threaded dispatch path (which hits Find on every map helper)
// keeps paying just an untaken branch.
class MapTable {
 public:
  explicit MapTable(simkern::Kernel& kernel) : kernel_(kernel) {}

  xbase::Result<int> Create(const MapSpec& spec);
  xbase::Result<Map*> Find(int fd);
  xbase::Result<const Map*> Find(int fd) const;
  xbase::Status Destroy(int fd);

  // Reverse lookup: which map owns this address? Used by the verifier's
  // runtime oracle and the analysis tools.
  Map* FindByValueAddr(Addr addr);

  xbase::usize size() const {
    ReadGuard guard(*this);
    return maps_.size();
  }

 private:
  class ReadGuard {
   public:
    explicit ReadGuard(const MapTable& table)
        : table_(table), locked_(table.kernel_.smp_active()) {
      if (locked_) {
        table_.mu_.lock_shared();
      }
    }
    ~ReadGuard() {
      if (locked_) {
        table_.mu_.unlock_shared();
      }
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    const MapTable& table_;
    const bool locked_;
  };

  simkern::Kernel& kernel_;
  mutable std::shared_mutex mu_;
  std::map<int, std::unique_ptr<Map>> maps_;
  int next_fd_ = 3;
};

}  // namespace ebpf

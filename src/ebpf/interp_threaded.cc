// The threaded execution engine: dispatches over the JIT's pre-decoded
// micro-ops (decoded.h) instead of re-decoding raw instruction words per
// step. Dispatch is a computed goto through a label table generated from
// the same X-macro as the UOp enum; defining UNTENABLE_SWITCH_DISPATCH (or
// building with a compiler without the GNU labels-as-values extension)
// selects a dense switch over the same handler bodies instead.
//
// Observational equivalence with the legacy interpreter (interp.cc) is the
// contract — tests/ebpf/engine_equiv_test.cc enforces it over the fuzz
// corpus. The per-instruction bookkeeping the legacy loop does eagerly
// (stats_.insns, 1ns time charge) is batched in locals here and flushed —
// EBPF_SYNC — at every point where the difference could be observed: before
// helper/kfunc invokes, memory accesses (a fault records an oops with a
// clock timestamp), RCU stall checks, and every return.
#include <cstring>

#include "src/ebpf/interp_internal.h"
#include "src/ebpf/runtime.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {
namespace internal {

using simkern::Addr;
using xbase::StrFormat;

namespace {
constexpr u64 kScratchPoison = 0xdead2bad00000000ULL;

// Width-dispatched little-endian access for the elided-check memory ops.
// Every call site passes a constant width, so the switch folds away.
inline u64 DirectLoad(const u8* p, u32 bytes) {
  switch (bytes) {
    case 1:
      return p[0];
    case 2:
      return xbase::LoadLe16(p);
    case 4:
      return xbase::LoadLe32(p);
    default:
      return xbase::LoadLe64(p);
  }
}

inline void DirectStore(u8* p, u32 bytes, u64 value) {
  switch (bytes) {
    case 1:
      p[0] = static_cast<u8>(value);
      break;
    case 2:
      xbase::StoreLe16(p, static_cast<xbase::u16>(value));
      break;
    case 4:
      xbase::StoreLe32(p, static_cast<u32>(value));
      break;
    default:
      xbase::StoreLe64(p, value);
      break;
  }
}
}  // namespace

#if defined(UNTENABLE_SWITCH_DISPATCH) || \
    !(defined(__GNUC__) || defined(__clang__))
#define EBPF_COMPUTED_GOTO 0
#else
#define EBPF_COMPUTED_GOTO 1
#endif

#if EBPF_COMPUTED_GOTO
#define EBPF_CASE(Name) lbl_##Name:
// True threaded dispatch: every handler ends with its own copy of the
// fetch/dispatch sequence, so each indirect jump site gets its own branch
// predictor state (the classic ~2x win over a single shared dispatch
// point). The rare events — pc escaping the image, the 4096-insn RCU
// stall probe, the harness insn cap — branch out to shared slow-path
// labels so the replicated fast path stays small.
#define EBPF_NEXT()                                                  \
  do {                                                               \
    if (__builtin_expect(pc >= num_ops, 0)) goto bad_pc;             \
    ++insns;                                                         \
    if (__builtin_expect((insns & 0xfff) == 0, 0)) goto periodic;    \
    if (__builtin_expect(insns > max_insns, 0)) goto insn_cap;       \
    op = ops[pc];                                                    \
    if (__builtin_expect(tracer != nullptr, 0)) {                    \
      tracer->OnInsn(pc, regs);                                      \
    }                                                                \
    goto* kDispatch[op.handler];                                     \
  } while (0)
#else
#define EBPF_CASE(Name) case UOp::k##Name:
#define EBPF_NEXT() goto dispatch_top
#endif

// Flush the batched per-insn bookkeeping into the shared state the rest of
// the simulation observes. The simulated-time charge is derived from the
// insn delta since the last flush (1ns per insn, exactly what the legacy
// loop charges eagerly), so the hot path only maintains `insns`.
#define EBPF_SYNC()                                                  \
  do {                                                               \
    stats_.insns = insns;                                            \
    if (insns != synced_insns) {                                     \
      Charge((insns - synced_insns) * simkern::kCostPerInsnNs);      \
      synced_insns = insns;                                          \
    }                                                                \
  } while (0)

// The byte offset of a memory micro-op ((u32)(s32)insn.off at decode time),
// widened back so address arithmetic wraps exactly like the legacy
// `regs[x] + static_cast<s64>(insn.off)`.
#define EBPF_MEM_OFF() \
  static_cast<u64>(static_cast<s64>(static_cast<s32>(op.jump)))

// ---- handler body generators ----------------------------------------------
// EXPR64 sees u64 v (current dst value) and u64 s (operand); EXPR32 sees
// both as u32 with the result truncated — the same width discipline the
// legacy switch applies via its value/src locals.
#define EBPF_ALU_CASES(Name, EXPR64, EXPR32)        \
  EBPF_CASE(Alu64##Name##Imm) {                     \
    const u64 v = regs[op.dst];                     \
    const u64 s = op.imm;                           \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = (EXPR64);                        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu64##Name##Reg) {                     \
    const u64 v = regs[op.dst];                     \
    const u64 s = regs[op.src];                     \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = (EXPR64);                        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu32##Name##Imm) {                     \
    const u32 v = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(op.imm);         \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = static_cast<u32>(EXPR32);        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu32##Name##Reg) {                     \
    const u32 v = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(regs[op.src]);   \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = static_cast<u32>(EXPR32);        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }

// COND64 compares u64 d/s, COND32 compares u32 d/s; op.jump is the
// pre-relocated taken target.
#define EBPF_JMP_CASES(Name, COND64, COND32)        \
  EBPF_CASE(Jmp64##Name##Imm) {                     \
    const u64 d = regs[op.dst];                     \
    const u64 s = op.imm;                           \
    pc = (COND64) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp64##Name##Reg) {                     \
    const u64 d = regs[op.dst];                     \
    const u64 s = regs[op.src];                     \
    pc = (COND64) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp32##Name##Imm) {                     \
    const u32 d = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(op.imm);         \
    pc = (COND32) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp32##Name##Reg) {                     \
    const u32 d = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(regs[op.src]);   \
    pc = (COND32) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }

#define EBPF_LDX_CASE(Sz, Bytes)                                      \
  EBPF_CASE(Ldx##Sz) {                                                \
    EBPF_SYNC();                                                      \
    auto loaded = ReadSized(regs[op.src] + EBPF_MEM_OFF(), Bytes);    \
    if (!loaded.ok()) {                                               \
      return loaded.status();                                         \
    }                                                                 \
    regs[op.dst] = loaded.value();                                    \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_STX_CASE(Sz, Bytes)                                      \
  EBPF_CASE(Stx##Sz) {                                                \
    EBPF_SYNC();                                                      \
    xbase::Status stored =                                            \
        WriteSized(regs[op.dst] + EBPF_MEM_OFF(), Bytes, regs[op.src]); \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_ST_CASE(Sz, Bytes)                                       \
  EBPF_CASE(St##Sz) {                                                 \
    EBPF_SYNC();                                                      \
    xbase::Status stored =                                            \
        WriteSized(regs[op.dst] + EBPF_MEM_OFF(), Bytes, op.imm);     \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_ATOMIC_CASE(Sz, Bytes)                                   \
  EBPF_CASE(AtomicAdd##Sz) {                                          \
    EBPF_SYNC();                                                      \
    const Addr addr = regs[op.dst] + EBPF_MEM_OFF();                  \
    auto old_value = ReadSized(addr, Bytes);                          \
    if (!old_value.ok()) {                                            \
      return old_value.status();                                      \
    }                                                                 \
    xbase::Status stored =                                            \
        WriteSized(addr, Bytes, old_value.value() + regs[op.src]);    \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

// Elided-check memory ops. The static layers proved the access in bounds,
// so there is no fault point — and therefore no observable point, which is
// why the EBPF_SYNC flush disappears along with the check (the per-insn
// counter stays batched straight through proven superblocks; the 4096-insn
// RCU probe in EBPF_NEXT is retained everywhere for exact stall-check
// parity with the legacy engine). Address resolution goes through the
// direct-window ring (interp_internal.h); a miss against every region is a
// wild access — poisoned read / dropped write, counted on SimMemory, never
// an oops. When the proof was wrong, this is the paper's silent corruption.
#define EBPF_LDXU_CASE(Sz, Bytes)                                     \
  EBPF_CASE(Ldx##Sz##U) {                                             \
    const u8* p = DirectPtr(regs[op.src] + EBPF_MEM_OFF(), Bytes);    \
    regs[op.dst] = p != nullptr ? DirectLoad(p, Bytes) : WildRead(Bytes); \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_STXU_CASE(Sz, Bytes)                                     \
  EBPF_CASE(Stx##Sz##U) {                                             \
    u8* p = DirectPtr(regs[op.dst] + EBPF_MEM_OFF(), Bytes);          \
    if (p != nullptr) {                                               \
      DirectStore(p, Bytes, regs[op.src]);                            \
    } else {                                                          \
      WildWrite();                                                    \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_STU_CASE(Sz, Bytes)                                      \
  EBPF_CASE(St##Sz##U) {                                              \
    u8* p = DirectPtr(regs[op.dst] + EBPF_MEM_OFF(), Bytes);          \
    if (p != nullptr) {                                               \
      DirectStore(p, Bytes, op.imm);                                  \
    } else {                                                          \
      WildWrite();                                                    \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

// Second-half bookkeeping of a fused pair, replicating exactly what
// EBPF_NEXT would have done between the two halves: count the tail insn,
// probe/cap on it, trace it with the mid-pair register state. The periodic
// path re-enters at dispatch_fetch with pc set to the INTACT tail slot, so
// the stall probe, cap recheck, and tracer all observe the same stream as
// the unfused form (and the tail executes exactly once — this macro skips
// its own trace on that path because dispatch_fetch traces).
#define EBPF_FUSE_STEP2(SecondPc)                                     \
  do {                                                                \
    ++insns;                                                          \
    if ((insns & 0xfff) == 0) {                                       \
      pc = (SecondPc);                                                \
      goto periodic;                                                  \
    }                                                                 \
    if (insns > max_insns) {                                          \
      goto insn_cap;                                                  \
    }                                                                 \
    if (tracer != nullptr) {                                          \
      tracer->OnInsn((SecondPc), regs);                               \
    }                                                                 \
  } while (0)

xbase::Result<u64> Execution::RunThreaded(u32 pc, u64* regs, u32 depth) {
  stats_.max_frame_depth = std::max(stats_.max_frame_depth, depth);

  // Saved caller contexts for bpf2bpf calls within this activation. Fixed
  // array, not a vector: no heap traffic in steady state (the frame-count
  // guard below keeps call_depth in range).
  struct SavedFrame {
    u64 regs[kNumRegs];
    u32 return_pc;
  };
  SavedFrame call_stack[kMaxRuntimeFrames];
  u32 call_depth = 0;
  u32 bpf_frame = depth;

  const MicroOp* ops = decoded_->ops.data();
  u32 num_ops = static_cast<u32>(decoded_->ops.size());
  const CallSite* calls = decoded_->calls.data();
  const MicroOp* sb = decoded_->sb_ops.data();

  InsnTracer* const tracer = opts_.tracer;
  const u64 max_insns = opts_.max_insns;

  // Batched bookkeeping; EBPF_SYNC() flushes into stats_/the sim clock.
  u64 insns = stats_.insns;
  u64 synced_insns = insns;
  MicroOp op;

#if EBPF_COMPUTED_GOTO
  // Label table in UOp order — generated from the same X-macro as the enum,
  // so the indices can't drift.
  static const void* const kDispatch[] = {
#define EBPF_UOP_LABEL(Name) &&lbl_##Name,
      EBPF_UOP_LIST(EBPF_UOP_LABEL)
#undef EBPF_UOP_LABEL
  };
#endif

// Shared (non-replicated) dispatch preamble: the initial entry, the
// switch-mode loop head, and the resume point after slow-path events. The
// order of checks matches the legacy interpreter exactly: pc bounds →
// count → RCU stall probe every 4096 insns → harness cap → fetch → trace.
#if !EBPF_COMPUTED_GOTO
dispatch_top:
#endif
  if (pc >= num_ops) {
    goto bad_pc;
  }
  ++insns;
  if ((insns & 0xfff) == 0) {
    goto periodic;
  }
  if (insns > max_insns) {
    goto insn_cap;
  }
dispatch_fetch:
  op = ops[pc];
  if (tracer != nullptr) {
    tracer->OnInsn(pc, regs);
  }
// Dispatch `op` as already fetched/bookkept/traced — the superblock slow
// path re-enters here with the head's ORIGINAL op swapped in (EBPF_NEXT
// already counted and traced that insn when it fetched the block head).
dispatch_op:

#if EBPF_COMPUTED_GOTO
  goto* kDispatch[op.handler];
#else
  switch (static_cast<UOp>(op.handler)) {
#endif

  EBPF_CASE(LdImm64) {
    regs[op.dst] = op.imm;
    pc = op.jump;
    EBPF_NEXT();
  }
  EBPF_CASE(BadLdImm64) {
    EBPF_SYNC();
    return RuntimeFault(xbase::KernelFault("bpf: bad ld_imm64"));
  }

  EBPF_LDX_CASE(B, 1)
  EBPF_LDX_CASE(H, 2)
  EBPF_LDX_CASE(W, 4)
  EBPF_LDX_CASE(Dw, 8)

  EBPF_STX_CASE(B, 1)
  EBPF_STX_CASE(H, 2)
  EBPF_STX_CASE(W, 4)
  EBPF_STX_CASE(Dw, 8)

  EBPF_ST_CASE(B, 1)
  EBPF_ST_CASE(H, 2)
  EBPF_ST_CASE(W, 4)
  EBPF_ST_CASE(Dw, 8)

  EBPF_ATOMIC_CASE(B, 1)
  EBPF_ATOMIC_CASE(H, 2)
  EBPF_ATOMIC_CASE(W, 4)
  EBPF_ATOMIC_CASE(Dw, 8)

  EBPF_LDXU_CASE(B, 1)
  EBPF_LDXU_CASE(H, 2)
  EBPF_LDXU_CASE(W, 4)
  EBPF_LDXU_CASE(Dw, 8)

  EBPF_STXU_CASE(B, 1)
  EBPF_STXU_CASE(H, 2)
  EBPF_STXU_CASE(W, 4)
  EBPF_STXU_CASE(Dw, 8)

  EBPF_STU_CASE(B, 1)
  EBPF_STU_CASE(H, 2)
  EBPF_STU_CASE(W, 4)
  EBPF_STU_CASE(Dw, 8)

  // ---- fused superops (see FusePairs in jit.cc for the field packing).
  // Each executes head-then-tail semantics in one dispatch; the tail slot
  // stays intact for mid-pair branch entries and periodic re-dispatch.

  // dst += imm; src(reg idx) += (s32)jump.
  EBPF_CASE(FuseAddImmAddImm) {
    regs[op.dst] += op.imm;
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.src] +=
        static_cast<u64>(static_cast<s64>(static_cast<s32>(op.jump)));
    pc += 2;
    EBPF_NEXT();
  }

  // dst += imm; goto jump (the tail's pre-relocated target).
  EBPF_CASE(FuseAddImmJa) {
    regs[op.dst] += op.imm;
    EBPF_FUSE_STEP2(pc + 1);
    pc = op.jump;
    EBPF_NEXT();
  }

  // dst += src; reg[jump] += imm.
  EBPF_CASE(FuseAddRegAddImm) {
    regs[op.dst] += regs[op.src];
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.jump] += op.imm;
    pc += 2;
    EBPF_NEXT();
  }

  // dst = src; dst += imm.
  EBPF_CASE(FuseMovRegAddImm) {
    regs[op.dst] = regs[op.src];
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.dst] += op.imm;
    pc += 2;
    EBPF_NEXT();
  }

  // dst = imm; exit — replica of the Exit body after the mov.
  EBPF_CASE(FuseMovImmExit) {
    regs[op.dst] = op.imm;
    EBPF_FUSE_STEP2(pc + 1);
    if (call_depth != 0) {
      const u64 r0 = regs[R0];
      SavedFrame& saved = call_stack[--call_depth];
      std::memcpy(regs, saved.regs, sizeof(saved.regs));
      regs[R0] = r0;
      pc = saved.return_pc;
      --bpf_frame;
      EBPF_NEXT();
    }
    EBPF_SYNC();
    return regs[R0];
  }

  // dst = *(u32*)(src + off); dst += imm. jump keeps the memory offset.
  EBPF_CASE(FuseLdxWUAddImm) {
    const u8* p = DirectPtr(regs[op.src] + EBPF_MEM_OFF(), 4);
    regs[op.dst] = p != nullptr ? xbase::LoadLe32(p) : WildRead(4);
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.dst] += op.imm;
    pc += 2;
    EBPF_NEXT();
  }

  // dst = *(u64*)(src + off); dst += imm.
  EBPF_CASE(FuseLdxDwUAddImm) {
    const u8* p = DirectPtr(regs[op.src] + EBPF_MEM_OFF(), 8);
    regs[op.dst] = p != nullptr ? xbase::LoadLe64(p) : WildRead(8);
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.dst] += op.imm;
    pc += 2;
    EBPF_NEXT();
  }

  // dst += src; reg[jump] += (s32)imm; goto (imm >> 32) — the whole
  // counted-loop back-edge body in one dispatch. Slots pc+1 / pc+2 intact.
  EBPF_CASE(FuseAddRegAddImmJa) {
    regs[op.dst] += regs[op.src];
    EBPF_FUSE_STEP2(pc + 1);
    regs[op.jump] += static_cast<u64>(
        static_cast<s64>(static_cast<s32>(static_cast<u32>(op.imm))));
    EBPF_FUSE_STEP2(pc + 2);
    pc = static_cast<u32>(op.imm >> 32);
    EBPF_NEXT();
  }

  // Entry-charged straight-line superblock (imm = len, jump = sb_ops start).
  // Fast path: the whole block's insn cost is charged up front and the
  // original per-insn ops run in a tight loop with no per-insn fetch,
  // probe, cap, or dispatch — the analysis proved the block straight-line
  // and fault-free, so there is no observable point inside it. Any run
  // where the bookkeeping WOULD be observable — a tracer attached, the
  // harness insn cap landing mid-block, or the 4096-insn RCU probe
  // boundary crossing inside the block — takes the slow path instead:
  // execute the head's original op (already counted and traced by the
  // dispatch that fetched this slot) and fall back to per-insn execution
  // through the intact interior slots, preserving exact boundary parity
  // with the legacy engine.
  EBPF_CASE(SuperBlock) {
    const u32 len = static_cast<u32>(op.imm);
    const MicroOp* bop = sb + op.jump;
    if (tracer != nullptr || insns + len - 1 > max_insns ||
        ((insns + len - 1) >> 12) != (insns >> 12)) {
      op = *bop;  // the head's original micro-op
      goto dispatch_op;
    }
    insns += len - 1;
    ++bop;  // skip the slow-path head copy; run the folded list
    for (const MicroOp* bend = bop + static_cast<u32>(op.imm >> 32);
         bop != bend; ++bop) {
      const MicroOp& b = *bop;
      switch (static_cast<UOp>(b.handler)) {
        case UOp::kAlu64AddImm: regs[b.dst] += b.imm; break;
        case UOp::kAlu64AddReg: regs[b.dst] += regs[b.src]; break;
        case UOp::kAlu32AddImm:
          regs[b.dst] = static_cast<u32>(regs[b.dst]) + static_cast<u32>(b.imm);
          break;
        case UOp::kAlu32AddReg:
          regs[b.dst] =
              static_cast<u32>(regs[b.dst]) + static_cast<u32>(regs[b.src]);
          break;
        case UOp::kAlu64SubImm: regs[b.dst] -= b.imm; break;
        case UOp::kAlu64SubReg: regs[b.dst] -= regs[b.src]; break;
        case UOp::kAlu32SubImm:
          regs[b.dst] = static_cast<u32>(regs[b.dst]) - static_cast<u32>(b.imm);
          break;
        case UOp::kAlu32SubReg:
          regs[b.dst] =
              static_cast<u32>(regs[b.dst]) - static_cast<u32>(regs[b.src]);
          break;
        case UOp::kAlu64AndImm: regs[b.dst] &= b.imm; break;
        case UOp::kAlu64AndReg: regs[b.dst] &= regs[b.src]; break;
        case UOp::kAlu32AndImm:
          regs[b.dst] = static_cast<u32>(regs[b.dst]) & static_cast<u32>(b.imm);
          break;
        case UOp::kAlu32AndReg:
          regs[b.dst] =
              static_cast<u32>(regs[b.dst]) & static_cast<u32>(regs[b.src]);
          break;
        case UOp::kAlu64OrImm: regs[b.dst] |= b.imm; break;
        case UOp::kAlu64OrReg: regs[b.dst] |= regs[b.src]; break;
        case UOp::kAlu32OrImm:
          regs[b.dst] = static_cast<u32>(regs[b.dst]) | static_cast<u32>(b.imm);
          break;
        case UOp::kAlu32OrReg:
          regs[b.dst] =
              static_cast<u32>(regs[b.dst]) | static_cast<u32>(regs[b.src]);
          break;
        case UOp::kAlu64XorImm: regs[b.dst] ^= b.imm; break;
        case UOp::kAlu64XorReg: regs[b.dst] ^= regs[b.src]; break;
        case UOp::kAlu32XorImm:
          regs[b.dst] = static_cast<u32>(regs[b.dst]) ^ static_cast<u32>(b.imm);
          break;
        case UOp::kAlu32XorReg:
          regs[b.dst] =
              static_cast<u32>(regs[b.dst]) ^ static_cast<u32>(regs[b.src]);
          break;
        case UOp::kAlu64MovImm: regs[b.dst] = b.imm; break;
        case UOp::kAlu64MovReg: regs[b.dst] = regs[b.src]; break;
        case UOp::kAlu32MovImm: regs[b.dst] = static_cast<u32>(b.imm); break;
        case UOp::kAlu32MovReg:
          regs[b.dst] = static_cast<u32>(regs[b.src]);
          break;
        case UOp::kLdxBU: case UOp::kLdxHU: case UOp::kLdxWU:
        case UOp::kLdxDwU: {
          const u32 bytes = 1u << (b.handler - static_cast<u16>(UOp::kLdxBU));
          const u8* p = DirectPtr(
              regs[b.src] +
                  static_cast<u64>(static_cast<s64>(static_cast<s32>(b.jump))),
              bytes);
          regs[b.dst] = p != nullptr ? DirectLoad(p, bytes) : WildRead(bytes);
          break;
        }
        case UOp::kStxBU: case UOp::kStxHU: case UOp::kStxWU:
        case UOp::kStxDwU: {
          const u32 bytes = 1u << (b.handler - static_cast<u16>(UOp::kStxBU));
          u8* p = DirectPtr(
              regs[b.dst] +
                  static_cast<u64>(static_cast<s64>(static_cast<s32>(b.jump))),
              bytes);
          if (p != nullptr) {
            DirectStore(p, bytes, regs[b.src]);
          } else {
            WildWrite();
          }
          break;
        }
        case UOp::kStBU: case UOp::kStHU: case UOp::kStWU:
        case UOp::kStDwU: {
          const u32 bytes = 1u << (b.handler - static_cast<u16>(UOp::kStBU));
          u8* p = DirectPtr(
              regs[b.dst] +
                  static_cast<u64>(static_cast<s64>(static_cast<s32>(b.jump))),
              bytes);
          if (p != nullptr) {
            DirectStore(p, bytes, b.imm);
          } else {
            WildWrite();
          }
          break;
        }
        default:
          break;  // unreachable: BlockableOp gates admission at lowering
      }
    }
    pc += len;
    EBPF_NEXT();
  }

  EBPF_CASE(AtomicBad) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unsupported atomic op at runtime"));
  }

  EBPF_CASE(Ja) {
    pc = op.jump;
    EBPF_NEXT();
  }

  EBPF_CASE(Exit) {
    if (call_depth != 0) {
      // Return from bpf2bpf call.
      const u64 r0 = regs[R0];
      SavedFrame& saved = call_stack[--call_depth];
      std::memcpy(regs, saved.regs, sizeof(saved.regs));
      regs[R0] = r0;
      pc = saved.return_pc;
      --bpf_frame;
      EBPF_NEXT();
    }
    EBPF_SYNC();
    return regs[R0];
  }

  EBPF_CASE(CallBpf) {
    if (bpf_frame + 1 >= kMaxRuntimeFrames) {
      EBPF_SYNC();
      return RuntimeFault(xbase::KernelFault("bpf: call stack overflow"));
    }
    SavedFrame& saved = call_stack[call_depth++];
    std::memcpy(saved.regs, regs, sizeof(saved.regs));
    saved.return_pc = pc + 1;
    ++bpf_frame;
    stats_.max_frame_depth = std::max(stats_.max_frame_depth, bpf_frame);
    regs[R10] = stack_base_ + kFrameBytes * (bpf_frame + 1);
    pc = op.jump;
    EBPF_NEXT();
  }

  EBPF_CASE(CallHelper) {
    const CallSite& site = calls[op.jump];
    if (site.gate_denied) {
      // The dispatch layer's own access-control verdict, computed at
      // lowering time against the declared helper contract. Reached only
      // when the verifier wrongly admitted the call (injected gate
      // faults): deny before the helper body can run.
      EBPF_SYNC();
      return RuntimeFault(xbase::KernelFault(StrFormat(
          "bpf: helper call #%d denied by access contract at dispatch",
          site.imm)));
    }
    ++stats_.helper_calls;
    const HelperFn* fn = site.fn;
    u64 cost_ns = site.cost_ns;
    if (fn == nullptr) {
      // Lazily-decoded image or id unknown at lowering time: resolve at
      // runtime exactly like the legacy interpreter, fault included.
      EBPF_SYNC();
      auto spec = bpf_.helpers().FindSpec(site.id);
      if (!spec.ok()) {
        return RuntimeFault(xbase::KernelFault(
            StrFormat("bpf: call to unknown helper #%d", site.imm)));
      }
      cost_ns = spec.value()->cost_ns;
      fn = bpf_.helpers().FindFn(site.id).value();
    }
    EBPF_SYNC();
    Charge(cost_ns);
    if (site.fn != nullptr && site.id == kHelperMapLookupElem) {
      // Inline fast path for bpf_map_lookup_elem: observationally identical
      // to the registered helper (helpers_core.cc), minus the Result<> and
      // key-vector plumbing. Falls through to the generic invoke when the
      // key doesn't fit the scratch buffer.
      auto fd = FdFromMapHandle(regs[R1]);
      if (!fd.ok()) {
        return fd.status();
      }
      auto map = bpf_.maps().Find(fd.value());
      if (!map.ok()) {
        return map.status();
      }
      const u32 key_size = map.value()->spec().key_size;
      u8 key_buf[64];
      if (key_size <= sizeof(key_buf)) {
        xbase::Status read = kernel_.mem().ReadChecked(
            regs[R2], {key_buf, key_size}, /*access_key=*/0);
        if (!read.ok()) {
          return kernel_.Route(std::move(read));
        }
        Map* m = map.value();
        const MapType mtype = m->spec().type;
        // Lookup inline cache: one entry keyed by (map identity, global
        // generation stamp, key bytes). Array and hash only — percpu
        // lookups depend on current_cpu, and the other types aren't value
        // lookups. Misses are cached too (addr 0); an Update that later
        // inserts the key bumps the generation and invalidates. The
        // cached map pointer is only ever *compared* against the live
        // Find() result, never dereferenced first, so a destroyed map
        // can't dangle, and the process-global stamp kills ABA reuse.
        if (key_size <= 8 &&
            (mtype == MapType::kArray || mtype == MapType::kHash)) {
          u64 key_word = 0;
          std::memcpy(&key_word, key_buf, key_size);
          if (lookup_cache_.map == m &&
              lookup_cache_.gen == m->generation() &&
              lookup_cache_.key_size == key_size &&
              lookup_cache_.key == key_word) {
            regs[R0] = lookup_cache_.addr;
          } else {
            auto addr = m->LookupAddr(kernel_, {key_buf, key_size});
            const Addr value_addr = addr.ok() ? addr.value() : 0;
            lookup_cache_ = {m, m->generation(), key_word, key_size,
                             value_addr};
            regs[R0] = value_addr;  // NULL on miss
          }
          for (int r = R1; r <= R5; ++r) {
            regs[r] = kScratchPoison + static_cast<u64>(r);
          }
          ++pc;
          EBPF_NEXT();
        }
        auto addr = m->LookupAddr(kernel_, {key_buf, key_size});
        regs[R0] = addr.ok() ? addr.value() : 0;  // NULL on miss
        for (int r = R1; r <= R5; ++r) {
          regs[r] = kScratchPoison + static_cast<u64>(r);
        }
        ++pc;
        EBPF_NEXT();
      }
    }
    HelperCtx hctx = bpf_.MakeHelperCtx(this);
    const HelperArgs args = {regs[R1], regs[R2], regs[R3], regs[R4],
                             regs[R5]};
    auto ret = (*fn)(hctx, args);
    // Helpers are the only path that can unmap regions (map delete,
    // ringbuf churn): drop the direct windows so elided accesses re-translate.
    ResetWindows();
    // Nested callbacks advanced the shared counter and may have
    // tail-called; re-sync the locals with the world.
    insns = stats_.insns;
    synced_insns = insns;
    ops = decoded_->ops.data();
    num_ops = static_cast<u32>(decoded_->ops.size());
    calls = decoded_->calls.data();
    sb = decoded_->sb_ops.data();
    if (!ret.ok()) {
      return ret.status();
    }
    regs[R0] = ret.value();
    // Scratch registers die across calls; poison them so buggy programs
    // fail loudly rather than silently.
    for (int r = R1; r <= R5; ++r) {
      regs[r] = kScratchPoison + static_cast<u64>(r);
    }
    if (pending_tail_call_.has_value()) {
      const u32 target_id = *pending_tail_call_;
      pending_tail_call_.reset();
      if (!SwitchToTailTarget(target_id)) {
        return RuntimeFault(
            xbase::KernelFault("bpf: tail call to missing program"));
      }
      ops = decoded_->ops.data();
      num_ops = static_cast<u32>(decoded_->ops.size());
      calls = decoded_->calls.data();
      sb = decoded_->sb_ops.data();
      regs[R1] = ctx_addr_;
      pc = 0;
      EBPF_NEXT();
    }
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(CallKfunc) {
    const CallSite& site = calls[op.jump];
    ++stats_.helper_calls;
    const HelperFn* fn = site.fn;
    u64 cost_ns = site.cost_ns;
    if (fn == nullptr) {
      EBPF_SYNC();
      auto spec = bpf_.kfuncs().FindSpec(site.id);
      if (!spec.ok()) {
        return RuntimeFault(xbase::KernelFault(
            StrFormat("bpf: call to unknown kfunc #%d", site.imm)));
      }
      cost_ns = spec.value()->cost_ns;
      fn = bpf_.kfuncs().FindFn(site.id).value();
    }
    EBPF_SYNC();
    Charge(cost_ns);
    HelperCtx hctx = bpf_.MakeHelperCtx(this);
    const HelperArgs args = {regs[R1], regs[R2], regs[R3], regs[R4],
                             regs[R5]};
    auto ret = (*fn)(hctx, args);
    ResetWindows();  // kfuncs can unmap regions too
    insns = stats_.insns;
    synced_insns = insns;
    ops = decoded_->ops.data();
    num_ops = static_cast<u32>(decoded_->ops.size());
    calls = decoded_->calls.data();
    sb = decoded_->sb_ops.data();
    if (!ret.ok()) {
      return ret.status();
    }
    regs[R0] = ret.value();
    for (int r = R1; r <= R5; ++r) {
      regs[r] = kScratchPoison + static_cast<u64>(r);
    }
    if (pending_tail_call_.has_value()) {
      const u32 target_id = *pending_tail_call_;
      pending_tail_call_.reset();
      if (!SwitchToTailTarget(target_id)) {
        return RuntimeFault(
            xbase::KernelFault("bpf: tail call to missing program"));
      }
      ops = decoded_->ops.data();
      num_ops = static_cast<u32>(decoded_->ops.size());
      calls = decoded_->calls.data();
      sb = decoded_->sb_ops.data();
      regs[R1] = ctx_addr_;
      pc = 0;
      EBPF_NEXT();
    }
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(Neg64) {
    regs[op.dst] = ~regs[op.dst] + 1;
    ++pc;
    EBPF_NEXT();
  }
  EBPF_CASE(Neg32) {
    regs[op.dst] = static_cast<u32>(~static_cast<u32>(regs[op.dst]) + 1);
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(EndSwap) {
    // op.src holds the pre-clamped byte count, op.imm the final mask with
    // the ALU-class truncation folded in.
    u8 buf[8];
    xbase::StoreLe64(buf, regs[op.dst]);
    std::reverse(buf, buf + op.src);
    u8 full[8] = {};
    std::memcpy(full, buf, op.src);
    regs[op.dst] = xbase::LoadLe64(full) & op.imm;
    ++pc;
    EBPF_NEXT();
  }
  EBPF_CASE(EndMask) {
    regs[op.dst] &= op.imm;
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(UnknownAlu) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unknown ALU opcode at runtime"));
  }
  EBPF_CASE(UnknownJmp) {
    EBPF_SYNC();
    return RuntimeFault(xbase::KernelFault("bpf: unknown jump opcode"));
  }
  EBPF_CASE(UnknownClass) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unknown instruction class at runtime"));
  }

  EBPF_ALU_CASES(Add, v + s, v + s)
  EBPF_ALU_CASES(Sub, v - s, v - s)
  EBPF_ALU_CASES(Mul, v * s, v * s)
  EBPF_ALU_CASES(Div, s == 0 ? 0 : v / s, s == 0 ? 0 : v / s)
  EBPF_ALU_CASES(Mod, s == 0 ? v : v % s, s == 0 ? v : v % s)
  EBPF_ALU_CASES(Or, v | s, v | s)
  EBPF_ALU_CASES(And, v & s, v & s)
  EBPF_ALU_CASES(Xor, v ^ s, v ^ s)
  EBPF_ALU_CASES(Lsh, v << (s & 63), v << (s & 31))
  EBPF_ALU_CASES(Rsh, v >> (s & 63), v >> (s & 31))
  EBPF_ALU_CASES(Arsh, static_cast<u64>(static_cast<s64>(v) >> (s & 63)),
                 static_cast<u32>(static_cast<s32>(v) >> (s & 31)))
  EBPF_ALU_CASES(Mov, s, s)

  EBPF_JMP_CASES(Jeq, d == s, d == s)
  EBPF_JMP_CASES(Jne, d != s, d != s)
  EBPF_JMP_CASES(Jgt, d > s, d > s)
  EBPF_JMP_CASES(Jge, d >= s, d >= s)
  EBPF_JMP_CASES(Jlt, d < s, d < s)
  EBPF_JMP_CASES(Jle, d <= s, d <= s)
  EBPF_JMP_CASES(Jsgt, static_cast<s64>(d) > static_cast<s64>(s),
                 static_cast<s32>(d) > static_cast<s32>(s))
  EBPF_JMP_CASES(Jsge, static_cast<s64>(d) >= static_cast<s64>(s),
                 static_cast<s32>(d) >= static_cast<s32>(s))
  EBPF_JMP_CASES(Jslt, static_cast<s64>(d) < static_cast<s64>(s),
                 static_cast<s32>(d) < static_cast<s32>(s))
  EBPF_JMP_CASES(Jsle, static_cast<s64>(d) <= static_cast<s64>(s),
                 static_cast<s32>(d) <= static_cast<s32>(s))
  EBPF_JMP_CASES(Jset, (d & s) != 0, (d & s) != 0)

#if !EBPF_COMPUTED_GOTO
    case UOp::kCount:
      break;
  }
#endif
  // Unreachable: the decoder emits a handler for every slot and the label
  // table / switch covers every handler.
  EBPF_SYNC();
  return RuntimeFault(xbase::KernelFault("bpf: unhandled micro-op"));

  // ---- shared slow paths (reached only via goto from the dispatch
  // preambles above; never by fallthrough) -------------------------------
periodic:
  EBPF_SYNC();
  kernel_.rcu().CheckStall(kernel_.clock());
  if (insns > max_insns) {
    goto insn_cap;
  }
  goto dispatch_fetch;

bad_pc:
  EBPF_SYNC();
  return RuntimeFault(xbase::KernelFault(
      StrFormat("bpf: pc %u out of range (JIT image corruption?)", pc)));

insn_cap:
  EBPF_SYNC();
  return xbase::Terminated(StrFormat(
      "harness insn cap (%llu) exceeded — the kernel itself would keep "
      "running",
      static_cast<unsigned long long>(max_insns)));
}

}  // namespace internal
}  // namespace ebpf

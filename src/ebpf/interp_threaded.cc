// The threaded execution engine: dispatches over the JIT's pre-decoded
// micro-ops (decoded.h) instead of re-decoding raw instruction words per
// step. Dispatch is a computed goto through a label table generated from
// the same X-macro as the UOp enum; defining UNTENABLE_SWITCH_DISPATCH (or
// building with a compiler without the GNU labels-as-values extension)
// selects a dense switch over the same handler bodies instead.
//
// Observational equivalence with the legacy interpreter (interp.cc) is the
// contract — tests/ebpf/engine_equiv_test.cc enforces it over the fuzz
// corpus. The per-instruction bookkeeping the legacy loop does eagerly
// (stats_.insns, 1ns time charge) is batched in locals here and flushed —
// EBPF_SYNC — at every point where the difference could be observed: before
// helper/kfunc invokes, memory accesses (a fault records an oops with a
// clock timestamp), RCU stall checks, and every return.
#include <cstring>

#include "src/ebpf/interp_internal.h"
#include "src/ebpf/runtime.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {
namespace internal {

using simkern::Addr;
using xbase::StrFormat;

namespace {
constexpr u64 kScratchPoison = 0xdead2bad00000000ULL;
}  // namespace

#if defined(UNTENABLE_SWITCH_DISPATCH) || \
    !(defined(__GNUC__) || defined(__clang__))
#define EBPF_COMPUTED_GOTO 0
#else
#define EBPF_COMPUTED_GOTO 1
#endif

#if EBPF_COMPUTED_GOTO
#define EBPF_CASE(Name) lbl_##Name:
// True threaded dispatch: every handler ends with its own copy of the
// fetch/dispatch sequence, so each indirect jump site gets its own branch
// predictor state (the classic ~2x win over a single shared dispatch
// point). The rare events — pc escaping the image, the 4096-insn RCU
// stall probe, the harness insn cap — branch out to shared slow-path
// labels so the replicated fast path stays small.
#define EBPF_NEXT()                                                  \
  do {                                                               \
    if (__builtin_expect(pc >= num_ops, 0)) goto bad_pc;             \
    ++insns;                                                         \
    if (__builtin_expect((insns & 0xfff) == 0, 0)) goto periodic;    \
    if (__builtin_expect(insns > max_insns, 0)) goto insn_cap;       \
    op = ops[pc];                                                    \
    if (__builtin_expect(tracer != nullptr, 0)) {                    \
      tracer->OnInsn(pc, regs);                                      \
    }                                                                \
    goto* kDispatch[op.handler];                                     \
  } while (0)
#else
#define EBPF_CASE(Name) case UOp::k##Name:
#define EBPF_NEXT() goto dispatch_top
#endif

// Flush the batched per-insn bookkeeping into the shared state the rest of
// the simulation observes. The simulated-time charge is derived from the
// insn delta since the last flush (1ns per insn, exactly what the legacy
// loop charges eagerly), so the hot path only maintains `insns`.
#define EBPF_SYNC()                                                  \
  do {                                                               \
    stats_.insns = insns;                                            \
    if (insns != synced_insns) {                                     \
      Charge((insns - synced_insns) * simkern::kCostPerInsnNs);      \
      synced_insns = insns;                                          \
    }                                                                \
  } while (0)

// The byte offset of a memory micro-op ((u32)(s32)insn.off at decode time),
// widened back so address arithmetic wraps exactly like the legacy
// `regs[x] + static_cast<s64>(insn.off)`.
#define EBPF_MEM_OFF() \
  static_cast<u64>(static_cast<s64>(static_cast<s32>(op.jump)))

// ---- handler body generators ----------------------------------------------
// EXPR64 sees u64 v (current dst value) and u64 s (operand); EXPR32 sees
// both as u32 with the result truncated — the same width discipline the
// legacy switch applies via its value/src locals.
#define EBPF_ALU_CASES(Name, EXPR64, EXPR32)        \
  EBPF_CASE(Alu64##Name##Imm) {                     \
    const u64 v = regs[op.dst];                     \
    const u64 s = op.imm;                           \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = (EXPR64);                        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu64##Name##Reg) {                     \
    const u64 v = regs[op.dst];                     \
    const u64 s = regs[op.src];                     \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = (EXPR64);                        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu32##Name##Imm) {                     \
    const u32 v = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(op.imm);         \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = static_cast<u32>(EXPR32);        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Alu32##Name##Reg) {                     \
    const u32 v = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(regs[op.src]);   \
    (void)v;                                        \
    (void)s;                                        \
    regs[op.dst] = static_cast<u32>(EXPR32);        \
    ++pc;                                           \
    EBPF_NEXT();                                    \
  }

// COND64 compares u64 d/s, COND32 compares u32 d/s; op.jump is the
// pre-relocated taken target.
#define EBPF_JMP_CASES(Name, COND64, COND32)        \
  EBPF_CASE(Jmp64##Name##Imm) {                     \
    const u64 d = regs[op.dst];                     \
    const u64 s = op.imm;                           \
    pc = (COND64) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp64##Name##Reg) {                     \
    const u64 d = regs[op.dst];                     \
    const u64 s = regs[op.src];                     \
    pc = (COND64) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp32##Name##Imm) {                     \
    const u32 d = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(op.imm);         \
    pc = (COND32) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }                                                 \
  EBPF_CASE(Jmp32##Name##Reg) {                     \
    const u32 d = static_cast<u32>(regs[op.dst]);   \
    const u32 s = static_cast<u32>(regs[op.src]);   \
    pc = (COND32) ? op.jump : pc + 1;               \
    EBPF_NEXT();                                    \
  }

#define EBPF_LDX_CASE(Sz, Bytes)                                      \
  EBPF_CASE(Ldx##Sz) {                                                \
    EBPF_SYNC();                                                      \
    auto loaded = ReadSized(regs[op.src] + EBPF_MEM_OFF(), Bytes);    \
    if (!loaded.ok()) {                                               \
      return loaded.status();                                         \
    }                                                                 \
    regs[op.dst] = loaded.value();                                    \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_STX_CASE(Sz, Bytes)                                      \
  EBPF_CASE(Stx##Sz) {                                                \
    EBPF_SYNC();                                                      \
    xbase::Status stored =                                            \
        WriteSized(regs[op.dst] + EBPF_MEM_OFF(), Bytes, regs[op.src]); \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_ST_CASE(Sz, Bytes)                                       \
  EBPF_CASE(St##Sz) {                                                 \
    EBPF_SYNC();                                                      \
    xbase::Status stored =                                            \
        WriteSized(regs[op.dst] + EBPF_MEM_OFF(), Bytes, op.imm);     \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

#define EBPF_ATOMIC_CASE(Sz, Bytes)                                   \
  EBPF_CASE(AtomicAdd##Sz) {                                          \
    EBPF_SYNC();                                                      \
    const Addr addr = regs[op.dst] + EBPF_MEM_OFF();                  \
    auto old_value = ReadSized(addr, Bytes);                          \
    if (!old_value.ok()) {                                            \
      return old_value.status();                                      \
    }                                                                 \
    xbase::Status stored =                                            \
        WriteSized(addr, Bytes, old_value.value() + regs[op.src]);    \
    if (!stored.ok()) {                                               \
      return stored;                                                  \
    }                                                                 \
    ++pc;                                                             \
    EBPF_NEXT();                                                      \
  }

xbase::Result<u64> Execution::RunThreaded(u32 pc, u64* regs, u32 depth) {
  stats_.max_frame_depth = std::max(stats_.max_frame_depth, depth);

  // Saved caller contexts for bpf2bpf calls within this activation. Fixed
  // array, not a vector: no heap traffic in steady state (the frame-count
  // guard below keeps call_depth in range).
  struct SavedFrame {
    u64 regs[kNumRegs];
    u32 return_pc;
  };
  SavedFrame call_stack[kMaxRuntimeFrames];
  u32 call_depth = 0;
  u32 bpf_frame = depth;

  const MicroOp* ops = decoded_->ops.data();
  u32 num_ops = static_cast<u32>(decoded_->ops.size());
  const CallSite* calls = decoded_->calls.data();

  InsnTracer* const tracer = opts_.tracer;
  const u64 max_insns = opts_.max_insns;

  // Batched bookkeeping; EBPF_SYNC() flushes into stats_/the sim clock.
  u64 insns = stats_.insns;
  u64 synced_insns = insns;
  MicroOp op;

#if EBPF_COMPUTED_GOTO
  // Label table in UOp order — generated from the same X-macro as the enum,
  // so the indices can't drift.
  static const void* const kDispatch[] = {
#define EBPF_UOP_LABEL(Name) &&lbl_##Name,
      EBPF_UOP_LIST(EBPF_UOP_LABEL)
#undef EBPF_UOP_LABEL
  };
#endif

// Shared (non-replicated) dispatch preamble: the initial entry, the
// switch-mode loop head, and the resume point after slow-path events. The
// order of checks matches the legacy interpreter exactly: pc bounds →
// count → RCU stall probe every 4096 insns → harness cap → fetch → trace.
#if !EBPF_COMPUTED_GOTO
dispatch_top:
#endif
  if (pc >= num_ops) {
    goto bad_pc;
  }
  ++insns;
  if ((insns & 0xfff) == 0) {
    goto periodic;
  }
  if (insns > max_insns) {
    goto insn_cap;
  }
dispatch_fetch:
  op = ops[pc];
  if (tracer != nullptr) {
    tracer->OnInsn(pc, regs);
  }

#if EBPF_COMPUTED_GOTO
  goto* kDispatch[op.handler];
#else
  switch (static_cast<UOp>(op.handler)) {
#endif

  EBPF_CASE(LdImm64) {
    regs[op.dst] = op.imm;
    pc = op.jump;
    EBPF_NEXT();
  }
  EBPF_CASE(BadLdImm64) {
    EBPF_SYNC();
    return RuntimeFault(xbase::KernelFault("bpf: bad ld_imm64"));
  }

  EBPF_LDX_CASE(B, 1)
  EBPF_LDX_CASE(H, 2)
  EBPF_LDX_CASE(W, 4)
  EBPF_LDX_CASE(Dw, 8)

  EBPF_STX_CASE(B, 1)
  EBPF_STX_CASE(H, 2)
  EBPF_STX_CASE(W, 4)
  EBPF_STX_CASE(Dw, 8)

  EBPF_ST_CASE(B, 1)
  EBPF_ST_CASE(H, 2)
  EBPF_ST_CASE(W, 4)
  EBPF_ST_CASE(Dw, 8)

  EBPF_ATOMIC_CASE(B, 1)
  EBPF_ATOMIC_CASE(H, 2)
  EBPF_ATOMIC_CASE(W, 4)
  EBPF_ATOMIC_CASE(Dw, 8)

  EBPF_CASE(AtomicBad) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unsupported atomic op at runtime"));
  }

  EBPF_CASE(Ja) {
    pc = op.jump;
    EBPF_NEXT();
  }

  EBPF_CASE(Exit) {
    if (call_depth != 0) {
      // Return from bpf2bpf call.
      const u64 r0 = regs[R0];
      SavedFrame& saved = call_stack[--call_depth];
      std::memcpy(regs, saved.regs, sizeof(saved.regs));
      regs[R0] = r0;
      pc = saved.return_pc;
      --bpf_frame;
      EBPF_NEXT();
    }
    EBPF_SYNC();
    return regs[R0];
  }

  EBPF_CASE(CallBpf) {
    if (bpf_frame + 1 >= kMaxRuntimeFrames) {
      EBPF_SYNC();
      return RuntimeFault(xbase::KernelFault("bpf: call stack overflow"));
    }
    SavedFrame& saved = call_stack[call_depth++];
    std::memcpy(saved.regs, regs, sizeof(saved.regs));
    saved.return_pc = pc + 1;
    ++bpf_frame;
    stats_.max_frame_depth = std::max(stats_.max_frame_depth, bpf_frame);
    regs[R10] = stack_base_ + kFrameBytes * (bpf_frame + 1);
    pc = op.jump;
    EBPF_NEXT();
  }

  EBPF_CASE(CallHelper) {
    const CallSite& site = calls[op.jump];
    if (site.gate_denied) {
      // The dispatch layer's own access-control verdict, computed at
      // lowering time against the declared helper contract. Reached only
      // when the verifier wrongly admitted the call (injected gate
      // faults): deny before the helper body can run.
      EBPF_SYNC();
      return RuntimeFault(xbase::KernelFault(StrFormat(
          "bpf: helper call #%d denied by access contract at dispatch",
          site.imm)));
    }
    ++stats_.helper_calls;
    const HelperFn* fn = site.fn;
    u64 cost_ns = site.cost_ns;
    if (fn == nullptr) {
      // Lazily-decoded image or id unknown at lowering time: resolve at
      // runtime exactly like the legacy interpreter, fault included.
      EBPF_SYNC();
      auto spec = bpf_.helpers().FindSpec(site.id);
      if (!spec.ok()) {
        return RuntimeFault(xbase::KernelFault(
            StrFormat("bpf: call to unknown helper #%d", site.imm)));
      }
      cost_ns = spec.value()->cost_ns;
      fn = bpf_.helpers().FindFn(site.id).value();
    }
    EBPF_SYNC();
    Charge(cost_ns);
    if (site.fn != nullptr && site.id == kHelperMapLookupElem) {
      // Inline fast path for bpf_map_lookup_elem: observationally identical
      // to the registered helper (helpers_core.cc), minus the Result<> and
      // key-vector plumbing. Falls through to the generic invoke when the
      // key doesn't fit the scratch buffer.
      auto fd = FdFromMapHandle(regs[R1]);
      if (!fd.ok()) {
        return fd.status();
      }
      auto map = bpf_.maps().Find(fd.value());
      if (!map.ok()) {
        return map.status();
      }
      const u32 key_size = map.value()->spec().key_size;
      u8 key_buf[64];
      if (key_size <= sizeof(key_buf)) {
        xbase::Status read = kernel_.mem().ReadChecked(
            regs[R2], {key_buf, key_size}, /*access_key=*/0);
        if (!read.ok()) {
          return kernel_.Route(std::move(read));
        }
        auto addr = map.value()->LookupAddr(kernel_, {key_buf, key_size});
        regs[R0] = addr.ok() ? addr.value() : 0;  // NULL on miss
        for (int r = R1; r <= R5; ++r) {
          regs[r] = kScratchPoison + static_cast<u64>(r);
        }
        ++pc;
        EBPF_NEXT();
      }
    }
    HelperCtx hctx = bpf_.MakeHelperCtx(this);
    const HelperArgs args = {regs[R1], regs[R2], regs[R3], regs[R4],
                             regs[R5]};
    auto ret = (*fn)(hctx, args);
    // Nested callbacks advanced the shared counter and may have
    // tail-called; re-sync the locals with the world.
    insns = stats_.insns;
    synced_insns = insns;
    ops = decoded_->ops.data();
    num_ops = static_cast<u32>(decoded_->ops.size());
    calls = decoded_->calls.data();
    if (!ret.ok()) {
      return ret.status();
    }
    regs[R0] = ret.value();
    // Scratch registers die across calls; poison them so buggy programs
    // fail loudly rather than silently.
    for (int r = R1; r <= R5; ++r) {
      regs[r] = kScratchPoison + static_cast<u64>(r);
    }
    if (pending_tail_call_.has_value()) {
      const u32 target_id = *pending_tail_call_;
      pending_tail_call_.reset();
      if (!SwitchToTailTarget(target_id)) {
        return RuntimeFault(
            xbase::KernelFault("bpf: tail call to missing program"));
      }
      ops = decoded_->ops.data();
      num_ops = static_cast<u32>(decoded_->ops.size());
      calls = decoded_->calls.data();
      regs[R1] = ctx_addr_;
      pc = 0;
      EBPF_NEXT();
    }
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(CallKfunc) {
    const CallSite& site = calls[op.jump];
    ++stats_.helper_calls;
    const HelperFn* fn = site.fn;
    u64 cost_ns = site.cost_ns;
    if (fn == nullptr) {
      EBPF_SYNC();
      auto spec = bpf_.kfuncs().FindSpec(site.id);
      if (!spec.ok()) {
        return RuntimeFault(xbase::KernelFault(
            StrFormat("bpf: call to unknown kfunc #%d", site.imm)));
      }
      cost_ns = spec.value()->cost_ns;
      fn = bpf_.kfuncs().FindFn(site.id).value();
    }
    EBPF_SYNC();
    Charge(cost_ns);
    HelperCtx hctx = bpf_.MakeHelperCtx(this);
    const HelperArgs args = {regs[R1], regs[R2], regs[R3], regs[R4],
                             regs[R5]};
    auto ret = (*fn)(hctx, args);
    insns = stats_.insns;
    synced_insns = insns;
    ops = decoded_->ops.data();
    num_ops = static_cast<u32>(decoded_->ops.size());
    calls = decoded_->calls.data();
    if (!ret.ok()) {
      return ret.status();
    }
    regs[R0] = ret.value();
    for (int r = R1; r <= R5; ++r) {
      regs[r] = kScratchPoison + static_cast<u64>(r);
    }
    if (pending_tail_call_.has_value()) {
      const u32 target_id = *pending_tail_call_;
      pending_tail_call_.reset();
      if (!SwitchToTailTarget(target_id)) {
        return RuntimeFault(
            xbase::KernelFault("bpf: tail call to missing program"));
      }
      ops = decoded_->ops.data();
      num_ops = static_cast<u32>(decoded_->ops.size());
      calls = decoded_->calls.data();
      regs[R1] = ctx_addr_;
      pc = 0;
      EBPF_NEXT();
    }
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(Neg64) {
    regs[op.dst] = ~regs[op.dst] + 1;
    ++pc;
    EBPF_NEXT();
  }
  EBPF_CASE(Neg32) {
    regs[op.dst] = static_cast<u32>(~static_cast<u32>(regs[op.dst]) + 1);
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(EndSwap) {
    // op.src holds the pre-clamped byte count, op.imm the final mask with
    // the ALU-class truncation folded in.
    u8 buf[8];
    xbase::StoreLe64(buf, regs[op.dst]);
    std::reverse(buf, buf + op.src);
    u8 full[8] = {};
    std::memcpy(full, buf, op.src);
    regs[op.dst] = xbase::LoadLe64(full) & op.imm;
    ++pc;
    EBPF_NEXT();
  }
  EBPF_CASE(EndMask) {
    regs[op.dst] &= op.imm;
    ++pc;
    EBPF_NEXT();
  }

  EBPF_CASE(UnknownAlu) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unknown ALU opcode at runtime"));
  }
  EBPF_CASE(UnknownJmp) {
    EBPF_SYNC();
    return RuntimeFault(xbase::KernelFault("bpf: unknown jump opcode"));
  }
  EBPF_CASE(UnknownClass) {
    EBPF_SYNC();
    return RuntimeFault(
        xbase::KernelFault("bpf: unknown instruction class at runtime"));
  }

  EBPF_ALU_CASES(Add, v + s, v + s)
  EBPF_ALU_CASES(Sub, v - s, v - s)
  EBPF_ALU_CASES(Mul, v * s, v * s)
  EBPF_ALU_CASES(Div, s == 0 ? 0 : v / s, s == 0 ? 0 : v / s)
  EBPF_ALU_CASES(Mod, s == 0 ? v : v % s, s == 0 ? v : v % s)
  EBPF_ALU_CASES(Or, v | s, v | s)
  EBPF_ALU_CASES(And, v & s, v & s)
  EBPF_ALU_CASES(Xor, v ^ s, v ^ s)
  EBPF_ALU_CASES(Lsh, v << (s & 63), v << (s & 31))
  EBPF_ALU_CASES(Rsh, v >> (s & 63), v >> (s & 31))
  EBPF_ALU_CASES(Arsh, static_cast<u64>(static_cast<s64>(v) >> (s & 63)),
                 static_cast<u32>(static_cast<s32>(v) >> (s & 31)))
  EBPF_ALU_CASES(Mov, s, s)

  EBPF_JMP_CASES(Jeq, d == s, d == s)
  EBPF_JMP_CASES(Jne, d != s, d != s)
  EBPF_JMP_CASES(Jgt, d > s, d > s)
  EBPF_JMP_CASES(Jge, d >= s, d >= s)
  EBPF_JMP_CASES(Jlt, d < s, d < s)
  EBPF_JMP_CASES(Jle, d <= s, d <= s)
  EBPF_JMP_CASES(Jsgt, static_cast<s64>(d) > static_cast<s64>(s),
                 static_cast<s32>(d) > static_cast<s32>(s))
  EBPF_JMP_CASES(Jsge, static_cast<s64>(d) >= static_cast<s64>(s),
                 static_cast<s32>(d) >= static_cast<s32>(s))
  EBPF_JMP_CASES(Jslt, static_cast<s64>(d) < static_cast<s64>(s),
                 static_cast<s32>(d) < static_cast<s32>(s))
  EBPF_JMP_CASES(Jsle, static_cast<s64>(d) <= static_cast<s64>(s),
                 static_cast<s32>(d) <= static_cast<s32>(s))
  EBPF_JMP_CASES(Jset, (d & s) != 0, (d & s) != 0)

#if !EBPF_COMPUTED_GOTO
    case UOp::kCount:
      break;
  }
#endif
  // Unreachable: the decoder emits a handler for every slot and the label
  // table / switch covers every handler.
  EBPF_SYNC();
  return RuntimeFault(xbase::KernelFault("bpf: unhandled micro-op"));

  // ---- shared slow paths (reached only via goto from the dispatch
  // preambles above; never by fallthrough) -------------------------------
periodic:
  EBPF_SYNC();
  kernel_.rcu().CheckStall(kernel_.clock());
  if (insns > max_insns) {
    goto insn_cap;
  }
  goto dispatch_fetch;

bad_pc:
  EBPF_SYNC();
  return RuntimeFault(xbase::KernelFault(
      StrFormat("bpf: pc %u out of range (JIT image corruption?)", pc)));

insn_cap:
  EBPF_SYNC();
  return xbase::Terminated(StrFormat(
      "harness insn cap (%llu) exceeded — the kernel itself would keep "
      "running",
      static_cast<unsigned long long>(max_insns)));
}

}  // namespace internal
}  // namespace ebpf

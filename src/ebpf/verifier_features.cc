#include "src/ebpf/verifier_features.h"

namespace ebpf {

using simkern::KernelVersion;

const std::vector<VFeatureInfo>& VerifierFeatureTable() {
  static const std::vector<VFeatureInfo> kTable = {
      {VFeature::kBase, {3, 18}, 2400, "base",
       "CFG validation, register typing, stack tracking, helper argument "
       "checks, alignment, size limits",
       true},
      {VFeature::kCtxAccessTables, {4, 3}, 450, "ctx_access",
       "per-program-type context field access tables", true},
      {VFeature::kDirectPacketAccess, {4, 9}, 800, "direct_packet",
       "packet pointers with compare-established ranges", true},
      {VFeature::kFullRangeTracking, {4, 14}, 1250, "range_tracking",
       "signed/unsigned min/max bounds + tristate numbers on every scalar",
       true},
      {VFeature::kBpf2BpfCalls, {4, 16}, 500, "bpf2bpf",
       "BPF-to-BPF function calls with per-frame state (the 500-line "
       "addition of [45])",
       true},
      {VFeature::kSpectreSanitation, {4, 17}, 600, "spectre",
       "speculative-execution sanitation of pointer arithmetic [46,47]",
       true},
      {VFeature::kRefTracking, {4, 20}, 450, "ref_tracking",
       "acquired-reference discipline for sk_lookup-style helpers", true},
      {VFeature::kInsnBudget1M, {5, 2}, 250, "budget_1m",
       "1M-instruction budget and pruning rework", true},
      {VFeature::kBoundedLoops, {5, 3}, 550, "bounded_loops",
       "back-edges permitted; loops explored iteration by iteration", true},
      {VFeature::kSpinLockTracking, {5, 4}, 350, "spin_lock",
       "one-lock-at-a-time and release-before-exit checks for "
       "bpf_spin_lock [48]",
       true},
      {VFeature::k32BitBounds, {5, 10}, 1100, "bounds32",
       "JMP32 and 32-bit subregister bounds tracking", true},
      {VFeature::kKfuncCalls, {5, 13}, 400, "kfunc",
       "calls into exported internal kernel functions [16]", true},
      {VFeature::kBtfTracking, {5, 15}, 900, "btf_ptr",
       "BTF-typed pointer tracking (PTR_TO_BTF_ID)", false},
      {VFeature::kMiscHardening, {5, 15}, 500, "hardening",
       "ALU sanitation reworks and bounds-propagation fixes", false},
      {VFeature::kBpfLoopCallbacks, {5, 17}, 300, "loop_callbacks",
       "callback verification for bpf_loop", true},
      {VFeature::kDynptr, {6, 1}, 1000, "dynptr",
       "dynptr and kptr verification logic", false},
      {VFeature::kSchedExtChecks, {6, 12}, 700, "sched_ext",
       "sched_ext program admission: sched-family helper gating, scheduler "
       "context access rules",
       true},
  };
  return kTable;
}

bool FeatureEnabled(VFeature feature, KernelVersion version) {
  for (const VFeatureInfo& info : VerifierFeatureTable()) {
    if (info.id == feature) {
      return info.introduced <= version;
    }
  }
  return false;
}

xbase::u32 VerifierLocAtVersion(KernelVersion version) {
  xbase::u32 total = 0;
  for (const VFeatureInfo& info : VerifierFeatureTable()) {
    if (info.introduced <= version) {
      total += info.linux_loc;
    }
  }
  return total;
}

xbase::usize VerifierFeatureCountAtVersion(KernelVersion version) {
  xbase::usize count = 0;
  for (const VFeatureInfo& info : VerifierFeatureTable()) {
    if (info.introduced <= version) {
      ++count;
    }
  }
  return count;
}

xbase::u32 InsnBudgetAtVersion(KernelVersion version) {
  if (FeatureEnabled(VFeature::kInsnBudget1M, version)) {
    return 1'000'000;
  }
  if (FeatureEnabled(VFeature::kFullRangeTracking, version)) {
    return 131'072;
  }
  return 65'536;
}

}  // namespace ebpf

#include "src/ebpf/disasm.h"

#include "src/ebpf/helper.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

using xbase::StrFormat;

std::string_view HelperName(u32 helper_id) {
  switch (helper_id) {
    case kHelperMapLookupElem:
      return "bpf_map_lookup_elem";
    case kHelperMapUpdateElem:
      return "bpf_map_update_elem";
    case kHelperMapDeleteElem:
      return "bpf_map_delete_elem";
    case kHelperProbeRead:
      return "bpf_probe_read";
    case kHelperKtimeGetNs:
      return "bpf_ktime_get_ns";
    case kHelperTracePrintk:
      return "bpf_trace_printk";
    case kHelperGetPrandomU32:
      return "bpf_get_prandom_u32";
    case kHelperGetSmpProcessorId:
      return "bpf_get_smp_processor_id";
    case kHelperSkbStoreBytes:
      return "bpf_skb_store_bytes";
    case kHelperL3CsumReplace:
      return "bpf_l3_csum_replace";
    case kHelperL4CsumReplace:
      return "bpf_l4_csum_replace";
    case kHelperTailCall:
      return "bpf_tail_call";
    case kHelperCloneRedirect:
      return "bpf_clone_redirect";
    case kHelperGetCurrentPidTgid:
      return "bpf_get_current_pid_tgid";
    case kHelperGetCurrentUidGid:
      return "bpf_get_current_uid_gid";
    case kHelperGetCurrentComm:
      return "bpf_get_current_comm";
    case kHelperGetCgroupClassid:
      return "bpf_get_cgroup_classid";
    case kHelperSkbVlanPush:
      return "bpf_skb_vlan_push";
    case kHelperSkbVlanPop:
      return "bpf_skb_vlan_pop";
    case kHelperSkbGetTunnelKey:
      return "bpf_skb_get_tunnel_key";
    case kHelperSkbSetTunnelKey:
      return "bpf_skb_set_tunnel_key";
    case kHelperPerfEventRead:
      return "bpf_perf_event_read";
    case kHelperRedirect:
      return "bpf_redirect";
    case kHelperGetRouteRealm:
      return "bpf_get_route_realm";
    case kHelperPerfEventOutput:
      return "bpf_perf_event_output";
    case kHelperSkbLoadBytes:
      return "bpf_skb_load_bytes";
    case kHelperGetStackid:
      return "bpf_get_stackid";
    case kHelperCsumDiff:
      return "bpf_csum_diff";
    case kHelperSkbChangeProto:
      return "bpf_skb_change_proto";
    case kHelperSkbChangeType:
      return "bpf_skb_change_type";
    case kHelperSkbUnderCgroup:
      return "bpf_skb_under_cgroup";
    case kHelperGetHashRecalc:
      return "bpf_get_hash_recalc";
    case kHelperGetCurrentTask:
      return "bpf_get_current_task";
    case kHelperProbeWriteUser:
      return "bpf_probe_write_user";
    case kHelperCurrentTaskUnderCgroup:
      return "bpf_current_task_under_cgroup";
    case kHelperSkbChangeTail:
      return "bpf_skb_change_tail";
    case kHelperSkbPullData:
      return "bpf_skb_pull_data";
    case kHelperGetNumaNodeId:
      return "bpf_get_numa_node_id";
    case kHelperXdpAdjustHead:
      return "bpf_xdp_adjust_head";
    case kHelperProbeReadStr:
      return "bpf_probe_read_str";
    case kHelperGetSocketCookie:
      return "bpf_get_socket_cookie";
    case kHelperGetSocketUid:
      return "bpf_get_socket_uid";
    case kHelperSetHash:
      return "bpf_set_hash";
    case kHelperSetsockopt:
      return "bpf_setsockopt";
    case kHelperSkbAdjustRoom:
      return "bpf_skb_adjust_room";
    case kHelperXdpAdjustMeta:
      return "bpf_xdp_adjust_meta";
    case kHelperPerfEventReadValue:
      return "bpf_perf_event_read_value";
    case kHelperGetStack:
      return "bpf_get_stack";
    case kHelperFibLookup:
      return "bpf_fib_lookup";
    case kHelperSkLookupTcp:
      return "bpf_sk_lookup_tcp";
    case kHelperSkLookupUdp:
      return "bpf_sk_lookup_udp";
    case kHelperSkRelease:
      return "bpf_sk_release";
    case kHelperMapPushElem:
      return "bpf_map_push_elem";
    case kHelperMapPopElem:
      return "bpf_map_pop_elem";
    case kHelperSpinLock:
      return "bpf_spin_lock";
    case kHelperSpinUnlock:
      return "bpf_spin_unlock";
    case kHelperStrtol:
      return "bpf_strtol";
    case kHelperStrtoul:
      return "bpf_strtoul";
    case kHelperSkStorageGet:
      return "bpf_sk_storage_get";
    case kHelperSendSignal:
      return "bpf_send_signal";
    case kHelperKtimeGetBootNs:
      return "bpf_ktime_get_boot_ns";
    case kHelperRingbufOutput:
      return "bpf_ringbuf_output";
    case kHelperRingbufReserve:
      return "bpf_ringbuf_reserve";
    case kHelperRingbufSubmit:
      return "bpf_ringbuf_submit";
    case kHelperRingbufDiscard:
      return "bpf_ringbuf_discard";
    case kHelperCsumLevel:
      return "bpf_csum_level";
    case kHelperGetTaskStack:
      return "bpf_get_task_stack";
    case kHelperSnprintf:
      return "bpf_snprintf";
    case kHelperTaskStorageGet:
      return "bpf_task_storage_get";
    case kHelperTaskStorageDelete:
      return "bpf_task_storage_delete";
    case kHelperGetCurrentTaskBtf:
      return "bpf_get_current_task_btf";
    case kHelperSysBpf:
      return "bpf_sys_bpf";
    case kHelperFindVma:
      return "bpf_find_vma";
    case kHelperLoop:
      return "bpf_loop";
    case kHelperStrncmp:
      return "bpf_strncmp";
    case kHelperKtimeGetTaiNs:
      return "bpf_ktime_get_tai_ns";
    case kHelperUserRingbufDrain:
      return "bpf_user_ringbuf_drain";
    case kHelperCgrpStorageGet:
      return "bpf_cgrp_storage_get";
    case kHelperSchedNrRunnable:
      return "bpf_sched_nr_runnable";
    case kHelperSchedPeekPid:
      return "bpf_sched_peek_pid";
    case kHelperSchedWaitNs:
      return "bpf_sched_wait_ns";
    case kHelperSchedEnqueue:
      return "bpf_sched_enqueue";
    case kHelperSchedDequeue:
      return "bpf_sched_dequeue";
    case kHelperSchedPickDefault:
      return "bpf_sched_pick_default";
    case kHelperSchedYield:
      return "bpf_sched_yield";
    case kHelperLsmInodeId:
      return "bpf_lsm_inode_id";
    case kHelperLsmOpenFlags:
      return "bpf_lsm_open_flags";
    case kHelperLsmCurrentUid:
      return "bpf_lsm_current_uid";
    case kHelperLsmReadPath:
      return "bpf_lsm_read_path";
    case kHelperLsmAudit:
      return "bpf_lsm_audit";
    case kHelperLsmRatelimit:
      return "bpf_lsm_ratelimit";
  }
  return "";
}

namespace {

const char* SizeSuffix(u8 size_code) {
  switch (size_code) {
    case BPF_B:
      return "u8";
    case BPF_H:
      return "u16";
    case BPF_W:
      return "u32";
    case BPF_DW:
      return "u64";
  }
  return "?";
}

}  // namespace

std::string DisasmInsn(const Insn& insn) {
  const u8 cls = insn.Class();
  switch (cls) {
    case BPF_ALU64:
    case BPF_ALU: {
      const char* width = cls == BPF_ALU64 ? "" : "w";
      const u8 op = insn.AluOp();
      if (op == BPF_NEG) {
        return StrFormat("r%d%s = -r%d%s", insn.dst, width, insn.dst, width);
      }
      if (op == BPF_END) {
        return StrFormat("r%d = %s%d r%d", insn.dst,
                         insn.UsesRegSrc() ? "be" : "le", insn.imm, insn.dst);
      }
      const std::string lhs = StrFormat("r%d%s", insn.dst, width);
      std::string rhs = insn.UsesRegSrc()
                            ? StrFormat("r%d%s", insn.src, width)
                            : StrFormat("%d", insn.imm);
      if (op == BPF_MOV) {
        return lhs + " = " + rhs;
      }
      return StrFormat("%s %s= %s", lhs.c_str(), AluOpName(op).data(),
                       rhs.c_str());
    }
    case BPF_LD:
      if (insn.IsLdImm64()) {
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          return StrFormat("r%d = map[fd:%d]", insn.dst, insn.imm);
        }
        return StrFormat("r%d = imm64(lo=0x%x)", insn.dst,
                         static_cast<unsigned>(insn.imm));
      }
      return "ld (legacy)";
    case BPF_LDX:
      return StrFormat("r%d = *(%s *)(r%d %+d)", insn.dst,
                       SizeSuffix(insn.Size()), insn.src, insn.off);
    case BPF_ST:
      return StrFormat("*(%s *)(r%d %+d) = %d", SizeSuffix(insn.Size()),
                       insn.dst, insn.off, insn.imm);
    case BPF_STX:
      if (insn.Mode() == BPF_ATOMIC) {
        return StrFormat("lock *(%s *)(r%d %+d) += r%d",
                         SizeSuffix(insn.Size()), insn.dst, insn.off,
                         insn.src);
      }
      return StrFormat("*(%s *)(r%d %+d) = r%d", SizeSuffix(insn.Size()),
                       insn.dst, insn.off, insn.src);
    case BPF_JMP:
    case BPF_JMP32: {
      const u8 op = insn.JmpOp();
      if (op == BPF_EXIT) {
        return "exit";
      }
      if (op == BPF_CALL) {
        if (insn.src == BPF_PSEUDO_CALL) {
          return StrFormat("call pc%+d", insn.imm);
        }
        if (insn.src == BPF_PSEUDO_KFUNC_CALL) {
          return StrFormat("call kfunc#%d", insn.imm);
        }
        const std::string_view name =
            HelperName(static_cast<u32>(insn.imm));
        if (!name.empty()) {
          return StrFormat("call %s#%d", name.data(), insn.imm);
        }
        return StrFormat("call helper#%d", insn.imm);
      }
      if (op == BPF_JA) {
        return StrFormat("goto %+d", insn.off);
      }
      const char* width = cls == BPF_JMP32 ? "w" : "";
      const std::string rhs = insn.UsesRegSrc()
                                  ? StrFormat("r%d%s", insn.src, width)
                                  : StrFormat("%d", insn.imm);
      return StrFormat("if r%d%s %s %s goto %+d", insn.dst, width,
                       JmpOpName(op).data(), rhs.c_str(), insn.off);
    }
  }
  return "invalid";
}

std::string DisasmProgram(const Program& prog) {
  std::string out;
  for (u32 pc = 0; pc < prog.len(); ++pc) {
    const Insn& insn = prog.insns[pc];
    if (insn.IsLdImm64() && pc + 1 < prog.len()) {
      const u64 value = (static_cast<u64>(
                             static_cast<u32>(prog.insns[pc + 1].imm))
                         << 32) |
                        static_cast<u32>(insn.imm);
      if (insn.src == BPF_PSEUDO_MAP_FD) {
        out += StrFormat("%4u: r%d = map[fd:%d]\n", pc, insn.dst, insn.imm);
      } else {
        out += StrFormat("%4u: r%d = 0x%llx\n", pc, insn.dst,
                         static_cast<unsigned long long>(value));
      }
      ++pc;
      continue;
    }
    out += StrFormat("%4u: %s\n", pc, DisasmInsn(insn).c_str());
  }
  return out;
}

}  // namespace ebpf

#include "src/ebpf/disasm.h"

#include "src/xbase/strfmt.h"

namespace ebpf {

using xbase::StrFormat;

namespace {

const char* SizeSuffix(u8 size_code) {
  switch (size_code) {
    case BPF_B:
      return "u8";
    case BPF_H:
      return "u16";
    case BPF_W:
      return "u32";
    case BPF_DW:
      return "u64";
  }
  return "?";
}

}  // namespace

std::string DisasmInsn(const Insn& insn) {
  const u8 cls = insn.Class();
  switch (cls) {
    case BPF_ALU64:
    case BPF_ALU: {
      const char* width = cls == BPF_ALU64 ? "" : "w";
      const u8 op = insn.AluOp();
      if (op == BPF_NEG) {
        return StrFormat("r%d%s = -r%d%s", insn.dst, width, insn.dst, width);
      }
      if (op == BPF_END) {
        return StrFormat("r%d = %s%d r%d", insn.dst,
                         insn.UsesRegSrc() ? "be" : "le", insn.imm, insn.dst);
      }
      const std::string lhs = StrFormat("r%d%s", insn.dst, width);
      std::string rhs = insn.UsesRegSrc()
                            ? StrFormat("r%d%s", insn.src, width)
                            : StrFormat("%d", insn.imm);
      if (op == BPF_MOV) {
        return lhs + " = " + rhs;
      }
      return StrFormat("%s %s= %s", lhs.c_str(), AluOpName(op).data(),
                       rhs.c_str());
    }
    case BPF_LD:
      if (insn.IsLdImm64()) {
        if (insn.src == BPF_PSEUDO_MAP_FD) {
          return StrFormat("r%d = map[fd:%d]", insn.dst, insn.imm);
        }
        return StrFormat("r%d = imm64(lo=0x%x)", insn.dst,
                         static_cast<unsigned>(insn.imm));
      }
      return "ld (legacy)";
    case BPF_LDX:
      return StrFormat("r%d = *(%s *)(r%d %+d)", insn.dst,
                       SizeSuffix(insn.Size()), insn.src, insn.off);
    case BPF_ST:
      return StrFormat("*(%s *)(r%d %+d) = %d", SizeSuffix(insn.Size()),
                       insn.dst, insn.off, insn.imm);
    case BPF_STX:
      if (insn.Mode() == BPF_ATOMIC) {
        return StrFormat("lock *(%s *)(r%d %+d) += r%d",
                         SizeSuffix(insn.Size()), insn.dst, insn.off,
                         insn.src);
      }
      return StrFormat("*(%s *)(r%d %+d) = r%d", SizeSuffix(insn.Size()),
                       insn.dst, insn.off, insn.src);
    case BPF_JMP:
    case BPF_JMP32: {
      const u8 op = insn.JmpOp();
      if (op == BPF_EXIT) {
        return "exit";
      }
      if (op == BPF_CALL) {
        if (insn.src == BPF_PSEUDO_CALL) {
          return StrFormat("call pc%+d", insn.imm);
        }
        return StrFormat("call helper#%d", insn.imm);
      }
      if (op == BPF_JA) {
        return StrFormat("goto %+d", insn.off);
      }
      const char* width = cls == BPF_JMP32 ? "w" : "";
      const std::string rhs = insn.UsesRegSrc()
                                  ? StrFormat("r%d%s", insn.src, width)
                                  : StrFormat("%d", insn.imm);
      return StrFormat("if r%d%s %s %s goto %+d", insn.dst, width,
                       JmpOpName(op).data(), rhs.c_str(), insn.off);
    }
  }
  return "invalid";
}

std::string DisasmProgram(const Program& prog) {
  std::string out;
  for (u32 pc = 0; pc < prog.len(); ++pc) {
    const Insn& insn = prog.insns[pc];
    if (insn.IsLdImm64() && pc + 1 < prog.len()) {
      const u64 value = (static_cast<u64>(
                             static_cast<u32>(prog.insns[pc + 1].imm))
                         << 32) |
                        static_cast<u32>(insn.imm);
      if (insn.src == BPF_PSEUDO_MAP_FD) {
        out += StrFormat("%4u: r%d = map[fd:%d]\n", pc, insn.dst, insn.imm);
      } else {
        out += StrFormat("%4u: r%d = 0x%llx\n", pc, insn.dst,
                         static_cast<unsigned long long>(value));
      }
      ++pc;
      continue;
    }
    out += StrFormat("%4u: %s\n", pc, DisasmInsn(insn).c_str());
  }
  return out;
}

}  // namespace ebpf

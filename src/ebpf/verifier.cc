#include "src/ebpf/verifier.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>

#include "src/ebpf/disasm.h"
#include "src/ebpf/runtime.h"
#include "src/simkern/lsm.h"
#include "src/simkern/sched.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

using simkern::KernelVersion;
using xbase::StrFormat;
using xbase::usize;

std::string_view RegTypeName(RegType type) {
  switch (type) {
    case RegType::kNotInit:
      return "?";
    case RegType::kScalar:
      return "scalar";
    case RegType::kPtrToCtx:
      return "ctx";
    case RegType::kConstPtrToMap:
      return "map_ptr";
    case RegType::kPtrToMapValue:
      return "map_value";
    case RegType::kPtrToMapValueOrNull:
      return "map_value_or_null";
    case RegType::kPtrToStack:
      return "fp";
    case RegType::kPtrToPacket:
      return "pkt";
    case RegType::kPtrToPacketEnd:
      return "pkt_end";
    case RegType::kPtrToMem:
      return "mem";
    case RegType::kPtrToMemOrNull:
      return "mem_or_null";
    case RegType::kPtrToSock:
      return "sock";
    case RegType::kPtrToSockOrNull:
      return "sock_or_null";
    case RegType::kPtrToTask:
      return "task";
    case RegType::kPtrToTaskOrNull:
      return "task_or_null";
    case RegType::kPtrToFunc:
      return "func";
  }
  return "?";
}

RegType UnwrapOrNull(RegType type) {
  switch (type) {
    case RegType::kPtrToMapValueOrNull:
      return RegType::kPtrToMapValue;
    case RegType::kPtrToMemOrNull:
      return RegType::kPtrToMem;
    case RegType::kPtrToSockOrNull:
      return RegType::kPtrToSock;
    case RegType::kPtrToTaskOrNull:
      return RegType::kPtrToTask;
    default:
      return type;
  }
}

void RegState::MarkUnknownScalar() {
  *this = RegState{};
  type = RegType::kScalar;
}

// A load of `size` bytes zero-extends into the register, so sub-8-byte
// loads are bounded by the load width (the kernel's coerce_reg_to_size).
// Dropping this on the floor is not just imprecision: a W-loaded value
// the verifier thinks might be negative makes signed-compare edges look
// feasible that concretely never execute.
void RegState::MarkScalarLoad(u32 size) {
  MarkUnknownScalar();
  if (size < 8) {
    const u64 max = (u64{1} << (size * 8)) - 1;
    umin = 0;
    umax = max;
    smin = 0;
    smax = static_cast<s64>(max);
    var_off = Tnum{0, max};
  }
}

void RegState::MarkConst(u64 value) {
  *this = RegState{};
  type = RegType::kScalar;
  var_off = TnumConst(value);
  umin = value;
  umax = value;
  smin = static_cast<s64>(value);
  smax = static_cast<s64>(value);
}

void RegState::SyncBounds() {
  // __update_reg_bounds: pull range information out of the tnum.
  umin = std::max(umin, var_off.value);
  umax = std::min(umax, var_off.value | var_off.mask);

  // __reg_deduce_bounds: transfer between signed and unsigned views when
  // the sign is determined.
  if (static_cast<s64>(umax) >= 0) {
    // The whole unsigned range lies in the non-negative signed half.
    smin = std::max(smin, static_cast<s64>(umin));
    smax = std::min(smax, static_cast<s64>(umax));
  } else if (static_cast<s64>(umin) < 0) {
    // The whole unsigned range lies in the negative signed half.
    smin = std::max(smin, static_cast<s64>(umin));
    smax = std::min(smax, static_cast<s64>(umax));
  }
  if (smin >= 0) {
    umin = std::max(umin, static_cast<u64>(smin));
    umax = std::min(umax, static_cast<u64>(smax));
  }

  // __reg_bound_offset: feed the ranges back into the tnum.
  var_off = TnumIntersect(var_off, TnumRange(umin, umax));
}

std::string RegState::ToString() const {
  if (type == RegType::kScalar) {
    if (var_off.IsConst()) {
      return StrFormat("%lld", static_cast<long long>(smin));
    }
    return StrFormat("scalar(umin=%llu,umax=%llu,var=%s)",
                     static_cast<unsigned long long>(umin),
                     static_cast<unsigned long long>(umax),
                     var_off.ToString().c_str());
  }
  return StrFormat("%s(off=%d)", RegTypeName(type).data(), off);
}

CtxRules CtxRulesFor(ProgType type) {
  switch (type) {
    case ProgType::kXdp:
    case ProgType::kSocketFilter:
    case ProgType::kCgroupSkb:
      return CtxRules{simkern::SkBuffLayout::kSize, true, true};
    case ProgType::kKprobe:
    case ProgType::kTracepoint:
    case ProgType::kPerfEvent:
      return CtxRules{64, false, false};
    case ProgType::kSyscall:
      return CtxRules{64, true, false};
    case ProgType::kSchedExt:
      // Read-only pick context (now, nr_runnable, prev_pid, tick).
      return CtxRules{simkern::SchedCtxLayout::kSize, false, false};
    case ProgType::kLsm:
      // Read-only decision context (pid, uid, inode, flags, path).
      return CtxRules{simkern::LsmCtxLayout::kSize, false, false};
  }
  return CtxRules{};
}

namespace {

constexpr s64 kS64Min = std::numeric_limits<s64>::min();
constexpr s64 kS64Max = std::numeric_limits<s64>::max();
constexpr u64 kU64Max = std::numeric_limits<u64>::max();

// Upper bound on states stored per instruction for pruning (memory bound).
constexpr usize kMaxStoredStatesPerPc = 64;
// Hard cap on pending branch states.
constexpr usize kMaxPendingStates = 8192;

struct Pending {
  u32 pc;
  VerifierState state;
};

class Verifier {
 public:
  Verifier(const Program& prog, const MapTable& maps,
           const HelperRegistry& helpers, const VerifyOptions& opts)
      : prog_(prog), maps_(maps), helpers_(helpers), opts_(opts),
        ctx_rules_(CtxRulesFor(prog.type)) {}

  xbase::Result<VerifyResult> Run();

 private:
  bool Feat(VFeature feature) const {
    return FeatureEnabled(feature, opts_.version);
  }
  bool FaultOn(std::string_view id) const {
    return opts_.faults != nullptr && opts_.faults->IsActive(id);
  }
  xbase::Status Reject(u32 pc, const std::string& message) const {
    return xbase::Rejected(StrFormat("at insn %u (%s): %s", pc,
                                     pc < prog_.len()
                                         ? DisasmInsn(prog_.insns[pc]).c_str()
                                         : "<eof>",
                                     message.c_str()));
  }

  xbase::Status CheckCfg();
  xbase::Status VerifyEntry(u32 entry_pc, VerifierState state);
  xbase::Status ExplorePaths();

  // Steps one instruction; appends follow-on states to worklist_. Returns
  // OK always unless the program must be rejected.
  xbase::Status Step(VerifierState& state, u32 pc, bool& path_done,
                     u32& next_pc);

  xbase::Status CheckAlu(VerifierState& state, const Insn& insn, u32 pc);
  xbase::Status ApplyScalarAlu(RegState& dst, const RegState& src, u8 op,
                               bool is64, u32 pc);
  xbase::Status ApplyPtrArith(VerifierState& state, RegState& dst,
                              const RegState& src, u8 op, u32 pc);

  xbase::Status CheckMemInsn(VerifierState& state, const Insn& insn, u32 pc);
  xbase::Status CheckMemInsnImpl(VerifierState& state, const Insn& insn,
                                 u32 pc);
  xbase::Status CheckMemAccess(VerifierState& state, u8 regno, s32 insn_off,
                               u32 size, bool is_write, u32 pc,
                               RegState* load_dest, const RegState* store_src);
  xbase::Status CheckStackAccess(FuncState& frame, const RegState& base,
                                 s32 insn_off, u32 size, bool is_write,
                                 u32 pc, RegState* load_dest,
                                 const RegState* store_src);
  xbase::Status CheckHelperMemArg(VerifierState& state, u8 regno, u32 size,
                                  bool is_write, u32 pc);

  xbase::Status CheckCall(VerifierState& state, const Insn& insn, u32 pc,
                          bool& path_done, u32& next_pc);
  xbase::Status CheckHelperCall(VerifierState& state, const Insn& insn,
                                u32 pc);
  xbase::Status CheckKfuncCall(VerifierState& state, const Insn& insn,
                               u32 pc);
  xbase::Status CheckExit(VerifierState& state, u32 pc, bool& path_done,
                          u32& next_pc);

  void ApplyCondBranch(const VerifierState& state, const Insn& insn, u32 pc,
                       VerifierState& taken, VerifierState& fallthrough,
                       bool& taken_possible, bool& fall_possible);
  void RefineScalar(RegState& reg, u8 jmp_op, u64 imm, bool branch_taken,
                    bool is32);
  void RefineRegReg(RegState& dst, RegState& src, u8 jmp_op,
                    bool branch_taken);
  void MarkPtrOrNull(VerifierState& state, u32 id, bool is_null);
  void FindGoodPktPointers(FuncState& frame, u32 pkt_id, u32 range);
  void RecordRangeTrace(const VerifierState& state, u32 pc);

  bool StatesEqual(const VerifierState& old_state,
                   const VerifierState& new_state) const;
  bool RegSafe(const RegState& old_reg, const RegState& new_reg) const;

  u32 NextId() { return next_id_++; }

  const Program& prog_;
  const MapTable& maps_;
  const HelperRegistry& helpers_;
  VerifyOptions opts_;
  CtxRules ctx_rules_;

  struct StoredState {
    VerifierState state;
    u64 path_id;  // which DFS path stored it (infinite-loop detection)
  };
  std::vector<Pending> worklist_;
  std::map<u32, std::vector<StoredState>> explored_;
  std::set<u32> jump_targets_;
  std::set<u32> pseudo_func_targets_;
  std::vector<u32> subprog_starts_;
  std::set<u32> verified_callbacks_;
  VerifyStats stats_;
  u32 next_id_ = 1;
  u32 insn_budget_ = 0;
  u64 path_counter_ = 0;
};

// ---- CFG ------------------------------------------------------------------------

xbase::Status Verifier::CheckCfg() {
  const u32 len = prog_.len();
  if (len == 0) {
    return xbase::Rejected("empty program");
  }
  const u32 max_len = opts_.privileged ? 1'000'000 : kMaxProgLenUnpriv;
  if (len > max_len) {
    return xbase::Rejected(StrFormat("program too large: %u insns (max %u)",
                                     len, max_len));
  }

  // Identify the second slots of ld_imm64 pairs; jumps may not land there.
  std::vector<bool> is_ld64_cont(len, false);
  for (u32 pc = 0; pc < len; ++pc) {
    if (prog_.insns[pc].IsLdImm64()) {
      if (pc + 1 >= len) {
        return Reject(pc, "incomplete ld_imm64");
      }
      is_ld64_cont[pc + 1] = true;
      if (prog_.insns[pc].src == BPF_PSEUDO_FUNC) {
        const s32 target = prog_.insns[pc].imm;
        if (target < 0 || static_cast<u32>(target) >= len) {
          return Reject(pc, "callback target out of range");
        }
        pseudo_func_targets_.insert(static_cast<u32>(target));
      }
      ++pc;
    }
  }

  // Roots: entry, BPF-to-BPF call targets, callback entries.
  std::vector<u32> roots{0};
  for (u32 pc = 0; pc < len; ++pc) {
    const Insn& insn = prog_.insns[pc];
    if (insn.IsPseudoCall()) {
      if (!Feat(VFeature::kBpf2BpfCalls)) {
        return Reject(pc, "function calls are not supported before v4.16");
      }
      const s64 target = static_cast<s64>(pc) + 1 + insn.imm;
      if (target < 0 || target >= len) {
        return Reject(pc, "call target out of range");
      }
      roots.push_back(static_cast<u32>(target));
      subprog_starts_.push_back(static_cast<u32>(target));
    }
  }
  for (u32 target : pseudo_func_targets_) {
    roots.push_back(target);
  }

  // Iterative DFS with colors for back-edge detection and reachability.
  enum : u8 { kWhite, kGray, kBlack };
  std::vector<u8> color(len, kWhite);

  const auto edge_targets = [&](u32 pc, std::vector<u32>& out)
      -> xbase::Status {
    const Insn& insn = prog_.insns[pc];
    out.clear();
    if (insn.IsLdImm64()) {
      out.push_back(pc + 2);
      return xbase::Status::Ok();
    }
    const u8 cls = insn.Class();
    if (cls != BPF_JMP && cls != BPF_JMP32) {
      out.push_back(pc + 1);
      return xbase::Status::Ok();
    }
    if (insn.IsExit()) {
      return xbase::Status::Ok();
    }
    if (insn.IsCall()) {
      out.push_back(pc + 1);  // subprogs walked as separate roots
      return xbase::Status::Ok();
    }
    const s64 target = static_cast<s64>(pc) + 1 + insn.off;
    if (target < 0 || target >= len) {
      return Reject(pc, "jump out of range");
    }
    if (is_ld64_cont[static_cast<u32>(target)]) {
      return Reject(pc, "jump into the middle of ld_imm64");
    }
    out.push_back(static_cast<u32>(target));
    if (insn.JmpOp() != BPF_JA) {
      out.push_back(pc + 1);
    }
    return xbase::Status::Ok();
  };

  std::vector<u32> targets;
  for (u32 root : roots) {
    if (color[root] == kBlack) {
      continue;
    }
    // (pc, next edge index) stack.
    std::vector<std::pair<u32, u32>> stack{{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [pc, edge] = stack.back();
      if (pc >= len) {
        return Reject(pc, "fell off the end of the program");
      }
      XB_RETURN_IF_ERROR(edge_targets(pc, targets));
      if (targets.empty() && edge == 0) {
        // exit insn
        color[pc] = kBlack;
        stack.pop_back();
        continue;
      }
      if (edge >= targets.size()) {
        color[pc] = kBlack;
        stack.pop_back();
        continue;
      }
      const u32 next = targets[edge];
      ++edge;
      // `pc`/`edge` reference into `stack`; the push_back below may
      // reallocate it, so keep a copy for use past that point.
      const u32 cur_pc = pc;
      if (next >= len) {
        return Reject(pc, "control flow runs past the last instruction");
      }
      if (color[next] == kGray) {
        if (!Feat(VFeature::kBoundedLoops)) {
          return Reject(pc, StrFormat("back-edge from insn %u to %u "
                                      "(loops are not allowed before v5.3)",
                                      pc, next));
        }
        continue;  // loop: the path explorer bounds it by the insn budget
      }
      if (color[next] == kWhite) {
        color[next] = kGray;
        stack.push_back({next, 0});
      }
      // Record jump targets as pruning points.
      if (targets.size() > 1 || next != cur_pc + 1) {
        jump_targets_.insert(next);
      }
    }
  }

  for (u32 pc = 0; pc < len; ++pc) {
    if (color[pc] == kWhite && !is_ld64_cont[pc]) {
      return Reject(pc, "unreachable insn");
    }
  }

  // Control flow must not run off the end: the kernel requires the final
  // instruction to be an exit or an unconditional jump.
  const Insn& last = prog_.insns[len - 1];
  const bool last_ok = last.IsExit() || (last.Class() == BPF_JMP &&
                                         last.JmpOp() == BPF_JA);
  if (!last_ok) {
    return Reject(len - 1, "last insn is not an exit or jmp");
  }
  return xbase::Status::Ok();
}

// ---- scalar ALU -------------------------------------------------------------------

xbase::Status Verifier::ApplyScalarAlu(RegState& dst, const RegState& src,
                                       u8 op, bool is64, u32 pc) {
  Tnum a = dst.var_off;
  Tnum b = src.var_off;
  // Pre-op operand bounds: the 32-bit truncation epilogue below needs to
  // know whether the operands already fit in 32 bits (dst is overwritten
  // by then, and src may alias dst).
  const u64 dst_umax_in = dst.umax;
  const u64 src_umax_in = src.umax;
  if (!is64) {
    a = TnumCast(a, 4);
    b = TnumCast(b, 4);
  }

  // Bounds first (only ops with cheap exact range rules keep bounds; the
  // rest re-derive from the tnum).
  s64 new_smin = kS64Min, new_smax = kS64Max;
  u64 new_umin = 0, new_umax = kU64Max;

  switch (op) {
    case BPF_ADD: {
      // Unsigned: overflow check.
      if (dst.umax + src.umax >= dst.umax) {  // no wrap
        new_umin = dst.umin + src.umin;
        new_umax = dst.umax + src.umax;
      }
      const bool smin_overflows =
          (src.smin < 0 && dst.smin < kS64Min - src.smin) ||
          (src.smin > 0 && dst.smin > kS64Max - src.smin);
      const bool smax_overflows =
          (src.smax < 0 && dst.smax < kS64Min - src.smax) ||
          (src.smax > 0 && dst.smax > kS64Max - src.smax);
      if (!smin_overflows && !smax_overflows) {
        new_smin = dst.smin + src.smin;
        new_smax = dst.smax + src.smax;
      }
      dst.var_off = TnumAdd(a, b);
      break;
    }
    case BPF_SUB: {
      if (dst.umin >= src.umax) {  // no unsigned underflow
        new_umin = dst.umin - src.umax;
        new_umax = dst.umax - src.umin;
      }
      dst.var_off = TnumSub(a, b);
      break;
    }
    case BPF_MUL:
      if (FaultOn(kFaultVerifierTnumMulPrecision)) {
        // Buggy: multiplies the known values and only ORs the uncertainty
        // masks, dropping the cross terms — bits the product can flip are
        // recorded as known (tnum_mul rewrite class).
        dst.var_off = Tnum{a.value * b.value, a.mask | b.mask};
      } else {
        dst.var_off = TnumMul(a, b);
      }
      if (dst.umax <= 0xffffffff && src.umax <= 0xffffffff) {
        new_umin = dst.umin * src.umin;
        new_umax = dst.umax * src.umax;
        if (static_cast<s64>(new_umax) >= 0) {
          new_smin = 0;
          new_smax = static_cast<s64>(new_umax);
        }
      }
      break;
    case BPF_AND:
      dst.var_off = TnumAnd(a, b);
      if (b.IsConst()) {
        new_umax = std::min(dst.umax, b.value);
        new_umin = 0;
        if (static_cast<s64>(new_umax) >= 0) {
          new_smin = 0;
          new_smax = static_cast<s64>(new_umax);
        }
      }
      break;
    case BPF_OR:
      dst.var_off = TnumOr(a, b);
      new_umin = std::max(dst.umin, src.umin);
      break;
    case BPF_XOR:
      dst.var_off = TnumXor(a, b);
      break;
    case BPF_DIV:
      if (b.IsConst() && b.value == 0) {
        return Reject(pc, "division by zero");
      }
      // Division narrows: result <= dividend.
      dst.var_off = TnumUnknown();
      new_umax = dst.umax;
      new_umin = 0;
      break;
    case BPF_MOD:
      if (b.IsConst() && b.value == 0) {
        return Reject(pc, "division by zero");
      }
      dst.var_off = TnumUnknown();
      if (src.umax > 0) {
        new_umax = src.umax - 1;
      }
      new_umin = 0;
      break;
    case BPF_LSH: {
      if (!b.IsConst() || b.value >= (is64 ? 64u : 32u)) {
        if (b.IsConst()) {
          return Reject(pc, "invalid shift amount");
        }
        dst.var_off = TnumUnknown();
        break;
      }
      const u8 shift = static_cast<u8>(b.value);
      dst.var_off = TnumLshift(a, shift);
      if (dst.umax <= (kU64Max >> shift)) {
        new_umin = dst.umin << shift;
        new_umax = dst.umax << shift;
      }
      break;
    }
    case BPF_RSH: {
      if (!b.IsConst() || b.value >= (is64 ? 64u : 32u)) {
        if (b.IsConst()) {
          return Reject(pc, "invalid shift amount");
        }
        dst.var_off = TnumUnknown();
        break;
      }
      const u8 shift = static_cast<u8>(b.value);
      dst.var_off = TnumRshift(a, shift);
      new_umin = dst.umin >> shift;
      new_umax = dst.umax >> shift;
      // A shift of zero leaves bit 63 in place, so the result is only
      // provably non-negative for shift >= 1 (where umax <= s64 max).
      if (shift > 0) {
        new_smin = 0;
        new_smax = static_cast<s64>(new_umax);
      }
      break;
    }
    case BPF_ARSH: {
      if (!b.IsConst() || b.value >= (is64 ? 64u : 32u)) {
        dst.var_off = TnumUnknown();
        break;
      }
      dst.var_off = TnumArshift(a, static_cast<u8>(b.value), is64 ? 64 : 32);
      new_smin = dst.smin >> b.value;
      new_smax = dst.smax >> b.value;
      break;
    }
    default:
      return Reject(pc, "unknown ALU op");
  }

  dst.smin = new_smin;
  dst.smax = new_smax;
  dst.umin = new_umin;
  dst.umax = new_umax;
  if (!is64) {
    dst.var_off = TnumCast(dst.var_off, 4);
    if (FaultOn(kFaultVerifierAlu32BoundsTrunc)) {
      // Buggy (CVE-2020-8835 shape): the 64-bit bounds are truncated
      // modulo 2^32 instead of being widened to the full 32-bit range, so
      // a wrapped 32-bit result keeps a deceptively narrow interval.
      dst.umin &= 0xffffffff;
      dst.umax &= 0xffffffff;
      if (dst.umin > dst.umax) {
        dst.umin = 0;
      }
      dst.smin = static_cast<s64>(dst.umin);
      dst.smax = static_cast<s64>(dst.umax);
    } else {
      // Sound zero-extension: the result is the low 32 bits of the
      // value. The interval computed above bounds the *64-bit* op
      // result; it transfers to the truncated result only when the
      // interval already sits inside [0, 2^32) (so truncation is the
      // identity on every admitted value) AND the 32-bit op agrees with
      // the 64-bit op on the operands actually seen.
      bool keep = new_umin <= new_umax && new_umax <= 0xffffffff;
      switch (op) {
        case BPF_ADD:
        case BPF_SUB:
        case BPF_MUL:
        case BPF_AND:
        case BPF_OR:
        case BPF_XOR:
        case BPF_LSH:
          // low32(op64(x, y)) == op32(low32(x), low32(y)) for these, so
          // a 64-bit result interval inside [0, 2^32) pins the result.
          break;
        case BPF_RSH:
        case BPF_DIV:
        case BPF_MOD:
          // Not truncation-compatible: high operand bits change the low
          // result bits. Agreement only when both operands fit in u32.
          keep = keep && dst_umax_in <= 0xffffffff &&
                 src_umax_in <= 0xffffffff;
          break;
        default:
          // ARSH and anything else: the 32-bit sign bit is bit 31, not
          // bit 63, so the 64-bit signed bounds say nothing about the
          // 32-bit result (ARSH above set only smin/smax anyway, which
          // leaves `keep` false via new_umax == kU64Max).
          keep = false;
          break;
      }
      if (keep) {
        dst.umin = new_umin;
        dst.umax = new_umax;
      } else {
        dst.umin = 0;
        dst.umax = 0xffffffff;
      }
      // A zero-extended value is non-negative: signed view == unsigned.
      dst.smin = static_cast<s64>(dst.umin);
      dst.smax = static_cast<s64>(dst.umax);
    }
  }
  dst.SyncBounds();
  return xbase::Status::Ok();
}

xbase::Status Verifier::ApplyPtrArith(VerifierState& state, RegState& dst,
                                      const RegState& src, u8 op, u32 pc) {
  (void)state;
  if (op != BPF_ADD && op != BPF_SUB) {
    return Reject(pc, StrFormat("%s on pointer prohibited",
                                AluOpName(op).data()));
  }
  switch (dst.type) {
    case RegType::kPtrToStack:
    case RegType::kPtrToMapValue:
    case RegType::kPtrToMem:
    case RegType::kPtrToPacket:
      break;
    case RegType::kPtrToCtx:
      if (!src.IsConst()) {
        return Reject(pc, "variable ctx access is not allowed");
      }
      break;
    default:
      return Reject(pc, StrFormat("pointer arithmetic on %s prohibited",
                                  RegTypeName(dst.type).data()));
  }

  if (src.IsConst()) {
    const s64 delta = (op == BPF_ADD ? 1 : -1) *
                      static_cast<s64>(src.var_off.value);
    const s64 new_off = static_cast<s64>(dst.off) + delta;
    if (new_off < std::numeric_limits<s32>::min() ||
        new_off > std::numeric_limits<s32>::max()) {
      return Reject(pc, "pointer offset out of range");
    }
    dst.off = static_cast<s32>(new_off);
    return xbase::Status::Ok();
  }

  // Variable offset: requires full range tracking (v4.14+); earlier
  // verifiers rejected it outright — one of the expressiveness walls the
  // paper describes.
  if (!Feat(VFeature::kFullRangeTracking)) {
    return Reject(pc,
                  "variable offset on pointer requires range tracking "
                  "(v4.14+)");
  }
  if (op == BPF_SUB) {
    return Reject(pc, "variable subtraction from pointer prohibited");
  }
  // Fold the scalar into the pointer's variable part.
  RegState var = dst;
  var.type = RegType::kScalar;
  var.off = 0;
  XB_RETURN_IF_ERROR(ApplyScalarAlu(var, src, BPF_ADD, true, pc));
  const RegType keep_type = dst.type;
  const s32 keep_off = dst.off;
  const int keep_fd = dst.map_fd;
  const u32 keep_mem = dst.mem_size;
  const u32 keep_range = dst.pkt_range;
  const u32 keep_id = dst.id;
  dst = var;
  dst.type = keep_type;
  dst.off = keep_off;
  dst.map_fd = keep_fd;
  dst.mem_size = keep_mem;
  dst.pkt_range = keep_range;
  dst.id = keep_id;
  return xbase::Status::Ok();
}

xbase::Status Verifier::CheckAlu(VerifierState& state, const Insn& insn,
                                 u32 pc) {
  FuncState& frame = state.cur();
  const bool is64 = insn.Class() == BPF_ALU64;
  const u8 op = insn.AluOp();
  RegState& dst = frame.regs[insn.dst];

  if (insn.dst >= R10) {
    return Reject(pc, "frame pointer is read only");
  }

  if (op == BPF_END) {
    if (dst.type != RegType::kScalar) {
      return Reject(pc, "byteswap on pointer prohibited");
    }
    dst.MarkUnknownScalar();
    return xbase::Status::Ok();
  }
  if (op == BPF_NEG) {
    if (dst.type != RegType::kScalar) {
      return Reject(pc, "negation of pointer prohibited");
    }
    if (dst.type == RegType::kNotInit) {
      return Reject(pc, StrFormat("R%d !read_ok", insn.dst));
    }
    // -x == 0 - x: reuse the subtraction transfer so constants stay
    // constants (dropping to unknown here loses the equality facts later
    // conditional jumps need to kill infeasible edges).
    RegState val = dst;
    dst.MarkConst(0);
    return ApplyScalarAlu(dst, val, BPF_SUB, is64, pc);
  }

  // Operand.
  RegState src_val;
  if (insn.UsesRegSrc()) {
    const RegState& src = frame.regs[insn.src];
    if (src.type == RegType::kNotInit) {
      return Reject(pc, StrFormat("R%d !read_ok", insn.src));
    }
    src_val = src;
  } else {
    src_val.MarkConst(is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                           : static_cast<u32>(insn.imm));
  }

  if (op == BPF_MOV) {
    if (insn.UsesRegSrc()) {
      if (!is64 && IsPointerType(src_val.type)) {
        // mov32 truncates: a pointer becomes an unknown scalar (and leaks
        // half the address — rejected for unprivileged).
        if (!opts_.privileged && !FaultOn(kFaultVerifierPtrLeak)) {
          return Reject(pc, "partial copy of pointer (leak)");
        }
        dst.MarkUnknownScalar();
        return xbase::Status::Ok();
      }
      dst = src_val;
      if (!is64) {
        dst.var_off = TnumCast(dst.var_off, 4);
        dst.umin = 0;
        dst.umax = std::min<u64>(dst.umax, 0xffffffff);
        dst.smin = 0;
        dst.smax = 0xffffffff;
        dst.SyncBounds();
      }
    } else if (!is64 && FaultOn(kFaultVerifierSignExtConfusion)) {
      // Buggy (CVE-2017-16995 shape): records the sign-extended 64-bit
      // constant for a 32-bit move although the runtime zero-extends.
      dst.MarkConst(static_cast<u64>(static_cast<s64>(insn.imm)));
    } else {
      dst.MarkConst(is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                         : static_cast<u32>(insn.imm));
    }
    return xbase::Status::Ok();
  }

  // Arithmetic proper.
  if (dst.type == RegType::kNotInit) {
    return Reject(pc, StrFormat("R%d !read_ok", insn.dst));
  }

  const bool dst_ptr = IsPointerType(dst.type);
  const bool src_ptr = IsPointerType(src_val.type);

  if (dst_ptr && src_ptr) {
    // ptr - ptr of the same kind yields a scalar (privileged only).
    if (op == BPF_SUB && dst.type == src_val.type && is64) {
      if (!opts_.privileged && !FaultOn(kFaultVerifierPtrLeak)) {
        return Reject(pc, "pointer subtraction prohibited for unprivileged");
      }
      dst.MarkUnknownScalar();
      return xbase::Status::Ok();
    }
    return Reject(pc, "arithmetic between two pointers prohibited");
  }
  if (dst_ptr || src_ptr) {
    if (!is64) {
      return Reject(pc, "32-bit pointer arithmetic prohibited");
    }
    if (src_ptr) {
      // scalar += ptr: only commutative ADD can be rewritten.
      if (op != BPF_ADD) {
        return Reject(pc, "pointer on the right-hand side of non-add");
      }
      const RegState scalar = dst;
      dst = src_val;
      return ApplyPtrArith(state, dst, scalar, BPF_ADD, pc);
    }
    return ApplyPtrArith(state, dst, src_val, op, pc);
  }

  return ApplyScalarAlu(dst, src_val, op, is64, pc);
}

// ---- memory access ------------------------------------------------------------------

xbase::Status Verifier::CheckStackAccess(FuncState& frame,
                                         const RegState& base, s32 insn_off,
                                         u32 size, bool is_write, u32 pc,
                                         RegState* load_dest,
                                         const RegState* store_src) {
  if (!base.var_off.IsConst()) {
    return Reject(pc, "variable stack access prohibited");
  }
  const s64 off = static_cast<s64>(base.off) +
                  static_cast<s64>(base.var_off.value) + insn_off;
  if (off >= 0 || off < -static_cast<s64>(kMaxStackBytes)) {
    return Reject(pc, StrFormat("invalid stack access off=%lld size=%u",
                                static_cast<long long>(off), size));
  }
  if (off + static_cast<s64>(size) > 0) {
    return Reject(pc, "stack access past the frame base");
  }
  stats_.max_stack_depth =
      std::max<u32>(stats_.max_stack_depth, static_cast<u32>(-off));

  const s64 first = off + kMaxStackBytes;          // byte index from bottom
  const u32 slot_lo = static_cast<u32>(first / 8);
  const u32 slot_hi = static_cast<u32>((first + size - 1) / 8);

  if (is_write) {
    const bool full_spill = size == 8 && (off % 8) == 0 &&
                            store_src != nullptr &&
                            store_src->type != RegType::kNotInit;
    for (u32 slot = slot_lo; slot <= slot_hi; ++slot) {
      StackSlot& stack_slot = frame.stack[slot];
      if (full_spill) {
        stack_slot.kind = SlotKind::kSpill;
        stack_slot.spilled = *store_src;
      } else if (FaultOn(kFaultVerifierSpillWidth) &&
                 stack_slot.kind == SlotKind::kSpill) {
        // Buggy: a narrow store into a spilled slot leaves the old spill
        // record intact, so a later 8-byte fill restores pre-overwrite
        // bounds the runtime bytes no longer satisfy (commit 27113c59b6d0
        // class).
      } else {
        stack_slot.kind = SlotKind::kMisc;
        stack_slot.spilled = RegState{};
      }
    }
    return xbase::Status::Ok();
  }

  // Read.
  if (size == 8 && (off % 8) == 0 &&
      frame.stack[slot_lo].kind == SlotKind::kSpill) {
    if (load_dest != nullptr) {
      *load_dest = frame.stack[slot_lo].spilled;
    }
    return xbase::Status::Ok();
  }
  for (u32 slot = slot_lo; slot <= slot_hi; ++slot) {
    if (frame.stack[slot].kind == SlotKind::kInvalid) {
      return Reject(pc, StrFormat("invalid read from stack off %lld+%u",
                                  static_cast<long long>(off), size));
    }
  }
  if (load_dest != nullptr) {
    load_dest->MarkScalarLoad(size);
  }
  return xbase::Status::Ok();
}

xbase::Status Verifier::CheckMemAccess(VerifierState& state, u8 regno,
                                       s32 insn_off, u32 size, bool is_write,
                                       u32 pc, RegState* load_dest,
                                       const RegState* store_src) {
  FuncState& frame = state.cur();
  RegState& base = frame.regs[regno];

  switch (base.type) {
    case RegType::kNotInit:
      return Reject(pc, StrFormat("R%d !read_ok", regno));
    case RegType::kScalar:
      return Reject(pc, StrFormat("R%d invalid mem access 'scalar'", regno));
    case RegType::kConstPtrToMap:
      return Reject(pc, "direct dereference of map pointer prohibited");
    case RegType::kPtrToFunc:
      return Reject(pc, "dereference of callback pointer prohibited");
    case RegType::kPtrToMapValueOrNull:
    case RegType::kPtrToMemOrNull:
    case RegType::kPtrToSockOrNull:
    case RegType::kPtrToTaskOrNull:
      return Reject(pc, StrFormat("R%d invalid mem access '%s': possibly "
                                  "NULL; check before use",
                                  regno, RegTypeName(base.type).data()));
    case RegType::kPtrToPacketEnd:
      return Reject(pc, "access to pkt_end prohibited");
    case RegType::kPtrToStack:
      return CheckStackAccess(frame, base, insn_off, size, is_write, pc,
                              load_dest, store_src);
    case RegType::kPtrToCtx: {
      if (!base.var_off.IsConst() || base.var_off.value != 0) {
        return Reject(pc, "variable ctx access prohibited");
      }
      const s64 off = static_cast<s64>(base.off) + insn_off;
      if (off < 0 || off + size > ctx_rules_.size) {
        return Reject(pc, StrFormat("invalid bpf_context access off=%lld "
                                    "size=%u",
                                    static_cast<long long>(off), size));
      }
      if (is_write && !ctx_rules_.writable) {
        return Reject(pc, "write into ctx prohibited for this program type");
      }
      if (!is_write && load_dest != nullptr) {
        if (ctx_rules_.has_packet_ptrs && Feat(VFeature::kDirectPacketAccess)) {
          if (off == simkern::SkBuffLayout::kDataPtr && size == 8) {
            *load_dest = RegState{};
            load_dest->type = RegType::kPtrToPacket;
            load_dest->var_off = TnumConst(0);
            load_dest->umin = load_dest->umax = 0;
            load_dest->smin = load_dest->smax = 0;
            load_dest->id = NextId();
            return xbase::Status::Ok();
          }
          if (off == simkern::SkBuffLayout::kDataEndPtr && size == 8) {
            *load_dest = RegState{};
            load_dest->type = RegType::kPtrToPacketEnd;
            return xbase::Status::Ok();
          }
        }
        load_dest->MarkScalarLoad(size);
        if (off == simkern::SkBuffLayout::kLen && size == 4) {
          load_dest->umin = 0;
          load_dest->umax = 0xffff;
          load_dest->smin = 0;
          load_dest->smax = 0xffff;
          load_dest->var_off = TnumRange(0, 0xffff);
          load_dest->SyncBounds();
        }
      }
      return xbase::Status::Ok();
    }
    case RegType::kPtrToMapValue: {
      auto map = maps_.Find(base.map_fd);
      if (!map.ok()) {
        return Reject(pc, "stale map reference");
      }
      const u32 value_size = map.value()->spec().value_size;
      if (FaultOn(kFaultVerifierScalarBounds)) {
        // Injected CVE-2022-23222-class defect: pointer bounds unchecked.
        if (!is_write && load_dest != nullptr) {
          load_dest->MarkUnknownScalar();
        }
        return xbase::Status::Ok();
      }
      const s64 min_off = static_cast<s64>(base.off) + insn_off + base.smin;
      const s64 max_off = static_cast<s64>(base.off) + insn_off + base.smax;
      if (min_off < 0) {
        return Reject(pc, StrFormat("R%d min value is negative (%lld), "
                                    "either use unsigned index or do a "
                                    "if (index >=0) check",
                                    regno, static_cast<long long>(min_off)));
      }
      if (max_off + size > value_size) {
        return Reject(pc, StrFormat("invalid access to map value, "
                                    "value_size=%u off=%lld size=%u",
                                    value_size,
                                    static_cast<long long>(max_off), size));
      }
      if (!is_write && load_dest != nullptr) {
        load_dest->MarkScalarLoad(size);
      }
      return xbase::Status::Ok();
    }
    case RegType::kPtrToMem: {
      const s64 min_off = static_cast<s64>(base.off) + insn_off + base.smin;
      const s64 max_off = static_cast<s64>(base.off) + insn_off + base.smax;
      if (min_off < 0 || max_off + size > base.mem_size) {
        return Reject(pc, StrFormat("invalid access to mem, mem_size=%u",
                                    base.mem_size));
      }
      if (!is_write && load_dest != nullptr) {
        load_dest->MarkScalarLoad(size);
      }
      return xbase::Status::Ok();
    }
    case RegType::kPtrToPacket: {
      const s64 max_off = static_cast<s64>(base.off) + insn_off +
                          static_cast<s64>(base.umax);
      const s64 min_off = static_cast<s64>(base.off) + insn_off +
                          static_cast<s64>(base.umin);
      if (min_off < 0 || max_off + size > base.pkt_range) {
        return Reject(pc, StrFormat("invalid access to packet, off=%lld "
                                    "size=%u, R%d range=%u",
                                    static_cast<long long>(max_off), size,
                                    regno, base.pkt_range));
      }
      if (!is_write && load_dest != nullptr) {
        load_dest->MarkScalarLoad(size);
      }
      return xbase::Status::Ok();
    }
    case RegType::kPtrToSock:
    case RegType::kPtrToTask: {
      if (is_write) {
        return Reject(pc, StrFormat("write into %s prohibited",
                                    RegTypeName(base.type).data()));
      }
      if (!base.var_off.IsConst()) {
        return Reject(pc, "variable offset into kernel structure");
      }
      const s64 off = static_cast<s64>(base.off) + insn_off;
      if (off < 0 || off + size > 64) {  // both sim structs are 64 bytes
        return Reject(pc, "out-of-bounds access to kernel structure");
      }
      if (load_dest != nullptr) {
        load_dest->MarkScalarLoad(size);
      }
      return xbase::Status::Ok();
    }
  }
  return Reject(pc, "unhandled pointer type");
}

// Thin recording wrapper: exports a per-pc memory-safety claim into the
// RangeTrace. An accepted check means the verifier believes every concrete
// execution reaching this pc stays in bounds — exactly the precondition the
// JIT needs to elide the runtime check. Injected verifier range faults
// (scalar_bounds, jgt_refine_off_by_one) make unsound checks *succeed*, so
// a buggy proof automatically becomes a wrongly-proven claim here and, via
// elision, real silent corruption downstream — no extra plumbing.
xbase::Status Verifier::CheckMemInsn(VerifierState& state, const Insn& insn,
                                     u32 pc) {
  xbase::Status st = CheckMemInsnImpl(state, insn, pc);
  if (opts_.range_trace != nullptr &&
      pc < opts_.range_trace->mem_per_pc.size()) {
    opts_.range_trace->mem_per_pc[pc].Record(st.ok());
  }
  return st;
}

xbase::Status Verifier::CheckMemInsnImpl(VerifierState& state,
                                         const Insn& insn, u32 pc) {
  FuncState& frame = state.cur();
  const u32 size = SizeBytes(insn.Size());
  if (size == 0) {
    return Reject(pc, "bad access size");
  }
  switch (insn.Class()) {
    case BPF_LDX: {
      if (insn.dst >= R10) {
        return Reject(pc, "frame pointer is read only");
      }
      RegState dest;
      XB_RETURN_IF_ERROR(CheckMemAccess(state, insn.src, insn.off, size,
                                        false, pc, &dest, nullptr));
      frame.regs[insn.dst] = dest;
      return xbase::Status::Ok();
    }
    case BPF_STX: {
      const RegState& src = frame.regs[insn.src];
      if (src.type == RegType::kNotInit) {
        return Reject(pc, StrFormat("R%d !read_ok", insn.src));
      }
      if (insn.Mode() == BPF_ATOMIC) {
        // BPF_XADD and friends: only fetch-add is supported (pre-v5.12
        // semantics), word sizes only, scalar operand, and the target must
        // be readable AND writable.
        if (insn.imm != BPF_ADD) {
          return Reject(pc, "unsupported atomic operation");
        }
        if (size != 4 && size != 8) {
          return Reject(pc, "atomic access must be 4 or 8 bytes");
        }
        if (src.type != RegType::kScalar) {
          return Reject(pc, "atomic operand must be a scalar");
        }
        RegState scratch;
        XB_RETURN_IF_ERROR(CheckMemAccess(state, insn.dst, insn.off, size,
                                          false, pc, &scratch, nullptr));
        return CheckMemAccess(state, insn.dst, insn.off, size, true, pc,
                              nullptr, &src);
      }
      // Leak check: storing a pointer anywhere but the stack exposes a
      // kernel address (to userspace via the map).
      if (IsPointerType(src.type) &&
          frame.regs[insn.dst].type != RegType::kPtrToStack &&
          !opts_.privileged && !FaultOn(kFaultVerifierPtrLeak)) {
        return Reject(pc, StrFormat("R%d leaks addr into map/mem", insn.src));
      }
      return CheckMemAccess(state, insn.dst, insn.off, size, true, pc,
                            nullptr, &src);
    }
    case BPF_ST: {
      RegState imm_reg;
      imm_reg.MarkConst(static_cast<u64>(static_cast<s64>(insn.imm)));
      return CheckMemAccess(state, insn.dst, insn.off, size, true, pc,
                            nullptr, &imm_reg);
    }
  }
  return Reject(pc, "unhandled memory class");
}

// ---- helper calls ------------------------------------------------------------------

xbase::Status Verifier::CheckHelperMemArg(VerifierState& state, u8 regno,
                                          u32 size, bool is_write, u32 pc) {
  if (size == 0) {
    return xbase::Status::Ok();
  }
  // A helper memory argument is equivalent to an access of `size` bytes at
  // offset 0 from the register.
  RegState scratch;
  return CheckMemAccess(state, regno, 0, size, is_write, pc,
                        is_write ? nullptr : &scratch,
                        is_write ? &scratch : nullptr);
}

xbase::Status Verifier::CheckHelperCall(VerifierState& state,
                                        const Insn& insn, u32 pc) {
  FuncState& frame = state.cur();
  const u32 helper_id = static_cast<u32>(insn.imm);

  auto spec_result = helpers_.FindSpec(helper_id);
  if (!spec_result.ok()) {
    return Reject(pc, StrFormat("invalid func unknown#%u", helper_id));
  }
  const HelperSpec& spec = *spec_result.value();
  simkern::KernelVersion gate_version = opts_.version;
  if (FaultOn(kFaultVerifierVersionGateOffByOne)) {
    // Defect: the gate compares against the *next* minor release, so a
    // helper is admitted one kernel version before it exists.
    ++gate_version.minor;
  }
  if (spec.introduced > gate_version) {
    return Reject(pc, StrFormat("unknown func %s#%u (introduced in %s)",
                                spec.name.c_str(), helper_id,
                                spec.introduced.ToString().c_str()));
  }
  // Helper-family access-control model (the declared contract lives in
  // FamilyAdmitsProgType): decision-maker families (sched/lsm) are only
  // reachable from their own program type, and those program types cannot
  // touch the packet/socket family.
  if (!FamilyAdmitsProgType(spec.family, prog_.type) &&
      !FaultOn(kFaultVerifierFamilyGateSkip)) {
    if (spec.family == HelperFamily::kSched ||
        spec.family == HelperFamily::kLsm) {
      return Reject(
          pc, StrFormat("helper %s#%u is restricted to %s programs",
                        spec.name.c_str(), helper_id,
                        ProgTypeName(AdmittingProgType(spec.family)).data()));
    }
    return Reject(pc, StrFormat("helper %s#%u is not available to "
                                "%s programs",
                                spec.name.c_str(), helper_id,
                                ProgTypeName(prog_.type).data()));
  }

  const bool lock_checks =
      Feat(VFeature::kSpinLockTracking) && !FaultOn(kFaultVerifierSpinLock);
  if (lock_checks && state.active_spin_lock_id != 0 &&
      helper_id != kHelperSpinUnlock) {
    return Reject(pc, "helper call is not allowed while holding a lock");
  }

  const bool ref_checks =
      Feat(VFeature::kRefTracking) && !FaultOn(kFaultVerifierRefTracking);

  int map_arg_fd = -1;
  u32 released_ref = 0;

  for (int i = 0; i < 5; ++i) {
    const ArgType arg = spec.args[i];
    if (arg == ArgType::kNone) {
      break;
    }
    const u8 regno = static_cast<u8>(R1 + i);
    RegState& reg = frame.regs[regno];
    if (reg.type == RegType::kNotInit) {
      return Reject(pc, StrFormat("R%d !read_ok (arg %d of %s)", regno,
                                  i + 1, spec.name.c_str()));
    }
    switch (arg) {
      case ArgType::kAnything:
        break;
      case ArgType::kScalar:
        if (reg.type != RegType::kScalar) {
          return Reject(pc, StrFormat("R%d type=%s expected=scalar", regno,
                                      RegTypeName(reg.type).data()));
        }
        break;
      case ArgType::kConstMapPtr:
        if (reg.type != RegType::kConstPtrToMap) {
          return Reject(pc, StrFormat("R%d type=%s expected=map_ptr", regno,
                                      RegTypeName(reg.type).data()));
        }
        map_arg_fd = reg.map_fd;
        break;
      case ArgType::kMapKey:
      case ArgType::kMapValue: {
        if (map_arg_fd < 0) {
          return Reject(pc, "map argument must precede key/value argument");
        }
        auto map = maps_.Find(map_arg_fd);
        if (!map.ok()) {
          return Reject(pc, "stale map reference");
        }
        const u32 need = arg == ArgType::kMapKey
                             ? map.value()->spec().key_size
                             : map.value()->spec().value_size;
        XB_RETURN_IF_ERROR(CheckHelperMemArg(state, regno, need, false, pc));
        break;
      }
      case ArgType::kPtrToMem:
      case ArgType::kPtrToUninitMem: {
        // Size lives in the following kMemSize argument.
        if (i + 1 >= 5 || spec.args[i + 1] != ArgType::kMemSize) {
          return Reject(pc, "helper spec error: mem without size");
        }
        const RegState& size_reg = frame.regs[R1 + i + 1];
        if (size_reg.type != RegType::kScalar) {
          return Reject(pc, StrFormat("R%d type=%s expected=size scalar",
                                      R1 + i + 1,
                                      RegTypeName(size_reg.type).data()));
        }
        if (size_reg.umax > 8192) {
          return Reject(pc, StrFormat("R%d unbounded memory access, "
                                      "umax=%llu",
                                      R1 + i + 1,
                                      static_cast<unsigned long long>(
                                          size_reg.umax)));
        }
        XB_RETURN_IF_ERROR(CheckHelperMemArg(
            state, regno, static_cast<u32>(size_reg.umax),
            arg == ArgType::kPtrToUninitMem, pc));
        break;
      }
      case ArgType::kMemSize:
        if (reg.type != RegType::kScalar) {
          return Reject(pc, StrFormat("R%d size must be scalar", regno));
        }
        break;
      case ArgType::kCtx:
        if (reg.type != RegType::kPtrToCtx || reg.off != 0) {
          return Reject(pc, StrFormat("R%d type=%s expected=ctx", regno,
                                      RegTypeName(reg.type).data()));
        }
        break;
      case ArgType::kSock:
        if (reg.type != RegType::kPtrToSock) {
          return Reject(pc, StrFormat("R%d type=%s expected=sock", regno,
                                      RegTypeName(reg.type).data()));
        }
        if (ref_checks && spec.releases_ref_arg == i + 1) {
          if (reg.ref_obj_id == 0 ||
              std::find(state.acquired_refs.begin(),
                        state.acquired_refs.end(),
                        reg.ref_obj_id) == state.acquired_refs.end()) {
            return Reject(pc, StrFormat("release of unowned reference "
                                        "(R%d)",
                                        regno));
          }
          released_ref = reg.ref_obj_id;
        }
        break;
      case ArgType::kTask:
        if (reg.type != RegType::kPtrToTask &&
            reg.type != RegType::kPtrToTaskOrNull &&
            !(reg.IsConst() && reg.var_off.value == 0) &&
            reg.type != RegType::kScalar) {
          return Reject(pc, StrFormat("R%d type=%s expected=task", regno,
                                      RegTypeName(reg.type).data()));
        }
        // Note: a *possibly NULL* or even scalar task pointer is accepted —
        // the verifier performs no deep inspection of what the pointer
        // really designates. This shallowness is §2.2's point.
        break;
      case ArgType::kSpinLock: {
        if (reg.type != RegType::kPtrToMapValue) {
          return Reject(pc, StrFormat("R%d type=%s expected=map_value "
                                      "(spin lock)",
                                      regno, RegTypeName(reg.type).data()));
        }
        if (!lock_checks) {
          break;
        }
        const u32 lock_id = static_cast<u32>(reg.map_fd) * 65536 +
                            static_cast<u32>(reg.off) + 1;
        if (helper_id == kHelperSpinLock) {
          if (state.active_spin_lock_id != 0) {
            return Reject(pc, "lock is already held");
          }
          state.active_spin_lock_id = lock_id;
        } else if (helper_id == kHelperSpinUnlock) {
          if (state.active_spin_lock_id != lock_id) {
            return Reject(pc, "unlock of a lock that is not held");
          }
          state.active_spin_lock_id = 0;
        }
        break;
      }
      case ArgType::kFunc: {
        if (!Feat(VFeature::kBpfLoopCallbacks)) {
          return Reject(pc, "callbacks are not supported before v5.17");
        }
        if (reg.type != RegType::kPtrToFunc) {
          return Reject(pc, StrFormat("R%d type=%s expected=func", regno,
                                      RegTypeName(reg.type).data()));
        }
        if (FaultOn(kFaultVerifierLoopInlineUaf)) {
          // Injected verifier-crash defect (commit fb4e3b33e3e7): the
          // loop-inlining pass touches a freed state.
          return xbase::Internal(
              "verifier bug: use-after-free in inline_bpf_loop "
              "(injected defect verifier.loop_inline_uaf)");
        }
        const u32 callback_pc = reg.mem_size;  // entry stashed at ld time
        if (!verified_callbacks_.contains(callback_pc)) {
          verified_callbacks_.insert(callback_pc);
          VerifierState cb_state;
          cb_state.frames.emplace_back();
          FuncState& cb_frame = cb_state.frames.back();
          cb_frame.regs[R1].MarkUnknownScalar();  // loop index
          cb_frame.regs[R2].MarkUnknownScalar();  // callback ctx cookie
          cb_frame.regs[R10].type = RegType::kPtrToStack;
          cb_frame.regs[R10].var_off = TnumConst(0);
          cb_frame.regs[R10].umin = cb_frame.regs[R10].umax = 0;
          cb_frame.regs[R10].smin = cb_frame.regs[R10].smax = 0;
          cb_frame.subprog_start = callback_pc;
          XB_RETURN_IF_ERROR(VerifyEntry(callback_pc, std::move(cb_state)));
        }
        break;
      }
      case ArgType::kNone:
        break;
    }
  }

  // Tail calls need a prog-array map.
  if (helper_id == kHelperTailCall && map_arg_fd >= 0) {
    auto map = maps_.Find(map_arg_fd);
    if (map.ok() && map.value()->spec().type != MapType::kProgArray) {
      return Reject(pc, "tail_call map must be a prog array");
    }
  }

  if (ref_checks && released_ref != 0) {
    state.acquired_refs.erase(
        std::remove(state.acquired_refs.begin(), state.acquired_refs.end(),
                    released_ref),
        state.acquired_refs.end());
    // Every copy of the released pointer is dead now.
    for (FuncState& f : state.frames) {
      for (RegState& reg : f.regs) {
        if (reg.ref_obj_id == released_ref) {
          reg.MarkUnknownScalar();
        }
      }
    }
  }

  // Return value.
  RegState& r0 = frame.regs[R0];
  switch (spec.ret) {
    case RetType::kInteger:
    case RetType::kVoid:
      r0.MarkUnknownScalar();
      break;
    case RetType::kMapValueOrNull: {
      r0 = RegState{};
      r0.type = RegType::kPtrToMapValueOrNull;
      r0.map_fd = map_arg_fd;
      r0.id = NextId();
      r0.var_off = TnumConst(0);
      r0.umin = r0.umax = 0;
      r0.smin = r0.smax = 0;
      break;
    }
    case RetType::kSockOrNull: {
      r0 = RegState{};
      r0.type = RegType::kPtrToSockOrNull;
      r0.id = NextId();
      if (ref_checks && spec.acquires_ref) {
        r0.ref_obj_id = r0.id;
        state.acquired_refs.push_back(r0.id);
      }
      break;
    }
    case RetType::kTaskOrNull: {
      r0 = RegState{};
      r0.type = RegType::kPtrToTaskOrNull;
      r0.id = NextId();
      break;
    }
    case RetType::kMemOrNull: {
      // ringbuf_reserve: the record size is the (constant) second argument.
      const RegState& size_reg = frame.regs[R2];
      if (!size_reg.IsConst()) {
        return Reject(pc, "R2 must be a known constant record size");
      }
      r0 = RegState{};
      r0.type = RegType::kPtrToMemOrNull;
      r0.mem_size = static_cast<u32>(size_reg.var_off.value);
      r0.id = NextId();
      if (ref_checks && spec.acquires_ref) {
        r0.ref_obj_id = r0.id;
        state.acquired_refs.push_back(r0.id);
      }
      break;
    }
  }
  if (spec.releases_ref_arg != 0 && spec.ret == RetType::kVoid) {
    r0.MarkUnknownScalar();
  }

  // r1-r5 are clobbered by the call.
  for (u8 regno = R1; regno <= R5; ++regno) {
    frame.regs[regno] = RegState{};
  }

  // Packet pointers are invalidated by helpers that may reallocate data —
  // registers and spilled stack slots alike. The injectable defect skips
  // the whole sweep (commit 36bbef52c7eb class): stale data/data_end ranges
  // then keep authorizing reads into reallocated memory.
  if (spec.changes_packet_data && !FaultOn(kFaultVerifierPktRangeStale)) {
    for (FuncState& f : state.frames) {
      for (RegState& reg : f.regs) {
        if (reg.type == RegType::kPtrToPacket ||
            reg.type == RegType::kPtrToPacketEnd) {
          reg.MarkUnknownScalar();
        }
      }
      for (StackSlot& slot : f.stack) {
        if (slot.kind == SlotKind::kSpill &&
            (slot.spilled.type == RegType::kPtrToPacket ||
             slot.spilled.type == RegType::kPtrToPacketEnd)) {
          slot.spilled.MarkUnknownScalar();
        }
      }
    }
  }
  return xbase::Status::Ok();
}

xbase::Status Verifier::CheckKfuncCall(VerifierState& state,
                                       const Insn& insn, u32 pc) {
  // kfunc calls (v5.13+): internal kernel functions exposed through BTF.
  // The checking here is *shallower* than for helpers — argument classes
  // only, no sizes, no pointee validation — which is exactly the widened
  // escape hatch §2.2 warns about.
  if (!Feat(VFeature::kKfuncCalls)) {
    return Reject(pc, "kfunc calls are not supported before v5.13");
  }
  if (opts_.kfuncs == nullptr) {
    return Reject(pc, "no kfuncs exposed by this kernel");
  }
  auto spec_result = opts_.kfuncs->FindSpec(static_cast<u32>(insn.imm));
  if (!spec_result.ok()) {
    return Reject(pc, StrFormat("invalid kernel function call #%d",
                                insn.imm));
  }
  const KfuncSpec& spec = *spec_result.value();
  if (spec.introduced > opts_.version) {
    return Reject(pc, StrFormat("kfunc %s not exported until %s",
                                spec.name.c_str(),
                                spec.introduced.ToString().c_str()));
  }
  FuncState& frame = state.cur();
  for (int i = 0; i < spec.arg_count(); ++i) {
    const u8 regno = static_cast<u8>(R1 + i);
    RegState& reg = frame.regs[regno];
    if (reg.type == RegType::kNotInit) {
      return Reject(pc, StrFormat("R%d !read_ok (kfunc arg)", regno));
    }
    if (spec.args[i] == ArgType::kCtx &&
        (reg.type != RegType::kPtrToCtx || reg.off != 0)) {
      return Reject(pc, StrFormat("R%d type=%s expected=ctx", regno,
                                  RegTypeName(reg.type).data()));
    }
    // kAnything: anything goes. This is the hole.
  }

  const bool ref_checks =
      Feat(VFeature::kRefTracking) && !FaultOn(kFaultVerifierRefTracking);
  if (ref_checks && spec.releases_ref) {
    RegState& reg = frame.regs[R1];
    if (reg.ref_obj_id == 0 ||
        std::find(state.acquired_refs.begin(), state.acquired_refs.end(),
                  reg.ref_obj_id) == state.acquired_refs.end()) {
      return Reject(pc, "kfunc release of unowned reference");
    }
    const u32 released = reg.ref_obj_id;
    state.acquired_refs.erase(
        std::remove(state.acquired_refs.begin(), state.acquired_refs.end(),
                    released),
        state.acquired_refs.end());
    for (FuncState& f : state.frames) {
      for (RegState& r : f.regs) {
        if (r.ref_obj_id == released) {
          r.MarkUnknownScalar();
        }
      }
    }
  }

  RegState& r0 = frame.regs[R0];
  if (spec.acquires_ref) {
    r0 = RegState{};
    r0.type = RegType::kPtrToTaskOrNull;
    r0.id = NextId();
    if (ref_checks) {
      r0.ref_obj_id = r0.id;
      state.acquired_refs.push_back(r0.id);
    }
  } else {
    r0.MarkUnknownScalar();
  }
  for (u8 regno = R1; regno <= R5; ++regno) {
    frame.regs[regno] = RegState{};
  }
  return xbase::Status::Ok();
}

xbase::Status Verifier::CheckCall(VerifierState& state, const Insn& insn,
                                  u32 pc, bool& path_done, u32& next_pc) {
  if (insn.IsHelperCall()) {
    XB_RETURN_IF_ERROR(CheckHelperCall(state, insn, pc));
    path_done = false;
    next_pc = pc + 1;
    return xbase::Status::Ok();
  }
  if (insn.IsKfuncCall()) {
    XB_RETURN_IF_ERROR(CheckKfuncCall(state, insn, pc));
    path_done = false;
    next_pc = pc + 1;
    return xbase::Status::Ok();
  }
  // BPF-to-BPF call.
  if (!Feat(VFeature::kBpf2BpfCalls)) {
    return Reject(pc, "function calls are not supported before v4.16");
  }
  if (state.frames.size() >= kMaxCallFrames) {
    return Reject(pc, StrFormat("the call stack of %u frames is too deep",
                                kMaxCallFrames));
  }
  const u32 target = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.imm);
  FuncState callee;
  callee.frame_no = static_cast<u32>(state.frames.size());
  callee.callsite = pc + 1;
  callee.subprog_start = target;
  for (u8 regno = R1; regno <= R5; ++regno) {
    callee.regs[regno] = state.cur().regs[regno];
  }
  callee.regs[R10].type = RegType::kPtrToStack;
  callee.regs[R10].var_off = TnumConst(0);
  callee.regs[R10].umin = callee.regs[R10].umax = 0;
  callee.regs[R10].smin = callee.regs[R10].smax = 0;
  state.frames.push_back(std::move(callee));
  path_done = false;
  next_pc = target;
  return xbase::Status::Ok();
}

xbase::Status Verifier::CheckExit(VerifierState& state, u32 pc,
                                  bool& path_done, u32& next_pc) {
  FuncState& frame = state.cur();
  const RegState& r0 = frame.regs[R0];
  if (r0.type == RegType::kNotInit) {
    return Reject(pc, "R0 !read_ok");
  }

  if (state.frames.size() > 1) {
    // Return from a BPF-to-BPF call.
    const u32 callsite = frame.callsite;
    const RegState ret = r0;
    state.frames.pop_back();
    FuncState& caller = state.cur();
    caller.regs[R0] = ret;
    for (u8 regno = R1; regno <= R5; ++regno) {
      caller.regs[regno] = RegState{};
    }
    path_done = false;
    next_pc = callsite;
    return xbase::Status::Ok();
  }

  // Program exit proper.
  if (IsPointerType(r0.type) && !opts_.privileged &&
      !FaultOn(kFaultVerifierPtrLeak)) {
    return Reject(pc, "R0 leaks addr as return value");
  }
  const bool ref_checks =
      Feat(VFeature::kRefTracking) && !FaultOn(kFaultVerifierRefTracking);
  if (ref_checks && !state.acquired_refs.empty()) {
    return Reject(pc, StrFormat("Unreleased reference id=%u",
                                state.acquired_refs.front()));
  }
  const bool lock_checks =
      Feat(VFeature::kSpinLockTracking) && !FaultOn(kFaultVerifierSpinLock);
  if (lock_checks && state.active_spin_lock_id != 0) {
    return Reject(pc, "bpf_spin_lock is not released on exit");
  }
  path_done = true;
  next_pc = 0;
  return xbase::Status::Ok();
}

// ---- branches --------------------------------------------------------------------------

void Verifier::RefineScalar(RegState& reg, u8 jmp_op, u64 imm,
                            bool branch_taken, bool is32) {
  if (reg.type != RegType::kScalar) {
    return;
  }
  // 32-bit compares refine 64-bit state only when the upper bits are known
  // zero — unless the jmp32-bounds defect is injected, which applies the
  // (unsound) 64-bit refinement unconditionally: the commit 3844d153 bug.
  if (is32 && !FaultOn(kFaultVerifierJmp32Bounds)) {
    const bool upper_known_zero =
        (reg.var_off.mask >> 32) == 0 && (reg.var_off.value >> 32) == 0;
    if (!upper_known_zero) {
      return;  // sound: nothing to conclude about the 64-bit value
    }
    // Signed 32-bit compares additionally need bit 31 known zero (and a
    // non-negative immediate): otherwise the s32 view the branch tested
    // disagrees with the s64 bounds tracked here, and refining them
    // manufactures bounds the runtime value escapes.
    if (jmp_op == BPF_JSGT || jmp_op == BPF_JSGE || jmp_op == BPF_JSLT ||
        jmp_op == BPF_JSLE) {
      const bool bit31_known_zero =
          ((reg.var_off.mask | reg.var_off.value) & 0x80000000u) == 0;
      if (!bit31_known_zero || static_cast<s32>(imm) < 0) {
        return;
      }
    }
  }
  // Equality against a 32-bit immediate pins the *zero-extended* 64-bit
  // value (the upper-known-zero guard above already ran); sign-extending
  // here would claim a negative s64 for a value that is provably positive.
  const s64 simm = is32 ? ((jmp_op == BPF_JEQ || jmp_op == BPF_JNE)
                               ? static_cast<s64>(imm)
                               : static_cast<s64>(static_cast<s32>(imm)))
                        : static_cast<s64>(imm);

  switch (jmp_op) {
    case BPF_JEQ:
    case BPF_JNE:
      // JEQ-taken and JNE-fallthrough both pin the register to `imm`.
      if (branch_taken == (jmp_op == BPF_JEQ)) {
        if (((reg.var_off.value ^ imm) & ~reg.var_off.mask) != 0) {
          // The pinned value contradicts a known bit: this edge is
          // infeasible. TnumIntersect would silently produce garbage
          // here, so express the contradiction as an empty interval for
          // the caller's feasibility check instead.
          reg.umin = 1;
          reg.umax = 0;
          return;
        }
        reg.var_off = TnumIntersect(reg.var_off, TnumConst(imm));
        reg.umin = std::max(reg.umin, imm);
        reg.umax = std::min(reg.umax, imm);
        reg.smin = std::max(reg.smin, simm);
        reg.smax = std::min(reg.smax, simm);
      }
      break;
    case BPF_JGT:
      if (branch_taken) {
        reg.umin = std::max(reg.umin, imm + 1);
      } else if (FaultOn(kFaultVerifierJgtOffByOne) && imm > 0) {
        // Buggy: the fall-through edge proves dst <= imm, but this claims
        // dst <= imm - 1 — one admitted value short (Table-1 bounds class).
        reg.umax = std::min(reg.umax, imm - 1);
      } else {
        reg.umax = std::min(reg.umax, imm);
      }
      break;
    case BPF_JGE:
      if (branch_taken) {
        reg.umin = std::max(reg.umin, imm);
      } else if (imm > 0) {
        reg.umax = std::min(reg.umax, imm - 1);
      }
      break;
    case BPF_JLT:
      if (branch_taken) {
        if (imm > 0) {
          reg.umax = std::min(reg.umax, imm - 1);
        }
      } else {
        reg.umin = std::max(reg.umin, imm);
      }
      break;
    case BPF_JLE:
      if (branch_taken) {
        reg.umax = std::min(reg.umax, imm);
      } else {
        reg.umin = std::max(reg.umin, imm + 1);
      }
      break;
    case BPF_JSGT:
      if (branch_taken) {
        reg.smin = std::max(reg.smin, simm + 1);
      } else {
        reg.smax = std::min(reg.smax, simm);
      }
      break;
    case BPF_JSGE:
      if (branch_taken) {
        reg.smin = std::max(reg.smin, simm);
      } else {
        reg.smax = std::min(reg.smax, simm - 1);
      }
      break;
    case BPF_JSLT:
      if (branch_taken) {
        reg.smax = std::min(reg.smax, simm - 1);
      } else {
        reg.smin = std::max(reg.smin, simm);
      }
      break;
    case BPF_JSLE:
      if (branch_taken) {
        reg.smax = std::min(reg.smax, simm);
      } else {
        reg.smin = std::max(reg.smin, simm + 1);
      }
      break;
    case BPF_JSET:
      if (!branch_taken) {
        // All tested bits are zero.
        reg.var_off.value &= ~imm;
        reg.var_off.mask &= ~imm;
      }
      break;
  }
  reg.SyncBounds();
}

// Mutual endpoint refinement for a 64-bit reg-reg compare: each side's
// interval endpoints bound the other (the reg_set_min_max two-register
// path). Only intervals move — tnums are left alone, and missed
// infeasibility is harmless (the edge is explored with sound bounds).
// Strict compares shift by one; the shift is skipped at the domain edge
// where +1/-1 would wrap, which merely keeps the weaker sound bound.
void Verifier::RefineRegReg(RegState& dst, RegState& src, u8 jmp_op,
                            bool branch_taken) {
  if (dst.type != RegType::kScalar || src.type != RegType::kScalar) {
    return;
  }
  // Normalize to the relation the edge proves: JGT/fall == JLE/taken etc.
  u8 op = jmp_op;
  if (!branch_taken) {
    switch (jmp_op) {
      case BPF_JEQ:  op = BPF_JNE;  break;
      case BPF_JNE:  op = BPF_JEQ;  break;
      case BPF_JGT:  op = BPF_JLE;  break;
      case BPF_JGE:  op = BPF_JLT;  break;
      case BPF_JLT:  op = BPF_JGE;  break;
      case BPF_JLE:  op = BPF_JGT;  break;
      case BPF_JSGT: op = BPF_JSLE; break;
      case BPF_JSGE: op = BPF_JSLT; break;
      case BPF_JSLT: op = BPF_JSGE; break;
      case BPF_JSLE: op = BPF_JSGT; break;
      default:
        return;  // JSET and friends: nothing relational to conclude
    }
  }
  // Injected defect: the bounded side of a strict less-than tightens one
  // value too far (dst < src claims dst <= src.umax - 2), the LT/LE range
  // markings class — a runtime value the refinement excluded still reaches
  // the guarded access.
  const u64 lt_slack = FaultOn(kFaultVerifierRegRegOffByOne) ? 2 : 1;
  switch (op) {
    case BPF_JEQ:
      dst.umin = src.umin = std::max(dst.umin, src.umin);
      dst.umax = src.umax = std::min(dst.umax, src.umax);
      dst.smin = src.smin = std::max(dst.smin, src.smin);
      dst.smax = src.smax = std::min(dst.smax, src.smax);
      break;
    case BPF_JNE:
      return;  // disequality refines nothing interval-wise
    case BPF_JGT:  // dst > src
      if (src.umin < kU64Max) {
        dst.umin = std::max(dst.umin, src.umin + 1);
      }
      if (dst.umax > 0) {
        src.umax = std::min(src.umax, dst.umax - lt_slack);
      }
      break;
    case BPF_JGE:  // dst >= src
      dst.umin = std::max(dst.umin, src.umin);
      src.umax = std::min(src.umax, dst.umax);
      break;
    case BPF_JLT:  // dst < src
      if (src.umax > 0) {
        dst.umax = std::min(dst.umax, src.umax - lt_slack);
      }
      if (dst.umin < kU64Max) {
        src.umin = std::max(src.umin, dst.umin + 1);
      }
      break;
    case BPF_JLE:  // dst <= src
      dst.umax = std::min(dst.umax, src.umax);
      src.umin = std::max(src.umin, dst.umin);
      break;
    case BPF_JSGT:  // dst >s src
      if (src.smin < kS64Max) {
        dst.smin = std::max(dst.smin, src.smin + 1);
      }
      if (dst.smax > kS64Min) {
        src.smax = std::min(src.smax, dst.smax - 1);
      }
      break;
    case BPF_JSGE:  // dst >=s src
      dst.smin = std::max(dst.smin, src.smin);
      src.smax = std::min(src.smax, dst.smax);
      break;
    case BPF_JSLT:  // dst <s src
      if (src.smax > kS64Min) {
        dst.smax = std::min(dst.smax, src.smax - 1);
      }
      if (dst.smin < kS64Max) {
        src.smin = std::max(src.smin, dst.smin + 1);
      }
      break;
    case BPF_JSLE:  // dst <=s src
      dst.smax = std::min(dst.smax, src.smax);
      src.smin = std::max(src.smin, dst.smin);
      break;
    default:
      return;
  }
  dst.SyncBounds();
  src.SyncBounds();
}

void Verifier::MarkPtrOrNull(VerifierState& state, u32 id, bool is_null) {
  for (FuncState& frame : state.frames) {
    for (RegState& reg : frame.regs) {
      if (IsOrNullType(reg.type) && reg.id == id) {
        if (is_null) {
          const u32 ref = reg.ref_obj_id;
          reg.MarkConst(0);
          if (ref != 0) {
            // NULL means the acquire failed: nothing to release.
            state.acquired_refs.erase(
                std::remove(state.acquired_refs.begin(),
                            state.acquired_refs.end(), ref),
                state.acquired_refs.end());
          }
        } else {
          reg.type = UnwrapOrNull(reg.type);
        }
      }
    }
  }
}

void Verifier::FindGoodPktPointers(FuncState& frame, u32 pkt_id, u32 range) {
  for (RegState& reg : frame.regs) {
    if (reg.type == RegType::kPtrToPacket && reg.id == pkt_id) {
      reg.pkt_range = std::max(reg.pkt_range, range);
    }
  }
  for (StackSlot& slot : frame.stack) {
    if (slot.kind == SlotKind::kSpill &&
        slot.spilled.type == RegType::kPtrToPacket &&
        slot.spilled.id == pkt_id) {
      slot.spilled.pkt_range = std::max(slot.spilled.pkt_range, range);
    }
  }
}

void Verifier::ApplyCondBranch(const VerifierState& state, const Insn& insn,
                               u32 pc, VerifierState& taken,
                               VerifierState& fallthrough,
                               bool& taken_possible, bool& fall_possible) {
  (void)pc;
  taken = state;
  fallthrough = state;
  taken_possible = true;
  fall_possible = true;

  const u8 op = insn.JmpOp();
  const bool is32 = insn.Class() == BPF_JMP32;
  const RegState& dst = state.cur().regs[insn.dst];

  // Pointer-or-null refinement: `if rX == 0` / `if rX != 0`.
  if (!insn.UsesRegSrc() && insn.imm == 0 && IsOrNullType(dst.type) &&
      (op == BPF_JEQ || op == BPF_JNE)) {
    const bool eq_branch_null = op == BPF_JEQ;
    MarkPtrOrNull(taken, dst.id, eq_branch_null);
    MarkPtrOrNull(fallthrough, dst.id, !eq_branch_null);
    return;
  }

  // Packet range discovery: compare a packet cursor against pkt_end.
  if (insn.UsesRegSrc() && Feat(VFeature::kDirectPacketAccess)) {
    const RegState& src = state.cur().regs[insn.src];
    if (dst.type == RegType::kPtrToPacket &&
        src.type == RegType::kPtrToPacketEnd && dst.var_off.IsConst()) {
      const u32 range = static_cast<u32>(
          std::max<s64>(0, dst.off + static_cast<s64>(dst.var_off.value)));
      if (op == BPF_JGT || op == BPF_JGE) {
        // if (cursor > end) goto X: fallthrough proves `range` bytes.
        FindGoodPktPointers(fallthrough.cur(), dst.id, range);
      } else if (op == BPF_JLE || op == BPF_JLT) {
        // if (cursor <= end) goto X: taken branch proves `range` bytes.
        FindGoodPktPointers(taken.cur(), dst.id, range);
      }
      return;
    }
  }

  if (dst.type != RegType::kScalar) {
    return;  // other pointer compares: no refinement
  }

  // Constant folding: prune statically impossible branches.
  if (!insn.UsesRegSrc()) {
    const u64 imm = is32 ? static_cast<u64>(static_cast<u32>(insn.imm))
                         : static_cast<u64>(static_cast<s64>(insn.imm));
    RegState& t = taken.cur().regs[insn.dst];
    RegState& f = fallthrough.cur().regs[insn.dst];
    RefineScalar(t, op, imm, true, is32);
    RefineScalar(f, op, imm, false, is32);
    if (t.umin > t.umax || t.smin > t.smax) {
      taken_possible = false;
    }
    if (f.umin > f.umax || f.smin > f.smax) {
      fall_possible = false;
    }
    // Fully-known comparisons settle the branch.
    if (dst.IsConst() && !is32) {
      const u64 value = dst.var_off.value;
      const s64 svalue = static_cast<s64>(value);
      const s64 simm = static_cast<s64>(insn.imm);
      bool result;
      switch (op) {
        case BPF_JEQ:
          result = value == imm;
          break;
        case BPF_JNE:
          result = value != imm;
          break;
        case BPF_JGT:
          result = value > imm;
          break;
        case BPF_JGE:
          result = value >= imm;
          break;
        case BPF_JLT:
          result = value < imm;
          break;
        case BPF_JLE:
          result = value <= imm;
          break;
        case BPF_JSGT:
          result = svalue > simm;
          break;
        case BPF_JSGE:
          result = svalue >= simm;
          break;
        case BPF_JSLT:
          result = svalue < simm;
          break;
        case BPF_JSLE:
          result = svalue <= simm;
          break;
        case BPF_JSET:
          result = (value & imm) != 0;
          break;
        default:
          return;
      }
      taken_possible = result;
      fall_possible = !result;
    }
    return;
  }

  // Register comparand. A constant src keeps the full RefineScalar path
  // (tnum intersection on JEQ, JSET bit knowledge); a genuinely unknown
  // scalar src gets mutual endpoint refinement on both edges — `if r7 < r8`
  // with r8 <= 8 proves r7 <= 7 on the taken edge, and bounds r8 from r7
  // symmetrically. 32-bit reg-reg compares stay conservative: the u32
  // views compared at runtime say nothing about the tracked 64-bit bounds.
  const RegState& src = state.cur().regs[insn.src];
  if (src.type != RegType::kScalar || is32) {
    return;
  }
  if (src.IsConst()) {
    RegState& t = taken.cur().regs[insn.dst];
    RegState& f = fallthrough.cur().regs[insn.dst];
    RefineScalar(t, op, src.var_off.value, true, false);
    RefineScalar(f, op, src.var_off.value, false, false);
    if (t.umin > t.umax || t.smin > t.smax) {
      taken_possible = false;
    }
    if (f.umin > f.umax || f.smin > f.smax) {
      fall_possible = false;
    }
    return;
  }
  RefineRegReg(taken.cur().regs[insn.dst], taken.cur().regs[insn.src], op,
               true);
  RefineRegReg(fallthrough.cur().regs[insn.dst],
               fallthrough.cur().regs[insn.src], op, false);
  const auto infeasible = [](const RegState& r) {
    return r.umin > r.umax || r.smin > r.smax;
  };
  if (infeasible(taken.cur().regs[insn.dst]) ||
      infeasible(taken.cur().regs[insn.src])) {
    taken_possible = false;
  }
  if (infeasible(fallthrough.cur().regs[insn.dst]) ||
      infeasible(fallthrough.cur().regs[insn.src])) {
    fall_possible = false;
  }
}

// ---- pruning ---------------------------------------------------------------------------

bool Verifier::RegSafe(const RegState& old_reg, const RegState& new_reg)
    const {
  if (old_reg.type == RegType::kNotInit) {
    return true;  // the old path proved safe without reading it
  }
  if (old_reg.type != new_reg.type) {
    return false;
  }
  switch (old_reg.type) {
    case RegType::kScalar:
      return old_reg.umin <= new_reg.umin && old_reg.umax >= new_reg.umax &&
             old_reg.smin <= new_reg.smin && old_reg.smax >= new_reg.smax &&
             TnumIn(old_reg.var_off, new_reg.var_off);
    case RegType::kPtrToPacket:
      return old_reg.off == new_reg.off &&
             old_reg.pkt_range <= new_reg.pkt_range &&
             old_reg.umax >= new_reg.umax;
    default:
      return old_reg.off == new_reg.off &&
             old_reg.map_fd == new_reg.map_fd &&
             old_reg.mem_size == new_reg.mem_size &&
             (old_reg.ref_obj_id == 0) == (new_reg.ref_obj_id == 0);
  }
}

bool Verifier::StatesEqual(const VerifierState& old_state,
                           const VerifierState& new_state) const {
  if (old_state.frames.size() != new_state.frames.size()) {
    return false;
  }
  if (old_state.active_spin_lock_id != new_state.active_spin_lock_id) {
    return false;
  }
  if (old_state.acquired_refs.size() != new_state.acquired_refs.size()) {
    return false;
  }
  for (usize i = 0; i < old_state.frames.size(); ++i) {
    const FuncState& of = old_state.frames[i];
    const FuncState& nf = new_state.frames[i];
    if (of.callsite != nf.callsite) {
      return false;
    }
    for (int r = 0; r < kNumRegs; ++r) {
      if (!RegSafe(of.regs[r], nf.regs[r])) {
        return false;
      }
    }
    for (u32 s = 0; s < kStackSlots; ++s) {
      const StackSlot& os = of.stack[s];
      const StackSlot& ns = nf.stack[s];
      if (os.kind == SlotKind::kInvalid) {
        continue;
      }
      if (os.kind == SlotKind::kMisc) {
        if (ns.kind == SlotKind::kInvalid) {
          return false;
        }
        continue;
      }
      if (os.kind != ns.kind || !RegSafe(os.spilled, ns.spilled)) {
        return false;
      }
    }
  }
  return true;
}

// ---- main loop -------------------------------------------------------------------------

xbase::Status Verifier::Step(VerifierState& state, u32 pc, bool& path_done,
                             u32& next_pc) {
  if (pc >= prog_.len()) {
    return Reject(pc, "fell off the end of the program");
  }
  const Insn& insn = prog_.insns[pc];
  path_done = false;
  next_pc = pc + 1;

  switch (insn.Class()) {
    case BPF_ALU:
    case BPF_ALU64:
      return CheckAlu(state, insn, pc);
    case BPF_LD: {
      if (!insn.IsLdImm64()) {
        return Reject(pc, "legacy BPF_LD_ABS is not supported");
      }
      FuncState& frame = state.cur();
      if (insn.dst >= R10) {
        return Reject(pc, "frame pointer is read only");
      }
      RegState& dst = frame.regs[insn.dst];
      if (insn.src == BPF_PSEUDO_MAP_FD) {
        auto map = maps_.Find(insn.imm);
        if (!map.ok()) {
          return Reject(pc, StrFormat("fd %d is not pointing to a valid "
                                      "bpf_map",
                                      insn.imm));
        }
        dst = RegState{};
        dst.type = RegType::kConstPtrToMap;
        dst.map_fd = insn.imm;
      } else if (insn.src == BPF_PSEUDO_FUNC) {
        dst = RegState{};
        dst.type = RegType::kPtrToFunc;
        dst.mem_size = static_cast<u32>(insn.imm);  // callback entry pc
      } else {
        const u64 value =
            (static_cast<u64>(static_cast<u32>(prog_.insns[pc + 1].imm))
             << 32) |
            static_cast<u32>(insn.imm);
        dst.MarkConst(value);
      }
      next_pc = pc + 2;
      return xbase::Status::Ok();
    }
    case BPF_LDX:
    case BPF_ST:
    case BPF_STX:
      return CheckMemInsn(state, insn, pc);
    case BPF_JMP:
    case BPF_JMP32: {
      if (insn.Class() == BPF_JMP32 && !Feat(VFeature::k32BitBounds)) {
        return Reject(pc, "JMP32 is not supported before v5.1");
      }
      const u8 op = insn.JmpOp();
      if (op == BPF_CALL) {
        return CheckCall(state, insn, pc, path_done, next_pc);
      }
      if (op == BPF_EXIT) {
        return CheckExit(state, pc, path_done, next_pc);
      }
      if (op == BPF_JA) {
        next_pc = static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
        return xbase::Status::Ok();
      }
      // Conditional branch.
      const RegState& dst = state.cur().regs[insn.dst];
      if (dst.type == RegType::kNotInit) {
        return Reject(pc, StrFormat("R%d !read_ok", insn.dst));
      }
      if (insn.UsesRegSrc() &&
          state.cur().regs[insn.src].type == RegType::kNotInit) {
        return Reject(pc, StrFormat("R%d !read_ok", insn.src));
      }
      VerifierState taken, fallthrough;
      bool taken_possible = false, fall_possible = false;
      ApplyCondBranch(state, insn, pc, taken, fallthrough, taken_possible,
                      fall_possible);
      const u32 target =
          static_cast<u32>(static_cast<s64>(pc) + 1 + insn.off);
      if (taken_possible) {
        if (worklist_.size() >= kMaxPendingStates) {
          return xbase::Rejected("too many pending branch states "
                                 "(verifier memory limit)");
        }
        worklist_.push_back(Pending{target, std::move(taken)});
        ++stats_.states_explored;
      }
      if (fall_possible) {
        state = std::move(fallthrough);
        next_pc = pc + 1;
      } else {
        path_done = true;
      }
      return xbase::Status::Ok();
    }
  }
  return Reject(pc, "unknown instruction class");
}

xbase::Status Verifier::VerifyEntry(u32 entry_pc, VerifierState state) {
  if (worklist_.size() >= kMaxPendingStates) {
    return xbase::Rejected("too many pending branch states");
  }
  worklist_.push_back(Pending{entry_pc, std::move(state)});
  ++stats_.states_explored;
  return ExplorePaths();
}

xbase::Status Verifier::ExplorePaths() {
  while (!worklist_.empty()) {
    stats_.peak_states = std::max<u64>(
        stats_.peak_states, worklist_.size());
    Pending pending = std::move(worklist_.back());
    worklist_.pop_back();
    u32 pc = pending.pc;
    VerifierState state = std::move(pending.state);
    const u64 path_id = ++path_counter_;

    bool path_done = false;
    while (!path_done) {
      // Pruning at join points.
      if (jump_targets_.contains(pc) || pseudo_func_targets_.contains(pc)) {
        auto& stored = explored_[pc];
        bool pruned = false;
        for (const StoredState& old_state : stored) {
          if (StatesEqual(old_state.state, state)) {
            if (old_state.path_id == path_id) {
              // We walked back into a state recorded on the *current*
              // path with nothing changed: the program can loop forever
              // (the kernel's "infinite loop detected").
              return Reject(pc, "infinite loop detected");
            }
            if (opts_.disable_pruning) {
              continue;  // ablation: re-explore everything
            }
            ++stats_.states_pruned;
            pruned = true;
            break;
          }
        }
        if (pruned) {
          break;
        }
        if (stored.size() < kMaxStoredStatesPerPc) {
          stored.push_back(StoredState{state, path_id});
          if (opts_.faults != nullptr &&
              opts_.faults->IsActive(kFaultVerifierStateLeak)) {
            // Injected defect: duplicate bookkeeping entry that is never
            // reclaimed — visible as monotonically growing state memory.
            stored.push_back(StoredState{state, path_id});
            ++stats_.states_leaked;
          }
        }
      }

      ++stats_.insns_processed;
      if (stats_.insns_processed > insn_budget_) {
        return xbase::Rejected(StrFormat(
            "BPF program is too large. Processed %llu insn "
            "(budget %u at %s)",
            static_cast<unsigned long long>(stats_.insns_processed),
            insn_budget_, opts_.version.ToString().c_str()));
      }

      RecordRangeTrace(state, pc);
      u32 next_pc = pc;
      XB_RETURN_IF_ERROR(Step(state, pc, path_done, next_pc));
      pc = next_pc;
    }
  }
  return xbase::Status::Ok();
}

// Joins the current frame's registers into the per-pc claims. Recording
// the *active* frame matches the concrete interpreter, whose tracer also
// reports the executing frame's registers at each global pc.
void Verifier::RecordRangeTrace(const VerifierState& state, u32 pc) {
  if (opts_.range_trace == nullptr ||
      pc >= opts_.range_trace->per_pc.size()) {
    return;
  }
  std::array<RegClaim, kNumRegs>& claims = opts_.range_trace->per_pc[pc];
  const FuncState& frame = state.frames.back();
  for (int r = 0; r < kNumRegs; ++r) {
    const RegState& reg = frame.regs[r];
    if (reg.type == RegType::kScalar) {
      claims[static_cast<xbase::usize>(r)].JoinScalar(
          reg.umin, reg.umax, reg.smin, reg.smax, reg.var_off.value,
          reg.var_off.mask);
    } else {
      claims[static_cast<xbase::usize>(r)].JoinOther();
    }
  }
  // Relational claims: the interval-implied difference bound smax_i -
  // smin_j for every ordered scalar pair, path-joined so the per-pc claim
  // over-approximates every path through this instruction.
  if (pc < opts_.range_trace->rel_per_pc.size()) {
    std::array<s64, kRelRegs * kRelRegs> path;
    path.fill(kRelInf);
    for (int i = 0; i < kRelRegs; ++i) {
      const RegState& ri = frame.regs[i];
      if (ri.type != RegType::kScalar) {
        continue;
      }
      for (int j = 0; j < kRelRegs; ++j) {
        if (i == j) {
          continue;
        }
        const RegState& rj = frame.regs[j];
        if (rj.type != RegType::kScalar) {
          continue;
        }
        const __int128 bound =
            static_cast<__int128>(ri.smax) - static_cast<__int128>(rj.smin);
        if (bound < static_cast<__int128>(kRelInf)) {
          path[static_cast<xbase::usize>(i * kRelRegs + j)] =
              static_cast<s64>(bound);
        }
      }
    }
    opts_.range_trace->rel_per_pc[pc].JoinPath(path);
  }
}

xbase::Result<VerifyResult> Verifier::Run() {
  const auto start = std::chrono::steady_clock::now();
  insn_budget_ = InsnBudgetAtVersion(opts_.version);
  stats_.prog_len = prog_.len();
  if (opts_.range_trace != nullptr) {
    opts_.range_trace->Reset(prog_.len());
  }

  XB_RETURN_IF_ERROR(CheckCfg());

  VerifierState init;
  init.frames.emplace_back();
  FuncState& frame = init.frames.back();
  frame.regs[R1] = RegState{};
  frame.regs[R1].type = RegType::kPtrToCtx;
  frame.regs[R1].var_off = TnumConst(0);
  frame.regs[R1].umin = frame.regs[R1].umax = 0;
  frame.regs[R1].smin = frame.regs[R1].smax = 0;
  frame.regs[R10].type = RegType::kPtrToStack;
  frame.regs[R10].var_off = TnumConst(0);
  frame.regs[R10].umin = frame.regs[R10].umax = 0;
  frame.regs[R10].smin = frame.regs[R10].smax = 0;

  XB_RETURN_IF_ERROR(VerifyEntry(0, std::move(init)));

  stats_.subprog_count = 1 + static_cast<u32>(subprog_starts_.size());
  stats_.verification_wall_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  VerifyResult result;
  result.stats = stats_;
  result.subprog_starts = subprog_starts_;
  result.callback_entries.assign(verified_callbacks_.begin(),
                                 verified_callbacks_.end());
  return result;
}

}  // namespace

xbase::Result<VerifyResult> Verify(const Program& prog, const MapTable& maps,
                                   const HelperRegistry& helpers,
                                   const VerifyOptions& options) {
  Verifier verifier(prog, maps, helpers, options);
  return verifier.Run();
}

}  // namespace ebpf

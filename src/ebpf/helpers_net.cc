// Networking helper suite: sk_buff manipulation, XDP adjustments, checksum
// plumbing, FIB lookup, and the reference-acquiring socket lookups whose
// leak bugs Table 1 counts.
#include <cstring>

#include "src/ebpf/helpers_internal.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

using simkern::Addr;
using simkern::SkBuffLayout;
using xbase::u16;
using xbase::usize;

namespace {

constexpr ArgType kA = ArgType::kAnything;
constexpr ArgType kMem = ArgType::kPtrToMem;
constexpr ArgType kUMem = ArgType::kPtrToUninitMem;
constexpr ArgType kSz = ArgType::kMemSize;
constexpr ArgType kCtxA = ArgType::kCtx;
constexpr ArgType kMapPtr = ArgType::kConstMapPtr;

struct Def {
  HelperWiring& wiring;

  xbase::Status operator()(
      HelperSpec spec,
      std::initializer_list<std::pair<const char*, usize>> links,
      HelperFn fn) {
    if (spec.entry_func.empty()) {
      spec.entry_func = spec.name;
    }
    LinkHelperCallGraph(wiring.kernel, spec.entry_func, links);
    return wiring.registry.Register(std::move(spec), std::move(fn));
  }
};

HelperSpec MakeSpec(u32 id, const char* name,
                    simkern::KernelVersion version,
                    std::initializer_list<ArgType> args, RetType ret,
                    u64 cost_ns = simkern::kCostHelperCallNs) {
  HelperSpec spec;
  spec.id = id;
  spec.name = name;
  spec.introduced = version;
  int i = 0;
  for (ArgType arg : args) {
    spec.args[i++] = arg;
  }
  spec.ret = ret;
  spec.cost_ns = cost_ns;
  // Everything in this file touches packets or sockets; the family tag
  // keeps the suite out of reach of sched_ext programs.
  spec.family = HelperFamily::kNet;
  return spec;
}

// sk_buff metadata accessors (ctx points at the SkBuffLayout block).
xbase::Result<u32> SkbLen(HelperCtx& ctx, Addr skb) {
  return ctx.kernel.mem().ReadU32(skb + SkBuffLayout::kLen);
}
xbase::Result<Addr> SkbData(HelperCtx& ctx, Addr skb) {
  return ctx.kernel.mem().ReadU64(skb + SkBuffLayout::kDataPtr);
}
xbase::Status SetSkbLen(HelperCtx& ctx, Addr skb, u32 len) {
  XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(skb + SkBuffLayout::kLen,
                                               len));
  XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, skb));
  return ctx.kernel.mem().WriteU64(skb + SkBuffLayout::kDataEndPtr,
                                   data + len);
}

// Tuple layout read by the sk_lookup helpers (bpf_sock_tuple, IPv4 form).
struct TupleLayout {
  static constexpr usize kSrcIp = 0;
  static constexpr usize kDstIp = 4;
  static constexpr usize kSrcPort = 8;
  static constexpr usize kDstPort = 10;
  static constexpr usize kSize = 12;
};

xbase::Result<u64> SkLookup(HelperCtx& ctx, const HelperArgs& a,
                            u32 protocol) {
  if (a[2] < TupleLayout::kSize) {
    return NegErrno(kEInval);
  }
  XB_ASSIGN_OR_RETURN(const std::vector<u8> raw,
                      ReadMem(ctx.kernel, a[1], TupleLayout::kSize));
  simkern::SockTuple tuple;
  tuple.src_ip = xbase::LoadLe32(raw.data() + TupleLayout::kSrcIp);
  tuple.dst_ip = xbase::LoadLe32(raw.data() + TupleLayout::kDstIp);
  tuple.src_port = xbase::LoadLe16(raw.data() + TupleLayout::kSrcPort);
  tuple.dst_port = xbase::LoadLe16(raw.data() + TupleLayout::kDstPort);

  const auto sock = ctx.kernel.net().Lookup(tuple);
  if (!sock.has_value() || sock->protocol != protocol) {
    return 0;  // NULL
  }
  // The caller now owns a reference; the verifier (v4.20+) tracks it.
  XB_RETURN_IF_ERROR(
      ctx.kernel.Route(ctx.kernel.objects().Acquire(sock->object_id)));
  if (ctx.hooks != nullptr) {
    ctx.hooks->NoteAcquire(sock->object_id);
  }
  if (ctx.faults.IsActive(kFaultHelperSkLookupLeak)) {
    // Commit 3046a827316c: the lookup path internally creates a
    // request_sock and forgets to put it. Invisible to the program and to
    // the verifier — only the refcount audit sees it.
    const simkern::ObjectId leak = ctx.kernel.objects().Create(
        simkern::ObjectType::kRequestSock, "leaked-request-sock");
    (void)leak;
  }
  return sock->struct_addr;
}

}  // namespace

xbase::Status RegisterNetHelpers(HelperWiring& wiring) {
  Def def{wiring};
  std::shared_ptr<HelperState> state = wiring.state;

  // --- skb byte access -----------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbStoreBytes, "bpf_skb_store_bytes", {4, 1},
               {kCtxA, kA, kMem, kSz, kA}, RetType::kInteger, 80),
      {{"net_core", 600}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
        if (a[1] + a[3] > len) {
          return NegErrno(kEFault);
        }
        XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> bytes,
                            ReadMem(ctx.kernel, a[2], a[3]));
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, data + a[1], bytes));
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbLoadBytes, "bpf_skb_load_bytes", {4, 5},
               {kCtxA, kA, kUMem, kSz}, RetType::kInteger, 60),
      {{"net_core", 25}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
        if (a[1] + a[3] > len) {
          return NegErrno(kEFault);
        }
        XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> bytes,
                            ReadMem(ctx.kernel, data + a[1], a[3]));
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[2], bytes));
        return 0;
      }));

  // --- checksums --------------------------------------------------------------
  const auto csum_replace = [](HelperCtx& ctx,
                               const HelperArgs& a) -> xbase::Result<u64> {
    XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
    if (a[1] + 2 > len) {
      return NegErrno(kEFault);
    }
    XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
    XB_ASSIGN_OR_RETURN(const std::vector<u8> cur,
                        ReadMem(ctx.kernel, data + a[1], 2));
    const u16 old_sum = xbase::LoadLe16(cur.data());
    const u16 new_sum = static_cast<u16>(
        old_sum ^ static_cast<u16>(a[2]) ^ static_cast<u16>(a[3]));
    u8 out[2];
    xbase::StoreLe16(out, new_sum);
    XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, data + a[1], out));
    return 0;
  };
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperL3CsumReplace, "bpf_l3_csum_replace", {4, 1},
               {kCtxA, kA, kA, kA, kA}, RetType::kInteger, 60),
      {{"net_core", 550}}, csum_replace));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperL4CsumReplace, "bpf_l4_csum_replace", {4, 1},
               {kCtxA, kA, kA, kA, kA}, RetType::kInteger, 60),
      {{"net_core", 560}}, csum_replace));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperCsumDiff, "bpf_csum_diff", {4, 6},
               {kMem, kSz, kMem, kSz, kA}, RetType::kInteger, 60),
      {{"util", 6}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const std::vector<u8> from,
                            ReadMem(ctx.kernel, a[0],
                                    std::min<u64>(a[1], 512)));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> to,
                            ReadMem(ctx.kernel, a[2],
                                    std::min<u64>(a[3], 512)));
        u64 csum = a[4];
        for (u8 byte : from) {
          csum -= byte;
        }
        for (u8 byte : to) {
          csum += byte;
        }
        return csum & 0xffff;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperCsumLevel, "bpf_csum_level", {5, 7}, {kCtxA, kA},
               RetType::kInteger),
      {{"net_core", 25}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));

  // --- redirection -------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperCloneRedirect, "bpf_clone_redirect", {4, 2},
               {kCtxA, kA, kA}, RetType::kInteger, 400),
      {{"net_core", 900}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        ctx.kernel.Printk(xbase::StrFormat(
            "bpf_clone_redirect -> ifindex %llu",
            static_cast<unsigned long long>(a[1])));
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperRedirect, "bpf_redirect", {4, 4}, {kA, kA},
               RetType::kInteger, 100),
      {{"net_core", 700}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 7;  // TC_ACT_REDIRECT
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetRouteRealm, "bpf_get_route_realm", {4, 4}, {kCtxA},
               RetType::kInteger),
      {{"net_core", 15}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));

  // --- VLAN / shape changes -------------------------------------------------------
  {
    HelperSpec spec = MakeSpec(kHelperSkbVlanPush, "bpf_skb_vlan_push",
                               {4, 3}, {kCtxA, kA, kA}, RetType::kInteger,
                               120);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 650}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
          XB_RETURN_IF_ERROR(SetSkbLen(ctx, a[0], len + 4));
          XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
              a[0] + SkBuffLayout::kProtocol, 0x8100));
          return 0;
        }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperSkbVlanPop, "bpf_skb_vlan_pop",
                               {4, 3}, {kCtxA}, RetType::kInteger, 120);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 640}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
          if (len < 4) {
            return NegErrno(kEInval);
          }
          XB_RETURN_IF_ERROR(SetSkbLen(ctx, a[0], len - 4));
          XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
              a[0] + SkBuffLayout::kProtocol, 0x0800));
          return 0;
        }));
  }

  // --- tunnels ----------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbGetTunnelKey, "bpf_skb_get_tunnel_key", {4, 3},
               {kCtxA, kUMem, kSz, kA}, RetType::kInteger),
      {{"net_core", 200}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        std::vector<u8> key(std::min<u64>(a[2], 16), 0);
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[1], key));
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbSetTunnelKey, "bpf_skb_set_tunnel_key", {4, 3},
               {kCtxA, kMem, kSz, kA}, RetType::kInteger),
      {{"net_core", 620}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const std::vector<u8> key,
                            ReadMem(ctx.kernel, a[1],
                                    std::min<u64>(a[2], 16)));
        XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
            a[0] + SkBuffLayout::kMark,
            key.size() >= 4 ? xbase::LoadLe32(key.data()) : 0));
        return 0;
      }));

  // --- protocol / type / room ----------------------------------------------------------
  {
    HelperSpec spec = MakeSpec(kHelperSkbChangeProto, "bpf_skb_change_proto",
                               {4, 8}, {kCtxA, kA, kA}, RetType::kInteger,
                               200);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 630}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
              a[0] + SkBuffLayout::kProtocol, static_cast<u32>(a[1])));
          return 0;
        }));
  }
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbChangeType, "bpf_skb_change_type", {4, 8},
               {kCtxA, kA}, RetType::kInteger),
      {{"util", 2}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkbUnderCgroup, "bpf_skb_under_cgroup", {4, 8},
               {kCtxA, kMapPtr, kA}, RetType::kInteger),
      {{"cgroup", 120}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 1;
      }));
  {
    HelperSpec spec = MakeSpec(kHelperSkbChangeTail, "bpf_skb_change_tail",
                               {4, 9}, {kCtxA, kA, kA}, RetType::kInteger,
                               200);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 660}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
          const simkern::Region* region =
              ctx.kernel.mem().FindRegionContaining(data);
          if (region == nullptr || a[1] > region->size) {
            return NegErrno(kEInval);
          }
          XB_RETURN_IF_ERROR(SetSkbLen(ctx, a[0],
                                       static_cast<u32>(a[1])));
          return 0;
        }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperSkbPullData, "bpf_skb_pull_data",
                               {4, 9}, {kCtxA, kA}, RetType::kInteger, 150);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(std::move(spec), {{"net_core", 610}},
                           [](HelperCtx&, const HelperArgs&)
                               -> xbase::Result<u64> { return 0; }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperSkbAdjustRoom, "bpf_skb_adjust_room",
                               {4, 14}, {kCtxA, kA, kA, kA},
                               RetType::kInteger, 250);
    spec.changes_packet_data = true;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 670}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
          const s64 delta = static_cast<s64>(a[1]);
          if (delta < 0 && static_cast<u64>(-delta) > len) {
            return NegErrno(kEInval);
          }
          XB_RETURN_IF_ERROR(
              SetSkbLen(ctx, a[0], static_cast<u32>(len + delta)));
          return 0;
        }));
  }

  // --- hashes ------------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetHashRecalc, "bpf_get_hash_recalc", {4, 8}, {kCtxA},
               RetType::kInteger, 80),
      {{"net_core", 320}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const std::vector<u8> head,
                            ReadMem(ctx.kernel, data,
                                    std::min<u32>(len, 16)));
        return xbase::Fnv1a(head) & 0xffffffff;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSetHash, "bpf_set_hash", {4, 13}, {kCtxA, kA},
               RetType::kInteger),
      {{"util", 1}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
            a[0] + SkBuffLayout::kMark, static_cast<u32>(a[1])));
        return 0;
      }));

  // --- XDP ----------------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperXdpAdjustHead, "bpf_xdp_adjust_head", {4, 10},
               {kCtxA, kA}, RetType::kInteger, 100),
      {{"net_core", 18}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const s64 delta = static_cast<s64>(a[1]);
        XB_ASSIGN_OR_RETURN(const Addr data, SkbData(ctx, a[0]));
        XB_ASSIGN_OR_RETURN(const u32 len, SkbLen(ctx, a[0]));
        if (delta < 0 || static_cast<u64>(delta) >= len) {
          return NegErrno(kEInval);  // no headroom in the simulated buffer
        }
        XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU64(
            a[0] + SkBuffLayout::kDataPtr, data + delta));
        XB_RETURN_IF_ERROR(ctx.kernel.mem().WriteU32(
            a[0] + SkBuffLayout::kLen, len - static_cast<u32>(delta)));
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperXdpAdjustMeta, "bpf_xdp_adjust_meta", {4, 15},
               {kCtxA, kA}, RetType::kInteger),
      {{"net_core", 15}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));

  // --- sockets -----------------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetSocketCookie, "bpf_get_socket_cookie", {4, 12},
               {kCtxA}, RetType::kInteger),
      {{"inet", 12}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        return xbase::Fnv1a(xbase::AsBytes(a[0]));
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperGetSocketUid, "bpf_get_socket_uid", {4, 12}, {kCtxA},
               RetType::kInteger),
      {{"inet", 10}},
      [](HelperCtx&, const HelperArgs&) -> xbase::Result<u64> {
        return 0;
      }));
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSetsockopt, "bpf_setsockopt", {4, 13},
               {kCtxA, kA, kA, kMem, kSz}, RetType::kInteger, 300),
      {{"inet", 700}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        ctx.kernel.Printk(xbase::StrFormat(
            "bpf_setsockopt: level %llu opt %llu",
            static_cast<unsigned long long>(a[1]),
            static_cast<unsigned long long>(a[2])));
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperFibLookup, "bpf_fib_lookup", {4, 18},
               {kCtxA, kUMem, kSz, kA}, RetType::kInteger, 400),
      {{"net_core", 800}, {"inet", 200}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        if (a[2] < 8) {
          return NegErrno(kEInval);
        }
        u8 result[8];
        xbase::StoreLe32(result, 1);      // ifindex
        xbase::StoreLe32(result + 4, 0);  // BPF_FIB_LKUP_RET_SUCCESS
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[1], result));
        return 0;
      }));

  // --- socket lookups (v4.20, acquire/release discipline) -------------------------------
  {
    HelperSpec spec = MakeSpec(kHelperSkLookupTcp, "bpf_sk_lookup_tcp",
                               {4, 20}, {kCtxA, kMem, kSz, kA, kA},
                               RetType::kSockOrNull, 350);
    spec.acquires_ref = true;
    XB_RETURN_IF_ERROR(def(std::move(spec),
                           {{"inet", 750}, {"net_core", 150}},
                           [](HelperCtx& ctx, const HelperArgs& a) {
                             return SkLookup(ctx, a, 6);
                           }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperSkLookupUdp, "bpf_sk_lookup_udp",
                               {4, 20}, {kCtxA, kMem, kSz, kA, kA},
                               RetType::kSockOrNull, 350);
    spec.acquires_ref = true;
    XB_RETURN_IF_ERROR(def(std::move(spec),
                           {{"inet", 600}, {"net_core", 150}},
                           [](HelperCtx& ctx, const HelperArgs& a) {
                             return SkLookup(ctx, a, 17);
                           }));
  }
  {
    HelperSpec spec = MakeSpec(kHelperSkRelease, "bpf_sk_release", {4, 20},
                               {ArgType::kSock}, RetType::kInteger);
    spec.releases_ref_arg = 1;
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"inet", 20}},
        [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          auto sock = ctx.kernel.net().FindByAddr(a[0]);
          if (!sock.ok()) {
            return ctx.kernel.Route(
                xbase::KernelFault("bpf_sk_release of non-socket address"));
          }
          XB_RETURN_IF_ERROR(ctx.kernel.Route(
              ctx.kernel.objects().Release(sock.value().object_id)));
          if (ctx.hooks != nullptr) {
            ctx.hooks->NoteRelease(sock.value().object_id);
          }
          return 0;
        }));
  }

  // --- socket-local storage --------------------------------------------------------------
  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSkStorageGet, "bpf_sk_storage_get", {5, 2},
               {kMapPtr, ArgType::kSock, kA, kA}, RetType::kMapValueOrNull,
               simkern::kCostMapOpNs),
      {{"inet", 350}, {"mm", 160}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        XB_ASSIGN_OR_RETURN(Map* const map, ResolveMapArg(ctx, a[0]));
        if (map->spec().key_size != 8) {
          return NegErrno(kEInval);
        }
        if (a[1] == 0) {
          return 0;
        }
        u8 key[8];
        xbase::StoreLe64(key, a[1]);
        auto addr = map->LookupAddr(ctx.kernel, key);
        if (addr.ok()) {
          return addr.value();
        }
        if ((a[3] & 1) == 0) {
          return 0;
        }
        std::vector<u8> zero(map->spec().value_size, 0);
        const xbase::Status status =
            map->Update(ctx.kernel, key, zero, kBpfAny);
        if (!status.ok()) {
          return 0;
        }
        auto created = map->LookupAddr(ctx.kernel, key);
        return created.ok() ? created.value() : u64{0};
      }));

  return xbase::Status::Ok();
}

}  // namespace ebpf

#include "src/ebpf/helper.h"

#include <set>
#include <string>

#include "src/ebpf/helpers_internal.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

std::string_view HelperFamilyName(HelperFamily family) {
  switch (family) {
    case HelperFamily::kGeneric:
      return "generic";
    case HelperFamily::kNet:
      return "net";
    case HelperFamily::kSched:
      return "sched";
    case HelperFamily::kLsm:
      return "lsm";
  }
  return "unknown";
}

bool FamilyAdmitsProgType(HelperFamily family, ProgType type) {
  switch (family) {
    case HelperFamily::kGeneric:
      return true;
    case HelperFamily::kNet:
      // Decision-maker program types have no packet/socket to operate on.
      return type != ProgType::kSchedExt && type != ProgType::kLsm;
    case HelperFamily::kSched:
      return type == ProgType::kSchedExt;
    case HelperFamily::kLsm:
      return type == ProgType::kLsm;
  }
  return false;
}

bool ProgTypeRequiresPrivilege(ProgType type) {
  return type == ProgType::kSchedExt || type == ProgType::kLsm;
}

ProgType AdmittingProgType(HelperFamily family) {
  switch (family) {
    case HelperFamily::kSched:
      return ProgType::kSchedExt;
    case HelperFamily::kLsm:
      return ProgType::kLsm;
    case HelperFamily::kGeneric:
    case HelperFamily::kNet:
      break;
  }
  return ProgType::kSocketFilter;
}

xbase::Status HelperRegistry::Register(HelperSpec spec, HelperFn fn) {
  if (helpers_.contains(spec.id)) {
    return xbase::AlreadyExists(
        xbase::StrFormat("helper id %u already registered", spec.id));
  }
  const u32 id = spec.id;
  helpers_.emplace(id, Entry{std::move(spec), std::move(fn)});
  return xbase::Status::Ok();
}

xbase::Result<const HelperSpec*> HelperRegistry::FindSpec(u32 id) const {
  auto it = helpers_.find(id);
  if (it == helpers_.end()) {
    return xbase::NotFound(xbase::StrFormat("unknown helper id %u", id));
  }
  return &it->second.spec;
}

xbase::Result<const HelperFn*> HelperRegistry::FindFn(u32 id) const {
  auto it = helpers_.find(id);
  if (it == helpers_.end()) {
    return xbase::NotFound(xbase::StrFormat("unknown helper id %u", id));
  }
  return &it->second.fn;
}

std::vector<const HelperSpec*> HelperRegistry::AllSpecs() const {
  std::vector<const HelperSpec*> specs;
  specs.reserve(helpers_.size());
  for (const auto& [_, entry] : helpers_) {
    specs.push_back(&entry.spec);
  }
  return specs;
}

xbase::usize HelperRegistry::CountAtVersion(
    simkern::KernelVersion version) const {
  xbase::usize count = 0;
  for (const auto& [_, entry] : helpers_) {
    if (entry.spec.introduced <= version) {
      ++count;
    }
  }
  return count;
}

xbase::Status HelperRegistry::Validate() const {
  std::set<std::string> names;
  for (const auto& [id, entry] : helpers_) {
    const HelperSpec& spec = entry.spec;
    if (spec.id != id) {
      return xbase::Internal(xbase::StrFormat(
          "helper table drift: spec id %u stored under key %u", spec.id, id));
    }
    if (spec.name.empty()) {
      return xbase::Internal(
          xbase::StrFormat("helper %u has no name", spec.id));
    }
    if (!names.insert(spec.name).second) {
      return xbase::Internal(xbase::StrFormat(
          "helper %u reuses the name %s", spec.id, spec.name.c_str()));
    }
    if (spec.introduced == simkern::KernelVersion{}) {
      return xbase::Internal(xbase::StrFormat(
          "helper %s#%u has no introduction version (version gate would "
          "admit it everywhere)",
          spec.name.c_str(), spec.id));
    }
    if (spec.family != HelperFamily::kGeneric &&
        spec.family != HelperFamily::kNet &&
        spec.family != HelperFamily::kSched &&
        spec.family != HelperFamily::kLsm) {
      return xbase::Internal(xbase::StrFormat(
          "helper %s#%u has an unknown family %u (family gate undefined)",
          spec.name.c_str(), spec.id, static_cast<u32>(spec.family)));
    }
    if (spec.entry_func.empty()) {
      return xbase::Internal(xbase::StrFormat(
          "helper %s#%u has no call-graph entry function", spec.name.c_str(),
          spec.id));
    }
    bool seen_none = false;
    for (int i = 0; i < 5; ++i) {
      const ArgType arg = spec.args[i];
      if (arg == ArgType::kNone) {
        seen_none = true;
        continue;
      }
      if (seen_none) {
        return xbase::Internal(xbase::StrFormat(
            "helper %s#%u: argument %d follows a kNone gap",
            spec.name.c_str(), spec.id, i + 1));
      }
      // Note: no mem/size adjacency rule here — the registry legitimately
      // uses kMemSize as a bare byte-count scalar (bpf_ringbuf_reserve)
      // and mem pointers with fixed widths (bpf_strtol's out arg).
    }
  }
  return xbase::Status::Ok();
}

xbase::Status RegisterDefaultHelpers(HelperRegistry& registry,
                                     simkern::Kernel& kernel) {
  HelperWiring wiring{registry, kernel, std::make_shared<HelperState>()};
  XB_RETURN_IF_ERROR(RegisterCoreHelpers(wiring));
  XB_RETURN_IF_ERROR(RegisterNetHelpers(wiring));
  XB_RETURN_IF_ERROR(RegisterSchedHelpers(wiring));
  XB_RETURN_IF_ERROR(RegisterLsmHelpers(wiring));
  // The startup consistency assert: a malformed table must never reach the
  // verifier or the dispatch path (Bpf panics on any error here).
  return registry.Validate();
}

}  // namespace ebpf

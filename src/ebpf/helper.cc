#include "src/ebpf/helper.h"

#include "src/ebpf/helpers_internal.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

xbase::Status HelperRegistry::Register(HelperSpec spec, HelperFn fn) {
  if (helpers_.contains(spec.id)) {
    return xbase::AlreadyExists(
        xbase::StrFormat("helper id %u already registered", spec.id));
  }
  const u32 id = spec.id;
  helpers_.emplace(id, Entry{std::move(spec), std::move(fn)});
  return xbase::Status::Ok();
}

xbase::Result<const HelperSpec*> HelperRegistry::FindSpec(u32 id) const {
  auto it = helpers_.find(id);
  if (it == helpers_.end()) {
    return xbase::NotFound(xbase::StrFormat("unknown helper id %u", id));
  }
  return &it->second.spec;
}

xbase::Result<const HelperFn*> HelperRegistry::FindFn(u32 id) const {
  auto it = helpers_.find(id);
  if (it == helpers_.end()) {
    return xbase::NotFound(xbase::StrFormat("unknown helper id %u", id));
  }
  return &it->second.fn;
}

std::vector<const HelperSpec*> HelperRegistry::AllSpecs() const {
  std::vector<const HelperSpec*> specs;
  specs.reserve(helpers_.size());
  for (const auto& [_, entry] : helpers_) {
    specs.push_back(&entry.spec);
  }
  return specs;
}

xbase::usize HelperRegistry::CountAtVersion(
    simkern::KernelVersion version) const {
  xbase::usize count = 0;
  for (const auto& [_, entry] : helpers_) {
    if (entry.spec.introduced <= version) {
      ++count;
    }
  }
  return count;
}

xbase::Status RegisterDefaultHelpers(HelperRegistry& registry,
                                     simkern::Kernel& kernel) {
  HelperWiring wiring{registry, kernel, std::make_shared<HelperState>()};
  XB_RETURN_IF_ERROR(RegisterCoreHelpers(wiring));
  XB_RETURN_IF_ERROR(RegisterNetHelpers(wiring));
  XB_RETURN_IF_ERROR(RegisterSchedHelpers(wiring));
  return xbase::Status::Ok();
}

}  // namespace ebpf

// Scheduler helper suite (sched_ext family, v6.12). These are the runqueue
// primitives a pick-next extension composes its policy from: enumerate the
// runnable set, inspect waits, reorder the queue, and hand control back.
// Real kernels expose the equivalents as kfuncs; we model them as a
// versioned helper family so the Figure 3/4 census machinery sees them like
// any other helper. All are HelperFamily::kSched — callable only from
// sched_ext programs, which in turn only privileged loaders may install.
//
// Four injectable defects live here, all below the verifier's horizon: a
// verified pick policy still stalls, starves, misdirects or crashes the
// scheduler when the helper underneath is buggy.
#include <algorithm>
#include <vector>

#include "src/ebpf/helpers_internal.h"
#include "src/simkern/sched.h"
#include "src/xbase/bytes.h"

namespace ebpf {

using simkern::KernelVersion;
using xbase::usize;

namespace {

// Registration shorthand (mirrors helpers_core.cc).
struct Def {
  HelperWiring& wiring;

  xbase::Status operator()(
      HelperSpec spec,
      std::initializer_list<std::pair<const char*, usize>> links,
      HelperFn fn) {
    if (spec.entry_func.empty()) {
      spec.entry_func = spec.name;
    }
    LinkHelperCallGraph(wiring.kernel, spec.entry_func, links);
    return wiring.registry.Register(std::move(spec), std::move(fn));
  }
};

HelperSpec MakeSpec(u32 id, const char* name,
                    std::initializer_list<ArgType> args, RetType ret,
                    u64 cost_ns = simkern::kCostHelperCallNs) {
  HelperSpec spec;
  spec.id = id;
  spec.name = name;
  spec.introduced = KernelVersion{6, 12};  // sched_ext merge window
  spec.family = HelperFamily::kSched;
  int i = 0;
  for (ArgType arg : args) {
    spec.args[i++] = arg;
  }
  spec.ret = ret;
  spec.cost_ns = cost_ns;
  return spec;
}

constexpr ArgType kA = ArgType::kAnything;

// The runnable set as the enumeration helpers expose it. Under the
// runnable-filter defect the newest task (highest pid) is silently dropped
// from every enumeration, so any policy that picks from what it can see
// starves that task indefinitely — the queue itself still holds it, which
// is exactly why the supervisor's starvation detector (which reads the
// queue, not the helpers) can catch the lie.
std::vector<u32> VisiblePids(HelperCtx& ctx) {
  const simkern::RunQueue& rq = ctx.kernel.runqueue();
  std::vector<u32> pids;
  pids.reserve(rq.runnable_count());
  for (usize i = 0; i < rq.runnable_count(); ++i) {
    pids.push_back(rq.PidAt(i).value());
  }
  if (ctx.faults.IsActive(kFaultSchedRunnableFilter) && !pids.empty()) {
    const u32 hidden = *std::max_element(pids.begin(), pids.end());
    std::erase(pids, hidden);
  }
  return pids;
}

}  // namespace

xbase::Status RegisterSchedHelpers(HelperWiring& wiring) {
  Def def{wiring};

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedNrRunnable, "bpf_sched_nr_runnable", {},
               RetType::kInteger),
      {{"task", 2}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        return VisiblePids(ctx).size();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedPeekPid, "bpf_sched_peek_pid", {kA},
               RetType::kInteger),
      {{"task", 3}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        if (ctx.faults.IsActive(kFaultSchedPickInvalidPid)) {
          // The defect: a cached pid from a previous enumeration whose task
          // has since exited. The policy steers the scheduler at freed
          // state; containment must catch the dead pid at dispatch.
          return 0xdead;
        }
        const std::vector<u32> pids = VisiblePids(ctx);
        if (a[0] >= pids.size()) {
          return static_cast<u64>(-1);
        }
        // Serve the pid from the task_struct itself, not the queue entry —
        // the helper walks real kernel bytes like its kfunc counterpart.
        auto task = ctx.kernel.tasks().FindByPid(pids[a[0]]);
        if (!task.ok()) {
          return static_cast<u64>(-1);
        }
        XB_ASSIGN_OR_RETURN(
            const std::vector<u8> raw,
            ReadMem(ctx.kernel,
                    task.value()->struct_addr + simkern::TaskLayout::kPid,
                    4));
        return xbase::LoadLe32(raw.data());
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedWaitNs, "bpf_sched_wait_ns", {kA},
               RetType::kInteger),
      {{"task", 2}, {"timekeeping", 1}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        if (ctx.faults.IsActive(kFaultSchedCrashOnPick)) {
          // The defect: the queue entry is mid-update and the helper walks
          // a NULL task_struct. Address 0x10 is in the guard page, so the
          // checked read routes to an oops on the pick path.
          XB_RETURN_IF_ERROR(
              ReadMem(ctx.kernel, simkern::TaskLayout::kPid + 0x10, 4)
                  .status());
        }
        auto wait = ctx.kernel.runqueue().WaitNs(
            static_cast<u32>(a[0]), ctx.kernel.clock().now_ns());
        if (!wait.ok()) {
          return static_cast<u64>(-1);
        }
        return wait.value();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedEnqueue, "bpf_sched_enqueue", {kA},
               RetType::kInteger),
      {{"task", 4}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const u32 pid = static_cast<u32>(a[0]);
        if (!ctx.kernel.tasks().FindByPid(pid).ok()) {
          return NegErrno(kESrch);
        }
        const xbase::Status status = ctx.kernel.runqueue().Enqueue(
            pid, ctx.kernel.clock().now_ns());
        if (status.code() == xbase::Code::kAlreadyExists) {
          return NegErrno(kEExist);
        }
        XB_RETURN_IF_ERROR(status);
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedDequeue, "bpf_sched_dequeue", {kA},
               RetType::kInteger),
      {{"task", 4}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        const xbase::Status status =
            ctx.kernel.runqueue().Dequeue(static_cast<u32>(a[0]));
        if (status.code() == xbase::Code::kNotFound) {
          return NegErrno(kENoEnt);
        }
        XB_RETURN_IF_ERROR(status);
        return 0;
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedPickDefault, "bpf_sched_pick_default", {},
               RetType::kInteger),
      {{"task", 3}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        if (ctx.faults.IsActive(kFaultSchedStallLoop) &&
            ctx.hooks != nullptr) {
          // The defect: the helper spins over a corrupted dispatch list,
          // burning far past any pick deadline before returning. The
          // watchdog, not the verifier, is the only thing that sees this.
          ctx.hooks->Charge(10 * simkern::kNsPerMs);
        }
        auto pick = ctx.kernel.runqueue().PickDefault();
        if (!pick.ok()) {
          return static_cast<u64>(-1);
        }
        return pick.value();
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperSchedYield, "bpf_sched_yield", {}, RetType::kInteger),
      {{"task", 1}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        ctx.kernel.runqueue().RequestYield();
        return 0;
      }));

  return xbase::Status::Ok();
}

}  // namespace ebpf

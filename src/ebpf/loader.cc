#include "src/ebpf/loader.h"

#include <chrono>
#include <limits>
#include <string>

#include "src/xbase/strfmt.h"

namespace ebpf {

namespace {

u64 ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - since)
                              .count());
}

}  // namespace

xbase::Status StaticcheckGate(
    xbase::usize error_count,
    const std::vector<staticcheck::Finding>& findings) {
  if (error_count == 0) {
    return xbase::Status::Ok();
  }
  for (const staticcheck::Finding& finding : findings) {
    if (finding.severity == staticcheck::Severity::kError) {
      return xbase::Rejected(xbase::StrFormat(
          "staticcheck prepass: pc %u: %s: %s", finding.pc,
          finding.rule.c_str(), finding.message.c_str()));
    }
  }
  // The report claims errors but lists none with error severity. The old
  // load path fell through here and admitted the program — a failing
  // prepass silently ignored. Fail closed instead.
  return xbase::Rejected(xbase::StrFormat(
      "staticcheck prepass: report counts %zu error(s) but lists no "
      "error-severity finding; rejecting (inconsistent report)",
      error_count));
}

xbase::Result<PreparedLoad> Loader::Prepare(const Program& prog,
                                            const LoadOptions& options,
                                            PrepareTimes* times) const {
  simkern::Kernel& kernel = bpf_.kernel();
  if (!options.privileged && kernel.config().unprivileged_bpf_disabled) {
    // The v5.15+ default the paper cites [22]: the community no longer
    // trusts the verifier enough to expose it to unprivileged users.
    return xbase::PermissionDenied(
        "unprivileged BPF is disabled (kernel.unprivileged_bpf_disabled=1)");
  }
  if (ProgTypeRequiresPrivilege(prog.type) && !options.privileged) {
    // Installing a decision-maker is a root-only operation regardless of
    // the unprivileged-bpf sysctl: a pick policy controls every task's CPU,
    // an lsm policy every open() verdict.
    return xbase::PermissionDenied(
        xbase::StrFormat("%s programs require a privileged loader",
                         ProgTypeName(prog.type).data()));
  }

  // Per-pc in-bounds claims the JIT consumes for check elision. mem_only
  // keeps the recording cheap on the load path (no per-pc register ranges,
  // just one MemClaim per instruction). Claims are AND-ed across paths and
  // fail closed: an instruction the analysis never saw keeps its check.
  RangeTrace elide_trace;
  elide_trace.mem_only = true;
  RangeTrace prepass_trace;
  prepass_trace.mem_only = true;

  if (options.staticcheck_prepass) {
    const auto prepass_start = std::chrono::steady_clock::now();
    staticcheck::CheckOptions copts;
    copts.maps = &bpf_.maps();
    copts.helpers = &bpf_.helpers();
    if (options.elide_checks) {
      copts.range_trace = &prepass_trace;
    }
    XB_ASSIGN_OR_RETURN(staticcheck::Report prepass,
                        staticcheck::RunChecks(prog, copts));
    if (times != nullptr) {
      times->prepass_ran = true;
      times->prepass_ns = ElapsedNs(prepass_start);
    }
    XB_RETURN_IF_ERROR(StaticcheckGate(prepass.errors(), prepass.findings));
  }

  VerifyOptions vopts;
  vopts.version = options.version_override.value_or(kernel.version());
  vopts.privileged = options.privileged;
  vopts.faults = &bpf_.faults();
  vopts.kfuncs = &bpf_.kfuncs();
  if (options.elide_checks) {
    vopts.range_trace = &elide_trace;
  }

  const auto verify_start = std::chrono::steady_clock::now();
  XB_ASSIGN_OR_RETURN(VerifyResult verify,
                      Verify(prog, bpf_.maps(), bpf_.helpers(), vopts));
  if (times != nullptr) {
    times->verify_ns = ElapsedNs(verify_start);
  }

  const auto jit_start = std::chrono::steady_clock::now();
  // The lowering re-checks every helper call site against the contract at
  // the same version the verifier used — independent enforcement, so a
  // gate the verifier dropped still denies at dispatch.
  // Elision requires the verifier's claim; when the staticcheck prepass ran
  // it must agree (two independent provers, defense in depth).
  JitClaims jit_claims;
  jit_claims.verifier = &elide_trace;
  jit_claims.staticcheck = options.staticcheck_prepass ? &prepass_trace : nullptr;
  XB_ASSIGN_OR_RETURN(
      JitImage jit,
      JitCompile(prog, bpf_.faults(), &bpf_.helpers(), &bpf_.kfuncs(),
                 &vopts.version,
                 options.elide_checks ? &jit_claims : nullptr));
  if (times != nullptr) {
    times->jit_ns = ElapsedNs(jit_start);
  }

  PreparedLoad prepared;
  prepared.source = prog;
  prepared.image = std::move(jit.image);
  prepared.decoded = std::move(jit.decoded);
  prepared.verify = std::move(verify);
  prepared.jit = jit.stats;
  return prepared;
}

xbase::Result<u32> Loader::Install(PreparedLoad prepared) {
  LoadedProgram loaded;
  loaded.source = std::move(prepared.source);
  loaded.image = std::move(prepared.image);
  loaded.decoded = std::move(prepared.decoded);
  loaded.verify = std::move(prepared.verify);
  loaded.jit = prepared.jit;

  const std::string name = loaded.source.name;
  const ProgType type = loaded.source.type;
  const u32 len = loaded.source.len();
  const u64 insns_processed = loaded.verify.stats.insns_processed;
  const u64 states_explored = loaded.verify.stats.states_explored;

  u32 id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The id space is 32-bit minus the reserved 0. Guard against genuine
    // exhaustion, then scan past still-loaded ids: after 2^32 loads the
    // counter wraps and must not hand out an id that is still in use (the
    // old code blindly assigned next_id_++, so a wrapped counter could
    // alias a live program and corrupt the table).
    if (progs_.size() >= std::numeric_limits<u32>::max() - 1) {
      return xbase::ResourceExhausted("program id space exhausted");
    }
    u32 candidate = next_id_;
    for (;;) {
      if (candidate == 0) {
        candidate = 1;  // id 0 is never valid (matches the kernel's idr)
      }
      if (!progs_.contains(candidate)) {
        break;
      }
      ++candidate;
    }
    id = candidate;
    next_id_ = candidate + 1;
    loaded.id = id;
    progs_.emplace(id, std::move(loaded));
  }

  bpf_.kernel().Printk(xbase::StrFormat(
      "bpf: prog %u (%s) loaded, type %s, %u insns, verifier processed "
      "%llu insns / %llu states",
      id, name.c_str(), ProgTypeName(type).data(), len,
      static_cast<unsigned long long>(insns_processed),
      static_cast<unsigned long long>(states_explored)));
  return id;
}

xbase::Result<u32> Loader::Load(const Program& prog,
                                const LoadOptions& options) {
  XB_ASSIGN_OR_RETURN(PreparedLoad prepared, Prepare(prog, options));
  return Install(std::move(prepared));
}

xbase::Result<const LoadedProgram*> Loader::Find(u32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = progs_.find(id);
  if (it == progs_.end()) {
    return xbase::NotFound(xbase::StrFormat("no loaded program id %u", id));
  }
  return &it->second;
}

xbase::Status Loader::Unload(u32 id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = progs_.find(id);
    if (it == progs_.end()) {
      return xbase::NotFound(xbase::StrFormat("no loaded program id %u", id));
    }
    if (it->second.attach_count > 0) {
      // Live attachments still reference this program; erasing it would
      // leave the hook firing a dangling id. Mirror the kernel: the prog
      // stays until the last reference (attachment) is dropped.
      return xbase::FailedPrecondition(xbase::StrFormat(
          "prog %u has %u live attachment(s); detach before unload", id,
          it->second.attach_count));
    }
    progs_.erase(it);
  }
  bpf_.kernel().Printk(xbase::StrFormat("bpf: prog %u unloaded", id));
  return xbase::Status::Ok();
}

xbase::Status Loader::Pin(u32 id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = progs_.find(id);
  if (it == progs_.end()) {
    return xbase::NotFound(xbase::StrFormat("no loaded program id %u", id));
  }
  ++it->second.attach_count;
  return xbase::Status::Ok();
}

void Loader::Unpin(u32 id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = progs_.find(id);
  if (it != progs_.end() && it->second.attach_count > 0) {
    --it->second.attach_count;
  }
}

xbase::usize Loader::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progs_.size();
}

void Loader::SetNextIdForTest(u32 next_id) {
  std::lock_guard<std::mutex> lock(mu_);
  next_id_ = next_id;
}

}  // namespace ebpf

#include "src/ebpf/loader.h"

#include "src/staticcheck/check.h"
#include "src/xbase/strfmt.h"

namespace ebpf {

xbase::Result<u32> Loader::Load(const Program& prog,
                                const LoadOptions& options) {
  simkern::Kernel& kernel = bpf_.kernel();
  if (!options.privileged && kernel.config().unprivileged_bpf_disabled) {
    // The v5.15+ default the paper cites [22]: the community no longer
    // trusts the verifier enough to expose it to unprivileged users.
    return xbase::PermissionDenied(
        "unprivileged BPF is disabled (kernel.unprivileged_bpf_disabled=1)");
  }

  if (options.staticcheck_prepass) {
    staticcheck::CheckOptions copts;
    copts.maps = &bpf_.maps();
    copts.helpers = &bpf_.helpers();
    XB_ASSIGN_OR_RETURN(staticcheck::Report prepass,
                        staticcheck::RunChecks(prog, copts));
    if (prepass.errors() > 0) {
      for (const staticcheck::Finding& finding : prepass.findings) {
        if (finding.severity == staticcheck::Severity::kError) {
          return xbase::Rejected(xbase::StrFormat(
              "staticcheck prepass: pc %u: %s: %s", finding.pc,
              finding.rule.c_str(), finding.message.c_str()));
        }
      }
    }
  }

  VerifyOptions vopts;
  vopts.version = options.version_override.value_or(kernel.version());
  vopts.privileged = options.privileged;
  vopts.faults = &bpf_.faults();
  vopts.kfuncs = &bpf_.kfuncs();

  XB_ASSIGN_OR_RETURN(VerifyResult verify,
                      Verify(prog, bpf_.maps(), bpf_.helpers(), vopts));
  XB_ASSIGN_OR_RETURN(JitImage jit, JitCompile(prog, bpf_.faults()));

  LoadedProgram loaded;
  loaded.id = next_id_++;
  loaded.source = prog;
  loaded.image = std::move(jit.image);
  loaded.verify = std::move(verify);
  loaded.jit = jit.stats;

  kernel.Printk(xbase::StrFormat(
      "bpf: prog %u (%s) loaded, type %s, %u insns, verifier processed "
      "%llu insns / %llu states",
      loaded.id, prog.name.c_str(), ProgTypeName(prog.type).data(),
      prog.len(),
      static_cast<unsigned long long>(loaded.verify.stats.insns_processed),
      static_cast<unsigned long long>(loaded.verify.stats.states_explored)));

  const u32 id = loaded.id;
  progs_.emplace(id, std::move(loaded));
  return id;
}

xbase::Result<const LoadedProgram*> Loader::Find(u32 id) const {
  auto it = progs_.find(id);
  if (it == progs_.end()) {
    return xbase::NotFound(xbase::StrFormat("no loaded program id %u", id));
  }
  return &it->second;
}

xbase::Status Loader::Unload(u32 id) {
  if (progs_.erase(id) == 0) {
    return xbase::NotFound(xbase::StrFormat("no loaded program id %u", id));
  }
  bpf_.kernel().Printk(xbase::StrFormat("bpf: prog %u unloaded", id));
  return xbase::Status::Ok();
}

}  // namespace ebpf

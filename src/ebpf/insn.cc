#include "src/ebpf/insn.h"

namespace ebpf {

std::string_view AluOpName(u8 op) {
  switch (op) {
    case BPF_ADD:
      return "add";
    case BPF_SUB:
      return "sub";
    case BPF_MUL:
      return "mul";
    case BPF_DIV:
      return "div";
    case BPF_OR:
      return "or";
    case BPF_AND:
      return "and";
    case BPF_LSH:
      return "lsh";
    case BPF_RSH:
      return "rsh";
    case BPF_NEG:
      return "neg";
    case BPF_MOD:
      return "mod";
    case BPF_XOR:
      return "xor";
    case BPF_MOV:
      return "mov";
    case BPF_ARSH:
      return "arsh";
    case BPF_END:
      return "end";
  }
  return "alu?";
}

std::string_view JmpOpName(u8 op) {
  switch (op) {
    case BPF_JA:
      return "ja";
    case BPF_JEQ:
      return "jeq";
    case BPF_JGT:
      return "jgt";
    case BPF_JGE:
      return "jge";
    case BPF_JSET:
      return "jset";
    case BPF_JNE:
      return "jne";
    case BPF_JSGT:
      return "jsgt";
    case BPF_JSGE:
      return "jsge";
    case BPF_CALL:
      return "call";
    case BPF_EXIT:
      return "exit";
    case BPF_JLT:
      return "jlt";
    case BPF_JLE:
      return "jle";
    case BPF_JSLT:
      return "jslt";
    case BPF_JSLE:
      return "jsle";
  }
  return "jmp?";
}

}  // namespace ebpf

// Fault injection: named, individually switchable defects in the verifier,
// helpers and JIT. Table 1 of the paper is a census of bugs found in
// shipping kernels during 2021-2022; this registry makes one representative
// bug per category *executable*, so the benches can demonstrate the causal
// chain the paper argues: defect present -> verified program passes -> safety
// property violated at runtime.
#pragma once

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/xbase/types.h"

namespace ebpf {

// Known defect identifiers. Components and categories line up with the rows
// and columns of Table 1.
inline constexpr std::string_view kFaultVerifierScalarBounds =
    "verifier.scalar_bounds";  // arbitrary r/w (CVE-2022-23222 class)
inline constexpr std::string_view kFaultVerifierPtrLeak =
    "verifier.ptr_leak_check";  // kernel pointer leak
inline constexpr std::string_view kFaultVerifierJmp32Bounds =
    "verifier.jmp32_bounds";  // out-of-bounds (commit 3844d153 class)
inline constexpr std::string_view kFaultVerifierAlu32BoundsTrunc =
    "verifier.alu32_bounds_trunc";  // ALU32 bound wrap (CVE-2020-8835 class)
inline constexpr std::string_view kFaultVerifierSignExtConfusion =
    "verifier.sign_ext_confusion";  // mov32 sext (CVE-2017-16995 class)
inline constexpr std::string_view kFaultVerifierJgtOffByOne =
    "verifier.jgt_refine_off_by_one";  // JGT fall-through over-refinement
inline constexpr std::string_view kFaultVerifierRegRegOffByOne =
    "verifier.reg_reg_refine_off_by_one";  // relational refine too tight
inline constexpr std::string_view kFaultVerifierSpillWidth =
    "verifier.spill_width_confusion";  // narrow overwrite keeps stale spill
inline constexpr std::string_view kFaultVerifierPktRangeStale =
    "verifier.pkt_range_stale_helper";  // pkt range survives mutating helper
inline constexpr std::string_view kFaultVerifierTnumMulPrecision =
    "verifier.tnum_mul_precision";  // tnum mul drops uncertainty
inline constexpr std::string_view kFaultVerifierSpinLock =
    "verifier.spin_lock_tracking";  // deadlock
inline constexpr std::string_view kFaultVerifierLoopInlineUaf =
    "verifier.loop_inline_uaf";  // use-after-free in the verifier itself
inline constexpr std::string_view kFaultVerifierStateLeak =
    "verifier.state_leak";  // memory leak in the verifier
inline constexpr std::string_view kFaultVerifierRefTracking =
    "verifier.ref_tracking";  // reference tracking disabled
inline constexpr std::string_view kFaultHelperTaskStackLeak =
    "helper.get_task_stack.refcount_leak";  // commit 06ab134c class
inline constexpr std::string_view kFaultHelperSkLookupLeak =
    "helper.sk_lookup.request_sock_leak";  // commit 3046a827 class
inline constexpr std::string_view kFaultHelperArrayOverflow =
    "helper.array_index_overflow";  // commit 87ac0d60 class
inline constexpr std::string_view kFaultHelperTaskStorageNull =
    "helper.task_storage.null_owner";  // commit 1a9c72ad class
inline constexpr std::string_view kFaultJitBranchOffByOne =
    "jit.branch_off_by_one";  // CVE-2021-29154 class
inline constexpr std::string_view kFaultJitElideUnproven =
    "jit.elide_unproven";  // bounds check dropped without an analysis proof
// Scheduler-helper defects (sched_ext family). All four live *below* the
// verifier's horizon — a verified pick policy still stalls, starves,
// misdirects or crashes the scheduler when the helper underneath is buggy.
inline constexpr std::string_view kFaultSchedStallLoop =
    "sched.helper_stall_loop";  // pick path burns unbounded CPU time
inline constexpr std::string_view kFaultSchedPickInvalidPid =
    "sched.helper_pick_invalid_pid";  // stale pid of an exited task
inline constexpr std::string_view kFaultSchedRunnableFilter =
    "sched.helper_runnable_filter";  // enumeration hides one runnable task
inline constexpr std::string_view kFaultSchedCrashOnPick =
    "sched.helper_crash_on_pick";  // NULL task walk on the pick path
// Missing-permission-check defects: each drops one layer's enforcement of
// the helper access-control contract (family / version / dispatch), so the
// permcheck census must detect the gap and attribute it to the right layer.
inline constexpr std::string_view kFaultVerifierFamilyGateSkip =
    "verifier.helper_family_gate_skip";  // family gate dropped at admission
inline constexpr std::string_view kFaultVerifierVersionGateOffByOne =
    "verifier.version_gate_off_by_one";  // admits next-minor helpers early
inline constexpr std::string_view kFaultRuntimeDispatchUnverified =
    "runtime.dispatch_unverified_helper";  // dispatch binds unapproved fns

struct FaultInfo {
  std::string id;
  std::string component;  // "verifier" | "helper" | "jit" | "runtime"
  std::string category;   // Table 1 row
  std::string reference;  // CVE / commit modelled
  std::string description;
};

// Thread-safe: the admission pipeline consults IsActive from worker threads
// while tests and chaos/storm drivers toggle defects concurrently. Every
// membership change bumps a monotonic epoch, so anything that caches a
// judgment derived from the fault set (the admission verdict cache) can key
// on the epoch and never serve a verdict computed under a different set of
// active defects.
//
// The verifier asks IsActive several times per instruction, so the read
// path for catalog defects is a single atomic flag load — no lock shared
// with other verifying workers. Mutations and non-catalog ids take mu_.
class FaultRegistry {
 public:
  FaultRegistry();

  // The catalog of implemented defects (static data).
  static const std::vector<FaultInfo>& Catalog();

  void Inject(std::string_view id);
  void Clear(std::string_view id);
  void ClearAll();
  bool IsActive(std::string_view id) const;

  xbase::usize active_count() const;

  // Monotonic generation counter, bumped whenever the set of active defects
  // changes. Two equal epochs imply an identical fault set in between.
  xbase::u64 epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  // Catalog index for a known defect id, or npos.
  static xbase::usize IndexOf(std::string_view id);

  // Guards other_active_ and writer-writer races on flags_/epoch_ (so a
  // toggle and its epoch bump are atomic with respect to other togglers).
  mutable std::mutex mu_;
  std::set<std::string, std::less<>> other_active_;  // non-catalog ids
  std::vector<std::atomic<bool>> flags_;             // indexed like Catalog()
  std::atomic<xbase::u64> epoch_{0};
};

}  // namespace ebpf

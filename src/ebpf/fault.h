// Fault injection: named, individually switchable defects in the verifier,
// helpers and JIT. Table 1 of the paper is a census of bugs found in
// shipping kernels during 2021-2022; this registry makes one representative
// bug per category *executable*, so the benches can demonstrate the causal
// chain the paper argues: defect present -> verified program passes -> safety
// property violated at runtime.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/xbase/types.h"

namespace ebpf {

// Known defect identifiers. Components and categories line up with the rows
// and columns of Table 1.
inline constexpr std::string_view kFaultVerifierScalarBounds =
    "verifier.scalar_bounds";  // arbitrary r/w (CVE-2022-23222 class)
inline constexpr std::string_view kFaultVerifierPtrLeak =
    "verifier.ptr_leak_check";  // kernel pointer leak
inline constexpr std::string_view kFaultVerifierJmp32Bounds =
    "verifier.jmp32_bounds";  // out-of-bounds (commit 3844d153 class)
inline constexpr std::string_view kFaultVerifierAlu32BoundsTrunc =
    "verifier.alu32_bounds_trunc";  // ALU32 bound wrap (CVE-2020-8835 class)
inline constexpr std::string_view kFaultVerifierSignExtConfusion =
    "verifier.sign_ext_confusion";  // mov32 sext (CVE-2017-16995 class)
inline constexpr std::string_view kFaultVerifierJgtOffByOne =
    "verifier.jgt_refine_off_by_one";  // JGT fall-through over-refinement
inline constexpr std::string_view kFaultVerifierTnumMulPrecision =
    "verifier.tnum_mul_precision";  // tnum mul drops uncertainty
inline constexpr std::string_view kFaultVerifierSpinLock =
    "verifier.spin_lock_tracking";  // deadlock
inline constexpr std::string_view kFaultVerifierLoopInlineUaf =
    "verifier.loop_inline_uaf";  // use-after-free in the verifier itself
inline constexpr std::string_view kFaultVerifierStateLeak =
    "verifier.state_leak";  // memory leak in the verifier
inline constexpr std::string_view kFaultVerifierRefTracking =
    "verifier.ref_tracking";  // reference tracking disabled
inline constexpr std::string_view kFaultHelperTaskStackLeak =
    "helper.get_task_stack.refcount_leak";  // commit 06ab134c class
inline constexpr std::string_view kFaultHelperSkLookupLeak =
    "helper.sk_lookup.request_sock_leak";  // commit 3046a827 class
inline constexpr std::string_view kFaultHelperArrayOverflow =
    "helper.array_index_overflow";  // commit 87ac0d60 class
inline constexpr std::string_view kFaultHelperTaskStorageNull =
    "helper.task_storage.null_owner";  // commit 1a9c72ad class
inline constexpr std::string_view kFaultJitBranchOffByOne =
    "jit.branch_off_by_one";  // CVE-2021-29154 class

struct FaultInfo {
  std::string id;
  std::string component;  // "verifier" | "helper" | "jit"
  std::string category;   // Table 1 row
  std::string reference;  // CVE / commit modelled
  std::string description;
};

class FaultRegistry {
 public:
  // The catalog of implemented defects (static data).
  static const std::vector<FaultInfo>& Catalog();

  void Inject(std::string_view id);
  void Clear(std::string_view id);
  void ClearAll() { active_.clear(); }
  bool IsActive(std::string_view id) const;

  xbase::usize active_count() const { return active_.size(); }

 private:
  std::set<std::string, std::less<>> active_;
};

}  // namespace ebpf

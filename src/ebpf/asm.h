// Program construction API: free functions mirroring the kernel's
// BPF_MOV64_IMM-style macros, plus a ProgramBuilder with symbolic labels so
// tests and workload generators can write nontrivial control flow without
// hand-counting jump offsets.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/ebpf/prog.h"
#include "src/xbase/status.h"

namespace ebpf {

// ---- single-instruction constructors ---------------------------------------
inline Insn Mov64Imm(u8 dst, s32 imm) {
  return Insn{static_cast<u8>(BPF_ALU64 | BPF_MOV | BPF_K), dst, 0, 0, imm};
}
inline Insn Mov64Reg(u8 dst, u8 src) {
  return Insn{static_cast<u8>(BPF_ALU64 | BPF_MOV | BPF_X), dst, src, 0, 0};
}
inline Insn Mov32Imm(u8 dst, s32 imm) {
  return Insn{static_cast<u8>(BPF_ALU | BPF_MOV | BPF_K), dst, 0, 0, imm};
}
inline Insn Mov32Reg(u8 dst, u8 src) {
  return Insn{static_cast<u8>(BPF_ALU | BPF_MOV | BPF_X), dst, src, 0, 0};
}
inline Insn Alu64Imm(u8 op, u8 dst, s32 imm) {
  return Insn{static_cast<u8>(BPF_ALU64 | op | BPF_K), dst, 0, 0, imm};
}
inline Insn Alu64Reg(u8 op, u8 dst, u8 src) {
  return Insn{static_cast<u8>(BPF_ALU64 | op | BPF_X), dst, src, 0, 0};
}
inline Insn Alu32Imm(u8 op, u8 dst, s32 imm) {
  return Insn{static_cast<u8>(BPF_ALU | op | BPF_K), dst, 0, 0, imm};
}
inline Insn Alu32Reg(u8 op, u8 dst, u8 src) {
  return Insn{static_cast<u8>(BPF_ALU | op | BPF_X), dst, src, 0, 0};
}
inline Insn Neg64(u8 dst) {
  return Insn{static_cast<u8>(BPF_ALU64 | BPF_NEG), dst, 0, 0, 0};
}

// Memory: *(size *)(dst + off) = src / imm, and loads.
inline Insn StxMem(u8 size, u8 dst, u8 src, s16 off) {
  return Insn{static_cast<u8>(BPF_STX | size | BPF_MEM), dst, src, off, 0};
}
inline Insn StMemImm(u8 size, u8 dst, s16 off, s32 imm) {
  return Insn{static_cast<u8>(BPF_ST | size | BPF_MEM), dst, 0, off, imm};
}
inline Insn LdxMem(u8 size, u8 dst, u8 src, s16 off) {
  return Insn{static_cast<u8>(BPF_LDX | size | BPF_MEM), dst, src, off, 0};
}
// Atomic fetch-add: *(size *)(dst + off) += src (the classic BPF_XADD).
inline Insn AtomicAdd(u8 size, u8 dst, u8 src, s16 off) {
  return Insn{static_cast<u8>(BPF_STX | size | BPF_ATOMIC), dst, src, off,
              BPF_ADD};
}

// 64-bit immediate load (two instruction slots).
inline std::vector<Insn> LdImm64(u8 dst, u64 imm) {
  return {Insn{static_cast<u8>(BPF_LD | BPF_DW | BPF_IMM), dst, 0, 0,
               static_cast<s32>(imm & 0xffffffff)},
          Insn{0, 0, 0, 0, static_cast<s32>(imm >> 32)}};
}
// Map reference: ld_imm64 with the pseudo source; imm = map fd.
inline std::vector<Insn> LdMapFd(u8 dst, s32 map_fd) {
  return {Insn{static_cast<u8>(BPF_LD | BPF_DW | BPF_IMM), dst,
               BPF_PSEUDO_MAP_FD, 0, map_fd},
          Insn{0, 0, 0, 0, 0}};
}
// Callback reference (bpf_loop): ld_imm64 with the func pseudo source;
// imm = absolute instruction index of the callback entry.
inline std::vector<Insn> LdFunc(u8 dst, s32 callback_pc) {
  return {Insn{static_cast<u8>(BPF_LD | BPF_DW | BPF_IMM), dst,
               BPF_PSEUDO_FUNC, 0, callback_pc},
          Insn{0, 0, 0, 0, 0}};
}

inline Insn JmpImm(u8 op, u8 dst, s32 imm, s16 off) {
  return Insn{static_cast<u8>(BPF_JMP | op | BPF_K), dst, 0, off, imm};
}
inline Insn JmpReg(u8 op, u8 dst, u8 src, s16 off) {
  return Insn{static_cast<u8>(BPF_JMP | op | BPF_X), dst, src, off, 0};
}
inline Insn Jmp32Imm(u8 op, u8 dst, s32 imm, s16 off) {
  return Insn{static_cast<u8>(BPF_JMP32 | op | BPF_K), dst, 0, off, imm};
}
inline Insn Jmp32Reg(u8 op, u8 dst, u8 src, s16 off) {
  return Insn{static_cast<u8>(BPF_JMP32 | op | BPF_X), dst, src, off, 0};
}
inline Insn Ja(s16 off) {
  return Insn{static_cast<u8>(BPF_JMP | BPF_JA), 0, 0, off, 0};
}
inline Insn CallHelper(s32 helper_id) {
  return Insn{static_cast<u8>(BPF_JMP | BPF_CALL), 0, 0, 0, helper_id};
}
// Call into an exposed internal kernel function (v5.13+); imm = btf id.
inline Insn CallKfunc(s32 btf_id) {
  return Insn{static_cast<u8>(BPF_JMP | BPF_CALL), 0,
              BPF_PSEUDO_KFUNC_CALL, 0, btf_id};
}
// BPF-to-BPF call: imm is the pc delta to the subprog entry (resolved by the
// builder when using labels).
inline Insn CallPseudo(s32 insn_delta) {
  return Insn{static_cast<u8>(BPF_JMP | BPF_CALL), 0, BPF_PSEUDO_CALL, 0,
              insn_delta};
}
inline Insn Exit() {
  return Insn{static_cast<u8>(BPF_JMP | BPF_EXIT), 0, 0, 0, 0};
}

// ---- builder ----------------------------------------------------------------
// Usage:
//   ProgramBuilder b("filter", ProgType::kXdp);
//   b.Ins(Mov64Imm(R0, 0));
//   b.JmpTo(BPF_JEQ, R1, 0, "drop");
//   ...
//   b.Bind("drop");
//   b.Ins(Exit());
//   auto prog = b.Build();
class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, ProgType type) {
    prog_.name = std::move(name);
    prog_.type = type;
  }

  ProgramBuilder& Ins(const Insn& insn) {
    prog_.insns.push_back(insn);
    return *this;
  }
  ProgramBuilder& Ins(const std::vector<Insn>& insns) {
    for (const Insn& insn : insns) {
      prog_.insns.push_back(insn);
    }
    return *this;
  }

  // Conditional jump to a label (immediate comparand).
  ProgramBuilder& JmpTo(u8 op, u8 dst, s32 imm, const std::string& label);
  // Conditional jump to a label (register comparand).
  ProgramBuilder& JmpRegTo(u8 op, u8 dst, u8 src, const std::string& label);
  // Unconditional jump to a label.
  ProgramBuilder& JaTo(const std::string& label);
  // BPF-to-BPF call to a label.
  ProgramBuilder& CallTo(const std::string& label);
  // Callback reference to a label (two instruction slots).
  ProgramBuilder& LdFuncTo(u8 dst, const std::string& label);

  // Binds `label` to the next instruction index.
  ProgramBuilder& Bind(const std::string& label);

  ProgramBuilder& SetGpl(bool gpl) {
    prog_.gpl_compatible = gpl;
    return *this;
  }

  u32 CurrentPc() const { return prog_.len(); }

  // Resolves all label fixups. Fails on unbound labels or offsets that do
  // not fit the 16-bit field.
  xbase::Result<Program> Build();

 private:
  enum class FixupKind : u8 { kJump, kCall, kFunc };
  struct Fixup {
    u32 insn_index;
    std::string label;
    FixupKind kind;
  };

  Program prog_;
  std::map<std::string, u32> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace ebpf

// The load path: what the bpf(2) syscall does with BPF_PROG_LOAD. A program
// submitted here is verified (per the kernel's version and the caller's
// privilege), JIT-translated, and stored for attachment/tail calls. This is
// the half of Figure 1 the paper wants to retire.
//
// The path is split in two so the concurrent admission pipeline
// (src/service) can run the expensive half off-thread:
//
//   Prepare  — privilege gate, optional staticcheck prepass, verifier, JIT.
//              Const: touches only the Bpf registries, safe to run from many
//              threads at once (the fault registry is internally locked).
//   Install  — allocates an id and registers the prepared program. Cheap,
//              internally locked.
//
// Load() is Prepare + Install and keeps the original synchronous contract.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/ebpf/bpf.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/verifier.h"
#include "src/staticcheck/check.h"

namespace ebpf {

struct LoadedProgram {
  u32 id = 0;
  Program source;     // as submitted
  Program image;      // as executed (post-JIT)
  DecodedImage decoded;  // lowered micro-op form of `image` (threaded engine)
  VerifyResult verify;
  JitStats jit;
  // Live hook attachments referencing this id (see Pin/Unpin). A program
  // cannot be unloaded while attached: the kernel holds a prog refcount per
  // attachment for exactly this reason.
  u32 attach_count = 0;
};

struct LoadOptions {
  bool privileged = true;
  // Verify as a different kernel version than the host kernel (tests only);
  // unset means kernel.version().
  std::optional<simkern::KernelVersion> version_override;
  // Also run the verifier-independent staticcheck analysis before the
  // verifier and reject programs with error-severity findings. Off by
  // default (the kernel trusts only its verifier); the in-tree tests and
  // tools/xcheck turn it on.
  bool staticcheck_prepass = false;
  // Consumed by service::AdmissionService::Load — true returns an
  // unresolved ticket immediately, false blocks for the verdict. The
  // synchronous Loader::Load path ignores it.
  bool async = false;
  // Let the JIT lower away runtime bounds checks (and fuse micro-op pairs)
  // for memory accesses the admission analyses proved in bounds. Fail-closed:
  // the lowering only elides where a claim exists and is proven; with this
  // off (or under -DUNTENABLE_NO_ELIDE) every access keeps its check.
  // NOTE: service::AdmissionService's verdict cache is not keyed on this
  // flag — it is a build-global policy, not per-load (see ci.yml's
  // no-elide leg, which flips the default for the whole build).
#ifdef UNTENABLE_NO_ELIDE
  bool elide_checks = false;
#else
  bool elide_checks = true;
#endif
};

// The outcome of the fallible admission stages, ready to register.
struct PreparedLoad {
  Program source;
  Program image;
  DecodedImage decoded;
  VerifyResult verify;
  JitStats jit;
};

// Per-stage wall-clock breakdown of Prepare (filled when requested by the
// admission pipeline's metrics).
struct PrepareTimes {
  u64 prepass_ns = 0;
  u64 verify_ns = 0;
  u64 jit_ns = 0;
  bool prepass_ran = false;
};

// Admission decision for a staticcheck prepass report. Rejects whenever the
// report counts any error — even if no finding in the list carries
// Severity::kError (an inconsistent Report must fail closed, not slip past
// the gate). Exposed as a free function so tests can feed it exactly that
// inconsistent shape.
xbase::Status StaticcheckGate(xbase::usize error_count,
                              const std::vector<staticcheck::Finding>& findings);

class Loader {
 public:
  explicit Loader(Bpf& bpf) : bpf_(bpf) {}

  // Full load path. Returns the program id, or the verifier/permission
  // failure.
  xbase::Result<u32> Load(const Program& prog, const LoadOptions& options = {});

  // The fallible, expensive stages only (no registration, no id). Safe to
  // call concurrently from admission workers.
  xbase::Result<PreparedLoad> Prepare(const Program& prog,
                                      const LoadOptions& options = {},
                                      PrepareTimes* times = nullptr) const;

  // Registers a prepared program: allocates a fresh id (never 0, never an
  // id still in use — the counter wraps safely) and stores it. Fails with
  // ResourceExhausted when the id space is genuinely full.
  xbase::Result<u32> Install(PreparedLoad prepared);

  xbase::Result<const LoadedProgram*> Find(u32 id) const;

  // Removes a loaded program (prog fd closed). Refuses with
  // FailedPrecondition while hook attachments still reference the id —
  // detach first — so a later hook fire can never dangle. Later lookups —
  // including tail calls through a stale prog-array slot — fail with
  // NotFound, matching the kernel's dead-prog behaviour.
  xbase::Status Unload(u32 id);

  // Attachment refcount: HookRegistry pins a program while it is attached
  // and unpins on detach. Pin fails with NotFound for unknown ids.
  xbase::Status Pin(u32 id);
  void Unpin(u32 id);

  xbase::usize size() const;

  // Test hook for the id-wraparound regression tests: positions the
  // allocation cursor (e.g. just below the wrap point).
  void SetNextIdForTest(u32 next_id);

 private:
  Bpf& bpf_;
  // Guards progs_ and next_id_. Install/Unload/Pin/Unpin from admission
  // workers interleave with Find from the caller thread; std::map nodes are
  // stable, so a Find'ed pointer stays valid until that id is unloaded
  // (which Pin prevents while attached).
  mutable std::mutex mu_;
  std::map<u32, LoadedProgram> progs_;
  u32 next_id_ = 1;
};

}  // namespace ebpf

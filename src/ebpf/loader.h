// The load path: what the bpf(2) syscall does with BPF_PROG_LOAD. A program
// submitted here is verified (per the kernel's version and the caller's
// privilege), JIT-translated, and stored for attachment/tail calls. This is
// the half of Figure 1 the paper wants to retire.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "src/ebpf/bpf.h"
#include "src/ebpf/jit.h"
#include "src/ebpf/verifier.h"

namespace ebpf {

struct LoadedProgram {
  u32 id = 0;
  Program source;     // as submitted
  Program image;      // as executed (post-JIT)
  VerifyResult verify;
  JitStats jit;
};

struct LoadOptions {
  bool privileged = true;
  // Verify as a different kernel version than the host kernel (tests only);
  // unset means kernel.version().
  std::optional<simkern::KernelVersion> version_override;
  // Also run the verifier-independent staticcheck analysis before the
  // verifier and reject programs with error-severity findings. Off by
  // default (the kernel trusts only its verifier); the in-tree tests and
  // tools/xcheck turn it on.
  bool staticcheck_prepass = false;
};

class Loader {
 public:
  explicit Loader(Bpf& bpf) : bpf_(bpf) {}

  // Full load path. Returns the program id, or the verifier/permission
  // failure.
  xbase::Result<u32> Load(const Program& prog, const LoadOptions& options = {});

  xbase::Result<const LoadedProgram*> Find(u32 id) const;

  // Removes a loaded program (prog fd closed, no attachments left). Later
  // lookups — including tail calls through a stale prog-array slot — fail
  // with NotFound, matching the kernel's dead-prog behaviour.
  xbase::Status Unload(u32 id);

  xbase::usize size() const { return progs_.size(); }

 private:
  Bpf& bpf_;
  std::map<u32, LoadedProgram> progs_;
  u32 next_id_ = 1;
};

}  // namespace ebpf

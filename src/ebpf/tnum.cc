#include "src/ebpf/tnum.h"

#include "src/xbase/strfmt.h"

namespace ebpf {

using xbase::u64;
using xbase::u8;

std::string Tnum::ToString() const {
  if (IsConst()) {
    return xbase::StrFormat("%llu", static_cast<unsigned long long>(value));
  }
  if (IsUnknown()) {
    return "unknown";
  }
  return xbase::StrFormat("(v=0x%llx,m=0x%llx)",
                          static_cast<unsigned long long>(value),
                          static_cast<unsigned long long>(mask));
}

namespace {
int Fls64(u64 x) {
  int bits = 0;
  while (x != 0) {
    x >>= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

Tnum TnumRange(u64 min, u64 max) {
  const u64 chi = min ^ max;
  const int bits = Fls64(chi);
  if (bits > 63) {
    return TnumUnknown();
  }
  const u64 delta = (u64{1} << bits) - 1;
  return Tnum{min & ~delta, delta};
}

Tnum TnumAdd(Tnum a, Tnum b) {
  const u64 sm = a.mask + b.mask;
  const u64 sv = a.value + b.value;
  const u64 sigma = sm + sv;
  const u64 chi = sigma ^ sv;
  const u64 mu = chi | a.mask | b.mask;
  return Tnum{sv & ~mu, mu};
}

Tnum TnumSub(Tnum a, Tnum b) {
  const u64 dv = a.value - b.value;
  const u64 alpha = dv + a.mask;
  const u64 beta = dv - b.mask;
  const u64 chi = alpha ^ beta;
  const u64 mu = chi | a.mask | b.mask;
  return Tnum{dv & ~mu, mu};
}

Tnum TnumAnd(Tnum a, Tnum b) {
  const u64 alpha = a.value | a.mask;
  const u64 beta = b.value | b.mask;
  const u64 v = a.value & b.value;
  return Tnum{v, alpha & beta & ~v};
}

Tnum TnumOr(Tnum a, Tnum b) {
  const u64 v = a.value | b.value;
  const u64 mu = a.mask | b.mask;
  return Tnum{v, mu & ~v};
}

Tnum TnumXor(Tnum a, Tnum b) {
  const u64 v = a.value ^ b.value;
  const u64 mu = a.mask | b.mask;
  return Tnum{v & ~mu, mu};
}

Tnum TnumLshift(Tnum a, u8 shift) {
  return Tnum{a.value << shift, a.mask << shift};
}

Tnum TnumRshift(Tnum a, u8 shift) {
  return Tnum{a.value >> shift, a.mask >> shift};
}

Tnum TnumArshift(Tnum a, u8 shift, u8 insn_bitness) {
  if (insn_bitness == 32) {
    const xbase::u32 value =
        static_cast<xbase::u32>(static_cast<xbase::s32>(a.value) >> shift);
    const xbase::u32 mask =
        static_cast<xbase::u32>(static_cast<xbase::s32>(a.mask) >> shift);
    return Tnum{value, mask};
  }
  return Tnum{static_cast<u64>(static_cast<xbase::s64>(a.value) >> shift),
              static_cast<u64>(static_cast<xbase::s64>(a.mask) >> shift)};
}

// Half-multiply: accumulate (a << n) iff bit n of b is set/unknown.
Tnum TnumMul(Tnum a, Tnum b) {
  const u64 acc_v = a.value * b.value;
  Tnum acc_m{0, 0};
  while (a.value != 0 || a.mask != 0) {
    if ((a.value & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.mask});
    } else if ((a.mask & 1) != 0) {
      acc_m = TnumAdd(acc_m, Tnum{0, b.value | b.mask});
    }
    a = TnumRshift(a, 1);
    b = TnumLshift(b, 1);
  }
  return TnumAdd(Tnum{acc_v, 0}, acc_m);
}

Tnum TnumIntersect(Tnum a, Tnum b) {
  const u64 v = a.value | b.value;
  const u64 mu = a.mask & b.mask;
  return Tnum{v & ~mu, mu};
}

Tnum TnumCast(Tnum a, u8 size) {
  if (size >= 8) {
    return a;
  }
  const u64 keep = (u64{1} << (size * 8)) - 1;
  return Tnum{a.value & keep, a.mask & keep};
}

bool TnumIsAligned(Tnum a, u64 size) {
  if (size == 0) {
    return true;
  }
  return ((a.value | a.mask) & (size - 1)) == 0;
}

bool TnumIn(Tnum a, Tnum b) {
  if ((b.mask & ~a.mask) != 0) {
    return false;
  }
  return a.value == (b.value & ~a.mask);
}

Tnum TnumSubreg(Tnum a) { return TnumCast(a, 4); }

Tnum TnumClearSubreg(Tnum a) {
  return Tnum{a.value & ~u64{0xffffffff}, a.mask & ~u64{0xffffffff}};
}

Tnum TnumWithSubreg(Tnum reg, Tnum subreg) {
  const Tnum hi = TnumClearSubreg(reg);
  const Tnum lo = TnumSubreg(subreg);
  return Tnum{hi.value | lo.value, hi.mask | lo.mask};
}

Tnum TnumConstSubreg(Tnum reg, xbase::u32 value) {
  return TnumWithSubreg(reg, TnumConst(value));
}

}  // namespace ebpf

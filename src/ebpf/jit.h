// The "JIT": the post-verification translation pass that produces the image
// the kernel actually executes. In this simulation the image is another
// instruction vector plus its lowered DecodedImage form (dense micro-ops
// with pre-resolved operands, targets and call sites — see decoded.h),
// which preserves the property the paper leans on: the JIT runs *after*
// the verifier, so a JIT bug invalidates everything the verifier proved.
// CVE-2021-29154 — a miscomputed branch displacement — is modelled as an
// injectable off-by-one on long branches, applied before lowering so the
// corrupted displacement becomes a corrupted pre-relocated target.
#pragma once

#include "src/ebpf/decoded.h"
#include "src/ebpf/fault.h"
#include "src/ebpf/kfunc.h"
#include "src/ebpf/prog.h"
#include "src/ebpf/rangetrace.h"
#include "src/xbase/status.h"

namespace ebpf {

struct JitStats {
  u32 insns_translated = 0;
  u32 branches_relocated = 0;
  u32 branches_corrupted = 0;  // nonzero only under jit.branch_off_by_one
  u32 micro_ops = 0;           // lowered slots (1:1 with image insns)
  u32 call_sites_resolved = 0; // helper/kfunc fns bound at lowering time
  u32 call_sites_gate_denied = 0;  // failed the dispatch contract re-check
  u32 checks_elided = 0;  // memory micro-ops lowered without bounds checks
  u32 pairs_fused = 0;    // adjacent micro-op pairs fused into superops
  u32 superblocks = 0;    // straight-line runs lowered to entry-charged blocks
};

// The static analyses' per-pc memory-safety proofs, consumed at lowering
// time. Elision is fail-closed: a memory micro-op only loses its runtime
// bounds check when the verifier trace has a proven claim at its pc AND —
// if a staticcheck trace is supplied (the loader's prepass, defense in
// depth) — staticcheck agrees. Null traces or missing/unproven claims
// keep every check. With `claims == nullptr` (every non-loader caller)
// lowering is byte-identical to the pre-elision JIT.
struct JitClaims {
  const RangeTrace* verifier = nullptr;
  const RangeTrace* staticcheck = nullptr;
  bool elide = true;  // lower unchecked memory variants
  bool fuse = true;   // fuse adjacent pairs into superops
};

struct JitImage {
  Program image;
  DecodedImage decoded;
  JitStats stats;
};

// Lowers a finalized image into the micro-op form the threaded engine
// executes. Purely per-slot: each MicroOp encodes exactly what the legacy
// interpreter's decode would do if pc landed on that slot, so the two
// engines stay observationally identical even on corrupted control flow.
// The registries are optional; without them call sites resolve lazily at
// run time. When `gate_version` is given, every helper call site is
// re-checked against the declared contract (family admits image.type,
// helper introduced by the gate version) and marked gate_denied on
// failure — the runtime's independent access-control layer. `faults`
// carries the dispatch-layer defect that skips this re-check.
DecodedImage DecodeProgram(const Program& image,
                           const HelperRegistry* helpers,
                           const KfuncRegistry* kfuncs,
                           JitStats* stats = nullptr,
                           const simkern::KernelVersion* gate_version =
                               nullptr,
                           const FaultRegistry* faults = nullptr,
                           const JitClaims* claims = nullptr);

// Translates a verified program into an executable image (branch
// relocation/corruption, then lowering). `gate_version` is the version the
// program was verified against; the Loader always passes it, so dispatch
// gating is on for every loaded program.
xbase::Result<JitImage> JitCompile(const Program& prog,
                                   const FaultRegistry& faults,
                                   const HelperRegistry* helpers = nullptr,
                                   const KfuncRegistry* kfuncs = nullptr,
                                   const simkern::KernelVersion*
                                       gate_version = nullptr,
                                   const JitClaims* claims = nullptr);

}  // namespace ebpf

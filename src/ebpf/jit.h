// The "JIT": the post-verification translation pass that produces the image
// the kernel actually executes. In this simulation the image is another
// instruction vector (pre-validated, so the executor can skip decode
// checks), which preserves the property the paper leans on: the JIT runs
// *after* the verifier, so a JIT bug invalidates everything the verifier
// proved. CVE-2021-29154 — a miscomputed branch displacement — is modelled
// as an injectable off-by-one on long branches.
#pragma once

#include "src/ebpf/fault.h"
#include "src/ebpf/prog.h"
#include "src/xbase/status.h"

namespace ebpf {

struct JitStats {
  u32 insns_translated = 0;
  u32 branches_relocated = 0;
  u32 branches_corrupted = 0;  // nonzero only under jit.branch_off_by_one
};

struct JitImage {
  Program image;
  JitStats stats;
};

// Translates a verified program into an executable image.
xbase::Result<JitImage> JitCompile(const Program& prog,
                                   const FaultRegistry& faults);

}  // namespace ebpf

// Shared execution state for the two BPF executors. The Execution object
// owns everything one run needs — register frames, the stack mapping, the
// RuntimeHooks implementation helpers call back into — while the actual
// instruction loops live in two sibling translation units:
//
//   interp.cc          — RunFrom: the legacy decode-per-step interpreter
//                        (giant switch over raw instruction words).
//   interp_threaded.cc — RunThreaded: threaded dispatch over the JIT's
//                        pre-decoded micro-ops (computed-goto, or a dense
//                        switch under UNTENABLE_SWITCH_DISPATCH).
//
// Both loops share this state so ExecOptions::engine can switch between
// them and the differential tests can prove them observationally identical.
#pragma once

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace internal {

inline constexpr u32 kFrameBytes = kMaxStackBytes;
inline constexpr u32 kMaxRuntimeFrames = 16;  // bpf2bpf frames + callbacks

class Execution final : public RuntimeHooks {
 public:
  Execution(Bpf& bpf, const LoadedProgram& prog, const ExecOptions& opts,
            const Loader* loader)
      : bpf_(bpf), kernel_(bpf.kernel()), opts_(opts), loader_(loader),
        insns_(&prog.image.insns), decoded_(EnsureDecoded(prog)),
        wild_writes_at_entry_(bpf.kernel().mem().unchecked_wild_writes()) {}

  ~Execution() override {
    if (leased_stack_) {
      // Report how much stack this run could have dirtied so the next
      // lease only re-zeroes that prefix. Frame-relative accesses are
      // bounded by the frame high-water mark; a run that went wild
      // (elided access under a wrong proof) reports "everything".
      const bool went_wild =
          kernel_.mem().unchecked_wild_writes() != wild_writes_at_entry_;
      bpf_.ReleaseExecStack(
          went_wild ? ~static_cast<xbase::usize>(0)
                    : static_cast<xbase::usize>(kFrameBytes) *
                          (stats_.max_frame_depth + 1));
    } else if (stack_base_ != 0) {
      (void)kernel_.mem().Unmap(stack_base_);
    }
  }

  xbase::Result<ExecResult> Run(simkern::Addr ctx_addr);

  // ---- RuntimeHooks ---------------------------------------------------
  xbase::Result<u64> InvokeCallback(u32 entry_pc, u64 arg1,
                                    u64 arg2) override {
    if (callback_depth_ + 1 >= kMaxRuntimeFrames) {
      return xbase::ResourceExhausted("callback nesting too deep");
    }
    ++callback_depth_;
    u64 regs[kNumRegs] = {};
    regs[R1] = arg1;
    regs[R2] = arg2;
    regs[R10] = stack_base_ + kFrameBytes * (callback_depth_ + 1);
    auto result = opts_.engine == ExecEngine::kLegacy
                      ? RunFrom(entry_pc, regs, callback_depth_)
                      : RunThreaded(entry_pc, regs, callback_depth_);
    --callback_depth_;
    return result;
  }

  xbase::Status RequestTailCall(u32 prog_id) override {
    if (loader_ == nullptr) {
      return xbase::FailedPrecondition("no loader for tail calls");
    }
    if (stats_.tail_calls >= kMaxTailCallDepth) {
      return xbase::ResourceExhausted("tail call limit reached");
    }
    pending_tail_call_ = prog_id;
    return xbase::Status::Ok();
  }

  void NoteAcquire(simkern::ObjectId id) override {
    open_refs_.push_back(id);
  }
  void NoteRelease(simkern::ObjectId id) override {
    open_refs_.erase(std::remove(open_refs_.begin(), open_refs_.end(), id),
                     open_refs_.end());
  }
  void Charge(u64 ns) override {
    const u64 charged = ns * opts_.cost_multiplier;
    // Single-writer store on the CPU cell Run() resolved — the per-insn
    // charge stays a pair of movs, no TLS walk, no atomic RMW.
    clock_cell_->store(
        clock_cell_->load(std::memory_order_relaxed) + charged,
        std::memory_order_relaxed);
    stats_.sim_time_charged_ns += charged;
  }
  simkern::Addr ctx_addr() const override { return ctx_addr_; }

 private:
  xbase::Status RuntimeFault(xbase::Status status) {
    // Route memory faults through the kernel so the oops is recorded.
    return kernel_.Route(std::move(status));
  }

  xbase::Result<u64> ReadSized(simkern::Addr addr, u32 size) {
    u8 buf[8] = {};
    xbase::Status status =
        kernel_.mem().ReadChecked(addr, {buf, size}, /*access_key=*/0);
    if (!status.ok()) {
      return RuntimeFault(std::move(status));
    }
    switch (size) {
      case 1:
        return static_cast<u64>(buf[0]);
      case 2:
        return static_cast<u64>(xbase::LoadLe16(buf));
      case 4:
        return static_cast<u64>(xbase::LoadLe32(buf));
      default:
        return xbase::LoadLe64(buf);
    }
  }

  xbase::Status WriteSized(simkern::Addr addr, u32 size, u64 value) {
    u8 buf[8];
    xbase::StoreLe64(buf, value);
    xbase::Status status =
        kernel_.mem().WriteChecked(addr, {buf, size}, /*access_key=*/0);
    if (!status.ok()) {
      return RuntimeFault(std::move(status));
    }
    return xbase::Status::Ok();
  }

  // ---- Elided-check memory path ---------------------------------------
  // The unchecked (`...U`) micro-ops resolve addresses through a small
  // ring of direct region windows instead of ReadChecked/WriteChecked:
  // the static layers proved the access in bounds, so the runtime skips
  // NULL-guard/permission/key enforcement and fault recording entirely.
  // Region byte storage is stable between helper calls, and helpers are
  // the only unmap path, so the windows are flushed at every helper/kfunc
  // invoke boundary and never dangle. When the proof was wrong (a buggy
  // verifier), a crossing access simply misses every window and region —
  // a *wild* access: silently dropped/poisoned, counted on SimMemory, and
  // never an oops. That silence is the paper's point.
  static constexpr u32 kDirectWindows = 4;

  u8* DirectPtr(simkern::Addr addr, u32 size) {
    for (u32 i = 0; i < kDirectWindows; ++i) {
      const simkern::SimMemory::DirectWindow& w = windows_[i];
      // Overflow-safe containment: rel wraps huge for addr < base.
      const u64 rel = addr - w.base;
      if (rel < w.len && w.len - rel >= size) {
        return w.bytes + rel;
      }
    }
    return DirectPtrSlow(addr, size);
  }

  u8* DirectPtrSlow(simkern::Addr addr, u32 size) {
    simkern::SimMemory::DirectWindow w =
        kernel_.mem().TranslateForUnchecked(addr);
    if (w.bytes == nullptr) {
      return nullptr;  // unmapped: wild
    }
    windows_[window_next_] = w;
    window_next_ = (window_next_ + 1) % kDirectWindows;
    const u64 rel = addr - w.base;
    if (w.len - rel < size) {
      return nullptr;  // straddles the region end: wild
    }
    return w.bytes + rel;
  }

  void ResetWindows() {
    for (u32 i = 0; i < kDirectWindows; ++i) {
      windows_[i] = {};
    }
  }

  // A wild elided read observes a deterministic poison pattern (masked to
  // the access width); a wild elided write vanishes. Both engines with
  // checks would have oopsed here — the counters are the only witness.
  u64 WildRead(u32 size) {
    kernel_.mem().NoteWildRead();
    const u64 poison = 0xdeadbeefdeadbeefULL;
    return size >= 8 ? poison : poison & ((u64{1} << (size * 8)) - 1);
  }

  void WildWrite() { kernel_.mem().NoteWildWrite(); }

  // Inline cache for map lookups on the helper fast path: one entry keyed
  // by (map identity, generation, key bytes). The map pointer is compared
  // against the live Find() result and never dereferenced, and the
  // generation is a process-global monotonic stamp bumped on every
  // mutation, so destroyed/recreated maps and updated entries both miss.
  struct LookupCache {
    const void* map = nullptr;
    u64 gen = 0;
    u64 key = 0;
    u32 key_size = 0;
    simkern::Addr addr = 0;
  };

  // Returns the program's lowered form, decoding on the spot for programs
  // that never went through JitCompile (hand-built test fixtures). The
  // lazily-decoded images are kept alive for the run in owned_decodes_.
  const DecodedImage* EnsureDecoded(const LoadedProgram& prog) {
    if (!prog.decoded.empty() || prog.image.insns.empty()) {
      return &prog.decoded;
    }
    owned_decodes_.push_back(std::make_unique<DecodedImage>(
        DecodeProgram(prog.image, &bpf_.helpers(), &bpf_.kfuncs())));
    return owned_decodes_.back().get();
  }

  // Switches the running image to a pending tail-call target. Returns false
  // (after recording the oops) when the target id is gone.
  bool SwitchToTailTarget(u32 target_id) {
    auto target = loader_->Find(target_id);
    if (!target.ok()) {
      return false;
    }
    ++stats_.tail_calls;
    insns_ = &target.value()->image.insns;
    decoded_ = EnsureDecoded(*target.value());
    return true;
  }

  // Interprets from `pc` in the current image until the frame at `depth`
  // exits; returns r0. One definition per engine (see the file comment).
  xbase::Result<u64> RunFrom(u32 pc, u64* regs, u32 depth);
  xbase::Result<u64> RunThreaded(u32 pc, u64* regs, u32 depth);

  Bpf& bpf_;
  simkern::Kernel& kernel_;
  ExecOptions opts_;
  const Loader* loader_;
  const std::vector<Insn>* insns_;
  // Declared before decoded_: the constructor's EnsureDecoded call may push
  // into it, so it must already be constructed.
  std::vector<std::unique_ptr<DecodedImage>> owned_decodes_;
  const DecodedImage* decoded_;

  simkern::Addr ctx_addr_ = 0;
  // The bound CPU's clock cell, resolved once per run (see Charge).
  std::atomic<u64>* clock_cell_ = nullptr;
  simkern::Addr stack_base_ = 0;
  bool leased_stack_ = false;
  ExecStats stats_;
  std::vector<simkern::ObjectId> open_refs_;
  u32 callback_depth_ = 0;
  std::optional<u32> pending_tail_call_;
  simkern::SimMemory::DirectWindow windows_[kDirectWindows] = {};
  u32 window_next_ = 0;
  LookupCache lookup_cache_;
  u64 wild_writes_at_entry_ = 0;
};

}  // namespace internal
}  // namespace ebpf

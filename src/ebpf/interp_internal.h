// Shared execution state for the two BPF executors. The Execution object
// owns everything one run needs — register frames, the stack mapping, the
// RuntimeHooks implementation helpers call back into — while the actual
// instruction loops live in two sibling translation units:
//
//   interp.cc          — RunFrom: the legacy decode-per-step interpreter
//                        (giant switch over raw instruction words).
//   interp_threaded.cc — RunThreaded: threaded dispatch over the JIT's
//                        pre-decoded micro-ops (computed-goto, or a dense
//                        switch under UNTENABLE_SWITCH_DISPATCH).
//
// Both loops share this state so ExecOptions::engine can switch between
// them and the differential tests can prove them observationally identical.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/ebpf/interp.h"
#include "src/ebpf/jit.h"
#include "src/xbase/bytes.h"

namespace ebpf {
namespace internal {

inline constexpr u32 kFrameBytes = kMaxStackBytes;
inline constexpr u32 kMaxRuntimeFrames = 16;  // bpf2bpf frames + callbacks

class Execution final : public RuntimeHooks {
 public:
  Execution(Bpf& bpf, const LoadedProgram& prog, const ExecOptions& opts,
            const Loader* loader)
      : bpf_(bpf), kernel_(bpf.kernel()), opts_(opts), loader_(loader),
        insns_(&prog.image.insns), decoded_(EnsureDecoded(prog)) {}

  ~Execution() override {
    if (leased_stack_) {
      bpf_.ReleaseExecStack();
    } else if (stack_base_ != 0) {
      (void)kernel_.mem().Unmap(stack_base_);
    }
  }

  xbase::Result<ExecResult> Run(simkern::Addr ctx_addr);

  // ---- RuntimeHooks ---------------------------------------------------
  xbase::Result<u64> InvokeCallback(u32 entry_pc, u64 arg1,
                                    u64 arg2) override {
    if (callback_depth_ + 1 >= kMaxRuntimeFrames) {
      return xbase::ResourceExhausted("callback nesting too deep");
    }
    ++callback_depth_;
    u64 regs[kNumRegs] = {};
    regs[R1] = arg1;
    regs[R2] = arg2;
    regs[R10] = stack_base_ + kFrameBytes * (callback_depth_ + 1);
    auto result = opts_.engine == ExecEngine::kLegacy
                      ? RunFrom(entry_pc, regs, callback_depth_)
                      : RunThreaded(entry_pc, regs, callback_depth_);
    --callback_depth_;
    return result;
  }

  xbase::Status RequestTailCall(u32 prog_id) override {
    if (loader_ == nullptr) {
      return xbase::FailedPrecondition("no loader for tail calls");
    }
    if (stats_.tail_calls >= kMaxTailCallDepth) {
      return xbase::ResourceExhausted("tail call limit reached");
    }
    pending_tail_call_ = prog_id;
    return xbase::Status::Ok();
  }

  void NoteAcquire(simkern::ObjectId id) override {
    open_refs_.push_back(id);
  }
  void NoteRelease(simkern::ObjectId id) override {
    open_refs_.erase(std::remove(open_refs_.begin(), open_refs_.end(), id),
                     open_refs_.end());
  }
  void Charge(u64 ns) override {
    const u64 charged = ns * opts_.cost_multiplier;
    kernel_.clock().Advance(charged);
    stats_.sim_time_charged_ns += charged;
  }
  simkern::Addr ctx_addr() const override { return ctx_addr_; }

 private:
  xbase::Status RuntimeFault(xbase::Status status) {
    // Route memory faults through the kernel so the oops is recorded.
    return kernel_.Route(std::move(status));
  }

  xbase::Result<u64> ReadSized(simkern::Addr addr, u32 size) {
    u8 buf[8] = {};
    xbase::Status status =
        kernel_.mem().ReadChecked(addr, {buf, size}, /*access_key=*/0);
    if (!status.ok()) {
      return RuntimeFault(std::move(status));
    }
    switch (size) {
      case 1:
        return static_cast<u64>(buf[0]);
      case 2:
        return static_cast<u64>(xbase::LoadLe16(buf));
      case 4:
        return static_cast<u64>(xbase::LoadLe32(buf));
      default:
        return xbase::LoadLe64(buf);
    }
  }

  xbase::Status WriteSized(simkern::Addr addr, u32 size, u64 value) {
    u8 buf[8];
    xbase::StoreLe64(buf, value);
    xbase::Status status =
        kernel_.mem().WriteChecked(addr, {buf, size}, /*access_key=*/0);
    if (!status.ok()) {
      return RuntimeFault(std::move(status));
    }
    return xbase::Status::Ok();
  }

  // Returns the program's lowered form, decoding on the spot for programs
  // that never went through JitCompile (hand-built test fixtures). The
  // lazily-decoded images are kept alive for the run in owned_decodes_.
  const DecodedImage* EnsureDecoded(const LoadedProgram& prog) {
    if (!prog.decoded.empty() || prog.image.insns.empty()) {
      return &prog.decoded;
    }
    owned_decodes_.push_back(std::make_unique<DecodedImage>(
        DecodeProgram(prog.image, &bpf_.helpers(), &bpf_.kfuncs())));
    return owned_decodes_.back().get();
  }

  // Switches the running image to a pending tail-call target. Returns false
  // (after recording the oops) when the target id is gone.
  bool SwitchToTailTarget(u32 target_id) {
    auto target = loader_->Find(target_id);
    if (!target.ok()) {
      return false;
    }
    ++stats_.tail_calls;
    insns_ = &target.value()->image.insns;
    decoded_ = EnsureDecoded(*target.value());
    return true;
  }

  // Interprets from `pc` in the current image until the frame at `depth`
  // exits; returns r0. One definition per engine (see the file comment).
  xbase::Result<u64> RunFrom(u32 pc, u64* regs, u32 depth);
  xbase::Result<u64> RunThreaded(u32 pc, u64* regs, u32 depth);

  Bpf& bpf_;
  simkern::Kernel& kernel_;
  ExecOptions opts_;
  const Loader* loader_;
  const std::vector<Insn>* insns_;
  // Declared before decoded_: the constructor's EnsureDecoded call may push
  // into it, so it must already be constructed.
  std::vector<std::unique_ptr<DecodedImage>> owned_decodes_;
  const DecodedImage* decoded_;

  simkern::Addr ctx_addr_ = 0;
  simkern::Addr stack_base_ = 0;
  bool leased_stack_ = false;
  ExecStats stats_;
  std::vector<simkern::ObjectId> open_refs_;
  u32 callback_depth_ = 0;
  std::optional<u32> pending_tail_call_;
};

}  // namespace internal
}  // namespace ebpf

// The BPF executor: interprets a loaded program image against the simulated
// kernel. Runs inside an RCU read-side critical section like the real
// dispatcher, charges simulated time per instruction and helper, and — this
// is the point the paper's §2.2 termination demonstration rests on — has
// *no* runtime termination mechanism of its own. The only cap an execution
// can carry is the harness-level `max_insns` safety net, which models
// nothing in the kernel and is set enormous by default.
#pragma once

#include <vector>

#include "src/ebpf/loader.h"
#include "src/ebpf/runtime.h"

namespace ebpf {

// Observes every interpreted instruction *before* it executes: pc is the
// index into the running image and regs the live register file of the
// executing frame. Used by analysis/rangefuzz to check concrete register
// values against static range claims.
class InsnTracer {
 public:
  virtual ~InsnTracer() = default;
  virtual void OnInsn(u32 pc, const u64* regs) = 0;
};

// Which executor runs the image. kThreaded is the production engine:
// threaded dispatch over the pre-decoded micro-ops the JIT lowered
// (computed-goto where available, dense switch behind
// UNTENABLE_SWITCH_DISPATCH). kLegacy is the original decode-per-step
// interpreter, kept selectable so the differential tests and
// bench/dispatch_hotpath can prove the engines observationally identical
// and measure the gap.
enum class ExecEngine {
  kThreaded,
  kLegacy,
};

// ExecOptions::cpu sentinel: run on whatever CPU the calling thread is
// bound to (cpu0 for the main thread, the worker's CPU on a CpuPool
// thread). Explicit values rebind the thread for the duration of the run.
inline constexpr u32 kCpuInherit = 0xffff'ffffu;

struct ExecOptions {
  // Harness safety net (NOT a kernel mechanism): abort after this many
  // interpreted instructions. Defaults high enough that every legitimate
  // experiment completes.
  u64 max_insns = 1ULL << 34;
  // Simulated-time multiplier per charge; lets the long-running experiments
  // compress wall-clock while keeping simulated time honest (documented in
  // EXPERIMENTS.md).
  u64 cost_multiplier = 1;
  // Run inside rcu_read_lock/unlock (the real dispatcher always does).
  bool wrap_in_rcu = true;
  // Optional per-instruction observer (not owned; may be null).
  InsnTracer* tracer = nullptr;
  // Executor selection (see ExecEngine).
  ExecEngine engine = ExecEngine::kThreaded;
  // Simulated CPU this execution runs on; visible to helpers
  // (bpf_get_smp_processor_id) and to per-CPU map addressing. Must be
  // < the kernel's KernelConfig::num_cpus when explicit; the default
  // inherits the calling thread's binding so pool-dispatched fires run on
  // their worker's CPU.
  u32 cpu = kCpuInherit;
};

struct ExecStats {
  u64 insns = 0;
  u64 helper_calls = 0;
  u64 sim_time_charged_ns = 0;
  u32 tail_calls = 0;
  u32 max_frame_depth = 0;
  u64 open_refs_at_exit = 0;  // acquired but never released in this run
};

struct ExecResult {
  u64 r0 = 0;
  ExecStats stats;
};

// Executes `prog` with r1 = ctx_addr. `loader` resolves tail-call targets
// (may be null if the program cannot tail-call). Any kernel fault aborts
// execution with the fault status after the oops is recorded.
xbase::Result<ExecResult> Execute(Bpf& bpf, const LoadedProgram& prog,
                                  simkern::Addr ctx_addr,
                                  const ExecOptions& options = {},
                                  const Loader* loader = nullptr);

}  // namespace ebpf

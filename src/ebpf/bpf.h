// The eBPF subsystem aggregate: one per simulated kernel. Owns the map
// table, helper registry and fault registry; the loader and executor operate
// through it.
#pragma once

#include "src/ebpf/fault.h"
#include "src/ebpf/helper.h"
#include "src/ebpf/kfunc.h"
#include "src/ebpf/map.h"
#include "src/simkern/kernel.h"

namespace ebpf {

class Bpf {
 public:
  explicit Bpf(simkern::Kernel& kernel) : kernel_(kernel), maps_(kernel) {
    xbase::Status status = RegisterDefaultHelpers(helpers_, kernel);
    if (status.ok()) {
      status = RegisterDefaultKfuncs(kfuncs_, kernel);
    }
    if (!status.ok()) {
      kernel.Panic("helper registration failed: " + status.message());
    }
  }
  Bpf(const Bpf&) = delete;
  Bpf& operator=(const Bpf&) = delete;

  simkern::Kernel& kernel() { return kernel_; }
  MapTable& maps() { return maps_; }
  HelperRegistry& helpers() { return helpers_; }
  const HelperRegistry& helpers() const { return helpers_; }
  KfuncRegistry& kfuncs() { return kfuncs_; }
  const KfuncRegistry& kfuncs() const { return kfuncs_; }
  FaultRegistry& faults() { return faults_; }

  HelperCtx MakeHelperCtx(RuntimeHooks* hooks = nullptr) {
    return HelperCtx{kernel_, maps_, faults_, hooks};
  }

 private:
  simkern::Kernel& kernel_;
  MapTable maps_;
  HelperRegistry helpers_;
  KfuncRegistry kfuncs_;
  FaultRegistry faults_;
};

}  // namespace ebpf

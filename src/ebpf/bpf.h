// The eBPF subsystem aggregate: one per simulated kernel. Owns the map
// table, helper registry and fault registry; the loader and executor operate
// through it.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>

#include "src/ebpf/fault.h"
#include "src/ebpf/helper.h"
#include "src/ebpf/kfunc.h"
#include "src/ebpf/map.h"
#include "src/simkern/kernel.h"

namespace ebpf {

class Bpf {
 public:
  explicit Bpf(simkern::Kernel& kernel) : kernel_(kernel), maps_(kernel) {
    xbase::Status status = RegisterDefaultHelpers(helpers_, kernel);
    if (status.ok()) {
      status = RegisterDefaultKfuncs(kfuncs_, kernel);
    }
    if (!status.ok()) {
      kernel.Panic("helper registration failed: " + status.message());
    }
  }
  Bpf(const Bpf&) = delete;
  Bpf& operator=(const Bpf&) = delete;

  simkern::Kernel& kernel() { return kernel_; }
  MapTable& maps() { return maps_; }
  HelperRegistry& helpers() { return helpers_; }
  const HelperRegistry& helpers() const { return helpers_; }
  KfuncRegistry& kfuncs() { return kfuncs_; }
  const KfuncRegistry& kfuncs() const { return kfuncs_; }
  FaultRegistry& faults() { return faults_; }

  HelperCtx MakeHelperCtx(RuntimeHooks* hooks = nullptr) {
    return HelperCtx{kernel_, maps_, faults_, hooks};
  }

  // --- reusable execution stacks ------------------------------------------
  // Steady-state executions lease a cached per-CPU stack mapping instead of
  // mapping/unmapping a fresh region per run (the per-fire allocation the
  // dispatch hot path must not pay). Each simulated CPU has its own cached
  // slot, so concurrent fires on different CPUs never contend and never
  // share stack bytes. Returns 0 when the bound CPU's slot is busy (a
  // nested execution holds it) or `bytes` differs from the cached size —
  // the caller then maps its own region, preserving the old behaviour
  // exactly. The leased region is re-zeroed so programs see the same
  // fresh-map contents either way.
  simkern::Addr AcquireExecStack(xbase::usize bytes) {
    ExecStackSlot& slot = exec_stacks_[kernel_.current_cpu()];
    if (slot.busy.exchange(true, std::memory_order_acquire)) {
      return 0;
    }
    if (slot.base == 0) {
      auto mapped = kernel_.mem().Map(
          bytes, simkern::MemPerm::kReadWrite,
          simkern::RegionKind::kExtensionStack, "bpf-stack");
      if (!mapped.ok()) {
        slot.busy.store(false, std::memory_order_release);
        return 0;
      }
      slot.base = mapped.value();
      slot.size = bytes;
      return slot.base;  // freshly mapped: already zero-filled
    }
    simkern::Region* region = kernel_.mem().FindRegion(slot.base);
    if (bytes != slot.size || region == nullptr) {
      slot.busy.store(false, std::memory_order_release);
      return 0;
    }
    // Re-zero only the prefix the previous run could have dirtied (its
    // frame high-water mark, reported at release). Frames beyond the mark
    // never had R10 pointing into them, and every admitted stack access is
    // frame-relative — except under injected verifier faults, where a
    // contained program's promise is void anyway; such runs release with
    // the conservative full-region mark.
    const xbase::usize dirty =
        std::min<xbase::usize>(slot.dirty, region->bytes.size());
    std::fill(region->bytes.begin(),
              region->bytes.begin() + static_cast<std::ptrdiff_t>(dirty),
              xbase::u8{0});
    return slot.base;
  }
  void ReleaseExecStack(
      xbase::usize dirty_bytes = ~static_cast<xbase::usize>(0)) {
    ExecStackSlot& slot = exec_stacks_[kernel_.current_cpu()];
    slot.dirty = dirty_bytes;
    slot.busy.store(false, std::memory_order_release);
  }

 private:
  // One cached stack per simulated CPU; only the bound thread touches its
  // slot, so the fields other than `busy` need no synchronization.
  struct alignas(64) ExecStackSlot {
    simkern::Addr base = 0;
    xbase::usize size = 0;
    // Bytes of the cached stack the last lease may have written; the next
    // lease zeroes only this prefix. Starts at "everything" for safety.
    xbase::usize dirty = ~static_cast<xbase::usize>(0);
    std::atomic<bool> busy{false};
  };

  simkern::Kernel& kernel_;
  MapTable maps_;
  HelperRegistry helpers_;
  KfuncRegistry kfuncs_;
  FaultRegistry faults_;
  std::array<ExecStackSlot, simkern::kMaxCpus> exec_stacks_;
};

}  // namespace ebpf

// The eBPF subsystem aggregate: one per simulated kernel. Owns the map
// table, helper registry and fault registry; the loader and executor operate
// through it.
#pragma once

#include <algorithm>
#include <atomic>

#include "src/ebpf/fault.h"
#include "src/ebpf/helper.h"
#include "src/ebpf/kfunc.h"
#include "src/ebpf/map.h"
#include "src/simkern/kernel.h"

namespace ebpf {

class Bpf {
 public:
  explicit Bpf(simkern::Kernel& kernel) : kernel_(kernel), maps_(kernel) {
    xbase::Status status = RegisterDefaultHelpers(helpers_, kernel);
    if (status.ok()) {
      status = RegisterDefaultKfuncs(kfuncs_, kernel);
    }
    if (!status.ok()) {
      kernel.Panic("helper registration failed: " + status.message());
    }
  }
  Bpf(const Bpf&) = delete;
  Bpf& operator=(const Bpf&) = delete;

  simkern::Kernel& kernel() { return kernel_; }
  MapTable& maps() { return maps_; }
  HelperRegistry& helpers() { return helpers_; }
  const HelperRegistry& helpers() const { return helpers_; }
  KfuncRegistry& kfuncs() { return kfuncs_; }
  const KfuncRegistry& kfuncs() const { return kfuncs_; }
  FaultRegistry& faults() { return faults_; }

  HelperCtx MakeHelperCtx(RuntimeHooks* hooks = nullptr) {
    return HelperCtx{kernel_, maps_, faults_, hooks};
  }

  // --- reusable execution stack -------------------------------------------
  // Steady-state executions lease one cached stack mapping instead of
  // mapping/unmapping a fresh region per run (the per-fire allocation the
  // dispatch hot path must not pay). Returns 0 when the cache is busy (a
  // nested or concurrent execution holds it) or `bytes` differs from the
  // cached size — the caller then maps its own region, preserving the old
  // behaviour exactly. The leased region is re-zeroed so programs see the
  // same fresh-map contents either way.
  simkern::Addr AcquireExecStack(xbase::usize bytes) {
    if (exec_stack_busy_.exchange(true, std::memory_order_acquire)) {
      return 0;
    }
    if (exec_stack_base_ == 0) {
      auto mapped = kernel_.mem().Map(
          bytes, simkern::MemPerm::kReadWrite,
          simkern::RegionKind::kExtensionStack, "bpf-stack");
      if (!mapped.ok()) {
        exec_stack_busy_.store(false, std::memory_order_release);
        return 0;
      }
      exec_stack_base_ = mapped.value();
      exec_stack_size_ = bytes;
      return exec_stack_base_;  // freshly mapped: already zero-filled
    }
    simkern::Region* region = kernel_.mem().FindRegion(exec_stack_base_);
    if (bytes != exec_stack_size_ || region == nullptr) {
      exec_stack_busy_.store(false, std::memory_order_release);
      return 0;
    }
    // Re-zero only the prefix the previous run could have dirtied (its
    // frame high-water mark, reported at release). Frames beyond the mark
    // never had R10 pointing into them, and every admitted stack access is
    // frame-relative — except under injected verifier faults, where a
    // contained program's promise is void anyway; such runs release with
    // the conservative full-region mark.
    const xbase::usize dirty =
        std::min<xbase::usize>(exec_stack_dirty_, region->bytes.size());
    std::fill(region->bytes.begin(),
              region->bytes.begin() + static_cast<std::ptrdiff_t>(dirty),
              xbase::u8{0});
    return exec_stack_base_;
  }
  void ReleaseExecStack(
      xbase::usize dirty_bytes = ~static_cast<xbase::usize>(0)) {
    exec_stack_dirty_ = dirty_bytes;
    exec_stack_busy_.store(false, std::memory_order_release);
  }

 private:
  simkern::Kernel& kernel_;
  MapTable maps_;
  HelperRegistry helpers_;
  KfuncRegistry kfuncs_;
  FaultRegistry faults_;
  simkern::Addr exec_stack_base_ = 0;
  xbase::usize exec_stack_size_ = 0;
  // Bytes of the cached stack the last lease may have written; the next
  // lease zeroes only this prefix. Starts at "everything" for safety.
  xbase::usize exec_stack_dirty_ = ~static_cast<xbase::usize>(0);
  std::atomic<bool> exec_stack_busy_{false};
};

}  // namespace ebpf

// LSM helper suite (lsm family, v6.12). These are the primitives an
// lsm_file_open policy composes its allow/deny decision from: read the
// decision context (inode, flags, acting credentials, path), emit an audit
// record, and rate-limit noisy verdict paths. All are HelperFamily::kLsm —
// callable only from lsm programs, which in turn only privileged loaders
// may install; the family is v6.12-gated so the Figure 3/4 census sees it
// grow the helper surface exactly like sched_ext did.
#include <algorithm>
#include <cstring>
#include <vector>

#include "src/ebpf/helpers_internal.h"
#include "src/simkern/lsm.h"
#include "src/xbase/bytes.h"

namespace ebpf {

using simkern::KernelVersion;
using simkern::LsmCtxLayout;
using xbase::usize;

namespace {

// Registration shorthand (mirrors helpers_core.cc / helpers_sched.cc).
struct Def {
  HelperWiring& wiring;

  xbase::Status operator()(
      HelperSpec spec,
      std::initializer_list<std::pair<const char*, usize>> links,
      HelperFn fn) {
    if (spec.entry_func.empty()) {
      spec.entry_func = spec.name;
    }
    LinkHelperCallGraph(wiring.kernel, spec.entry_func, links);
    return wiring.registry.Register(std::move(spec), std::move(fn));
  }
};

HelperSpec MakeSpec(u32 id, const char* name,
                    std::initializer_list<ArgType> args, RetType ret,
                    u64 cost_ns = simkern::kCostHelperCallNs) {
  HelperSpec spec;
  spec.id = id;
  spec.name = name;
  spec.introduced = KernelVersion{6, 12};  // lands with the lsm hook family
  spec.family = HelperFamily::kLsm;
  int i = 0;
  for (ArgType arg : args) {
    spec.args[i++] = arg;
  }
  spec.ret = ret;
  spec.cost_ns = cost_ns;
  return spec;
}

constexpr ArgType kUMem = ArgType::kPtrToUninitMem;
constexpr ArgType kMem = ArgType::kPtrToMem;
constexpr ArgType kSz = ArgType::kMemSize;
constexpr ArgType kScalarA = ArgType::kScalar;

// Audit sink cap: keep the latest records, drop the oldest beyond this.
constexpr usize kMaxAuditRecords = 256;
// Rate limiter: at most this many allowances per key per kernel lifetime
// window (the storm resets state between rigs, so a simple counter models
// the token bucket well enough for the census).
constexpr u64 kRatelimitBurst = 16;

// Reads a fixed-width field out of the hook's context block. Helpers are
// invoked outside program execution in unit tests (hooks == nullptr);
// there is no context to read then, mirroring the sched helpers' -1.
xbase::Result<u64> ReadCtxField(HelperCtx& ctx, usize offset, usize size) {
  if (ctx.hooks == nullptr) {
    return static_cast<u64>(-1);
  }
  XB_ASSIGN_OR_RETURN(
      const std::vector<u8> raw,
      ReadMem(ctx.kernel, ctx.hooks->ctx_addr() + offset, size));
  return size == 8 ? xbase::LoadLe64(raw.data())
                   : static_cast<u64>(xbase::LoadLe32(raw.data()));
}

}  // namespace

xbase::Status RegisterLsmHelpers(HelperWiring& wiring) {
  Def def{wiring};
  std::shared_ptr<HelperState> state = wiring.state;

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperLsmInodeId, "bpf_lsm_inode_id", {},
               RetType::kInteger),
      {{"task", 2}, {"mm", 1}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        return ReadCtxField(ctx, LsmCtxLayout::kInodeId, 8);
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperLsmOpenFlags, "bpf_lsm_open_flags", {},
               RetType::kInteger),
      {{"task", 1}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        return ReadCtxField(ctx, LsmCtxLayout::kOpenFlags, 4);
      }));

  XB_RETURN_IF_ERROR(def(
      MakeSpec(kHelperLsmCurrentUid, "bpf_lsm_current_uid", {},
               RetType::kInteger),
      {{"task", 3}},
      [](HelperCtx& ctx, const HelperArgs&) -> xbase::Result<u64> {
        return ReadCtxField(ctx, LsmCtxLayout::kUid, 4);
      }));

  XB_RETURN_IF_ERROR(def(
      // Path materialization walks dentries and may fault pages in, so it
      // touches mm as well as the task's fs context (real d_path depth).
      MakeSpec(kHelperLsmReadPath, "bpf_lsm_read_path", {kUMem, kSz},
               RetType::kInteger),
      {{"mm", 36}, {"task", 2}, {"util", 4}},
      [](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
        if (ctx.hooks == nullptr) {
          return static_cast<u64>(-1);
        }
        XB_ASSIGN_OR_RETURN(const u64 path_len,
                            ReadCtxField(ctx, LsmCtxLayout::kPathLen, 4));
        const usize want = std::min<usize>(
            {static_cast<usize>(a[1]), static_cast<usize>(path_len),
             LsmCtxLayout::kPathMax});
        if (want == 0) {
          return 0;
        }
        XB_ASSIGN_OR_RETURN(
            const std::vector<u8> path,
            ReadMem(ctx.kernel,
                    ctx.hooks->ctx_addr() + LsmCtxLayout::kPath, want));
        XB_RETURN_IF_ERROR(WriteMem(ctx.kernel, a[0], path));
        return want;
      }));

  {
    HelperSpec spec = MakeSpec(kHelperLsmAudit, "bpf_lsm_audit",
                               {kMem, kSz}, RetType::kInteger);
    spec.writes_state = true;  // appends to the kernel audit log
    // Audit emission is the family's heavy path: records leave the kernel
    // over netlink, so the entry reaches deep into net_core, like the
    // real audit_log_end -> netlink_unicast chain.
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"net_core", 520}, {"trace", 5}, {"util", 2}},
        [state](HelperCtx& ctx, const HelperArgs& a) -> xbase::Result<u64> {
          const usize size = std::min<usize>(a[1], 128);
          XB_ASSIGN_OR_RETURN(std::vector<u8> record,
                              ReadMem(ctx.kernel, a[0], size));
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->lsm_audit.size() >= kMaxAuditRecords) {
            state->lsm_audit.erase(state->lsm_audit.begin());
          }
          state->lsm_audit.push_back(std::move(record));
          return 0;
        }));
  }

  {
    HelperSpec spec = MakeSpec(kHelperLsmRatelimit, "bpf_lsm_ratelimit",
                               {kScalarA}, RetType::kInteger);
    spec.writes_state = true;  // consumes bucket tokens
    XB_RETURN_IF_ERROR(def(
        std::move(spec), {{"task", 1}, {"timekeeping", 1}},
        [state](HelperCtx&, const HelperArgs& a) -> xbase::Result<u64> {
          std::lock_guard<std::mutex> lock(state->mu);
          u64& used = state->lsm_buckets[a[0]];
          if (used >= kRatelimitBurst) {
            return 0;  // bucket empty: suppress
          }
          ++used;
          return 1;  // allowed
        }));
  }

  return xbase::Status::Ok();
}

}  // namespace ebpf

// Definitions shared between the verifier, interpreter, JIT and helpers:
// the runtime encoding of map references and the errno values helpers
// return (negative, in the kernel convention).
#pragma once

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace ebpf {

using xbase::s64;
using xbase::u64;

// A ld_imm64 with BPF_PSEUDO_MAP_FD resolves at load time to a tagged map
// handle rather than a kernel pointer; helpers decode the fd back out. The
// tag lives far outside the simulated kernel address range, so a program
// that tries to dereference a map handle faults instead of aliasing real
// memory.
inline constexpr u64 kMapHandleTag = 0xc0ffee00'00000000ULL;
inline constexpr u64 kMapHandleMask = 0xffffff00'00000000ULL;

inline u64 MapHandleFromFd(int fd) {
  return kMapHandleTag | static_cast<xbase::u32>(fd);
}

inline bool IsMapHandle(u64 value) {
  return (value & kMapHandleMask) == kMapHandleTag;
}

inline xbase::Result<int> FdFromMapHandle(u64 value) {
  if (!IsMapHandle(value)) {
    return xbase::InvalidArgument("value is not a map handle");
  }
  return static_cast<int>(value & 0xffffffff);
}

// Errno values, returned negative from helpers.
inline constexpr s64 kEPerm = 1;
inline constexpr s64 kENoEnt = 2;
inline constexpr s64 kESrch = 3;
inline constexpr s64 kE2Big = 7;
inline constexpr s64 kEAgain = 11;
inline constexpr s64 kEFault = 14;
inline constexpr s64 kEExist = 17;
inline constexpr s64 kEInval = 22;
inline constexpr s64 kENoSpc = 28;

inline u64 NegErrno(s64 errno_value) {
  return static_cast<u64>(-errno_value);
}

}  // namespace ebpf

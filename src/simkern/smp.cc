#include "src/simkern/smp.h"

#include <chrono>

namespace simkern {

CpuPool::CpuPool(const void* owner, xbase::u32 num_cpus)
    : owner_(owner),
      num_cpus_(num_cpus < 1 ? 1
                             : (num_cpus > kMaxCpus ? kMaxCpus : num_cpus)) {
  queues_.reserve(num_cpus_);
  for (xbase::u32 cpu = 0; cpu < num_cpus_; ++cpu) {
    queues_.push_back(std::make_unique<CpuQueue>());
  }
}

CpuPool::~CpuPool() { Stop(); }

void CpuPool::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return;
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(num_cpus_);
  for (xbase::u32 cpu = 0; cpu < num_cpus_; ++cpu) {
    workers_.emplace_back([this, cpu] { WorkerMain(cpu); });
  }
}

void CpuPool::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  Drain();
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
}

void CpuPool::Submit(xbase::u32 cpu, std::function<void()> fn) {
  const xbase::u32 target = cpu < num_cpus_ ? cpu : 0;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
}

void CpuPool::SubmitAny(std::function<void()> fn) {
  Submit(next_cpu_.fetch_add(1, std::memory_order_relaxed) % num_cpus_,
         std::move(fn));
}

bool CpuPool::TakeTask(xbase::u32 cpu, std::function<void()>& out) {
  {
    CpuQueue& own = *queues_[cpu];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's queue (classic work stealing:
  // owner pops the front, thieves take the back).
  for (xbase::u32 i = 1; i < num_cpus_; ++i) {
    const xbase::u32 victim = (cpu + i) % num_cpus_;
    CpuQueue& queue = *queues_[victim];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (!queue.tasks.empty()) {
      out = std::move(queue.tasks.back());
      queue.tasks.pop_back();
      stats_[cpu].stolen.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void CpuPool::FinishTask() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void CpuPool::WorkerMain(xbase::u32 cpu) {
  ThisThreadCpuBinding() = CpuBinding{owner_, cpu};
  std::function<void()> task;
  while (true) {
    if (TakeTask(cpu, task)) {
      task();
      task = nullptr;
      stats_[cpu].executed.fetch_add(1, std::memory_order_relaxed);
      FinishTask();
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    // Timed wait: self-heals a wakeup that raced between the empty check
    // above and this wait.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void CpuPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace simkern

// Simulated task_structs. Each task owns a region in SimMemory laid out per
// TaskLayout, so helpers (bpf_get_current_pid_tgid, bpf_get_current_comm,
// bpf_get_task_stack, bpf_task_storage_get) read real bytes through the
// memory model — and a NULL task pointer dereferences the NULL guard page
// exactly like the bpf_task_storage_get bug the paper cites.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/simkern/mem.h"
#include "src/simkern/object.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

// Byte offsets inside a task_struct region.
struct TaskLayout {
  static constexpr xbase::usize kPid = 0;        // u32
  static constexpr xbase::usize kTgid = 4;       // u32
  static constexpr xbase::usize kStartTime = 8;  // u64 ns
  static constexpr xbase::usize kComm = 16;      // char[16]
  static constexpr xbase::usize kStackPtr = 32;  // u64: kernel stack addr
  static constexpr xbase::usize kFlags = 40;     // u64
  static constexpr xbase::usize kSize = 64;
};

struct Task {
  xbase::u32 pid = 0;
  xbase::u32 tgid = 0;
  std::string comm;
  Addr struct_addr = 0;
  Addr stack_addr = 0;
  xbase::usize stack_size = 0;
  ObjectId object_id = 0;  // refcount identity in the ObjectTable
};

class TaskTable {
 public:
  // Creates the task, maps its struct + kernel stack, registers the
  // refcounted identity.
  xbase::Result<xbase::u32> Create(SimMemory& mem, ObjectTable& objects,
                                   xbase::u32 pid, xbase::u32 tgid,
                                   const std::string& comm);

  // Task exit: unmaps the struct and stack, drops the create-time reference
  // on the ObjectTable identity (an extension still holding a reference
  // keeps the identity alive as a zombie until it releases), and clears
  // `current_` if it points at the removed task.
  xbase::Status Remove(SimMemory& mem, ObjectTable& objects, xbase::u32 pid);

  xbase::Result<const Task*> FindByPid(xbase::u32 pid) const;
  xbase::Result<const Task*> FindByAddr(Addr struct_addr) const;

  // All live pids, ascending.
  std::vector<xbase::u32> Pids() const;

  // "current" — the task on whose behalf the extension runs.
  xbase::Status SetCurrent(xbase::u32 pid);
  const Task* current() const { return current_; }

  xbase::usize size() const { return tasks_.size(); }

 private:
  std::map<xbase::u32, Task> tasks_;
  const Task* current_ = nullptr;
};

}  // namespace simkern

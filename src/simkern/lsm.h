// LSM hook substrate: the context block an lsm_file_open extension decides
// over. The block is written by whoever fires the hook (tests, storms, a
// future security core) and is read-only to the program; the extension's
// return value is the verdict — 0 allows the open, a positive errno denies
// it. Unlike the packet and tracing families there is no neutral verdict:
// a failed or quarantined lsm attachment must deny (fail closed), which is
// why HookPoint::kLsmFileOpen defaults to FallbackAction::kFailClosed.
#pragma once

#include "src/xbase/types.h"

namespace simkern {

// Context block layout for lsm_file_open extensions (mirrors the style of
// SchedCtxLayout: fixed offsets into a 64-byte read-only block).
struct LsmCtxLayout {
  static constexpr xbase::usize kPid = 0;        // u32 acting task
  static constexpr xbase::usize kUid = 4;        // u32 acting cred uid
  static constexpr xbase::usize kInodeId = 8;    // u64 target inode
  static constexpr xbase::usize kOpenFlags = 16; // u32 O_* flags
  static constexpr xbase::usize kPathLen = 20;   // u32 valid path bytes
  static constexpr xbase::usize kPath = 24;      // path bytes (kPathMax)
  static constexpr xbase::usize kPathMax = 40;
  static constexpr xbase::usize kSize = 64;
};

}  // namespace simkern

// Per-thread simulated-CPU binding. SMP in the simkern is real threads:
// each worker thread of a Kernel's CpuPool binds itself to one simulated
// CPU, and every per-CPU subsystem (clock, RCU reader state, runqueues,
// per-CPU map addressing, extension scopes) resolves "which CPU am I on?"
// through this thread-local binding instead of a shared mutable field —
// the shared `Kernel::current_cpu_` u32 was a data race the moment two
// threads executed concurrently.
//
// The binding carries an owner pointer (the Kernel it belongs to) so that
// a thread that outlives one Kernel and services another never leaks its
// old CPU number: a mismatched owner resolves to CPU 0.
#pragma once

#include "src/xbase/types.h"

namespace simkern {

// Upper bound on simulated CPUs per kernel; the scaling experiments sweep
// 1..16. Runtime width is KernelConfig::num_cpus (clamped to this).
inline constexpr xbase::u32 kMaxCpus = 16;

struct CpuBinding {
  const void* owner = nullptr;
  xbase::u32 cpu = 0;
};

// The calling thread's binding (mutable reference; assign to bind).
// Inline on purpose: current_cpu() sits on the hook-fire hot path (map
// addressing, exec-stack slots, fire scratch), and an out-of-line TLS
// accessor costs a call per resolution. CpuBinding zero-initializes
// constantly, so there is no thread-local init guard.
inline CpuBinding& ThisThreadCpuBinding() {
  thread_local CpuBinding binding;
  return binding;
}

// Resolves the calling thread's CPU for `owner`: the bound CPU when the
// binding belongs to `owner` and is in range, else CPU 0 (the main thread
// and any foreign thread execute as cpu0, preserving the historical
// single-CPU behaviour).
inline xbase::u32 BoundCpuFor(const void* owner, xbase::u32 num_cpus) {
  const CpuBinding& binding = ThisThreadCpuBinding();
  return (binding.owner == owner && binding.cpu < num_cpus) ? binding.cpu
                                                            : 0;
}

}  // namespace simkern

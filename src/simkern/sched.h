// Simulated scheduler substrate: a single global runqueue of runnable
// tasks. The queue itself is deliberately dumb — FIFO order, no priorities —
// because the interesting policy decisions are delegated to extensions
// through the sched_pick_next hook (sched_ext-style). What the queue *does*
// own is the ground truth the robustness machinery needs: who is runnable,
// how long each task has waited, and which waits have already been flagged
// as starvation so a starving task is charged once per bound, not once per
// scan.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

// Context block layout for sched_pick_next extensions (read-only to the
// program, written by the scheduler core before every pick).
struct SchedCtxLayout {
  static constexpr xbase::usize kNowNs = 0;       // u64 simulated time
  static constexpr xbase::usize kNrRunnable = 8;  // u32
  static constexpr xbase::usize kPrevPid = 12;    // u32 last dispatched pid
  static constexpr xbase::usize kTick = 16;       // u64 scheduling cycle
  static constexpr xbase::usize kSize = 64;
};

struct RunQueueEntry {
  xbase::u32 pid = 0;
  xbase::u64 enqueued_ns = 0;  // when the task (re)became runnable
};

// Per-pid scheduling statistics that survive across run cycles (an entry is
// removed from the queue while its task holds the CPU).
struct SchedTaskStats {
  xbase::u64 last_ran_ns = 0;
  xbase::u64 runs = 0;
  // Last time the starvation detector flagged this task; cleared when the
  // task finally runs. Edge-triggers the detector: one flag per bound.
  xbase::u64 last_starved_flag_ns = 0;
};

class RunQueue {
 public:
  // Marks `pid` runnable. AlreadyExists if it is queued.
  xbase::Status Enqueue(xbase::u32 pid, xbase::u64 now_ns);
  // Removes `pid` from the runnable set (stats are kept).
  xbase::Status Dequeue(xbase::u32 pid);
  // Task exit: drop the queue entry (if any) and the stats record.
  void Drop(xbase::u32 pid);

  bool Contains(xbase::u32 pid) const;
  xbase::usize runnable_count() const { return queue_.size(); }
  // Queue-order enumeration (index 0 = head = next default pick).
  xbase::Result<xbase::u32> PidAt(xbase::usize index) const;

  // The built-in fail-over policy: head of the queue. Combined with the
  // dispatch cycle (dequeue, run, re-enqueue at the tail) this is plain
  // round-robin — every runnable task is served within nr_runnable slices.
  xbase::Result<xbase::u32> PickDefault() const;

  // Dispatch bookkeeping: dequeues `pid`, stamps last_ran/runs and clears
  // its starvation flag. The caller re-enqueues after the timeslice.
  xbase::Status MarkRan(xbase::u32 pid, xbase::u64 now_ns);

  // How long `pid` has been waiting on the queue.
  xbase::Result<xbase::u64> WaitNs(xbase::u32 pid, xbase::u64 now_ns) const;
  // Longest wait currently on the queue (0 if empty).
  xbase::u64 MaxWaitNs(xbase::u64 now_ns) const;

  // Starvation detector: returns the pids that have waited >= bound_ns and
  // have not been flagged within the last bound_ns, flagging them. A task
  // that keeps starving is therefore re-flagged once per bound until it
  // finally runs.
  std::vector<xbase::u32> ScanStarved(xbase::u64 bound_ns, xbase::u64 now_ns);

  // Lifetime stats for `pid` (zeroes if never enqueued).
  SchedTaskStats StatsOf(xbase::u32 pid) const;

  // Cooperative yield plumbing for the bpf_sched_yield helper: the running
  // extension raises the flag, the scheduler core consumes it once per pick
  // and treats the verdict as a voluntary hand-off to the default policy.
  void RequestYield() { yield_requested_ = true; }
  bool ConsumeYield() {
    const bool was = yield_requested_;
    yield_requested_ = false;
    return was;
  }

 private:
  std::deque<RunQueueEntry> queue_;
  std::map<xbase::u32, SchedTaskStats> stats_;
  bool yield_requested_ = false;
};

}  // namespace simkern

// Simulated monotonic clock. All timing in the reproduction — RCU stall
// detection, watchdog budgets, the §2.2 "800 seconds" run — is measured in
// simulated nanoseconds so experiments are deterministic and fast: executing
// one BPF instruction advances the clock by a fixed cost instead of waiting.
//
// SMP: each simulated CPU owns an independent timeline (cache-line padded),
// advanced only by the thread bound to that CPU (see cpu.h). Cross-CPU
// reads (aggregating a scaling curve, the max_now_ns watermark) use relaxed
// atomics on the single-writer cells; callers aggregate at quiescent points
// (after a CpuPool drain), which provides the happens-before edge.
#pragma once

#include <array>
#include <atomic>

#include "src/simkern/cpu.h"
#include "src/xbase/types.h"

namespace simkern {

class SimClock {
 public:
  // Binds the clock to `owner` (the Kernel) with `num_cpus` independent
  // per-CPU timelines. An unconfigured clock (unit tests constructing a
  // bare SimClock) stays single-timeline: every thread resolves to cpu 0.
  void Configure(const void* owner, xbase::u32 num_cpus) {
    owner_ = owner;
    num_cpus_ = num_cpus < 1 ? 1 : (num_cpus > kMaxCpus ? kMaxCpus
                                                        : num_cpus);
  }
  xbase::u32 num_cpus() const { return num_cpus_; }

  // The calling thread's CPU timeline.
  xbase::u64 now_ns() const { return now_ns(Bound()); }
  void Advance(xbase::u64 delta_ns) { Advance(Bound(), delta_ns); }

  // Explicit-CPU accessors (harnesses and aggregation).
  xbase::u64 now_ns(xbase::u32 cpu) const {
    return cells_[cpu < num_cpus_ ? cpu : 0].ns.load(
        std::memory_order_relaxed);
  }
  void Advance(xbase::u32 cpu, xbase::u64 delta_ns) {
    // Single-writer per cell: a plain load+store pair, not an RMW, so the
    // per-instruction charge path stays a couple of movs.
    std::atomic<xbase::u64>& cell = cells_[cpu < num_cpus_ ? cpu : 0].ns;
    cell.store(cell.load(std::memory_order_relaxed) + delta_ns,
               std::memory_order_relaxed);
  }

  // The furthest-ahead CPU timeline: the simulated wall time of the whole
  // machine. Aggregate throughput = events / max_now_ns delta.
  xbase::u64 max_now_ns() const {
    xbase::u64 max = 0;
    for (xbase::u32 cpu = 0; cpu < num_cpus_; ++cpu) {
      const xbase::u64 ns = cells_[cpu].ns.load(std::memory_order_relaxed);
      if (ns > max) {
        max = ns;
      }
    }
    return max;
  }

  // The bound CPU's raw cell, for hot loops that charge per instruction
  // and must not pay the TLS resolution per charge (resolve once per run).
  std::atomic<xbase::u64>& BoundCell() { return cells_[Bound()].ns; }

  void Reset() {
    for (auto& cell : cells_) {
      cell.ns.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<xbase::u64> ns{0};
  };

  xbase::u32 Bound() const { return BoundCpuFor(owner_, num_cpus_); }

  std::array<Cell, kMaxCpus> cells_{};
  const void* owner_ = nullptr;
  xbase::u32 num_cpus_ = 1;
};

// Default instruction/operation costs, loosely calibrated to a ~1 GHz
// machine so "seconds" in the paper map to simulated seconds here.
inline constexpr xbase::u64 kCostPerInsnNs = 1;
inline constexpr xbase::u64 kCostHelperCallNs = 20;
inline constexpr xbase::u64 kCostMapOpNs = 50;

inline constexpr xbase::u64 kNsPerMs = 1'000'000ULL;
inline constexpr xbase::u64 kNsPerSec = 1'000'000'000ULL;

}  // namespace simkern

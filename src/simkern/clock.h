// Simulated monotonic clock. All timing in the reproduction — RCU stall
// detection, watchdog budgets, the §2.2 "800 seconds" run — is measured in
// simulated nanoseconds so experiments are deterministic and fast: executing
// one BPF instruction advances the clock by a fixed cost instead of waiting.
#pragma once

#include "src/xbase/types.h"

namespace simkern {

class SimClock {
 public:
  xbase::u64 now_ns() const { return now_ns_; }

  void Advance(xbase::u64 delta_ns) { now_ns_ += delta_ns; }

  void Reset() { now_ns_ = 0; }

 private:
  xbase::u64 now_ns_ = 0;
};

// Default instruction/operation costs, loosely calibrated to a ~1 GHz
// machine so "seconds" in the paper map to simulated seconds here.
inline constexpr xbase::u64 kCostPerInsnNs = 1;
inline constexpr xbase::u64 kCostHelperCallNs = 20;
inline constexpr xbase::u64 kCostMapOpNs = 50;

inline constexpr xbase::u64 kNsPerMs = 1'000'000ULL;
inline constexpr xbase::u64 kNsPerSec = 1'000'000'000ULL;

// Simulated SMP width; extensions execute on cpu 0.
inline constexpr xbase::u32 kNumCpus = 4;

}  // namespace simkern

// Kernel-function call graph. Every internal kernel function in the
// simulation — hand-written helper plumbing and generated subsystem bodies
// alike — registers here with its call edges; the Figure 3 analysis then
// measures, for each eBPF helper, how many unique kernel functions its call
// graph reaches. Matches the paper's static-analysis methodology (function
// pointers excluded, so counts are lower bounds).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

using FuncId = xbase::u32;

class CallGraph {
 public:
  // Registers (or returns the existing id of) a function.
  FuncId Intern(const std::string& name);

  // Declares caller → callee. Both are interned on demand.
  void AddEdge(const std::string& caller, const std::string& callee);
  void AddEdgeById(FuncId caller, FuncId callee);

  bool Contains(const std::string& name) const;
  xbase::Result<FuncId> Find(const std::string& name) const;
  const std::string& NameOf(FuncId id) const;

  // Number of unique nodes in the call graph rooted at `name`, counting the
  // root itself — the Figure 3 metric.
  xbase::Result<xbase::usize> ReachableCount(const std::string& name) const;
  std::vector<FuncId> ReachableSet(FuncId root) const;

  xbase::usize node_count() const { return names_.size(); }
  xbase::usize edge_count() const { return edge_count_; }

 private:
  std::map<std::string, FuncId> ids_;
  std::vector<std::string> names_;
  std::vector<std::vector<FuncId>> adjacency_;
  xbase::usize edge_count_ = 0;
};

}  // namespace simkern

#include "src/simkern/callgraph.h"

#include <algorithm>

namespace simkern {

using xbase::usize;

FuncId CallGraph::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  const FuncId id = static_cast<FuncId>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  adjacency_.emplace_back();
  return id;
}

void CallGraph::AddEdge(const std::string& caller, const std::string& callee) {
  AddEdgeById(Intern(caller), Intern(callee));
}

void CallGraph::AddEdgeById(FuncId caller, FuncId callee) {
  auto& edges = adjacency_[caller];
  if (std::find(edges.begin(), edges.end(), callee) == edges.end()) {
    edges.push_back(callee);
    ++edge_count_;
  }
}

bool CallGraph::Contains(const std::string& name) const {
  return ids_.contains(name);
}

xbase::Result<FuncId> CallGraph::Find(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) {
    return xbase::NotFound("unknown kernel function: " + name);
  }
  return it->second;
}

const std::string& CallGraph::NameOf(FuncId id) const { return names_[id]; }

std::vector<FuncId> CallGraph::ReachableSet(FuncId root) const {
  std::vector<bool> seen(names_.size(), false);
  std::vector<FuncId> stack{root};
  std::vector<FuncId> result;
  seen[root] = true;
  while (!stack.empty()) {
    const FuncId node = stack.back();
    stack.pop_back();
    result.push_back(node);
    for (FuncId next : adjacency_[node]) {
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return result;
}

xbase::Result<usize> CallGraph::ReachableCount(const std::string& name) const {
  XB_ASSIGN_OR_RETURN(const FuncId root, Find(name));
  return ReachableSet(root).size();
}

}  // namespace simkern

#include "src/simkern/cpu.h"

// ThisThreadCpuBinding is header-inline (hook-fire hot path); this TU just
// anchors the header for build-system dependency tracking.

// Reference-counted kernel objects with a full acquire/release audit trail.
// The paper's Table 1 counts two refcount-leak bugs in helpers
// (bpf_get_task_stack, bpf_sk_lookup); the audit here is what lets the
// experiments *observe* such leaks: after every extension invocation the
// harness snapshots counts and diffs them.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/simkern/cpu.h"
#include "src/simkern/mem.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

using ObjectId = xbase::u64;

enum class ObjectType : xbase::u8 {
  kTask,
  kSock,
  kRequestSock,
  kMap,
  kStack,   // kernel stack buffer handed out by bpf_get_task_stack
  kOther,
};

std::string_view ObjectTypeName(ObjectType type);

struct KObject {
  ObjectId id = 0;
  ObjectType type = ObjectType::kOther;
  std::string name;
  xbase::s64 refcount = 1;
  Addr struct_addr = 0;  // backing region in SimMemory (0 if none)
  bool freed = false;
};

struct RefcountSnapshot {
  std::map<ObjectId, xbase::s64> counts;
};

struct RefLeak {
  ObjectId id;
  std::string name;
  xbase::s64 before;
  xbase::s64 after;
};

// One successful refcount mutation, recorded while a journal is active.
// Create and Acquire are +1, Release is -1. Failed operations (faults) do
// not mutate the count and are not journaled.
struct RefJournalEvent {
  ObjectId id;
  xbase::s32 delta;
};

class ObjectTable {
 public:
  // Binds the table to `owner` (the Kernel): the refcount journal becomes
  // per-CPU (each CPU's extension scope journals only its own mutations),
  // and the table itself is internally locked so concurrent CPUs can
  // acquire/release safely. Unconfigured tables behave single-CPU.
  void Configure(const void* owner, xbase::u32 num_cpus);

  ObjectId Create(ObjectType type, std::string name, Addr struct_addr = 0);

  // Refcount manipulation. Acquire on a freed object is a use-after-free:
  // it is reported as KernelFault. Release below zero is an underflow fault.
  xbase::Status Acquire(ObjectId id);
  xbase::Status Release(ObjectId id);

  // Drops the object once its refcount reaches zero via Release; Destroy
  // forces it (trusted teardown paths only).
  xbase::Status Destroy(ObjectId id);

  xbase::Result<KObject*> Find(ObjectId id);
  bool IsLive(ObjectId id) const;
  xbase::s64 RefcountOf(ObjectId id) const;  // -1 if unknown

  RefcountSnapshot Snapshot() const;
  // Objects whose refcount grew relative to the snapshot (leaks), plus
  // objects created since that are still referenced.
  std::vector<RefLeak> DiffSince(const RefcountSnapshot& snapshot) const;

  // Journal-based alternative to Snapshot/DiffSince for the dispatch hot
  // path: instead of copying the whole table before every extension run,
  // record the (usually zero) mutations made during the run. Journals are
  // per-CPU: Begin/End act on the calling thread's CPU slot, and mutations
  // land in the mutating thread's own slot — concurrent extension scopes
  // on different CPUs never see each other's refcount traffic. The buffers
  // are owned by the table and reused across scopes, so a run that touches
  // no refcounts costs two flag writes and no allocation.
  void BeginRefJournal();
  // Stops recording and returns the events since BeginRefJournal on this
  // CPU. The reference stays valid until this CPU's next BeginRefJournal.
  const std::vector<RefJournalEvent>& EndRefJournal();

  xbase::usize live_count() const;

 private:
  // One CPU's journal; only the thread bound to that CPU touches it.
  struct alignas(64) JournalSlot {
    std::vector<RefJournalEvent> events;
    bool active = false;
  };

  xbase::u32 Bound() const { return BoundCpuFor(owner_, num_cpus_); }
  void JournalEvent(ObjectId id, xbase::s32 delta) {
    JournalSlot& slot = journals_[Bound()];
    if (slot.active) {
      slot.events.push_back(RefJournalEvent{id, delta});
    }
  }

  mutable std::mutex mu_;
  std::map<ObjectId, KObject> objects_;
  ObjectId next_id_ = 1;
  std::array<JournalSlot, kMaxCpus> journals_;
  const void* owner_ = nullptr;
  xbase::u32 num_cpus_ = 1;
};

}  // namespace simkern

#include "src/simkern/object.h"

#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::s64;
using xbase::usize;

std::string_view ObjectTypeName(ObjectType type) {
  switch (type) {
    case ObjectType::kTask:
      return "task";
    case ObjectType::kSock:
      return "sock";
    case ObjectType::kRequestSock:
      return "request_sock";
    case ObjectType::kMap:
      return "map";
    case ObjectType::kStack:
      return "stack";
    case ObjectType::kOther:
      return "object";
  }
  return "object";
}

void ObjectTable::Configure(const void* owner, xbase::u32 num_cpus) {
  owner_ = owner;
  num_cpus_ =
      num_cpus < 1 ? 1 : (num_cpus > kMaxCpus ? kMaxCpus : num_cpus);
}

ObjectId ObjectTable::Create(ObjectType type, std::string name,
                             Addr struct_addr) {
  std::lock_guard<std::mutex> guard(mu_);
  const ObjectId id = next_id_++;
  KObject object;
  object.id = id;
  object.type = type;
  object.name = std::move(name);
  object.struct_addr = struct_addr;
  objects_.emplace(id, std::move(object));
  JournalEvent(id, +1);
  return id;
}

xbase::Status ObjectTable::Acquire(ObjectId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return xbase::KernelFault(
        xbase::StrFormat("refcount_inc on nonexistent object %llu",
                         static_cast<unsigned long long>(id)));
  }
  if (it->second.freed) {
    return xbase::KernelFault("use-after-free: acquire of freed " +
                              it->second.name);
  }
  ++it->second.refcount;
  JournalEvent(id, +1);
  return xbase::Status::Ok();
}

xbase::Status ObjectTable::Release(ObjectId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return xbase::KernelFault(
        xbase::StrFormat("refcount_dec on nonexistent object %llu",
                         static_cast<unsigned long long>(id)));
  }
  KObject& object = it->second;
  if (object.freed) {
    return xbase::KernelFault("use-after-free: release of freed " +
                              object.name);
  }
  if (object.refcount <= 0) {
    return xbase::KernelFault("refcount underflow on " + object.name);
  }
  --object.refcount;
  if (object.refcount == 0) {
    object.freed = true;
  }
  JournalEvent(id, -1);
  return xbase::Status::Ok();
}

xbase::Status ObjectTable::Destroy(ObjectId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return xbase::NotFound("no such object");
  }
  it->second.freed = true;
  it->second.refcount = 0;
  return xbase::Status::Ok();
}

xbase::Result<KObject*> ObjectTable::Find(ObjectId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return xbase::NotFound(
        xbase::StrFormat("object %llu", static_cast<unsigned long long>(id)));
  }
  return &it->second;
}

bool ObjectTable::IsLive(ObjectId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  return it != objects_.end() && !it->second.freed;
}

s64 ObjectTable::RefcountOf(ObjectId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = objects_.find(id);
  return it == objects_.end() ? -1 : it->second.refcount;
}

RefcountSnapshot ObjectTable::Snapshot() const {
  std::lock_guard<std::mutex> guard(mu_);
  RefcountSnapshot snapshot;
  for (const auto& [id, object] : objects_) {
    if (!object.freed) {
      snapshot.counts.emplace(id, object.refcount);
    }
  }
  return snapshot;
}

std::vector<RefLeak> ObjectTable::DiffSince(
    const RefcountSnapshot& snapshot) const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<RefLeak> leaks;
  for (const auto& [id, object] : objects_) {
    if (object.freed) {
      continue;
    }
    const auto before_it = snapshot.counts.find(id);
    const s64 before = before_it == snapshot.counts.end()
                           ? 0
                           : before_it->second;
    if (object.refcount > before) {
      leaks.push_back(RefLeak{id, object.name, before, object.refcount});
    }
  }
  return leaks;
}

void ObjectTable::BeginRefJournal() {
  JournalSlot& slot = journals_[Bound()];
  slot.events.clear();  // keeps capacity — steady-state scopes do not allocate
  slot.active = true;
}

const std::vector<RefJournalEvent>& ObjectTable::EndRefJournal() {
  JournalSlot& slot = journals_[Bound()];
  slot.active = false;
  return slot.events;
}

usize ObjectTable::live_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  usize count = 0;
  for (const auto& [_, object] : objects_) {
    if (!object.freed) {
      ++count;
    }
  }
  return count;
}

}  // namespace simkern

#include "src/simkern/lock.h"

#include <chrono>

namespace simkern {

namespace {
// Wall-clock bound on a cross-CPU spin before the lock is declared wedged
// (the remote holder never released — e.g. its extension was terminated
// with the lock held and nobody repaired it yet).
constexpr std::chrono::seconds kSpinWedgeTimeout{5};
constexpr std::chrono::milliseconds kSpinRecheck{20};
}  // namespace

void LockTable::Configure(const void* owner, xbase::u32 num_cpus,
                          const SimClock* clock) {
  owner_ = owner;
  num_cpus_ =
      num_cpus < 1 ? 1 : (num_cpus > kMaxCpus ? kMaxCpus : num_cpus);
  clock_ = clock;
}

LockId LockTable::Create(std::string name) {
  std::lock_guard<std::mutex> guard(mu_);
  const LockId id = next_id_++;
  locks_.emplace(id, SpinLock{id, std::move(name), false, {}, 0, 0, {}});
  return id;
}

xbase::Status LockTable::Acquire(LockId id, std::string holder) {
  const xbase::u32 cpu = Bound();
  std::unique_lock<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) {
    return xbase::KernelFault("spin_lock on nonexistent lock");
  }
  SpinLock& lock = it->second;
  if (lock.held && (lock.holder_cpu == cpu || owner_ == nullptr)) {
    // Preemption is off while extensions run: re-acquiring a spinlock this
    // CPU already holds never unblocks. This is the deadlock class of
    // Table 1. (Unconfigured tables treat every acquire-of-held this way.)
    return xbase::KernelFault("deadlock: spin_lock on held lock " +
                              lock.name + " (holder " + lock.holder + ")");
  }
  if (lock.held) {
    // Held by another CPU: genuinely spin (block this thread) until the
    // remote release, recording the contention.
    ++lock.stats.contended_acquires;
    const auto spin_start = std::chrono::steady_clock::now();
    const auto deadline = spin_start + kSpinWedgeTimeout;
    bool released = cv_.wait_until(guard, deadline, [&] {
      // The map node is stable; re-find is unnecessary.
      return !lock.held;
    });
    // Re-check with periodic wakeups folded into wait_until's predicate
    // loop; `released` is false only at the deadline.
    lock.stats.spin_wall_ns += static_cast<xbase::u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - spin_start)
            .count());
    if (!released) {
      return xbase::KernelFault(
          "spinlock wedged: " + lock.name +
          " held across the spin timeout (holder " + lock.holder + ")");
    }
  }
  lock.held = true;
  lock.holder = std::move(holder);
  lock.holder_cpu = cpu;
  lock.acquired_at_ns = NowOn(cpu);
  ++lock.stats.acquires;
  held_by_cpu_[cpu].count.fetch_add(1, std::memory_order_relaxed);
  return xbase::Status::Ok();
}

void LockTable::ReleaseLocked(SpinLock& lock) {
  const xbase::u64 now = NowOn(lock.holder_cpu);
  const xbase::u64 held_ns =
      now > lock.acquired_at_ns ? now - lock.acquired_at_ns : 0;
  lock.stats.hold_sim_ns += held_ns;
  if (held_ns > lock.stats.max_hold_sim_ns) {
    lock.stats.max_hold_sim_ns = held_ns;
  }
  lock.held = false;
  held_by_cpu_[lock.holder_cpu].count.fetch_sub(1,
                                                std::memory_order_relaxed);
  cv_.notify_all();
}

xbase::Status LockTable::Release(LockId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  if (it == locks_.end()) {
    return xbase::KernelFault("spin_unlock on nonexistent lock");
  }
  if (!it->second.held) {
    return xbase::KernelFault("spin_unlock of lock not held: " +
                              it->second.name);
  }
  ReleaseLocked(it->second);
  it->second.holder.clear();
  return xbase::Status::Ok();
}

bool LockTable::IsHeld(LockId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  return it != locks_.end() && it->second.held;
}

std::vector<LockId> LockTable::HeldLocks() const {
  std::vector<LockId> held;
  HeldLocksInto(&held);
  return held;
}

void LockTable::HeldLocksInto(std::vector<LockId>* out) const {
  const xbase::u32 cpu = Bound();
  std::lock_guard<std::mutex> guard(mu_);
  for (const auto& [id, lock] : locks_) {
    if (lock.held && lock.holder_cpu == cpu) {
      out->push_back(id);
    }
  }
}

const SpinLock* LockTable::Find(LockId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  return it == locks_.end() ? nullptr : &it->second;
}

LockStats LockTable::StatsOf(LockId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  return it == locks_.end() ? LockStats{} : it->second.stats;
}

LockStats LockTable::Totals() const {
  std::lock_guard<std::mutex> guard(mu_);
  LockStats total;
  for (const auto& [id, lock] : locks_) {
    total.acquires += lock.stats.acquires;
    total.contended_acquires += lock.stats.contended_acquires;
    total.spin_wall_ns += lock.stats.spin_wall_ns;
    total.hold_sim_ns += lock.stats.hold_sim_ns;
    if (lock.stats.max_hold_sim_ns > total.max_hold_sim_ns) {
      total.max_hold_sim_ns = lock.stats.max_hold_sim_ns;
    }
  }
  return total;
}

void LockTable::ForceRelease(LockId id) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(id);
  if (it != locks_.end()) {
    if (it->second.held) {
      ReleaseLocked(it->second);
    }
    it->second.holder = "forced";
  }
}

}  // namespace simkern

#include "src/simkern/lock.h"

namespace simkern {

LockId LockTable::Create(std::string name) {
  const LockId id = next_id_++;
  locks_.emplace(id, SpinLock{id, std::move(name), false, {}});
  return id;
}

xbase::Status LockTable::Acquire(LockId id, std::string holder) {
  auto it = locks_.find(id);
  if (it == locks_.end()) {
    return xbase::KernelFault("spin_lock on nonexistent lock");
  }
  if (it->second.held) {
    // Preemption is off while extensions run: re-acquiring a held spinlock
    // never unblocks. This is the deadlock class of Table 1.
    return xbase::KernelFault("deadlock: spin_lock on held lock " +
                              it->second.name + " (holder " +
                              it->second.holder + ")");
  }
  it->second.held = true;
  it->second.holder = std::move(holder);
  ++held_count_;
  return xbase::Status::Ok();
}

xbase::Status LockTable::Release(LockId id) {
  auto it = locks_.find(id);
  if (it == locks_.end()) {
    return xbase::KernelFault("spin_unlock on nonexistent lock");
  }
  if (!it->second.held) {
    return xbase::KernelFault("spin_unlock of lock not held: " +
                              it->second.name);
  }
  it->second.held = false;
  it->second.holder.clear();
  --held_count_;
  return xbase::Status::Ok();
}

bool LockTable::IsHeld(LockId id) const {
  auto it = locks_.find(id);
  return it != locks_.end() && it->second.held;
}

std::vector<LockId> LockTable::HeldLocks() const {
  std::vector<LockId> held;
  HeldLocksInto(&held);
  return held;
}

void LockTable::HeldLocksInto(std::vector<LockId>* out) const {
  for (const auto& [id, lock] : locks_) {
    if (lock.held) {
      out->push_back(id);
    }
  }
}

const SpinLock* LockTable::Find(LockId id) const {
  auto it = locks_.find(id);
  return it == locks_.end() ? nullptr : &it->second;
}

void LockTable::ForceRelease(LockId id) {
  auto it = locks_.find(id);
  if (it != locks_.end()) {
    if (it->second.held) {
      --held_count_;
    }
    it->second.held = false;
    it->second.holder = "forced";
  }
}

}  // namespace simkern

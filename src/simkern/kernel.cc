#include "src/simkern/kernel.h"

#include "src/xbase/log.h"
#include "src/xbase/strfmt.h"

namespace simkern {

namespace {
constexpr xbase::usize kDmesgCapacity = 1024;
}  // namespace

Kernel::Kernel(const KernelConfig& config) : config_(config) {
  if (config_.build_subsystem_graph) {
    BuildSubsystems(callgraph_, DefaultSubsystems(), config_.subsystem_seed);
  }
  Printk(xbase::StrFormat("Linux-sim %s booting (unprivileged_bpf_disabled=%d)",
                          config_.version.ToString().c_str(),
                          config_.unprivileged_bpf_disabled ? 1 : 0));
}

void Kernel::Oops(const std::string& message) {
  OopsRecord record{clock_.now_ns(), message, scope_label_, false};
  Printk("------------[ cut here ]------------");
  Printk(message);
  if (in_scope_) {
    Printk("CPU: 0 PID: ext Comm: " + scope_label_);
  }
  Printk("---[ end trace ]---");
  if (oops_recovery_ && in_scope_ && state_ == KernelState::kRunning) {
    // Containment path: the incident is on an attributed extension's CPU
    // time; record it, charge it to the scope, keep the kernel running.
    record.recovered = true;
    ++scope_oopses_;
    Printk("oops contained: attributed to " + scope_label_ +
           ", kernel keeps running");
  } else if (state_ == KernelState::kRunning) {
    state_ = KernelState::kOopsed;
  }
  oopses_.push_back(std::move(record));
}

void Kernel::BeginExtensionScope(const std::string& label) {
  in_scope_ = true;
  scope_label_ = label;  // copy-assign: reuses scope_label_'s capacity
  scope_oopses_ = 0;
}

xbase::u32 Kernel::EndExtensionScope() {
  const xbase::u32 raised = scope_oopses_;
  in_scope_ = false;
  scope_label_.clear();
  scope_oopses_ = 0;
  return raised;
}

void Kernel::Panic(const std::string& message) {
  Printk("Kernel panic - not syncing: " + message);
  state_ = KernelState::kPanicked;
}

xbase::Status Kernel::Route(xbase::Status status) {
  if (status.code() == xbase::Code::kKernelFault) {
    Oops(status.message());
  }
  return status;
}

void Kernel::Printk(const std::string& line) {
  std::lock_guard<std::mutex> lock(dmesg_mu_);
  dmesg_.push_back(xbase::StrFormat("[%8.6f] %s",
                                    static_cast<double>(clock_.now_ns()) / 1e9,
                                    line.c_str()));
  if (dmesg_.size() > kDmesgCapacity) {
    dmesg_.pop_front();
  }
  XB_DEBUG << dmesg_.back();
}

xbase::Status Kernel::BootstrapWorkload() {
  // A few tasks; pid 1234 is "current" for tracing helpers.
  XB_RETURN_IF_ERROR(tasks_.Create(mem_, objects_, 1, 1, "init").status());
  XB_RETURN_IF_ERROR(
      tasks_.Create(mem_, objects_, 1234, 1200, "memcached").status());
  XB_RETURN_IF_ERROR(
      tasks_.Create(mem_, objects_, 4321, 4321, "nginx").status());
  XB_RETURN_IF_ERROR(tasks_.SetCurrent(1234));

  // Established TCP flows for the sk_lookup helpers.
  XB_RETURN_IF_ERROR(net_.CreateSock(mem_, objects_,
                                     SockTuple{0x0a000001, 0x0a000002, 8080,
                                               40000},
                                     6)
                         .status());
  XB_RETURN_IF_ERROR(net_.CreateSock(mem_, objects_,
                                     SockTuple{0x0a000001, 0x0a000003, 443,
                                               40001},
                                     6)
                         .status());
  return xbase::Status::Ok();
}

xbase::Status Kernel::RemoveTask(xbase::u32 pid) {
  runqueue_.Drop(pid);
  XB_RETURN_IF_ERROR(tasks_.Remove(mem_, objects_, pid));
  Printk(xbase::StrFormat("task %u exited", pid));
  return xbase::Status::Ok();
}

}  // namespace simkern

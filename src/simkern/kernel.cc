#include "src/simkern/kernel.h"

#include "src/xbase/log.h"
#include "src/xbase/strfmt.h"

namespace simkern {

namespace {
constexpr xbase::usize kDmesgCapacity = 1024;
}  // namespace

Kernel::Kernel(const KernelConfig& config) : config_(config) {
  if (config_.num_cpus < 1) {
    config_.num_cpus = 1;
  } else if (config_.num_cpus > kMaxCpus) {
    config_.num_cpus = kMaxCpus;
  }
  clock_.Configure(this, config_.num_cpus);
  rcu_.Configure(this, config_.num_cpus);
  locks_.Configure(this, config_.num_cpus, &clock_);
  objects_.Configure(this, config_.num_cpus);
  scopes_ = std::vector<CpuScope>(config_.num_cpus);
  runqueues_.reserve(config_.num_cpus);
  for (xbase::u32 cpu = 0; cpu < config_.num_cpus; ++cpu) {
    runqueues_.push_back(std::make_unique<RunQueue>());
  }
  if (config_.build_subsystem_graph) {
    BuildSubsystems(callgraph_, DefaultSubsystems(), config_.subsystem_seed);
  }
  Printk(xbase::StrFormat(
      "Linux-sim %s booting (unprivileged_bpf_disabled=%d nr_cpus=%u)",
      config_.version.ToString().c_str(),
      config_.unprivileged_bpf_disabled ? 1 : 0, config_.num_cpus));
}

Kernel::~Kernel() { StopCpus(); }

void Kernel::StartCpus() {
  if (pool_ != nullptr && pool_->running()) {
    return;
  }
  // Arm concurrency guards *before* any worker thread exists; the store is
  // sequenced before thread creation, so workers always observe it.
  mem_.EnableConcurrentAccess();
  smp_active_.store(true, std::memory_order_release);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<CpuPool>(this, config_.num_cpus);
  }
  pool_->Start();
  Printk(xbase::StrFormat("smp: bringing up %u CPUs", config_.num_cpus));
}

void Kernel::StopCpus() {
  if (pool_ != nullptr) {
    pool_->Stop();
  }
}

void Kernel::Oops(const std::string& message) {
  CpuScope& scope = scopes_[current_cpu()];
  OopsRecord record{clock_.now_ns(), message, scope.label, false};
  Printk("------------[ cut here ]------------");
  Printk(message);
  if (scope.open) {
    Printk(xbase::StrFormat("CPU: %u PID: ext Comm: %s", current_cpu(),
                            scope.label.c_str()));
  }
  Printk("---[ end trace ]---");
  KernelState running = KernelState::kRunning;
  if (oops_recovery() && scope.open &&
      state() == KernelState::kRunning) {
    // Containment path: the incident is on an attributed extension's CPU
    // time; record it, charge it to the scope, keep the kernel running.
    record.recovered = true;
    ++scope.oopses;
    Printk("oops contained: attributed to " + scope.label +
           ", kernel keeps running");
  } else {
    state_.compare_exchange_strong(running, KernelState::kOopsed,
                                   std::memory_order_acq_rel);
  }
  std::lock_guard<std::mutex> lock(oops_mu_);
  oopses_.push_back(std::move(record));
}

void Kernel::BeginExtensionScope(const std::string& label) {
  CpuScope& scope = scopes_[current_cpu()];
  scope.open = true;
  scope.label = label;  // copy-assign: reuses the label's capacity
  scope.oopses = 0;
}

xbase::u32 Kernel::EndExtensionScope() {
  CpuScope& scope = scopes_[current_cpu()];
  const xbase::u32 raised = scope.oopses;
  scope.open = false;
  scope.label.clear();
  scope.oopses = 0;
  return raised;
}

void Kernel::Panic(const std::string& message) {
  Printk("Kernel panic - not syncing: " + message);
  state_.store(KernelState::kPanicked, std::memory_order_release);
}

xbase::Status Kernel::Route(xbase::Status status) {
  if (status.code() == xbase::Code::kKernelFault) {
    Oops(status.message());
  }
  return status;
}

void Kernel::Printk(const std::string& line) {
  std::lock_guard<std::mutex> lock(dmesg_mu_);
  dmesg_.push_back(xbase::StrFormat("[%8.6f] %s",
                                    static_cast<double>(clock_.now_ns()) / 1e9,
                                    line.c_str()));
  if (dmesg_.size() > kDmesgCapacity) {
    dmesg_.pop_front();
  }
  XB_DEBUG << dmesg_.back();
}

xbase::Status Kernel::BootstrapWorkload() {
  // A few tasks; pid 1234 is "current" for tracing helpers.
  XB_RETURN_IF_ERROR(tasks_.Create(mem_, objects_, 1, 1, "init").status());
  XB_RETURN_IF_ERROR(
      tasks_.Create(mem_, objects_, 1234, 1200, "memcached").status());
  XB_RETURN_IF_ERROR(
      tasks_.Create(mem_, objects_, 4321, 4321, "nginx").status());
  XB_RETURN_IF_ERROR(tasks_.SetCurrent(1234));

  // Established TCP flows for the sk_lookup helpers.
  XB_RETURN_IF_ERROR(net_.CreateSock(mem_, objects_,
                                     SockTuple{0x0a000001, 0x0a000002, 8080,
                                               40000},
                                     6)
                         .status());
  XB_RETURN_IF_ERROR(net_.CreateSock(mem_, objects_,
                                     SockTuple{0x0a000001, 0x0a000003, 443,
                                               40001},
                                     6)
                         .status());
  return xbase::Status::Ok();
}

xbase::Status Kernel::RemoveTask(xbase::u32 pid) {
  for (auto& runqueue : runqueues_) {
    runqueue->Drop(pid);
  }
  XB_RETURN_IF_ERROR(tasks_.Remove(mem_, objects_, pid));
  Printk(xbase::StrFormat("task %u exited", pid));
  return xbase::Status::Ok();
}

}  // namespace simkern

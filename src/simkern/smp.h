// The SMP substrate: N real OS threads, each bound to one simulated CPU
// (see cpu.h). Work — hook fires, sched ticks, map churn — is submitted to
// a target CPU's queue or round-robin across the machine; an idle CPU
// steals from the back of a loaded sibling's queue, so a storm of fires
// spreads across the machine the way softirq load does. Drain() is the
// quiescence barrier every aggregate read (clocks, counters, dmesg)
// happens behind.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/simkern/cpu.h"
#include "src/xbase/types.h"

namespace simkern {

class CpuPool {
 public:
  // `owner` is the Kernel the worker threads bind their CPUs to.
  CpuPool(const void* owner, xbase::u32 num_cpus);
  ~CpuPool();
  CpuPool(const CpuPool&) = delete;
  CpuPool& operator=(const CpuPool&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  xbase::u32 num_cpus() const { return num_cpus_; }

  // Enqueue work for a specific CPU (it may still be stolen by an idle
  // sibling — affinity is a preference, not a pin).
  void Submit(xbase::u32 cpu, std::function<void()> fn);
  // Round-robin across CPUs.
  void SubmitAny(std::function<void()> fn);

  // Blocks until every submitted task has finished executing. The barrier
  // the harnesses put between a storm burst and its invariant checks.
  void Drain();

  // Per-CPU accounting (read at quiescent points).
  xbase::u64 executed_on(xbase::u32 cpu) const {
    return stats_[cpu].executed.load(std::memory_order_relaxed);
  }
  // Tasks this CPU took from another CPU's queue.
  xbase::u64 stolen_by(xbase::u32 cpu) const {
    return stats_[cpu].stolen.load(std::memory_order_relaxed);
  }

 private:
  struct CpuQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };
  struct alignas(64) CpuStats {
    std::atomic<xbase::u64> executed{0};
    std::atomic<xbase::u64> stolen{0};
  };

  void WorkerMain(xbase::u32 cpu);
  // Pops one task: own queue front first, then steal from the back of the
  // most loaded sibling. Returns false when nothing is runnable.
  bool TakeTask(xbase::u32 cpu, std::function<void()>& out);
  void FinishTask();

  const void* owner_;
  xbase::u32 num_cpus_;
  std::vector<std::unique_ptr<CpuQueue>> queues_;
  std::array<CpuStats, kMaxCpus> stats_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<xbase::u64> pending_{0};
  std::atomic<xbase::u32> next_cpu_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace simkern

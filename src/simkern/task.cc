#include "src/simkern/task.h"

#include <cstring>

#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::u32;
using xbase::u8;

xbase::Result<u32> TaskTable::Create(SimMemory& mem, ObjectTable& objects,
                                     u32 pid, u32 tgid,
                                     const std::string& comm) {
  if (tasks_.contains(pid)) {
    return xbase::AlreadyExists(xbase::StrFormat("pid %u exists", pid));
  }

  XB_ASSIGN_OR_RETURN(
      const Addr struct_addr,
      mem.Map(TaskLayout::kSize, MemPerm::kRead, RegionKind::kTaskStruct,
              xbase::StrFormat("task:%u", pid)));
  constexpr xbase::usize kStackSize = 8192;
  XB_ASSIGN_OR_RETURN(
      const Addr stack_addr,
      mem.Map(kStackSize, MemPerm::kReadWrite, RegionKind::kKernelData,
              xbase::StrFormat("task-stack:%u", pid)));

  // Populate the struct bytes.
  u8 buf[TaskLayout::kSize] = {};
  xbase::StoreLe32(buf + TaskLayout::kPid, pid);
  xbase::StoreLe32(buf + TaskLayout::kTgid, tgid);
  xbase::StoreLe64(buf + TaskLayout::kStartTime, 0);
  std::strncpy(reinterpret_cast<char*>(buf + TaskLayout::kComm), comm.c_str(),
               15);
  xbase::StoreLe64(buf + TaskLayout::kStackPtr, stack_addr);
  XB_RETURN_IF_ERROR(mem.Write(struct_addr, buf));

  Task task;
  task.pid = pid;
  task.tgid = tgid;
  task.comm = comm;
  task.struct_addr = struct_addr;
  task.stack_addr = stack_addr;
  task.stack_size = kStackSize;
  task.object_id = objects.Create(ObjectType::kTask,
                                  xbase::StrFormat("task:%u(%s)", pid,
                                                   comm.c_str()),
                                  struct_addr);
  tasks_.emplace(pid, std::move(task));
  if (current_ == nullptr) {
    current_ = &tasks_.at(pid);
  }
  return pid;
}

xbase::Status TaskTable::Remove(SimMemory& mem, ObjectTable& objects,
                                u32 pid) {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) {
    return xbase::NotFound(xbase::StrFormat("no task with pid %u", pid));
  }
  Task& task = it->second;
  if (current_ == &task) {
    current_ = nullptr;
  }
  XB_RETURN_IF_ERROR(mem.Unmap(task.struct_addr));
  XB_RETURN_IF_ERROR(mem.Unmap(task.stack_addr));
  (void)objects.Release(task.object_id);
  tasks_.erase(it);
  return xbase::Status::Ok();
}

xbase::Result<const Task*> TaskTable::FindByPid(u32 pid) const {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) {
    return xbase::NotFound(xbase::StrFormat("no task with pid %u", pid));
  }
  return &it->second;
}

xbase::Result<const Task*> TaskTable::FindByAddr(Addr struct_addr) const {
  for (const auto& [_, task] : tasks_) {
    if (task.struct_addr == struct_addr) {
      return &task;
    }
  }
  return xbase::NotFound("no task at that address");
}

std::vector<u32> TaskTable::Pids() const {
  std::vector<u32> pids;
  pids.reserve(tasks_.size());
  for (const auto& [pid, _] : tasks_) {
    pids.push_back(pid);
  }
  return pids;
}

xbase::Status TaskTable::SetCurrent(u32 pid) {
  auto it = tasks_.find(pid);
  if (it == tasks_.end()) {
    return xbase::NotFound(xbase::StrFormat("no task with pid %u", pid));
  }
  current_ = &it->second;
  return xbase::Status::Ok();
}

}  // namespace simkern

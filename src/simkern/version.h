// Kernel version timeline. Every verifier feature, helper function and
// internal kfunc in this repo is tagged with the version that introduced it;
// Figures 2 and 4 are computed from these tags. The timeline mirrors the
// versions the paper plots (v3.18 .. v6.1) plus the intermediate releases
// whose verifier behaviour the tests pin (v4.16 BPF-to-BPF calls, v5.3
// bounded loops, v5.17 bpf_loop, ...).
#pragma once

#include <compare>
#include <string>

#include "src/xbase/types.h"

namespace simkern {

struct KernelVersion {
  xbase::u16 major = 0;
  xbase::u16 minor = 0;

  auto operator<=>(const KernelVersion&) const = default;

  std::string ToString() const {
    return "v" + std::to_string(major) + "." + std::to_string(minor);
  }
};

inline constexpr KernelVersion kV3_18{3, 18};  // 2014: eBPF syscall lands
inline constexpr KernelVersion kV4_3{4, 3};    // 2015
inline constexpr KernelVersion kV4_9{4, 9};    // 2016
inline constexpr KernelVersion kV4_14{4, 14};  // 2017
inline constexpr KernelVersion kV4_16{4, 16};  // 2018: BPF-to-BPF calls
inline constexpr KernelVersion kV4_17{4, 17};  // 2018: Spectre sanitation
inline constexpr KernelVersion kV4_20{4, 20};  // 2018
inline constexpr KernelVersion kV5_2{5, 2};    // 2019: 1M insn budget
inline constexpr KernelVersion kV5_3{5, 3};    // 2019: bounded loops
inline constexpr KernelVersion kV5_4{5, 4};    // 2019
inline constexpr KernelVersion kV5_10{5, 10};  // 2020
inline constexpr KernelVersion kV5_13{5, 13};  // 2021: kfunc calls
inline constexpr KernelVersion kV5_15{5, 15};  // 2021
inline constexpr KernelVersion kV5_17{5, 17};  // 2022: bpf_loop
inline constexpr KernelVersion kV5_18{5, 18};  // 2022: the paper's study tree
inline constexpr KernelVersion kV6_1{6, 1};    // 2022
inline constexpr KernelVersion kV6_12{6, 12};  // 2024: sched_ext lands

// Release year for the growth plots (Figures 2 and 4).
int ReleaseYear(KernelVersion version);

// The versions plotted on the x-axis of Figures 2 and 4, in order. v6.12
// extends the paper's plot forward past its v6.1 cutoff: the scheduler
// helper family lands there, so the helper-growth curve keeps climbing.
inline constexpr KernelVersion kPlottedVersions[] = {
    kV3_18, kV4_3, kV4_9, kV4_14, kV4_20, kV5_4, kV5_10, kV5_15, kV6_1,
    kV6_12};

}  // namespace simkern

// Spinlocks with the misuse detection the verifier otherwise has to prove
// absent: double acquire (self-deadlock, since extensions run with
// preemption off), release of a lock not held, and locks still held when an
// extension returns. bpf_spin_lock gained exactly these checks in the
// verifier (+~500 LoC, see Fig. 2 discussion); here the runtime observes
// them instead.
//
// SMP semantics mirror the kernel's: re-acquiring a lock already held *on
// the same CPU* never unblocks (preemption off) and stays the immediate
// deadlock KernelFault; an acquire against a lock held by *another* CPU
// spins — the calling thread genuinely waits for the remote release — and
// the table records contention stats (acquires, contended acquires, wall
// spin time, simulated hold time) per lock. A spin that outlasts the wedge
// timeout (the remote holder never released) is reported as a KernelFault
// instead of hanging the harness.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/simkern/clock.h"
#include "src/simkern/cpu.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

using LockId = xbase::u64;

// Per-lock contention/hold accounting (the tentpole's "contention-aware"
// half; bench/smp_scaling and trafficgen report these).
struct LockStats {
  xbase::u64 acquires = 0;
  xbase::u64 contended_acquires = 0;  // had to wait for a remote CPU
  xbase::u64 spin_wall_ns = 0;        // wall-clock time spent spinning
  xbase::u64 hold_sim_ns = 0;         // simulated ns held (holder's clock)
  xbase::u64 max_hold_sim_ns = 0;
};

struct SpinLock {
  LockId id = 0;
  std::string name;
  bool held = false;
  std::string holder;  // diagnostic: who acquired it
  xbase::u32 holder_cpu = 0;
  xbase::u64 acquired_at_ns = 0;  // holder's simulated clock at acquire
  LockStats stats;
};

class LockTable {
 public:
  // Binds the table to `owner` (the Kernel) so same-CPU vs cross-CPU
  // acquires can be told apart, and to the kernel clock so hold times are
  // stamped in simulated ns. Unconfigured tables behave single-CPU (every
  // acquire-of-held is the deadlock fault), preserving the historical
  // semantics for standalone unit tests.
  void Configure(const void* owner, xbase::u32 num_cpus,
                 const SimClock* clock);

  LockId Create(std::string name);

  xbase::Status Acquire(LockId id, std::string holder);
  xbase::Status Release(LockId id);

  bool IsHeld(LockId id) const;
  // Locks currently held by the calling thread's CPU — nonempty at
  // extension exit is a bug charged to that extension. Other CPUs'
  // legitimately held locks are invisible here, so cross-CPU storms do not
  // trip each other's leak repair.
  std::vector<LockId> HeldLocks() const;
  // Same, but appends into a caller-owned vector so the steady-state
  // dispatch path (hooks.cc) never allocates when nothing is held.
  void HeldLocksInto(std::vector<LockId>* out) const;
  // Number of locks the calling thread's CPU holds; O(1). Dispatch checks
  // this before paying for the full table walk.
  int held_count() const {
    return held_by_cpu_[BoundCpuFor(owner_, num_cpus_)].count.load(
        std::memory_order_relaxed);
  }
  // Total held across every CPU — the quiescent-point (post-Drain) "no
  // locks leaked anywhere" invariant the storm harnesses assert.
  int held_count_total() const {
    int total = 0;
    for (xbase::u32 cpu = 0; cpu < num_cpus_; ++cpu) {
      total += held_by_cpu_[cpu].count.load(std::memory_order_relaxed);
    }
    return total;
  }
  // Pointer into the table; stable (std::map node) but its mutable fields
  // are only meaningful read at quiescent points.
  const SpinLock* Find(LockId id) const;

  // Contention accounting.
  LockStats StatsOf(LockId id) const;
  LockStats Totals() const;

  // Forced release during safe termination (trusted cleanup path).
  void ForceRelease(LockId id);

 private:
  struct alignas(64) CpuHeld {
    std::atomic<int> count{0};
  };

  xbase::u32 Bound() const { return BoundCpuFor(owner_, num_cpus_); }
  xbase::u64 NowOn(xbase::u32 cpu) const {
    return clock_ == nullptr ? 0 : clock_->now_ns(cpu);
  }
  void ReleaseLocked(SpinLock& lock);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<LockId, SpinLock> locks_;
  LockId next_id_ = 1;
  std::array<CpuHeld, kMaxCpus> held_by_cpu_;
  const void* owner_ = nullptr;
  xbase::u32 num_cpus_ = 1;
  const SimClock* clock_ = nullptr;
};

}  // namespace simkern

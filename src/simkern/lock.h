// Spinlocks with the misuse detection the verifier otherwise has to prove
// absent: double acquire (self-deadlock, since extensions run with
// preemption off), release of a lock not held, and locks still held when an
// extension returns. bpf_spin_lock gained exactly these checks in the
// verifier (+~500 LoC, see Fig. 2 discussion); here the runtime observes
// them instead.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

using LockId = xbase::u64;

struct SpinLock {
  LockId id = 0;
  std::string name;
  bool held = false;
  std::string holder;  // diagnostic: who acquired it
};

class LockTable {
 public:
  LockId Create(std::string name);

  xbase::Status Acquire(LockId id, std::string holder);
  xbase::Status Release(LockId id);

  bool IsHeld(LockId id) const;
  // All locks currently held — nonempty at extension exit is a bug.
  std::vector<LockId> HeldLocks() const;
  // Same, but appends into a caller-owned vector so the steady-state
  // dispatch path (hooks.cc) never allocates when nothing is held.
  void HeldLocksInto(std::vector<LockId>* out) const;
  // Number of locks currently held; O(1). Dispatch checks this before
  // paying for the full table walk.
  int held_count() const { return held_count_; }
  const SpinLock* Find(LockId id) const;

  // Forced release during safe termination (trusted cleanup path).
  void ForceRelease(LockId id);

 private:
  std::map<LockId, SpinLock> locks_;
  LockId next_id_ = 1;
  int held_count_ = 0;
};

}  // namespace simkern

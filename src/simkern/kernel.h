// The Kernel façade: owns every subsystem, the simulated clock, the dmesg
// ring and the crash state. Both extension frameworks (ebpf and safex) run
// against a Kernel instance; experiment harnesses construct one per trial so
// crashes are isolated and observable.
//
// SMP: the kernel runs KernelConfig::num_cpus simulated CPUs. Per-CPU state
// (clock timeline, RCU reader slot, runqueue, extension scope, held-lock
// accounting) is resolved through the calling thread's CPU binding (cpu.h):
// the main thread and any unbound thread execute as cpu0, so single-CPU
// callers see exactly the historical behaviour. StartCpus() spins up a
// CpuPool of real worker threads — one per simulated CPU, work-stealing —
// that harnesses submit hook fires and ticks to.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/simkern/callgraph.h"
#include "src/simkern/clock.h"
#include "src/simkern/cpu.h"
#include "src/simkern/lock.h"
#include "src/simkern/mem.h"
#include "src/simkern/net.h"
#include "src/simkern/object.h"
#include "src/simkern/rcu.h"
#include "src/simkern/sched.h"
#include "src/simkern/smp.h"
#include "src/simkern/subsys.h"
#include "src/simkern/task.h"
#include "src/simkern/version.h"
#include "src/xbase/status.h"

namespace simkern {

enum class KernelState : xbase::u8 {
  kRunning,
  kOopsed,    // a BUG/oops was hit; the kernel keeps limping (like a real
              // oops with panic_on_oops=0) but the incident is recorded
  kPanicked,  // unrecoverable
};

struct KernelConfig {
  KernelVersion version = kV5_18;
  bool unprivileged_bpf_disabled = true;  // the v5.15+ default the paper cites
  bool build_subsystem_graph = true;
  xbase::u64 subsystem_seed = 0x5eed;
  // Simulated SMP width, clamped to [1, kMaxCpus]. Default matches the
  // retired compile-time constant so per-CPU map layouts and existing
  // experiments are unchanged.
  xbase::u32 num_cpus = 4;
};

struct OopsRecord {
  xbase::u64 at_ns;
  std::string message;
  // Who was on-CPU when the oops was raised ("" = kernel proper). Set from
  // the extension scope, so a supervisor can attribute the incident to the
  // offending attachment instead of blaming the hook or the kernel.
  std::string attribution;
  bool recovered = false;
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config = {});
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  // --- components -----------------------------------------------------
  SimMemory& mem() { return mem_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  ObjectTable& objects() { return objects_; }
  RcuState& rcu() { return rcu_; }
  LockTable& locks() { return locks_; }
  TaskTable& tasks() { return tasks_; }
  // The calling thread's CPU's runqueue (cpu0 for unbound threads).
  RunQueue& runqueue() { return *runqueues_[current_cpu()]; }
  RunQueue& runqueue(xbase::u32 cpu) {
    return *runqueues_[cpu < num_cpus() ? cpu : 0];
  }
  NetState& net() { return net_; }
  CallGraph& callgraph() { return callgraph_; }
  const KernelConfig& config() const { return config_; }
  KernelVersion version() const { return config_.version; }
  xbase::u32 num_cpus() const { return config_.num_cpus; }

  // --- SMP ----------------------------------------------------------------
  // Starts one worker thread per simulated CPU (idempotent). Arms the
  // memory table's reader/writer lock first, so the single-threaded
  // dispatch path never pays for locking it is not using.
  void StartCpus();
  void StopCpus();
  CpuPool* cpus() { return pool_.get(); }
  // True once StartCpus has run: concurrency-aware structures (map table,
  // memory) switch their guards on.
  bool smp_active() const {
    return smp_active_.load(std::memory_order_acquire);
  }

  // --- crash machinery --------------------------------------------------
  // Records an oops. Every KERNEL_FAULT status produced by a subsystem
  // should be routed through here so the incident lands in dmesg.
  void Oops(const std::string& message);
  void Panic(const std::string& message);
  // Routes a non-OK status: KERNEL_FAULT becomes an oops; other codes pass
  // through untouched. Returns the status for chaining.
  xbase::Status Route(xbase::Status status);

  KernelState state() const {
    return state_.load(std::memory_order_acquire);
  }
  bool crashed() const { return state() != KernelState::kRunning; }
  // Read at quiescent points (oops recording is internally locked).
  const std::vector<OopsRecord>& oopses() const { return oopses_; }

  // --- recoverable-oops plumbing -----------------------------------------
  // While an extension scope is open *and* oops recovery is enabled, an
  // oops raised on-CPU is recorded and attributed to the scope's label but
  // does not transition the kernel out of kRunning: the faulting extension
  // is killed by its caller (the supervisor), not the whole machine. This
  // models the containment half of the paper's §3 proposal; a panic is
  // always fatal regardless.
  void set_oops_recovery(bool enabled) {
    oops_recovery_.store(enabled, std::memory_order_release);
  }
  bool oops_recovery() const {
    return oops_recovery_.load(std::memory_order_acquire);
  }

  // Opens/closes the attribution scope on the calling thread's CPU (one
  // level per CPU: extensions do not nest across hooks, but each CPU runs
  // its own extension concurrently). EndExtensionScope returns how many
  // oopses were raised while this CPU's scope was open. Takes the label by
  // const reference and copies into the retained string so the
  // steady-state dispatch path reuses its capacity instead of allocating
  // per fire.
  void BeginExtensionScope(const std::string& label);
  xbase::u32 EndExtensionScope();
  bool InExtensionScope() const { return scopes_[current_cpu()].open; }
  const std::string& extension_scope() const {
    return scopes_[current_cpu()].label;
  }

  // --- CPU affinity -------------------------------------------------------
  // Which simulated CPU the calling thread is executing as. Helpers
  // (bpf_get_smp_processor_id) and per-CPU map addressing read this. The
  // binding is thread-local: CpuPool workers bind at startup, the executor
  // rebinds for the duration of a run when ExecOptions::cpu is explicit,
  // and foreign threads resolve to cpu0.
  xbase::u32 current_cpu() const {
    return BoundCpuFor(this, config_.num_cpus);
  }
  void set_current_cpu(xbase::u32 cpu) {
    ThisThreadCpuBinding() =
        CpuBinding{this, cpu < config_.num_cpus ? cpu : 0};
  }

  // --- dmesg -------------------------------------------------------------
  // Printk is internally locked: admission workers log loads concurrently
  // with the caller thread. Reading dmesg() still requires the writers to
  // be quiescent (tests read it after draining the pipeline).
  void Printk(const std::string& line);
  const std::deque<std::string>& dmesg() const { return dmesg_; }

  // --- convenience bootstrap ---------------------------------------------
  // Populates a believable runtime environment: a handful of tasks (one
  // current), established sockets, and an sk_buff to attach programs to.
  xbase::Status BootstrapWorkload();

  // Task exit, end to end: removes the task from every CPU's runqueue and
  // the task table (unmapping its struct and stack, releasing its
  // identity).
  xbase::Status RemoveTask(xbase::u32 pid);

 private:
  // One CPU's extension-attribution scope; only the thread bound to that
  // CPU touches it.
  struct alignas(64) CpuScope {
    bool open = false;
    std::string label;
    xbase::u32 oopses = 0;
  };

  KernelConfig config_;
  SimMemory mem_;
  SimClock clock_;
  ObjectTable objects_;
  RcuState rcu_;
  LockTable locks_;
  TaskTable tasks_;
  std::vector<std::unique_ptr<RunQueue>> runqueues_;
  NetState net_;
  CallGraph callgraph_;
  std::atomic<KernelState> state_{KernelState::kRunning};
  std::mutex oops_mu_;
  std::vector<OopsRecord> oopses_;
  std::mutex dmesg_mu_;
  std::deque<std::string> dmesg_;
  std::atomic<bool> oops_recovery_{false};
  std::vector<CpuScope> scopes_;
  std::unique_ptr<CpuPool> pool_;
  std::atomic<bool> smp_active_{false};
};

}  // namespace simkern

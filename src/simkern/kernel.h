// The Kernel façade: owns every subsystem, the simulated clock, the dmesg
// ring and the crash state. Both extension frameworks (ebpf and safex) run
// against a Kernel instance; experiment harnesses construct one per trial so
// crashes are isolated and observable.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/simkern/callgraph.h"
#include "src/simkern/clock.h"
#include "src/simkern/lock.h"
#include "src/simkern/mem.h"
#include "src/simkern/net.h"
#include "src/simkern/object.h"
#include "src/simkern/rcu.h"
#include "src/simkern/sched.h"
#include "src/simkern/subsys.h"
#include "src/simkern/task.h"
#include "src/simkern/version.h"
#include "src/xbase/status.h"

namespace simkern {

enum class KernelState : xbase::u8 {
  kRunning,
  kOopsed,    // a BUG/oops was hit; the kernel keeps limping (like a real
              // oops with panic_on_oops=0) but the incident is recorded
  kPanicked,  // unrecoverable
};

struct KernelConfig {
  KernelVersion version = kV5_18;
  bool unprivileged_bpf_disabled = true;  // the v5.15+ default the paper cites
  bool build_subsystem_graph = true;
  xbase::u64 subsystem_seed = 0x5eed;
};

struct OopsRecord {
  xbase::u64 at_ns;
  std::string message;
  // Who was on-CPU when the oops was raised ("" = kernel proper). Set from
  // the extension scope, so a supervisor can attribute the incident to the
  // offending attachment instead of blaming the hook or the kernel.
  std::string attribution;
  bool recovered = false;
};

class Kernel {
 public:
  explicit Kernel(const KernelConfig& config = {});
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- components -----------------------------------------------------
  SimMemory& mem() { return mem_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  ObjectTable& objects() { return objects_; }
  RcuState& rcu() { return rcu_; }
  LockTable& locks() { return locks_; }
  TaskTable& tasks() { return tasks_; }
  RunQueue& runqueue() { return runqueue_; }
  NetState& net() { return net_; }
  CallGraph& callgraph() { return callgraph_; }
  const KernelConfig& config() const { return config_; }
  KernelVersion version() const { return config_.version; }

  // --- crash machinery --------------------------------------------------
  // Records an oops. Every KERNEL_FAULT status produced by a subsystem
  // should be routed through here so the incident lands in dmesg.
  void Oops(const std::string& message);
  void Panic(const std::string& message);
  // Routes a non-OK status: KERNEL_FAULT becomes an oops; other codes pass
  // through untouched. Returns the status for chaining.
  xbase::Status Route(xbase::Status status);

  KernelState state() const { return state_; }
  bool crashed() const { return state_ != KernelState::kRunning; }
  const std::vector<OopsRecord>& oopses() const { return oopses_; }

  // --- recoverable-oops plumbing -----------------------------------------
  // While an extension scope is open *and* oops recovery is enabled, an
  // oops raised on-CPU is recorded and attributed to the scope's label but
  // does not transition the kernel out of kRunning: the faulting extension
  // is killed by its caller (the supervisor), not the whole machine. This
  // models the containment half of the paper's §3 proposal; a panic is
  // always fatal regardless.
  void set_oops_recovery(bool enabled) { oops_recovery_ = enabled; }
  bool oops_recovery() const { return oops_recovery_; }

  // Opens/closes the attribution scope (one level: extensions do not nest
  // across hooks). EndExtensionScope returns how many oopses were raised
  // while the scope was open. Takes the label by const reference and copies
  // into the retained string so the steady-state dispatch path reuses its
  // capacity instead of allocating per fire.
  void BeginExtensionScope(const std::string& label);
  xbase::u32 EndExtensionScope();
  bool InExtensionScope() const { return in_scope_; }
  const std::string& extension_scope() const { return scope_label_; }

  // --- CPU affinity -------------------------------------------------------
  // Which simulated CPU the currently-executing extension runs on. Helpers
  // (bpf_get_smp_processor_id) and per-CPU map addressing read this instead
  // of assuming cpu0. The executor sets it from ExecOptions::cpu for the
  // duration of a run and restores the previous value after.
  xbase::u32 current_cpu() const { return current_cpu_; }
  void set_current_cpu(xbase::u32 cpu) { current_cpu_ = cpu; }

  // --- dmesg -------------------------------------------------------------
  // Printk is internally locked: admission workers log loads concurrently
  // with the caller thread. Reading dmesg() still requires the writers to
  // be quiescent (tests read it after draining the pipeline).
  void Printk(const std::string& line);
  const std::deque<std::string>& dmesg() const { return dmesg_; }

  // --- convenience bootstrap ---------------------------------------------
  // Populates a believable runtime environment: a handful of tasks (one
  // current), established sockets, and an sk_buff to attach programs to.
  xbase::Status BootstrapWorkload();

  // Task exit, end to end: removes the task from the runqueue and the task
  // table (unmapping its struct and stack, releasing its identity).
  xbase::Status RemoveTask(xbase::u32 pid);

 private:
  KernelConfig config_;
  SimMemory mem_;
  SimClock clock_;
  ObjectTable objects_;
  RcuState rcu_;
  LockTable locks_;
  TaskTable tasks_;
  RunQueue runqueue_;
  NetState net_;
  CallGraph callgraph_;
  KernelState state_ = KernelState::kRunning;
  std::vector<OopsRecord> oopses_;
  std::mutex dmesg_mu_;
  std::deque<std::string> dmesg_;
  bool oops_recovery_ = false;
  bool in_scope_ = false;
  std::string scope_label_;
  xbase::u32 scope_oopses_ = 0;
  xbase::u32 current_cpu_ = 0;
};

}  // namespace simkern

// Read-copy-update simulation with the stall detector that the §2.2
// termination experiment trips. eBPF programs run inside an RCU read-side
// critical section; holding it for more than the kernel's 21-second stall
// timeout (CONFIG_RCU_CPU_STALL_TIMEOUT) is the failure the paper
// demonstrates with nested bpf_loop.
#pragma once

#include <string>
#include <vector>

#include "src/simkern/clock.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

inline constexpr xbase::u64 kRcuStallTimeoutNs = 21 * kNsPerSec;

struct RcuStall {
  xbase::u64 detected_at_ns;
  xbase::u64 held_for_ns;
  std::string holder;
};

class RcuState {
 public:
  // Enter/exit a read-side critical section. Nesting is allowed, like the
  // kernel's; the stall clock starts at the outermost lock.
  void ReadLock(const SimClock& clock, std::string holder);
  xbase::Status ReadUnlock();

  bool InCriticalSection() const { return depth_ > 0; }
  int depth() const { return depth_; }
  xbase::u64 HeldForNs(const SimClock& clock) const;

  // Polled by the simulated tick (the interpreter calls this periodically,
  // mirroring the scheduler-tick origin of real stall warnings). Records a
  // stall at most once per critical section.
  void CheckStall(const SimClock& clock);

  const std::vector<RcuStall>& stalls() const { return stalls_; }
  void ClearStalls() { stalls_.clear(); }

  // Grace period: illegal while any reader is inside (would deadlock).
  xbase::Status SynchronizeRcu() const;

 private:
  int depth_ = 0;
  xbase::u64 locked_at_ns_ = 0;
  bool stall_reported_ = false;
  std::string holder_;
  std::vector<RcuStall> stalls_;
};

}  // namespace simkern

// Read-copy-update simulation with the stall detector that the §2.2
// termination experiment trips. eBPF programs run inside an RCU read-side
// critical section; holding it for more than the kernel's 21-second stall
// timeout (CONFIG_RCU_CPU_STALL_TIMEOUT) is the failure the paper
// demonstrates with nested bpf_loop.
//
// SMP: reader state is per-CPU (the thread bound to a CPU owns its slot;
// see cpu.h), and SynchronizeRcu is a genuine cross-CPU grace period — it
// blocks the calling thread until every other CPU's read-side section has
// drained, exactly like the real kernel. Calling it from inside one's own
// read-side section is still the immediate self-deadlock KernelFault.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "src/simkern/clock.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

inline constexpr xbase::u64 kRcuStallTimeoutNs = 21 * kNsPerSec;

struct RcuStall {
  xbase::u64 detected_at_ns;
  xbase::u64 held_for_ns;
  std::string holder;
};

class RcuState {
 public:
  // Binds reader slots to `owner` (the Kernel). Unconfigured state stays
  // single-CPU (all threads resolve to slot 0).
  void Configure(const void* owner, xbase::u32 num_cpus);

  // Enter/exit a read-side critical section on the calling thread's CPU.
  // Nesting is allowed, like the kernel's; the stall clock starts at the
  // outermost lock.
  void ReadLock(const SimClock& clock, std::string holder);
  xbase::Status ReadUnlock();

  // Read-side state of the calling thread's CPU.
  bool InCriticalSection() const { return depth() > 0; }
  int depth() const {
    return slots_[Bound()].depth.load(std::memory_order_relaxed);
  }
  xbase::u64 HeldForNs(const SimClock& clock) const;

  // Any CPU inside a read-side section right now.
  bool AnyReader() const;

  // Polled by the simulated tick (the interpreter calls this periodically,
  // mirroring the scheduler-tick origin of real stall warnings). Records a
  // stall at most once per critical section.
  void CheckStall(const SimClock& clock);

  const std::vector<RcuStall>& stalls() const { return stalls_; }
  void ClearStalls() { stalls_.clear(); }

  // Grace period: KernelFault if the caller is inside its own read-side
  // section (would deadlock — preemption-off semantics). Otherwise blocks
  // (wall clock) until every remote reader drains; a grace period that
  // fails to complete within the wedge timeout is a KernelFault too.
  xbase::Status SynchronizeRcu();

  // Completed grace periods (the ordering witness the cross-CPU tests
  // assert on: a synchronize that returned has incremented this *after*
  // the blocking reader exited).
  xbase::u64 grace_periods() const {
    return grace_periods_.load(std::memory_order_acquire);
  }

 private:
  // One CPU's reader state. `depth` is written only by the owning thread
  // (single-writer) and read by synchronizers; the cold fields are only
  // touched by the owning thread.
  struct alignas(64) ReaderSlot {
    std::atomic<int> depth{0};
    xbase::u64 locked_at_ns = 0;
    bool stall_reported = false;
    std::string holder;
  };

  xbase::u32 Bound() const { return BoundCpuFor(owner_, num_cpus_); }

  std::array<ReaderSlot, kMaxCpus> slots_;
  const void* owner_ = nullptr;
  xbase::u32 num_cpus_ = 1;
  std::atomic<xbase::u64> grace_periods_{0};
  // Readers skip the condvar entirely unless a synchronizer is waiting.
  std::atomic<int> sync_waiters_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::mutex stalls_mu_;
  std::vector<RcuStall> stalls_;
};

}  // namespace simkern

#include "src/simkern/sched.h"

#include <algorithm>

#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::u32;
using xbase::u64;
using xbase::usize;

xbase::Status RunQueue::Enqueue(u32 pid, u64 now_ns) {
  if (Contains(pid)) {
    return xbase::AlreadyExists(
        xbase::StrFormat("pid %u already runnable", pid));
  }
  queue_.push_back(RunQueueEntry{pid, now_ns});
  stats_.try_emplace(pid);
  return xbase::Status::Ok();
}

xbase::Status RunQueue::Dequeue(u32 pid) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [pid](const RunQueueEntry& entry) {
                           return entry.pid == pid;
                         });
  if (it == queue_.end()) {
    return xbase::NotFound(xbase::StrFormat("pid %u not runnable", pid));
  }
  queue_.erase(it);
  return xbase::Status::Ok();
}

void RunQueue::Drop(u32 pid) {
  (void)Dequeue(pid);
  stats_.erase(pid);
}

bool RunQueue::Contains(u32 pid) const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [pid](const RunQueueEntry& entry) {
                       return entry.pid == pid;
                     });
}

xbase::Result<u32> RunQueue::PidAt(usize index) const {
  if (index >= queue_.size()) {
    return xbase::NotFound(
        xbase::StrFormat("runqueue index %zu out of range", index));
  }
  return queue_[index].pid;
}

xbase::Result<u32> RunQueue::PickDefault() const {
  if (queue_.empty()) {
    return xbase::NotFound("runqueue empty");
  }
  return queue_.front().pid;
}

xbase::Status RunQueue::MarkRan(u32 pid, u64 now_ns) {
  XB_RETURN_IF_ERROR(Dequeue(pid));
  SchedTaskStats& stats = stats_[pid];
  stats.last_ran_ns = now_ns;
  ++stats.runs;
  stats.last_starved_flag_ns = 0;
  return xbase::Status::Ok();
}

xbase::Result<u64> RunQueue::WaitNs(u32 pid, u64 now_ns) const {
  for (const RunQueueEntry& entry : queue_) {
    if (entry.pid == pid) {
      return now_ns >= entry.enqueued_ns ? now_ns - entry.enqueued_ns : 0;
    }
  }
  return xbase::NotFound(xbase::StrFormat("pid %u not runnable", pid));
}

u64 RunQueue::MaxWaitNs(u64 now_ns) const {
  u64 max_wait = 0;
  for (const RunQueueEntry& entry : queue_) {
    if (now_ns > entry.enqueued_ns) {
      max_wait = std::max(max_wait, now_ns - entry.enqueued_ns);
    }
  }
  return max_wait;
}

std::vector<u32> RunQueue::ScanStarved(u64 bound_ns, u64 now_ns) {
  std::vector<u32> starved;
  for (const RunQueueEntry& entry : queue_) {
    const u64 wait = now_ns >= entry.enqueued_ns
                         ? now_ns - entry.enqueued_ns
                         : 0;
    if (wait < bound_ns) {
      continue;
    }
    SchedTaskStats& stats = stats_[entry.pid];
    if (stats.last_starved_flag_ns != 0 &&
        now_ns - stats.last_starved_flag_ns < bound_ns) {
      continue;  // already charged for this bound
    }
    stats.last_starved_flag_ns = now_ns;
    starved.push_back(entry.pid);
  }
  return starved;
}

SchedTaskStats RunQueue::StatsOf(u32 pid) const {
  auto it = stats_.find(pid);
  return it == stats_.end() ? SchedTaskStats{} : it->second;
}

}  // namespace simkern

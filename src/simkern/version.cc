#include "src/simkern/version.h"

namespace simkern {

int ReleaseYear(KernelVersion version) {
  // Historical release dates of the mainline kernels we model.
  if (version < KernelVersion{4, 0}) {
    return 2014;  // v3.18: December 2014
  }
  if (version <= KernelVersion{4, 4}) {
    return 2015;
  }
  if (version <= KernelVersion{4, 9}) {
    return 2016;
  }
  if (version <= KernelVersion{4, 14}) {
    return 2017;
  }
  if (version <= KernelVersion{4, 20}) {
    return 2018;
  }
  if (version <= KernelVersion{5, 4}) {
    return 2019;
  }
  if (version <= KernelVersion{5, 10}) {
    return 2020;
  }
  if (version <= KernelVersion{5, 15}) {
    return 2021;
  }
  if (version <= KernelVersion{6, 1}) {
    return 2022;
  }
  if (version <= KernelVersion{6, 6}) {
    return 2023;
  }
  return 2024;
}

}  // namespace simkern

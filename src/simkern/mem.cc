#include "src/simkern/mem.h"

#include <cstring>

#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::u32;
using xbase::u64;
using xbase::u8;
using xbase::usize;

std::string_view RegionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::kKernelText:
      return "kernel_text";
    case RegionKind::kKernelData:
      return "kernel_data";
    case RegionKind::kTaskStruct:
      return "task_struct";
    case RegionKind::kSockStruct:
      return "sock";
    case RegionKind::kSkBuff:
      return "sk_buff";
    case RegionKind::kMapData:
      return "map_data";
    case RegionKind::kExtensionStack:
      return "ext_stack";
    case RegionKind::kExtensionPool:
      return "ext_pool";
    case RegionKind::kPerCpu:
      return "percpu";
  }
  return "unknown";
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNullDeref:
      return "null-deref";
    case FaultKind::kUnmapped:
      return "unmapped";
    case FaultKind::kPermission:
      return "permission";
    case FaultKind::kProtectionKey:
      return "pkey";
    case FaultKind::kOutOfBounds:
      return "out-of-bounds";
  }
  return "unknown";
}

std::string MemFault::ToString() const {
  return xbase::StrFormat("BUG: %s %s at 0x%016llx (%s)",
                          FaultKindName(kind).data(),
                          is_write ? "write" : "read",
                          static_cast<unsigned long long>(addr),
                          detail.c_str());
}

xbase::Result<Addr> SimMemory::Map(usize size, MemPerm perm, RegionKind kind,
                                   std::string name, Addr fixed_base) {
  if (size == 0) {
    return xbase::InvalidArgument("cannot map empty region: " + name);
  }
  std::unique_lock<std::shared_mutex> table_guard(table_mu_);
  Addr base = fixed_base;
  if (base == 0) {
    base = next_base_;
    // Keep a guard gap between regions so off-the-end accesses fault
    // instead of landing in a neighbour.
    next_base_ += (size + 0xfff) / 0x1000 * 0x1000 + 0x1000;
  } else if (base < kNullGuardSize) {
    return xbase::InvalidArgument("cannot map over the NULL guard page");
  }
  // Overlap check.
  for (const auto& [_, region] : regions_) {
    if (base < region.end() && region.base < base + size) {
      return xbase::AlreadyExists(
          xbase::StrFormat("region overlap at 0x%llx (%s vs %s)",
                           static_cast<unsigned long long>(base),
                           name.c_str(), region.name.c_str()));
    }
  }
  Region region;
  region.base = base;
  region.size = size;
  region.perm = perm;
  region.kind = kind;
  region.name = std::move(name);
  region.bytes.assign(size, 0);
  regions_.emplace(base, std::move(region));
  total_mapped_ += size;
  return base;
}

xbase::Status SimMemory::Unmap(Addr base) {
  std::unique_lock<std::shared_mutex> table_guard(table_mu_);
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    return xbase::NotFound(
        xbase::StrFormat("no region mapped at 0x%llx",
                         static_cast<unsigned long long>(base)));
  }
  total_mapped_ -= it->second.size;
  regions_.erase(it);
  return xbase::Status::Ok();
}

const Region* SimMemory::Locate(Addr addr, usize size) const {
  // regions_ is keyed by base; upper_bound-1 is the candidate region.
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  const Region& region = it->second;
  if (addr < region.base || addr + size > region.end()) {
    return nullptr;
  }
  return &region;
}

xbase::Status SimMemory::Fault(FaultKind kind, Addr addr, bool is_write,
                               std::string detail) {
  MemFault fault{kind, addr, is_write, std::move(detail)};
  const std::string text = fault.ToString();
  {
    std::lock_guard<std::mutex> guard(fault_mu_);
    fault_ = std::move(fault);
  }
  return xbase::KernelFault(text);
}

xbase::Status SimMemory::Read(Addr addr, std::span<u8> out) const {
  ReadGuard table_guard(*this);
  const Region* region = Locate(addr, out.size());
  if (region == nullptr) {
    return xbase::OutOfRange(
        xbase::StrFormat("trusted read of unmapped 0x%llx+%zu",
                         static_cast<unsigned long long>(addr), out.size()));
  }
  std::memcpy(out.data(), region->bytes.data() + (addr - region->base),
              out.size());
  return xbase::Status::Ok();
}

xbase::Status SimMemory::Write(Addr addr, std::span<const u8> data) {
  ReadGuard table_guard(*this);
  const Region* region = Locate(addr, data.size());
  if (region == nullptr) {
    return xbase::OutOfRange(
        xbase::StrFormat("trusted write of unmapped 0x%llx+%zu",
                         static_cast<unsigned long long>(addr), data.size()));
  }
  // Locate returns const; regions_ is ours, so the const_cast is local.
  Region* mut = const_cast<Region*>(region);
  std::memcpy(mut->bytes.data() + (addr - region->base), data.data(),
              data.size());
  return xbase::Status::Ok();
}

xbase::Status SimMemory::ReadChecked(Addr addr, std::span<u8> out,
                                     u32 access_key) {
  ReadGuard table_guard(*this);
  if (addr < kNullGuardSize) {
    return Fault(FaultKind::kNullDeref, addr, false, "read through NULL");
  }
  const Region* region = Locate(addr, out.size());
  if (region == nullptr) {
    return Fault(FaultKind::kUnmapped, addr, false,
                 "read of unmapped kernel address");
  }
  if (!PermAllowsRead(region->perm)) {
    return Fault(FaultKind::kPermission, addr, false,
                 "read of non-readable region " + region->name);
  }
  if (region->protection_key != 0 && access_key != 0 &&
      region->protection_key != access_key) {
    return Fault(FaultKind::kProtectionKey, addr, false,
                 "pkey mismatch on region " + region->name);
  }
  std::memcpy(out.data(), region->bytes.data() + (addr - region->base),
              out.size());
  return xbase::Status::Ok();
}

xbase::Status SimMemory::WriteChecked(Addr addr, std::span<const u8> data,
                                      u32 access_key) {
  ReadGuard table_guard(*this);
  if (addr < kNullGuardSize) {
    return Fault(FaultKind::kNullDeref, addr, true, "write through NULL");
  }
  const Region* region = Locate(addr, data.size());
  if (region == nullptr) {
    return Fault(FaultKind::kUnmapped, addr, true,
                 "write of unmapped kernel address");
  }
  if (!PermAllowsWrite(region->perm)) {
    return Fault(FaultKind::kPermission, addr, true,
                 "write to read-only region " + region->name);
  }
  if (region->protection_key != 0 && access_key != 0 &&
      region->protection_key != access_key) {
    return Fault(FaultKind::kProtectionKey, addr, true,
                 "pkey mismatch on region " + region->name);
  }
  Region* mut = const_cast<Region*>(region);
  std::memcpy(mut->bytes.data() + (addr - region->base), data.data(),
              data.size());
  return xbase::Status::Ok();
}

xbase::Result<u64> SimMemory::ReadU64(Addr addr) const {
  u8 buf[8];
  XB_RETURN_IF_ERROR(Read(addr, buf));
  return xbase::LoadLe64(buf);
}

xbase::Result<u32> SimMemory::ReadU32(Addr addr) const {
  u8 buf[4];
  XB_RETURN_IF_ERROR(Read(addr, buf));
  return xbase::LoadLe32(buf);
}

xbase::Status SimMemory::WriteU64(Addr addr, u64 value) {
  u8 buf[8];
  xbase::StoreLe64(buf, value);
  return Write(addr, buf);
}

xbase::Status SimMemory::WriteU32(Addr addr, u32 value) {
  u8 buf[4];
  xbase::StoreLe32(buf, value);
  return Write(addr, buf);
}

Region* SimMemory::FindRegion(Addr base) {
  ReadGuard table_guard(*this);
  auto it = regions_.find(base);
  return it == regions_.end() ? nullptr : &it->second;
}

const Region* SimMemory::FindRegionContaining(Addr addr) const {
  ReadGuard table_guard(*this);
  return Locate(addr, 1);
}

SimMemory::DirectWindow SimMemory::TranslateForUnchecked(Addr addr) {
  // Pure region lookup — no NULL-guard, permission, key, or fault
  // bookkeeping (see header). Region byte storage is stable for the
  // region's lifetime, so the returned window stays valid until Unmap.
  ReadGuard table_guard(*this);
  const Region* region = Locate(addr, 1);
  if (region == nullptr) {
    return {};
  }
  // Locate is const-qualified over our own regions_; the unchecked path
  // needs mutable bytes for stores.
  Region& mut = const_cast<Region&>(*region);
  return {mut.base, static_cast<xbase::u64>(mut.size), mut.bytes.data()};
}

void SimMemory::SetRegionKey(Addr base, u32 key) {
  std::unique_lock<std::shared_mutex> table_guard(table_mu_);
  auto it = regions_.find(base);
  if (it != regions_.end()) {
    it->second.protection_key = key;
  }
}

std::optional<MemFault> SimMemory::TakeFault() {
  std::lock_guard<std::mutex> guard(fault_mu_);
  std::optional<MemFault> fault = std::move(fault_);
  fault_.reset();
  return fault;
}

}  // namespace simkern

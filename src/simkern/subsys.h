// Synthetic kernel subsystems. The paper measures helper call-graph sizes
// against Linux 5.18, whose subsystems contain thousands of functions; our
// simulated kernel generates deterministic stand-in call graphs sized to
// scale. Each subsystem is a chain f0 → f1 → ... → f(n-1) plus extra random
// forward edges (so the graph is a DAG with realistic fanout); reachability
// from f(k) is exactly n - k, which lets helper implementations link into a
// subsystem at a chosen depth to model their measured complexity class.
//
// Sizes below follow the three complexity bands the paper reports for the
// 249 helpers of Linux 5.18: trivial helpers (no callees), mid-weight
// helpers (30+ callees: map plumbing, task walking), heavyweight helpers
// (500+ callees: networking, and bpf_sys_bpf at 4845 nodes).
#pragma once

#include <string>
#include <vector>

#include "src/simkern/callgraph.h"
#include "src/xbase/types.h"

namespace simkern {

struct SubsystemSpec {
  std::string name;
  xbase::usize function_count;
  xbase::usize extra_fanout;  // additional forward edges per node
};

// The subsystems of the simulated kernel, scaled ~1:1 in *structure* (band
// boundaries at 30 and 500 nodes are preserved exactly; absolute totals are
// smaller than Linux by roughly 2x to keep analysis fast).
const std::vector<SubsystemSpec>& DefaultSubsystems();

// Generates every subsystem in `specs` into `graph`. Node names are
// "<subsys>.f<k>". Deterministic for a given seed.
void BuildSubsystems(CallGraph& graph, const std::vector<SubsystemSpec>& specs,
                     xbase::u64 seed);

// Name of the node in `subsys` whose reachable set has exactly `reach`
// nodes (reach must be in [1, function_count]).
std::string SubsystemEntry(const std::string& subsys,
                           xbase::usize function_count, xbase::usize reach);

}  // namespace simkern

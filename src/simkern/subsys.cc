#include "src/simkern/subsys.h"

#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::usize;

const std::vector<SubsystemSpec>& DefaultSubsystems() {
  static const std::vector<SubsystemSpec> kSpecs = {
      // The bpf(2) syscall machinery that bpf_sys_bpf reaches: by far the
      // largest (paper: 4845 nodes).
      {"bpf_syscall", 4800, 3},
      // Core networking (sk_lookup, skb manipulation, fib lookup, ...).
      {"net_core", 1600, 3},
      // TCP/UDP specifics under the lookup helpers.
      {"inet", 900, 2},
      // Tracing/perf plumbing (perf_event_output, stack walking).
      {"trace", 750, 2},
      // Task management (task_storage, find_task_by_vpid chains).
      {"task", 620, 2},
      // Memory management reached by allocating helpers.
      {"mm", 540, 2},
      // Map implementations (htab, arraymap, ringbuf internals).
      {"map_impl", 320, 2},
      // Cgroup plumbing.
      {"cgroup", 180, 2},
      // Time/clock sources.
      {"timekeeping", 40, 1},
      // Small utility band (string ops, prandom, smp ids).
      {"util", 24, 1},
  };
  return kSpecs;
}

void BuildSubsystems(CallGraph& graph, const std::vector<SubsystemSpec>& specs,
                     xbase::u64 seed) {
  xbase::Rng rng(seed);
  for (const SubsystemSpec& spec : specs) {
    std::vector<FuncId> ids;
    ids.reserve(spec.function_count);
    for (usize i = 0; i < spec.function_count; ++i) {
      ids.push_back(graph.Intern(
          xbase::StrFormat("%s.f%zu", spec.name.c_str(), i)));
    }
    for (usize i = 0; i + 1 < spec.function_count; ++i) {
      // Spine edge guarantees reach(f_k) == n - k.
      graph.AddEdgeById(ids[i], ids[i + 1]);
      // Extra forward edges give realistic fanout without changing
      // reachability counts.
      for (usize j = 0; j < spec.extra_fanout; ++j) {
        const usize span = spec.function_count - i - 1;
        if (span > 1) {
          const usize target = i + 1 + rng.NextBelow(span);
          graph.AddEdgeById(ids[i], ids[target]);
        }
      }
    }
  }
}

std::string SubsystemEntry(const std::string& subsys, usize function_count,
                           usize reach) {
  if (reach < 1) {
    reach = 1;
  }
  if (reach > function_count) {
    reach = function_count;
  }
  return xbase::StrFormat("%s.f%zu", subsys.c_str(), function_count - reach);
}

}  // namespace simkern

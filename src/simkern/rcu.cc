#include "src/simkern/rcu.h"

namespace simkern {

void RcuState::ReadLock(const SimClock& clock, std::string holder) {
  if (depth_ == 0) {
    locked_at_ns_ = clock.now_ns();
    stall_reported_ = false;
    holder_ = std::move(holder);
  }
  ++depth_;
}

xbase::Status RcuState::ReadUnlock() {
  if (depth_ == 0) {
    return xbase::KernelFault("rcu_read_unlock without matching lock");
  }
  --depth_;
  return xbase::Status::Ok();
}

xbase::u64 RcuState::HeldForNs(const SimClock& clock) const {
  if (depth_ == 0) {
    return 0;
  }
  return clock.now_ns() - locked_at_ns_;
}

void RcuState::CheckStall(const SimClock& clock) {
  if (depth_ == 0 || stall_reported_) {
    return;
  }
  const xbase::u64 held = HeldForNs(clock);
  if (held >= kRcuStallTimeoutNs) {
    stalls_.push_back(RcuStall{clock.now_ns(), held, holder_});
    stall_reported_ = true;
  }
}

xbase::Status RcuState::SynchronizeRcu() const {
  if (depth_ > 0) {
    return xbase::KernelFault(
        "synchronize_rcu inside read-side critical section (deadlock)");
  }
  return xbase::Status::Ok();
}

}  // namespace simkern

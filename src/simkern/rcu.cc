#include "src/simkern/rcu.h"

#include <chrono>

namespace simkern {

namespace {
// Wall-clock bound on a grace period before it is declared wedged. Far
// beyond any legitimate drain in the experiments (read-side sections are
// microseconds of wall time); hitting it means a reader never exited.
constexpr std::chrono::seconds kGraceWedgeTimeout{10};
constexpr std::chrono::milliseconds kGraceRecheck{50};
}  // namespace

void RcuState::Configure(const void* owner, xbase::u32 num_cpus) {
  owner_ = owner;
  num_cpus_ =
      num_cpus < 1 ? 1 : (num_cpus > kMaxCpus ? kMaxCpus : num_cpus);
}

void RcuState::ReadLock(const SimClock& clock, std::string holder) {
  ReaderSlot& slot = slots_[Bound()];
  const int depth = slot.depth.load(std::memory_order_relaxed);
  if (depth == 0) {
    slot.locked_at_ns = clock.now_ns();
    slot.stall_reported = false;
    slot.holder = std::move(holder);
  }
  slot.depth.store(depth + 1, std::memory_order_seq_cst);
}

xbase::Status RcuState::ReadUnlock() {
  ReaderSlot& slot = slots_[Bound()];
  const int depth = slot.depth.load(std::memory_order_relaxed);
  if (depth == 0) {
    return xbase::KernelFault("rcu_read_unlock without matching lock");
  }
  slot.depth.store(depth - 1, std::memory_order_seq_cst);
  if (depth == 1 && sync_waiters_.load(std::memory_order_seq_cst) > 0) {
    // A synchronizer may be blocked on this CPU's section: wake it. Taking
    // mu_ before notifying closes the missed-wakeup window against a
    // waiter that checked the predicate just before our store.
    std::lock_guard<std::mutex> lock(mu_);
    cv_.notify_all();
  }
  return xbase::Status::Ok();
}

xbase::u64 RcuState::HeldForNs(const SimClock& clock) const {
  const ReaderSlot& slot = slots_[Bound()];
  if (slot.depth.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  return clock.now_ns() - slot.locked_at_ns;
}

bool RcuState::AnyReader() const {
  for (xbase::u32 cpu = 0; cpu < num_cpus_; ++cpu) {
    if (slots_[cpu].depth.load(std::memory_order_seq_cst) > 0) {
      return true;
    }
  }
  return false;
}

void RcuState::CheckStall(const SimClock& clock) {
  ReaderSlot& slot = slots_[Bound()];
  if (slot.depth.load(std::memory_order_relaxed) == 0 ||
      slot.stall_reported) {
    return;
  }
  const xbase::u64 held = clock.now_ns() - slot.locked_at_ns;
  if (held >= kRcuStallTimeoutNs) {
    std::lock_guard<std::mutex> lock(stalls_mu_);
    stalls_.push_back(RcuStall{clock.now_ns(), held, slot.holder});
    slot.stall_reported = true;
  }
}

xbase::Status RcuState::SynchronizeRcu() {
  if (slots_[Bound()].depth.load(std::memory_order_relaxed) > 0) {
    return xbase::KernelFault(
        "synchronize_rcu inside read-side critical section (deadlock)");
  }
  sync_waiters_.fetch_add(1, std::memory_order_seq_cst);
  const auto deadline =
      std::chrono::steady_clock::now() + kGraceWedgeTimeout;
  bool drained = true;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (AnyReader()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        drained = false;
        break;
      }
      // Periodic re-check self-heals any lost notification.
      cv_.wait_for(lock, kGraceRecheck);
    }
  }
  sync_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  if (!drained) {
    return xbase::KernelFault(
        "synchronize_rcu wedged: remote reader never exited its critical "
        "section");
  }
  grace_periods_.fetch_add(1, std::memory_order_release);
  return xbase::Status::Ok();
}

}  // namespace simkern

#include "src/simkern/net.h"

#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace simkern {

using xbase::u32;
using xbase::u8;

xbase::Result<ObjectId> NetState::CreateSock(SimMemory& mem,
                                             ObjectTable& objects,
                                             const SockTuple& tuple,
                                             u32 protocol) {
  if (socks_.contains(tuple)) {
    return xbase::AlreadyExists("socket already bound to that tuple");
  }
  XB_ASSIGN_OR_RETURN(
      const Addr struct_addr,
      mem.Map(SockLayout::kSize, MemPerm::kRead, RegionKind::kSockStruct,
              xbase::StrFormat("sock:%u.%u.%u.%u:%u", tuple.src_ip >> 24,
                               (tuple.src_ip >> 16) & 0xff,
                               (tuple.src_ip >> 8) & 0xff,
                               tuple.src_ip & 0xff, tuple.src_port)));

  u8 buf[SockLayout::kSize] = {};
  xbase::StoreLe32(buf + SockLayout::kFamily, 2 /* AF_INET */);
  xbase::StoreLe32(buf + SockLayout::kProtocol, protocol);
  xbase::StoreLe32(buf + SockLayout::kSrcIp, tuple.src_ip);
  xbase::StoreLe32(buf + SockLayout::kDstIp, tuple.dst_ip);
  xbase::StoreLe16(buf + SockLayout::kSrcPort, tuple.src_port);
  xbase::StoreLe16(buf + SockLayout::kDstPort, tuple.dst_port);
  xbase::StoreLe32(buf + SockLayout::kState, 1 /* ESTABLISHED */);
  XB_RETURN_IF_ERROR(mem.Write(struct_addr, buf));

  Sock sock;
  sock.tuple = tuple;
  sock.protocol = protocol;
  sock.struct_addr = struct_addr;
  sock.object_id =
      objects.Create(ObjectType::kSock,
                     xbase::StrFormat("sock:%u->%u", tuple.src_port,
                                      tuple.dst_port),
                     struct_addr);
  const ObjectId id = sock.object_id;
  socks_.emplace(tuple, std::move(sock));
  return id;
}

std::optional<Sock> NetState::Lookup(const SockTuple& tuple) const {
  auto it = socks_.find(tuple);
  if (it == socks_.end()) {
    return std::nullopt;
  }
  return it->second;
}

xbase::Result<Sock> NetState::FindByAddr(Addr struct_addr) const {
  for (const auto& [_, sock] : socks_) {
    if (sock.struct_addr == struct_addr) {
      return sock;
    }
  }
  return xbase::NotFound("no sock at that address");
}

xbase::Result<SkBuff> NetState::CreateSkBuff(SimMemory& mem,
                                             std::span<const u8> payload) {
  XB_ASSIGN_OR_RETURN(
      const Addr data_addr,
      mem.Map(payload.empty() ? 1 : payload.size(), MemPerm::kReadWrite,
              RegionKind::kSkBuff,
              xbase::StrFormat("skb-data:%zu", skbs_.size())));
  if (!payload.empty()) {
    XB_RETURN_IF_ERROR(mem.Write(data_addr, payload));
  }
  XB_ASSIGN_OR_RETURN(
      const Addr meta_addr,
      mem.Map(SkBuffLayout::kSize, MemPerm::kReadWrite, RegionKind::kSkBuff,
              xbase::StrFormat("skb-meta:%zu", skbs_.size())));

  u8 buf[SkBuffLayout::kSize] = {};
  xbase::StoreLe32(buf + SkBuffLayout::kLen,
                   static_cast<u32>(payload.size()));
  xbase::StoreLe32(buf + SkBuffLayout::kProtocol, 0x0800 /* IPv4 */);
  xbase::StoreLe64(buf + SkBuffLayout::kDataPtr, data_addr);
  xbase::StoreLe64(buf + SkBuffLayout::kDataEndPtr,
                   data_addr + payload.size());
  XB_RETURN_IF_ERROR(mem.Write(meta_addr, buf));

  SkBuff skb;
  skb.meta_addr = meta_addr;
  skb.data_addr = data_addr;
  skb.len = static_cast<u32>(payload.size());
  skbs_.push_back(skb);
  return skb;
}

}  // namespace simkern

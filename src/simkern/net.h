// Simulated network substrate: sockets (with refcounted identities — the
// target of bpf_sk_lookup_tcp / bpf_sk_release) and socket buffers backing
// the XDP/skb program contexts.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/simkern/mem.h"
#include "src/simkern/object.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

// Byte offsets inside a sock region.
struct SockLayout {
  static constexpr xbase::usize kFamily = 0;    // u32
  static constexpr xbase::usize kProtocol = 4;  // u32
  static constexpr xbase::usize kSrcIp = 8;     // u32
  static constexpr xbase::usize kDstIp = 12;    // u32
  static constexpr xbase::usize kSrcPort = 16;  // u16
  static constexpr xbase::usize kDstPort = 18;  // u16
  static constexpr xbase::usize kState = 20;    // u32
  static constexpr xbase::usize kSize = 64;
};

struct SockTuple {
  xbase::u32 src_ip = 0;
  xbase::u32 dst_ip = 0;
  xbase::u16 src_port = 0;
  xbase::u16 dst_port = 0;

  auto operator<=>(const SockTuple&) const = default;
};

struct Sock {
  SockTuple tuple;
  xbase::u32 protocol = 6;  // IPPROTO_TCP
  Addr struct_addr = 0;
  ObjectId object_id = 0;
};

// Byte offsets of the sk_buff metadata block exposed to programs as the
// __sk_buff-style context.
struct SkBuffLayout {
  static constexpr xbase::usize kLen = 0;        // u32
  static constexpr xbase::usize kProtocol = 4;   // u32
  static constexpr xbase::usize kDataPtr = 8;    // u64: packet bytes addr
  static constexpr xbase::usize kDataEndPtr = 16;// u64
  static constexpr xbase::usize kMark = 24;      // u32
  static constexpr xbase::usize kSize = 64;
};

struct SkBuff {
  Addr meta_addr = 0;  // the SkBuffLayout block
  Addr data_addr = 0;  // packet payload region
  xbase::u32 len = 0;
};

class NetState {
 public:
  // Registers a listening/established socket reachable via lookup helpers.
  xbase::Result<ObjectId> CreateSock(SimMemory& mem, ObjectTable& objects,
                                     const SockTuple& tuple,
                                     xbase::u32 protocol);

  // 5-tuple lookup; returns the sock (not yet acquired — helpers decide
  // whether the reference is taken, which is exactly where the leak bugs
  // live).
  std::optional<Sock> Lookup(const SockTuple& tuple) const;
  xbase::Result<Sock> FindByAddr(Addr struct_addr) const;

  // Builds an sk_buff whose payload is `payload` (metadata block + data
  // region in SimMemory).
  xbase::Result<SkBuff> CreateSkBuff(SimMemory& mem,
                                     std::span<const xbase::u8> payload);

  xbase::usize sock_count() const { return socks_.size(); }

 private:
  std::map<SockTuple, Sock> socks_;
  std::vector<SkBuff> skbs_;
};

}  // namespace simkern

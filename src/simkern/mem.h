// The simulated kernel address space. Extensions and helpers read and write
// through this layer; any access outside a mapped region, against region
// permissions, or through the NULL page is an *oops* — the simulation's
// equivalent of a kernel crash — recorded for the experiment harnesses
// instead of taking the process down.
//
// Layout mirrors x86-64 Linux: kernel addresses live high (0xffff8800...),
// the first page is never mapped so NULL dereferences are always caught.
#pragma once

#include <atomic>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace simkern {

using Addr = xbase::u64;

inline constexpr Addr kKernelBase = 0xffff'8800'0000'0000ULL;
inline constexpr Addr kNullGuardSize = 4096;  // first page never mapped

enum class MemPerm : xbase::u8 {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
  kExec = 4,
  kReadExec = 5,
};

inline bool PermAllowsRead(MemPerm perm) {
  return (static_cast<xbase::u8>(perm) & 1) != 0;
}
inline bool PermAllowsWrite(MemPerm perm) {
  return (static_cast<xbase::u8>(perm) & 2) != 0;
}

// What kind of memory a region backs; the protection-domain experiments and
// the verifier's pointer-type rules both key off this.
enum class RegionKind : xbase::u8 {
  kKernelText,
  kKernelData,
  kTaskStruct,
  kSockStruct,
  kSkBuff,
  kMapData,
  kExtensionStack,
  kExtensionPool,
  kPerCpu,
};

std::string_view RegionKindName(RegionKind kind);

struct Region {
  Addr base = 0;
  xbase::usize size = 0;
  MemPerm perm = MemPerm::kReadWrite;
  RegionKind kind = RegionKind::kKernelData;
  std::string name;
  // Protection-domain key (0 = kernel default). Used by the §4 PKS/MPK
  // simulation: accesses must present a matching key unless key is 0.
  xbase::u32 protection_key = 0;
  std::vector<xbase::u8> bytes;

  Addr end() const { return base + size; }
};

enum class FaultKind : xbase::u8 {
  kNullDeref,
  kUnmapped,
  kPermission,
  kProtectionKey,
  kOutOfBounds,
};

std::string_view FaultKindName(FaultKind kind);

struct MemFault {
  FaultKind kind;
  Addr addr = 0;
  bool is_write = false;
  std::string detail;

  std::string ToString() const;
};

class SimMemory {
 public:
  SimMemory() = default;
  SimMemory(const SimMemory&) = delete;
  SimMemory& operator=(const SimMemory&) = delete;

  // Maps a fresh zero-filled region at the next free kernel address (or at
  // `fixed_base` if nonzero). Returns its base address.
  xbase::Result<Addr> Map(xbase::usize size, MemPerm perm, RegionKind kind,
                          std::string name, Addr fixed_base = 0);

  xbase::Status Unmap(Addr base);

  // Raw accessors used by trusted kernel code (helpers, map internals):
  // still bounds-checked, but exempt from protection keys.
  xbase::Status Read(Addr addr, std::span<xbase::u8> out) const;
  xbase::Status Write(Addr addr, std::span<const xbase::u8> data);

  // Checked accessors used on behalf of an extension, carrying its
  // protection key. Key 0 is the supervisor: kernel code (and eBPF
  // programs, which have no domain of their own) bypass protection keys;
  // nonzero keys must match the region's key. A failure produces a
  // MemFault (fetch with TakeFault).
  xbase::Status ReadChecked(Addr addr, std::span<xbase::u8> out,
                            xbase::u32 access_key);
  xbase::Status WriteChecked(Addr addr, std::span<const xbase::u8> data,
                             xbase::u32 access_key);

  // Typed convenience (little-endian, as BPF defines).
  xbase::Result<xbase::u64> ReadU64(Addr addr) const;
  xbase::Result<xbase::u32> ReadU32(Addr addr) const;
  xbase::Status WriteU64(Addr addr, xbase::u64 value);
  xbase::Status WriteU32(Addr addr, xbase::u32 value);

  // Direct byte access to a whole region for trusted code that already
  // resolved it (map storage, stacks). Null if not mapped at exactly `base`.
  Region* FindRegion(Addr base);
  const Region* FindRegionContaining(Addr addr) const;

  // Region translation for the elided-check execution path. When the JIT
  // has a static proof that an access is in bounds, the engine skips
  // ReadChecked/WriteChecked entirely and caches {base, len, bytes}
  // windows from this call. Deliberately performs NO permission,
  // protection-key, or NULL-guard enforcement and records no MemFault:
  // if the proof was wrong (a buggy verifier), the access must *succeed
  // silently* against whatever memory is there — the paper's
  // "buggy verifier ⇒ silent corruption" chain, not a caught oops.
  struct DirectWindow {
    Addr base = 0;
    xbase::u64 len = 0;
    xbase::u8* bytes = nullptr;
  };
  DirectWindow TranslateForUnchecked(Addr addr);

  // Wild (unmapped-address) accesses taken through the unchecked path.
  // The corruption-witness tests read these: a nonzero count after a run
  // that raised no fault is the observable signature of an elided check
  // that was actually load-bearing.
  void NoteWildRead() {
    unchecked_wild_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteWildWrite() {
    unchecked_wild_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  xbase::u64 unchecked_wild_reads() const {
    return unchecked_wild_reads_.load(std::memory_order_relaxed);
  }
  xbase::u64 unchecked_wild_writes() const {
    return unchecked_wild_writes_.load(std::memory_order_relaxed);
  }

  // Arms the region-table reader/writer lock. Off by default so the
  // single-threaded dispatch hot path pays only an untaken branch per
  // access; Kernel::StartCpus flips it before any worker thread runs.
  // Note the lock protects the region *table* (Map/Unmap vs lookups), not
  // region byte contents — concurrent byte ownership is a workload-level
  // contract (per-CPU map slots, per-CPU stacks, per-map mutexes).
  void EnableConcurrentAccess() {
    concurrent_.store(true, std::memory_order_release);
  }

  void SetRegionKey(Addr base, xbase::u32 key);

  // Last fault, if any; cleared on read. The kernel turns pending faults
  // into an oops.
  std::optional<MemFault> TakeFault();
  bool has_fault() const {
    std::lock_guard<std::mutex> guard(fault_mu_);
    return fault_.has_value();
  }

  xbase::usize region_count() const { return regions_.size(); }
  xbase::u64 total_mapped_bytes() const { return total_mapped_; }

 private:
  const Region* Locate(Addr addr, xbase::usize size) const;
  xbase::Status Fault(FaultKind kind, Addr addr, bool is_write,
                      std::string detail);

  // Shared-lock RAII that is a no-op until EnableConcurrentAccess.
  class ReadGuard {
   public:
    explicit ReadGuard(const SimMemory& mem)
        : mem_(mem.concurrent_.load(std::memory_order_acquire) ? &mem
                                                               : nullptr) {
      if (mem_ != nullptr) {
        mem_->table_mu_.lock_shared();
      }
    }
    ~ReadGuard() {
      if (mem_ != nullptr) {
        mem_->table_mu_.unlock_shared();
      }
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    const SimMemory* mem_;
  };

  // Keyed by base address.
  std::map<Addr, Region> regions_;
  Addr next_base_ = kKernelBase + 0x10000;
  xbase::u64 total_mapped_ = 0;
  std::atomic<xbase::u64> unchecked_wild_reads_{0};
  std::atomic<xbase::u64> unchecked_wild_writes_{0};
  std::atomic<bool> concurrent_{false};
  mutable std::shared_mutex table_mu_;
  mutable std::mutex fault_mu_;
  mutable std::optional<MemFault> fault_;
};

}  // namespace simkern

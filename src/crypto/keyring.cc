#include "src/crypto/keyring.h"

namespace crypto {

using xbase::u8;

SigningKey SigningKey::FromPassphrase(std::string key_id,
                                      const std::string& passphrase) {
  // Simple KDF: SHA-256("untenable-kdf-v1" || passphrase). Adequate for a
  // simulation; documented as non-production in DESIGN.md.
  const std::string salted = "untenable-kdf-v1" + passphrase;
  const Digest256 digest = Sha256::HashString(salted);
  return SigningKey(std::move(key_id),
                    std::vector<u8>(digest.begin(), digest.end()));
}

Signature SigningKey::Sign(std::span<const u8> message) const {
  Signature signature;
  signature.key_id = key_id_;
  signature.mac = HmacSha256(secret_, message);
  return signature;
}

xbase::Status Keyring::Enroll(const SigningKey& key) {
  return EnrollRaw(key.key_id(),
                   std::vector<u8>(key.secret().begin(), key.secret().end()));
}

xbase::Status Keyring::EnrollRaw(std::string key_id,
                                 std::vector<u8> secret) {
  if (sealed_) {
    return xbase::PermissionDenied("keyring is sealed");
  }
  if (keys_.contains(key_id)) {
    return xbase::AlreadyExists("key id already enrolled: " + key_id);
  }
  keys_.emplace(std::move(key_id), std::move(secret));
  return xbase::Status::Ok();
}

xbase::Status Keyring::Verify(std::span<const u8> message,
                              const Signature& signature) const {
  const auto it = keys_.find(signature.key_id);
  if (it == keys_.end()) {
    return xbase::PermissionDenied("signature by untrusted key: " +
                                   signature.key_id);
  }
  const Digest256 expected = HmacSha256(it->second, message);
  if (!DigestEqualConstantTime(expected, signature.mac)) {
    return xbase::PermissionDenied("signature verification failed");
  }
  return xbase::Status::Ok();
}

}  // namespace crypto

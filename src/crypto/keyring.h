// Key management for the signing chain. Models the kernel's trusted keyring
// bootstrapped at "secure boot": the toolchain holds a SigningKey, the
// kernel holds a Keyring of trusted key ids. Signature = HMAC-SHA256 over
// the canonical artifact bytes under the named key.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/hmac.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace crypto {

struct Signature {
  std::string key_id;
  Digest256 mac = {};
};

// Held by the trusted userspace toolchain.
class SigningKey {
 public:
  SigningKey(std::string key_id, std::vector<xbase::u8> secret)
      : key_id_(std::move(key_id)), secret_(std::move(secret)) {}

  // Deterministically derives a key from a passphrase; convenient for tests
  // and examples that need matching toolchain/kernel keys.
  static SigningKey FromPassphrase(std::string key_id,
                                   const std::string& passphrase);

  const std::string& key_id() const { return key_id_; }

  Signature Sign(std::span<const xbase::u8> message) const;

  // Exposes the raw secret only for enrolling into a Keyring.
  std::span<const xbase::u8> secret() const { return secret_; }

 private:
  std::string key_id_;
  std::vector<xbase::u8> secret_;
};

// Held by the simulated kernel. Keys are enrolled at boot; verification
// refuses unknown key ids and mismatched MACs without distinguishing the two
// beyond the status message.
class Keyring {
 public:
  xbase::Status Enroll(const SigningKey& key);
  xbase::Status EnrollRaw(std::string key_id, std::vector<xbase::u8> secret);

  // Locks the keyring: no further enrollment (models end of secure boot).
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }

  xbase::Status Verify(std::span<const xbase::u8> message,
                       const Signature& signature) const;

  xbase::usize size() const { return keys_.size(); }

 private:
  std::map<std::string, std::vector<xbase::u8>> keys_;
  bool sealed_ = false;
};

}  // namespace crypto

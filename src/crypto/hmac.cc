#include "src/crypto/hmac.h"

#include <cstring>

namespace crypto {

using xbase::u8;
using xbase::usize;

Digest256 HmacSha256(std::span<const u8> key, std::span<const u8> message) {
  constexpr usize kBlock = 64;
  u8 key_block[kBlock] = {};

  if (key.size() > kBlock) {
    const Digest256 key_digest = Sha256::Hash(key);
    std::memcpy(key_block, key_digest.data(), key_digest.size());
  } else {
    if (!key.empty()) {
      std::memcpy(key_block, key.data(), key.size());
    }
  }

  u8 ipad[kBlock];
  u8 opad[kBlock];
  for (usize i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<u8>(key_block[i] ^ 0x36);
    opad[i] = static_cast<u8>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.Update(std::span<const u8>(ipad, kBlock));
  inner.Update(message);
  const Digest256 inner_digest = inner.Finalize();

  Sha256 outer;
  outer.Update(std::span<const u8>(opad, kBlock));
  outer.Update(std::span<const u8>(inner_digest.data(), inner_digest.size()));
  return outer.Finalize();
}

}  // namespace crypto

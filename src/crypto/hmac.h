// HMAC-SHA256 (RFC 2104). This is the MAC that the trusted toolchain uses to
// sign extension artifacts and that the simulated kernel validates at load
// time. A production deployment would use an asymmetric scheme; a keyed MAC
// reproduces the same trust decisions (accept / tamper-reject / unknown-key
// reject) without an RSA dependency, which is all the paper's load path
// needs (see DESIGN.md §2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/xbase/types.h"

namespace crypto {

Digest256 HmacSha256(std::span<const xbase::u8> key,
                     std::span<const xbase::u8> message);

inline Digest256 HmacSha256(const std::string& key,
                            std::span<const xbase::u8> message) {
  return HmacSha256(std::span<const xbase::u8>(
                        reinterpret_cast<const xbase::u8*>(key.data()),
                        key.size()),
                    message);
}

}  // namespace crypto

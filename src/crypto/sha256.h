// SHA-256 (FIPS 180-4), implemented from scratch so the extension-signing
// chain has no external dependencies. Streaming interface plus one-shot
// helper; validated against the NIST test vectors in tests/crypto.
#pragma once

#include <array>
#include <span>
#include <string>

#include "src/xbase/types.h"

namespace crypto {

using Digest256 = std::array<xbase::u8, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(std::span<const xbase::u8> data);
  // Finalizes and returns the digest. The object must be Reset() before
  // further use.
  Digest256 Finalize();

  static Digest256 Hash(std::span<const xbase::u8> data);
  static Digest256 HashString(const std::string& text);

 private:
  void ProcessBlock(const xbase::u8* block);

  std::array<xbase::u32, 8> state_;
  std::array<xbase::u8, 64> buffer_;
  xbase::u64 total_bytes_;
  xbase::usize buffered_;
};

// Constant-time digest comparison: signature checks must not leak where the
// first mismatching byte is.
bool DigestEqualConstantTime(const Digest256& a, const Digest256& b);

}  // namespace crypto

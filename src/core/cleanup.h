// On-the-fly resource cleanup (§3.1 "safe termination"). Every kernel
// resource an extension acquires through the crate is recorded here together
// with its *trusted* destructor — a fixed enum of framework-implemented
// release actions, never user code (executing untrusted Drop impls during
// termination is exactly what the paper rules out). The registry has fixed
// capacity and allocates nothing, so it works in interrupt context and
// cannot itself fail mid-termination.
#pragma once

#include <array>
#include <string>

#include "src/core/pool.h"
#include "src/simkern/kernel.h"
#include "src/xbase/status.h"

namespace safex {

enum class CleanupKind : xbase::u8 {
  kNone = 0,
  kReleaseObject,   // refcounted kernel object (sock, task, ringbuf record)
  kReleaseLock,     // spin lock
  kFreePoolChunk,   // pool allocation
  kRcuUnlock,       // leave the read-side critical section
};

struct CleanupEntry {
  CleanupKind kind = CleanupKind::kNone;
  xbase::u64 payload = 0;  // object id / lock id / chunk address
};

struct CleanupReport {
  xbase::u32 entries_run = 0;
  xbase::u32 failures = 0;  // trusted destructors must not fail; counted anyway
};

class CleanupRegistry {
 public:
  static constexpr xbase::u32 kCapacity = 64;

  // Records a resource. Fails only when the registry is full, in which case
  // the *acquisition* must be refused (never the release).
  xbase::Status Record(CleanupKind kind, xbase::u64 payload);
  // Drops the record once the extension released the resource normally.
  void Discharge(CleanupKind kind, xbase::u64 payload);

  // Runs all outstanding destructors LIFO. Trusted code only: object
  // releases, lock releases, pool frees. Returns what ran.
  CleanupReport RunAll(simkern::Kernel& kernel, MemoryPool* pool);

  xbase::u32 outstanding() const { return count_; }

 private:
  std::array<CleanupEntry, kCapacity> entries_;
  xbase::u32 count_ = 0;
};

}  // namespace safex

// Extension supervisor: per-attachment health tracking and crash
// containment. The paper's §3 mechanisms (watchdog, stack guard, cleanup
// registry) stop a misbehaving extension *once*; this layer decides what a
// production kernel does with it *afterwards*. Every failure — safex panic,
// watchdog kill, stack overflow, an oops raised while the extension was
// on-CPU, or a resource leak found by the post-invocation audit — is
// attributed to the offending attachment and charged against a sliding
// simulated-time crash budget. Exhausting the budget trips a circuit
// breaker into quarantine with exponential backoff; re-admission goes
// through half-open probation trials; repeated trips evict permanently.
//
// The supervisor is deliberately framework-blind: verified eBPF programs
// and signed safex extensions are supervised identically, which is the
// paper's availability-layer point — a load-time verifier verdict buys no
// runtime availability.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "src/simkern/clock.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace safex {

enum class FailureKind : xbase::u8 {
  kPanic,          // crate violation / explicit Ctx::Panic
  kWatchdog,       // invocation budget exceeded
  kStackOverflow,  // frame-depth guard
  kOops,           // kernel oops raised while the attachment was on-CPU
  kResourceLeak,   // refcount/lock leak found by the post-invocation audit
  kRuntimeError,   // foreign exception or other abnormal termination
  kDeadlineMiss,   // scheduler pick exceeded its armed watchdog deadline
  kInvalidPick,    // scheduler returned a dead/non-runnable/double pick
  kStarvation,     // a runnable task went unscheduled past the bound
};
inline constexpr xbase::usize kFailureKindCount = 9;

std::string_view FailureKindName(FailureKind kind);

enum class ExtHealth : xbase::u8 {
  kHealthy,      // breaker closed, invocations flow
  kQuarantined,  // breaker open until quarantined_until_ns
  kProbation,    // breaker half-open: trial invocations admitted
  kEvicted,      // permanently removed from service
};

std::string_view ExtHealthName(ExtHealth health);

struct SupervisorConfig {
  // Failures inside this sliding simulated-time window that trip the
  // breaker.
  xbase::u64 window_ns = 100 * simkern::kNsPerMs;
  xbase::u32 crash_budget = 3;
  // Quarantine duration: base * multiplier^(trips-1), capped.
  xbase::u64 base_backoff_ns = 10 * simkern::kNsPerMs;
  xbase::u32 backoff_multiplier = 2;
  xbase::u64 max_backoff_ns = 10 * simkern::kNsPerSec;
  // Consecutive half-open successes required to close the breaker again.
  xbase::u32 probation_successes = 3;
  // Lifetime trips after which the attachment is permanently evicted.
  xbase::u32 max_trips = 4;
};

struct FailureEvent {
  xbase::u64 at_ns = 0;
  FailureKind kind = FailureKind::kPanic;
  std::string detail;
};

struct ExtRecord {
  ExtHealth health = ExtHealth::kHealthy;
  std::deque<FailureEvent> window;  // failures inside the sliding window
  xbase::u64 quarantined_until_ns = 0;
  xbase::u32 trips = 0;            // lifetime breaker trips
  xbase::u32 probation_left = 0;   // successes still needed to close
  xbase::u64 invocations = 0;      // admitted invocations
  xbase::u64 skips = 0;            // invocations refused by the breaker
  xbase::u64 failures_total = 0;
  xbase::u64 failures_by_kind[kFailureKindCount] = {};
  FailureEvent last_failure;
};

struct AdmitDecision {
  bool allow = true;
  bool probation_trial = false;  // this invocation is a half-open trial
  ExtHealth health = ExtHealth::kHealthy;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorConfig& config = {})
      : config_(config) {}

  // Gate an invocation of `attachment_id` at simulated time `now_ns`.
  // Quarantine whose backoff has expired transitions to probation here.
  AdmitDecision Admit(xbase::u32 attachment_id, xbase::u64 now_ns);

  // Report the outcome of an admitted invocation.
  void RecordSuccess(xbase::u32 attachment_id, xbase::u64 now_ns);
  void RecordFailure(xbase::u32 attachment_id, FailureKind kind,
                     std::string detail, xbase::u64 now_ns);

  // Drop all state for a detached attachment.
  void Forget(xbase::u32 attachment_id);

  ExtHealth HealthOf(xbase::u32 attachment_id) const;
  // Control-plane/test use only: the pointer is into the record map and is
  // not protected against a concurrent RecordFailure on another CPU. Read
  // it only at quiescent points (after Drain barriers).
  const ExtRecord* Find(xbase::u32 attachment_id) const;

  // Aggregate counters (across all attachments, lifetime).
  xbase::u64 trips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }
  xbase::u64 evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }
  xbase::u64 readmissions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return readmissions_;
  }
  xbase::u64 failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failures_;
  }
  xbase::u64 skips() const {
    std::lock_guard<std::mutex> lock(mu_);
    return skips_;
  }
  xbase::usize tracked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  const SupervisorConfig& config() const { return config_; }

  // Structural invariant audit, run by the chaos harness after every step:
  // every record's health, backoff deadline, probation counter, trip count
  // and window ordering must be mutually consistent.
  xbase::Status CheckConsistent(xbase::u64 now_ns) const;

 private:
  // Called with mu_ held.
  void Trip(xbase::u32 attachment_id, ExtRecord& record, xbase::u64 now_ns);
  void PruneWindow(ExtRecord& record, xbase::u64 now_ns);
  xbase::u64 BackoffFor(xbase::u32 trips) const;

  // Guards every record and aggregate counter: attachments fire — and
  // fail — concurrently from all simulated CPUs.
  mutable std::mutex mu_;
  SupervisorConfig config_;
  std::map<xbase::u32, ExtRecord> records_;
  xbase::u64 trips_ = 0;
  xbase::u64 evictions_ = 0;
  xbase::u64 readmissions_ = 0;
  xbase::u64 failures_ = 0;
  xbase::u64 skips_ = 0;
  // Lifetime counts carried by records since dropped via Forget, so the
  // aggregate counters stay reconcilable against the live records.
  xbase::u64 forgotten_failures_ = 0;
  xbase::u64 forgotten_skips_ = 0;
};

}  // namespace safex

// The trusted userspace toolchain (§3.1 "Decoupling static code analysis").
// This is where the paper moves all static checking: the toolchain audits
// the extension (no unsafe blocks unless policy allows, imports consistent
// with declared capabilities), computes the code identity, and signs the
// canonical artifact. The kernel then only has to validate a signature —
// the entire in-kernel verifier disappears from the trust path.
#pragma once

#include "src/core/artifact.h"

namespace safex {

struct ToolchainPolicy {
  bool allow_unsafe = false;  // refuse `unsafe` blocks by default
  xbase::u32 max_capabilities = 12;
};

struct BuildReport {
  xbase::u32 checks_run = 0;
  std::vector<std::string> lints;
};

class Toolchain {
 public:
  Toolchain(crypto::SigningKey key, ToolchainPolicy policy = {})
      : key_(std::move(key)), policy_(policy) {}

  // Audits and signs. `code_identity` stands in for the compiled body; its
  // SHA-256 becomes the signed code hash, so any post-signing change to the
  // "code" invalidates the artifact.
  xbase::Result<SignedArtifact> Build(ExtensionManifest manifest,
                                      ExtensionFactory factory,
                                      std::span<const xbase::u8> code_identity);

  const BuildReport& last_report() const { return report_; }

 private:
  xbase::Status Audit(const ExtensionManifest& manifest);

  crypto::SigningKey key_;
  ToolchainPolicy policy_;
  BuildReport report_;
};

}  // namespace safex

#include "src/core/artifact.h"

#include "src/xbase/bytes.h"

namespace safex {

namespace {
void PutU32(std::vector<xbase::u8>& out, xbase::u32 value) {
  xbase::u8 buf[4];
  xbase::StoreLe32(buf, value);
  out.insert(out.end(), buf, buf + 4);
}
void PutString(std::vector<xbase::u8>& out, const std::string& text) {
  PutU32(out, static_cast<xbase::u32>(text.size()));
  out.insert(out.end(), text.begin(), text.end());
}
}  // namespace

std::vector<xbase::u8> CanonicalEncode(const ExtensionManifest& manifest,
                                       const crypto::Digest256& code_hash) {
  std::vector<xbase::u8> out;
  out.reserve(128);
  PutString(out, "safex-artifact-v1");
  PutString(out, manifest.name);
  PutString(out, manifest.version);
  PutU32(out, static_cast<xbase::u32>(manifest.caps.size()));
  for (Capability cap : manifest.caps) {
    out.push_back(static_cast<xbase::u8>(cap));
  }
  out.push_back(manifest.uses_unsafe ? 1 : 0);
  PutU32(out, static_cast<xbase::u32>(manifest.imports.size()));
  for (const std::string& import : manifest.imports) {
    PutString(out, import);
  }
  out.insert(out.end(), code_hash.begin(), code_hash.end());
  return out;
}

const std::map<std::string, Capability>& KnownImports() {
  static const std::map<std::string, Capability> kImports = {
      {"kcrate.map_lookup", Capability::kMapAccess},
      {"kcrate.map_update", Capability::kMapAccess},
      {"kcrate.map_delete", Capability::kMapAccess},
      {"kcrate.packet_view", Capability::kPacketAccess},
      {"kcrate.current_task", Capability::kTaskInspect},
      {"kcrate.task_storage", Capability::kTaskInspect},
      {"kcrate.sk_lookup", Capability::kSockLookup},
      {"kcrate.spin_lock", Capability::kSpinLock},
      {"kcrate.ringbuf_output", Capability::kRingBuf},
      {"kcrate.alloc", Capability::kDynAlloc},
      {"kcrate.sys_bpf", Capability::kSysBpf},
      {"kcrate.send_signal", Capability::kSignal},
      {"kcrate.trace", Capability::kTracing},
      {"kcrate.unsafe_raw", Capability::kUnsafeRaw},
  };
  return kImports;
}

}  // namespace safex

// The kernel-side load path of the proposed framework: validate the
// signature against the boot keyring, audit the manifest against kernel
// policy, perform load-time fixup (bind symbolic imports to crate entry
// points), and register the extension. No safety checking happens here —
// that moved to the toolchain — which is exactly the paper's claim about
// where the complexity goes.
//
// Like ebpf::Loader, the path is split into a thread-safe Prepare
// (signature + policy + fixup + instantiation) and a locked Install
// (id allocation + registration) so the admission pipeline can run
// signature validation on worker threads.
#pragma once

#include <map>
#include <mutex>

#include "src/core/artifact.h"
#include "src/core/ext.h"

namespace safex {

struct LoadedExtension {
  xbase::u32 id = 0;
  ExtensionManifest manifest;
  std::unique_ptr<Extension> instance;
  xbase::u32 relocations = 0;  // imports bound during fixup
  xbase::u64 load_wall_ns = 0; // host time spent in the load path
  // Live hook attachments referencing this id; Unload refuses while > 0.
  xbase::u32 attach_count = 0;
};

// Outcome of the fallible load stages, ready to register. Move-only (owns
// the instantiated extension).
struct PreparedExtension {
  ExtensionManifest manifest;
  std::unique_ptr<Extension> instance;
  xbase::u32 relocations = 0;
  xbase::u64 load_wall_ns = 0;
};

class ExtLoader {
 public:
  explicit ExtLoader(Runtime& runtime) : runtime_(runtime) {}

  xbase::Result<xbase::u32> Load(const SignedArtifact& artifact);

  // Signature validation, policy audit, fixup and instantiation — no
  // registration. Safe to call concurrently from admission workers.
  xbase::Result<PreparedExtension> Prepare(const SignedArtifact& artifact) const;

  // Registers a prepared extension under a fresh id (never 0, never a live
  // id; the counter wraps safely).
  xbase::Result<xbase::u32> Install(PreparedExtension prepared);

  xbase::Result<const LoadedExtension*> Find(xbase::u32 id) const;

  // Removes a loaded extension. Refuses with FailedPrecondition while hook
  // attachments still reference the id; later Invoke calls fail NotFound.
  xbase::Status Unload(xbase::u32 id);

  // Attachment refcount (see ebpf::Loader::Pin).
  xbase::Status Pin(xbase::u32 id);
  void Unpin(xbase::u32 id);

  // Invokes a loaded extension with its manifest's capabilities.
  xbase::Result<InvokeOutcome> Invoke(xbase::u32 id,
                                      const InvokeOptions& options = {});

  xbase::usize size() const;

 private:
  Runtime& runtime_;
  mutable std::mutex mu_;  // guards extensions_ and next_id_
  std::map<xbase::u32, LoadedExtension> extensions_;
  xbase::u32 next_id_ = 1;
};

}  // namespace safex

// The kernel-side load path of the proposed framework: validate the
// signature against the boot keyring, audit the manifest against kernel
// policy, perform load-time fixup (bind symbolic imports to crate entry
// points), and register the extension. No safety checking happens here —
// that moved to the toolchain — which is exactly the paper's claim about
// where the complexity goes.
#pragma once

#include <map>

#include "src/core/artifact.h"
#include "src/core/ext.h"

namespace safex {

struct LoadedExtension {
  xbase::u32 id = 0;
  ExtensionManifest manifest;
  std::unique_ptr<Extension> instance;
  xbase::u32 relocations = 0;  // imports bound during fixup
  xbase::u64 load_wall_ns = 0; // host time spent in the load path
};

class ExtLoader {
 public:
  explicit ExtLoader(Runtime& runtime) : runtime_(runtime) {}

  xbase::Result<xbase::u32> Load(const SignedArtifact& artifact);

  xbase::Result<const LoadedExtension*> Find(xbase::u32 id) const;

  // Removes a loaded extension. Attachments referring to it must be
  // detached first (by the caller); later Invoke calls fail with NotFound.
  xbase::Status Unload(xbase::u32 id);

  // Invokes a loaded extension with its manifest's capabilities.
  xbase::Result<InvokeOutcome> Invoke(xbase::u32 id,
                                      const InvokeOptions& options = {});

  xbase::usize size() const { return extensions_.size(); }

 private:
  Runtime& runtime_;
  std::map<xbase::u32, LoadedExtension> extensions_;
  xbase::u32 next_id_ = 1;
};

}  // namespace safex

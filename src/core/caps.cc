#include "src/core/caps.h"

namespace safex {

std::string_view CapabilityName(Capability cap) {
  switch (cap) {
    case Capability::kMapAccess:
      return "map_access";
    case Capability::kPacketAccess:
      return "packet_access";
    case Capability::kTaskInspect:
      return "task_inspect";
    case Capability::kSockLookup:
      return "sock_lookup";
    case Capability::kSpinLock:
      return "spin_lock";
    case Capability::kRingBuf:
      return "ringbuf";
    case Capability::kDynAlloc:
      return "dyn_alloc";
    case Capability::kSysBpf:
      return "sys_bpf";
    case Capability::kSignal:
      return "signal";
    case Capability::kTracing:
      return "tracing";
    case Capability::kUnsafeRaw:
      return "unsafe_raw";
  }
  return "unknown";
}

}  // namespace safex

#include "src/core/cleanup.h"

namespace safex {

xbase::Status CleanupRegistry::Record(CleanupKind kind, xbase::u64 payload) {
  if (count_ >= kCapacity) {
    return xbase::ResourceExhausted("cleanup registry full");
  }
  entries_[count_++] = CleanupEntry{kind, payload};
  return xbase::Status::Ok();
}

void CleanupRegistry::Discharge(CleanupKind kind, xbase::u64 payload) {
  for (xbase::u32 i = count_; i > 0; --i) {
    CleanupEntry& entry = entries_[i - 1];
    if (entry.kind == kind && entry.payload == payload) {
      // Compact: move the tail down one slot.
      for (xbase::u32 j = i - 1; j + 1 < count_; ++j) {
        entries_[j] = entries_[j + 1];
      }
      --count_;
      return;
    }
  }
}

CleanupReport CleanupRegistry::RunAll(simkern::Kernel& kernel,
                                      MemoryPool* pool) {
  CleanupReport report;
  while (count_ > 0) {
    const CleanupEntry entry = entries_[--count_];
    ++report.entries_run;
    switch (entry.kind) {
      case CleanupKind::kReleaseObject: {
        if (!kernel.objects().Release(entry.payload).ok()) {
          ++report.failures;
        }
        break;
      }
      case CleanupKind::kReleaseLock:
        kernel.locks().ForceRelease(entry.payload);
        break;
      case CleanupKind::kFreePoolChunk:
        if (pool == nullptr || !pool->Free(entry.payload).ok()) {
          ++report.failures;
        }
        break;
      case CleanupKind::kRcuUnlock:
        if (!kernel.rcu().ReadUnlock().ok()) {
          ++report.failures;
        }
        break;
      case CleanupKind::kNone:
        break;
    }
  }
  return report;
}

}  // namespace safex

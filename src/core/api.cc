#include "src/core/api.h"

#include <limits>

#include "src/core/ext.h"
#include "src/core/panic.h"
#include "src/ebpf/helper.h"
#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace safex {

using simkern::Addr;
using xbase::StrFormat;

// ---- checked integers ------------------------------------------------------------

std::optional<s64> CheckedAdd(s64 a, s64 b) {
  s64 out;
  if (__builtin_add_overflow(a, b, &out)) {
    return std::nullopt;
  }
  return out;
}
std::optional<s64> CheckedSub(s64 a, s64 b) {
  s64 out;
  if (__builtin_sub_overflow(a, b, &out)) {
    return std::nullopt;
  }
  return out;
}
std::optional<s64> CheckedMul(s64 a, s64 b) {
  s64 out;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::nullopt;
  }
  return out;
}

// ---- Slice -----------------------------------------------------------------------

xbase::Status Slice::CheckRange(u32 off, u32 size) const {
  if (ctx_ == nullptr) {
    return xbase::FailedPrecondition("use of an invalid slice");
  }
  if (ctx_->terminated()) {
    return xbase::Terminated(ctx_->termination_reason());
  }
  if (static_cast<u64>(off) + size > len_) {
    // The Rust analogue is an index-out-of-bounds panic: the access never
    // reaches memory.
    ctx_->Panic(StrFormat("slice index out of bounds: off %u size %u len %u",
                          off, size, len_));
  }
  return xbase::Status::Ok();
}

xbase::Result<u64> Slice::ReadU64(u32 off) const {
  XB_RETURN_IF_ERROR(CheckRange(off, 8));
  u8 buf[8];
  XB_RETURN_IF_ERROR(ctx_->DomainRead(base_ + off, buf));
  return xbase::LoadLe64(buf);
}
xbase::Result<u32> Slice::ReadU32(u32 off) const {
  XB_RETURN_IF_ERROR(CheckRange(off, 4));
  u8 buf[4];
  XB_RETURN_IF_ERROR(ctx_->DomainRead(base_ + off, buf));
  return xbase::LoadLe32(buf);
}
xbase::Result<u16> Slice::ReadU16(u32 off) const {
  XB_RETURN_IF_ERROR(CheckRange(off, 2));
  u8 buf[2];
  XB_RETURN_IF_ERROR(ctx_->DomainRead(base_ + off, buf));
  return xbase::LoadLe16(buf);
}
xbase::Result<u8> Slice::ReadU8(u32 off) const {
  XB_RETURN_IF_ERROR(CheckRange(off, 1));
  u8 value;
  XB_RETURN_IF_ERROR(ctx_->DomainRead(base_ + off, {&value, 1}));
  return value;
}
xbase::Result<std::vector<u8>> Slice::ReadBytes(u32 off, u32 len) const {
  XB_RETURN_IF_ERROR(CheckRange(off, len));
  std::vector<u8> out(len);
  XB_RETURN_IF_ERROR(ctx_->DomainRead(base_ + off, out));
  return out;
}

xbase::Status Slice::WriteU64(u32 off, u64 value) {
  XB_RETURN_IF_ERROR(CheckRange(off, 8));
  u8 buf[8];
  xbase::StoreLe64(buf, value);
  return ctx_->DomainWrite(base_ + off, buf);
}
xbase::Status Slice::WriteU32(u32 off, u32 value) {
  XB_RETURN_IF_ERROR(CheckRange(off, 4));
  u8 buf[4];
  xbase::StoreLe32(buf, value);
  return ctx_->DomainWrite(base_ + off, buf);
}
xbase::Status Slice::WriteU16(u32 off, u16 value) {
  XB_RETURN_IF_ERROR(CheckRange(off, 2));
  u8 buf[2];
  xbase::StoreLe16(buf, value);
  return ctx_->DomainWrite(base_ + off, buf);
}
xbase::Status Slice::WriteU8(u32 off, u8 value) {
  XB_RETURN_IF_ERROR(CheckRange(off, 1));
  return ctx_->DomainWrite(base_ + off, {&value, 1});
}
xbase::Status Slice::WriteBytes(u32 off, std::span<const u8> data) {
  XB_RETURN_IF_ERROR(CheckRange(off, static_cast<u32>(data.size())));
  return ctx_->DomainWrite(base_ + off, data);
}

xbase::Result<Slice> Slice::SubSlice(u32 off, u32 len) const {
  XB_RETURN_IF_ERROR(CheckRange(off, len));
  return Slice(ctx_, base_ + off, len);
}

// ---- SockRef ----------------------------------------------------------------------

SockRef::SockRef(SockRef&& other) noexcept
    : ctx_(other.ctx_), object_id_(other.object_id_),
      struct_addr_(other.struct_addr_) {
  other.ctx_ = nullptr;
}
SockRef& SockRef::operator=(SockRef&& other) noexcept {
  if (this != &other) {
    Release();
    ctx_ = other.ctx_;
    object_id_ = other.object_id_;
    struct_addr_ = other.struct_addr_;
    other.ctx_ = nullptr;
  }
  return *this;
}
SockRef::~SockRef() { Release(); }

void SockRef::Release() {
  if (ctx_ != nullptr) {
    ctx_->ReleaseSock(object_id_);
    ctx_ = nullptr;
  }
}

namespace {
u32 ReadSockField32(Ctx* ctx, Addr addr, xbase::usize off) {
  u8 buf[4] = {};
  if (ctx != nullptr) {
    (void)ctx->kernel().mem().Read(addr + off, buf);
  }
  return xbase::LoadLe32(buf);
}
u16 ReadSockField16(Ctx* ctx, Addr addr, xbase::usize off) {
  u8 buf[2] = {};
  if (ctx != nullptr) {
    (void)ctx->kernel().mem().Read(addr + off, buf);
  }
  return xbase::LoadLe16(buf);
}
}  // namespace

u32 SockRef::src_ip() const {
  return ReadSockField32(ctx_, struct_addr_, simkern::SockLayout::kSrcIp);
}
u16 SockRef::src_port() const {
  return ReadSockField16(ctx_, struct_addr_, simkern::SockLayout::kSrcPort);
}
u16 SockRef::dst_port() const {
  return ReadSockField16(ctx_, struct_addr_, simkern::SockLayout::kDstPort);
}
u32 SockRef::protocol() const {
  return ReadSockField32(ctx_, struct_addr_, simkern::SockLayout::kProtocol);
}

// ---- LockGuard --------------------------------------------------------------------

LockGuard::LockGuard(LockGuard&& other) noexcept
    : ctx_(other.ctx_), lock_id_(other.lock_id_) {
  other.ctx_ = nullptr;
}
LockGuard& LockGuard::operator=(LockGuard&& other) noexcept {
  if (this != &other) {
    Release();
    ctx_ = other.ctx_;
    lock_id_ = other.lock_id_;
    other.ctx_ = nullptr;
  }
  return *this;
}
LockGuard::~LockGuard() { Release(); }

void LockGuard::Release() {
  if (ctx_ != nullptr) {
    ctx_->ReleaseLock(lock_id_);
    ctx_ = nullptr;
  }
}

// ---- MapRef ------------------------------------------------------------------------

u32 MapRef::key_size() const {
  return map_ == nullptr ? 0 : map_->spec().key_size;
}
u32 MapRef::value_size() const {
  return map_ == nullptr ? 0 : map_->spec().value_size;
}

xbase::Result<Slice> MapRef::Lookup(std::span<const u8> key) {
  if (ctx_ == nullptr || map_ == nullptr) {
    return xbase::FailedPrecondition("use of an invalid map handle");
  }
  XB_RETURN_IF_ERROR(ctx_->Charge(simkern::kCostMapOpNs));
  auto addr = map_->LookupAddr(ctx_->kernel(), key);
  if (!addr.ok()) {
    return addr.status();
  }
  return Slice(ctx_, addr.value(), map_->spec().value_size);
}

xbase::Status MapRef::Update(std::span<const u8> key,
                             std::span<const u8> value, u64 flags) {
  if (ctx_ == nullptr || map_ == nullptr) {
    return xbase::FailedPrecondition("use of an invalid map handle");
  }
  XB_RETURN_IF_ERROR(ctx_->Charge(simkern::kCostMapOpNs));
  return map_->Update(ctx_->kernel(), key, value, flags);
}

xbase::Status MapRef::Delete(std::span<const u8> key) {
  if (ctx_ == nullptr || map_ == nullptr) {
    return xbase::FailedPrecondition("use of an invalid map handle");
  }
  XB_RETURN_IF_ERROR(ctx_->Charge(simkern::kCostMapOpNs));
  return map_->Delete(ctx_->kernel(), key);
}

xbase::Result<Slice> MapRef::LookupOrInit(std::span<const u8> key) {
  auto found = Lookup(key);
  if (found.ok()) {
    return found;
  }
  std::vector<u8> zero(map_->spec().value_size, 0);
  XB_RETURN_IF_ERROR(Update(key, zero, ebpf::kBpfAny));
  return Lookup(key);
}

xbase::Result<Slice> MapRef::LookupIndex(u32 index) {
  u8 key[4];
  xbase::StoreLe32(key, index);
  return Lookup(key);
}

xbase::Status MapRef::UpdateIndex(u32 index, std::span<const u8> value) {
  u8 key[4];
  xbase::StoreLe32(key, index);
  return Update(key, value, ebpf::kBpfAny);
}

// ---- Ctx ----------------------------------------------------------------------------

Ctx::Ctx(Runtime& runtime, const CapSet& caps, u64 watchdog_budget_ns,
         Addr skb_meta)
    : runtime_(runtime), caps_(caps), skb_meta_(skb_meta) {
  watchdog_.Arm(runtime.kernel().clock(), watchdog_budget_ns);
}

simkern::Kernel& Ctx::kernel() { return runtime_.kernel(); }

void Ctx::Panic(std::string reason) {
  if (!terminated_) {
    terminated_ = true;
    reason_ = std::move(reason);
  }
  // Models the asynchronous kill: control leaves the extension immediately.
  // The only frames unwound belong to the extension body and the trusted
  // crate; the harness in Runtime::Invoke catches this and runs the
  // cleanup registry (see DESIGN.md on the no-ABI-unwinding substitution).
  throw TerminationSignal{};
}

xbase::Status Ctx::Charge(u64 cost_ns) {
  if (terminated_) {
    return xbase::Terminated(reason_);
  }
  ++stats_.crate_calls;
  stats_.charged_ns += cost_ns;
  runtime_.kernel().clock().Advance(cost_ns);
  if (watchdog_.Expired(runtime_.kernel().clock())) {
    Panic("watchdog: invocation budget exceeded");
  }
  return xbase::Status::Ok();
}

xbase::Status Ctx::RequireCap(Capability cap) {
  if (terminated_) {
    return xbase::Terminated(reason_);
  }
  if (!HasCap(caps_, cap)) {
    Panic(StrFormat("capability violation: %s not in signed manifest",
                    CapabilityName(cap).data()));
  }
  return xbase::Status::Ok();
}

xbase::Status Ctx::DomainRead(Addr addr, std::span<u8> out) {
  xbase::Status status = runtime_.kernel().mem().ReadChecked(
      addr, out, runtime_.config().protection_key);
  if (!status.ok()) {
    // A domain fault is contained: consume the pending fault and panic the
    // extension instead of oopsing the kernel.
    (void)runtime_.kernel().mem().TakeFault();
    Panic("memory domain violation on read");
  }
  return status;
}

xbase::Status Ctx::DomainWrite(Addr addr, std::span<const u8> data) {
  xbase::Status status = runtime_.kernel().mem().WriteChecked(
      addr, data, runtime_.config().protection_key);
  if (!status.ok()) {
    (void)runtime_.kernel().mem().TakeFault();
    Panic("memory domain violation on write");
  }
  return status;
}

u64 Ctx::KtimeNs() {
  (void)Charge(5);
  return runtime_.kernel().clock().now_ns();
}

u32 Ctx::Prandom() {
  (void)Charge(5);
  // xorshift over the clock: deterministic per run, cheap, stateless.
  u64 x = runtime_.kernel().clock().now_ns() * 0x9e3779b97f4a7c15ULL + 1;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  return static_cast<u32>(x >> 32);
}

u64 Ctx::PidTgid() {
  (void)Charge(5);
  const simkern::Task* task = runtime_.kernel().tasks().current();
  if (task == nullptr) {
    return 0;
  }
  return (static_cast<u64>(task->tgid) << 32) | task->pid;
}

xbase::Result<TaskRef> Ctx::CurrentTask() {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kTaskInspect));
  XB_RETURN_IF_ERROR(Charge(10));
  const simkern::Task* task = runtime_.kernel().tasks().current();
  if (task == nullptr) {
    return xbase::FailedPrecondition("no current task");
  }
  return TaskRef(task->pid, task->tgid, task->comm, task->struct_addr);
}

xbase::Result<s64> Ctx::ParseInt(std::string_view text) {
  XB_RETURN_IF_ERROR(Charge(10));
  // core::str::parse::<i64> semantics: optional sign, decimal digits, the
  // whole string must be consumed.
  if (text.empty()) {
    return xbase::InvalidArgument("empty string");
  }
  xbase::usize pos = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos >= text.size()) {
    return xbase::InvalidArgument("no digits");
  }
  s64 value = 0;
  for (; pos < text.size(); ++pos) {
    const char c = text[pos];
    if (c < '0' || c > '9') {
      return xbase::InvalidArgument("invalid digit");
    }
    auto scaled = CheckedMul(value, 10);
    if (!scaled.has_value()) {
      return xbase::OutOfRange("integer overflow");
    }
    auto summed = CheckedAdd(*scaled, c - '0');
    if (!summed.has_value()) {
      return xbase::OutOfRange("integer overflow");
    }
    value = *summed;
  }
  return negative ? -value : value;
}

int Ctx::StrCmp(std::string_view a, std::string_view b, u32 max_len) {
  const xbase::usize len =
      std::min<xbase::usize>({a.size(), b.size(), max_len});
  for (xbase::usize i = 0; i < len; ++i) {
    if (a[i] != b[i]) {
      return static_cast<int>(static_cast<u8>(a[i])) -
             static_cast<int>(static_cast<u8>(b[i]));
    }
  }
  if (len == max_len) {
    return 0;
  }
  return static_cast<int>(a.size()) - static_cast<int>(b.size());
}

xbase::Status Ctx::Tick() { return Charge(1); }

xbase::Result<MapRef> Ctx::Map(int fd) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kMapAccess));
  XB_RETURN_IF_ERROR(Charge(5));
  auto map = runtime_.maps().Find(fd);
  if (!map.ok()) {
    return map.status();
  }
  return MapRef(this, map.value());
}

xbase::Result<Slice> Ctx::Packet() {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kPacketAccess));
  XB_RETURN_IF_ERROR(Charge(10));
  if (skb_meta_ == 0) {
    return xbase::FailedPrecondition("no packet context on this hook");
  }
  auto data = runtime_.kernel().mem().ReadU64(
      skb_meta_ + simkern::SkBuffLayout::kDataPtr);
  auto len = runtime_.kernel().mem().ReadU32(
      skb_meta_ + simkern::SkBuffLayout::kLen);
  if (!data.ok() || !len.ok()) {
    return xbase::Internal("corrupt skb metadata");
  }
  return Slice(this, data.value(), len.value());
}

xbase::Result<u32> Ctx::PacketLen() {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kPacketAccess));
  XB_RETURN_IF_ERROR(Charge(5));
  if (skb_meta_ == 0) {
    return xbase::FailedPrecondition("no packet context on this hook");
  }
  return runtime_.kernel().mem().ReadU32(skb_meta_ +
                                         simkern::SkBuffLayout::kLen);
}

xbase::Result<SockRef> Ctx::LookupSock(const simkern::SockTuple& tuple,
                                       u32 protocol) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kSockLookup));
  XB_RETURN_IF_ERROR(Charge(350));
  const auto sock = runtime_.kernel().net().Lookup(tuple);
  if (!sock.has_value() || sock->protocol != protocol) {
    return xbase::NotFound("no matching socket");
  }
  // Record the release *before* taking the reference: if the registry is
  // full we refuse the acquisition, never the release.
  XB_RETURN_IF_ERROR(
      cleanup_.Record(CleanupKind::kReleaseObject, sock->object_id));
  const xbase::Status acquired =
      runtime_.kernel().objects().Acquire(sock->object_id);
  if (!acquired.ok()) {
    cleanup_.Discharge(CleanupKind::kReleaseObject, sock->object_id);
    return acquired;
  }
  return SockRef(this, sock->object_id, sock->struct_addr);
}

xbase::Result<SockRef> Ctx::LookupTcp(const simkern::SockTuple& tuple) {
  return LookupSock(tuple, 6);
}
xbase::Result<SockRef> Ctx::LookupUdp(const simkern::SockTuple& tuple) {
  return LookupSock(tuple, 17);
}

void Ctx::ReleaseSock(simkern::ObjectId id) {
  (void)runtime_.kernel().objects().Release(id);
  cleanup_.Discharge(CleanupKind::kReleaseObject, id);
}

xbase::Result<Slice> Ctx::TaskStorage(int fd, const TaskRef& task,
                                      bool create) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kTaskInspect));
  XB_RETURN_IF_ERROR(RequireCap(Capability::kMapAccess));
  XB_RETURN_IF_ERROR(Charge(simkern::kCostMapOpNs));
  auto map = runtime_.maps().Find(fd);
  if (!map.ok()) {
    return map.status();
  }
  auto* storage = dynamic_cast<ebpf::TaskStorageMap*>(map.value());
  if (storage == nullptr) {
    return xbase::InvalidArgument("not a task-storage map");
  }
  // `task` is a reference type: there is no NULL to dereference. This is
  // the §3.2 hardening of bpf_task_storage_get.
  auto addr =
      storage->GetForTask(runtime_.kernel(), task.struct_addr_, create);
  if (!addr.ok()) {
    return addr.status();
  }
  return Slice(this, addr.value(), storage->spec().value_size);
}

xbase::Result<LockGuard> Ctx::Lock(int map_fd, u32 value_off) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kSpinLock));
  XB_RETURN_IF_ERROR(Charge(20));
  const simkern::LockId id = runtime_.LockIdFor(map_fd, value_off);
  XB_RETURN_IF_ERROR(cleanup_.Record(CleanupKind::kReleaseLock, id));
  const xbase::Status acquired =
      runtime_.kernel().locks().Acquire(id, "safex");
  if (!acquired.ok()) {
    cleanup_.Discharge(CleanupKind::kReleaseLock, id);
    // Double-acquire through the RAII API means the extension author held
    // two guards; the runtime refuses rather than deadlocks.
    return acquired;
  }
  return LockGuard(this, id);
}

void Ctx::ReleaseLock(simkern::LockId id) {
  (void)runtime_.kernel().locks().Release(id);
  cleanup_.Discharge(CleanupKind::kReleaseLock, id);
}

xbase::Status Ctx::RingbufOutput(int fd, std::span<const u8> data) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kRingBuf));
  XB_RETURN_IF_ERROR(Charge(120));
  auto map = runtime_.maps().Find(fd);
  if (!map.ok()) {
    return map.status();
  }
  auto* ringbuf = dynamic_cast<ebpf::RingBufMap*>(map.value());
  if (ringbuf == nullptr) {
    return xbase::InvalidArgument("not a ringbuf map");
  }
  return ringbuf->Output(runtime_.kernel(), data);
}

xbase::Result<Slice> Ctx::Alloc(u32 size) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kDynAlloc));
  XB_RETURN_IF_ERROR(Charge(30));
  MemoryPool& pool = runtime_.pool_for_cpu(0);
  if (size > pool.chunk_size()) {
    return xbase::InvalidArgument(
        StrFormat("allocation of %u exceeds pool chunk size %u", size,
                  pool.chunk_size()));
  }
  XB_ASSIGN_OR_RETURN(const Addr addr, pool.Alloc(runtime_.kernel()));
  XB_RETURN_IF_ERROR(cleanup_.Record(CleanupKind::kFreePoolChunk, addr));
  return Slice(this, addr, size);
}

xbase::Status Ctx::Free(const Slice& slice) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kDynAlloc));
  XB_RETURN_IF_ERROR(Charge(10));
  MemoryPool& pool = runtime_.pool_for_cpu(0);
  XB_RETURN_IF_ERROR(pool.Free(slice.raw_addr_for_crate()));
  cleanup_.Discharge(CleanupKind::kFreePoolChunk,
                     slice.raw_addr_for_crate());
  return xbase::Status::Ok();
}

xbase::Result<s64> Ctx::SysBpfMapCreate(u32 value_size, u32 max_entries) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kSysBpf));
  XB_RETURN_IF_ERROR(Charge(500));
  // Build a well-formed attr and call the *same* unsafe kernel
  // implementation the eBPF helper uses — the §3.2 pattern: a typed safe
  // interface wrapping unchanged unsafe code.
  auto fn = runtime_.bpf().helpers().FindFn(ebpf::kHelperSysBpf);
  if (!fn.ok()) {
    return fn.status();
  }
  XB_ASSIGN_OR_RETURN(Slice attr, Alloc(64));
  XB_RETURN_IF_ERROR(attr.WriteU32(4, value_size));
  XB_RETURN_IF_ERROR(attr.WriteU32(8, max_entries));
  ebpf::HelperCtx hctx = runtime_.bpf().MakeHelperCtx(nullptr);
  const ebpf::HelperArgs args = {ebpf::kSysBpfMapCreate,
                                 attr.raw_addr_for_crate(), 64, 0, 0};
  auto ret = (*fn.value())(hctx, args);
  (void)Free(attr);
  if (!ret.ok()) {
    return ret.status();
  }
  return static_cast<s64>(ret.value());
}

xbase::Result<s64> Ctx::SysBpfProgLoad(const Slice& insns) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kSysBpf));
  XB_RETURN_IF_ERROR(Charge(500));
  if (!insns.valid()) {
    // The type system analogue: a dead Slice cannot stand in for an
    // instruction buffer, so the §2.2 NULL-union crash is unrepresentable.
    return xbase::InvalidArgument("instruction buffer slice is invalid");
  }
  auto fn = runtime_.bpf().helpers().FindFn(ebpf::kHelperSysBpf);
  if (!fn.ok()) {
    return fn.status();
  }
  XB_ASSIGN_OR_RETURN(Slice attr, Alloc(64));
  XB_RETURN_IF_ERROR(
      attr.WriteU64(ebpf::kSysBpfAttrInsnsPtrOff,
                    insns.raw_addr_for_crate()));
  ebpf::HelperCtx hctx = runtime_.bpf().MakeHelperCtx(nullptr);
  const ebpf::HelperArgs args = {ebpf::kSysBpfProgLoad,
                                 attr.raw_addr_for_crate(), 64, 0, 0};
  auto ret = (*fn.value())(hctx, args);
  (void)Free(attr);
  if (!ret.ok()) {
    return ret.status();
  }
  return static_cast<s64>(ret.value());
}

xbase::Status Ctx::Trace(std::string_view message) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kTracing));
  XB_RETURN_IF_ERROR(Charge(100));
  runtime_.kernel().Printk("safex: " + std::string(message));
  return xbase::Status::Ok();
}

xbase::Status Ctx::SendSignal(u32 sig) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kSignal));
  XB_RETURN_IF_ERROR(Charge(50));
  const simkern::Task* task = runtime_.kernel().tasks().current();
  runtime_.kernel().Printk(StrFormat("safex: signal %u to pid %u", sig,
                                     task == nullptr ? 0 : task->pid));
  return xbase::Status::Ok();
}

xbase::Result<u64> Ctx::UnsafeReadKernel(Addr addr) {
  XB_RETURN_IF_ERROR(RequireCap(Capability::kUnsafeRaw));
  XB_RETURN_IF_ERROR(Charge(10));
  u8 buf[8];
  xbase::Status status = runtime_.kernel().mem().ReadChecked(
      addr, buf, runtime_.config().protection_key);
  if (!status.ok()) {
    auto fault = runtime_.kernel().mem().TakeFault();
    if (fault.has_value() &&
        fault->kind == simkern::FaultKind::kProtectionKey) {
      // §4: the hardware domain contains even unsafe code — the extension
      // dies, the kernel does not.
      Panic("pkey violation in unsafe block: " + fault->ToString());
    }
    // Without a protection key the wild access is a genuine kernel fault.
    if (fault.has_value()) {
      runtime_.kernel().Oops(fault->ToString());
    }
    return status;
  }
  return xbase::LoadLe64(buf);
}

xbase::Status Ctx::EnterFrame() {
  XB_RETURN_IF_ERROR(Charge(2));
  if (++frame_depth_ > kMaxExtensionFrames) {
    Panic(StrFormat("stack guard: recursion deeper than %u frames",
                    kMaxExtensionFrames));
  }
  stats_.max_stack_depth = std::max(stats_.max_stack_depth, frame_depth_);
  return xbase::Status::Ok();
}

void Ctx::LeaveFrame() {
  if (frame_depth_ > 0) {
    --frame_depth_;
  }
}

}  // namespace safex

// Capabilities: what a safe extension is allowed to touch. The manifest the
// trusted toolchain signs lists these; the loader audits them against kernel
// policy, and the kernel-crate API enforces them again at runtime (defense
// in depth — the runtime check is what makes a forged manifest useless even
// if a signing key leaks).
#pragma once

#include <string_view>
#include <vector>

#include "src/xbase/types.h"

namespace safex {

enum class Capability : xbase::u8 {
  kMapAccess,     // BPF map lookup/update/delete through the crate
  kPacketAccess,  // sk_buff payload views
  kTaskInspect,   // current-task metadata, task storage
  kSockLookup,    // socket lookup (acquiring references)
  kSpinLock,      // kernel spin locks through RAII guards
  kRingBuf,       // ring buffer output
  kDynAlloc,      // pool-backed dynamic allocation (§4)
  kSysBpf,        // the checked bpf(2) wrapper (§3.2's hardened interface)
  kSignal,        // send signals
  kTracing,       // printk-style diagnostics
  kUnsafeRaw,     // raw kernel-address access: an `unsafe` block. Rejected
                  // by the default toolchain policy.
};

std::string_view CapabilityName(Capability cap);

using CapSet = std::vector<Capability>;

inline bool HasCap(const CapSet& caps, Capability cap) {
  for (Capability have : caps) {
    if (have == cap) {
      return true;
    }
  }
  return false;
}

}  // namespace safex

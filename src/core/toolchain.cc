#include "src/core/toolchain.h"

#include <set>

#include "src/crypto/sha256.h"

namespace safex {

xbase::Status Toolchain::Audit(const ExtensionManifest& manifest) {
  report_ = BuildReport{};

  // Check 1: identity must be meaningful.
  ++report_.checks_run;
  if (manifest.name.empty() || manifest.version.empty()) {
    return xbase::Rejected("toolchain: manifest needs a name and version");
  }

  // Check 2: unsafe policy — the "only safe Rust" rule.
  ++report_.checks_run;
  const bool wants_unsafe =
      manifest.uses_unsafe || HasCap(manifest.caps, Capability::kUnsafeRaw);
  if (wants_unsafe && !policy_.allow_unsafe) {
    return xbase::Rejected(
        "toolchain: extension contains unsafe blocks; policy forbids "
        "signing it");
  }
  if (HasCap(manifest.caps, Capability::kUnsafeRaw) &&
      !manifest.uses_unsafe) {
    return xbase::Rejected(
        "toolchain: unsafe_raw capability without uses_unsafe marker");
  }

  // Check 3: capability list sanity.
  ++report_.checks_run;
  if (manifest.caps.size() > policy_.max_capabilities) {
    return xbase::Rejected("toolchain: too many capabilities requested");
  }
  std::set<Capability> seen;
  for (Capability cap : manifest.caps) {
    if (!seen.insert(cap).second) {
      return xbase::Rejected("toolchain: duplicate capability in manifest");
    }
  }

  // Check 4: every import must be a known kernel-crate symbol whose
  // required capability is declared.
  ++report_.checks_run;
  for (const std::string& import : manifest.imports) {
    const auto it = KnownImports().find(import);
    if (it == KnownImports().end()) {
      return xbase::Rejected("toolchain: unknown import " + import);
    }
    if (!HasCap(manifest.caps, it->second)) {
      return xbase::Rejected("toolchain: import " + import +
                             " requires undeclared capability " +
                             std::string(CapabilityName(it->second)));
    }
  }

  // Lints (non-fatal).
  if (manifest.caps.empty()) {
    report_.lints.push_back("extension declares no capabilities");
  }
  return xbase::Status::Ok();
}

xbase::Result<SignedArtifact> Toolchain::Build(
    ExtensionManifest manifest, ExtensionFactory factory,
    std::span<const xbase::u8> code_identity) {
  if (factory == nullptr) {
    return xbase::InvalidArgument("toolchain: no extension body");
  }
  XB_RETURN_IF_ERROR(Audit(manifest));

  SignedArtifact artifact;
  artifact.code_hash = crypto::Sha256::Hash(code_identity);
  artifact.manifest = std::move(manifest);
  const std::vector<xbase::u8> message =
      CanonicalEncode(artifact.manifest, artifact.code_hash);
  artifact.signature = key_.Sign(message);
  artifact.factory = std::move(factory);
  return artifact;
}

}  // namespace safex

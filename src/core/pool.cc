#include "src/core/pool.h"

#include "src/xbase/strfmt.h"

namespace safex {

xbase::Result<MemoryPool> MemoryPool::Create(simkern::Kernel& kernel,
                                             const std::string& name,
                                             u32 chunk_size, u32 chunk_count,
                                             u32 protection_key) {
  if (chunk_size == 0 || chunk_count == 0) {
    return xbase::InvalidArgument("pool needs nonzero geometry");
  }
  MemoryPool pool;
  pool.chunk_size_ = chunk_size;
  pool.chunk_count_ = chunk_count;
  pool.in_use_.assign(chunk_count, false);
  pool.stats_.chunks_total = chunk_count;
  XB_ASSIGN_OR_RETURN(
      pool.base_,
      kernel.mem().Map(static_cast<xbase::usize>(chunk_size) * chunk_count,
                       simkern::MemPerm::kReadWrite,
                       simkern::RegionKind::kExtensionPool, "pool:" + name));
  kernel.mem().SetRegionKey(pool.base_, protection_key);
  return pool;
}

xbase::Result<Addr> MemoryPool::Alloc(simkern::Kernel& kernel) {
  ++stats_.alloc_calls;
  for (u32 i = 0; i < chunk_count_; ++i) {
    if (!in_use_[i]) {
      in_use_[i] = true;
      ++stats_.chunks_in_use;
      stats_.peak_in_use = std::max(stats_.peak_in_use,
                                    stats_.chunks_in_use);
      const Addr addr = base_ + static_cast<u64>(i) * chunk_size_;
      std::vector<xbase::u8> zeros(chunk_size_, 0);
      XB_RETURN_IF_ERROR(kernel.mem().Write(addr, zeros));
      return addr;
    }
  }
  ++stats_.failed_allocs;
  return xbase::ResourceExhausted("memory pool exhausted");
}

xbase::Status MemoryPool::Free(Addr addr) {
  if (!Owns(addr) || (addr - base_) % chunk_size_ != 0) {
    return xbase::InvalidArgument("free of non-pool address");
  }
  const u64 index = (addr - base_) / chunk_size_;
  if (!in_use_[index]) {
    return xbase::FailedPrecondition("double free of pool chunk");
  }
  in_use_[index] = false;
  --stats_.chunks_in_use;
  return xbase::Status::Ok();
}

void MemoryPool::Reset() {
  for (u32 i = 0; i < chunk_count_; ++i) {
    in_use_[i] = false;
  }
  stats_.chunks_in_use = 0;
}

bool MemoryPool::Owns(Addr addr) const {
  return addr >= base_ &&
         addr < base_ + static_cast<u64>(chunk_size_) * chunk_count_;
}

xbase::Result<PerCpuPools> PerCpuPools::Create(simkern::Kernel& kernel,
                                               u32 chunk_size,
                                               u32 chunk_count,
                                               u32 protection_key) {
  PerCpuPools pools;
  for (u32 cpu = 0; cpu < kernel.config().num_cpus; ++cpu) {
    XB_ASSIGN_OR_RETURN(
        MemoryPool pool,
        MemoryPool::Create(kernel, xbase::StrFormat("percpu%u", cpu),
                           chunk_size, chunk_count, protection_key));
    pools.pools_.push_back(std::move(pool));
  }
  return pools;
}

}  // namespace safex

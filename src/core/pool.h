// Pre-allocated memory pool (§4 "Dynamic memory allocation"): fixed-size
// chunks carved out of one SimMemory region per CPU at framework init, so
// extensions can allocate in non-sleepable contexts without touching the
// kernel allocator. The unwind machinery also allocates from here — never
// dynamically — which is the §3.1 requirement for termination in interrupt
// context.
#pragma once

#include <vector>

#include "src/simkern/kernel.h"
#include "src/xbase/status.h"

namespace safex {

using simkern::Addr;
using xbase::u32;
using xbase::u64;

struct PoolStats {
  u32 chunks_total = 0;
  u32 chunks_in_use = 0;
  u32 peak_in_use = 0;
  u64 alloc_calls = 0;
  u64 failed_allocs = 0;
};

class MemoryPool {
 public:
  // Carves `chunk_count` chunks of `chunk_size` bytes out of fresh kernel
  // memory tagged with `protection_key`.
  static xbase::Result<MemoryPool> Create(simkern::Kernel& kernel,
                                          const std::string& name,
                                          u32 chunk_size, u32 chunk_count,
                                          u32 protection_key);

  // Allocates one chunk; the address is chunk_size bytes of zeroed memory.
  xbase::Result<Addr> Alloc(simkern::Kernel& kernel);
  xbase::Status Free(Addr addr);
  // Frees everything (safe-termination path).
  void Reset();

  bool Owns(Addr addr) const;
  u32 chunk_size() const { return chunk_size_; }
  const PoolStats& stats() const { return stats_; }
  Addr base() const { return base_; }

 private:
  MemoryPool() = default;

  Addr base_ = 0;
  u32 chunk_size_ = 0;
  u32 chunk_count_ = 0;
  std::vector<bool> in_use_;
  PoolStats stats_;
};

// One pool per simulated CPU (§3.1's "dedicated per-CPU region").
class PerCpuPools {
 public:
  static xbase::Result<PerCpuPools> Create(simkern::Kernel& kernel,
                                           u32 chunk_size, u32 chunk_count,
                                           u32 protection_key);

  MemoryPool& ForCpu(u32 cpu) { return pools_[cpu % pools_.size()]; }

 private:
  std::vector<MemoryPool> pools_;
};

}  // namespace safex

// The trusted kernel crate (§3.1): the only interface safe extensions have
// to the kernel. It plays the role safe Rust plays in the paper — no raw
// pointers, no unchecked arithmetic, resources held by RAII handles whose
// releases are also recorded in the cleanup registry so that *any*
// termination (normal return, panic, watchdog) restores kernel state.
//
// C++ cannot reproduce rustc's compile-time proofs, so every guarantee the
// paper gets from the type system is enforced here as a *total* dynamic
// check inside the crate boundary: out-of-bounds slice access, integer
// overflow and use of a dead handle do not touch kernel memory at all; they
// panic the extension, which is terminated safely. The observable outcomes
// — kernel integrity preserved, extension stopped — match the paper's
// design point for point (see DESIGN.md §2, substitution table).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/caps.h"
#include "src/core/cleanup.h"
#include "src/core/pool.h"
#include "src/core/watchdog.h"
#include "src/ebpf/map.h"
#include "src/simkern/kernel.h"
#include "src/xbase/status.h"

namespace safex {

using xbase::s64;
using xbase::u16;
using xbase::u32;
using xbase::u64;
using xbase::u8;

class Ctx;
class Runtime;

// ---- checked integers (Rust integer semantics) --------------------------------

std::optional<s64> CheckedAdd(s64 a, s64 b);
std::optional<s64> CheckedSub(s64 a, s64 b);
std::optional<s64> CheckedMul(s64 a, s64 b);

// ---- Slice: the only window onto memory ---------------------------------------

// A bounds-checked view over a region the crate handed out (map value, pool
// chunk, packet bytes). Every accessor validates offset+size against the
// slice length *before* touching the memory model, so out-of-bounds access
// through the safe API is impossible by construction; a violation panics
// the extension instead.
class Slice {
 public:
  Slice() = default;

  bool valid() const { return ctx_ != nullptr && len_ > 0; }
  u32 size() const { return len_; }

  xbase::Result<u64> ReadU64(u32 off) const;
  xbase::Result<u32> ReadU32(u32 off) const;
  xbase::Result<u16> ReadU16(u32 off) const;
  xbase::Result<u8> ReadU8(u32 off) const;
  xbase::Result<std::vector<u8>> ReadBytes(u32 off, u32 len) const;

  xbase::Status WriteU64(u32 off, u64 value);
  xbase::Status WriteU32(u32 off, u32 value);
  xbase::Status WriteU16(u32 off, u16 value);
  xbase::Status WriteU8(u32 off, u8 value);
  xbase::Status WriteBytes(u32 off, std::span<const u8> data);

  // Sub-view; fails (panics) if the window escapes this slice.
  xbase::Result<Slice> SubSlice(u32 off, u32 len) const;

  // The underlying kernel address — exposed only so the hardened sys_bpf
  // wrapper can build a valid attr; extensions have no use for it.
  simkern::Addr raw_addr_for_crate() const { return base_; }

 private:
  friend class Ctx;
  friend class MapRef;
  Slice(Ctx* ctx, simkern::Addr base, u32 len)
      : ctx_(ctx), base_(base), len_(len) {}

  xbase::Status CheckRange(u32 off, u32 size) const;

  Ctx* ctx_ = nullptr;
  simkern::Addr base_ = 0;
  u32 len_ = 0;
};

// ---- RAII handles ----------------------------------------------------------------

// An acquired socket reference. Move-only; releasing is automatic at scope
// exit, and the cleanup registry covers every other termination path.
class SockRef {
 public:
  SockRef() = default;
  SockRef(SockRef&& other) noexcept;
  SockRef& operator=(SockRef&& other) noexcept;
  SockRef(const SockRef&) = delete;
  SockRef& operator=(const SockRef&) = delete;
  ~SockRef();

  bool valid() const { return ctx_ != nullptr; }
  u32 src_ip() const;
  u16 src_port() const;
  u16 dst_port() const;
  u32 protocol() const;

 private:
  friend class Ctx;
  SockRef(Ctx* ctx, simkern::ObjectId id, simkern::Addr addr)
      : ctx_(ctx), object_id_(id), struct_addr_(addr) {}

  void Release();

  Ctx* ctx_ = nullptr;
  simkern::ObjectId object_id_ = 0;
  simkern::Addr struct_addr_ = 0;
};

// A held spin lock; released on destruction (RAII replaces the verifier's
// lock-balance checking, per Table 2).
class LockGuard {
 public:
  LockGuard() = default;
  LockGuard(LockGuard&& other) noexcept;
  LockGuard& operator=(LockGuard&& other) noexcept;
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard();

  bool held() const { return ctx_ != nullptr; }

 private:
  friend class Ctx;
  LockGuard(Ctx* ctx, simkern::LockId id) : ctx_(ctx), lock_id_(id) {}

  void Release();

  Ctx* ctx_ = nullptr;
  simkern::LockId lock_id_ = 0;
};

// A *reference* to a live task — cannot be null by construction, which is
// how §3.2 proposes to fix the bpf_task_storage_get NULL-owner bug.
class TaskRef {
 public:
  u32 pid() const { return pid_; }
  u32 tgid() const { return tgid_; }
  const std::string& comm() const { return comm_; }

 private:
  friend class Ctx;
  TaskRef(u32 pid, u32 tgid, std::string comm, simkern::Addr addr)
      : pid_(pid), tgid_(tgid), comm_(std::move(comm)), struct_addr_(addr) {}

  u32 pid_;
  u32 tgid_;
  std::string comm_;
  simkern::Addr struct_addr_;
};

// Typed map handle.
class MapRef {
 public:
  MapRef() = default;

  u32 key_size() const;
  u32 value_size() const;

  // Lookup returns a bounds-checked view of the value, or NotFound.
  xbase::Result<Slice> Lookup(std::span<const u8> key);
  xbase::Status Update(std::span<const u8> key, std::span<const u8> value,
                       u64 flags);
  xbase::Status Delete(std::span<const u8> key);
  // Lookup, inserting a zero value first if absent.
  xbase::Result<Slice> LookupOrInit(std::span<const u8> key);

  // u32-keyed conveniences for the common array-map shape.
  xbase::Result<Slice> LookupIndex(u32 index);
  xbase::Status UpdateIndex(u32 index, std::span<const u8> value);

 private:
  friend class Ctx;
  MapRef(Ctx* ctx, ebpf::Map* map) : ctx_(ctx), map_(map) {}

  Ctx* ctx_ = nullptr;
  ebpf::Map* map_ = nullptr;
};

// ---- invocation context -----------------------------------------------------------

struct CtxStats {
  u64 crate_calls = 0;
  u64 charged_ns = 0;
  u32 max_stack_depth = 0;
};

class Ctx {
 public:
  // Constructed by the Runtime invocation harness; extensions only ever see
  // a reference.
  Ctx(Runtime& runtime, const CapSet& caps, u64 watchdog_budget_ns,
      simkern::Addr skb_meta);
  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // --- scalars & current task ------------------------------------------
  u64 KtimeNs();
  u32 Prandom();
  u64 PidTgid();
  xbase::Result<TaskRef> CurrentTask();  // kTaskInspect

  // --- retired helpers (§3.2): language features instead of escape hatches
  xbase::Result<s64> ParseInt(std::string_view text);   // vs bpf_strtol
  static int StrCmp(std::string_view a, std::string_view b,
                    u32 max_len);                        // vs bpf_strncmp
  // Loops need no helper at all: extensions use the language's `for`, and
  // the watchdog bounds them. Tick() is the explicit cancellation point for
  // long compute loops.
  xbase::Status Tick();

  // --- maps ---------------------------------------------------------------
  xbase::Result<MapRef> Map(int fd);  // kMapAccess

  // --- packet ---------------------------------------------------------------
  xbase::Result<Slice> Packet();  // kPacketAccess; requires an skb hook
  xbase::Result<u32> PacketLen();

  // --- sockets -----------------------------------------------------------------
  xbase::Result<SockRef> LookupTcp(const simkern::SockTuple& tuple);
  xbase::Result<SockRef> LookupUdp(const simkern::SockTuple& tuple);

  // --- task storage (reference-typed owner: the §3.2 hardening) -----------------
  xbase::Result<Slice> TaskStorage(int fd, const TaskRef& task, bool create);

  // --- locks ----------------------------------------------------------------------
  xbase::Result<LockGuard> Lock(int map_fd, u32 value_off);  // kSpinLock

  // --- ring buffer ------------------------------------------------------------------
  xbase::Status RingbufOutput(int fd, std::span<const u8> data);  // kRingBuf

  // --- dynamic allocation (§4) ---------------------------------------------------------
  xbase::Result<Slice> Alloc(u32 size);  // kDynAlloc; auto-freed at exit
  xbase::Status Free(const Slice& slice);

  // --- hardened syscall surface (§3.2's bpf_sys_bpf fix) --------------------------------
  // The attr union is replaced by typed parameters; the instruction buffer
  // must be a live Slice, so the NULL-inside-union crash of §2.2 cannot be
  // expressed.
  xbase::Result<s64> SysBpfMapCreate(u32 value_size, u32 max_entries);
  xbase::Result<s64> SysBpfProgLoad(const Slice& insns);

  // --- diagnostics ------------------------------------------------------------------------
  xbase::Status Trace(std::string_view message);  // kTracing
  xbase::Status SendSignal(u32 sig);              // kSignal

  // --- the unsafe escape hatch (models an `unsafe` block) -----------------------------------
  // Requires kUnsafeRaw, which the default toolchain policy refuses to
  // sign. Reads go through the protection domain, so even a signed unsafe
  // extension cannot read another domain's memory when PKS is enabled.
  xbase::Result<u64> UnsafeReadKernel(simkern::Addr addr);

  // --- stack protection ----------------------------------------------------------------------
  xbase::Status EnterFrame();  // panics past kMaxExtensionFrames
  void LeaveFrame();
  static constexpr u32 kMaxExtensionFrames = 32;

  // --- panic machinery --------------------------------------------------------------------------
  void Panic(std::string reason);
  bool terminated() const { return terminated_; }
  const std::string& termination_reason() const { return reason_; }

  // Charges simulated time and polls the watchdog; the universal
  // cancellation point every crate method passes through.
  xbase::Status Charge(u64 cost_ns);

  const CtxStats& stats() const { return stats_; }
  CleanupRegistry& cleanup() { return cleanup_; }
  Runtime& runtime() { return runtime_; }
  simkern::Kernel& kernel();

 private:
  friend class Slice;
  friend class SockRef;
  friend class LockGuard;
  friend class MapRef;

  xbase::Status RequireCap(Capability cap);
  xbase::Result<SockRef> LookupSock(const simkern::SockTuple& tuple,
                                    u32 protocol);
  void ReleaseSock(simkern::ObjectId id);
  void ReleaseLock(simkern::LockId id);
  // Memory access on behalf of the extension, inside its domain.
  xbase::Status DomainRead(simkern::Addr addr, std::span<u8> out);
  xbase::Status DomainWrite(simkern::Addr addr, std::span<const u8> data);

  Runtime& runtime_;
  CapSet caps_;
  Watchdog watchdog_;
  CleanupRegistry cleanup_;
  simkern::Addr skb_meta_ = 0;
  bool terminated_ = false;
  std::string reason_;
  u32 frame_depth_ = 0;
  CtxStats stats_;
};

}  // namespace safex

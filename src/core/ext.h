// The extension model and the runtime that hosts it. An Extension is the
// unit the trusted toolchain compiles and signs; Runtime::Invoke is the
// in-kernel dispatcher that arms the watchdog, hands the extension a Ctx,
// and — whatever happens — runs the cleanup registry and audits kernel
// state afterwards.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "src/core/api.h"
#include "src/crypto/keyring.h"
#include "src/ebpf/bpf.h"

namespace safex {

class Extension {
 public:
  virtual ~Extension() = default;
  // The extension body. Returning a Status error is a recoverable failure;
  // a panic (via ctx.Panic or any crate violation) terminates the
  // invocation safely.
  virtual xbase::Result<u64> Run(Ctx& ctx) = 0;
};

struct InvokeOptions {
  u64 watchdog_budget_ns = kDefaultWatchdogBudgetNs;
  simkern::Addr skb_meta = 0;  // packet hook context, if any
  bool wrap_in_rcu = true;
};

struct InvokeOutcome {
  xbase::Status status;  // OK, or why the invocation ended abnormally
  u64 ret = 0;
  bool panicked = false;
  std::string panic_reason;
  CleanupReport cleanup;
  u64 sim_time_ns = 0;
  u64 crate_calls = 0;
};

struct RuntimeConfig {
  u32 pool_chunk_size = 256;
  u32 pool_chunk_count = 64;
  // Protection-domain key for extension memory; 0 disables the PKS/MPK
  // simulation (§4 ablation).
  u32 protection_key = 2;
  bool allow_unsafe_extensions = false;  // kernel-side policy
};

// One Runtime per kernel: owns the per-CPU pools, the lock identities, the
// trusted keyring, and the invocation harness. Shares the map table with
// the eBPF subsystem so both frameworks run identical workloads.
class Runtime {
 public:
  static xbase::Result<std::unique_ptr<Runtime>> Create(
      simkern::Kernel& kernel, ebpf::Bpf& bpf,
      const RuntimeConfig& config = {});

  simkern::Kernel& kernel() { return kernel_; }
  ebpf::MapTable& maps() { return bpf_.maps(); }
  ebpf::Bpf& bpf() { return bpf_; }
  crypto::Keyring& keyring() { return keyring_; }
  const RuntimeConfig& config() const { return config_; }
  MemoryPool& pool_for_cpu(u32 cpu) { return pools_->ForCpu(cpu); }

  // Lock identity for (map_fd, value_off); created on first use.
  simkern::LockId LockIdFor(int map_fd, u32 value_off);

  // Direct invocation with explicit capabilities (the loader supplies the
  // manifest's set; tests may call this directly).
  InvokeOutcome Invoke(Extension& ext, const CapSet& caps,
                       const InvokeOptions& options = {});

  // Counters across all invocations.
  u64 invocations() const { return invocations_; }
  u64 watchdog_fires() const { return watchdog_fires_; }
  u64 panics() const { return panics_; }
  u64 foreign_exceptions() const { return foreign_exceptions_; }

 private:
  Runtime(simkern::Kernel& kernel, ebpf::Bpf& bpf,
          const RuntimeConfig& config)
      : kernel_(kernel), bpf_(bpf), config_(config) {}

  simkern::Kernel& kernel_;
  ebpf::Bpf& bpf_;
  RuntimeConfig config_;
  std::unique_ptr<PerCpuPools> pools_;
  crypto::Keyring keyring_;
  std::map<u64, simkern::LockId> lock_ids_;
  u64 invocations_ = 0;
  u64 watchdog_fires_ = 0;
  u64 panics_ = 0;
  u64 foreign_exceptions_ = 0;
};

}  // namespace safex

// Scheduler core: the dispatch loop that delegates its pick-next decision
// to attached extensions (sched_ext-style) and survives every way that
// delegation can go wrong. This is the hook family whose failure mode is
// qualitatively worse than a packet or tracing hook — a bad pick policy
// doesn't drop one event, it takes the CPU away from every task — so the
// supervised loop wraps each pick in four independent defences:
//
//   1. a watchdog deadline armed around the extension pick (a stalling
//      policy is charged kDeadlineMiss, and the tick still dispatches);
//   2. validation of the returned pid (dead pid, non-runnable pid and
//      double-pick are contained and charged kInvalidPick);
//   3. a starvation detector over the real runqueue — not the extension's
//      view of it — that charges kStarvation to the deciding attachment
//      when a runnable task goes unscheduled past the bound;
//   4. fail-over to the built-in round-robin scheduler whenever the
//      extension's verdict cannot stand (and wholesale, once the
//      supervisor quarantines the extension).
//
// The unsupervised loop trusts the extension verbatim: a bad pick stalls
// the tick, a hidden task starves forever. The gap between the two is the
// bench/sched_availability measurement.
#pragma once

#include "src/core/hooks.h"
#include "src/core/watchdog.h"
#include "src/simkern/kernel.h"

namespace safex {

struct SchedConfig {
  // Watchdog budget for one extension pick. Two orders of magnitude above
  // an honest policy's cost (a handful of helper calls at ~20ns each) and
  // one below the timeslice it is deciding about.
  xbase::u64 pick_budget_ns = 100'000;
  // A runnable task waiting longer than this is starving.
  xbase::u64 starvation_bound_ns = 50 * simkern::kNsPerMs;
  // Simulated time a dispatched task holds the CPU.
  xbase::u64 timeslice_ns = simkern::kNsPerMs;
  // Supervised: contain/charge/fail-over (the four defences above).
  // Unsupervised: trust the extension verbatim.
  bool supervised = true;
};

// What one scheduling cycle did.
struct SchedTickOutcome {
  xbase::u32 ran_pid = 0;        // 0 = nothing dispatched this tick
  bool idle = false;             // runqueue was empty
  bool from_extension = false;   // an extension pick stood
  bool fell_back = false;        // default policy stood in for the extension
  bool deadline_missed = false;  // the pick exceeded its watchdog deadline
  bool invalid_pick = false;     // dead / non-runnable / double-picked pid
  bool yielded = false;          // the extension voluntarily handed off
  bool stalled = false;          // unsupervised only: bad pick, no dispatch
  xbase::u32 newly_starved = 0;  // tasks the detector flagged this tick
};

struct SchedStats {
  xbase::u64 ticks = 0;
  xbase::u64 dispatches = 0;        // ticks that put a task on the CPU
  xbase::u64 ext_picks = 0;         // dispatches decided by an extension
  xbase::u64 default_picks = 0;     // dispatches with no extension attached
  xbase::u64 fallback_picks = 0;    // dispatches rescued by fail-over
  xbase::u64 yields = 0;
  xbase::u64 deadline_misses = 0;
  xbase::u64 invalid_picks = 0;
  xbase::u64 starvation_events = 0;
  xbase::u64 idle_ticks = 0;
  xbase::u64 stalls = 0;            // unsupervised ticks that ran nothing
};

class SchedCore {
 public:
  SchedCore(simkern::Kernel& kernel, HookRegistry& hooks,
            const SchedConfig& config = {})
      : kernel_(kernel), hooks_(hooks), config_(config) {}

  // Maps the scheduler context block extensions read their picks from.
  xbase::Status Init();

  // One scheduling cycle: publish the context, obtain a pick (extension or
  // default policy), validate, dispatch, advance the timeslice, scan for
  // starvation. Total simulated time per tick ~= pick cost + timeslice.
  SchedTickOutcome Tick();

  const SchedStats& stats() const { return stats_; }
  simkern::Addr ctx_addr() const { return ctx_addr_; }
  const SchedConfig& config() const { return config_; }

 private:
  // Publishes now/nr_runnable/prev_pid/tick into the context block.
  void WriteCtx();
  // Puts `pid` on the CPU for one timeslice and re-enqueues it at the tail.
  void Dispatch(xbase::u32 pid, SchedTickOutcome& outcome);
  // Supervised repair: every live task must be on the runqueue at tick end
  // (a double-picked or maliciously dequeued task is re-admitted *after*
  // validation has already charged the extension for losing it).
  void ReclaimLostTasks();
  // Charges the deadline miss to the attachment that consumed the most
  // simulated time among this fire's successful verdicts (the failed ones
  // were already charged by the hook layer for their own failure).
  void ChargeDeadlineMiss(xbase::u64 now_ns);

  simkern::Kernel& kernel_;
  HookRegistry& hooks_;
  SchedConfig config_;
  simkern::Addr ctx_addr_ = 0;
  Watchdog watchdog_;
  HookFireReport report_;  // reused across ticks (zero-alloc steady state)
  SchedStats stats_;
  xbase::u64 tick_ = 0;
  xbase::u32 prev_pid_ = 0;
};

}  // namespace safex

// Watchdog timer (§3.1 "Runtime protection"). Armed per invocation with a
// simulated-time budget; every kernel-crate operation is a cancellation
// point that polls it. When it fires, the invocation context flips to
// terminated, every subsequent crate call fails fast, and the harness runs
// the cleanup registry — the program is stopped long before the 21-second
// RCU stall window that unbounded eBPF programs can hit (§2.2).
#pragma once

#include "src/simkern/clock.h"
#include "src/xbase/types.h"

namespace safex {

class Watchdog {
 public:
  Watchdog() = default;

  void Arm(const simkern::SimClock& clock, xbase::u64 budget_ns) {
    const xbase::u64 now = clock.now_ns();
    // Saturating add: a budget near u64 max must pin the deadline at the
    // far future, not wrap past `now` (a wrapped deadline is already in
    // the past, so the watchdog would kill every invocation instantly).
    deadline_ns_ = now + budget_ns;
    if (deadline_ns_ < now) {
      deadline_ns_ = ~xbase::u64{0};
    }
    armed_ = true;
  }
  void Disarm() { armed_ = false; }

  bool Expired(const simkern::SimClock& clock) const {
    return armed_ && clock.now_ns() >= deadline_ns_;
  }

  // Budget left before the deadline; 0 when disarmed or already expired.
  xbase::u64 remaining_ns(const simkern::SimClock& clock) const {
    if (!armed_ || clock.now_ns() >= deadline_ns_) {
      return 0;
    }
    return deadline_ns_ - clock.now_ns();
  }

  xbase::u64 deadline_ns() const { return deadline_ns_; }
  bool armed() const { return armed_; }

 private:
  xbase::u64 deadline_ns_ = 0;
  bool armed_ = false;
};

// Default invocation budget: 1 simulated millisecond — generous for any
// packet/tracing hook, seven orders of magnitude below the RCU stall
// threshold.
inline constexpr xbase::u64 kDefaultWatchdogBudgetNs = simkern::kNsPerMs;

}  // namespace safex

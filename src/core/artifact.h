// The signed-extension artifact: what the trusted userspace toolchain emits
// and the kernel validates at load time (Figure 5's "signature validation" +
// "load-time fixup" boxes). The canonical encoding is deterministic so both
// sides MAC the same bytes; the factory stands in for the compiled machine
// code (C++ cannot ship object code between processes — the code identity
// that is actually signed is the code hash).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/caps.h"
#include "src/core/ext.h"
#include "src/crypto/keyring.h"

namespace safex {

struct ExtensionManifest {
  std::string name;
  std::string version;
  CapSet caps;
  bool uses_unsafe = false;  // contains `unsafe` blocks
  // Symbolic kernel-crate imports; resolved by load-time fixup.
  std::vector<std::string> imports;
};

// Deterministic byte encoding of (manifest, code hash): the exact message
// that is signed and verified.
std::vector<xbase::u8> CanonicalEncode(const ExtensionManifest& manifest,
                                       const crypto::Digest256& code_hash);

using ExtensionFactory = std::function<std::unique_ptr<Extension>()>;

struct SignedArtifact {
  ExtensionManifest manifest;
  crypto::Digest256 code_hash = {};
  crypto::Signature signature;
  ExtensionFactory factory;
};

// The kernel-crate symbol table: every import an extension may bind, and
// the capability the symbol requires. Used by the toolchain's audit and the
// loader's fixup.
const std::map<std::string, Capability>& KnownImports();

}  // namespace safex

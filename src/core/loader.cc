#include "src/core/loader.h"

#include <chrono>
#include <limits>

#include "src/xbase/strfmt.h"

namespace safex {

xbase::Result<PreparedExtension> ExtLoader::Prepare(
    const SignedArtifact& artifact) const {
  const auto start = std::chrono::steady_clock::now();

  // 1. Signature validation against the sealed boot keyring.
  const std::vector<xbase::u8> message =
      CanonicalEncode(artifact.manifest, artifact.code_hash);
  XB_RETURN_IF_ERROR(runtime_.keyring().Verify(message, artifact.signature));

  // 2. Kernel policy audit: even a validly signed unsafe extension needs
  // the kernel to opt in.
  if ((artifact.manifest.uses_unsafe ||
       HasCap(artifact.manifest.caps, Capability::kUnsafeRaw)) &&
      !runtime_.config().allow_unsafe_extensions) {
    return xbase::PermissionDenied(
        "kernel policy refuses unsafe extensions");
  }

  // 3. Load-time fixup: bind every symbolic import to a crate entry point.
  xbase::u32 relocations = 0;
  for (const std::string& import : artifact.manifest.imports) {
    if (!KnownImports().contains(import)) {
      return xbase::Rejected("fixup: unresolved import " + import);
    }
    ++relocations;
  }

  // 4. Instantiate.
  if (artifact.factory == nullptr) {
    return xbase::InvalidArgument("artifact has no body");
  }
  PreparedExtension prepared;
  prepared.manifest = artifact.manifest;
  prepared.instance = artifact.factory();
  prepared.relocations = relocations;
  if (prepared.instance == nullptr) {
    return xbase::Internal("artifact factory produced no extension");
  }
  prepared.load_wall_ns = static_cast<xbase::u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return prepared;
}

xbase::Result<xbase::u32> ExtLoader::Install(PreparedExtension prepared) {
  LoadedExtension loaded;
  loaded.manifest = std::move(prepared.manifest);
  loaded.instance = std::move(prepared.instance);
  loaded.relocations = prepared.relocations;
  loaded.load_wall_ns = prepared.load_wall_ns;

  const std::string name = loaded.manifest.name;
  const std::string version = loaded.manifest.version;
  const xbase::u32 relocations = loaded.relocations;

  xbase::u32 id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (extensions_.size() >= std::numeric_limits<xbase::u32>::max() - 1) {
      return xbase::ResourceExhausted("extension id space exhausted");
    }
    xbase::u32 candidate = next_id_;
    for (;;) {
      if (candidate == 0) {
        candidate = 1;
      }
      if (!extensions_.contains(candidate)) {
        break;
      }
      ++candidate;
    }
    id = candidate;
    next_id_ = candidate + 1;
    loaded.id = id;
    extensions_.emplace(id, std::move(loaded));
  }

  runtime_.kernel().Printk(xbase::StrFormat(
      "safex: extension %u (%s %s) loaded: signature ok, "
      "%u imports bound, no verifier involved",
      id, name.c_str(), version.c_str(), relocations));
  return id;
}

xbase::Result<xbase::u32> ExtLoader::Load(const SignedArtifact& artifact) {
  XB_ASSIGN_OR_RETURN(PreparedExtension prepared, Prepare(artifact));
  // Keep the pre-split dmesg detail: which key signed the artifact.
  runtime_.kernel().Printk(xbase::StrFormat(
      "safex: artifact '%s' signature validated (key '%s')",
      artifact.manifest.name.c_str(), artifact.signature.key_id.c_str()));
  return Install(std::move(prepared));
}

xbase::Result<const LoadedExtension*> ExtLoader::Find(xbase::u32 id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extensions_.find(id);
  if (it == extensions_.end()) {
    return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
  }
  return &it->second;
}

xbase::Status ExtLoader::Unload(xbase::u32 id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = extensions_.find(id);
    if (it == extensions_.end()) {
      return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
    }
    if (it->second.attach_count > 0) {
      return xbase::FailedPrecondition(xbase::StrFormat(
          "extension %u has %u live attachment(s); detach before unload", id,
          it->second.attach_count));
    }
    extensions_.erase(it);
  }
  runtime_.kernel().Printk(
      xbase::StrFormat("safex: extension %u unloaded", id));
  return xbase::Status::Ok();
}

xbase::Status ExtLoader::Pin(xbase::u32 id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extensions_.find(id);
  if (it == extensions_.end()) {
    return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
  }
  ++it->second.attach_count;
  return xbase::Status::Ok();
}

void ExtLoader::Unpin(xbase::u32 id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extensions_.find(id);
  if (it != extensions_.end() && it->second.attach_count > 0) {
    --it->second.attach_count;
  }
}

xbase::usize ExtLoader::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return extensions_.size();
}

xbase::Result<InvokeOutcome> ExtLoader::Invoke(xbase::u32 id,
                                               const InvokeOptions& options) {
  Extension* instance = nullptr;
  CapSet caps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = extensions_.find(id);
    if (it == extensions_.end()) {
      return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
    }
    // Map nodes are stable and Unload refuses while the extension is
    // attached, so the instance pointer outlives this invocation.
    instance = it->second.instance.get();
    caps = it->second.manifest.caps;
  }
  return runtime_.Invoke(*instance, caps, options);
}

}  // namespace safex

#include "src/core/loader.h"

#include <chrono>

#include "src/xbase/strfmt.h"

namespace safex {

xbase::Result<xbase::u32> ExtLoader::Load(const SignedArtifact& artifact) {
  const auto start = std::chrono::steady_clock::now();
  simkern::Kernel& kernel = runtime_.kernel();

  // 1. Signature validation against the sealed boot keyring.
  const std::vector<xbase::u8> message =
      CanonicalEncode(artifact.manifest, artifact.code_hash);
  XB_RETURN_IF_ERROR(runtime_.keyring().Verify(message, artifact.signature));

  // 2. Kernel policy audit: even a validly signed unsafe extension needs
  // the kernel to opt in.
  if ((artifact.manifest.uses_unsafe ||
       HasCap(artifact.manifest.caps, Capability::kUnsafeRaw)) &&
      !runtime_.config().allow_unsafe_extensions) {
    return xbase::PermissionDenied(
        "kernel policy refuses unsafe extensions");
  }

  // 3. Load-time fixup: bind every symbolic import to a crate entry point.
  xbase::u32 relocations = 0;
  for (const std::string& import : artifact.manifest.imports) {
    if (!KnownImports().contains(import)) {
      return xbase::Rejected("fixup: unresolved import " + import);
    }
    ++relocations;
  }

  // 4. Instantiate.
  if (artifact.factory == nullptr) {
    return xbase::InvalidArgument("artifact has no body");
  }
  LoadedExtension loaded;
  loaded.id = next_id_++;
  loaded.manifest = artifact.manifest;
  loaded.instance = artifact.factory();
  loaded.relocations = relocations;
  loaded.load_wall_ns = static_cast<xbase::u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (loaded.instance == nullptr) {
    return xbase::Internal("artifact factory produced no extension");
  }

  kernel.Printk(xbase::StrFormat(
      "safex: extension %u (%s %s) loaded: signature ok (key '%s'), "
      "%u imports bound, no verifier involved",
      loaded.id, loaded.manifest.name.c_str(),
      loaded.manifest.version.c_str(), artifact.signature.key_id.c_str(),
      relocations));

  const xbase::u32 id = loaded.id;
  extensions_.emplace(id, std::move(loaded));
  return id;
}

xbase::Result<const LoadedExtension*> ExtLoader::Find(xbase::u32 id) const {
  auto it = extensions_.find(id);
  if (it == extensions_.end()) {
    return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
  }
  return &it->second;
}

xbase::Status ExtLoader::Unload(xbase::u32 id) {
  if (extensions_.erase(id) == 0) {
    return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
  }
  runtime_.kernel().Printk(
      xbase::StrFormat("safex: extension %u unloaded", id));
  return xbase::Status::Ok();
}

xbase::Result<InvokeOutcome> ExtLoader::Invoke(xbase::u32 id,
                                               const InvokeOptions& options) {
  auto it = extensions_.find(id);
  if (it == extensions_.end()) {
    return xbase::NotFound(xbase::StrFormat("no extension id %u", id));
  }
  return runtime_.Invoke(*it->second.instance, it->second.manifest.caps,
                         options);
}

}  // namespace safex

#include "src/core/supervisor.h"

#include "src/xbase/strfmt.h"

namespace safex {

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kPanic:
      return "panic";
    case FailureKind::kWatchdog:
      return "watchdog";
    case FailureKind::kStackOverflow:
      return "stack_overflow";
    case FailureKind::kOops:
      return "oops";
    case FailureKind::kResourceLeak:
      return "resource_leak";
    case FailureKind::kRuntimeError:
      return "runtime_error";
    case FailureKind::kDeadlineMiss:
      return "deadline_miss";
    case FailureKind::kInvalidPick:
      return "invalid_pick";
    case FailureKind::kStarvation:
      return "starvation";
  }
  return "unknown";
}

std::string_view ExtHealthName(ExtHealth health) {
  switch (health) {
    case ExtHealth::kHealthy:
      return "healthy";
    case ExtHealth::kQuarantined:
      return "quarantined";
    case ExtHealth::kProbation:
      return "probation";
    case ExtHealth::kEvicted:
      return "evicted";
  }
  return "unknown";
}

AdmitDecision Supervisor::Admit(xbase::u32 attachment_id, xbase::u64 now_ns) {
  AdmitDecision decision;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(attachment_id);
  if (it == records_.end()) {
    records_[attachment_id].invocations = 1;
    return decision;
  }
  ExtRecord& record = it->second;
  switch (record.health) {
    case ExtHealth::kHealthy:
      break;
    case ExtHealth::kQuarantined:
      if (now_ns >= record.quarantined_until_ns) {
        // Backoff served: half-open the breaker for trial invocations.
        record.health = ExtHealth::kProbation;
        record.probation_left = config_.probation_successes;
        record.quarantined_until_ns = 0;
        decision.probation_trial = true;
      } else {
        decision.allow = false;
        ++record.skips;
        ++skips_;
      }
      break;
    case ExtHealth::kProbation:
      decision.probation_trial = true;
      break;
    case ExtHealth::kEvicted:
      decision.allow = false;
      ++record.skips;
      ++skips_;
      break;
  }
  if (decision.allow) {
    ++record.invocations;
  }
  decision.health = record.health;
  return decision;
}

void Supervisor::RecordSuccess(xbase::u32 attachment_id, xbase::u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(attachment_id);
  if (it == records_.end()) {
    return;
  }
  ExtRecord& record = it->second;
  PruneWindow(record, now_ns);
  if (record.health == ExtHealth::kProbation && record.probation_left > 0 &&
      --record.probation_left == 0) {
    record.health = ExtHealth::kHealthy;
    record.window.clear();
    ++readmissions_;
  }
}

void Supervisor::RecordFailure(xbase::u32 attachment_id, FailureKind kind,
                               std::string detail, xbase::u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ExtRecord& record = records_[attachment_id];
  if (record.health == ExtHealth::kEvicted) {
    return;  // nothing left to contain
  }
  // Per-CPU clocks advance independently, so a failure reported from a
  // lagging CPU can carry a timestamp behind the record's newest window
  // entry. Clamp to keep each record's window monotonic (the invariant
  // CheckConsistent audits); cross-record ordering is not a contract.
  if (!record.window.empty() && now_ns < record.window.back().at_ns) {
    now_ns = record.window.back().at_ns;
  }
  FailureEvent event{now_ns, kind, std::move(detail)};
  record.last_failure = event;
  record.window.push_back(std::move(event));
  ++record.failures_total;
  ++record.failures_by_kind[static_cast<xbase::usize>(kind)];
  ++failures_;
  PruneWindow(record, now_ns);
  // A failure during a half-open trial re-trips immediately: the extension
  // has not earned its way back. Otherwise the sliding-window budget rules.
  if (record.health == ExtHealth::kProbation ||
      record.window.size() >= config_.crash_budget) {
    Trip(attachment_id, record, now_ns);
  }
}

void Supervisor::Trip(xbase::u32 /*attachment_id*/, ExtRecord& record,
                      xbase::u64 now_ns) {
  ++record.trips;
  ++trips_;
  record.window.clear();
  record.probation_left = 0;
  if (record.trips >= config_.max_trips) {
    record.health = ExtHealth::kEvicted;
    record.quarantined_until_ns = 0;
    ++evictions_;
  } else {
    record.health = ExtHealth::kQuarantined;
    record.quarantined_until_ns = now_ns + BackoffFor(record.trips);
  }
}

void Supervisor::PruneWindow(ExtRecord& record, xbase::u64 now_ns) {
  const xbase::u64 horizon =
      now_ns > config_.window_ns ? now_ns - config_.window_ns : 0;
  while (!record.window.empty() && record.window.front().at_ns < horizon) {
    record.window.pop_front();
  }
}

xbase::u64 Supervisor::BackoffFor(xbase::u32 trips) const {
  xbase::u64 backoff = config_.base_backoff_ns;
  for (xbase::u32 i = 1; i < trips; ++i) {
    if (backoff > config_.max_backoff_ns / config_.backoff_multiplier) {
      return config_.max_backoff_ns;
    }
    backoff *= config_.backoff_multiplier;
  }
  return backoff < config_.max_backoff_ns ? backoff : config_.max_backoff_ns;
}

void Supervisor::Forget(xbase::u32 attachment_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(attachment_id);
  if (it == records_.end()) {
    return;
  }
  forgotten_failures_ += it->second.failures_total;
  forgotten_skips_ += it->second.skips;
  records_.erase(it);
}

ExtHealth Supervisor::HealthOf(xbase::u32 attachment_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(attachment_id);
  return it == records_.end() ? ExtHealth::kHealthy : it->second.health;
}

const ExtRecord* Supervisor::Find(xbase::u32 attachment_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(attachment_id);
  return it == records_.end() ? nullptr : &it->second;
}

xbase::Status Supervisor::CheckConsistent(xbase::u64 now_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  xbase::u64 failures = 0;
  xbase::u64 skips = 0;
  for (const auto& [id, record] : records_) {
    failures += record.failures_total;
    skips += record.skips;
    switch (record.health) {
      case ExtHealth::kHealthy:
        if (record.probation_left != 0) {
          return xbase::Internal(xbase::StrFormat(
              "supervisor: healthy attachment %u has probation_left", id));
        }
        break;
      case ExtHealth::kQuarantined:
        if (record.quarantined_until_ns == 0 || record.trips == 0) {
          return xbase::Internal(xbase::StrFormat(
              "supervisor: quarantined attachment %u lacks deadline/trip",
              id));
        }
        break;
      case ExtHealth::kProbation:
        if (record.probation_left == 0 ||
            record.probation_left > config_.probation_successes) {
          return xbase::Internal(xbase::StrFormat(
              "supervisor: probation attachment %u counter out of range",
              id));
        }
        break;
      case ExtHealth::kEvicted:
        if (record.trips < config_.max_trips) {
          return xbase::Internal(xbase::StrFormat(
              "supervisor: attachment %u evicted below max_trips", id));
        }
        break;
    }
    if (record.trips > config_.max_trips) {
      return xbase::Internal(xbase::StrFormat(
          "supervisor: attachment %u tripped past max_trips", id));
    }
    xbase::u64 prev = 0;
    for (const FailureEvent& event : record.window) {
      if (event.at_ns < prev || event.at_ns > now_ns) {
        return xbase::Internal(xbase::StrFormat(
            "supervisor: attachment %u window out of order", id));
      }
      prev = event.at_ns;
    }
    if (record.window.size() > config_.crash_budget) {
      return xbase::Internal(xbase::StrFormat(
          "supervisor: attachment %u window exceeds crash budget", id));
    }
  }
  if (failures + forgotten_failures_ != failures_ ||
      skips + forgotten_skips_ != skips_) {
    return xbase::Internal("supervisor: aggregate counters drifted");
  }
  return xbase::Status::Ok();
}

}  // namespace safex

// The termination signal: thrown (once) by Ctx::Panic and caught by the
// Runtime::Invoke harness. This is the single use of C++ exceptions in the
// library; it stands in for the asynchronous kill the paper's watchdog
// delivers. Cleanup does NOT depend on this unwind — the cleanup registry
// releases every recorded resource regardless — so the design matches the
// paper's no-ABI-unwinding requirement: user destructors are not trusted
// with releasing kernel state, the registry is.
#pragma once

namespace safex {

struct TerminationSignal {};

}  // namespace safex

#include "src/core/ext.h"

#include <exception>

#include "src/core/panic.h"
#include "src/xbase/strfmt.h"

namespace safex {

xbase::Result<std::unique_ptr<Runtime>> Runtime::Create(
    simkern::Kernel& kernel, ebpf::Bpf& bpf, const RuntimeConfig& config) {
  auto runtime =
      std::unique_ptr<Runtime>(new Runtime(kernel, bpf, config));
  XB_ASSIGN_OR_RETURN(
      PerCpuPools pools,
      PerCpuPools::Create(kernel, config.pool_chunk_size,
                          config.pool_chunk_count, config.protection_key));
  runtime->pools_ = std::make_unique<PerCpuPools>(std::move(pools));
  kernel.Printk("safex: runtime initialized (pools mapped, keyring empty)");
  return runtime;
}

simkern::LockId Runtime::LockIdFor(int map_fd, u32 value_off) {
  const u64 key = (static_cast<u64>(static_cast<u32>(map_fd)) << 32) |
                  value_off;
  auto it = lock_ids_.find(key);
  if (it != lock_ids_.end()) {
    return it->second;
  }
  const simkern::LockId id = kernel_.locks().Create(
      xbase::StrFormat("safex-lock:%d+%u", map_fd, value_off));
  lock_ids_.emplace(key, id);
  return id;
}

InvokeOutcome Runtime::Invoke(Extension& ext, const CapSet& caps,
                              const InvokeOptions& options) {
  ++invocations_;
  InvokeOutcome outcome;
  const u64 start_ns = kernel_.clock().now_ns();

  if (options.wrap_in_rcu) {
    kernel_.rcu().ReadLock(kernel_.clock(), "safex-ext");
  }

  Ctx ctx(*this, caps, options.watchdog_budget_ns, options.skb_meta);
  try {
    auto result = ext.Run(ctx);
    if (result.ok()) {
      outcome.ret = result.value();
      outcome.status = xbase::Status::Ok();
    } else {
      outcome.status = result.status();
    }
  } catch (const TerminationSignal&) {
    outcome.panicked = true;
    outcome.panic_reason = ctx.termination_reason();
    outcome.status = xbase::Terminated(ctx.termination_reason());
    ++panics_;
    if (outcome.panic_reason.rfind("watchdog", 0) == 0) {
      ++watchdog_fires_;
    }
  } catch (const std::exception& e) {
    // A foreign exception escaping the extension body is a buggy extension,
    // not a kernel bug: contain it like a panic so the cleanup registry and
    // the RCU unlock below still run and the caller's dispatch loop keeps
    // going (the catch_unwind-at-the-FFI-boundary analogue).
    outcome.panicked = true;
    outcome.panic_reason = std::string("foreign exception: ") + e.what();
    outcome.status = xbase::Terminated(outcome.panic_reason);
    ++panics_;
    ++foreign_exceptions_;
  } catch (...) {
    outcome.panicked = true;
    outcome.panic_reason = "foreign exception: non-standard type";
    outcome.status = xbase::Terminated(outcome.panic_reason);
    ++panics_;
    ++foreign_exceptions_;
  }

  // Safe termination: release whatever is still recorded, normal exit or
  // not. Trusted destructors only; nothing here can fail silently.
  outcome.cleanup = ctx.cleanup().RunAll(kernel_, &pool_for_cpu(0));

  if (options.wrap_in_rcu) {
    (void)kernel_.rcu().ReadUnlock();
  }

  outcome.sim_time_ns = kernel_.clock().now_ns() - start_ns;
  outcome.crate_calls = ctx.stats().crate_calls;

  if (outcome.panicked) {
    kernel_.Printk(xbase::StrFormat(
        "safex: extension terminated (%s), %u cleanup action(s) ran",
        outcome.panic_reason.c_str(), outcome.cleanup.entries_run));
  }
  return outcome;
}

}  // namespace safex

#include "src/core/sched.h"

#include <vector>

#include "src/xbase/bytes.h"
#include "src/xbase/strfmt.h"

namespace safex {

using simkern::RunQueue;
using simkern::SchedCtxLayout;

xbase::Status SchedCore::Init() {
  XB_ASSIGN_OR_RETURN(
      ctx_addr_,
      kernel_.mem().Map(SchedCtxLayout::kSize, simkern::MemPerm::kReadWrite,
                        simkern::RegionKind::kKernelData, "sched_ctx"));
  return xbase::Status::Ok();
}

void SchedCore::WriteCtx() {
  u8 buf[SchedCtxLayout::kSize] = {};
  xbase::StoreLe64(buf + SchedCtxLayout::kNowNs, kernel_.clock().now_ns());
  xbase::StoreLe32(buf + SchedCtxLayout::kNrRunnable,
                   static_cast<xbase::u32>(
                       kernel_.runqueue().runnable_count()));
  xbase::StoreLe32(buf + SchedCtxLayout::kPrevPid, prev_pid_);
  xbase::StoreLe64(buf + SchedCtxLayout::kTick, tick_);
  (void)kernel_.mem().Write(ctx_addr_, buf);
}

void SchedCore::Dispatch(xbase::u32 pid, SchedTickOutcome& outcome) {
  RunQueue& rq = kernel_.runqueue();
  (void)rq.MarkRan(pid, kernel_.clock().now_ns());
  (void)kernel_.tasks().SetCurrent(pid);
  kernel_.clock().Advance(config_.timeslice_ns);
  // The timeslice is over; the task is runnable again at the tail, which
  // is what makes the default head pick plain round-robin.
  (void)rq.Enqueue(pid, kernel_.clock().now_ns());
  prev_pid_ = pid;
  outcome.ran_pid = pid;
  ++stats_.dispatches;
}

void SchedCore::ReclaimLostTasks() {
  RunQueue& rq = kernel_.runqueue();
  for (xbase::u32 pid : kernel_.tasks().Pids()) {
    if (!rq.Contains(pid)) {
      (void)rq.Enqueue(pid, kernel_.clock().now_ns());
    }
  }
}

void SchedCore::ChargeDeadlineMiss(xbase::u64 now_ns) {
  Supervisor* supervisor = hooks_.supervisor();
  if (supervisor == nullptr) {
    return;
  }
  const HookVerdict* worst = nullptr;
  for (const HookVerdict& verdict : report_.verdicts) {
    if (verdict.skipped || !verdict.status.ok()) {
      continue;  // failures were already charged by the hook layer
    }
    if (worst == nullptr || verdict.cost_ns > worst->cost_ns) {
      worst = &verdict;
    }
  }
  if (worst == nullptr) {
    return;
  }
  supervisor->RecordFailure(
      worst->attachment_id, FailureKind::kDeadlineMiss,
      xbase::StrFormat("pick consumed %llu ns (budget %llu ns)",
                       static_cast<unsigned long long>(worst->cost_ns),
                       static_cast<unsigned long long>(
                           config_.pick_budget_ns)),
      now_ns);
}

SchedTickOutcome SchedCore::Tick() {
  SchedTickOutcome outcome;
  ++stats_.ticks;
  ++tick_;
  RunQueue& rq = kernel_.runqueue();
  Supervisor* supervisor = hooks_.supervisor();

  if (config_.supervised) {
    // Repair before deciding: every live task is runnable in this kernel,
    // so a task missing from the queue was lost to a double pick or a
    // hostile dequeue last tick (which validation already charged). Doing
    // this first also means a policy that dequeued *everything* cannot
    // wedge the supervised scheduler into permanent idle.
    ReclaimLostTasks();
  }

  if (rq.runnable_count() == 0) {
    outcome.idle = true;
    ++stats_.idle_ticks;
    kernel_.clock().Advance(config_.timeslice_ns);
    return outcome;
  }

  WriteCtx();

  const bool have_ext = hooks_.AttachedCount(HookPoint::kSchedPickNext) > 0;
  xbase::u32 pick = 0;
  xbase::u32 decider = 0;
  bool pick_ok = false;

  if (have_ext) {
    watchdog_.Arm(kernel_.clock(), config_.pick_budget_ns);
    hooks_.FireInto(HookPoint::kSchedPickNext, ctx_addr_, report_);
    const xbase::u64 now = kernel_.clock().now_ns();
    outcome.yielded = rq.ConsumeYield();
    pick = static_cast<xbase::u32>(report_.verdict);
    decider = report_.decider;

    if (watchdog_.Expired(kernel_.clock())) {
      outcome.deadline_missed = true;
      ++stats_.deadline_misses;
      if (config_.supervised) {
        ChargeDeadlineMiss(now);
      }
    } else if (outcome.yielded || (decider != 0 && pick == 0)) {
      // Voluntary hand-off to the default policy; not a failure.
      outcome.yielded = true;
      ++stats_.yields;
    } else if (decider != 0) {
      if (!kernel_.tasks().FindByPid(pick).ok()) {
        outcome.invalid_pick = true;
        ++stats_.invalid_picks;
        if (config_.supervised && supervisor != nullptr) {
          supervisor->RecordFailure(
              decider, FailureKind::kInvalidPick,
              xbase::StrFormat("picked dead pid %u", pick), now);
        }
      } else if (!rq.Contains(pick)) {
        outcome.invalid_pick = true;
        ++stats_.invalid_picks;
        if (config_.supervised && supervisor != nullptr) {
          supervisor->RecordFailure(
              decider, FailureKind::kInvalidPick,
              xbase::StrFormat("picked non-runnable pid %u (double pick?)",
                               pick),
              now);
        }
      } else {
        pick_ok = true;
      }
    }
    watchdog_.Disarm();
  }

  const FallbackAction fallback_action =
      hooks_.config()
          .fallback[static_cast<xbase::usize>(HookPoint::kSchedPickNext)]
          .action;

  if (!have_ext) {
    // No extension: the built-in round-robin policy is *the* policy.
    auto head = rq.PickDefault();
    if (head.ok()) {
      Dispatch(head.value(), outcome);
      ++stats_.default_picks;
    }
  } else if (config_.supervised) {
    // In the deadline-miss case pick_ok is false even if the pid checks
    // out: a policy that blows its budget loses the decision on principle
    // (a 10ms "pick" is a stall whatever pid it eventually names).
    if (pick_ok && !outcome.deadline_missed) {
      Dispatch(pick, outcome);
      outcome.from_extension = true;
      ++stats_.ext_picks;
    } else if (fallback_action != FallbackAction::kFailClosed) {
      // kDefaultPolicy (and, for completeness, kFailOpen): the built-in
      // round-robin stands in, so the tick still dispatches. A voluntary
      // yield takes the same path but is not counted as a rescue.
      auto head = rq.PickDefault();
      if (head.ok()) {
        Dispatch(head.value(), outcome);
        if (!outcome.yielded) {
          outcome.fell_back = true;
          ++stats_.fallback_picks;
        }
      }
    } else {
      // Fail-closed scheduling = an idle tick. Defensible only on systems
      // where running the wrong task is worse than running none.
      outcome.fell_back = true;
      ++stats_.idle_ticks;
      kernel_.clock().Advance(config_.timeslice_ns);
    }
  } else {
    // Unsupervised: the extension's word is law. A verdict naming a dead
    // or vanished pid dispatches nothing — the CPU burns the slice and
    // every runnable task just waits (the paper's availability gap).
    if (pick_ok) {
      Dispatch(pick, outcome);
      outcome.from_extension = true;
      ++stats_.ext_picks;
    } else if (outcome.yielded) {
      // A cooperative yield is honoured even without supervision.
      auto head = rq.PickDefault();
      if (head.ok()) {
        Dispatch(head.value(), outcome);
      }
    } else {
      outcome.stalled = true;
      ++stats_.stalls;
      kernel_.clock().Advance(config_.timeslice_ns);
    }
  }

  // Starvation scan over the *real* queue. Supervised mode charges the
  // attachment that decided *this* tick — charging a past decider would
  // blame a quarantined extension for waits that accrued while the
  // fallback (or nobody) was steering, re-tripping it on its first
  // probation trial. Unsupervised mode only counts (there is nobody to
  // act on the attribution).
  const xbase::u64 scan_now = kernel_.clock().now_ns();
  const std::vector<xbase::u32> starved =
      rq.ScanStarved(config_.starvation_bound_ns, scan_now);
  outcome.newly_starved = static_cast<xbase::u32>(starved.size());
  stats_.starvation_events += starved.size();
  if (config_.supervised && supervisor != nullptr && decider != 0) {
    for (xbase::u32 pid : starved) {
      supervisor->RecordFailure(
          decider, FailureKind::kStarvation,
          xbase::StrFormat("pid %u runnable but unscheduled for %llu ns",
                           pid,
                           static_cast<unsigned long long>(
                               config_.starvation_bound_ns)),
          scan_now);
    }
  }

  return outcome;
}

}  // namespace safex

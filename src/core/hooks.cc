#include "src/core/hooks.h"

#include <algorithm>

#include "src/xbase/strfmt.h"

namespace safex {

std::string_view HookPointName(HookPoint hook) {
  switch (hook) {
    case HookPoint::kXdpIngress:
      return "xdp_ingress";
    case HookPoint::kSyscallEnter:
      return "syscall_enter";
    case HookPoint::kSchedSwitch:
      return "sched_switch";
    case HookPoint::kSchedPickNext:
      return "sched_pick_next";
    case HookPoint::kLsmFileOpen:
      return "lsm_file_open";
  }
  return "unknown";
}

namespace {

// Maps an invocation outcome to the failure class the supervisor charges.
FailureKind ClassifyTermination(const std::string& reason) {
  if (reason.rfind("watchdog", 0) == 0) {
    return FailureKind::kWatchdog;
  }
  if (reason.rfind("stack guard", 0) == 0) {
    return FailureKind::kStackOverflow;
  }
  if (reason.rfind("foreign exception", 0) == 0) {
    return FailureKind::kRuntimeError;
  }
  return FailureKind::kPanic;
}

}  // namespace

xbase::Result<xbase::u32> HookRegistry::AttachProgram(HookPoint hook,
                                                      xbase::u32 prog_id) {
  std::lock_guard<std::mutex> lock(attach_mu_);
  for (const Attachment& attachment : attachments_) {
    if (attachment.hook == hook && !attachment.is_safex &&
        attachment.target_id == prog_id) {
      return xbase::AlreadyExists(xbase::StrFormat(
          "bpf prog %u already attached to %s", prog_id,
          HookPointName(hook).data()));
    }
  }
  // Decision-maker hooks are part of the privilege model: only the
  // matching program type may decide (sched_ext on the pick hook, lsm on
  // the access hook), and a decision-maker program has no business on
  // packet/syscall/tracing hooks — the pairing is enforced both ways.
  {
    auto loaded = bpf_loader_.Find(prog_id);
    if (loaded.ok()) {
      const ebpf::ProgType type = loaded.value()->source.type;
      const bool is_sched = type == ebpf::ProgType::kSchedExt;
      const bool is_lsm = type == ebpf::ProgType::kLsm;
      if (hook == HookPoint::kSchedPickNext && !is_sched) {
        return xbase::FailedPrecondition(xbase::StrFormat(
            "prog %u is not sched_ext-typed; cannot attach to %s", prog_id,
            HookPointName(hook).data()));
      }
      if (hook != HookPoint::kSchedPickNext && is_sched) {
        return xbase::FailedPrecondition(xbase::StrFormat(
            "sched_ext prog %u can only attach to sched_pick_next",
            prog_id));
      }
      if (hook == HookPoint::kLsmFileOpen && !is_lsm) {
        return xbase::FailedPrecondition(xbase::StrFormat(
            "prog %u is not lsm-typed; cannot attach to %s", prog_id,
            HookPointName(hook).data()));
      }
      if (hook != HookPoint::kLsmFileOpen && is_lsm) {
        return xbase::FailedPrecondition(xbase::StrFormat(
            "lsm prog %u can only attach to lsm_file_open", prog_id));
      }
    }
  }
  // Pin the program for the attachment's lifetime: Unload refuses while the
  // pin is held, so a fire can never chase an unloaded id. (Pin also
  // subsumes the existence check.)
  XB_RETURN_IF_ERROR(bpf_loader_.Pin(prog_id));
  const xbase::u32 id = next_id_++;
  attachments_.push_back(Attachment{
      id, hook, false, prog_id,
      xbase::StrFormat("bpf:%u(%s)", prog_id, HookPointName(hook).data())});
  PublishSnapshot();
  bpf_.kernel().Printk(xbase::StrFormat("hook %s: bpf prog %u attached",
                                        HookPointName(hook).data(),
                                        prog_id));
  return id;
}

xbase::Result<xbase::u32> HookRegistry::AttachExtension(HookPoint hook,
                                                        xbase::u32 ext_id) {
  std::lock_guard<std::mutex> lock(attach_mu_);
  for (const Attachment& attachment : attachments_) {
    if (attachment.hook == hook && attachment.is_safex &&
        attachment.target_id == ext_id) {
      return xbase::AlreadyExists(xbase::StrFormat(
          "safex ext %u already attached to %s", ext_id,
          HookPointName(hook).data()));
    }
  }
  XB_RETURN_IF_ERROR(ext_loader_.Pin(ext_id));
  const xbase::u32 id = next_id_++;
  attachments_.push_back(Attachment{
      id, hook, true, ext_id,
      xbase::StrFormat("ext:%u(%s)", ext_id, HookPointName(hook).data())});
  PublishSnapshot();
  bpf_.kernel().Printk(xbase::StrFormat("hook %s: safex ext %u attached",
                                        HookPointName(hook).data(), ext_id));
  return id;
}

xbase::Status HookRegistry::Detach(xbase::u32 attachment_id) {
  std::lock_guard<std::mutex> lock(attach_mu_);
  auto it = std::find_if(attachments_.begin(), attachments_.end(),
                         [attachment_id](const Attachment& attachment) {
                           return attachment.id == attachment_id;
                         });
  if (it == attachments_.end()) {
    return xbase::NotFound("no such attachment");
  }
  // Drop the unload pin taken at attach time.
  if (it->is_safex) {
    ext_loader_.Unpin(it->target_id);
  } else {
    bpf_loader_.Unpin(it->target_id);
  }
  attachments_.erase(it);
  PublishSnapshot();
  if (config_.supervisor != nullptr) {
    // Detaching while quarantined/evicted is always legal and drops the
    // health record with the attachment.
    config_.supervisor->Forget(attachment_id);
  }
  return xbase::Status::Ok();
}

// Called with attach_mu_ held.
void HookRegistry::PublishSnapshot() {
  auto snapshot = std::make_shared<Snapshot>();
  for (const Attachment& attachment : attachments_) {
    snapshot->by_hook[static_cast<xbase::usize>(attachment.hook)].push_back(
        attachment);
  }
  snapshot_.store(std::shared_ptr<const Snapshot>(std::move(snapshot)),
                  std::memory_order_release);
}

HookVerdict HookRegistry::RunAttachment(const Attachment& attachment,
                                        simkern::Addr ctx_addr) {
  simkern::Kernel& kernel = bpf_.kernel();
  HookVerdict verdict;
  verdict.from_safex = attachment.is_safex;
  verdict.attachment_id = attachment.id;

  Supervisor* supervisor = config_.supervisor;
  const xbase::u64 now = kernel.clock().now_ns();
  if (supervisor != nullptr) {
    const AdmitDecision decision = supervisor->Admit(attachment.id, now);
    verdict.health = decision.health;
    if (!decision.allow) {
      verdict.skipped = true;
      verdict.status = xbase::FailedPrecondition(xbase::StrFormat(
          "attachment %u %s", attachment.id,
          std::string(ExtHealthName(decision.health)).c_str()));
      return verdict;
    }
  }

  // Pre-invocation kernel-state baseline, so anything the attachment leaks
  // can be attributed, repaired and charged to it afterwards. The baseline
  // is count/journal based: instead of copying the whole object table and
  // walking the lock table before every run, arm the (reused) refcount
  // journal and record the O(1) held-lock count; the expensive walks only
  // happen when those say something actually changed.
  // All repair scratch is per-CPU: concurrent fires on other CPUs use
  // their own slots, so the baselines can't cross-contaminate.
  FireScratch& scratch = scratch_[kernel.current_cpu()];
  const int rcu_depth_before = kernel.rcu().depth();
  if (supervisor != nullptr) {
    kernel.objects().BeginRefJournal();
    scratch.locks_before.clear();
    if (kernel.locks().held_count() != 0) {
      kernel.locks().HeldLocksInto(&scratch.locks_before);
    }
    kernel.BeginExtensionScope(attachment.scope_label);
  }

  try {
    if (attachment.is_safex) {
      InvokeOptions options;
      options.skb_meta =
          attachment.hook == HookPoint::kXdpIngress ? ctx_addr : 0;
      auto outcome = ext_loader_.Invoke(attachment.target_id, options);
      if (outcome.ok()) {
        verdict.value = outcome.value().ret;
        verdict.status = outcome.value().status;
      } else {
        verdict.status = outcome.status();
      }
    } else {
      auto loaded = bpf_loader_.Find(attachment.target_id);
      if (loaded.ok()) {
        auto result = ebpf::Execute(bpf_, *loaded.value(), ctx_addr,
                                    config_.exec_options, &bpf_loader_);
        if (result.ok()) {
          verdict.value = result.value().r0;
        } else {
          verdict.status = result.status();
        }
      } else {
        verdict.status = loaded.status();
      }
    }
  } catch (...) {
    // Runtime::Invoke already contains foreign exceptions; this is the
    // dispatch loop's own belt-and-braces so no conceivable throw can
    // abort the remaining attachments on the hook.
    verdict.status =
        xbase::Terminated("foreign exception escaped attachment dispatch");
  }
  verdict.cost_ns = kernel.clock().now_ns() - now;

  if (supervisor == nullptr) {
    return verdict;
  }

  const xbase::u32 oopses = kernel.EndExtensionScope();

  // Repair what the attachment leaked: balance the RCU read-side section,
  // force-release locks it still holds, drop references it never put.
  int rcu_excess = kernel.rcu().depth() - rcu_depth_before;
  while (rcu_excess-- > 0) {
    (void)kernel.rcu().ReadUnlock();
  }
  xbase::u32 locks_repaired = 0;
  if (kernel.locks().held_count() != 0) {
    scratch.locks_after.clear();
    kernel.locks().HeldLocksInto(&scratch.locks_after);
    for (const simkern::LockId lock : scratch.locks_after) {
      if (std::find(scratch.locks_before.begin(),
                    scratch.locks_before.end(),
                    lock) == scratch.locks_before.end()) {
        kernel.locks().ForceRelease(lock);
        ++locks_repaired;
      }
    }
  }
  xbase::u32 refs_repaired = 0;
  const std::vector<simkern::RefJournalEvent>& journal =
      kernel.objects().EndRefJournal();
  if (!journal.empty()) {
    // Net the journal per object; a positive net on a still-live object is
    // exactly what Snapshot/DiffSince used to report (freed-in-scope
    // objects net out or fail the IsLive check, matching the old skip of
    // freed entries).
    scratch.ref_net.clear();
    for (const simkern::RefJournalEvent& event : journal) {
      bool merged = false;
      for (auto& [id, net] : scratch.ref_net) {
        if (id == event.id) {
          net += event.delta;
          merged = true;
          break;
        }
      }
      if (!merged) {
        scratch.ref_net.emplace_back(event.id, event.delta);
      }
    }
    for (const auto& [id, net] : scratch.ref_net) {
      if (net <= 0 || !kernel.objects().IsLive(id)) {
        continue;
      }
      for (xbase::s64 i = 0; i < net; ++i) {
        if (kernel.objects().Release(id).ok()) {
          ++refs_repaired;
        }
      }
    }
  }

  // Attribute the outcome. Priority: an on-CPU oops outranks the normal
  // termination reason, which outranks a repaired leak.
  const xbase::u64 after = kernel.clock().now_ns();
  if (oopses > 0 || verdict.status.code() == xbase::Code::kKernelFault) {
    supervisor->RecordFailure(
        attachment.id, FailureKind::kOops,
        verdict.status.ok() ? "oops on extension CPU time"
                            : verdict.status.message(),
        after);
  } else if (verdict.status.code() == xbase::Code::kTerminated) {
    supervisor->RecordFailure(attachment.id,
                              ClassifyTermination(verdict.status.message()),
                              verdict.status.message(), after);
  } else if (locks_repaired > 0 || refs_repaired > 0) {
    supervisor->RecordFailure(
        attachment.id, FailureKind::kResourceLeak,
        xbase::StrFormat("leaked %u ref(s), %u lock(s); repaired",
                         refs_repaired, locks_repaired),
        after);
    kernel.Printk(xbase::StrFormat(
        "supervisor: attachment %u leaked %u ref(s) %u lock(s); repaired",
        attachment.id, refs_repaired, locks_repaired));
  } else {
    supervisor->RecordSuccess(attachment.id, after);
  }
  verdict.health = supervisor->HealthOf(attachment.id);
  if (verdict.health == ExtHealth::kQuarantined ||
      verdict.health == ExtHealth::kEvicted) {
    kernel.Printk(xbase::StrFormat(
        "supervisor: attachment %u -> %s (%s)", attachment.id,
        std::string(ExtHealthName(verdict.health)).c_str(),
        verdict.status.ok() ? "resource leak" :
                              verdict.status.message().c_str()));
  }
  return verdict;
}

void HookRegistry::ApplyFallback(HookPoint hook,
                                 HookFireReport& report) const {
  const HookFallback& fallback =
      config_.fallback[static_cast<xbase::usize>(hook)];
  if (fallback.action != FallbackAction::kFailClosed) {
    // kFailOpen leaves the neutral aggregate in place. kDefaultPolicy is
    // the scheduler core's job: it sees the report and runs the built-in
    // round-robin policy — nothing to substitute here.
    return;
  }
  if (hook == HookPoint::kXdpIngress) {
    report.verdict = fallback.value != 0 ? fallback.value : 1;  // XDP_DROP
  } else if ((hook == HookPoint::kSyscallEnter ||
              hook == HookPoint::kLsmFileOpen) &&
             !report.denied) {
    report.denied = true;
    report.verdict = fallback.value != 0 ? fallback.value : 1;  // EPERM
  }
}

xbase::Result<HookFireReport> HookRegistry::Fire(HookPoint hook,
                                                 simkern::Addr ctx_addr) {
  HookFireReport report;
  FireInto(hook, ctx_addr, report);
  return report;
}

void HookRegistry::FireAsync(simkern::CpuPool& pool, HookPoint hook,
                             simkern::Addr ctx_addr) {
  pool.SubmitAny([this, hook, ctx_addr] {
    FireInto(hook, ctx_addr,
             scratch_[bpf_.kernel().current_cpu()].async_report);
  });
}

void HookRegistry::FireAsyncOn(simkern::CpuPool& pool, xbase::u32 cpu,
                               HookPoint hook, simkern::Addr ctx_addr) {
  pool.Submit(cpu, [this, hook, ctx_addr] {
    // A stolen task runs on the thief's CPU — index by the *executing*
    // CPU, never the submission target.
    FireInto(hook, ctx_addr,
             scratch_[bpf_.kernel().current_cpu()].async_report);
  });
}

void HookRegistry::FireInto(HookPoint hook, simkern::Addr ctx_addr,
                            HookFireReport& report) {
  ++scratch_[bpf_.kernel().current_cpu()].fires;
  report.verdicts.clear();  // keeps capacity for the steady state
  report.verdict = hook == HookPoint::kXdpIngress ? 2 /* XDP_PASS */ : 0;
  report.denied = false;
  report.decider = 0;
  report.served = 0;
  report.failed = 0;
  report.skipped = 0;

  // Walk the published snapshot: immutable, so nothing an attachment does
  // (and no repair the supervisor performs) can invalidate the walk, and
  // the hot path pays one atomic load instead of building an index vector.
  const std::shared_ptr<const Snapshot> snapshot =
      snapshot_.load(std::memory_order_acquire);
  for (const Attachment& attachment :
       snapshot->by_hook[static_cast<xbase::usize>(hook)]) {
    HookVerdict verdict = RunAttachment(attachment, ctx_addr);

    // Aggregate per hook semantics. A failed attachment contributes the
    // configured fallback (default: fail open for tracing and XDP,
    // deny-less for syscalls — the report carries the status).
    if (verdict.skipped) {
      ++report.skipped;
      ApplyFallback(hook, report);
    } else if (verdict.status.ok()) {
      ++report.served;
      if (hook == HookPoint::kXdpIngress && verdict.value == 1) {
        report.verdict = 1;  // any DROP wins
      }
      if ((hook == HookPoint::kSyscallEnter ||
           hook == HookPoint::kLsmFileOpen) &&
          verdict.value != 0 && !report.denied) {
        report.denied = true;
        report.verdict = verdict.value;
      }
      if (hook == HookPoint::kSchedPickNext && report.decider == 0) {
        // First served attachment decides the pick.
        report.verdict = verdict.value;
        report.decider = verdict.attachment_id;
      }
    } else {
      ++report.failed;
      ApplyFallback(hook, report);
    }
    report.verdicts.push_back(std::move(verdict));
  }
}

xbase::usize HookRegistry::AttachedCount(HookPoint hook) const {
  std::lock_guard<std::mutex> lock(attach_mu_);
  xbase::usize count = 0;
  for (const Attachment& attachment : attachments_) {
    if (attachment.hook == hook) {
      ++count;
    }
  }
  return count;
}

}  // namespace safex

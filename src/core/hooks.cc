#include "src/core/hooks.h"

#include <algorithm>

#include "src/xbase/strfmt.h"

namespace safex {

std::string_view HookPointName(HookPoint hook) {
  switch (hook) {
    case HookPoint::kXdpIngress:
      return "xdp_ingress";
    case HookPoint::kSyscallEnter:
      return "syscall_enter";
    case HookPoint::kSchedSwitch:
      return "sched_switch";
  }
  return "unknown";
}

xbase::Result<xbase::u32> HookRegistry::AttachProgram(HookPoint hook,
                                                      xbase::u32 prog_id) {
  XB_RETURN_IF_ERROR(bpf_loader_.Find(prog_id).status());
  const xbase::u32 id = next_id_++;
  attachments_.push_back(Attachment{id, hook, false, prog_id});
  bpf_.kernel().Printk(xbase::StrFormat("hook %s: bpf prog %u attached",
                                        HookPointName(hook).data(),
                                        prog_id));
  return id;
}

xbase::Result<xbase::u32> HookRegistry::AttachExtension(HookPoint hook,
                                                        xbase::u32 ext_id) {
  XB_RETURN_IF_ERROR(ext_loader_.Find(ext_id).status());
  const xbase::u32 id = next_id_++;
  attachments_.push_back(Attachment{id, hook, true, ext_id});
  bpf_.kernel().Printk(xbase::StrFormat("hook %s: safex ext %u attached",
                                        HookPointName(hook).data(), ext_id));
  return id;
}

xbase::Status HookRegistry::Detach(xbase::u32 attachment_id) {
  const auto before = attachments_.size();
  attachments_.erase(
      std::remove_if(attachments_.begin(), attachments_.end(),
                     [attachment_id](const Attachment& attachment) {
                       return attachment.id == attachment_id;
                     }),
      attachments_.end());
  if (attachments_.size() == before) {
    return xbase::NotFound("no such attachment");
  }
  return xbase::Status::Ok();
}

xbase::Result<HookFireReport> HookRegistry::Fire(HookPoint hook,
                                                 simkern::Addr ctx_addr) {
  HookFireReport report;
  report.verdict = hook == HookPoint::kXdpIngress ? 2 /* XDP_PASS */ : 0;

  for (const Attachment& attachment : attachments_) {
    if (attachment.hook != hook) {
      continue;
    }
    HookVerdict verdict;
    verdict.from_safex = attachment.is_safex;
    verdict.attachment_id = attachment.id;
    if (attachment.is_safex) {
      InvokeOptions options;
      options.skb_meta = hook == HookPoint::kXdpIngress ? ctx_addr : 0;
      auto outcome = ext_loader_.Invoke(attachment.target_id, options);
      if (outcome.ok()) {
        verdict.value = outcome.value().ret;
        verdict.status = outcome.value().status;
      } else {
        verdict.status = outcome.status();
      }
    } else {
      auto loaded = bpf_loader_.Find(attachment.target_id);
      if (loaded.ok()) {
        auto result = ebpf::Execute(bpf_, *loaded.value(), ctx_addr, {},
                                    &bpf_loader_);
        if (result.ok()) {
          verdict.value = result.value().r0;
        } else {
          verdict.status = result.status();
        }
      } else {
        verdict.status = loaded.status();
      }
    }

    // Aggregate per hook semantics. A failed attachment contributes no
    // verdict (fail open for tracing, fail open for XDP like a crashed
    // program, deny-less for syscalls — the report carries the status).
    if (verdict.status.ok()) {
      if (hook == HookPoint::kXdpIngress && verdict.value == 1) {
        report.verdict = 1;  // any DROP wins
      }
      if (hook == HookPoint::kSyscallEnter && verdict.value != 0 &&
          !report.denied) {
        report.denied = true;
        report.verdict = verdict.value;
      }
    }
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

xbase::usize HookRegistry::AttachedCount(HookPoint hook) const {
  xbase::usize count = 0;
  for (const Attachment& attachment : attachments_) {
    if (attachment.hook == hook) {
      ++count;
    }
  }
  return count;
}

}  // namespace safex

// Hook points: where extensions attach and get invoked by kernel events.
// Both frameworks attach here — verified eBPF programs and signed safex
// extensions side by side — so experiments can drive identical event
// streams through both and compare verdicts, cost and failure modes.
#pragma once

#include <vector>

#include "src/core/loader.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"

namespace safex {

enum class HookPoint : xbase::u8 {
  kXdpIngress,     // per packet; verdict: XDP_DROP(1)/XDP_PASS(2)
  kSyscallEnter,   // per syscall; verdict: 0 allow, nonzero deny-errno
  kSchedSwitch,    // tracing; verdict ignored
};

std::string_view HookPointName(HookPoint hook);

struct HookVerdict {
  bool from_safex = false;
  xbase::u32 attachment_id = 0;
  xbase::u64 value = 0;
  xbase::Status status;  // non-OK if the program/extension failed
};

struct HookFireReport {
  std::vector<HookVerdict> verdicts;
  // Aggregate: packets — dropped if any attachment said DROP; syscalls —
  // denied with the first nonzero errno.
  xbase::u64 verdict = 0;
  bool denied = false;
};

class HookRegistry {
 public:
  HookRegistry(ebpf::Bpf& bpf, ebpf::Loader& bpf_loader,
               ExtLoader& ext_loader)
      : bpf_(bpf), bpf_loader_(bpf_loader), ext_loader_(ext_loader) {}

  // Attach a loaded eBPF program / safex extension to a hook. Returns an
  // attachment id.
  xbase::Result<xbase::u32> AttachProgram(HookPoint hook, xbase::u32 prog_id);
  xbase::Result<xbase::u32> AttachExtension(HookPoint hook,
                                            xbase::u32 ext_id);
  xbase::Status Detach(xbase::u32 attachment_id);

  // Fires every attachment in attach order with the given context address
  // (skb meta for XDP; a per-event ctx block otherwise).
  xbase::Result<HookFireReport> Fire(HookPoint hook, simkern::Addr ctx_addr);

  xbase::usize AttachedCount(HookPoint hook) const;

 private:
  struct Attachment {
    xbase::u32 id;
    HookPoint hook;
    bool is_safex;
    xbase::u32 target_id;
  };

  ebpf::Bpf& bpf_;
  ebpf::Loader& bpf_loader_;
  ExtLoader& ext_loader_;
  std::vector<Attachment> attachments_;
  xbase::u32 next_id_ = 1;
};

}  // namespace safex

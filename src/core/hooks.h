// Hook points: where extensions attach and get invoked by kernel events.
// Both frameworks attach here — verified eBPF programs and signed safex
// extensions side by side — so experiments can drive identical event
// streams through both and compare verdicts, cost and failure modes.
//
// Fire isolates attachments from each other: one failing attachment cannot
// abort or skip the remaining attachments on its hook, and with a
// Supervisor configured every abnormal outcome (panic, watchdog, stack
// overflow, attributed oops, resource leak) is charged to the offending
// attachment, quarantined attachments are skipped, and a configurable
// fallback verdict stands in for what they would have said.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/loader.h"
#include "src/core/supervisor.h"
#include "src/ebpf/interp.h"
#include "src/ebpf/loader.h"
#include "src/simkern/smp.h"

namespace safex {

enum class HookPoint : xbase::u8 {
  kXdpIngress,     // per packet; verdict: XDP_DROP(1)/XDP_PASS(2)
  kSyscallEnter,   // per syscall; verdict: 0 allow, nonzero deny-errno
  kSchedSwitch,    // tracing; verdict ignored
  kSchedPickNext,  // scheduler: verdict = pid to dispatch (0 = yield)
  kLsmFileOpen,    // access control; verdict: 0 allow, nonzero deny-errno
};
inline constexpr xbase::usize kHookPointCount = 5;

std::string_view HookPointName(HookPoint hook);

struct HookVerdict {
  bool from_safex = false;
  xbase::u32 attachment_id = 0;
  xbase::u64 value = 0;
  xbase::Status status;  // non-OK if the program/extension failed
  bool skipped = false;  // the breaker refused the invocation
  ExtHealth health = ExtHealth::kHealthy;  // after this fire
  // Simulated time the attachment consumed (deadline attribution).
  xbase::u64 cost_ns = 0;
};

struct HookFireReport {
  std::vector<HookVerdict> verdicts;
  // Aggregate: packets — dropped if any attachment said DROP; syscalls —
  // denied with the first nonzero errno; scheduler — the first served
  // attachment's pick stands.
  xbase::u64 verdict = 0;
  bool denied = false;
  // Attachment whose verdict became the aggregate (scheduler hooks);
  // 0 when no served attachment decided.
  xbase::u32 decider = 0;
  // Per-fire accounting (availability measurements key off these).
  xbase::u32 served = 0;   // ran to completion with an OK status
  xbase::u32 failed = 0;   // ran but ended with a non-OK status
  xbase::u32 skipped = 0;  // refused by quarantine/eviction
};

// What stands in for a failed or skipped attachment's verdict. Fallback is
// per hook *family*: a packet hook failing open must not force the
// scheduler family to fail open too (and vice versa) — the right degraded
// behaviour is a per-family policy decision.
enum class FallbackAction : xbase::u8 {
  kFailOpen,       // neutral verdict: pass the packet / allow the syscall
  kFailClosed,     // protective verdict: drop / deny with `value`
  kDefaultPolicy,  // defer to the subsystem's built-in policy (scheduler:
                   // the round-robin default scheduler takes over)
};

struct HookFallback {
  FallbackAction action = FallbackAction::kFailOpen;
  // Fail-closed verdict payload: XDP code (default 1 = DROP) or deny
  // errno (default 1 = EPERM) when zero.
  xbase::u64 value = 0;
};

constexpr std::array<HookFallback, kHookPointCount> DefaultFallbacks() {
  std::array<HookFallback, kHookPointCount> fallback{};
  // Packet, syscall and tracing hooks fail open by default; the scheduler
  // family fails over to the built-in default policy — "fail open" is
  // meaningless when the extension *is* the decision-maker.
  fallback[static_cast<xbase::usize>(HookPoint::kSchedPickNext)] =
      HookFallback{FallbackAction::kDefaultPolicy, 0};
  // An access-control hook that fails open is not an access-control hook:
  // a crashed or quarantined lsm policy must deny (EPERM), never allow.
  fallback[static_cast<xbase::usize>(HookPoint::kLsmFileOpen)] =
      HookFallback{FallbackAction::kFailClosed, 0};
  return fallback;
}

struct HookRegistryConfig {
  // Health/containment layer; null runs the unsupervised baseline (one bad
  // attachment can poison its hook or the kernel, as before).
  Supervisor* supervisor = nullptr;
  // Per-hook-family fallback policy, indexed by HookPoint.
  std::array<HookFallback, kHookPointCount> fallback = DefaultFallbacks();
  // Execution options handed to every eBPF attachment run (engine
  // selection, executing CPU, tracing). Defaults to the threaded engine.
  ebpf::ExecOptions exec_options;
};

class HookRegistry {
 public:
  HookRegistry(ebpf::Bpf& bpf, ebpf::Loader& bpf_loader,
               ExtLoader& ext_loader, const HookRegistryConfig& config = {})
      : bpf_(bpf),
        bpf_loader_(bpf_loader),
        ext_loader_(ext_loader),
        config_(config) {}

  // Attach a loaded eBPF program / safex extension to a hook. Returns an
  // attachment id; attaching the same target to the same hook twice is
  // AlreadyExists.
  xbase::Result<xbase::u32> AttachProgram(HookPoint hook, xbase::u32 prog_id);
  xbase::Result<xbase::u32> AttachExtension(HookPoint hook,
                                            xbase::u32 ext_id);
  xbase::Status Detach(xbase::u32 attachment_id);

  // Fires every attachment in attach order with the given context address
  // (skb meta for XDP; a per-event ctx block otherwise).
  xbase::Result<HookFireReport> Fire(HookPoint hook, simkern::Addr ctx_addr);

  // Allocation-free steady-state variant: clears and refills a
  // caller-owned report (vector capacity survives across fires). The fire
  // path walks the immutable published snapshot — one atomic load, no
  // per-fire index vector, no per-attachment copies.
  void FireInto(HookPoint hook, simkern::Addr ctx_addr,
                HookFireReport& report);

  // SMP dispatch: enqueue the fire on the pool (round-robin across CPUs,
  // work-stealing when a CPU backs up). The fire runs on the worker's
  // bound CPU against that CPU's clock, percpu map slots and scratch; the
  // report lands in the executing CPU's scratch slot (see
  // async_report_on; read it only after a pool Drain). Safe to call
  // concurrently from any thread.
  void FireAsync(simkern::CpuPool& pool, HookPoint hook,
                 simkern::Addr ctx_addr);
  // Pin the fire to one CPU's queue instead of round-robin.
  void FireAsyncOn(simkern::CpuPool& pool, xbase::u32 cpu, HookPoint hook,
                   simkern::Addr ctx_addr);

  xbase::usize AttachedCount(HookPoint hook) const;
  xbase::usize AttachedCountTotal() const {
    std::lock_guard<std::mutex> lock(attach_mu_);
    return attachments_.size();
  }

  // Per-CPU fire accounting (valid at quiescent points).
  xbase::u64 fires_on(xbase::u32 cpu) const {
    return cpu < simkern::kMaxCpus ? scratch_[cpu].fires : 0;
  }
  // Last async fire report that landed on `cpu` (valid post-Drain).
  const HookFireReport& async_report_on(xbase::u32 cpu) const {
    return scratch_[cpu < simkern::kMaxCpus ? cpu : 0].async_report;
  }
  xbase::u64 fires_total() const {
    xbase::u64 total = 0;
    for (const FireScratch& scratch : scratch_) {
      total += scratch.fires;
    }
    return total;
  }

  HookRegistryConfig& config() { return config_; }
  Supervisor* supervisor() { return config_.supervisor; }

 private:
  struct Attachment {
    xbase::u32 id = 0;
    HookPoint hook = HookPoint::kXdpIngress;
    bool is_safex = false;
    xbase::u32 target_id = 0;
    // Precomputed extension-scope label ("bpf:3(xdp_ingress)"), so the
    // fire path never runs StrFormat.
    std::string scope_label;
  };

  // RCU-style publication: attach/detach (rare, control plane) rebuild an
  // immutable per-hook attachment table and publish it with one atomic
  // store; Fire (hot path) takes one atomic shared_ptr load and walks a
  // table no concurrent detach can mutate under it.
  struct Snapshot {
    std::array<std::vector<Attachment>, kHookPointCount> by_hook;
  };

  void PublishSnapshot();

  // Runs one attachment, fully contained: never throws, never returns
  // early, and under supervision repairs any kernel state (refcounts,
  // locks, RCU depth) the attachment leaked before reporting the failure.
  HookVerdict RunAttachment(const Attachment& attachment,
                            simkern::Addr ctx_addr);
  void ApplyFallback(HookPoint hook, HookFireReport& report) const;

  // Per-CPU fire state: repair scratch (leak detection is
  // count/journal-gated, so the vectors stay empty — and allocation-free —
  // on the happy path), the async-dispatch report, and the fire counter.
  // Only the bound CPU's thread touches its slot, so no locking; reads
  // from other threads are valid only at quiescent points (post-Drain).
  struct alignas(64) FireScratch {
    std::vector<simkern::LockId> locks_before;
    std::vector<simkern::LockId> locks_after;
    std::vector<std::pair<simkern::ObjectId, xbase::s64>> ref_net;
    HookFireReport async_report;
    xbase::u64 fires = 0;
  };

  ebpf::Bpf& bpf_;
  ebpf::Loader& bpf_loader_;
  ExtLoader& ext_loader_;
  HookRegistryConfig config_;
  // attach_mu_ guards the control plane (attachments_, next_id_); the fire
  // path never takes it — it reads the published snapshot.
  mutable std::mutex attach_mu_;
  std::vector<Attachment> attachments_;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_{
      std::make_shared<const Snapshot>()};
  xbase::u32 next_id_ = 1;
  std::array<FireScratch, simkern::kMaxCpus> scratch_;
};

}  // namespace safex

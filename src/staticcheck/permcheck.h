// permcheck: the contract side of the helper access-control audit. The
// declared contract (HelperSpec family + introduction version, plus the
// program-type privilege predicate) is the single source of truth; this
// pass restates it as a per-cell admission verdict so the census in
// analysis/permaudit can model-check what the verifier, the dispatch gate
// and the loader *actually* enforce against what they *should* enforce.
// A layer that is more permissive than ExpectedAdmissionFor for any cell
// has dropped a permission check.
//
// Like every staticcheck pass this is verifier-independent: it derives its
// verdicts from the registry specs and contract predicates in helper.h
// alone and must never include src/ebpf/verifier.h (CI greps for it).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/ebpf/helper.h"
#include "src/ebpf/prog.h"
#include "src/simkern/version.h"
#include "src/xbase/types.h"

namespace staticcheck {

using xbase::u32;
using xbase::u8;

// Why a cell is denied; kAllowed when it is not. Ordered by the pipeline
// stage that fires first: the loader's privilege gate runs before the
// verifier, and the verifier checks the version gate before the family
// gate.
enum class PermReason : u8 {
  kAllowed = 0,
  kPrivilege,  // loader: program type needs a privileged loader
  kVersion,    // helper not yet introduced at this kernel version
  kFamily,     // helper family does not admit this program type
};

std::string_view PermReasonName(PermReason reason);

// The enforcement layer charged with a gap. The verifier and the dispatch
// gate independently enforce family+version; the loader alone enforces
// privilege.
enum class PermLayer : u8 { kVerifier, kRuntime, kLoader };

std::string_view PermLayerName(PermLayer layer);

// One admission cell: may a program of `type`, loaded with or without
// privilege on a kernel at `version`, call helper `helper_id`?
struct AdmissionCell {
  u32 helper_id = 0;
  ebpf::ProgType type = ebpf::ProgType::kSocketFilter;
  bool privileged = true;
  simkern::KernelVersion version;

  std::string ToString() const;
};

// The contract's verdict for one cell, split per enforcement layer so the
// census can probe each layer in isolation and attribute gaps.
struct ExpectedAdmission {
  bool allow = true;
  PermReason reason = PermReason::kAllowed;  // first denying gate
  bool verifier_denies = false;  // version or family gate must fire
  bool runtime_denies = false;   // dispatch re-check must fire (same terms)
  bool loader_denies = false;    // privilege gate must fire
};

ExpectedAdmission ExpectedAdmissionFor(const ebpf::HelperSpec& spec,
                                       ebpf::ProgType type, bool privileged,
                                       simkern::KernelVersion version);

// Program-level contract summary: a pure bytecode scan collecting every
// helper the program calls and what those calls demand from the
// loader/kernel — the minimum kernel version, whether a privileged loader
// is required, and any family violation visible statically. The severity
// bit (writes_state) rides along so a downstream gap report can rank
// mutating helpers above pure readers.
struct RequiredContract {
  std::vector<u32> helpers;  // distinct called helper ids, program order
  simkern::KernelVersion min_version;  // max over introduced versions
  bool requires_privilege = false;     // prog type is privilege-gated
  bool calls_writing_helper = false;   // any called helper mutates state
  // Static family violations: helper calls the contract already denies for
  // this program type. A clean program has none; the census synthesizes
  // programs that have exactly one.
  std::vector<std::string> violations;

  bool well_typed() const { return violations.empty(); }
};

RequiredContract ScanRequiredContract(const ebpf::Program& prog,
                                      const ebpf::HelperRegistry& helpers);

}  // namespace staticcheck

// Memory domain for staticcheck: the abstract value lattice shared by the
// register file and the stack, a typed per-slot stack domain (spill/fill
// tracking — the verifier's STACK_SPILL analog, re-derived independently),
// and a packet-pointer domain relating `data`-derived pointers to
// `data_end` through a proven byte range (the FindGoodPktPointers analog).
//
// Split out of dataflow.h so the zone domain, the stack domain and the
// dataflow proper can share AbsVal without a dependency cycle. Like every
// staticcheck header, this must not include any verifier header.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "src/ebpf/prog.h"
#include "src/staticcheck/range.h"

namespace staticcheck {

// Abstract value kinds. kTop is "initialized, nothing else known".
enum class VK : u8 {
  kUninit = 0,
  kTop,
  kConst,      // fully-known 64-bit scalar
  kCtx,        // the context pointer (R1 at entry)
  kStack,      // frame pointer with a fixed byte offset
  kMapPtr,     // ld_imm64 map reference
  kMapVal,     // pointer into a map value
  kMem,        // helper-provided memory (ringbuf record)
  kSock,       // socket object pointer
  kTask,       // task_struct pointer
  kPacket,     // skb->data-derived pointer; mem_size = proven range
  kPacketEnd,  // skb->data_end (compare-only, never dereferenced)
  kFunc,       // callback reference
};

inline bool IsPointerKind(VK kind) {
  return kind >= VK::kCtx && kind <= VK::kPacketEnd;
}

struct AbsVal {
  VK kind = VK::kUninit;
  bool or_null = false;  // pointer kinds: may still be NULL
  bool var_off = false;  // pointer offset includes an unknown scalar
  s64 off_min = 0;       // pointer offset range (kStack/kMapVal/kMem/kPacket)
  s64 off_max = 0;
  u64 cval = 0;          // kConst
  int map_fd = -1;       // kMapPtr/kMapVal
  u32 mem_size = 0;      // kMem size; kPacket: bytes proven readable from
                         // data (established by compares against data_end)
  u32 id = 0;            // null-refinement / reference / packet-lineage key
  // Numeric range claim; meaningful for kTop/kConst scalars only (kConst
  // keeps rng == RangeVal::Const(cval) as an invariant).
  RangeVal rng;
  bool operator==(const AbsVal&) const = default;
};

// ---------------------------------------------------------------------------
// Stack domain: 64 eight-byte slots over the 512-byte frame, each either
// untouched, scribbled-on (kMisc: bytes written but no tracked value), or
// holding a full 8-byte spill of an abstract value. A spill survives only
// as an aligned 8-byte store; any narrower or misaligned overwrite
// downgrades the slot to kMisc — precisely the invariant whose omission is
// the spill-width-confusion fault class (kernel commit 27113c59b6d0).
// ---------------------------------------------------------------------------

inline constexpr int kStackSlots =
    static_cast<int>(ebpf::kMaxStackBytes / 8);

enum class SlotKind : u8 {
  kEmpty = 0,  // never written
  kMisc,       // written, contents untracked
  kSpill,      // full 8-byte spill; `val` is the spilled abstract value
};

struct StackSlot {
  SlotKind kind = SlotKind::kEmpty;
  AbsVal val;
  bool operator==(const StackSlot&) const = default;
};

struct StackDom {
  std::array<StackSlot, kStackSlots> slots;
  bool operator==(const StackDom&) const = default;
};

// Slot index for a frame offset (off < 0, relative to R10); slot i covers
// bytes [-8*(i+1), -8*i). Returns -1 if out of frame.
inline int StackSlotIndex(s64 off) {
  if (off < -static_cast<s64>(ebpf::kMaxStackBytes) || off >= 0) return -1;
  return static_cast<int>((-off - 1) / 8);
}

// True when a store at [off, off+size) is a full aligned slot write — the
// only shape that preserves a tracked spill.
inline bool IsFullSlotAccess(s64 off, u32 size) {
  return size == 8 && off % 8 == 0 && off >= -static_cast<s64>(ebpf::kMaxStackBytes) &&
         off <= -8;
}

// ---------------------------------------------------------------------------
// Packet domain support.
// ---------------------------------------------------------------------------

// Program types whose context exposes direct packet pointers (mirrors the
// verifier's CtxRules but re-derived here: the sk_buff-style layout is a
// simkern contract, not a verifier one).
inline bool HasPacketPtrs(ebpf::ProgType type) {
  switch (type) {
    case ebpf::ProgType::kXdp:
    case ebpf::ProgType::kSocketFilter:
    case ebpf::ProgType::kCgroupSkb:
      return true;
    default:
      return false;
  }
}

std::string_view SlotKindName(SlotKind kind);
std::string_view VKName(VK kind);
// Human-readable dump of the non-empty slots, e.g. "fp-8=map_value
// fp-16=misc"; for tests and xcheck output.
std::string FormatStackDom(const StackDom& dom);

}  // namespace staticcheck

#include "src/staticcheck/memdom.h"

#include "src/xbase/strfmt.h"

namespace staticcheck {

std::string_view SlotKindName(SlotKind kind) {
  switch (kind) {
    case SlotKind::kEmpty:
      return "empty";
    case SlotKind::kMisc:
      return "misc";
    case SlotKind::kSpill:
      return "spill";
  }
  return "?";
}

std::string_view VKName(VK kind) {
  switch (kind) {
    case VK::kUninit:
      return "uninit";
    case VK::kTop:
      return "scalar";
    case VK::kConst:
      return "const";
    case VK::kCtx:
      return "ctx";
    case VK::kStack:
      return "fp";
    case VK::kMapPtr:
      return "map_ptr";
    case VK::kMapVal:
      return "map_value";
    case VK::kMem:
      return "mem";
    case VK::kSock:
      return "sock";
    case VK::kTask:
      return "task";
    case VK::kPacket:
      return "pkt";
    case VK::kPacketEnd:
      return "pkt_end";
    case VK::kFunc:
      return "func";
  }
  return "?";
}

std::string FormatStackDom(const StackDom& dom) {
  std::string out;
  for (int i = 0; i < kStackSlots; ++i) {
    const StackSlot& slot = dom.slots[static_cast<xbase::usize>(i)];
    if (slot.kind == SlotKind::kEmpty) {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    if (slot.kind == SlotKind::kSpill) {
      out += xbase::StrFormat(
          "fp-%d=%.*s", 8 * (i + 1),
          static_cast<int>(VKName(slot.val.kind).size()),
          VKName(slot.val.kind).data());
    } else {
      out += xbase::StrFormat("fp-%d=misc", 8 * (i + 1));
    }
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace staticcheck

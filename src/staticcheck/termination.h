// Termination analysis: natural loops from CFG back edges, a
// progress-register heuristic for loop boundedness, and a static
// bpf_loop iteration-product estimate checked against the runtime
// budget. The verifier answers the same question by enumerating states;
// this pass answers it structurally, so the two can disagree — which is
// exactly what the differential oracle wants to observe.
#pragma once

#include <vector>

#include "src/staticcheck/cfg.h"

namespace staticcheck {

void RunTermination(const ebpf::Program& prog, const Cfg& cfg,
                    const CheckOptions& opts,
                    std::vector<Finding>& findings);

}  // namespace staticcheck

#include "src/staticcheck/range.h"

#include <algorithm>
#include <limits>

#include "src/ebpf/insn.h"
#include "src/xbase/strfmt.h"

namespace staticcheck {

using xbase::s32;

namespace {

constexpr s64 kS64Min = std::numeric_limits<s64>::min();
constexpr s64 kS64Max = std::numeric_limits<s64>::max();
constexpr u64 kU64Max = ~u64{0};
constexpr u64 kU32Max = 0xffffffffull;

int Fls64(u64 v) { return v == 0 ? 0 : 64 - __builtin_clzll(v); }

// Two known-bits values abstracting the *same* concrete value cannot
// disagree on a bit both know.
bool BitsConflict(KnownBits a, KnownBits b) {
  return ((a.value ^ b.value) & ~a.mask & ~b.mask) != 0;
}

}  // namespace

KnownBits BitsConst(u64 value) { return {value, 0}; }

KnownBits BitsUnknown() { return {0, kU64Max}; }

KnownBits BitsRange(u64 min, u64 max) {
  const int bits = Fls64(min ^ max);
  if (bits == 64) {
    return BitsUnknown();
  }
  const u64 delta = (u64{1} << bits) - 1;
  return {min & ~delta, delta};
}

KnownBits BitsAdd(KnownBits a, KnownBits b) {
  // Carry propagation: a known carry chain stays known until the first
  // unknown bit; past it, every bit the carries could reach is unknown.
  const u64 sm = a.mask + b.mask;
  const u64 sv = a.value + b.value;
  const u64 sigma = sm + sv;
  const u64 chi = sigma ^ sv;
  const u64 mu = chi | a.mask | b.mask;
  return {sv & ~mu, mu};
}

KnownBits BitsSub(KnownBits a, KnownBits b) {
  const u64 dv = a.value - b.value;
  const u64 alpha = dv + a.mask;
  const u64 beta = dv - b.mask;
  const u64 chi = alpha ^ beta;
  const u64 mu = chi | a.mask | b.mask;
  return {dv & ~mu, mu};
}

KnownBits BitsAnd(KnownBits a, KnownBits b) {
  const u64 alpha = a.value | a.mask;  // "could be 1"
  const u64 beta = b.value | b.mask;
  const u64 v = a.value & b.value;     // known 1 in both
  return {v, alpha & beta & ~v};
}

KnownBits BitsOr(KnownBits a, KnownBits b) {
  const u64 v = a.value | b.value;
  const u64 mu = a.mask | b.mask;
  return {v, mu & ~v};
}

KnownBits BitsXor(KnownBits a, KnownBits b) {
  const u64 v = a.value ^ b.value;
  const u64 mu = a.mask | b.mask;
  return {v & ~mu, mu};
}

KnownBits BitsShl(KnownBits a, u8 shift) {
  return {a.value << shift, a.mask << shift};
}

KnownBits BitsLshr(KnownBits a, u8 shift) {
  return {a.value >> shift, a.mask >> shift};
}

KnownBits BitsAshr(KnownBits a, u8 shift, bool is64) {
  // The shifted-in bits copy the sign bit: known only if the sign bit is
  // known; an unknown sign bit spreads "unknown" through an arithmetic
  // shift of the mask.
  if (is64) {
    return {static_cast<u64>(static_cast<s64>(a.value) >> shift),
            static_cast<u64>(static_cast<s64>(a.mask) >> shift)};
  }
  const u32 v32 = static_cast<u32>(
      static_cast<s32>(static_cast<u32>(a.value)) >> shift);
  const u32 m32 = static_cast<u32>(
      static_cast<s32>(static_cast<u32>(a.mask)) >> shift);
  return {v32, m32};
}

KnownBits BitsMul(KnownBits a, KnownBits b) {
  // Decompose a into bit contributions: a known 1 at bit i adds b<<i with
  // b's uncertainty; an unknown bit adds an uncertain 0-or-(b<<i).
  const u64 acc_v = a.value * b.value;
  KnownBits acc_m{0, 0};
  while (a.value != 0 || a.mask != 0) {
    if ((a.value & 1) != 0) {
      acc_m = BitsAdd(acc_m, KnownBits{0, b.mask});
    } else if ((a.mask & 1) != 0) {
      acc_m = BitsAdd(acc_m, KnownBits{0, b.value | b.mask});
    }
    a = BitsLshr(a, 1);
    b = BitsShl(b, 1);
  }
  return BitsAdd(KnownBits{acc_v, 0}, acc_m);
}

KnownBits BitsCast32(KnownBits a) {
  return {a.value & kU32Max, a.mask & kU32Max};
}

KnownBits BitsIntersect(KnownBits a, KnownBits b) {
  const u64 mu = a.mask & b.mask;
  return {(a.value | b.value) & ~mu, mu};
}

KnownBits BitsUnion(KnownBits a, KnownBits b) {
  const u64 mu = a.mask | b.mask | (a.value ^ b.value);
  return {a.value & b.value & ~mu, mu};
}

RangeVal RangeVal::Const(u64 v) {
  RangeVal r;
  r.umin = r.umax = v;
  r.smin = r.smax = static_cast<s64>(v);
  r.bits = BitsConst(v);
  return r;
}

RangeVal RangeVal::FromU(u64 lo, u64 hi) {
  RangeVal r;
  r.umin = lo;
  r.umax = hi;
  r.bits = BitsRange(lo, hi);
  r.Reduce();
  return r;
}

void RangeVal::Reduce() {
  for (int round = 0; round < 2; ++round) {
    // bits -> unsigned: every admitted value has the known bits.
    umin = std::max(umin, bits.value);
    umax = std::min(umax, bits.value | bits.mask);
    if (IsEmpty()) {
      return;
    }
    // unsigned -> signed: valid when the unsigned interval stays on one
    // side of the sign boundary.
    if (static_cast<s64>(umin) <= static_cast<s64>(umax)) {
      smin = std::max(smin, static_cast<s64>(umin));
      smax = std::min(smax, static_cast<s64>(umax));
    }
    // signed -> unsigned: same argument, mirrored.
    if (smin >= 0 || smax < 0) {
      umin = std::max(umin, static_cast<u64>(smin));
      umax = std::min(umax, static_cast<u64>(smax));
    }
    if (IsEmpty()) {
      return;
    }
    // unsigned -> bits: the shared leading bits of the interval endpoints
    // are known.
    const KnownBits rb = BitsRange(umin, umax);
    if (BitsConflict(bits, rb)) {
      umin = 1;
      umax = 0;  // mark empty: components contradict
      return;
    }
    bits = BitsIntersect(bits, rb);
  }
}

std::string RangeVal::ToString() const {
  if (IsEmpty()) {
    return "(empty)";
  }
  if (IsConst()) {
    return xbase::StrFormat("{%llu}",
                            static_cast<unsigned long long>(umin));
  }
  return xbase::StrFormat(
      "u[%llu,%llu] s[%lld,%lld] bits(%llx/%llx)",
      static_cast<unsigned long long>(umin),
      static_cast<unsigned long long>(umax),
      static_cast<long long>(smin), static_cast<long long>(smax),
      static_cast<unsigned long long>(bits.value),
      static_cast<unsigned long long>(bits.mask));
}

RangeVal RangeCast32(const RangeVal& a) {
  RangeVal r;
  r.bits = BitsCast32(a.bits);
  if ((a.umin >> 32) == (a.umax >> 32)) {
    // The interval lies in one 2^32-aligned window: truncation preserves
    // order, so the truncated endpoints still bound it.
    r.umin = a.umin & kU32Max;
    r.umax = a.umax & kU32Max;
  } else {
    r.umin = 0;
    r.umax = kU32Max;
  }
  // A zero-extended 32-bit value is non-negative as a 64-bit signed int.
  r.smin = 0;
  r.smax = static_cast<s64>(kU32Max);
  r.Reduce();
  return r;
}

RangeVal RangeJoin(const RangeVal& a, const RangeVal& b) {
  RangeVal r;
  r.umin = std::min(a.umin, b.umin);
  r.umax = std::max(a.umax, b.umax);
  r.smin = std::min(a.smin, b.smin);
  r.smax = std::max(a.smax, b.smax);
  r.bits = BitsUnion(a.bits, b.bits);
  r.Reduce();
  return r;
}

RangeVal RangeAlu(u8 op, const RangeVal& a0, const RangeVal& b0,
                  bool is64) {
  const RangeVal a = is64 ? a0 : RangeCast32(a0);
  const RangeVal b = is64 ? b0 : RangeCast32(b0);
  const u32 shift_limit = is64 ? 64 : 32;
  RangeVal r;  // starts fully unknown

  switch (op) {
    case ebpf::BPF_ADD: {
      r.bits = BitsAdd(a.bits, b.bits);
      if (a.umax + b.umax >= a.umax) {  // no unsigned wrap at the top
        r.umin = a.umin + b.umin;
        r.umax = a.umax + b.umax;
      }
      s64 lo = 0, hi = 0;
      if (!__builtin_add_overflow(a.smin, b.smin, &lo) &&
          !__builtin_add_overflow(a.smax, b.smax, &hi)) {
        r.smin = lo;
        r.smax = hi;
      }
      break;
    }
    case ebpf::BPF_SUB: {
      r.bits = BitsSub(a.bits, b.bits);
      if (a.umin >= b.umax) {  // no unsigned underflow
        r.umin = a.umin - b.umax;
        r.umax = a.umax - b.umin;
      }
      s64 lo = 0, hi = 0;
      if (!__builtin_sub_overflow(a.smin, b.smax, &lo) &&
          !__builtin_sub_overflow(a.smax, b.smin, &hi)) {
        r.smin = lo;
        r.smax = hi;
      }
      break;
    }
    case ebpf::BPF_MUL:
      r.bits = BitsMul(a.bits, b.bits);
      if (a.umax <= kU32Max && b.umax <= kU32Max) {
        // Both operands fit 32 bits: the 64-bit product cannot wrap and
        // is monotone in both.
        r.umin = a.umin * b.umin;
        r.umax = a.umax * b.umax;
      }
      break;
    case ebpf::BPF_DIV:
      // Runtime semantics: x / 0 == 0 (the kernel's patched check).
      if (b.IsConst() && b.umin != 0) {
        r.umin = a.umin / b.umin;
        r.umax = a.umax / b.umin;
      } else {
        r.umin = 0;
        r.umax = a.umax;  // unsigned quotient never exceeds the dividend
      }
      break;
    case ebpf::BPF_MOD:
      // Runtime semantics: x % 0 == x.
      r.umin = 0;
      r.umax = a.umax;  // x % y <= x for unsigned x
      if (b.umin >= 1) {
        r.umax = std::min(r.umax, b.umax - 1);
      }
      break;
    case ebpf::BPF_AND:
      r.bits = BitsAnd(a.bits, b.bits);
      r.umin = 0;
      r.umax = std::min(a.umax, b.umax);
      break;
    case ebpf::BPF_OR:
      r.bits = BitsOr(a.bits, b.bits);
      r.umin = std::max(a.umin, b.umin);
      break;
    case ebpf::BPF_XOR:
      r.bits = BitsXor(a.bits, b.bits);
      break;
    case ebpf::BPF_LSH:
      if (b.IsConst() && b.umin < shift_limit) {
        const u8 shift = static_cast<u8>(b.umin);
        r.bits = BitsShl(a.bits, shift);
        if (a.umax <= (kU64Max >> shift)) {
          r.umin = a.umin << shift;
          r.umax = a.umax << shift;
        }
      }
      break;
    case ebpf::BPF_RSH:
      if (b.IsConst() && b.umin < shift_limit) {
        const u8 shift = static_cast<u8>(b.umin);
        r.bits = BitsLshr(a.bits, shift);
        r.umin = a.umin >> shift;
        r.umax = a.umax >> shift;
      } else {
        r.umin = 0;
        r.umax = a.umax;  // logical right shift never increases
      }
      break;
    case ebpf::BPF_ARSH:
      if (b.IsConst() && b.umin < shift_limit) {
        const u8 shift = static_cast<u8>(b.umin);
        r.bits = BitsAshr(a.bits, shift, is64);
        if (is64) {
          r.smin = a.smin >> shift;
          r.smax = a.smax >> shift;
          r.umin = 0;
          r.umax = kU64Max;
        } else if (a.umax <= 0x7fffffffull) {
          // Low word is non-negative as s32: arithmetic == logical.
          r.umin = a.umin >> shift;
          r.umax = a.umax >> shift;
        } else if (a.umin >= 0x80000000ull) {
          // Low word is negative as s32 throughout.
          const u32 lo = static_cast<u32>(
              static_cast<s32>(static_cast<u32>(a.umin)) >> shift);
          const u32 hi = static_cast<u32>(
              static_cast<s32>(static_cast<u32>(a.umax)) >> shift);
          r.umin = lo;
          r.umax = hi;
        }
      }
      break;
    default:
      return RangeVal::Unknown();
  }

  if (!is64) {
    return RangeCast32(r);
  }
  r.Reduce();
  return r;
}

namespace {

// In-place intersection for equality refinement; false when the two
// cannot describe the same value.
bool IntersectInto(RangeVal& dst, const RangeVal& other) {
  if (BitsConflict(dst.bits, other.bits)) {
    return false;
  }
  dst.umin = std::max(dst.umin, other.umin);
  dst.umax = std::min(dst.umax, other.umax);
  dst.smin = std::max(dst.smin, other.smin);
  dst.smax = std::min(dst.smax, other.smax);
  dst.bits = BitsIntersect(dst.bits, other.bits);
  dst.Reduce();
  return !dst.IsEmpty();
}

// Excludes a single known value from an interval by trimming matching
// endpoints (the only exclusion an interval can express).
void TrimNotEqual(RangeVal& r, u64 c) {
  if (r.umin == c && r.umin < r.umax) {
    ++r.umin;
  }
  if (r.umax == c && r.umax > r.umin) {
    --r.umax;
  }
  const s64 sc = static_cast<s64>(c);
  if (r.smin == sc && r.smin < r.smax) {
    ++r.smin;
  }
  if (r.smax == sc && r.smax > r.smin) {
    --r.smax;
  }
}

}  // namespace

bool RangeRefine(u8 jmp_op, bool is32, bool taken, RangeVal& dst,
                 RangeVal& src) {
  using namespace ebpf;  // NOLINT: opcode constants

  // JMP32 compares read the low 32 bits. The 64-bit intervals tracked
  // here can only be refined when the 64-bit value provably equals its
  // low word (upper bits zero) — otherwise a small low word can hide a
  // huge 64-bit value (kernel commit 3844d153; the jmp32_bounds defect
  // class). Signed 32-bit compares additionally need bit 31 clear so the
  // s32 view agrees with the s64 view.
  if (is32) {
    const bool signed_op = jmp_op == BPF_JSGT || jmp_op == BPF_JSGE ||
                           jmp_op == BPF_JSLT || jmp_op == BPF_JSLE;
    const u64 limit = signed_op ? 0x7fffffffull : kU32Max;
    if (dst.umax > limit || src.umax > limit) {
      return true;  // sound: conclude nothing about the 64-bit value
    }
  }

  bool feasible = true;
  switch (jmp_op) {
    case BPF_JEQ:
    case BPF_JNE: {
      const bool equal_edge = (jmp_op == BPF_JEQ) == taken;
      if (equal_edge) {
        const RangeVal dst_copy = dst;
        feasible = IntersectInto(dst, src) && IntersectInto(src, dst_copy);
      } else {
        if (dst.IsConst() && src.IsConst() && dst.umin == src.umin) {
          feasible = false;
        } else {
          if (src.IsConst()) {
            TrimNotEqual(dst, src.umin);
          }
          if (dst.IsConst()) {
            TrimNotEqual(src, dst.umin);
          }
        }
      }
      break;
    }
    case BPF_JGT:  // dst > src (unsigned)
      if (taken) {
        if (src.umin == kU64Max) {
          feasible = false;
          break;
        }
        dst.umin = std::max(dst.umin, src.umin + 1);
        if (dst.umax == 0) {
          feasible = false;
          break;
        }
        src.umax = std::min(src.umax, dst.umax - 1);
      } else {  // dst <= src
        dst.umax = std::min(dst.umax, src.umax);
        src.umin = std::max(src.umin, dst.umin);
      }
      break;
    case BPF_JGE:  // dst >= src
      if (taken) {
        dst.umin = std::max(dst.umin, src.umin);
        src.umax = std::min(src.umax, dst.umax);
      } else {  // dst < src
        if (src.umax == 0) {
          feasible = false;
          break;
        }
        dst.umax = std::min(dst.umax, src.umax - 1);
        if (dst.umin == kU64Max) {
          feasible = false;
          break;
        }
        src.umin = std::max(src.umin, dst.umin + 1);
      }
      break;
    case BPF_JLT:  // dst < src
      return RangeRefine(BPF_JGE, is32, !taken, dst, src);
    case BPF_JLE:  // dst <= src
      return RangeRefine(BPF_JGT, is32, !taken, dst, src);
    case BPF_JSGT:  // dst > src (signed)
      if (taken) {
        if (src.smin == kS64Max) {
          feasible = false;
          break;
        }
        dst.smin = std::max(dst.smin, src.smin + 1);
        if (dst.smax == kS64Min) {
          feasible = false;
          break;
        }
        src.smax = std::min(src.smax, dst.smax - 1);
      } else {  // dst <= src
        dst.smax = std::min(dst.smax, src.smax);
        src.smin = std::max(src.smin, dst.smin);
      }
      break;
    case BPF_JSGE:  // dst >= src (signed)
      if (taken) {
        dst.smin = std::max(dst.smin, src.smin);
        src.smax = std::min(src.smax, dst.smax);
      } else {  // dst < src
        if (src.smax == kS64Min) {
          feasible = false;
          break;
        }
        dst.smax = std::min(dst.smax, src.smax - 1);
        if (dst.smin == kS64Max) {
          feasible = false;
          break;
        }
        src.smin = std::max(src.smin, dst.smin + 1);
      }
      break;
    case BPF_JSLT:  // dst < src (signed)
      return RangeRefine(BPF_JSGE, is32, !taken, dst, src);
    case BPF_JSLE:  // dst <= src (signed)
      return RangeRefine(BPF_JSGT, is32, !taken, dst, src);
    case BPF_JSET:  // (dst & src) != 0 on the taken edge
      if (src.IsConst() && src.umin != 0) {
        const u64 c = src.umin;
        if (taken) {
          // At least one tested bit is set, so the value is at least the
          // lowest tested bit.
          dst.umin = std::max(dst.umin, c & (~c + 1));
          if ((c & (c - 1)) == 0) {
            // Exactly one tested bit: it is known 1.
            dst.bits.value |= c;
            dst.bits.mask &= ~c;
          }
        } else {
          // Every tested bit is zero.
          if ((dst.bits.value & c) != 0) {
            feasible = false;  // a tested bit was known 1
            break;
          }
          dst.bits.value &= ~c;
          dst.bits.mask &= ~c;
        }
      }
      break;
    default:
      return true;
  }

  if (!feasible) {
    return false;
  }
  dst.Reduce();
  src.Reduce();
  return !dst.IsEmpty() && !src.IsEmpty();
}

}  // namespace staticcheck

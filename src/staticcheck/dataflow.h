// Forward dataflow over registers and stack slots: a join-lattice abstract
// interpretation that is deliberately simpler (and independently
// implemented) from the verifier's path enumeration. Path-INsensitive by
// design: states merge at join points instead of forking per path, so the
// analysis terminates in O(blocks) regardless of branch count — and sees
// code the path-sensitive verifier prunes away (constant-folded branches).
//
// Checks: use-before-init (registers and stack bytes), map-value pointer
// arithmetic escaping the value bounds, dereference of unchecked
// maybe-NULL pointers, helper argument arity/type/NULL against
// HelperRegistry specs, acquired-reference leaks at exit, and pointer
// values leaking through R0 at exit.
#pragma once

#include <array>
#include <vector>

#include "src/staticcheck/cfg.h"
#include "src/staticcheck/memdom.h"
#include "src/staticcheck/range.h"
#include "src/staticcheck/zone.h"

namespace staticcheck {

// An open acquire obligation (socket reference etc.).
struct RefObligation {
  u32 id = 0;          // matches AbsVal::id of the holding value
  u32 acquire_pc = 0;
  u32 helper_id = 0;
  bool operator==(const RefObligation&) const = default;
};

struct DfState {
  bool valid = false;  // false = unreached (bottom)
  // True when every path reaching this state crosses a branch edge the
  // range refinement proved infeasible. Checks still run (staticcheck
  // deliberately analyzes code a path-sensitive verifier would prune),
  // but range-trace claims are withheld: a claim about an unreachable pc
  // is vacuous and would produce false range divergences.
  bool range_dead = false;
  std::array<AbsVal, ebpf::kNumRegs> regs;
  // Per-byte init tracking of the 512-byte stack frame; index 0 is the
  // deepest byte (R10-512), index 511 is R10-1.
  std::array<u8, ebpf::kMaxStackBytes> stack_init = {};
  // Typed slot contents (spill/fill tracking); refines stack_init.
  StackDom stack;
  // Relational constraints over registers and tracked slots.
  Zone zone;
  std::vector<RefObligation> refs;  // sorted by id
  bool operator==(const DfState&) const = default;
};

struct DataflowResult {
  bool complete = true;  // false if the iteration budget was exhausted
  u32 iterations = 0;    // worklist pops until fixpoint
};

// Runs the pass over every reachable block, appending findings.
DataflowResult RunDataflow(const ebpf::Program& prog, const Cfg& cfg,
                           const CheckOptions& opts,
                           std::vector<Finding>& findings);

}  // namespace staticcheck

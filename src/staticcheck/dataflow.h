// Forward dataflow over registers and stack slots: a join-lattice abstract
// interpretation that is deliberately simpler (and independently
// implemented) from the verifier's path enumeration. Path-INsensitive by
// design: states merge at join points instead of forking per path, so the
// analysis terminates in O(blocks) regardless of branch count — and sees
// code the path-sensitive verifier prunes away (constant-folded branches).
//
// Checks: use-before-init (registers and stack bytes), map-value pointer
// arithmetic escaping the value bounds, dereference of unchecked
// maybe-NULL pointers, helper argument arity/type/NULL against
// HelperRegistry specs, acquired-reference leaks at exit, and pointer
// values leaking through R0 at exit.
#pragma once

#include <array>
#include <vector>

#include "src/staticcheck/cfg.h"
#include "src/staticcheck/range.h"

namespace staticcheck {

// Abstract value kinds. kTop is "initialized, nothing else known".
enum class VK : u8 {
  kUninit = 0,
  kTop,
  kConst,    // fully-known 64-bit scalar
  kCtx,      // the context pointer (R1 at entry)
  kStack,    // frame pointer with a fixed byte offset
  kMapPtr,   // ld_imm64 map reference
  kMapVal,   // pointer into a map value
  kMem,      // helper-provided memory (ringbuf record)
  kSock,     // socket object pointer
  kTask,     // task_struct pointer
  kFunc,     // callback reference
};

inline bool IsPointerKind(VK kind) {
  return kind >= VK::kCtx && kind <= VK::kTask;
}

struct AbsVal {
  VK kind = VK::kUninit;
  bool or_null = false;  // pointer kinds: may still be NULL
  bool var_off = false;  // pointer offset includes an unknown scalar
  s64 off_min = 0;       // pointer offset range (kStack/kMapVal/kMem)
  s64 off_max = 0;
  u64 cval = 0;          // kConst
  int map_fd = -1;       // kMapPtr/kMapVal
  u32 mem_size = 0;      // kMem
  u32 id = 0;            // null-refinement / reference join key
  // Numeric range claim; meaningful for kTop/kConst scalars only (kConst
  // keeps rng == RangeVal::Const(cval) as an invariant).
  RangeVal rng;
  bool operator==(const AbsVal&) const = default;
};

// An open acquire obligation (socket reference etc.).
struct RefObligation {
  u32 id = 0;          // matches AbsVal::id of the holding value
  u32 acquire_pc = 0;
  u32 helper_id = 0;
  bool operator==(const RefObligation&) const = default;
};

struct DfState {
  bool valid = false;  // false = unreached (bottom)
  // True when every path reaching this state crosses a branch edge the
  // range refinement proved infeasible. Checks still run (staticcheck
  // deliberately analyzes code a path-sensitive verifier would prune),
  // but range-trace claims are withheld: a claim about an unreachable pc
  // is vacuous and would produce false range divergences.
  bool range_dead = false;
  std::array<AbsVal, ebpf::kNumRegs> regs;
  // Per-byte init tracking of the 512-byte stack frame; index 0 is the
  // deepest byte (R10-512), index 511 is R10-1.
  std::array<u8, ebpf::kMaxStackBytes> stack_init = {};
  std::vector<RefObligation> refs;  // sorted by id
  bool operator==(const DfState&) const = default;
};

struct DataflowResult {
  bool complete = true;  // false if the iteration budget was exhausted
};

// Runs the pass over every reachable block, appending findings.
DataflowResult RunDataflow(const ebpf::Program& prog, const Cfg& cfg,
                           const CheckOptions& opts,
                           std::vector<Finding>& findings);

}  // namespace staticcheck

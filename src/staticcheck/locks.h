// Lock-order analysis: projects bpf_spin_lock acquisition depth across
// every CFG path as a [min,max] interval per block, flagging double
// acquisition, unbalanced release, lock-held-at-exit, and helper calls
// made under a held lock — escalated to errors when the helper's kernel
// call graph (analysis/callgraph) is wide enough to plausibly re-enter
// the locked region or sleep.
#pragma once

#include <vector>

#include "src/staticcheck/cfg.h"

namespace staticcheck {

void RunLocks(const ebpf::Program& prog, const Cfg& cfg,
              const CheckOptions& opts, std::vector<Finding>& findings);

}  // namespace staticcheck

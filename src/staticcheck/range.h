// The staticcheck numeric abstract domain: a reduced product of three
// components tracked per scalar register —
//
//   bits   known-bits (tnum shape: value/mask),
//   u      unsigned 64-bit interval [umin, umax],
//   s      signed 64-bit interval [smin, smax],
//
// with mutual reduction between the three (Reduce) and explicit widening
// for loop heads (Widen). This is an independent reimplementation of the
// same abstraction family the kernel verifier uses (tnums descend from
// Vishwanathan et al.; the interval trio from the verifier's reg bounds):
// independence is the point — a bug in the verifier's arithmetic and a bug
// here would have to coincide to escape the differential oracle, so
// nothing in this file may include verifier headers or src/ebpf/tnum.h.
//
// Soundness contract (what rangefuzz checks against concrete execution):
// if a register abstractly evaluates to RangeVal r at pc, then every
// concrete value v the register can hold at pc satisfies r.Contains(v).
#pragma once

#include <string>

#include "src/xbase/types.h"

namespace staticcheck {

using xbase::s64;
using xbase::u32;
using xbase::u64;
using xbase::u8;

// Known-bits component. Invariant: (value & mask) == 0 — a bit is either
// known (mask 0, given by value) or unknown (mask 1, value 0).
struct KnownBits {
  u64 value = 0;
  u64 mask = ~u64{0};

  bool IsConst() const { return mask == 0; }
  bool Contains(u64 v) const { return ((v ^ value) & ~mask) == 0; }
  bool operator==(const KnownBits&) const = default;
};

KnownBits BitsConst(u64 value);
KnownBits BitsUnknown();
// The minimal known-bits value admitting every integer in [min, max].
KnownBits BitsRange(u64 min, u64 max);
KnownBits BitsAdd(KnownBits a, KnownBits b);
KnownBits BitsSub(KnownBits a, KnownBits b);
KnownBits BitsAnd(KnownBits a, KnownBits b);
KnownBits BitsOr(KnownBits a, KnownBits b);
KnownBits BitsXor(KnownBits a, KnownBits b);
KnownBits BitsMul(KnownBits a, KnownBits b);
KnownBits BitsShl(KnownBits a, u8 shift);
KnownBits BitsLshr(KnownBits a, u8 shift);
// Arithmetic shift right at the given bitness (64 or 32): the shifted-in
// bits copy the sign bit, which is known only if the sign bit is known.
KnownBits BitsAshr(KnownBits a, u8 shift, bool is64);
// Truncation to the low 32 bits (the high 32 become known-zero).
KnownBits BitsCast32(KnownBits a);
// Assumes the operands agree on commonly-known bits (both abstract the
// same concrete value); keeps every bit either side knows.
KnownBits BitsIntersect(KnownBits a, KnownBits b);
// Union: keeps only bits both sides know and agree on.
KnownBits BitsUnion(KnownBits a, KnownBits b);

struct RangeVal {
  u64 umin = 0;
  u64 umax = ~u64{0};
  s64 smin = s64{-1} - s64{0x7fffffffffffffff};  // kS64Min
  s64 smax = s64{0x7fffffffffffffff};
  KnownBits bits;

  static RangeVal Unknown() { return RangeVal{}; }
  static RangeVal Const(u64 v);
  static RangeVal FromU(u64 lo, u64 hi);

  bool IsConst() const { return umin == umax && bits.IsConst(); }
  // Contradictory component intervals: no concrete value satisfies the
  // claim. Only refinement along an infeasible branch edge produces this.
  bool IsEmpty() const { return umin > umax || smin > smax; }
  bool Contains(u64 v) const {
    return v >= umin && v <= umax && static_cast<s64>(v) >= smin &&
           static_cast<s64>(v) <= smax && bits.Contains(v);
  }
  // Mutual reduction: each component tightens the others (bits -> u,
  // u <-> s, u -> bits). Idempotent after two rounds; called by every
  // transfer function before returning.
  void Reduce();

  std::string ToString() const;
  bool operator==(const RangeVal&) const = default;
};

// Transfer function for one ALU op (BPF_ADD..BPF_ARSH, BPF_NEG handled by
// the caller as 0-b). For !is64 both operands are truncated first and the
// result is truncated after, matching the interpreter's 32-bit semantics.
RangeVal RangeAlu(u8 op, const RangeVal& a, const RangeVal& b, bool is64);

// Truncation to 32 bits (MOV32 and every ALU32 result).
RangeVal RangeCast32(const RangeVal& a);

// Join (least upper bound) for the dataflow merge.
RangeVal RangeJoin(const RangeVal& a, const RangeVal& b);

// Refines `dst` (and, for register comparands, `src`) along one edge of a
// conditional branch: `taken` selects the branch direction, `is32`
// selects JMP32 semantics (the comparison reads the low 32 bits only — a
// 32-bit compare refines the 64-bit state only when the upper 32 bits are
// provably zero, the soundness subtlety behind kernel commit 3844d153).
// Returns false when the refined ranges are contradictory, i.e. the edge
// is infeasible.
bool RangeRefine(u8 jmp_op, bool is32, bool taken, RangeVal& dst,
                 RangeVal& src);

}  // namespace staticcheck

#include "src/staticcheck/dataflow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "src/xbase/strfmt.h"

namespace staticcheck {

namespace {

using ebpf::Insn;
using xbase::s32;
using xbase::StrFormat;

constexpr s64 kWideMin = std::numeric_limits<s64>::min() / 4;
constexpr s64 kWideMax = std::numeric_limits<s64>::max() / 4;
constexpr u32 kMergeWidenThreshold = 16;
constexpr s64 kStackBytes = static_cast<s64>(ebpf::kMaxStackBytes);

AbsVal TopVal() {
  AbsVal val;
  val.kind = VK::kTop;
  return val;
}

AbsVal ConstVal(u64 value) {
  AbsVal val;
  val.kind = VK::kConst;
  val.cval = value;
  val.rng = RangeVal::Const(value);
  return val;
}

bool IsScalarKind(VK kind) { return kind == VK::kTop || kind == VK::kConst; }

// The range claim of a scalar abstract value (Unknown for anything else,
// so callers stay sound without checking kinds twice).
RangeVal RngOf(const AbsVal& v) {
  if (v.kind == VK::kConst) {
    return RangeVal::Const(v.cval);
  }
  if (v.kind == VK::kTop) {
    return v.rng;
  }
  return RangeVal::Unknown();
}

// Installs a (refined) range into a scalar value, upgrading to kConst when
// the range pins a single value.
void SetScalarRng(AbsVal& reg, const RangeVal& rng) {
  if (reg.kind == VK::kConst) {
    return;  // already width zero; refinement cannot narrow further
  }
  if (rng.IsConst()) {
    reg = ConstVal(rng.umin);
    return;
  }
  if (reg.kind == VK::kTop) {
    reg.rng = rng;
  }
}

// Join of two abstract values (least upper bound, approximately).
AbsVal MergeVal(const AbsVal& a, const AbsVal& b) {
  if (a == b) {
    return a;
  }
  if (a.kind == VK::kUninit || b.kind == VK::kUninit) {
    // "maybe uninitialized" degrades to kTop: only *definitely*
    // uninitialized reads are reported, which keeps the lint quiet on
    // programs the verifier accepts path-sensitively.
    return TopVal();
  }
  // NULL-refined branches rejoining their pointer: keep the pointer, set
  // the maybe-NULL bit again.
  const auto null_merge = [](const AbsVal& ptr) -> AbsVal {
    AbsVal out = ptr;
    out.or_null = true;
    return out;
  };
  if (IsPointerKind(a.kind) && b.kind == VK::kConst && b.cval == 0) {
    return null_merge(a);
  }
  if (IsPointerKind(b.kind) && a.kind == VK::kConst && a.cval == 0) {
    return null_merge(b);
  }
  // Scalars (known-constant or not) keep a joined numeric range instead of
  // degrading to a bare kTop.
  if (IsScalarKind(a.kind) && IsScalarKind(b.kind)) {
    AbsVal out = TopVal();
    out.rng = RangeJoin(RngOf(a), RngOf(b));
    if (out.rng.IsConst()) {
      out = ConstVal(out.rng.umin);
    }
    return out;
  }
  if (a.kind != b.kind) {
    return TopVal();
  }
  AbsVal out = a;
  out.or_null = a.or_null || b.or_null;
  out.var_off = a.var_off || b.var_off;
  out.off_min = std::min(a.off_min, b.off_min);
  out.off_max = std::max(a.off_max, b.off_max);
  if (a.map_fd != b.map_fd) {
    // Pointer into one of several maps: bounds can no longer be checked.
    out.map_fd = -1;
    out.var_off = true;
  }
  if (a.mem_size != b.mem_size) {
    out.mem_size = 0;
  }
  if (a.id != b.id) {
    out.id = 0;
  }
  return out;
}

// Join of two whole states; `widen` forces offset ranges open so loops
// converge.
DfState MergeState(const DfState& a, const DfState& b, bool widen) {
  DfState out;
  out.valid = true;
  // Dead only while *every* incoming edge is range-infeasible.
  out.range_dead = a.range_dead && b.range_dead;
  for (int i = 0; i < ebpf::kNumRegs; ++i) {
    out.regs[i] = MergeVal(a.regs[i], b.regs[i]);
    if (widen && IsPointerKind(out.regs[i].kind) &&
        (out.regs[i].off_min != a.regs[i].off_min ||
         out.regs[i].off_max != a.regs[i].off_max)) {
      out.regs[i].off_min = kWideMin;
      out.regs[i].off_max = kWideMax;
      out.regs[i].var_off = true;
    }
    if (widen && out.regs[i].kind == VK::kConst &&
        out.regs[i] != a.regs[i]) {
      out.regs[i] = TopVal();
    }
    // Ranges form infinite ascending chains; a still-growing range at a
    // widening point jumps straight to Unknown so loops converge.
    if (widen && out.regs[i].kind == VK::kTop &&
        !(RngOf(out.regs[i]) == RngOf(a.regs[i]))) {
      out.regs[i].rng = RangeVal::Unknown();
    }
  }
  for (xbase::usize i = 0; i < out.stack_init.size(); ++i) {
    out.stack_init[i] =
        static_cast<u8>(a.stack_init[i] != 0 && b.stack_init[i] != 0);
  }
  // Union of obligations: a reference open on *some* path must still be
  // released on every path that reaches exit.
  out.refs = a.refs;
  for (const RefObligation& ref : b.refs) {
    const auto same_id = [&ref](const RefObligation& other) {
      return other.id == ref.id;
    };
    if (std::find_if(out.refs.begin(), out.refs.end(), same_id) ==
        out.refs.end()) {
      out.refs.push_back(ref);
    }
  }
  std::sort(out.refs.begin(), out.refs.end(),
            [](const RefObligation& x, const RefObligation& y) {
              return x.id < y.id;
            });
  return out;
}

// The pass engine: per-block input states + a deduplicating finding sink.
class Dataflow {
 public:
  Dataflow(const ebpf::Program& prog, const Cfg& cfg,
           const CheckOptions& opts, std::vector<Finding>& findings)
      : prog_(prog), cfg_(cfg), opts_(opts), findings_(findings) {}

  DataflowResult Run();

 private:
  void Report(Severity severity, u32 pc, std::string_view rule,
              std::string message) {
    if (!reported_.insert({std::string(rule), pc}).second) {
      return;
    }
    Finding finding;
    finding.pass = Pass::kDataflow;
    finding.severity = severity;
    finding.pc = pc;
    finding.rule = std::string(rule);
    finding.message = std::move(message);
    findings_.push_back(std::move(finding));
  }

  // Marks a register as consumed; reports a definite use-before-init.
  void Use(DfState& state, u8 regno, u32 pc) {
    AbsVal& reg = state.regs[regno];
    if (reg.kind == VK::kUninit) {
      Report(Severity::kError, pc, "use-before-init",
             StrFormat("R%d is read but never written on any path", regno));
      reg = TopVal();  // stop the cascade
    }
  }

  void WriteReg(DfState& state, u8 regno, AbsVal value, u32 pc) {
    if (regno == ebpf::R10) {
      Report(Severity::kError, pc, "r10-write",
             "the frame pointer R10 is read-only");
      return;
    }
    state.regs[regno] = std::move(value);
  }

  u32 MapValueSize(int map_fd) const {
    if (opts_.maps == nullptr || map_fd < 0) {
      return 0;
    }
    auto map = opts_.maps->Find(map_fd);
    return map.ok() ? map.value()->spec().value_size : 0;
  }

  u32 MapKeySize(int map_fd) const {
    if (opts_.maps == nullptr || map_fd < 0) {
      return 0;
    }
    auto map = opts_.maps->Find(map_fd);
    return map.ok() ? map.value()->spec().key_size : 0;
  }

  void CheckMemAccess(DfState& state, const AbsVal& base, s64 insn_off,
                      u32 size, bool is_write, u32 pc);
  void MarkStackBytes(DfState& state, const AbsVal& base, s64 insn_off,
                      u32 size);
  void CheckStackInit(const DfState& state, const AbsVal& base, u32 size,
                      u32 pc, std::string_view what);
  void CheckNullArg(const AbsVal& reg, int argno,
                    const ebpf::HelperSpec& spec, u32 pc);
  void HelperCall(DfState& state, u32 pc, s32 helper_id);
  void TransferAlu(DfState& state, const Insn& insn, u32 pc);
  void Transfer(DfState& state, u32 pc);
  void CheckExit(const DfState& state, u32 pc);
  void Propagate(u32 block, DfState&& out);
  void RecordTrace();
  // Applies NULL refinement for `id`: on the null side the pointer becomes
  // the constant 0 and its acquire obligation disappears.
  static void RefineNull(DfState& state, u32 id, bool is_null);

  const ebpf::Program& prog_;
  const Cfg& cfg_;
  const CheckOptions& opts_;
  std::vector<Finding>& findings_;
  std::set<std::pair<std::string, u32>> reported_;
  std::vector<DfState> in_;
  std::vector<u32> merge_count_;
  std::deque<u32> worklist_;
};

void Dataflow::RefineNull(DfState& state, u32 id, bool is_null) {
  if (id == 0) {
    return;
  }
  for (AbsVal& reg : state.regs) {
    if (IsPointerKind(reg.kind) && reg.id == id) {
      if (is_null) {
        reg = ConstVal(0);
      } else {
        reg.or_null = false;
      }
    }
  }
  if (is_null) {
    std::erase_if(state.refs, [id](const RefObligation& ref) {
      return ref.id == id;
    });
  }
}

void Dataflow::MarkStackBytes(DfState& state, const AbsVal& base,
                              s64 insn_off, u32 size) {
  if (base.var_off || base.off_min != base.off_max) {
    return;  // imprecise writes mark nothing (under-approximation)
  }
  const s64 start = base.off_min + insn_off + kStackBytes;
  for (u32 i = 0; i < size; ++i) {
    const s64 byte = start + i;
    if (byte >= 0 && byte < kStackBytes) {
      state.stack_init[static_cast<xbase::usize>(byte)] = 1;
    }
  }
}

void Dataflow::CheckStackInit(const DfState& state, const AbsVal& base,
                              u32 size, u32 pc, std::string_view what) {
  if (base.var_off || base.off_min != base.off_max) {
    return;
  }
  const s64 start = base.off_min + kStackBytes;
  for (u32 i = 0; i < size; ++i) {
    const s64 byte = start + i;
    if (byte < 0 || byte >= kStackBytes) {
      return;  // bounds reported separately
    }
    if (state.stack_init[static_cast<xbase::usize>(byte)] == 0) {
      Report(Severity::kWarning, pc, "stack-uninit-read",
             StrFormat("%.*s reads stack byte fp%lld which may be "
                       "uninitialized",
                       static_cast<int>(what.size()), what.data(),
                       static_cast<long long>(base.off_min + i)));
      return;
    }
  }
}

void Dataflow::CheckMemAccess(DfState& state, const AbsVal& base,
                              s64 insn_off, u32 size, bool is_write,
                              u32 pc) {
  switch (base.kind) {
    case VK::kUninit:
    case VK::kTop:
    case VK::kFunc:
      return;  // uninit reported by Use(); kTop is unknowable
    case VK::kConst:
      Report(Severity::kError, pc,
             base.cval == 0 ? "null-deref" : "const-deref",
             StrFormat("memory access through constant address 0x%llx",
                       static_cast<unsigned long long>(base.cval)));
      return;
    case VK::kStack: {
      if (base.var_off) {
        Report(Severity::kWarning, pc, "stack-var-off",
               "stack access at a variable offset");
        return;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < -kStackBytes || hi > 0) {
        Report(Severity::kError, pc, "stack-oob",
               StrFormat("stack access at fp%lld size %u is outside the "
                         "%lld-byte frame",
                         static_cast<long long>(lo), size,
                         static_cast<long long>(kStackBytes)));
        return;
      }
      if (is_write) {
        MarkStackBytes(state, base, insn_off, size);
      } else {
        AbsVal shifted = base;
        shifted.off_min += insn_off;
        shifted.off_max += insn_off;
        CheckStackInit(state, shifted, size, pc, "load");
      }
      return;
    }
    case VK::kMapVal: {
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "map value pointer may be NULL (no null check on this "
               "path)");
        return;
      }
      const u32 value_size = MapValueSize(base.map_fd);
      if (value_size == 0) {
        return;  // no map table available
      }
      if (base.var_off) {
        Report(Severity::kWarning, pc, "map-value-var-off",
               "map value accessed at a statically unbounded offset");
        return;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < 0 || hi > static_cast<s64>(value_size)) {
        Report(Severity::kError, pc, "map-value-oob",
               StrFormat("access at offset [%lld,%lld) escapes the %u-byte "
                         "map value",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi), value_size));
      }
      return;
    }
    case VK::kMem: {
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "helper-provided memory may be NULL (no null check on this "
               "path)");
        return;
      }
      if (base.mem_size == 0 || base.var_off) {
        return;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < 0 || hi > static_cast<s64>(base.mem_size)) {
        Report(Severity::kError, pc, "mem-oob",
               StrFormat("access at offset [%lld,%lld) escapes the %u-byte "
                         "memory region",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi), base.mem_size));
      }
      return;
    }
    case VK::kCtx:
      if (base.off_min + insn_off < 0) {
        Report(Severity::kWarning, pc, "ctx-oob",
               "context accessed at a negative offset");
      }
      return;
    case VK::kMapPtr:
      Report(Severity::kWarning, pc, "map-ptr-deref",
             "direct dereference of a map object pointer");
      return;
    case VK::kSock:
    case VK::kTask:
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "object pointer may be NULL (no null check on this path)");
      }
      return;
  }
}

void Dataflow::CheckNullArg(const AbsVal& reg, int argno,
                            const ebpf::HelperSpec& spec, u32 pc) {
  if (reg.kind == VK::kConst && reg.cval == 0) {
    Report(Severity::kError, pc, "null-arg",
           StrFormat("NULL passed as pointer argument %d of %s", argno,
                     spec.name.c_str()));
    return;
  }
  if (IsPointerKind(reg.kind) && reg.or_null) {
    Report(Severity::kWarning, pc, "maybe-null-arg",
           StrFormat("argument %d of %s may be NULL (no null check)",
                     argno, spec.name.c_str()));
  }
}

void Dataflow::HelperCall(DfState& state, u32 pc, s32 helper_id) {
  const ebpf::HelperSpec* spec = nullptr;
  if (opts_.helpers != nullptr) {
    auto found = opts_.helpers->FindSpec(static_cast<u32>(helper_id));
    if (found.ok()) {
      spec = found.value();
    } else {
      Report(Severity::kError, pc, "unknown-helper",
             StrFormat("call to unregistered helper id %d", helper_id));
    }
  }

  int map_arg_fd = -1;
  if (spec != nullptr) {
    for (int i = 0; i < 5; ++i) {
      const ebpf::ArgType arg = spec->args[static_cast<xbase::usize>(i)];
      if (arg == ebpf::ArgType::kNone) {
        break;
      }
      const u8 regno = static_cast<u8>(ebpf::R1 + i);
      AbsVal& reg = state.regs[regno];
      if (reg.kind == VK::kUninit) {
        Report(Severity::kError, pc, "helper-arg-uninit",
               StrFormat("R%d (argument %d of %s) is uninitialized", regno,
                         i + 1, spec->name.c_str()));
        reg = TopVal();
        continue;
      }
      // The size a kPtrToMem/kPtrToUninitMem argument covers, when the
      // paired kMemSize argument is a known constant.
      u32 mem_span = 0;
      if (i + 1 < 5 &&
          spec->args[static_cast<xbase::usize>(i + 1)] ==
              ebpf::ArgType::kMemSize &&
          state.regs[regno + 1].kind == VK::kConst) {
        mem_span = static_cast<u32>(state.regs[regno + 1].cval);
      }
      switch (arg) {
        case ebpf::ArgType::kNone:
        case ebpf::ArgType::kAnything:
        case ebpf::ArgType::kMemSize:
          break;
        case ebpf::ArgType::kConstMapPtr:
          if (reg.kind == VK::kMapPtr) {
            map_arg_fd = reg.map_fd;
          } else if (reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a map reference",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kMapKey:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack) {
            CheckStackInit(state, reg, MapKeySize(map_arg_fd), pc,
                           spec->name);
          }
          break;
        case ebpf::ArgType::kMapValue:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack) {
            CheckStackInit(state, reg, MapValueSize(map_arg_fd), pc,
                           spec->name);
          }
          break;
        case ebpf::ArgType::kPtrToMem:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack && mem_span > 0) {
            CheckStackInit(state, reg, mem_span, pc, spec->name);
          }
          break;
        case ebpf::ArgType::kPtrToUninitMem:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack && mem_span > 0) {
            MarkStackBytes(state, reg, 0, mem_span);  // the helper fills it
          }
          break;
        case ebpf::ArgType::kCtx:
          if (reg.kind != VK::kCtx && reg.kind != VK::kTop) {
            Report(Severity::kWarning, pc, "helper-arg-type",
                   StrFormat("argument %d of %s should be the context "
                             "pointer",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kScalar:
          if (IsPointerKind(reg.kind)) {
            Report(Severity::kWarning, pc, "ptr-as-scalar-arg",
                   StrFormat("pointer passed as scalar argument %d of %s "
                             "(potential address leak)",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kSock:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind != VK::kSock && reg.kind != VK::kTop &&
              !(reg.kind == VK::kConst && reg.cval == 0)) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a socket", i + 1,
                             spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kTask:
          CheckNullArg(reg, i + 1, *spec, pc);
          break;
        case ebpf::ArgType::kSpinLock:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind != VK::kMapVal && reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must point into a map "
                             "value",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kFunc:
          if (reg.kind != VK::kFunc && reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a callback "
                             "reference",
                             i + 1, spec->name.c_str()));
          }
          break;
      }
    }
    if (spec->releases_ref_arg != 0) {
      const u8 regno =
          static_cast<u8>(ebpf::R1 + spec->releases_ref_arg - 1);
      const u32 id = state.regs[regno].id;
      const auto matches = [id](const RefObligation& ref) {
        return ref.id == id;
      };
      if (id != 0 && std::find_if(state.refs.begin(), state.refs.end(),
                                  matches) != state.refs.end()) {
        std::erase_if(state.refs, matches);
      } else {
        Report(Severity::kWarning, pc, "release-unacquired",
               StrFormat("%s releases an object this program did not "
                         "acquire",
                         spec->name.c_str()));
      }
    }
  }

  // Caller-saved registers are clobbered; R0 carries the abstract return.
  for (u8 regno = ebpf::R1; regno <= ebpf::R5; ++regno) {
    state.regs[regno] = AbsVal{};
  }
  AbsVal ret = TopVal();
  if (spec != nullptr) {
    const u32 id = pc + 1;
    switch (spec->ret) {
      case ebpf::RetType::kInteger:
        break;
      case ebpf::RetType::kVoid:
        ret = AbsVal{};  // reading R0 after a void helper is a bug
        break;
      case ebpf::RetType::kMapValueOrNull:
        ret.kind = VK::kMapVal;
        ret.or_null = true;
        ret.map_fd = map_arg_fd;
        ret.id = id;
        break;
      case ebpf::RetType::kSockOrNull:
        ret.kind = VK::kSock;
        ret.or_null = true;
        ret.id = id;
        break;
      case ebpf::RetType::kTaskOrNull:
        ret.kind = VK::kTask;
        ret.or_null = true;
        ret.id = id;
        break;
      case ebpf::RetType::kMemOrNull:
        ret.kind = VK::kMem;
        ret.or_null = true;
        ret.id = id;
        break;
    }
    if (spec->acquires_ref) {
      RefObligation ref;
      ref.id = id;
      ref.acquire_pc = pc;
      ref.helper_id = spec->id;
      state.refs.push_back(ref);
    }
  }
  state.regs[ebpf::R0] = ret;
}

void Dataflow::TransferAlu(DfState& state, const Insn& insn, u32 pc) {
  const bool is64 = insn.Class() == ebpf::BPF_ALU64;
  const u8 op = insn.AluOp();
  const u8 dst = insn.dst;

  if (op == ebpf::BPF_END) {
    Use(state, dst, pc);
    AbsVal out = TopVal();
    // Whatever the byte order, the result fits the swap width.
    if (insn.imm == 16) {
      out.rng = RangeVal::FromU(0, 0xffff);
    } else if (insn.imm == 32) {
      out.rng = RangeVal::FromU(0, 0xffffffffu);
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }
  if (op == ebpf::BPF_NEG) {
    Use(state, dst, pc);
    AbsVal& reg = state.regs[dst];
    AbsVal out = TopVal();
    if (IsScalarKind(reg.kind)) {
      out.rng =
          RangeAlu(ebpf::BPF_SUB, RangeVal::Const(0), RngOf(reg), is64);
      if (out.rng.IsConst()) {
        out = ConstVal(out.rng.umin);
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  // Resolve the source operand.
  AbsVal src;
  if (insn.UsesRegSrc()) {
    Use(state, insn.src, pc);
    src = state.regs[insn.src];
  } else {
    src = ConstVal(is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                        : static_cast<u64>(static_cast<u32>(insn.imm)));
  }

  if (op == ebpf::BPF_MOV) {
    AbsVal out = src;
    if (!is64) {
      // A 32-bit move truncates: pointers degrade to scalars.
      if (out.kind == VK::kConst) {
        out = ConstVal(src.cval & 0xffffffffu);
      } else {
        out = TopVal();
        out.rng = RangeCast32(RngOf(src));
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  Use(state, dst, pc);
  AbsVal& lhs = state.regs[dst];

  // Pointer +- constant adjusts the tracked offset range.
  if ((op == ebpf::BPF_ADD || op == ebpf::BPF_SUB) && is64 &&
      IsPointerKind(lhs.kind)) {
    AbsVal out = lhs;
    if (src.kind == VK::kConst) {
      const s64 delta = static_cast<s64>(src.cval);
      out.off_min += op == ebpf::BPF_ADD ? delta : -delta;
      out.off_max += op == ebpf::BPF_ADD ? delta : -delta;
    } else if (IsPointerKind(src.kind)) {
      out = TopVal();  // ptr - ptr is a scalar distance
    } else {
      // A *bounded* unknown scalar folds into the offset interval, so the
      // downstream map-value / kMem bounds checks see the refined range
      // instead of a kind-only var_off giveup.
      const RangeVal sr = RngOf(src);
      // Wide enough to keep a full u32-range index foldable (the
      // CVE-2020-8835 witness needs [0, 2^32-1] to stay an interval, not
      // a var_off giveup); accumulated offsets stay far below s64 range.
      constexpr s64 kFoldLimit = s64{1} << 33;
      if (src.kind == VK::kTop && sr.smin >= -kFoldLimit &&
          sr.smax <= kFoldLimit) {
        out.off_min += op == ebpf::BPF_ADD ? sr.smin : -sr.smax;
        out.off_max += op == ebpf::BPF_ADD ? sr.smax : -sr.smin;
      } else {
        out.var_off = true;  // unbounded scalar poisons the offset
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  // Constant folding for scalar-scalar arithmetic.
  if (lhs.kind == VK::kConst && src.kind == VK::kConst) {
    u64 a = lhs.cval;
    u64 b = src.cval;
    if (!is64) {
      a &= 0xffffffffu;
      b &= 0xffffffffu;
    }
    u64 result = 0;
    bool folded = true;
    const u64 shift_mask = is64 ? 63 : 31;
    switch (op) {
      case ebpf::BPF_ADD: result = a + b; break;
      case ebpf::BPF_SUB: result = a - b; break;
      case ebpf::BPF_MUL: result = a * b; break;
      case ebpf::BPF_DIV: result = b == 0 ? 0 : a / b; break;
      case ebpf::BPF_MOD: result = b == 0 ? a : a % b; break;
      case ebpf::BPF_OR:  result = a | b; break;
      case ebpf::BPF_AND: result = a & b; break;
      case ebpf::BPF_XOR: result = a ^ b; break;
      case ebpf::BPF_LSH: result = a << (b & shift_mask); break;
      case ebpf::BPF_RSH: result = a >> (b & shift_mask); break;
      case ebpf::BPF_ARSH:
        result = is64 ? static_cast<u64>(static_cast<s64>(a) >>
                                         (b & shift_mask))
                      : static_cast<u64>(static_cast<u32>(
                            static_cast<s32>(static_cast<u32>(a)) >>
                            (b & shift_mask)));
        break;
      default: folded = false; break;
    }
    if (folded) {
      WriteReg(state, dst, ConstVal(is64 ? result : result & 0xffffffffu),
               pc);
      return;
    }
  }
  // Scalar-scalar arithmetic flows through the range domain (const-const
  // was folded exactly above).
  if (IsScalarKind(lhs.kind) && IsScalarKind(src.kind)) {
    AbsVal out = TopVal();
    out.rng = RangeAlu(op, RngOf(lhs), RngOf(src), is64);
    if (out.rng.IsConst()) {
      out = ConstVal(out.rng.umin);
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }
  WriteReg(state, dst, TopVal(), pc);
}

void Dataflow::Transfer(DfState& state, u32 pc) {
  const Insn& insn = prog_.insns[pc];
  switch (insn.Class()) {
    case ebpf::BPF_ALU:
    case ebpf::BPF_ALU64:
      TransferAlu(state, insn, pc);
      return;
    case ebpf::BPF_LD: {
      if (!insn.IsLdImm64()) {
        // Legacy LD_ABS/LD_IND packet loads land in R0.
        WriteReg(state, ebpf::R0, TopVal(), pc);
        return;
      }
      AbsVal out;
      if (insn.src == ebpf::BPF_PSEUDO_MAP_FD) {
        out.kind = VK::kMapPtr;
        out.map_fd = insn.imm;
      } else if (insn.src == ebpf::BPF_PSEUDO_FUNC) {
        out.kind = VK::kFunc;
        out.cval = static_cast<u64>(static_cast<s64>(insn.imm));
      } else {
        const u64 lo = static_cast<u32>(insn.imm);
        const u64 hi =
            static_cast<u32>(prog_.insns[pc + 1].imm);
        out = ConstVal(lo | (hi << 32));
      }
      WriteReg(state, insn.dst, std::move(out), pc);
      return;
    }
    case ebpf::BPF_LDX: {
      Use(state, insn.src, pc);
      const u32 bytes = ebpf::SizeBytes(insn.Size());
      CheckMemAccess(state, state.regs[insn.src], insn.off, bytes,
                     /*is_write=*/false, pc);
      AbsVal out = TopVal();
      if (bytes < 8) {
        // Sub-word loads zero-extend: the result fits the load width.
        out.rng = RangeVal::FromU(0, (u64{1} << (bytes * 8)) - 1);
      }
      WriteReg(state, insn.dst, std::move(out), pc);
      return;
    }
    case ebpf::BPF_ST: {
      Use(state, insn.dst, pc);
      CheckMemAccess(state, state.regs[insn.dst], insn.off,
                     ebpf::SizeBytes(insn.Size()), /*is_write=*/true, pc);
      return;
    }
    case ebpf::BPF_STX: {
      Use(state, insn.dst, pc);
      Use(state, insn.src, pc);
      CheckMemAccess(state, state.regs[insn.dst], insn.off,
                     ebpf::SizeBytes(insn.Size()), /*is_write=*/true, pc);
      return;
    }
    case ebpf::BPF_JMP:
    case ebpf::BPF_JMP32: {
      if (insn.IsHelperCall()) {
        HelperCall(state, pc, insn.imm);
        return;
      }
      if (insn.IsPseudoCall() || insn.IsKfuncCall()) {
        // The callee is analyzed as its own entry; model the call's
        // register effects only.
        for (u8 regno = ebpf::R1; regno <= ebpf::R5; ++regno) {
          state.regs[regno] = AbsVal{};
        }
        state.regs[ebpf::R0] = TopVal();
        return;
      }
      const u8 op = insn.JmpOp();
      if (op != ebpf::BPF_JA && op != ebpf::BPF_EXIT) {
        Use(state, insn.dst, pc);
        if (insn.UsesRegSrc()) {
          Use(state, insn.src, pc);
        }
      }
      return;
    }
    default:
      return;
  }
}

void Dataflow::CheckExit(const DfState& state, u32 pc) {
  const AbsVal& r0 = state.regs[ebpf::R0];
  if (r0.kind == VK::kUninit) {
    Report(Severity::kError, pc, "exit-uninit-r0",
           "the program exits without setting R0 on some path");
  } else if (IsPointerKind(r0.kind)) {
    Report(Severity::kError, pc, "ptr-return-leak",
           "the program returns a kernel pointer in R0 (address leak)");
  }
  for (const RefObligation& ref : state.refs) {
    Report(Severity::kError, pc, "ref-leak",
           StrFormat("the reference acquired at pc %u (helper %u) is "
                     "never released on this path",
                     ref.acquire_pc, ref.helper_id));
  }
}

void Dataflow::Propagate(u32 block, DfState&& out) {
  DfState& dest = in_[block];
  if (!dest.valid) {
    dest = std::move(out);
    worklist_.push_back(block);
    return;
  }
  const bool widen = ++merge_count_[block] > kMergeWidenThreshold;
  DfState merged = MergeState(dest, out, widen);
  if (!(merged == dest)) {
    dest = std::move(merged);
    worklist_.push_back(block);
  }
}

DataflowResult Dataflow::Run() {
  in_.assign(cfg_.blocks.size(), DfState{});
  merge_count_.assign(cfg_.blocks.size(), 0);

  for (const u32 entry : cfg_.entries) {
    DfState init;
    init.valid = true;
    AbsVal fp;
    fp.kind = VK::kStack;
    init.regs[ebpf::R10] = fp;
    if (cfg_.blocks[entry].start == 0) {
      init.regs[ebpf::R1].kind = VK::kCtx;
    } else {
      // Subprogram / callback: arguments and callee-saved registers are
      // whatever the caller provided — unknown but initialized.
      for (u8 regno = ebpf::R1; regno <= ebpf::R9; ++regno) {
        init.regs[regno] = TopVal();
      }
    }
    Propagate(entry, std::move(init));
  }

  u64 budget = static_cast<u64>(cfg_.blocks.size()) * 64 + 256;
  DataflowResult result;
  while (!worklist_.empty()) {
    if (budget-- == 0) {
      result.complete = false;
      Finding finding;
      finding.pass = Pass::kDataflow;
      finding.severity = Severity::kWarning;
      finding.pc = 0;
      finding.rule = "analysis-budget";
      finding.message =
          "dataflow iteration budget exhausted; findings may be "
          "incomplete";
      findings_.push_back(std::move(finding));
      break;
    }
    const u32 b = worklist_.front();
    worklist_.pop_front();
    DfState state = in_[b];
    const BasicBlock& block = cfg_.blocks[b];

    u32 last = block.start;
    for (u32 pc = block.start; pc < block.end;) {
      last = pc;
      Transfer(state, pc);
      pc += prog_.insns[pc].IsLdImm64() ? 2 : 1;
    }

    const Insn& term = prog_.insns[last];
    if (term.IsExit()) {
      CheckExit(state, last);
      continue;
    }
    const u8 cls = term.Class();
    const u8 op = term.JmpOp();
    const bool is_cond = (cls == ebpf::BPF_JMP || cls == ebpf::BPF_JMP32) &&
                         op != ebpf::BPF_JA && op != ebpf::BPF_CALL &&
                         op != ebpf::BPF_EXIT;
    if (!is_cond) {
      for (const u32 succ : block.succs) {
        DfState out = state;
        Propagate(succ, std::move(out));
      }
      continue;
    }

    // Conditional terminator: split with NULL refinement where possible.
    const s64 target = static_cast<s64>(last) + 1 + term.off;
    const u32 taken_block =
        target >= 0 && target < static_cast<s64>(prog_.len())
            ? cfg_.block_of[static_cast<u32>(target)]
            : kNoBlock;
    const u32 fall_block =
        block.end < prog_.len() ? cfg_.block_of[block.end] : kNoBlock;

    DfState taken = state;
    DfState fall = state;
    const AbsVal& dst = state.regs[term.dst];
    const bool cmp_zero =
        (!term.UsesRegSrc() && term.imm == 0) ||
        (term.UsesRegSrc() && state.regs[term.src].kind == VK::kConst &&
         state.regs[term.src].cval == 0);
    if ((op == ebpf::BPF_JEQ || op == ebpf::BPF_JNE) && cmp_zero &&
        IsPointerKind(dst.kind) && dst.or_null && dst.id != 0) {
      RefineNull(taken, dst.id, op == ebpf::BPF_JEQ);
      RefineNull(fall, dst.id, op == ebpf::BPF_JNE);
    }
    // Range refinement on scalar comparands along both edges. An edge the
    // refinement proves infeasible still receives the UNREFINED state —
    // staticcheck deliberately analyzes code a path-sensitive verifier
    // would prune, so kind-level findings there must survive — but the
    // state is marked range-dead so RecordTrace withholds its (vacuous)
    // claims instead of producing false divergences on dead code.
    if (IsScalarKind(dst.kind) &&
        (!term.UsesRegSrc() ||
         IsScalarKind(state.regs[term.src].kind))) {
      const bool is32 = cls == ebpf::BPF_JMP32;
      const bool src_is_reg = term.UsesRegSrc();
      for (const bool branch_taken : {true, false}) {
        DfState& st = branch_taken ? taken : fall;
        RangeVal d = RngOf(st.regs[term.dst]);
        RangeVal s =
            src_is_reg
                ? RngOf(st.regs[term.src])
                : RangeVal::Const(
                      is32 ? static_cast<u64>(static_cast<u32>(term.imm))
                           : static_cast<u64>(static_cast<s64>(term.imm)));
        if (RangeRefine(op, is32, branch_taken, d, s)) {
          SetScalarRng(st.regs[term.dst], d);
          if (src_is_reg) {
            SetScalarRng(st.regs[term.src], s);
          }
        } else {
          st.range_dead = true;
        }
      }
    }
    if (taken_block != kNoBlock) {
      Propagate(taken_block, std::move(taken));
    }
    if (fall_block != kNoBlock) {
      Propagate(fall_block, std::move(fall));
    }
  }
  if (opts_.range_trace != nullptr && result.complete) {
    RecordTrace();
  }
  return result;
}

// Re-walks every reached block from its fixpoint in-state, recording the
// per-pc register claims. The fixpoint state at a block head *is* the
// path-insensitive invariant, so a single pass per block suffices (every
// pc belongs to exactly one block). Finding deduplication makes the
// re-execution of Transfer side-effect free.
void Dataflow::RecordTrace() {
  ebpf::RangeTrace& trace = *opts_.range_trace;
  trace.Reset(prog_.len());
  for (xbase::usize b = 0; b < cfg_.blocks.size(); ++b) {
    // Skip unreached blocks and blocks only reachable across edges the
    // refinement proved infeasible: their claims would be vacuous, and a
    // vacuous claim can falsely contradict the verifier's.
    if (!in_[b].valid || in_[b].range_dead) {
      continue;
    }
    DfState state = in_[b];
    const BasicBlock& block = cfg_.blocks[b];
    for (u32 pc = block.start; pc < block.end;) {
      std::array<ebpf::RegClaim, ebpf::kNumRegs>& claims =
          trace.per_pc[pc];
      for (int r = 0; r < ebpf::kNumRegs; ++r) {
        const AbsVal& reg = state.regs[static_cast<xbase::usize>(r)];
        if (IsScalarKind(reg.kind)) {
          const RangeVal rng = RngOf(reg);
          claims[static_cast<xbase::usize>(r)].JoinScalar(
              rng.umin, rng.umax, rng.smin, rng.smax, rng.bits.value,
              rng.bits.mask);
        } else {
          claims[static_cast<xbase::usize>(r)].JoinOther();
        }
      }
      Transfer(state, pc);
      pc += prog_.insns[pc].IsLdImm64() ? 2 : 1;
    }
  }
}

}  // namespace

DataflowResult RunDataflow(const ebpf::Program& prog, const Cfg& cfg,
                           const CheckOptions& opts,
                           std::vector<Finding>& findings) {
  Dataflow pass(prog, cfg, opts, findings);
  return pass.Run();
}

}  // namespace staticcheck

#include "src/staticcheck/dataflow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <utility>

#include "src/simkern/lsm.h"
#include "src/simkern/net.h"
#include "src/simkern/sched.h"
#include "src/xbase/strfmt.h"

namespace staticcheck {

namespace {

using ebpf::Insn;
using xbase::s32;
using xbase::StrFormat;

constexpr s64 kWideMin = std::numeric_limits<s64>::min() / 4;
constexpr s64 kWideMax = std::numeric_limits<s64>::max() / 4;
constexpr u32 kMergeWidenThreshold = 16;
constexpr s64 kStackBytes = static_cast<s64>(ebpf::kMaxStackBytes);

// Lineage tag of live packet pointers. A single flag (rather than per-load
// ids) suffices: simkern exposes one packet per invocation, so every load
// of data/data_end between two packet-mutating helper calls sees the same
// base. Helpers with changes_packet_data clear the tag (id = 0), after
// which the pointer's proven range never grows again and any dereference
// is flagged. Far outside the pc+1 id space used for null refinement.
constexpr u32 kPacketLiveId = 0xffffffffu;

AbsVal TopVal() {
  AbsVal val;
  val.kind = VK::kTop;
  return val;
}

AbsVal ConstVal(u64 value) {
  AbsVal val;
  val.kind = VK::kConst;
  val.cval = value;
  val.rng = RangeVal::Const(value);
  return val;
}

bool IsScalarKind(VK kind) { return kind == VK::kTop || kind == VK::kConst; }

// Context block size per program type, mirroring the simkern layouts the
// runtime maps (staticcheck derives this independently — it must not
// include the verifier it cross-checks).
s64 CtxBytesFor(ebpf::ProgType type) {
  switch (type) {
    case ebpf::ProgType::kXdp:
    case ebpf::ProgType::kSocketFilter:
    case ebpf::ProgType::kCgroupSkb:
      return static_cast<s64>(simkern::SkBuffLayout::kSize);
    case ebpf::ProgType::kSchedExt:
      return static_cast<s64>(simkern::SchedCtxLayout::kSize);
    case ebpf::ProgType::kLsm:
      return static_cast<s64>(simkern::LsmCtxLayout::kSize);
    case ebpf::ProgType::kKprobe:
    case ebpf::ProgType::kTracepoint:
    case ebpf::ProgType::kPerfEvent:
    case ebpf::ProgType::kSyscall:
      return 64;
  }
  return 0;
}

// The range claim of a scalar abstract value (Unknown for anything else,
// so callers stay sound without checking kinds twice).
RangeVal RngOf(const AbsVal& v) {
  if (v.kind == VK::kConst) {
    return RangeVal::Const(v.cval);
  }
  if (v.kind == VK::kTop) {
    return v.rng;
  }
  return RangeVal::Unknown();
}

// Installs a (refined) range into a scalar value, upgrading to kConst when
// the range pins a single value.
void SetScalarRng(AbsVal& reg, const RangeVal& rng) {
  if (reg.kind == VK::kConst) {
    return;  // already width zero; refinement cannot narrow further
  }
  if (rng.IsConst()) {
    reg = ConstVal(rng.umin);
    return;
  }
  if (reg.kind == VK::kTop) {
    reg.rng = rng;
  }
}

// Join of two abstract values (least upper bound, approximately).
AbsVal MergeVal(const AbsVal& a, const AbsVal& b) {
  if (a == b) {
    return a;
  }
  if (a.kind == VK::kUninit || b.kind == VK::kUninit) {
    // "maybe uninitialized" degrades to kTop: only *definitely*
    // uninitialized reads are reported, which keeps the lint quiet on
    // programs the verifier accepts path-sensitively.
    return TopVal();
  }
  // NULL-refined branches rejoining their pointer: keep the pointer, set
  // the maybe-NULL bit again.
  const auto null_merge = [](const AbsVal& ptr) -> AbsVal {
    AbsVal out = ptr;
    out.or_null = true;
    return out;
  };
  if (IsPointerKind(a.kind) && b.kind == VK::kConst && b.cval == 0) {
    return null_merge(a);
  }
  if (IsPointerKind(b.kind) && a.kind == VK::kConst && a.cval == 0) {
    return null_merge(b);
  }
  // Scalars (known-constant or not) keep a joined numeric range instead of
  // degrading to a bare kTop.
  if (IsScalarKind(a.kind) && IsScalarKind(b.kind)) {
    AbsVal out = TopVal();
    out.rng = RangeJoin(RngOf(a), RngOf(b));
    if (out.rng.IsConst()) {
      out = ConstVal(out.rng.umin);
    }
    return out;
  }
  if (a.kind != b.kind) {
    return TopVal();
  }
  AbsVal out = a;
  out.or_null = a.or_null || b.or_null;
  out.var_off = a.var_off || b.var_off;
  out.off_min = std::min(a.off_min, b.off_min);
  out.off_max = std::max(a.off_max, b.off_max);
  if (a.map_fd != b.map_fd) {
    // Pointer into one of several maps: bounds can no longer be checked.
    out.map_fd = -1;
    out.var_off = true;
  }
  if (a.mem_size != b.mem_size) {
    // For packet pointers mem_size is the *proven* readable range, so the
    // join is the smaller proof, not a giveup.
    out.mem_size =
        a.kind == VK::kPacket ? std::min(a.mem_size, b.mem_size) : 0;
  }
  if (a.id != b.id) {
    out.id = 0;
  }
  return out;
}

// Widening of one merged value against its previous fixpoint candidate:
// anything still changing jumps to the lattice top of its component so
// loops converge. Shared between registers and spilled slot values.
void WidenVal(AbsVal& out, const AbsVal& prev) {
  if (IsPointerKind(out.kind) &&
      (out.off_min != prev.off_min || out.off_max != prev.off_max)) {
    out.off_min = kWideMin;
    out.off_max = kWideMax;
    out.var_off = true;
  }
  if (out.kind == VK::kConst && !(out == prev)) {
    out = TopVal();
  }
  // Ranges form infinite ascending chains; a still-growing range at a
  // widening point jumps straight to Unknown.
  if (out.kind == VK::kTop && !(RngOf(out) == RngOf(prev))) {
    out.rng = RangeVal::Unknown();
  }
}

// Join of two whole states; `widen` forces offset ranges open so loops
// converge.
DfState MergeState(const DfState& a, const DfState& b, bool widen) {
  DfState out;
  out.valid = true;
  // Dead only while *every* incoming edge is range-infeasible.
  out.range_dead = a.range_dead && b.range_dead;
  for (int i = 0; i < ebpf::kNumRegs; ++i) {
    out.regs[i] = MergeVal(a.regs[i], b.regs[i]);
    if (widen) {
      WidenVal(out.regs[i], a.regs[i]);
    }
  }
  for (xbase::usize i = 0; i < out.stack_init.size(); ++i) {
    out.stack_init[i] =
        static_cast<u8>(a.stack_init[i] != 0 && b.stack_init[i] != 0);
  }
  for (int i = 0; i < kStackSlots; ++i) {
    const StackSlot& sa = a.stack.slots[static_cast<xbase::usize>(i)];
    const StackSlot& sb = b.stack.slots[static_cast<xbase::usize>(i)];
    StackSlot& so = out.stack.slots[static_cast<xbase::usize>(i)];
    if (sa.kind == SlotKind::kEmpty && sb.kind == SlotKind::kEmpty) {
      so = StackSlot{};
    } else if (sa.kind == SlotKind::kSpill && sb.kind == SlotKind::kSpill) {
      so.kind = SlotKind::kSpill;
      so.val = MergeVal(sa.val, sb.val);
      if (widen) {
        WidenVal(so.val, sa.val);
      }
    } else {
      // A slot spilled on only one incoming path (or scribbled on) holds
      // no trackable value.
      so = StackSlot{SlotKind::kMisc, AbsVal{}};
    }
  }
  out.zone = Zone::Join(a.zone, b.zone);
  if (widen) {
    out.zone = Zone::Widen(a.zone, out.zone);
  }
  // Union of obligations: a reference open on *some* path must still be
  // released on every path that reaches exit.
  out.refs = a.refs;
  for (const RefObligation& ref : b.refs) {
    const auto same_id = [&ref](const RefObligation& other) {
      return other.id == ref.id;
    };
    if (std::find_if(out.refs.begin(), out.refs.end(), same_id) ==
        out.refs.end()) {
      out.refs.push_back(ref);
    }
  }
  std::sort(out.refs.begin(), out.refs.end(),
            [](const RefObligation& x, const RefObligation& y) {
              return x.id < y.id;
            });
  return out;
}

// The pass engine: per-block input states + a deduplicating finding sink.
class Dataflow {
 public:
  Dataflow(const ebpf::Program& prog, const Cfg& cfg,
           const CheckOptions& opts, std::vector<Finding>& findings)
      : prog_(prog), cfg_(cfg), opts_(opts), findings_(findings) {}

  DataflowResult Run();

 private:
  void Report(Severity severity, u32 pc, std::string_view rule,
              std::string message) {
    if (!reported_.insert({std::string(rule), pc}).second) {
      return;
    }
    Finding finding;
    finding.pass = Pass::kDataflow;
    finding.severity = severity;
    finding.pc = pc;
    finding.rule = std::string(rule);
    finding.message = std::move(message);
    findings_.push_back(std::move(finding));
  }

  // Marks a register as consumed; reports a definite use-before-init.
  void Use(DfState& state, u8 regno, u32 pc) {
    AbsVal& reg = state.regs[regno];
    if (reg.kind == VK::kUninit) {
      Report(Severity::kError, pc, "use-before-init",
             StrFormat("R%d is read but never written on any path", regno));
      reg = TopVal();  // stop the cascade
    }
  }

  void WriteReg(DfState& state, u8 regno, AbsVal value, u32 pc) {
    if (regno == ebpf::R10) {
      Report(Severity::kError, pc, "r10-write",
             "the frame pointer R10 is read-only");
      return;
    }
    state.regs[regno] = std::move(value);
  }

  u32 MapValueSize(int map_fd) const {
    if (opts_.maps == nullptr || map_fd < 0) {
      return 0;
    }
    auto map = opts_.maps->Find(map_fd);
    return map.ok() ? map.value()->spec().value_size : 0;
  }

  u32 MapKeySize(int map_fd) const {
    if (opts_.maps == nullptr || map_fd < 0) {
      return 0;
    }
    auto map = opts_.maps->Find(map_fd);
    return map.ok() ? map.value()->spec().key_size : 0;
  }

  void CheckMemAccess(DfState& state, const AbsVal& base, s64 insn_off,
                      u32 size, bool is_write, u32 pc);
  bool CheckMemAccessImpl(DfState& state, const AbsVal& base, s64 insn_off,
                          u32 size, bool is_write, u32 pc);
  void MarkStackBytes(DfState& state, const AbsVal& base, s64 insn_off,
                      u32 size);
  void CheckStackInit(const DfState& state, const AbsVal& base, u32 size,
                      u32 pc, std::string_view what);
  void CheckNullArg(const AbsVal& reg, int argno,
                    const ebpf::HelperSpec& spec, u32 pc);
  void HelperCall(DfState& state, u32 pc, s32 helper_id);
  void TransferAlu(DfState& state, const Insn& insn, u32 pc);
  void Transfer(DfState& state, u32 pc);
  // Slot bookkeeping for a store through `base`; `spilled` is the stored
  // abstract value when the store could be a tracked full-slot spill
  // (register store, or an immediate store modeled as a constant).
  void StackStore(DfState& state, const AbsVal& base, s64 insn_off,
                  u32 size, const AbsVal* spilled);
  // Mirrors the instruction's effect into the zone domain. Reads the
  // pre-instruction state, so it must run before the value transfer.
  void ZoneTransfer(DfState& state, u32 pc);
  // Raises the proven readable range of every live packet pointer
  // (registers and spilled slots) to at least `range`.
  static void BumpPacketRange(DfState& state, u32 range);
  // Marks every packet pointer stale (helper rewrote the packet): the
  // proven range drops to zero and never grows again.
  static void InvalidatePackets(DfState& state);
  void CheckExit(const DfState& state, u32 pc);
  void Propagate(u32 block, DfState&& out);
  void RecordTrace();
  // Applies NULL refinement for `id`: on the null side the pointer becomes
  // the constant 0 and its acquire obligation disappears.
  static void RefineNull(DfState& state, u32 id, bool is_null);

  const ebpf::Program& prog_;
  const Cfg& cfg_;
  const CheckOptions& opts_;
  std::vector<Finding>& findings_;
  std::set<std::pair<std::string, u32>> reported_;
  std::vector<DfState> in_;
  std::vector<u32> merge_count_;
  std::deque<u32> worklist_;
  // True only while RecordTrace re-walks the fixpoint states; memory
  // claims are exported then, so every claim is judged at the converged
  // invariant rather than at some intermediate iterate.
  bool recording_ = false;
};

void Dataflow::RefineNull(DfState& state, u32 id, bool is_null) {
  if (id == 0) {
    return;
  }
  const auto refine = [id, is_null](AbsVal& val) {
    if (IsPointerKind(val.kind) && val.id == id) {
      if (is_null) {
        val = ConstVal(0);
      } else {
        val.or_null = false;
      }
    }
  };
  for (AbsVal& reg : state.regs) {
    refine(reg);
  }
  // The same pointer may sit spilled on the stack; a later fill must see
  // the refinement or the null check would be lost across the spill.
  for (StackSlot& slot : state.stack.slots) {
    if (slot.kind == SlotKind::kSpill) {
      refine(slot.val);
    }
  }
  if (is_null) {
    std::erase_if(state.refs, [id](const RefObligation& ref) {
      return ref.id == id;
    });
  }
}

void Dataflow::BumpPacketRange(DfState& state, u32 range) {
  const auto bump = [range](AbsVal& val) {
    if (val.kind == VK::kPacket && val.id == kPacketLiveId &&
        val.mem_size < range) {
      val.mem_size = range;
    }
  };
  for (AbsVal& reg : state.regs) {
    bump(reg);
  }
  for (StackSlot& slot : state.stack.slots) {
    if (slot.kind == SlotKind::kSpill) {
      bump(slot.val);
    }
  }
}

void Dataflow::InvalidatePackets(DfState& state) {
  const auto invalidate = [](AbsVal& val) {
    if (val.kind == VK::kPacket || val.kind == VK::kPacketEnd) {
      val.id = 0;
      val.mem_size = 0;
    }
  };
  for (AbsVal& reg : state.regs) {
    invalidate(reg);
  }
  for (StackSlot& slot : state.stack.slots) {
    if (slot.kind == SlotKind::kSpill) {
      invalidate(slot.val);
    }
  }
}

void Dataflow::MarkStackBytes(DfState& state, const AbsVal& base,
                              s64 insn_off, u32 size) {
  if (base.var_off || base.off_min != base.off_max) {
    return;  // imprecise writes mark nothing (under-approximation)
  }
  const s64 start = base.off_min + insn_off + kStackBytes;
  for (u32 i = 0; i < size; ++i) {
    const s64 byte = start + i;
    if (byte >= 0 && byte < kStackBytes) {
      state.stack_init[static_cast<xbase::usize>(byte)] = 1;
    }
  }
}

void Dataflow::CheckStackInit(const DfState& state, const AbsVal& base,
                              u32 size, u32 pc, std::string_view what) {
  if (base.var_off || base.off_min != base.off_max) {
    return;
  }
  const s64 start = base.off_min + kStackBytes;
  for (u32 i = 0; i < size; ++i) {
    const s64 byte = start + i;
    if (byte < 0 || byte >= kStackBytes) {
      return;  // bounds reported separately
    }
    if (state.stack_init[static_cast<xbase::usize>(byte)] == 0) {
      Report(Severity::kWarning, pc, "stack-uninit-read",
             StrFormat("%.*s reads stack byte fp%lld which may be "
                       "uninitialized",
                       static_cast<int>(what.size()), what.data(),
                       static_cast<long long>(base.off_min + i)));
      return;
    }
  }
}

// Recording wrapper: during the RecordTrace re-walk, exports a per-pc
// "this access is provably in bounds" claim the JIT can consume for check
// elision. Fail-closed by construction — a pc never reaching this point
// leaves its claim unseen, and any path where the proof is imprecise ANDs
// the claim to unproven.
void Dataflow::CheckMemAccess(DfState& state, const AbsVal& base,
                              s64 insn_off, u32 size, bool is_write,
                              u32 pc) {
  const bool proven =
      CheckMemAccessImpl(state, base, insn_off, size, is_write, pc);
  if (recording_ && opts_.range_trace != nullptr &&
      pc < opts_.range_trace->mem_per_pc.size()) {
    opts_.range_trace->mem_per_pc[pc].Record(proven);
  }
}

// Returns true iff the access is provably within its region — the bar for
// runtime check elision, which is strictly higher than "no finding": a
// region we cannot size (kTop base, unsized kMem, unknown map) produces no
// diagnostic but is NOT proven. Uninit-read warnings on in-frame stack
// loads are bounds-irrelevant and do not lower the claim.
bool Dataflow::CheckMemAccessImpl(DfState& state, const AbsVal& base,
                                  s64 insn_off, u32 size, bool is_write,
                                  u32 pc) {
  switch (base.kind) {
    case VK::kUninit:
    case VK::kTop:
    case VK::kFunc:
      return false;  // uninit reported by Use(); kTop is unknowable
    case VK::kConst:
      Report(Severity::kError, pc,
             base.cval == 0 ? "null-deref" : "const-deref",
             StrFormat("memory access through constant address 0x%llx",
                       static_cast<unsigned long long>(base.cval)));
      return false;
    case VK::kStack: {
      if (base.var_off) {
        Report(Severity::kWarning, pc, "stack-var-off",
               "stack access at a variable offset");
        return false;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < -kStackBytes || hi > 0) {
        Report(Severity::kError, pc, "stack-oob",
               StrFormat("stack access at fp%lld size %u is outside the "
                         "%lld-byte frame",
                         static_cast<long long>(lo), size,
                         static_cast<long long>(kStackBytes)));
        return false;
      }
      if (is_write) {
        MarkStackBytes(state, base, insn_off, size);
      } else {
        AbsVal shifted = base;
        shifted.off_min += insn_off;
        shifted.off_max += insn_off;
        CheckStackInit(state, shifted, size, pc, "load");
      }
      return true;
    }
    case VK::kMapVal: {
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "map value pointer may be NULL (no null check on this "
               "path)");
        return false;
      }
      const u32 value_size = MapValueSize(base.map_fd);
      if (value_size == 0) {
        return false;  // no map table available
      }
      if (base.var_off) {
        Report(Severity::kWarning, pc, "map-value-var-off",
               "map value accessed at a statically unbounded offset");
        return false;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < 0 || hi > static_cast<s64>(value_size)) {
        Report(Severity::kError, pc, "map-value-oob",
               StrFormat("access at offset [%lld,%lld) escapes the %u-byte "
                         "map value",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi), value_size));
        return false;
      }
      return true;
    }
    case VK::kMem: {
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "helper-provided memory may be NULL (no null check on this "
               "path)");
        return false;
      }
      if (base.mem_size == 0 || base.var_off) {
        return false;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      if (lo < 0 || hi > static_cast<s64>(base.mem_size)) {
        Report(Severity::kError, pc, "mem-oob",
               StrFormat("access at offset [%lld,%lld) escapes the %u-byte "
                         "memory region",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi), base.mem_size));
        return false;
      }
      return true;
    }
    case VK::kPacket: {
      if (base.var_off) {
        Report(Severity::kWarning, pc, "pkt-var-off",
               "packet access at a statically unbounded offset");
        return false;
      }
      const s64 lo = base.off_min + insn_off;
      const s64 hi = base.off_max + insn_off + size;
      // mem_size is the range *proven* by a compare against data_end (and
      // reset by packet-mutating helpers), so an unproven or stale access
      // lands here with mem_size == 0 and is always flagged.
      if (lo < 0 || hi > static_cast<s64>(base.mem_size)) {
        Report(Severity::kError, pc, "pkt-oob",
               StrFormat("packet access at offset [%lld,%lld) but only %u "
                         "bytes are proven against data_end%s",
                         static_cast<long long>(lo),
                         static_cast<long long>(hi), base.mem_size,
                         base.id == kPacketLiveId
                             ? ""
                             : " (pointer is stale after a packet-mutating "
                               "helper)"));
        return false;
      }
      return true;
    }
    case VK::kPacketEnd:
      Report(Severity::kError, pc, "pkt-end-deref",
             "data_end is a bound for comparisons, not a loadable pointer");
      return false;
    case VK::kCtx: {
      if (base.off_min + insn_off < 0) {
        Report(Severity::kWarning, pc, "ctx-oob",
               "context accessed at a negative offset");
        return false;
      }
      const s64 ctx_bytes = CtxBytesFor(prog_.type);
      return !base.var_off && ctx_bytes > 0 &&
             base.off_max + insn_off + size <= ctx_bytes;
    }
    case VK::kMapPtr:
      Report(Severity::kWarning, pc, "map-ptr-deref",
             "direct dereference of a map object pointer");
      return false;
    case VK::kSock:
    case VK::kTask:
      if (base.or_null) {
        Report(Severity::kError, pc, "null-deref",
               "object pointer may be NULL (no null check on this path)");
      }
      return false;  // 64-byte objects, but runtime layout is opaque here
  }
  return false;
}

void Dataflow::CheckNullArg(const AbsVal& reg, int argno,
                            const ebpf::HelperSpec& spec, u32 pc) {
  if (reg.kind == VK::kConst && reg.cval == 0) {
    Report(Severity::kError, pc, "null-arg",
           StrFormat("NULL passed as pointer argument %d of %s", argno,
                     spec.name.c_str()));
    return;
  }
  if (IsPointerKind(reg.kind) && reg.or_null) {
    Report(Severity::kWarning, pc, "maybe-null-arg",
           StrFormat("argument %d of %s may be NULL (no null check)",
                     argno, spec.name.c_str()));
  }
}

void Dataflow::HelperCall(DfState& state, u32 pc, s32 helper_id) {
  const ebpf::HelperSpec* spec = nullptr;
  if (opts_.helpers != nullptr) {
    auto found = opts_.helpers->FindSpec(static_cast<u32>(helper_id));
    if (found.ok()) {
      spec = found.value();
    } else {
      Report(Severity::kError, pc, "unknown-helper",
             StrFormat("call to unregistered helper id %d", helper_id));
    }
  }

  int map_arg_fd = -1;
  if (spec != nullptr) {
    for (int i = 0; i < 5; ++i) {
      const ebpf::ArgType arg = spec->args[static_cast<xbase::usize>(i)];
      if (arg == ebpf::ArgType::kNone) {
        break;
      }
      const u8 regno = static_cast<u8>(ebpf::R1 + i);
      AbsVal& reg = state.regs[regno];
      if (reg.kind == VK::kUninit) {
        Report(Severity::kError, pc, "helper-arg-uninit",
               StrFormat("R%d (argument %d of %s) is uninitialized", regno,
                         i + 1, spec->name.c_str()));
        reg = TopVal();
        continue;
      }
      // The size a kPtrToMem/kPtrToUninitMem argument covers, when the
      // paired kMemSize argument is a known constant.
      u32 mem_span = 0;
      if (i + 1 < 5 &&
          spec->args[static_cast<xbase::usize>(i + 1)] ==
              ebpf::ArgType::kMemSize &&
          state.regs[regno + 1].kind == VK::kConst) {
        mem_span = static_cast<u32>(state.regs[regno + 1].cval);
      }
      switch (arg) {
        case ebpf::ArgType::kNone:
        case ebpf::ArgType::kAnything:
        case ebpf::ArgType::kMemSize:
          break;
        case ebpf::ArgType::kConstMapPtr:
          if (reg.kind == VK::kMapPtr) {
            map_arg_fd = reg.map_fd;
          } else if (reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a map reference",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kMapKey:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack) {
            CheckStackInit(state, reg, MapKeySize(map_arg_fd), pc,
                           spec->name);
          }
          break;
        case ebpf::ArgType::kMapValue:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack) {
            CheckStackInit(state, reg, MapValueSize(map_arg_fd), pc,
                           spec->name);
          }
          break;
        case ebpf::ArgType::kPtrToMem:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack && mem_span > 0) {
            CheckStackInit(state, reg, mem_span, pc, spec->name);
          }
          break;
        case ebpf::ArgType::kPtrToUninitMem:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind == VK::kStack && mem_span > 0) {
            MarkStackBytes(state, reg, 0, mem_span);  // the helper fills it
          }
          break;
        case ebpf::ArgType::kCtx:
          if (reg.kind != VK::kCtx && reg.kind != VK::kTop) {
            Report(Severity::kWarning, pc, "helper-arg-type",
                   StrFormat("argument %d of %s should be the context "
                             "pointer",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kScalar:
          if (IsPointerKind(reg.kind)) {
            Report(Severity::kWarning, pc, "ptr-as-scalar-arg",
                   StrFormat("pointer passed as scalar argument %d of %s "
                             "(potential address leak)",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kSock:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind != VK::kSock && reg.kind != VK::kTop &&
              !(reg.kind == VK::kConst && reg.cval == 0)) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a socket", i + 1,
                             spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kTask:
          CheckNullArg(reg, i + 1, *spec, pc);
          break;
        case ebpf::ArgType::kSpinLock:
          CheckNullArg(reg, i + 1, *spec, pc);
          if (reg.kind != VK::kMapVal && reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must point into a map "
                             "value",
                             i + 1, spec->name.c_str()));
          }
          break;
        case ebpf::ArgType::kFunc:
          if (reg.kind != VK::kFunc && reg.kind != VK::kTop) {
            Report(Severity::kError, pc, "helper-arg-type",
                   StrFormat("argument %d of %s must be a callback "
                             "reference",
                             i + 1, spec->name.c_str()));
          }
          break;
      }
    }
    if (spec->releases_ref_arg != 0) {
      const u8 regno =
          static_cast<u8>(ebpf::R1 + spec->releases_ref_arg - 1);
      const u32 id = state.regs[regno].id;
      const auto matches = [id](const RefObligation& ref) {
        return ref.id == id;
      };
      if (id != 0 && std::find_if(state.refs.begin(), state.refs.end(),
                                  matches) != state.refs.end()) {
        std::erase_if(state.refs, matches);
      } else {
        Report(Severity::kWarning, pc, "release-unacquired",
               StrFormat("%s releases an object this program did not "
                         "acquire",
                         spec->name.c_str()));
      }
    }
  }

  // A helper that rewrites the packet (pull/push headers, adjust room)
  // moves data/data_end: every packet pointer anywhere in the state is
  // stale afterwards — including ones parked in callee-saved registers or
  // spilled to the stack, the shape CVE-class invalidation bugs miss.
  if (spec != nullptr && spec->changes_packet_data) {
    InvalidatePackets(state);
  }

  // Caller-saved registers are clobbered; R0 carries the abstract return.
  for (u8 regno = ebpf::R1; regno <= ebpf::R5; ++regno) {
    state.regs[regno] = AbsVal{};
  }
  AbsVal ret = TopVal();
  if (spec != nullptr) {
    const u32 id = pc + 1;
    switch (spec->ret) {
      case ebpf::RetType::kInteger:
        break;
      case ebpf::RetType::kVoid:
        ret = AbsVal{};  // reading R0 after a void helper is a bug
        break;
      case ebpf::RetType::kMapValueOrNull:
        ret.kind = VK::kMapVal;
        ret.or_null = true;
        ret.map_fd = map_arg_fd;
        ret.id = id;
        break;
      case ebpf::RetType::kSockOrNull:
        ret.kind = VK::kSock;
        ret.or_null = true;
        ret.id = id;
        break;
      case ebpf::RetType::kTaskOrNull:
        ret.kind = VK::kTask;
        ret.or_null = true;
        ret.id = id;
        break;
      case ebpf::RetType::kMemOrNull:
        ret.kind = VK::kMem;
        ret.or_null = true;
        ret.id = id;
        break;
    }
    if (spec->acquires_ref) {
      RefObligation ref;
      ref.id = id;
      ref.acquire_pc = pc;
      ref.helper_id = spec->id;
      state.refs.push_back(ref);
    }
  }
  state.regs[ebpf::R0] = ret;
}

void Dataflow::TransferAlu(DfState& state, const Insn& insn, u32 pc) {
  const bool is64 = insn.Class() == ebpf::BPF_ALU64;
  const u8 op = insn.AluOp();
  const u8 dst = insn.dst;

  if (op == ebpf::BPF_END) {
    Use(state, dst, pc);
    AbsVal out = TopVal();
    // Whatever the byte order, the result fits the swap width.
    if (insn.imm == 16) {
      out.rng = RangeVal::FromU(0, 0xffff);
    } else if (insn.imm == 32) {
      out.rng = RangeVal::FromU(0, 0xffffffffu);
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }
  if (op == ebpf::BPF_NEG) {
    Use(state, dst, pc);
    AbsVal& reg = state.regs[dst];
    AbsVal out = TopVal();
    if (IsScalarKind(reg.kind)) {
      out.rng =
          RangeAlu(ebpf::BPF_SUB, RangeVal::Const(0), RngOf(reg), is64);
      if (out.rng.IsConst()) {
        out = ConstVal(out.rng.umin);
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  // Resolve the source operand.
  AbsVal src;
  if (insn.UsesRegSrc()) {
    Use(state, insn.src, pc);
    src = state.regs[insn.src];
  } else {
    src = ConstVal(is64 ? static_cast<u64>(static_cast<s64>(insn.imm))
                        : static_cast<u64>(static_cast<u32>(insn.imm)));
  }

  if (op == ebpf::BPF_MOV) {
    AbsVal out = src;
    if (!is64) {
      // A 32-bit move truncates: pointers degrade to scalars.
      if (out.kind == VK::kConst) {
        out = ConstVal(src.cval & 0xffffffffu);
      } else {
        out = TopVal();
        out.rng = RangeCast32(RngOf(src));
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  Use(state, dst, pc);
  AbsVal& lhs = state.regs[dst];

  // Pointer +- constant adjusts the tracked offset range.
  if ((op == ebpf::BPF_ADD || op == ebpf::BPF_SUB) && is64 &&
      IsPointerKind(lhs.kind)) {
    AbsVal out = lhs;
    if (src.kind == VK::kConst) {
      const s64 delta = static_cast<s64>(src.cval);
      out.off_min += op == ebpf::BPF_ADD ? delta : -delta;
      out.off_max += op == ebpf::BPF_ADD ? delta : -delta;
    } else if (IsPointerKind(src.kind)) {
      out = TopVal();  // ptr - ptr is a scalar distance
    } else {
      // A *bounded* unknown scalar folds into the offset interval, so the
      // downstream map-value / kMem bounds checks see the refined range
      // instead of a kind-only var_off giveup.
      const RangeVal sr = RngOf(src);
      // Wide enough to keep a full u32-range index foldable (the
      // CVE-2020-8835 witness needs [0, 2^32-1] to stay an interval, not
      // a var_off giveup); accumulated offsets stay far below s64 range.
      constexpr s64 kFoldLimit = s64{1} << 33;
      if (src.kind == VK::kTop && sr.smin >= -kFoldLimit &&
          sr.smax <= kFoldLimit) {
        out.off_min += op == ebpf::BPF_ADD ? sr.smin : -sr.smax;
        out.off_max += op == ebpf::BPF_ADD ? sr.smax : -sr.smin;
      } else {
        out.var_off = true;  // unbounded scalar poisons the offset
      }
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }

  // Constant folding for scalar-scalar arithmetic.
  if (lhs.kind == VK::kConst && src.kind == VK::kConst) {
    u64 a = lhs.cval;
    u64 b = src.cval;
    if (!is64) {
      a &= 0xffffffffu;
      b &= 0xffffffffu;
    }
    u64 result = 0;
    bool folded = true;
    const u64 shift_mask = is64 ? 63 : 31;
    switch (op) {
      case ebpf::BPF_ADD: result = a + b; break;
      case ebpf::BPF_SUB: result = a - b; break;
      case ebpf::BPF_MUL: result = a * b; break;
      case ebpf::BPF_DIV: result = b == 0 ? 0 : a / b; break;
      case ebpf::BPF_MOD: result = b == 0 ? a : a % b; break;
      case ebpf::BPF_OR:  result = a | b; break;
      case ebpf::BPF_AND: result = a & b; break;
      case ebpf::BPF_XOR: result = a ^ b; break;
      case ebpf::BPF_LSH: result = a << (b & shift_mask); break;
      case ebpf::BPF_RSH: result = a >> (b & shift_mask); break;
      case ebpf::BPF_ARSH:
        result = is64 ? static_cast<u64>(static_cast<s64>(a) >>
                                         (b & shift_mask))
                      : static_cast<u64>(static_cast<u32>(
                            static_cast<s32>(static_cast<u32>(a)) >>
                            (b & shift_mask)));
        break;
      default: folded = false; break;
    }
    if (folded) {
      WriteReg(state, dst, ConstVal(is64 ? result : result & 0xffffffffu),
               pc);
      return;
    }
  }
  // Scalar-scalar arithmetic flows through the range domain (const-const
  // was folded exactly above).
  if (IsScalarKind(lhs.kind) && IsScalarKind(src.kind)) {
    AbsVal out = TopVal();
    out.rng = RangeAlu(op, RngOf(lhs), RngOf(src), is64);
    if (out.rng.IsConst()) {
      out = ConstVal(out.rng.umin);
    }
    WriteReg(state, dst, std::move(out), pc);
    return;
  }
  WriteReg(state, dst, TopVal(), pc);
}

void Dataflow::StackStore(DfState& state, const AbsVal& base, s64 insn_off,
                          u32 size, const AbsVal* spilled) {
  if (base.kind != VK::kStack) {
    return;  // no other pointer kind can alias the frame
  }
  if (base.var_off || base.off_min != base.off_max) {
    // A write somewhere unknown in the frame: every tracked value may be
    // overwritten.
    for (StackSlot& slot : state.stack.slots) {
      if (slot.kind == SlotKind::kSpill) {
        slot = StackSlot{SlotKind::kMisc, AbsVal{}};
      }
    }
    return;
  }
  const s64 off = base.off_min + insn_off;
  if (off < -kStackBytes || off + static_cast<s64>(size) > 0) {
    return;  // out of frame; reported by CheckMemAccess
  }
  if (IsFullSlotAccess(off, size) && spilled != nullptr &&
      spilled->kind != VK::kUninit) {
    state.stack.slots[static_cast<xbase::usize>(StackSlotIndex(off))] =
        StackSlot{SlotKind::kSpill, *spilled};
    return;
  }
  // Narrow, unaligned or value-less write: the 8-byte spill (if any) under
  // each touched byte is no longer intact. Restoring it anyway is exactly
  // the spill-width-confusion defect class (kernel commit 27113c59b6d0).
  for (s64 byte = off; byte < off + static_cast<s64>(size); ++byte) {
    const int idx = StackSlotIndex(byte);
    if (idx >= 0) {
      state.stack.slots[static_cast<xbase::usize>(idx)] =
          StackSlot{SlotKind::kMisc, AbsVal{}};
    }
  }
}

void Dataflow::ZoneTransfer(DfState& state, u32 pc) {
  if (!opts_.enable_relational) {
    return;
  }
  Zone& z = state.zone;
  const Insn& insn = prog_.insns[pc];
  const auto zreg = [](u8 r) -> int {
    return r < kZoneRegs ? static_cast<int>(r) : -1;
  };
  const auto forget = [&z](int v) {
    if (v >= 0) {
      z.Forget(v);
    }
  };
  const int dst = zreg(insn.dst);
  switch (insn.Class()) {
    case ebpf::BPF_ALU64: {
      const u8 op = insn.AluOp();
      if (op == ebpf::BPF_MOV && insn.UsesRegSrc()) {
        const int src = zreg(insn.src);
        if (dst >= 0 && src >= 0) {
          z.AssignCopy(dst, src);  // exact value copy, any kind
        } else {
          forget(dst);
        }
        return;
      }
      if (op == ebpf::BPF_MOV) {
        if (dst >= 0) {
          z.AssignConst(dst, static_cast<s64>(insn.imm));
        }
        return;
      }
      if ((op == ebpf::BPF_ADD || op == ebpf::BPF_SUB) && dst >= 0 &&
          IsScalarKind(state.regs[insn.dst].kind)) {
        const RangeVal dr = RngOf(state.regs[insn.dst]);
        s64 lo = 0;
        s64 hi = 0;
        bool delta_known = false;
        if (!insn.UsesRegSrc()) {
          lo = hi = static_cast<s64>(insn.imm);
          delta_known = true;
        } else if (IsScalarKind(state.regs[insn.src].kind)) {
          const RangeVal sr = RngOf(state.regs[insn.src]);
          lo = sr.smin;
          hi = sr.smax;
          delta_known = true;
        }
        // Shifting the constraints is only sound when the concrete
        // addition provably cannot wrap; both operands staying within
        // +-kZoneSafe (2^60) keeps the sum far inside s64.
        if (delta_known && dr.smin >= -kZoneSafe && dr.smax <= kZoneSafe &&
            lo >= -kZoneSafe && hi <= kZoneSafe) {
          if (op == ebpf::BPF_SUB) {
            const s64 t = lo;
            lo = -hi;
            hi = -t;
          }
          z.AssignShift(dst, lo, hi);
          return;
        }
      }
      forget(dst);
      return;
    }
    case ebpf::BPF_ALU:
      // 32-bit results truncate; no difference constraint survives.
      forget(dst);
      return;
    case ebpf::BPF_LD:
      if (insn.IsLdImm64()) {
        if (insn.src == 0 && dst >= 0 && pc + 1 < prog_.len()) {
          const u64 lo32 = static_cast<u32>(insn.imm);
          const u64 hi32 = static_cast<u32>(prog_.insns[pc + 1].imm);
          z.AssignConst(dst, static_cast<s64>(lo32 | (hi32 << 32)));
        } else {
          forget(dst);
        }
      } else {
        forget(ebpf::R0);  // legacy packet loads land in R0
      }
      return;
    case ebpf::BPF_LDX: {
      const AbsVal& base = state.regs[insn.src];
      if (base.kind == VK::kStack && !base.var_off &&
          base.off_min == base.off_max) {
        const s64 off = base.off_min + insn.off;
        const int slot_var = ZoneSlotVar(off);
        if (slot_var >= 0 && dst >= 0 &&
            IsFullSlotAccess(off, ebpf::SizeBytes(insn.Size())) &&
            state.stack.slots[static_cast<xbase::usize>(StackSlotIndex(off))]
                    .kind == SlotKind::kSpill) {
          z.AssignCopy(dst, slot_var);  // fill restores the relation
          return;
        }
      }
      forget(dst);
      return;
    }
    case ebpf::BPF_ST:
    case ebpf::BPF_STX: {
      const AbsVal& base = state.regs[insn.dst];
      if (base.kind != VK::kStack) {
        return;  // stores elsewhere change no tracked value
      }
      if (base.var_off || base.off_min != base.off_max) {
        for (int s = 0; s < kZoneSlots; ++s) {
          z.Forget(kZoneSlot0 + s);
        }
        return;
      }
      const s64 off = base.off_min + insn.off;
      const u32 size = ebpf::SizeBytes(insn.Size());
      const int slot_var = ZoneSlotVar(off);
      if (IsFullSlotAccess(off, size) && slot_var >= 0 &&
          insn.Mode() == ebpf::BPF_MEM) {
        if (insn.Class() == ebpf::BPF_STX) {
          const int src = zreg(insn.src);
          if (src >= 0) {
            z.AssignCopy(slot_var, src);
          } else {
            z.Forget(slot_var);
          }
        } else {
          z.AssignConst(slot_var, static_cast<s64>(insn.imm));
        }
        return;
      }
      for (s64 byte = off; byte < off + static_cast<s64>(size); ++byte) {
        const int idx = StackSlotIndex(byte);
        if (idx >= 0 && idx < kZoneSlots) {
          z.Forget(kZoneSlot0 + idx);
        }
      }
      return;
    }
    case ebpf::BPF_JMP:
    case ebpf::BPF_JMP32:
      if (insn.IsCall()) {
        for (int r = ebpf::R0; r <= ebpf::R5; ++r) {
          z.Forget(r);
        }
      }
      return;
    default:
      return;
  }
}

void Dataflow::Transfer(DfState& state, u32 pc) {
  ZoneTransfer(state, pc);
  const Insn& insn = prog_.insns[pc];
  switch (insn.Class()) {
    case ebpf::BPF_ALU:
    case ebpf::BPF_ALU64:
      TransferAlu(state, insn, pc);
      return;
    case ebpf::BPF_LD: {
      if (!insn.IsLdImm64()) {
        // Legacy LD_ABS/LD_IND packet loads land in R0.
        WriteReg(state, ebpf::R0, TopVal(), pc);
        return;
      }
      AbsVal out;
      if (insn.src == ebpf::BPF_PSEUDO_MAP_FD) {
        out.kind = VK::kMapPtr;
        out.map_fd = insn.imm;
      } else if (insn.src == ebpf::BPF_PSEUDO_FUNC) {
        out.kind = VK::kFunc;
        out.cval = static_cast<u64>(static_cast<s64>(insn.imm));
      } else {
        const u64 lo = static_cast<u32>(insn.imm);
        const u64 hi =
            static_cast<u32>(prog_.insns[pc + 1].imm);
        out = ConstVal(lo | (hi << 32));
      }
      WriteReg(state, insn.dst, std::move(out), pc);
      return;
    }
    case ebpf::BPF_LDX: {
      Use(state, insn.src, pc);
      const u32 bytes = ebpf::SizeBytes(insn.Size());
      const AbsVal& base = state.regs[insn.src];
      CheckMemAccess(state, base, insn.off, bytes,
                     /*is_write=*/false, pc);
      if (base.kind == VK::kStack && !base.var_off &&
          base.off_min == base.off_max) {
        // Fill of an intact full-slot spill restores the whole abstract
        // value — pointers survive a round trip through the stack.
        const s64 off = base.off_min + insn.off;
        if (opts_.enable_relational && IsFullSlotAccess(off, bytes)) {
          const StackSlot& slot =
              state.stack.slots[static_cast<xbase::usize>(
                  StackSlotIndex(off))];
          if (slot.kind == SlotKind::kSpill) {
            AbsVal restored = slot.val;
            WriteReg(state, insn.dst, std::move(restored), pc);
            return;
          }
        }
      }
      if (base.kind == VK::kCtx && !base.var_off &&
          base.off_min == base.off_max && HasPacketPtrs(prog_.type)) {
        // Direct packet access: the sk_buff-style context exposes
        // data/data_end; loads of those fields yield packet pointers whose
        // usable range starts at zero until proven by a data_end compare.
        const s64 off = base.off_min + insn.off;
        if (bytes == 8 &&
            off == static_cast<s64>(simkern::SkBuffLayout::kDataPtr)) {
          AbsVal out;
          out.kind = VK::kPacket;
          out.id = kPacketLiveId;
          WriteReg(state, insn.dst, std::move(out), pc);
          return;
        }
        if (bytes == 8 &&
            off == static_cast<s64>(simkern::SkBuffLayout::kDataEndPtr)) {
          AbsVal out;
          out.kind = VK::kPacketEnd;
          out.id = kPacketLiveId;
          WriteReg(state, insn.dst, std::move(out), pc);
          return;
        }
        if (bytes == 4 &&
            off == static_cast<s64>(simkern::SkBuffLayout::kLen)) {
          AbsVal out = TopVal();
          out.rng = RangeVal::FromU(0, 0xffff);
          WriteReg(state, insn.dst, std::move(out), pc);
          return;
        }
      }
      AbsVal out = TopVal();
      if (bytes < 8) {
        // Sub-word loads zero-extend: the result fits the load width.
        out.rng = RangeVal::FromU(0, (u64{1} << (bytes * 8)) - 1);
      }
      WriteReg(state, insn.dst, std::move(out), pc);
      return;
    }
    case ebpf::BPF_ST: {
      Use(state, insn.dst, pc);
      const u32 bytes = ebpf::SizeBytes(insn.Size());
      CheckMemAccess(state, state.regs[insn.dst], insn.off, bytes,
                     /*is_write=*/true, pc);
      const AbsVal imm_val =
          ConstVal(static_cast<u64>(static_cast<s64>(insn.imm)));
      StackStore(state, state.regs[insn.dst], insn.off, bytes, &imm_val);
      return;
    }
    case ebpf::BPF_STX: {
      Use(state, insn.dst, pc);
      Use(state, insn.src, pc);
      const u32 bytes = ebpf::SizeBytes(insn.Size());
      CheckMemAccess(state, state.regs[insn.dst], insn.off, bytes,
                     /*is_write=*/true, pc);
      // An atomic op stores a combined value, not the source register;
      // passing no value downgrades the slot instead of mis-spilling.
      StackStore(state, state.regs[insn.dst], insn.off, bytes,
                 insn.Mode() == ebpf::BPF_MEM ? &state.regs[insn.src]
                                              : nullptr);
      return;
    }
    case ebpf::BPF_JMP:
    case ebpf::BPF_JMP32: {
      if (insn.IsHelperCall()) {
        HelperCall(state, pc, insn.imm);
        return;
      }
      if (insn.IsPseudoCall() || insn.IsKfuncCall()) {
        // The callee is analyzed as its own entry; model the call's
        // register effects only.
        for (u8 regno = ebpf::R1; regno <= ebpf::R5; ++regno) {
          state.regs[regno] = AbsVal{};
        }
        state.regs[ebpf::R0] = TopVal();
        return;
      }
      const u8 op = insn.JmpOp();
      if (op != ebpf::BPF_JA && op != ebpf::BPF_EXIT) {
        Use(state, insn.dst, pc);
        if (insn.UsesRegSrc()) {
          Use(state, insn.src, pc);
        }
      }
      return;
    }
    default:
      return;
  }
}

void Dataflow::CheckExit(const DfState& state, u32 pc) {
  const AbsVal& r0 = state.regs[ebpf::R0];
  if (r0.kind == VK::kUninit) {
    Report(Severity::kError, pc, "exit-uninit-r0",
           "the program exits without setting R0 on some path");
  } else if (IsPointerKind(r0.kind)) {
    Report(Severity::kError, pc, "ptr-return-leak",
           "the program returns a kernel pointer in R0 (address leak)");
  }
  for (const RefObligation& ref : state.refs) {
    Report(Severity::kError, pc, "ref-leak",
           StrFormat("the reference acquired at pc %u (helper %u) is "
                     "never released on this path",
                     ref.acquire_pc, ref.helper_id));
  }
}

void Dataflow::Propagate(u32 block, DfState&& out) {
  DfState& dest = in_[block];
  if (!dest.valid) {
    dest = std::move(out);
    worklist_.push_back(block);
    return;
  }
  const bool widen = ++merge_count_[block] > kMergeWidenThreshold;
  DfState merged = MergeState(dest, out, widen);
  if (!(merged == dest)) {
    dest = std::move(merged);
    worklist_.push_back(block);
  }
}

DataflowResult Dataflow::Run() {
  in_.assign(cfg_.blocks.size(), DfState{});
  merge_count_.assign(cfg_.blocks.size(), 0);

  for (const u32 entry : cfg_.entries) {
    DfState init;
    init.valid = true;
    AbsVal fp;
    fp.kind = VK::kStack;
    init.regs[ebpf::R10] = fp;
    if (cfg_.blocks[entry].start == 0) {
      init.regs[ebpf::R1].kind = VK::kCtx;
    } else {
      // Subprogram / callback: arguments and callee-saved registers are
      // whatever the caller provided — unknown but initialized.
      for (u8 regno = ebpf::R1; regno <= ebpf::R9; ++regno) {
        init.regs[regno] = TopVal();
      }
    }
    Propagate(entry, std::move(init));
  }

  u64 budget = static_cast<u64>(cfg_.blocks.size()) * 64 + 256;
  DataflowResult result;
  while (!worklist_.empty()) {
    if (budget-- == 0) {
      result.complete = false;
      Finding finding;
      finding.pass = Pass::kDataflow;
      finding.severity = Severity::kWarning;
      finding.pc = 0;
      finding.rule = "analysis-budget";
      finding.message =
          "dataflow iteration budget exhausted; findings may be "
          "incomplete";
      findings_.push_back(std::move(finding));
      break;
    }
    const u32 b = worklist_.front();
    worklist_.pop_front();
    ++result.iterations;
    DfState state = in_[b];
    const BasicBlock& block = cfg_.blocks[b];

    u32 last = block.start;
    for (u32 pc = block.start; pc < block.end;) {
      last = pc;
      Transfer(state, pc);
      pc += prog_.insns[pc].IsLdImm64() ? 2 : 1;
    }

    const Insn& term = prog_.insns[last];
    if (term.IsExit()) {
      CheckExit(state, last);
      continue;
    }
    const u8 cls = term.Class();
    const u8 op = term.JmpOp();
    const bool is_cond = (cls == ebpf::BPF_JMP || cls == ebpf::BPF_JMP32) &&
                         op != ebpf::BPF_JA && op != ebpf::BPF_CALL &&
                         op != ebpf::BPF_EXIT;
    if (!is_cond) {
      for (const u32 succ : block.succs) {
        DfState out = state;
        Propagate(succ, std::move(out));
      }
      continue;
    }

    // Conditional terminator: split with NULL refinement where possible.
    const s64 target = static_cast<s64>(last) + 1 + term.off;
    const u32 taken_block =
        target >= 0 && target < static_cast<s64>(prog_.len())
            ? cfg_.block_of[static_cast<u32>(target)]
            : kNoBlock;
    const u32 fall_block =
        block.end < prog_.len() ? cfg_.block_of[block.end] : kNoBlock;

    DfState taken = state;
    DfState fall = state;
    const AbsVal& dst = state.regs[term.dst];
    const bool cmp_zero =
        (!term.UsesRegSrc() && term.imm == 0) ||
        (term.UsesRegSrc() && state.regs[term.src].kind == VK::kConst &&
         state.regs[term.src].cval == 0);
    if ((op == ebpf::BPF_JEQ || op == ebpf::BPF_JNE) && cmp_zero &&
        IsPointerKind(dst.kind) && dst.or_null && dst.id != 0) {
      RefineNull(taken, dst.id, op == ebpf::BPF_JEQ);
      RefineNull(fall, dst.id, op == ebpf::BPF_JNE);
    }
    // Range refinement on scalar comparands along both edges. An edge the
    // refinement proves infeasible still receives the UNREFINED state —
    // staticcheck deliberately analyzes code a path-sensitive verifier
    // would prune, so kind-level findings there must survive — but the
    // state is marked range-dead so RecordTrace withholds its (vacuous)
    // claims instead of producing false divergences on dead code.
    if (IsScalarKind(dst.kind) &&
        (!term.UsesRegSrc() ||
         IsScalarKind(state.regs[term.src].kind))) {
      const bool is32 = cls == ebpf::BPF_JMP32;
      const bool src_is_reg = term.UsesRegSrc();
      for (const bool branch_taken : {true, false}) {
        DfState& st = branch_taken ? taken : fall;
        RangeVal d = RngOf(st.regs[term.dst]);
        RangeVal s =
            src_is_reg
                ? RngOf(st.regs[term.src])
                : RangeVal::Const(
                      is32 ? static_cast<u64>(static_cast<u32>(term.imm))
                           : static_cast<u64>(static_cast<s64>(term.imm)));
        if (RangeRefine(op, is32, branch_taken, d, s)) {
          SetScalarRng(st.regs[term.dst], d);
          if (src_is_reg) {
            SetScalarRng(st.regs[term.src], s);
          }
        } else {
          st.range_dead = true;
        }
      }
    }
    // Packet range discovery: a 64-bit compare between a live packet
    // pointer at a known constant offset and data_end proves that many
    // bytes readable from data on the "pointer below end" edge — for every
    // live packet pointer in the state, registers and spilled slots alike.
    if (cls == ebpf::BPF_JMP && term.UsesRegSrc()) {
      const AbsVal& lhs = state.regs[term.dst];
      const AbsVal& rhs = state.regs[term.src];
      const bool pkt_is_dst =
          lhs.kind == VK::kPacket && rhs.kind == VK::kPacketEnd;
      const bool pkt_is_src =
          rhs.kind == VK::kPacket && lhs.kind == VK::kPacketEnd;
      const AbsVal* pkt = pkt_is_dst ? &lhs : pkt_is_src ? &rhs : nullptr;
      if (pkt != nullptr && lhs.id == kPacketLiveId &&
          rhs.id == kPacketLiveId && !pkt->var_off &&
          pkt->off_min == pkt->off_max && pkt->off_min >= 0 &&
          pkt->off_min <= 0xffff) {
        const u32 range = static_cast<u32>(pkt->off_min);
        bool prove_taken = false;
        bool prove_fall = false;
        switch (op) {
          case ebpf::BPF_JGT:  // pkt > end falls through to pkt <= end
          case ebpf::BPF_JGE:
            (pkt_is_dst ? prove_fall : prove_taken) = true;
            break;
          case ebpf::BPF_JLT:  // pkt < end taken
          case ebpf::BPF_JLE:
            (pkt_is_dst ? prove_taken : prove_fall) = true;
            break;
          default:
            break;
        }
        if (prove_taken) {
          BumpPacketRange(taken, range);
        }
        if (prove_fall) {
          BumpPacketRange(fall, range);
        }
      }
    }
    // Zone refinement: seed the interval facts of every scalar register,
    // add the relational constraint a 64-bit reg-reg compare proves on
    // each edge, close, and fold any tightened bounds back into the range
    // domain — the reduced product that lets `r1 < r2, r2 <= k` prove
    // `r1 <= k-1` where intervals alone cannot.
    if (opts_.enable_relational) {
      const bool is32 = cls == ebpf::BPF_JMP32;
      for (const bool branch_taken : {true, false}) {
        DfState& st = branch_taken ? taken : fall;
        Zone& z = st.zone;
        for (int r = 0; r < kZoneRegs; ++r) {
          const AbsVal& reg = st.regs[r];
          if (IsScalarKind(reg.kind)) {
            const RangeVal rng = RngOf(reg);
            z.SeedRange(r, rng.smin, rng.smax);
          }
        }
        if (!is32 && term.UsesRegSrc() && term.dst < kZoneRegs &&
            term.src < kZoneRegs &&
            IsScalarKind(st.regs[term.dst].kind) &&
            IsScalarKind(st.regs[term.src].kind)) {
          u8 signed_op = 0;
          switch (op) {
            case ebpf::BPF_JEQ:
            case ebpf::BPF_JNE:
            case ebpf::BPF_JSGT:
            case ebpf::BPF_JSGE:
            case ebpf::BPF_JSLT:
            case ebpf::BPF_JSLE:
              signed_op = op;
              break;
            case ebpf::BPF_JGT:
            case ebpf::BPF_JGE:
            case ebpf::BPF_JLT:
            case ebpf::BPF_JLE: {
              // Unsigned order coincides with the signed one only when
              // both operands are provably non-negative (as after any
              // sub-word load).
              if (RngOf(st.regs[term.dst]).smin >= 0 &&
                  RngOf(st.regs[term.src]).smin >= 0) {
                signed_op = op == ebpf::BPF_JGT   ? ebpf::BPF_JSGT
                            : op == ebpf::BPF_JGE ? ebpf::BPF_JSGE
                            : op == ebpf::BPF_JLT ? ebpf::BPF_JSLT
                                                  : ebpf::BPF_JSLE;
              }
              break;
            }
            default:
              break;
          }
          if (signed_op != 0) {
            z.RefineCompare(signed_op, branch_taken, term.dst, term.src);
          }
        }
        z.Close();
        if (z.bot) {
          // Relationally infeasible edge: keep analyzing (kind-level
          // findings must survive) on a sane top state, but withhold
          // claims like the interval refinement does.
          st.range_dead = true;
          st.zone = Zone{};
          continue;
        }
        for (int r = 0; r < kZoneRegs; ++r) {
          AbsVal& reg = st.regs[r];
          if (!IsScalarKind(reg.kind)) {
            continue;
          }
          RangeVal rng = RngOf(reg);
          const s64 upper = z.Upper(r);
          const s64 lower = z.Lower(r);
          bool tightened = false;
          if (upper != kZoneInf && upper < rng.smax) {
            rng.smax = upper;
            tightened = true;
          }
          if (lower != -kZoneInf && lower > rng.smin) {
            rng.smin = lower;
            tightened = true;
          }
          if (!tightened) {
            continue;
          }
          if (rng.smin > rng.smax) {
            st.range_dead = true;
            break;
          }
          rng.Reduce();
          SetScalarRng(reg, rng);
        }
      }
    }
    if (taken_block != kNoBlock) {
      Propagate(taken_block, std::move(taken));
    }
    if (fall_block != kNoBlock) {
      Propagate(fall_block, std::move(fall));
    }
  }
  if (opts_.range_trace != nullptr && result.complete) {
    RecordTrace();
  }
  return result;
}

// Re-walks every reached block from its fixpoint in-state, recording the
// per-pc register claims. The fixpoint state at a block head *is* the
// path-insensitive invariant, so a single pass per block suffices (every
// pc belongs to exactly one block). Finding deduplication makes the
// re-execution of Transfer side-effect free.
void Dataflow::RecordTrace() {
  ebpf::RangeTrace& trace = *opts_.range_trace;
  trace.Reset(prog_.len());
  recording_ = true;
  for (xbase::usize b = 0; b < cfg_.blocks.size(); ++b) {
    // Skip unreached blocks and blocks only reachable across edges the
    // refinement proved infeasible: their claims would be vacuous, and a
    // vacuous claim can falsely contradict the verifier's.
    if (!in_[b].valid || in_[b].range_dead) {
      continue;
    }
    DfState state = in_[b];
    const BasicBlock& block = cfg_.blocks[b];
    for (u32 pc = block.start; pc < block.end;) {
      if (pc < trace.per_pc.size()) {
        std::array<ebpf::RegClaim, ebpf::kNumRegs>& claims =
            trace.per_pc[pc];
        for (int r = 0; r < ebpf::kNumRegs; ++r) {
          const AbsVal& reg = state.regs[static_cast<xbase::usize>(r)];
          if (IsScalarKind(reg.kind)) {
            const RangeVal rng = RngOf(reg);
            claims[static_cast<xbase::usize>(r)].JoinScalar(
                rng.umin, rng.umax, rng.smin, rng.smax, rng.bits.value,
                rng.bits.mask);
          } else {
            claims[static_cast<xbase::usize>(r)].JoinOther();
          }
        }
      }
      if (opts_.enable_relational && pc < trace.rel_per_pc.size()) {
        // Pairwise difference bounds: the zone's constraint where it has
        // one, tightened against what the intervals already imply
        // (smax_i - smin_j, evaluated in 128 bits).
        std::array<s64, ebpf::kRelRegs * ebpf::kRelRegs> path;
        path.fill(ebpf::kRelInf);
        for (int i = 0; i < ebpf::kRelRegs; ++i) {
          const AbsVal& ri = state.regs[static_cast<xbase::usize>(i)];
          if (!IsScalarKind(ri.kind)) {
            continue;
          }
          const RangeVal rng_i = RngOf(ri);
          for (int j = 0; j < ebpf::kRelRegs; ++j) {
            if (i == j) {
              continue;
            }
            const AbsVal& rj = state.regs[static_cast<xbase::usize>(j)];
            if (!IsScalarKind(rj.kind)) {
              continue;
            }
            __int128 bound = static_cast<__int128>(rng_i.smax) -
                             static_cast<__int128>(RngOf(rj).smin);
            const s64 zone_bound = state.zone.DiffUpper(i, j);
            if (zone_bound != kZoneInf &&
                static_cast<__int128>(zone_bound) < bound) {
              bound = zone_bound;
            }
            if (bound < static_cast<__int128>(ebpf::kRelInf)) {
              path[static_cast<xbase::usize>(i * ebpf::kRelRegs + j)] =
                  static_cast<s64>(bound);
            }
          }
        }
        trace.rel_per_pc[pc].JoinPath(path);
      }
      Transfer(state, pc);
      pc += prog_.insns[pc].IsLdImm64() ? 2 : 1;
    }
  }
  recording_ = false;
}

}  // namespace

DataflowResult RunDataflow(const ebpf::Program& prog, const Cfg& cfg,
                           const CheckOptions& opts,
                           std::vector<Finding>& findings) {
  Dataflow pass(prog, cfg, opts, findings);
  return pass.Run();
}

}  // namespace staticcheck

// staticcheck: a second, verifier-independent static analysis over BPF
// bytecode. The in-kernel verifier is a single trust anchor (Table 1: 22
// verifier bugs in two years); this subsystem re-derives a subset of its
// safety judgments from scratch — CFG + dominators, forward dataflow over
// registers and stack, termination heuristics, lock-order projection — so a
// mis-verification can be caught by cross-checking two independent
// analyses (the differential oracle in analysis/diffcheck).
//
// Independence is load-bearing: nothing under src/staticcheck/ may include
// src/ebpf/verifier.h or reuse its state machinery. CI greps for it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/ebpf/helper.h"
#include "src/ebpf/map.h"
#include "src/ebpf/prog.h"
#include "src/ebpf/rangetrace.h"
#include "src/simkern/callgraph.h"
#include "src/xbase/status.h"

namespace staticcheck {

using xbase::s64;
using xbase::u32;
using xbase::u64;
using xbase::u8;

enum class Severity : u8 { kWarning, kError };
enum class Pass : u8 { kCfg, kDataflow, kTermination, kLocks };

std::string_view SeverityName(Severity severity);
std::string_view PassName(Pass pass);

struct Finding {
  Pass pass = Pass::kCfg;
  Severity severity = Severity::kWarning;
  u32 pc = 0;
  std::string rule;     // stable machine-readable id, e.g. "map-value-oob"
  std::string message;  // human explanation
};

struct Report {
  std::vector<Finding> findings;
  u32 block_count = 0;
  u32 back_edge_count = 0;
  // False when the dataflow pass hit its iteration budget and bailed; the
  // findings gathered so far are still valid, just not exhaustive.
  bool analysis_complete = true;
  // Worklist pops until the dataflow fixpoint — the cost metric paired
  // against the verifier's explored-state count in bench/verification_cost.
  u32 dataflow_iterations = 0;

  bool clean() const { return findings.empty(); }
  xbase::usize errors() const;
  bool HasRule(std::string_view rule) const;
};

struct CheckOptions {
  // All optional: passes degrade gracefully (e.g. no map table means map
  // value bounds cannot be checked, so those lints stay silent).
  const ebpf::MapTable* maps = nullptr;
  const ebpf::HelperRegistry* helpers = nullptr;
  const simkern::CallGraph* callgraph = nullptr;
  // Statically-derived total loop iteration count above which the
  // termination pass reports a runtime-budget finding.
  u64 runtime_budget_iters = 1u << 20;
  // Helpers whose kernel call graph reaches at least this many functions
  // are treated as deadlock-capable when invoked under a held spin lock.
  xbase::usize lock_reach_threshold = 30;
  // When set, the dataflow pass records its per-instruction register range
  // claims here (for diffcheck/rangefuzz cross-checking against the
  // verifier's trace).
  ebpf::RangeTrace* range_trace = nullptr;
  // Gates the zone (relational) domain and spill-value restore through the
  // stack domain. Off = the PR-3 interval product, kept switchable so the
  // precision delta stays measurable (bench/verification_cost A/B).
  bool enable_relational = true;
};

// Runs every pass. Fails (InvalidArgument) only on programs too malformed
// to build a CFG for (empty, or truncated ld_imm64); everything else —
// including structurally broken control flow — is reported as findings.
xbase::Result<Report> RunChecks(const ebpf::Program& prog,
                                const CheckOptions& opts = {});

// Renders findings with disassembly context, one line per finding.
std::string FormatReport(const ebpf::Program& prog, const Report& report);

}  // namespace staticcheck

#include "src/staticcheck/termination.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "src/xbase/strfmt.h"

namespace staticcheck {

namespace {

using ebpf::Insn;
using xbase::s32;
using xbase::StrFormat;

void AddFinding(std::vector<Finding>& findings, Severity severity, u32 pc,
                std::string rule, std::string message) {
  Finding finding;
  finding.pass = Pass::kTermination;
  finding.severity = severity;
  finding.pc = pc;
  finding.rule = std::move(rule);
  finding.message = std::move(message);
  findings.push_back(std::move(finding));
}

// Natural loop of a back edge: head, latch, and every block that reaches
// the latch without passing through the head.
std::set<u32> LoopBlocks(const Cfg& cfg, const BackEdge& edge) {
  std::set<u32> loop{edge.to, edge.from};
  std::vector<u32> worklist{edge.from};
  while (!worklist.empty()) {
    const u32 b = worklist.back();
    worklist.pop_back();
    if (b == edge.to) {
      continue;
    }
    for (const u32 pred : cfg.blocks[b].preds) {
      if (loop.insert(pred).second) {
        worklist.push_back(pred);
      }
    }
  }
  return loop;
}

// Registers written by an instruction (conservatively; calls clobber all
// caller-saved registers).
void WrittenRegs(const Insn& insn, std::set<u8>& out) {
  switch (insn.Class()) {
    case ebpf::BPF_ALU:
    case ebpf::BPF_ALU64:
    case ebpf::BPF_LDX:
    case ebpf::BPF_LD:
      out.insert(insn.dst);
      return;
    case ebpf::BPF_JMP:
    case ebpf::BPF_JMP32:
      if (insn.IsCall()) {
        for (u8 regno = ebpf::R0; regno <= ebpf::R5; ++regno) {
          out.insert(regno);
        }
      }
      return;
    default:
      return;
  }
}

// The last instruction slot of a block.
u32 TerminatorPc(const ebpf::Program& prog, const BasicBlock& block) {
  u32 last = block.start;
  for (u32 pc = block.start; pc < block.end;) {
    last = pc;
    pc += prog.insns[pc].IsLdImm64() ? 2 : 1;
  }
  return last;
}

bool IsCondJmp(const Insn& insn) {
  const u8 cls = insn.Class();
  if (cls != ebpf::BPF_JMP && cls != ebpf::BPF_JMP32) {
    return false;
  }
  const u8 op = insn.JmpOp();
  return op != ebpf::BPF_JA && op != ebpf::BPF_CALL &&
         op != ebpf::BPF_EXIT;
}

// --- Back-edge loops -----------------------------------------------------

void CheckNaturalLoops(const ebpf::Program& prog, const Cfg& cfg,
                       std::vector<Finding>& findings) {
  std::set<u32> reported_heads;
  for (const BackEdge& edge : cfg.back_edges) {
    const std::set<u32> loop = LoopBlocks(cfg, edge);
    const u32 head_pc = cfg.blocks[edge.to].start;
    if (!reported_heads.insert(head_pc).second) {
      continue;  // one report per loop head
    }

    // Exit edges and the registers the exit conditions read.
    bool has_exit = false;
    std::set<u8> cond_regs;
    for (const u32 b : loop) {
      bool exits = false;
      for (const u32 succ : cfg.blocks[b].succs) {
        if (loop.count(succ) == 0) {
          exits = true;
        }
      }
      if (!exits) {
        continue;
      }
      has_exit = true;
      const Insn& term = prog.insns[TerminatorPc(prog, cfg.blocks[b])];
      if (IsCondJmp(term)) {
        cond_regs.insert(term.dst);
        if (term.UsesRegSrc()) {
          cond_regs.insert(term.src);
        }
      }
    }
    if (!has_exit) {
      AddFinding(findings, Severity::kError, head_pc, "infinite-loop",
                 StrFormat("the loop headed at pc %u has no exit edge",
                           head_pc));
      continue;
    }

    // Progress heuristic: some register the exit condition reads must be
    // written inside the loop, else the condition is loop-invariant.
    std::set<u8> written;
    for (const u32 b : loop) {
      const BasicBlock& block = cfg.blocks[b];
      for (u32 pc = block.start; pc < block.end;) {
        WrittenRegs(prog.insns[pc], written);
        pc += prog.insns[pc].IsLdImm64() ? 2 : 1;
      }
    }
    bool progresses = false;
    for (const u8 regno : cond_regs) {
      if (written.count(regno) != 0) {
        progresses = true;
      }
    }
    if (!progresses) {
      AddFinding(findings, Severity::kWarning, head_pc, "unbounded-loop",
                 StrFormat("no register read by the exit condition of the "
                           "loop at pc %u is updated inside it",
                           head_pc));
    }
  }
}

// --- bpf_loop iteration products -----------------------------------------

struct LoopSite {
  u32 pc = 0;
  u64 count = 0;          // 0 = statically unknown
  u32 callback_pc = 0;
  bool callback_known = false;
};

// The function (entry range) a pc belongs to, given sorted entry pcs.
u32 OwningEntry(const std::vector<u32>& entry_pcs, u32 pc) {
  u32 owner = entry_pcs.front();
  for (const u32 entry : entry_pcs) {
    if (entry <= pc) {
      owner = entry;
    }
  }
  return owner;
}

u64 SaturatingMul(u64 a, u64 b) {
  if (a != 0 && b > std::numeric_limits<u64>::max() / a) {
    return std::numeric_limits<u64>::max();
  }
  return a * b;
}

// Total statically-estimated bpf_loop iterations starting from `entry`,
// following callback nesting.
u64 NestedIters(const std::map<u32, std::vector<LoopSite>>& by_entry,
                u32 entry, u32 depth) {
  if (depth > 8) {
    return std::numeric_limits<u64>::max();  // cyclic callback chain
  }
  u64 total = 1;
  const auto it = by_entry.find(entry);
  if (it == by_entry.end()) {
    return total;
  }
  u64 sum = 0;
  for (const LoopSite& site : it->second) {
    const u64 count = site.count == 0 ? 1 : site.count;
    const u64 inner = site.callback_known
                          ? NestedIters(by_entry, site.callback_pc,
                                        depth + 1)
                          : 1;
    sum += SaturatingMul(count, inner);
  }
  return std::max<u64>(total, sum);
}

void CheckBpfLoops(const ebpf::Program& prog, const Cfg& cfg,
                   const CheckOptions& opts,
                   std::vector<Finding>& findings) {
  // Collect call sites with a block-local backward scan for the constant
  // count (R1) and the callback reference (R2).
  std::vector<u32> entry_pcs;
  for (const u32 entry : cfg.entries) {
    entry_pcs.push_back(cfg.blocks[entry].start);
  }
  std::sort(entry_pcs.begin(), entry_pcs.end());

  std::map<u32, std::vector<LoopSite>> by_entry;
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) {
      continue;
    }
    for (u32 pc = block.start; pc < block.end;) {
      const Insn& insn = prog.insns[pc];
      const u32 width = insn.IsLdImm64() ? 2 : 1;
      if (insn.IsHelperCall() &&
          insn.imm == static_cast<s32>(ebpf::kHelperLoop)) {
        LoopSite site;
        site.pc = pc;
        for (u32 back = block.start; back < pc;) {
          const Insn& prior = prog.insns[back];
          if (prior.Class() == ebpf::BPF_ALU64 &&
              prior.AluOp() == ebpf::BPF_MOV && !prior.UsesRegSrc() &&
              prior.dst == ebpf::R1) {
            site.count = static_cast<u64>(
                std::max<s64>(0, static_cast<s64>(prior.imm)));
          }
          if (prior.IsLdImm64() && prior.src == ebpf::BPF_PSEUDO_FUNC &&
              prior.dst == ebpf::R2 && prior.imm >= 0 &&
              static_cast<u32>(prior.imm) < prog.len()) {
            site.callback_pc = static_cast<u32>(prior.imm);
            site.callback_known = true;
          }
          back += prior.IsLdImm64() ? 2 : 1;
        }
        if (site.count == 0) {
          AddFinding(findings, Severity::kWarning, pc,
                     "loop-bound-unknown",
                     "bpf_loop iteration count is not a block-local "
                     "constant");
        }
        by_entry[OwningEntry(entry_pcs, pc)].push_back(site);
      }
      pc += width;
    }
  }
  if (by_entry.empty()) {
    return;
  }

  const u64 total = NestedIters(by_entry, entry_pcs.front(), 0);
  if (total > opts.runtime_budget_iters) {
    AddFinding(findings, Severity::kWarning, 0, "loop-budget",
               StrFormat("statically-estimated bpf_loop iterations (%llu) "
                         "exceed the runtime budget of %llu",
                         static_cast<unsigned long long>(total),
                         static_cast<unsigned long long>(
                             opts.runtime_budget_iters)));
  }
}

}  // namespace

void RunTermination(const ebpf::Program& prog, const Cfg& cfg,
                    const CheckOptions& opts,
                    std::vector<Finding>& findings) {
  CheckNaturalLoops(prog, cfg, findings);
  CheckBpfLoops(prog, cfg, opts, findings);
}

}  // namespace staticcheck

#include "src/staticcheck/locks.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "src/xbase/strfmt.h"

namespace staticcheck {

namespace {

using ebpf::Insn;
using xbase::s32;
using xbase::StrFormat;

constexpr u32 kMaxDepth = 4;  // nesting deeper than this is saturated

struct LockState {
  bool valid = false;
  u32 lo = 0;  // minimum lock depth over paths reaching this block
  u32 hi = 0;  // maximum lock depth
  bool operator==(const LockState&) const = default;
};

class LockPass {
 public:
  LockPass(const ebpf::Program& prog, const Cfg& cfg,
           const CheckOptions& opts, std::vector<Finding>& findings)
      : prog_(prog), cfg_(cfg), opts_(opts), findings_(findings) {}

  void Run();

 private:
  void Report(Severity severity, u32 pc, std::string_view rule,
              std::string message) {
    if (!reported_.insert({std::string(rule), pc}).second) {
      return;
    }
    Finding finding;
    finding.pass = Pass::kLocks;
    finding.severity = severity;
    finding.pc = pc;
    finding.rule = std::string(rule);
    finding.message = std::move(message);
    findings_.push_back(std::move(finding));
  }

  void HelperUnderLock(u32 pc, s32 helper_id);
  void Transfer(LockState& state, u32 pc);
  void Propagate(u32 block, const LockState& out);

  const ebpf::Program& prog_;
  const Cfg& cfg_;
  const CheckOptions& opts_;
  std::vector<Finding>& findings_;
  std::set<std::pair<std::string, u32>> reported_;
  std::vector<LockState> in_;
  std::deque<u32> worklist_;
};

void LockPass::HelperUnderLock(u32 pc, s32 helper_id) {
  std::string name = StrFormat("helper %d", helper_id);
  xbase::usize reach = 0;
  bool reach_known = false;
  if (opts_.helpers != nullptr) {
    auto spec = opts_.helpers->FindSpec(static_cast<u32>(helper_id));
    if (spec.ok()) {
      name = spec.value()->name;
      if (opts_.callgraph != nullptr &&
          !spec.value()->entry_func.empty()) {
        auto count = opts_.callgraph->ReachableCount(
            spec.value()->entry_func);
        if (count.ok()) {
          reach = count.value();
          reach_known = true;
        }
      }
    }
  }
  if (reach_known && reach >= opts_.lock_reach_threshold) {
    Report(Severity::kError, pc, "helper-under-lock",
           StrFormat("%s (reaches %zu kernel functions) is called while a "
                     "spin lock may be held",
                     name.c_str(), reach));
  } else {
    Report(Severity::kWarning, pc, "helper-call-under-lock",
           StrFormat("%s is called while a spin lock may be held",
                     name.c_str()));
  }
}

void LockPass::Transfer(LockState& state, u32 pc) {
  const Insn& insn = prog_.insns[pc];
  if (insn.IsHelperCall()) {
    if (insn.imm == static_cast<s32>(ebpf::kHelperSpinLock)) {
      if (state.hi >= 1) {
        Report(Severity::kError, pc, "double-lock",
               "bpf_spin_lock while a spin lock may already be held "
               "(deadlock)");
      }
      state.lo = std::min(state.lo + 1, kMaxDepth);
      state.hi = std::min(state.hi + 1, kMaxDepth);
    } else if (insn.imm == static_cast<s32>(ebpf::kHelperSpinUnlock)) {
      if (state.lo == 0) {
        Report(Severity::kWarning, pc, "unlock-unheld",
               "bpf_spin_unlock on a path where no lock is held");
      }
      state.lo = state.lo > 0 ? state.lo - 1 : 0;
      state.hi = state.hi > 0 ? state.hi - 1 : 0;
    } else if (state.hi >= 1) {
      HelperUnderLock(pc, insn.imm);
    }
    return;
  }
  if (insn.IsExit() && state.hi >= 1) {
    Report(Severity::kError, pc, "lock-held-at-exit",
           "the program can exit while still holding a spin lock");
  }
}

void LockPass::Propagate(u32 block, const LockState& out) {
  LockState& dest = in_[block];
  if (!dest.valid) {
    dest = out;
    dest.valid = true;
    worklist_.push_back(block);
    return;
  }
  LockState merged = dest;
  merged.lo = std::min(dest.lo, out.lo);
  merged.hi = std::max(dest.hi, out.hi);
  if (!(merged == dest)) {
    dest = merged;
    worklist_.push_back(block);
  }
}

void LockPass::Run() {
  in_.assign(cfg_.blocks.size(), LockState{});
  for (const u32 entry : cfg_.entries) {
    LockState init;
    init.valid = true;
    Propagate(entry, init);
  }
  // The depth lattice is finite (lo/hi in [0, kMaxDepth]) so this
  // converges without widening.
  u64 budget = static_cast<u64>(cfg_.blocks.size()) *
                   (kMaxDepth + 1) * (kMaxDepth + 1) +
               64;
  while (!worklist_.empty() && budget-- > 0) {
    const u32 b = worklist_.front();
    worklist_.pop_front();
    LockState state = in_[b];
    const BasicBlock& block = cfg_.blocks[b];
    for (u32 pc = block.start; pc < block.end;) {
      Transfer(state, pc);
      pc += prog_.insns[pc].IsLdImm64() ? 2 : 1;
    }
    for (const u32 succ : block.succs) {
      Propagate(succ, state);
    }
  }
}

}  // namespace

void RunLocks(const ebpf::Program& prog, const Cfg& cfg,
              const CheckOptions& opts, std::vector<Finding>& findings) {
  LockPass pass(prog, cfg, opts, findings);
  pass.Run();
}

}  // namespace staticcheck

// Control-flow graph over raw BPF bytecode: basic blocks, reachability from
// every entry point (main, subprograms, bpf_loop callbacks), immediate
// dominators, and back-edge detection. Built without consulting the
// verifier — this is the foundation the other staticcheck passes share.
#pragma once

#include <vector>

#include "src/ebpf/prog.h"
#include "src/staticcheck/check.h"

namespace staticcheck {

inline constexpr u32 kNoBlock = 0xffffffffu;

struct BasicBlock {
  u32 start = 0;  // first instruction pc
  u32 end = 0;    // one past the last slot (ld_imm64 occupies two)
  std::vector<u32> succs;
  std::vector<u32> preds;
  bool reachable = false;
  u32 idom = kNoBlock;  // immediate dominator block (kNoBlock for entries)
};

struct BackEdge {
  u32 from = 0;  // latch block
  u32 to = 0;    // loop head block
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  // pc -> owning block; kNoBlock for the second slot of a ld_imm64.
  std::vector<u32> block_of;
  // Entry blocks: block 0 (pc 0), pseudo-call targets, ld_func callbacks.
  std::vector<u32> entries;
  std::vector<BackEdge> back_edges;

  // True if every path from an entry to `b` passes through `a`.
  bool Dominates(u32 a, u32 b) const;
};

// Decodes the program structure and appends structural findings
// (dead-code, fallthrough-off-end, jump-out-of-range, jump-into-ld-imm64)
// to `findings`. Fails only when no CFG can be built at all.
xbase::Result<Cfg> BuildCfg(const ebpf::Program& prog,
                            std::vector<Finding>& findings);

}  // namespace staticcheck

#include "src/staticcheck/check.h"

#include <algorithm>
#include <tuple>

#include "src/ebpf/disasm.h"
#include "src/staticcheck/cfg.h"
#include "src/staticcheck/dataflow.h"
#include "src/staticcheck/locks.h"
#include "src/staticcheck/termination.h"
#include "src/xbase/strfmt.h"

namespace staticcheck {

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string_view PassName(Pass pass) {
  switch (pass) {
    case Pass::kCfg:
      return "cfg";
    case Pass::kDataflow:
      return "dataflow";
    case Pass::kTermination:
      return "termination";
    case Pass::kLocks:
      return "locks";
  }
  return "?";
}

xbase::usize Report::errors() const {
  xbase::usize count = 0;
  for (const Finding& finding : findings) {
    if (finding.severity == Severity::kError) {
      ++count;
    }
  }
  return count;
}

bool Report::HasRule(std::string_view rule) const {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) {
      return true;
    }
  }
  return false;
}

xbase::Result<Report> RunChecks(const ebpf::Program& prog,
                                const CheckOptions& opts) {
  Report report;
  XB_ASSIGN_OR_RETURN(Cfg cfg, BuildCfg(prog, report.findings));
  report.block_count = static_cast<u32>(cfg.blocks.size());
  report.back_edge_count = static_cast<u32>(cfg.back_edges.size());

  DataflowResult dataflow = RunDataflow(prog, cfg, opts, report.findings);
  report.analysis_complete = dataflow.complete;
  report.dataflow_iterations = dataflow.iterations;
  RunTermination(prog, cfg, opts, report.findings);
  RunLocks(prog, cfg, opts, report.findings);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.pc, a.pass, a.rule) <
                     std::tie(b.pc, b.pass, b.rule);
            });
  return report;
}

std::string FormatReport(const ebpf::Program& prog, const Report& report) {
  std::string out = xbase::StrFormat(
      "staticcheck: %zu finding(s), %zu error(s), %u block(s), %u back "
      "edge(s)%s\n",
      report.findings.size(), report.errors(), report.block_count,
      report.back_edge_count,
      report.analysis_complete ? "" : " [incomplete]");
  for (const Finding& finding : report.findings) {
    std::string disasm = finding.pc < prog.len()
                             ? ebpf::DisasmInsn(prog.insns[finding.pc])
                             : std::string("<no insn>");
    out += xbase::StrFormat(
        "  pc %4u: [%.*s/%.*s] %s: %s  ; %s\n", finding.pc,
        static_cast<int>(PassName(finding.pass).size()),
        PassName(finding.pass).data(),
        static_cast<int>(SeverityName(finding.severity).size()),
        SeverityName(finding.severity).data(), finding.rule.c_str(),
        finding.message.c_str(), disasm.c_str());
  }
  return out;
}

}  // namespace staticcheck

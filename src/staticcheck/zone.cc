#include "src/staticcheck/zone.h"

#include <cstdio>

#include "src/ebpf/insn.h"

namespace staticcheck {
namespace {

// Saturating bound addition: inf absorbs, and finite sums are clamped back
// into (-kZoneCap, kZoneCap]. Clamping a sum *up* to -kZoneCap weakens the
// constraint (sound); a sum reaching kZoneCap is treated as "no
// constraint". 128-bit intermediates because two caps can sum past s64.
s64 SatAdd(s64 a, s64 b) {
  if (a == kZoneInf || b == kZoneInf) return kZoneInf;
  const __int128 s = static_cast<__int128>(a) + b;
  if (s >= static_cast<__int128>(kZoneCap)) return kZoneInf;
  if (s <= static_cast<__int128>(-kZoneCap)) return -kZoneCap;
  return static_cast<s64>(s);
}

s64 Clamp(s64 c) {
  if (c >= kZoneCap) return kZoneInf;
  if (c <= -kZoneCap) return -kZoneCap;
  return c;
}

}  // namespace

bool Zone::IsTop() const {
  if (bot) return false;
  for (int i = 0; i < kZoneVars; ++i) {
    for (int j = 0; j < kZoneVars; ++j) {
      if (At(i, j) != (i == j ? 0 : kZoneInf)) return false;
    }
  }
  return true;
}

void Zone::AddUpper(int i, int j, s64 c) {
  if (bot || i == j) return;
  c = Clamp(c);
  if (c < At(i, j)) At(i, j) = c;
}

void Zone::Forget(int v) {
  if (bot) return;
  for (int k = 0; k < kZoneVars; ++k) {
    if (k == v) continue;
    At(v, k) = kZoneInf;
    At(k, v) = kZoneInf;
  }
  At(v, v) = 0;
}

void Zone::AssignCopy(int dst, int src) {
  if (bot || dst == src) return;
  // Copy src's row and column, then record equality. On a closed input the
  // result is closed: dst has exactly src's shortest paths.
  for (int k = 0; k < kZoneVars; ++k) {
    if (k == dst || k == src) continue;
    At(dst, k) = At(src, k);
    At(k, dst) = At(k, src);
  }
  At(dst, src) = 0;
  At(src, dst) = 0;
  At(dst, dst) = 0;
}

void Zone::AssignShift(int v, s64 lo, s64 hi) {
  if (bot) return;
  // v' = v + d with d in [lo, hi]:
  //   v' - k = (v - k) + d <= At(v,k) + hi
  //   k - v' = (k - v) - d <= At(k,v) - lo
  for (int k = 0; k < kZoneVars; ++k) {
    if (k == v) continue;
    At(v, k) = SatAdd(At(v, k), hi);
    At(k, v) = SatAdd(At(k, v), -lo);
  }
}

void Zone::AssignConst(int v, s64 c) {
  if (bot) return;
  Forget(v);
  AddUpper(v, kZoneZero, c);
  AddUpper(kZoneZero, v, -c);
}

void Zone::SeedRange(int v, s64 smin, s64 smax) {
  if (bot) return;
  if (smin < -kZoneSafe || smax > kZoneSafe || smin > smax) return;
  AddUpper(v, kZoneZero, smax);
  AddUpper(kZoneZero, v, -smin);
}

void Zone::RefineCompare(u8 jmp_op, bool taken, int dst, int src) {
  if (bot || dst == src) return;
  // Normalise to the constraint that holds on this edge. All constraints
  // are over the signed-64 order; the fall-through edge of `Jop` is the
  // taken edge of the negated op.
  u8 op = jmp_op;
  if (!taken) {
    switch (jmp_op) {
      case ebpf::BPF_JEQ: op = ebpf::BPF_JNE; break;
      case ebpf::BPF_JNE: op = ebpf::BPF_JEQ; break;
      case ebpf::BPF_JSGT: op = ebpf::BPF_JSLE; break;
      case ebpf::BPF_JSGE: op = ebpf::BPF_JSLT; break;
      case ebpf::BPF_JSLT: op = ebpf::BPF_JSGE; break;
      case ebpf::BPF_JSLE: op = ebpf::BPF_JSGT; break;
      default: return;
    }
  }
  switch (op) {
    case ebpf::BPF_JEQ:  // dst == src
      AddUpper(dst, src, 0);
      AddUpper(src, dst, 0);
      break;
    case ebpf::BPF_JNE:
      // Disequality is not expressible as a difference bound.
      break;
    case ebpf::BPF_JSGT:  // dst > src  <=>  src - dst <= -1
      AddUpper(src, dst, -1);
      break;
    case ebpf::BPF_JSGE:  // dst >= src
      AddUpper(src, dst, 0);
      break;
    case ebpf::BPF_JSLT:  // dst < src  <=>  dst - src <= -1
      AddUpper(dst, src, -1);
      break;
    case ebpf::BPF_JSLE:  // dst <= src
      AddUpper(dst, src, 0);
      break;
    default:
      break;
  }
}

void Zone::Close() {
  if (bot) return;
  for (int k = 0; k < kZoneVars; ++k) {
    for (int i = 0; i < kZoneVars; ++i) {
      const s64 ik = At(i, k);
      if (ik == kZoneInf) continue;
      for (int j = 0; j < kZoneVars; ++j) {
        const s64 via = SatAdd(ik, At(k, j));
        if (via < At(i, j)) At(i, j) = via;
      }
    }
  }
  for (int i = 0; i < kZoneVars; ++i) {
    if (At(i, i) < 0) {
      bot = true;
      return;
    }
    At(i, i) = 0;
  }
}

Zone Zone::Join(const Zone& a, const Zone& b) {
  if (a.bot) return b;
  if (b.bot) return a;
  Zone out;
  for (int i = 0; i < kZoneVars * kZoneVars; ++i) {
    const s64 x = a.m[static_cast<xbase::usize>(i)];
    const s64 y = b.m[static_cast<xbase::usize>(i)];
    out.m[static_cast<xbase::usize>(i)] = x > y ? x : y;
  }
  return out;
}

Zone Zone::Widen(const Zone& prev, const Zone& next) {
  if (prev.bot) return next;
  if (next.bot) return prev;
  Zone out;
  for (int i = 0; i < kZoneVars * kZoneVars; ++i) {
    const s64 p = prev.m[static_cast<xbase::usize>(i)];
    const s64 n = next.m[static_cast<xbase::usize>(i)];
    out.m[static_cast<xbase::usize>(i)] = n > p ? kZoneInf : p;
  }
  for (int i = 0; i < kZoneVars; ++i) {
    out.At(i, i) = 0;
  }
  return out;
}

std::string Zone::ToString() const {
  if (bot) return "zone{bot}";
  if (IsTop()) return "zone{top}";
  std::string out = "zone{";
  bool first = true;
  char buf[96];
  auto name = [](int v, char* s) {
    if (v == kZoneZero) {
      std::snprintf(s, 16, "0");
    } else if (v >= kZoneSlot0) {
      std::snprintf(s, 16, "fp-%d", 8 * (v - kZoneSlot0 + 1));
    } else {
      std::snprintf(s, 16, "r%d", v);
    }
  };
  for (int i = 0; i < kZoneVars; ++i) {
    for (int j = 0; j < kZoneVars; ++j) {
      if (i == j || At(i, j) == kZoneInf) continue;
      char ni[16], nj[16];
      name(i, ni);
      name(j, nj);
      std::snprintf(buf, sizeof(buf), "%s%s-%s<=%lld", first ? "" : ", ", ni,
                    nj, static_cast<long long>(At(i, j)));
      out += buf;
      first = false;
    }
  }
  out += "}";
  return out;
}

}  // namespace staticcheck

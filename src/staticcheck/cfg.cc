#include "src/staticcheck/cfg.h"

#include <algorithm>
#include <set>

#include "src/xbase/strfmt.h"

namespace staticcheck {

namespace {

using ebpf::Insn;
using xbase::StrFormat;

void AddFinding(std::vector<Finding>& findings, Severity severity, u32 pc,
                std::string rule, std::string message) {
  Finding finding;
  finding.pass = Pass::kCfg;
  finding.severity = severity;
  finding.pc = pc;
  finding.rule = std::move(rule);
  finding.message = std::move(message);
  findings.push_back(std::move(finding));
}

bool IsCondJmp(const Insn& insn) {
  const u8 cls = insn.Class();
  if (cls != ebpf::BPF_JMP && cls != ebpf::BPF_JMP32) {
    return false;
  }
  const u8 op = insn.JmpOp();
  return op != ebpf::BPF_JA && op != ebpf::BPF_CALL && op != ebpf::BPF_EXIT;
}

bool IsUncondJa(const Insn& insn) {
  return insn.Class() == ebpf::BPF_JMP && insn.JmpOp() == ebpf::BPF_JA;
}

}  // namespace

bool Cfg::Dominates(u32 a, u32 b) const {
  while (b != kNoBlock) {
    if (a == b) {
      return true;
    }
    b = blocks[b].idom;
  }
  return false;
}

xbase::Result<Cfg> BuildCfg(const ebpf::Program& prog,
                            std::vector<Finding>& findings) {
  const u32 len = prog.len();
  if (len == 0) {
    return xbase::InvalidArgument("cannot analyze an empty program");
  }

  // Slot map: mark the second half of every ld_imm64 so jumps into it are
  // detectable and pc iteration can skip it.
  std::vector<bool> is_second_slot(len, false);
  for (u32 pc = 0; pc < len; ++pc) {
    if (is_second_slot[pc]) {
      continue;
    }
    if (prog.insns[pc].IsLdImm64()) {
      if (pc + 1 >= len) {
        return xbase::InvalidArgument(
            StrFormat("ld_imm64 at pc %u is truncated", pc));
      }
      is_second_slot[pc + 1] = true;
    }
  }

  const auto valid_target = [&](u32 from, s64 target) -> bool {
    if (target < 0 || target >= static_cast<s64>(len)) {
      AddFinding(findings, Severity::kError, from, "jump-out-of-range",
                 StrFormat("jump target %lld is outside the program",
                           static_cast<long long>(target)));
      return false;
    }
    if (is_second_slot[static_cast<u32>(target)]) {
      AddFinding(findings, Severity::kError, from, "jump-into-ld-imm64",
                 StrFormat("jump lands in the middle of the ld_imm64 at "
                           "pc %lld",
                           static_cast<long long>(target - 1)));
      return false;
    }
    return true;
  };

  // Leaders: entry 0, jump targets, instructions after a terminator, and
  // subprogram / callback entry points.
  std::set<u32> leaders{0};
  std::set<u32> entry_pcs{0};
  for (u32 pc = 0; pc < len; ++pc) {
    if (is_second_slot[pc]) {
      continue;
    }
    const Insn& insn = prog.insns[pc];
    const u32 width = insn.IsLdImm64() ? 2 : 1;
    if (insn.IsPseudoCall()) {
      const s64 target = static_cast<s64>(pc) + 1 + insn.imm;
      if (valid_target(pc, target)) {
        leaders.insert(static_cast<u32>(target));
        entry_pcs.insert(static_cast<u32>(target));
      }
      continue;
    }
    if (insn.IsLdImm64() && insn.src == ebpf::BPF_PSEUDO_FUNC) {
      const s64 target = insn.imm;
      if (valid_target(pc, target)) {
        leaders.insert(static_cast<u32>(target));
        entry_pcs.insert(static_cast<u32>(target));
      }
    }
    if (IsUncondJa(insn) || IsCondJmp(insn)) {
      const s64 target = static_cast<s64>(pc) + 1 + insn.off;
      if (valid_target(pc, target)) {
        leaders.insert(static_cast<u32>(target));
      }
    }
    if (IsUncondJa(insn) || IsCondJmp(insn) || insn.IsExit()) {
      if (pc + width < len) {
        leaders.insert(pc + width);
      }
    }
  }

  Cfg cfg;
  cfg.block_of.assign(len, kNoBlock);

  // Carve blocks between leaders; a block also ends at its terminator.
  std::vector<u32> sorted_leaders(leaders.begin(), leaders.end());
  for (u32 i = 0; i < sorted_leaders.size(); ++i) {
    const u32 start = sorted_leaders[i];
    const u32 limit =
        i + 1 < sorted_leaders.size() ? sorted_leaders[i + 1] : len;
    BasicBlock block;
    block.start = start;
    u32 pc = start;
    while (pc < limit) {
      cfg.block_of[pc] = static_cast<u32>(cfg.blocks.size());
      const Insn& insn = prog.insns[pc];
      const u32 width = insn.IsLdImm64() ? 2 : 1;
      pc += width;
      if (IsUncondJa(insn) || IsCondJmp(insn) || insn.IsExit()) {
        break;
      }
    }
    block.end = pc;
    cfg.blocks.push_back(std::move(block));
  }

  // Successor edges.
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& block = cfg.blocks[b];
    // The terminator is the last instruction slot in the block.
    u32 last = block.start;
    for (u32 pc = block.start; pc < block.end;) {
      last = pc;
      pc += prog.insns[pc].IsLdImm64() ? 2 : 1;
    }
    const Insn& term = prog.insns[last];
    const auto link = [&](s64 target) {
      if (target < 0 || target >= static_cast<s64>(len) ||
          is_second_slot[static_cast<u32>(target)]) {
        return;  // already reported by valid_target above
      }
      const u32 succ = cfg.block_of[static_cast<u32>(target)];
      block.succs.push_back(succ);
      cfg.blocks[succ].preds.push_back(b);
    };
    if (term.IsExit()) {
      continue;
    }
    if (IsUncondJa(term)) {
      link(static_cast<s64>(last) + 1 + term.off);
      continue;
    }
    const u32 fall = block.end;
    if (IsCondJmp(term)) {
      link(static_cast<s64>(last) + 1 + term.off);
    }
    if (fall >= len) {
      AddFinding(findings, Severity::kError, last, "fallthrough-off-end",
                 "control flow can run past the last instruction");
      continue;
    }
    link(fall);
  }

  // Entries and reachability.
  for (const u32 pc : entry_pcs) {
    cfg.entries.push_back(cfg.block_of[pc]);
  }
  std::vector<u32> worklist = cfg.entries;
  while (!worklist.empty()) {
    const u32 b = worklist.back();
    worklist.pop_back();
    if (cfg.blocks[b].reachable) {
      continue;
    }
    cfg.blocks[b].reachable = true;
    for (const u32 succ : cfg.blocks[b].succs) {
      worklist.push_back(succ);
    }
  }
  for (const BasicBlock& block : cfg.blocks) {
    if (!block.reachable) {
      AddFinding(findings, Severity::kWarning, block.start, "dead-code",
                 StrFormat("instructions %u..%u are unreachable from any "
                           "entry point",
                           block.start, block.end - 1));
    }
  }

  // Immediate dominators (iterative Cooper-Harvey-Kennedy). A synthetic
  // root block fronts every entry so subprograms and callbacks — separate
  // roots in the same instruction stream — share one dominator forest.
  const u32 root = static_cast<u32>(cfg.blocks.size());
  {
    BasicBlock root_block;
    root_block.reachable = true;
    root_block.succs = cfg.entries;
    cfg.blocks.push_back(std::move(root_block));
    for (const u32 entry : cfg.entries) {
      cfg.blocks[entry].preds.push_back(root);
    }
  }
  std::vector<u32> rpo;
  {
    std::vector<u8> mark(cfg.blocks.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<std::pair<u32, u32>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      if (mark[b] == 0) {
        mark[b] = 1;
      }
      if (next < cfg.blocks[b].succs.size()) {
        const u32 succ = cfg.blocks[b].succs[next++];
        if (mark[succ] == 0) {
          stack.push_back({succ, 0});
        }
      } else {
        mark[b] = 2;
        rpo.push_back(b);
        stack.pop_back();
      }
    }
    std::reverse(rpo.begin(), rpo.end());
  }
  std::vector<u32> rpo_index(cfg.blocks.size(), 0);
  for (u32 i = 0; i < rpo.size(); ++i) {
    rpo_index[rpo[i]] = i;
  }
  cfg.blocks[root].idom = root;
  const auto intersect = [&](u32 a, u32 b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) {
        a = cfg.blocks[a].idom;
      }
      while (rpo_index[b] > rpo_index[a]) {
        b = cfg.blocks[b].idom;
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const u32 b : rpo) {
      if (b == root) {
        continue;
      }
      u32 new_idom = kNoBlock;
      for (const u32 pred : cfg.blocks[b].preds) {
        if (!cfg.blocks[pred].reachable ||
            cfg.blocks[pred].idom == kNoBlock) {
          continue;  // unreachable or not yet processed
        }
        new_idom = new_idom == kNoBlock ? pred : intersect(new_idom, pred);
      }
      if (new_idom != kNoBlock && cfg.blocks[b].idom != new_idom) {
        cfg.blocks[b].idom = new_idom;
        changed = true;
      }
    }
  }
  // Strip the synthetic root again.
  for (BasicBlock& block : cfg.blocks) {
    if (block.idom == root) {
      block.idom = kNoBlock;
    }
    while (!block.preds.empty() && block.preds.back() == root) {
      block.preds.pop_back();
    }
  }
  cfg.blocks.pop_back();

  // Back edges: target dominates source (natural loops), plus any
  // DFS-detected cycle edge for irreducible flow.
  std::set<std::pair<u32, u32>> seen;
  for (u32 b = 0; b < cfg.blocks.size(); ++b) {
    if (!cfg.blocks[b].reachable) {
      continue;
    }
    for (const u32 succ : cfg.blocks[b].succs) {
      if (cfg.Dominates(succ, b) && seen.insert({b, succ}).second) {
        cfg.back_edges.push_back(BackEdge{b, succ});
      }
    }
  }

  return cfg;
}

}  // namespace staticcheck

#include "src/staticcheck/permcheck.h"

#include "src/xbase/strfmt.h"

namespace staticcheck {

std::string_view PermReasonName(PermReason reason) {
  switch (reason) {
    case PermReason::kAllowed:
      return "allowed";
    case PermReason::kPrivilege:
      return "privilege";
    case PermReason::kVersion:
      return "version";
    case PermReason::kFamily:
      return "family";
  }
  return "unknown";
}

std::string_view PermLayerName(PermLayer layer) {
  switch (layer) {
    case PermLayer::kVerifier:
      return "verifier";
    case PermLayer::kRuntime:
      return "runtime";
    case PermLayer::kLoader:
      return "loader";
  }
  return "unknown";
}

std::string AdmissionCell::ToString() const {
  return xbase::StrFormat("helper#%u x %s x %s x %s", helper_id,
                          ebpf::ProgTypeName(type).data(),
                          privileged ? "priv" : "unpriv",
                          version.ToString().c_str());
}

ExpectedAdmission ExpectedAdmissionFor(const ebpf::HelperSpec& spec,
                                       ebpf::ProgType type, bool privileged,
                                       simkern::KernelVersion version) {
  ExpectedAdmission out;
  // Each layer's obligation is independent of the others: a cell the
  // family gate denies must be denied by the verifier even when the
  // loader would already have refused the load.
  out.loader_denies = ebpf::ProgTypeRequiresPrivilege(type) && !privileged;
  const bool version_denies = spec.introduced > version;
  const bool family_denies = !ebpf::FamilyAdmitsProgType(spec.family, type);
  out.verifier_denies = version_denies || family_denies;
  out.runtime_denies = version_denies || family_denies;
  out.allow = !out.loader_denies && !out.verifier_denies;
  if (out.allow) {
    return out;
  }
  // Attribute the denial to the gate that fires first in the real load
  // pipeline: loader privilege, then verifier version, then family.
  if (out.loader_denies) {
    out.reason = PermReason::kPrivilege;
  } else if (version_denies) {
    out.reason = PermReason::kVersion;
  } else {
    out.reason = PermReason::kFamily;
  }
  return out;
}

RequiredContract ScanRequiredContract(const ebpf::Program& prog,
                                      const ebpf::HelperRegistry& helpers) {
  RequiredContract out;
  out.requires_privilege = ebpf::ProgTypeRequiresPrivilege(prog.type);
  for (xbase::usize pc = 0; pc < prog.insns.size(); ++pc) {
    const ebpf::Insn& insn = prog.insns[pc];
    if (insn.IsLdImm64()) {
      ++pc;  // second slot of the wide immediate carries no opcode
      continue;
    }
    if (!insn.IsHelperCall()) {
      continue;
    }
    const u32 id = static_cast<u32>(insn.imm);
    bool seen = false;
    for (u32 prior : out.helpers) {
      if (prior == id) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.helpers.push_back(id);
    }
    auto spec = helpers.FindSpec(id);
    if (!spec.ok()) {
      out.violations.push_back(
          xbase::StrFormat("pc %zu: unknown helper #%u", pc, id));
      continue;
    }
    if (spec.value()->introduced > out.min_version) {
      out.min_version = spec.value()->introduced;
    }
    if (spec.value()->writes_state) {
      out.calls_writing_helper = true;
    }
    if (!ebpf::FamilyAdmitsProgType(spec.value()->family, prog.type)) {
      out.violations.push_back(xbase::StrFormat(
          "pc %zu: %s family helper %s#%u not callable from %s programs",
          pc, ebpf::HelperFamilyName(spec.value()->family).data(),
          spec.value()->name.c_str(), id,
          ebpf::ProgTypeName(prog.type).data()));
    }
  }
  return out;
}

}  // namespace staticcheck

// Zone (difference-bound matrix) relational domain over the registers and
// a handful of tracked stack slots: conjunctions of constraints
// `v_i - v_j <= c` over the *mathematical* signed-64 views of the tracked
// values, closed under Floyd-Warshall shortest paths. This is the piece
// the reduced product of known-bits x intervals (range.h) is structurally
// blind to — `r1 < r2 && r2 <= k  =>  r1 <= k-1` — and the precision class
// PREVAIL's split_dbm demonstrates is tractable where the in-kernel
// verifier instead pays with per-path state enumeration.
//
// Soundness contract (what rangefuzz checks against concrete execution):
// every constraint with a finite bound is a *may* claim — for all concrete
// states at the pc, (s64)value(v_i) - (s64)value(v_j) <= c computed
// without wraparound (in 128-bit). Constraints are therefore only ever
// introduced from
//   - exact value copies (mov, spill, fill),
//   - shifts by deltas the range domain proves non-overflowing,
//   - branch refinements on signed compares (exact on s64 views) or on
//     unsigned compares whose operands the range domain proves
//     non-negative (where unsigned and signed order coincide), and
//   - interval seeding from range-domain claims within +-kZoneSafe,
// and closure combines them with saturating arithmetic that only ever
// weakens (a sum clamped *up* is a weaker upper bound; a sum too large
// becomes "no constraint").
//
// Independence invariant: like range.h, this file may not include any
// verifier header — the whole point is a second implementation.
#pragma once

#include <array>
#include <string>

#include "src/xbase/types.h"

namespace staticcheck {

using xbase::s64;
using xbase::u8;

// Variable indices: R0..R9, the constant-zero pseudo-variable, then four
// tracked 8-byte stack slots (fp-8, fp-16, fp-24, fp-32 — the slots the
// spill/fill idiom and the fuzz generator actually use).
inline constexpr int kZoneRegs = 10;
inline constexpr int kZoneZero = 10;
inline constexpr int kZoneSlot0 = 11;
inline constexpr int kZoneSlots = 4;
inline constexpr int kZoneVars = kZoneSlot0 + kZoneSlots;

// "No constraint" sentinel.
inline constexpr s64 kZoneInf = s64{0x7fffffffffffffff};
// Bounds are clamped to (-kZoneCap, kZoneCap) so closure sums can never
// overflow back into the representable range.
inline constexpr s64 kZoneCap = kZoneInf / 4;
// Interval facts are only seeded for values within +-kZoneSafe: BPF
// arithmetic wraps at 2^64, and the non-wrapping reading of a constraint
// is only justified while every operand stays far from the s64 edges.
inline constexpr s64 kZoneSafe = s64{1} << 60;

// The zone element. Default-constructed = top (no constraints). `bot`
// (set by Close() on a negative cycle) = unreachable: no concrete state
// satisfies the constraints.
struct Zone {
  std::array<s64, kZoneVars * kZoneVars> m;
  bool bot = false;

  Zone() {
    m.fill(kZoneInf);
    for (int i = 0; i < kZoneVars; ++i) {
      At(i, i) = 0;
    }
  }

  s64& At(int i, int j) { return m[static_cast<xbase::usize>(i * kZoneVars + j)]; }
  s64 At(int i, int j) const {
    return m[static_cast<xbase::usize>(i * kZoneVars + j)];
  }

  bool IsTop() const;

  // Adds `v_i - v_j <= c` (intersection: keeps the tighter bound). Bounds
  // at or above kZoneCap are dropped (no constraint), bounds at or below
  // -kZoneCap are weakened to -kZoneCap; both directions are sound.
  void AddUpper(int i, int j, s64 c);

  // Drops every constraint mentioning v (fresh unknown value).
  void Forget(int v);

  // v_dst := v_src (exact copy): dst inherits every constraint of src plus
  // the equality. Closure-preserving when the input is closed.
  void AssignCopy(int dst, int src);

  // v := v + [lo, hi] where the caller proved the concrete addition cannot
  // wrap: every bound on v shifts by the delta interval.
  void AssignShift(int v, s64 lo, s64 hi);

  // v := the known constant c (|c| < kZoneCap enforced by clamping).
  void AssignConst(int v, s64 c);

  // Seeds range-domain facts smin <= v <= smax; ignored unless both
  // endpoints are within +-kZoneSafe.
  void SeedRange(int v, s64 smin, s64 smax);

  // Branch refinement for a 64-bit reg-reg compare along one edge, in
  // terms of the *signed* order: jmp_op is one of BPF_JEQ/JNE/JSGT/JSGE/
  // JSLT/JSLE (callers map unsigned compares to the signed forms only
  // after proving both operands non-negative). Unknown ops are ignored.
  void RefineCompare(u8 jmp_op, bool taken, int dst, int src);

  // Floyd-Warshall closure; sets `bot` on a negative cycle. Idempotent.
  void Close();

  // Tightest known difference v_i - v_j <= bound (kZoneInf = unknown).
  s64 DiffUpper(int i, int j) const { return At(i, j); }
  // Interval view: v <= Upper(v), v >= Lower(v) (kZoneInf/-kZoneCap-ish
  // sentinels mean unknown; callers test against kZoneInf).
  s64 Upper(int v) const { return At(v, kZoneZero); }
  s64 Lower(int v) const {
    const s64 c = At(kZoneZero, v);
    return c == kZoneInf ? -kZoneInf : -c;
  }

  // Join (least upper bound): pointwise max. The pointwise max of two
  // closed DBMs is closed. Bottom is the identity.
  static Zone Join(const Zone& a, const Zone& b);

  // Widening: any bound that grew past `prev` jumps to "no constraint",
  // so chains of joins stabilize. Not re-closed (standard caution:
  // closing a widened element can reintroduce the growth).
  static Zone Widen(const Zone& prev, const Zone& next);

  std::string ToString() const;

  bool operator==(const Zone&) const = default;
};

// The zone variable tracking stack slot at frame offset `off` (which must
// be the start of an 8-byte-aligned slot), or -1 if untracked.
inline int ZoneSlotVar(s64 off) {
  if (off >= -8 * kZoneSlots && off <= -8 && (off % 8) == 0) {
    return kZoneSlot0 + static_cast<int>((-off / 8) - 1);
  }
  return -1;
}

}  // namespace staticcheck

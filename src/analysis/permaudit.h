// permaudit: the access-control census. Model-checks every admission cell
// (helper x program type x privilege x kernel version) the contract in
// staticcheck/permcheck defines against what the enforcement layers
// actually do: the verifier's gates are probed by verifying a minimal
// witness program (gate rejections are textually distinguishable from
// later argument rejections because the gates run first), the runtime
// dispatch gate by lowering the same witness and reading the call site's
// gate_denied bit, and the loader's privilege gate by preparing a trivial
// program per (type, privilege) pair.
//
// A cell where a layer is more permissive than the contract is a missing
// permission check, attributed to that layer; a cell where a layer denies
// what the contract allows is an over-block (a different defect class —
// it costs expressiveness, not safety). On a clean build both lists are
// empty for 100% of cells; each injected perm fault must surface as gaps
// in exactly its own layer (RunPermFaultChecks).
#pragma once

#include <string>
#include <vector>

#include "src/ebpf/bpf.h"
#include "src/staticcheck/permcheck.h"

namespace analysis {

// A contract violation at one admission cell.
struct PermGap {
  staticcheck::AdmissionCell cell;
  staticcheck::PermLayer layer = staticcheck::PermLayer::kVerifier;
  staticcheck::PermReason reason = staticcheck::PermReason::kAllowed;
  // Severity bit from the helper spec: a dropped check in front of a
  // state-mutating helper outranks one in front of a pure reader.
  bool writes_state = false;
  std::string detail;  // expected vs observed, for the report table
};

struct PermCensusStats {
  xbase::usize helpers = 0;
  xbase::usize prog_types = 0;
  xbase::usize cells = 0;  // helper x type x privilege x probed versions
  xbase::usize verifier_probes = 0;
  xbase::usize runtime_probes = 0;
  xbase::usize loader_probes = 0;
  xbase::usize expected_allows = 0;
  xbase::usize expected_version_denials = 0;
  xbase::usize expected_family_denials = 0;
  xbase::usize expected_privilege_denials = 0;
};

struct PermCensusReport {
  PermCensusStats stats;
  std::vector<PermGap> gaps;        // layer more permissive than contract
  std::vector<PermGap> overblocks;  // layer denies a contract-allowed cell

  bool clean() const { return gaps.empty() && overblocks.empty(); }
};

// The version axis for one helper: the plotted Figure 4 timeline, the
// helper's own introduction version, and the minor release immediately
// before it — the predecessor cell is what the version-gate off-by-one
// defect flips, so the census must probe it to catch that defect.
std::vector<simkern::KernelVersion> ProbeVersionsFor(
    const ebpf::HelperSpec& spec);

// ---- probe primitives (shared with permstorm) ------------------------------

// What the verifier's admission gates did with a witness call. Rejections
// that fire after the gates (argument/type errors) count as admitted: the
// gates let the call through.
enum class GateObservation : xbase::u8 {
  kAdmitted,
  kVersionDenied,
  kFamilyDenied,
};

std::string_view GateObservationName(GateObservation obs);

// Verifies a minimal `call helper; exit` witness and classifies the gate
// outcome by the rejection text (the gates run before argument checks).
GateObservation ProbeVerifierGate(ebpf::Bpf& bpf, xbase::u32 helper_id,
                                  ebpf::ProgType type,
                                  simkern::KernelVersion version);

// Lowers the same witness with the dispatch gate version and reads back
// the call site's gate_denied bit (both execution engines consult it).
bool ProbeRuntimeGateDenies(ebpf::Bpf& bpf, xbase::u32 helper_id,
                            ebpf::ProgType type,
                            simkern::KernelVersion version);

// Prepares a trivial program as (type, privilege) and reports whether the
// loader's privilege gate specifically denied it.
bool ProbeLoaderPrivilegeDenies(ebpf::Bpf& bpf, ebpf::ProgType type,
                                bool privileged);

// Runs the full census against `bpf`'s registries with whatever faults its
// fault registry currently carries. Covers every registered helper.
PermCensusReport RunPermCensus(ebpf::Bpf& bpf);

// --check-faults mode: each injectable missing-permission-check defect, on
// its own fresh rig, must surface as census gaps in exactly the layer the
// fault lives in (and leave the other layer's gates intact), and the rig
// must census clean again once the fault is cleared. Clean baselines
// bracket the matrix so a trigger-happy census cannot pass.
struct PermFaultCheck {
  std::string name;    // fault id, or "clean.census" / "clean.recheck"
  bool passed = false;
  std::string detail;  // expected vs observed on failure
};

std::vector<PermFaultCheck> RunPermFaultChecks();

}  // namespace analysis

// permstorm: seeded randomized triage for the access-control census.
// Every op samples one admission cell (helper x program type x privilege x
// kernel version), probes the live enforcement layers (verifier gate,
// runtime dispatch gate, periodically the loader privilege gate), and
// compares the observation against a fault-adjusted model: the declared
// contract from staticcheck/permcheck, transformed by whichever perm
// defects the storm currently has injected. A divergence the active fault
// set explains is a confirmed gap (the storm found the injected bug); a
// divergence with no fault active is a false positive and fails the storm
// immediately. Surviving seeds 1/42/1337 clean is the zero-false-positive
// claim for the census.
//
// Everything derives from one xbase::Rng seed, so any failure replays
// bit-identically (`tools/permstorm --seed N --ops M`).
#pragma once

#include <string>

#include "src/xbase/types.h"

namespace analysis {

struct PermStormConfig {
  xbase::u64 seed = 1;
  xbase::u64 ops = 10000;
  // Round-robin toggling of the three missing-permission-check defects;
  // off = every divergence is a false positive.
  bool toggle_faults = true;
  // Ops between fault toggles.
  xbase::u64 toggle_period = 97;
};

struct PermStormStats {
  xbase::u64 ops_executed = 0;
  xbase::u64 cells_probed = 0;
  xbase::u64 verifier_admits = 0;
  xbase::u64 verifier_denials = 0;
  xbase::u64 runtime_denials = 0;
  xbase::u64 loader_probes = 0;
  xbase::u64 loader_denials = 0;
  // Divergences from the clean contract explained by an active fault: the
  // storm re-finding the injected gap.
  xbase::u64 gaps_confirmed = 0;
  xbase::u64 gaps_confirmed_writing = 0;  // gap in front of a mutator
  xbase::u64 fault_toggles = 0;
  xbase::usize faults_ever_injected = 0;  // distinct perm defects enabled
};

struct PermStormReport {
  bool ok = false;
  xbase::u64 seed = 0;
  // On failure: which cell diverged, at which op, what was expected.
  std::string failure;
  xbase::u64 failed_at_op = 0;
  PermStormStats stats;
};

PermStormReport RunPermStorm(const PermStormConfig& config);

}  // namespace analysis

#include "src/analysis/callgraph.h"

#include <algorithm>

namespace analysis {

ComplexitySummary AnalyzeHelperComplexity(const ebpf::HelperRegistry& helpers,
                                          const simkern::Kernel& kernel) {
  ComplexitySummary summary;
  const simkern::CallGraph& graph =
      const_cast<simkern::Kernel&>(kernel).callgraph();

  for (const ebpf::HelperSpec* spec : helpers.AllSpecs()) {
    HelperComplexity entry;
    entry.name = spec->name;
    entry.helper_id = spec->id;
    auto count = graph.ReachableCount(spec->entry_func);
    entry.reachable_nodes = count.ok() ? count.value() : 0;
    summary.helpers.push_back(std::move(entry));
  }

  std::sort(summary.helpers.begin(), summary.helpers.end(),
            [](const HelperComplexity& a, const HelperComplexity& b) {
              return a.reachable_nodes > b.reachable_nodes;
            });

  summary.total_helpers = summary.helpers.size();
  if (summary.total_helpers == 0) {
    return summary;
  }
  summary.max_nodes = summary.helpers.front().reachable_nodes;
  summary.min_nodes = summary.helpers.back().reachable_nodes;
  summary.median_nodes =
      summary.helpers[summary.total_helpers / 2].reachable_nodes;

  xbase::usize ge30 = 0;
  xbase::usize ge500 = 0;
  for (const HelperComplexity& entry : summary.helpers) {
    if (entry.reachable_nodes >= 30) {
      ++ge30;
    }
    if (entry.reachable_nodes >= 500) {
      ++ge500;
    }
  }
  summary.fraction_ge_30 =
      static_cast<double>(ge30) / static_cast<double>(summary.total_helpers);
  summary.fraction_ge_500 =
      static_cast<double>(ge500) / static_cast<double>(summary.total_helpers);
  return summary;
}

}  // namespace analysis

#include "src/analysis/permstorm.h"

#include <memory>
#include <set>
#include <vector>

#include "src/analysis/permaudit.h"
#include "src/ebpf/bpf.h"
#include "src/ebpf/fault.h"
#include "src/staticcheck/permcheck.h"
#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace analysis {

using ebpf::ProgType;
using simkern::KernelVersion;
using xbase::StrFormat;

namespace {

// The three injectable missing-permission-check defects, toggled
// round-robin when the storm runs with faults on.
constexpr std::string_view kPermFaults[] = {
    ebpf::kFaultVerifierFamilyGateSkip,
    ebpf::kFaultVerifierVersionGateOffByOne,
    ebpf::kFaultRuntimeDispatchUnverified,
};
constexpr xbase::usize kPermFaultCount =
    sizeof(kPermFaults) / sizeof(kPermFaults[0]);

// What the enforcement layers should do for a cell given the currently
// injected defects: the clean contract, transformed fault-by-fault. Any
// probe observation this model does not predict is a storm failure — and
// with no fault active the model *is* the contract, so a divergence there
// is a false positive of the census method itself.
struct FaultAdjustedModel {
  bool verifier_denies = false;
  bool runtime_denies = false;
  bool diverges_from_contract = false;  // an injected gap the storm expects
};

FaultAdjustedModel ModelFor(const ebpf::HelperSpec& spec, ProgType type,
                            KernelVersion version,
                            const ebpf::FaultRegistry& faults) {
  const bool family_denies =
      !ebpf::FamilyAdmitsProgType(spec.family, type);
  const bool version_denies = spec.introduced > version;

  KernelVersion verifier_gate = version;
  if (faults.IsActive(ebpf::kFaultVerifierVersionGateOffByOne)) {
    ++verifier_gate.minor;
  }
  const bool verifier_version_denies = spec.introduced > verifier_gate;
  const bool verifier_family_denies =
      family_denies && !faults.IsActive(ebpf::kFaultVerifierFamilyGateSkip);

  FaultAdjustedModel model;
  model.verifier_denies = verifier_version_denies || verifier_family_denies;
  model.runtime_denies =
      !faults.IsActive(ebpf::kFaultRuntimeDispatchUnverified) &&
      (version_denies || family_denies);
  const bool contract_denies = version_denies || family_denies;
  model.diverges_from_contract = (model.verifier_denies != contract_denies) ||
                                 (model.runtime_denies != contract_denies);
  return model;
}

}  // namespace

PermStormReport RunPermStorm(const PermStormConfig& config) {
  PermStormReport report;
  report.seed = config.seed;

  simkern::KernelConfig kconfig;
  kconfig.version = simkern::kV6_12;
  // Probe the per-type privilege gate, not the blanket sysctl in front of
  // it (see permaudit's rig).
  kconfig.unprivileged_bpf_disabled = false;
  simkern::Kernel kernel(kconfig);
  ebpf::Bpf bpf(kernel);
  if (kernel.crashed()) {
    report.failure = "rig construction crashed the kernel";
    return report;
  }

  const std::vector<const ebpf::HelperSpec*> specs = bpf.helpers().AllSpecs();
  if (specs.empty()) {
    report.failure = "helper registry is empty";
    return report;
  }

  // Version pool: the plotted timeline plus every helper's introduction
  // predecessor, so random sampling can land on off-by-one-sensitive cells.
  std::set<KernelVersion> version_pool;
  for (const ebpf::HelperSpec* spec : specs) {
    for (KernelVersion version : ProbeVersionsFor(*spec)) {
      version_pool.insert(version);
    }
  }
  const std::vector<KernelVersion> versions(version_pool.begin(),
                                            version_pool.end());

  xbase::Rng rng(config.seed);
  std::set<std::string_view> ever_injected;
  xbase::usize next_fault = 0;

  auto fail = [&](xbase::u64 op, std::string why) {
    report.failure = std::move(why);
    report.failed_at_op = op;
  };

  for (xbase::u64 op = 0; op < config.ops; ++op) {
    ++report.stats.ops_executed;

    if (config.toggle_faults && config.toggle_period > 0 &&
        op % config.toggle_period == config.toggle_period - 1) {
      // Round-robin: clear whatever is active, inject the next defect,
      // with an all-clean window every fourth toggle.
      for (std::string_view fault : kPermFaults) {
        bpf.faults().Clear(fault);
      }
      if (next_fault < kPermFaultCount) {
        bpf.faults().Inject(kPermFaults[next_fault]);
        ever_injected.insert(kPermFaults[next_fault]);
        report.stats.faults_ever_injected = ever_injected.size();
      }
      next_fault = (next_fault + 1) % (kPermFaultCount + 1);
      ++report.stats.fault_toggles;
    }

    const ebpf::HelperSpec& spec =
        *specs[rng.NextBelow(specs.size())];
    const ProgType type =
        ebpf::kAllProgTypes[rng.NextBelow(ebpf::kProgTypeCount)];
    const KernelVersion version = versions[rng.NextBelow(versions.size())];
    const bool privileged = rng.NextBelow(2) == 0;
    const staticcheck::AdmissionCell cell{spec.id, type, privileged,
                                          version};
    ++report.stats.cells_probed;

    const FaultAdjustedModel model =
        ModelFor(spec, type, version, bpf.faults());

    const GateObservation verifier_observed =
        ProbeVerifierGate(bpf, spec.id, type, version);
    const bool verifier_denied =
        verifier_observed != GateObservation::kAdmitted;
    if (verifier_denied) {
      ++report.stats.verifier_denials;
    } else {
      ++report.stats.verifier_admits;
    }
    if (verifier_denied != model.verifier_denies) {
      fail(op, StrFormat(
               "%s: verifier gate %s but the fault-adjusted contract says "
               "%s (active faults explain no such divergence: false %s)",
               cell.ToString().c_str(),
               GateObservationName(verifier_observed).data(),
               model.verifier_denies ? "deny" : "admit",
               model.verifier_denies ? "negative" : "positive"));
      return report;
    }

    const bool runtime_denied =
        ProbeRuntimeGateDenies(bpf, spec.id, type, version);
    if (runtime_denied) {
      ++report.stats.runtime_denials;
    }
    if (runtime_denied != model.runtime_denies) {
      fail(op, StrFormat(
               "%s: dispatch gate %s but the fault-adjusted contract says "
               "%s",
               cell.ToString().c_str(),
               runtime_denied ? "denied" : "admitted",
               model.runtime_denies ? "deny" : "admit"));
      return report;
    }

    if (model.diverges_from_contract) {
      ++report.stats.gaps_confirmed;
      if (spec.writes_state) {
        ++report.stats.gaps_confirmed_writing;
      }
    }

    // The loader's privilege axis is (type x privilege) only; sample it at
    // a lower rate than the per-helper gates.
    if (op % 19 == 0) {
      ++report.stats.loader_probes;
      const bool loader_denied =
          ProbeLoaderPrivilegeDenies(bpf, type, privileged);
      if (loader_denied) {
        ++report.stats.loader_denials;
      }
      const bool expected =
          ebpf::ProgTypeRequiresPrivilege(type) && !privileged;
      if (loader_denied != expected) {
        fail(op, StrFormat(
                 "loader privilege gate %s a %s %s load (contract says %s)",
                 loader_denied ? "denied" : "admitted",
                 privileged ? "privileged" : "unprivileged",
                 ebpf::ProgTypeName(type).data(),
                 expected ? "deny" : "allow"));
        return report;
      }
    }

    if (kernel.crashed()) {
      fail(op, "kernel crashed during probing");
      return report;
    }
  }

  report.ok = true;
  return report;
}

}  // namespace analysis

#include "src/analysis/trafficgen.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>

#include "src/analysis/workloads.h"
#include "src/core/sched.h"
#include "src/ebpf/asm.h"
#include "src/simkern/lsm.h"
#include "src/xbase/bytes.h"
#include "src/xbase/rand.h"
#include "src/xbase/strfmt.h"

namespace analysis {
namespace {

using xbase::u32;
using xbase::u64;
using xbase::u8;
using xbase::usize;

// Event mix (percent of the stream): heavily packet-dominated, like a
// datapath box with a scheduler, an LSM policy and a control plane
// churning maps underneath.
constexpr u64 kPacketPct = 70;
constexpr u64 kSchedPct = 10;
constexpr u64 kLsmPct = 10;  // remainder is map churn

// Events submitted between Drain barriers. Small enough to bound queue
// growth, large enough that the pool's work stealing has something to do.
constexpr u64 kBatchSize = 128;

struct TrafficRig {
  explicit TrafficRig(const TrafficConfig& config)
      : kernel(MakeKernelConfig(config.cpus)), bpf(kernel),
        bpf_loader(bpf) {
    kernel.set_oops_recovery(true);
    ok = kernel.BootstrapWorkload().ok();
    auto rt = safex::Runtime::Create(kernel, bpf);
    ok = ok && rt.ok();
    if (!ok) {
      return;
    }
    runtime = std::move(rt).value();
    key = std::make_unique<crypto::SigningKey>(
        crypto::SigningKey::FromPassphrase("trafficgen-vendor", "traffic"));
    (void)runtime->keyring().Enroll(*key);
    runtime->keyring().Seal();
    ext_loader = std::make_unique<safex::ExtLoader>(*runtime);
    supervisor = std::make_unique<safex::Supervisor>();
    safex::HookRegistryConfig hook_config;
    hook_config.supervisor = supervisor.get();
    hooks = std::make_unique<safex::HookRegistry>(bpf, bpf_loader,
                                                  *ext_loader, hook_config);
  }

  static simkern::KernelConfig MakeKernelConfig(u32 cpus) {
    simkern::KernelConfig config;
    config.version = simkern::kV6_12;  // LSM hook family needs >= 6.12
    config.unprivileged_bpf_disabled = false;
    config.num_cpus = cpus;
    return config;
  }

  bool ok = false;
  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader bpf_loader;
  std::unique_ptr<safex::Runtime> runtime;
  std::unique_ptr<crypto::SigningKey> key;
  std::unique_ptr<safex::ExtLoader> ext_loader;
  std::unique_ptr<safex::Supervisor> supervisor;
  std::unique_ptr<safex::HookRegistry> hooks;
};

// Single-writer per-CPU aggregation: only the thread bound to `cpu`
// touches slot `cpu` during the run; the main thread reads everything at
// the post-Drain quiescent point.
struct alignas(64) CpuAgg {
  u64 fires = 0;
  u64 lsm_denies = 0;
  std::vector<u64> latencies_ns;
};

u64 WallNowNs() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

LatencyTailsNs MergeTails(std::vector<CpuAgg>& aggs) {
  std::vector<u64> all;
  for (const CpuAgg& agg : aggs) {
    all.insert(all.end(), agg.latencies_ns.begin(), agg.latencies_ns.end());
  }
  LatencyTailsNs tails;
  tails.samples = all.size();
  if (all.empty()) {
    return tails;
  }
  std::sort(all.begin(), all.end());
  auto at = [&all](u64 per_mille) {
    const usize index = std::min(
        all.size() - 1, static_cast<usize>((all.size() * per_mille) / 1000));
    return all[index];
  };
  tails.p50 = at(500);
  tails.p99 = at(990);
  tails.p999 = at(999);
  tails.max = all.back();
  return tails;
}

}  // namespace

TrafficReport RunTraffic(const TrafficConfig& config) {
  TrafficReport report;
  TrafficRig rig(config);
  if (!rig.ok) {
    report.failure = "rig construction failed";
    return report;
  }
  const u32 num_cpus = rig.kernel.num_cpus();

  // --- tenants --------------------------------------------------------------
  // Packet tenant: an XDP counter over a *per-CPU* array map. Every fire
  // increments exactly one slot of key (protocol & 3) on the executing CPU,
  // so the cross-CPU sum at the end must equal the number of fires.
  ebpf::MapSpec pkt_spec;
  pkt_spec.type = ebpf::MapType::kPercpuArray;
  pkt_spec.key_size = 4;
  pkt_spec.value_size = 8;
  pkt_spec.max_entries = 4;
  pkt_spec.name = "tg_pkt";
  auto pkt_fd = rig.bpf.maps().Create(pkt_spec);
  if (!pkt_fd.ok()) {
    report.failure = "percpu map create failed";
    return report;
  }
  auto pkt_prog = BuildPacketCounter(pkt_fd.value());
  if (!pkt_prog.ok()) {
    report.failure = "packet tenant setup failed";
    return report;
  }
  auto pkt_id = rig.bpf_loader.Load(pkt_prog.value());
  if (!pkt_id.ok() ||
      !rig.hooks->AttachProgram(safex::HookPoint::kXdpIngress,
                                pkt_id.value())
           .ok()) {
    report.failure = "packet tenant setup failed";
    return report;
  }
  u8 payload[48] = {};
  payload[12] = 1;  // protocol byte -> counter key 1, XDP_PASS class
  auto skb = rig.kernel.net().CreateSkBuff(rig.kernel.mem(), payload);
  if (!skb.ok()) {
    report.failure = "skb setup failed";
    return report;
  }
  const simkern::Addr pkt_ctx = skb.value().meta_addr;

  // LSM tenant: an allow-all lsm_file_open policy over a populated
  // decision context (the family still fails closed if the policy dies).
  ebpf::ProgramBuilder lsm_builder("tg_lsm_allow", ebpf::ProgType::kLsm);
  lsm_builder.Ins(ebpf::Mov64Imm(ebpf::R0, 0)).Ins(ebpf::Exit());
  auto lsm_prog = lsm_builder.Build();
  if (!lsm_prog.ok()) {
    report.failure = "lsm tenant setup failed";
    return report;
  }
  auto lsm_id = rig.bpf_loader.Load(lsm_prog.value());
  if (!lsm_id.ok() ||
      !rig.hooks->AttachProgram(safex::HookPoint::kLsmFileOpen,
                                lsm_id.value())
           .ok()) {
    report.failure = "lsm tenant setup failed";
    return report;
  }
  auto lsm_block = rig.kernel.mem().Map(simkern::LsmCtxLayout::kSize,
                                        simkern::MemPerm::kReadWrite,
                                        simkern::RegionKind::kKernelData,
                                        "tg_lsmctx");
  if (!lsm_block.ok()) {
    report.failure = "lsm ctx setup failed";
    return report;
  }
  const simkern::Addr lsm_ctx = lsm_block.value();
  (void)rig.kernel.mem().WriteU32(lsm_ctx + simkern::LsmCtxLayout::kPid, 1);
  (void)rig.kernel.mem().WriteU32(lsm_ctx + simkern::LsmCtxLayout::kUid,
                                  1000);
  (void)rig.kernel.mem().WriteU64(lsm_ctx + simkern::LsmCtxLayout::kInodeId,
                                  4242);
  (void)rig.kernel.mem().WriteU32(
      lsm_ctx + simkern::LsmCtxLayout::kOpenFlags, 0);
  (void)rig.kernel.mem().WriteU32(lsm_ctx + simkern::LsmCtxLayout::kPathLen,
                                  8);

  // Scheduler tenant: one SchedCore per CPU over per-CPU runqueues (the
  // schedstorm arrangement), honest pick-first policy. The starvation
  // bound is deliberately huge: under a packet-dominated mix a CPU's sim
  // clock races ahead of its rare sched ticks, and this tenant measures
  // throughput, not containment.
  auto sched_prog = BuildSchedPickFirst();
  if (!sched_prog.ok()) {
    report.failure = "sched tenant setup failed";
    return report;
  }
  auto sched_id = rig.bpf_loader.Load(sched_prog.value());
  if (!sched_id.ok() ||
      !rig.hooks->AttachProgram(safex::HookPoint::kSchedPickNext,
                                sched_id.value())
           .ok()) {
    report.failure = "sched tenant setup failed";
    return report;
  }
  safex::SchedConfig sched_config;
  sched_config.starvation_bound_ns = 3600 * simkern::kNsPerSec;
  std::vector<std::unique_ptr<safex::SchedCore>> cores;
  for (u32 cpu = 0; cpu < num_cpus; ++cpu) {
    cores.push_back(std::make_unique<safex::SchedCore>(
        rig.kernel, *rig.hooks, sched_config));
    if (!cores.back()->Init().ok()) {
      report.failure = "sched core init failed";
      return report;
    }
  }
  for (u32 i = 0; i < config.tasks; ++i) {
    const u32 pid = 60000 + i;
    if (rig.kernel.tasks()
            .Create(rig.kernel.mem(), rig.kernel.objects(), pid, pid,
                    "traffic")
            .ok()) {
      const u32 home = pid % num_cpus;
      (void)rig.kernel.runqueue(home).Enqueue(
          pid, rig.kernel.clock().now_ns(home));
    }
  }

  // Churn tenant: control-plane update/delete traffic against a hash map.
  ebpf::MapSpec churn_spec;
  churn_spec.type = ebpf::MapType::kHash;
  churn_spec.key_size = 4;
  churn_spec.value_size = 8;
  churn_spec.max_entries = 64;
  churn_spec.name = "tg_churn";
  auto churn_fd = rig.bpf.maps().Create(churn_spec);
  if (!churn_fd.ok()) {
    report.failure = "churn map create failed";
    return report;
  }
  ebpf::Map* churn_map = rig.bpf.maps().Find(churn_fd.value()).value();

  // --- the stream -----------------------------------------------------------
  const bool smp = num_cpus > 1;
  if (smp) {
    rig.kernel.StartCpus();
  }
  simkern::CpuPool* pool = smp ? rig.kernel.cpus() : nullptr;
  std::vector<CpuAgg> aggs(num_cpus);
  for (CpuAgg& agg : aggs) {
    agg.latencies_ns.reserve(static_cast<usize>(config.events));
  }
  std::vector<u64> sim_start(num_cpus);
  for (u32 cpu = 0; cpu < num_cpus; ++cpu) {
    sim_start[cpu] = rig.kernel.clock().now_ns(cpu);
  }

  // Dispatch: on the pool in SMP mode (affinity is a preference — idle
  // CPUs steal), inline single-threaded otherwise.
  auto dispatch = [&](u32 cpu, std::function<void()> fn) {
    if (pool != nullptr) {
      pool->Submit(cpu % num_cpus, std::move(fn));
    } else {
      fn();
    }
  };
  auto fire_timed = [&rig, &aggs](safex::HookPoint hook,
                                  simkern::Addr ctx_addr, bool count_deny) {
    const u64 t0 = WallNowNs();
    auto fired = rig.hooks->Fire(hook, ctx_addr);
    const u64 t1 = WallNowNs();
    CpuAgg& agg = aggs[rig.kernel.current_cpu()];
    ++agg.fires;
    agg.latencies_ns.push_back(t1 - t0);
    if (count_deny && fired.ok() && fired.value().verdict != 0) {
      ++agg.lsm_denies;
    }
  };

  xbase::Rng rng(config.seed);
  const u64 wall_start = WallNowNs();
  u64 in_batch = 0;
  u32 sched_used = 0;  // each core ticks at most once per batch
  u32 rr_cpu = 0;
  for (u64 event = 0; event < config.events; ++event) {
    const u64 dice = rng.NextBelow(100);
    const u32 cpu = rr_cpu++ % num_cpus;
    if (dice < kPacketPct) {
      ++report.packet_events;
      dispatch(cpu, [&fire_timed, pkt_ctx] {
        fire_timed(safex::HookPoint::kXdpIngress, pkt_ctx, false);
      });
    } else if (dice < kPacketPct + kSchedPct) {
      // A core's per-instance state (ctx block, stats, watchdog) must not
      // be entered twice concurrently; one tick per core per batch, and
      // the barrier below separates batches.
      if (sched_used == num_cpus) {
        if (pool != nullptr) {
          pool->Drain();
        }
        in_batch = 0;
        sched_used = 0;
      }
      safex::SchedCore* core = cores[sched_used].get();
      ++sched_used;
      ++report.sched_events;
      dispatch(cpu, [core] { (void)core->Tick(); });
    } else if (dice < kPacketPct + kSchedPct + kLsmPct) {
      ++report.lsm_events;
      dispatch(cpu, [&fire_timed, lsm_ctx] {
        fire_timed(safex::HookPoint::kLsmFileOpen, lsm_ctx, true);
      });
    } else {
      ++report.churn_events;
      const u32 key = static_cast<u32>(rng.NextBelow(128));
      const bool insert = rng.NextBelow(3) != 0;
      dispatch(cpu, [&rig, churn_map, key, insert, event] {
        std::vector<u8> key_bytes(4);
        xbase::StoreLe32(key_bytes.data(), key);
        if (insert) {
          std::vector<u8> value(8);
          xbase::StoreLe64(value.data(), event);
          (void)churn_map->Update(rig.kernel, key_bytes, value,
                                  ebpf::kBpfAny);
        } else {
          (void)churn_map->Delete(rig.kernel, key_bytes);
        }
      });
    }
    if (++in_batch >= kBatchSize) {
      if (pool != nullptr) {
        pool->Drain();
      }
      in_batch = 0;
      sched_used = 0;
    }
  }
  if (pool != nullptr) {
    pool->Drain();
  }
  report.wall_elapsed_ns = WallNowNs() - wall_start;

  // --- quiescent-point accounting and end-of-run invariants -----------------
  report.per_cpu.resize(num_cpus);
  u64 max_advance = 0;
  for (u32 cpu = 0; cpu < num_cpus; ++cpu) {
    TrafficCpuStats& stats = report.per_cpu[cpu];
    stats.fires = aggs[cpu].fires;
    stats.sim_advanced_ns = rig.kernel.clock().now_ns(cpu) - sim_start[cpu];
    max_advance = std::max(max_advance, stats.sim_advanced_ns);
    if (pool != nullptr) {
      stats.executed = pool->executed_on(cpu);
      stats.stolen = pool->stolen_by(cpu);
    }
    report.lsm_denies += aggs[cpu].lsm_denies;
  }
  report.sim_elapsed_ns = max_advance;
  if (max_advance > 0) {
    report.events_per_sim_ms =
        static_cast<double>(config.events) * 1e6 /
        static_cast<double>(max_advance);
  }
  report.fire_latency = MergeTails(aggs);
  report.lock_totals = rig.kernel.locks().Totals();

  // The per-CPU counter sum: read every CPU's slot of every key.
  auto* pkt_map = dynamic_cast<ebpf::PercpuArrayMap*>(
      rig.bpf.maps().Find(pkt_fd.value()).value());
  for (u32 key = 0; key < pkt_spec.max_entries; ++key) {
    std::vector<u8> key_bytes(4);
    xbase::StoreLe32(key_bytes.data(), key);
    for (u32 cpu = 0; cpu < num_cpus; ++cpu) {
      auto addr = pkt_map->LookupAddrForCpu(key_bytes, cpu);
      if (addr.ok()) {
        const u64 slot = rig.kernel.mem().ReadU64(addr.value()).value_or(0);
        report.packet_count_sum += slot;
        if (key == 1) {
          report.per_cpu[cpu].packet_count = slot;
        }
      }
    }
  }

  if (smp) {
    rig.kernel.StopCpus();
  }

  if (rig.kernel.state() != simkern::KernelState::kRunning) {
    report.failure = "kernel not running after the stream";
  } else if (rig.kernel.rcu().AnyReader()) {
    report.failure = "RCU read-side critical section leaked";
  } else if (rig.kernel.locks().held_count_total() != 0) {
    report.failure = xbase::StrFormat(
        "%d lock(s) still held", rig.kernel.locks().held_count_total());
  } else if (!rig.supervisor
                  ->CheckConsistent(rig.kernel.clock().max_now_ns())
                  .ok()) {
    report.failure = "supervisor state inconsistent";
  } else if (rig.supervisor->failures() != 0) {
    report.failure = xbase::StrFormat(
        "honest tenants were charged %llu failure(s)",
        static_cast<unsigned long long>(rig.supervisor->failures()));
  } else if (report.packet_count_sum != report.packet_events) {
    report.failure = xbase::StrFormat(
        "per-CPU counter sum %llu != %llu packet fires (lost updates)",
        static_cast<unsigned long long>(report.packet_count_sum),
        static_cast<unsigned long long>(report.packet_events));
  }
  report.ok = report.failure.empty();
  return report;
}

}  // namespace analysis

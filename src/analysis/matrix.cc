#include "src/analysis/matrix.h"

namespace analysis {

const std::vector<SafetyProperty>& SafetyMatrix() {
  static const std::vector<SafetyProperty> kMatrix = {
      {"No arbitrary memory access", "Language safety",
       "Slice bounds check panics before memory is touched "
       "(SafexTest.SliceOutOfBoundsPanicsWithoutTouchingKernel)"},
      {"No arbitrary control-flow transfer", "Language safety",
       "the crate exposes no jump/branch primitive; extensions are invoked "
       "only through typed entry points, and callback references do not "
       "exist in the safex API"},
      {"Type safety", "Language safety",
       "typed handles: a map handle cannot stand in for a socket, a dead "
       "Slice cannot stand in for a buffer "
       "(SafexTest.SysBpfWrapperCannotExpressNullInsnsPointer)"},
      {"Safe resource management", "Runtime protection",
       "cleanup registry releases refs/locks/pool chunks on every exit "
       "path (SafexTest.CleanupRegistryReleasesLeakedSocket)"},
      {"Termination", "Runtime protection",
       "watchdog bounds every invocation "
       "(SafexTest.WatchdogTerminatesInfiniteLoop)"},
      {"Stack protection", "Runtime protection",
       "frame-depth guard terminates runaway recursion "
       "(SafexTest.StackGuardTerminatesRunawayRecursion)"},
      {"Fault containment / availability", "Supervision",
       "per-attachment circuit breaker attributes every failure, "
       "quarantines repeat crashers with exponential backoff and keeps "
       "the hook serving healthy attachments "
       "(bench/resilience_availability, supervisor_test, tools/chaos)"},
  };
  return kMatrix;
}

}  // namespace analysis

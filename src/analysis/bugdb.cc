#include "src/analysis/bugdb.h"

#include "src/ebpf/fault.h"

namespace analysis {

const std::vector<BugEntry>& BugDatabase() {
  // Counts per category/component follow Table 1 of the paper: 40 bugs in
  // 2021-2022, 18 in helpers, 22 in the verifier. Entries whose reference
  // begins with "study:" are from the paper's commit-log study without a
  // public identifier quoted in the text.
  static const std::vector<BugEntry> kBugs = {
      // Arbitrary read/write: 3 total (1 helper, 2 verifier).
      {"Arbitrary read/write", "Verifier", 2022, "CVE-2022-23222",
       std::string(ebpf::kFaultVerifierScalarBounds)},
      {"Arbitrary read/write", "Verifier", 2021, "CVE-2021-31440", ""},
      {"Arbitrary read/write", "Helper", 2021, "CVE-2021-29154 (JIT path)",
       std::string(ebpf::kFaultJitBranchOffByOne)},
      // Deadlock/Hang: 2 total (1 helper, 1 verifier).
      {"Deadlock/Hang", "Verifier", 2021, "study: spin_lock tracking gap",
       std::string(ebpf::kFaultVerifierSpinLock)},
      {"Deadlock/Hang", "Helper", 2022, "study: bpf_loop RCU stall (§2.2)",
       ""},
      // Integer overflow/underflow: 2 total (2 helper).
      {"Integer overflow/underflow", "Helper", 2022,
       "commit 87ac0d600943 (array map 32-bit offset)",
       std::string(ebpf::kFaultHelperArrayOverflow)},
      {"Integer overflow/underflow", "Helper", 2021,
       "study: ringbuf size wrap", ""},
      // Kernel pointer leak: 5 total (5 verifier).
      {"Kernel pointer leak", "Verifier", 2021,
       "commit a82fe085f344 (atomic cmpxchg r0)",
       std::string(ebpf::kFaultVerifierPtrLeak)},
      {"Kernel pointer leak", "Verifier", 2021,
       "commit 7d3baf0afa3a (atomic fetch)", ""},
      {"Kernel pointer leak", "Verifier", 2021, "CVE-2021-45402", ""},
      {"Kernel pointer leak", "Verifier", 2022,
       "commit 3844d153a41a (bounds propagation)", ""},
      {"Kernel pointer leak", "Verifier", 2022,
       "commit f1db20814af5 (release_reference type)", ""},
      // Memory leak: 2 total (2 verifier).
      {"Memory leak", "Verifier", 2021, "study: state bookkeeping leak",
       std::string(ebpf::kFaultVerifierStateLeak)},
      {"Memory leak", "Verifier", 2022, "study: local storage charge leak",
       ""},
      // Null-pointer dereference: 7 total (6 helper, 1 verifier).
      {"Null-pointer dereference", "Helper", 2021,
       "commit 1a9c72ad4c26 (task_storage null owner)",
       std::string(ebpf::kFaultHelperTaskStorageNull)},
      {"Null-pointer dereference", "Helper", 2022,
       "CVE-2022-2785 (bpf_sys_bpf union pointer, §2.2)", ""},
      {"Null-pointer dereference", "Helper", 2021,
       "study: sk storage owner check", ""},
      {"Null-pointer dereference", "Helper", 2022,
       "study: perf_event_output ctx check", ""},
      {"Null-pointer dereference", "Helper", 2022,
       "study: tunnel key device check", ""},
      {"Null-pointer dereference", "Helper", 2021,
       "study: fib_lookup params check", ""},
      {"Null-pointer dereference", "Verifier", 2022,
       "study: insn aux state deref", ""},
      // Out-of-bound access: 7 total (1 helper, 6 verifier).
      {"Out-of-bound access", "Verifier", 2022,
       "commit 3844d153a41a (jmp32 bounds)",
       std::string(ebpf::kFaultVerifierJmp32Bounds)},
      {"Out-of-bound access", "Verifier", 2021, "study: var_off stack read",
       ""},
      {"Out-of-bound access", "Verifier", 2021,
       "study: ringbuf_reserve size check", ""},
      {"Out-of-bound access", "Verifier", 2022, "study: dynptr bounds", ""},
      {"Out-of-bound access", "Verifier", 2022,
       "study: map_value with off spill", ""},
      {"Out-of-bound access", "Verifier", 2021, "study: alu32 truncation",
       ""},
      {"Out-of-bound access", "Helper", 2022, "study: snprintf fmt walk",
       ""},
      // Reference count leak: 1 total (1 helper).
      {"Reference count leak", "Helper", 2021,
       "commit 06ab134ce8ec (bpf_get_task_stack)",
       std::string(ebpf::kFaultHelperTaskStackLeak)},
      // Use-after-free: 2 total (1 helper, 1 verifier).
      {"Use-after-free", "Verifier", 2022,
       "commit fb4e3b33e3e7 (inline_bpf_loop)",
       std::string(ebpf::kFaultVerifierLoopInlineUaf)},
      {"Use-after-free", "Helper", 2022, "study: timer callback teardown",
       ""},
      // Misc: 9 total (5 helper, 4 verifier).
      {"Misc", "Helper", 2022,
       "commit 3046a827316c (sk lookup request_sock leak)",
       std::string(ebpf::kFaultHelperSkLookupLeak)},
      {"Misc", "Helper", 2021, "study: probe_read_user fault window", ""},
      {"Misc", "Helper", 2021, "study: get_stackid flag confusion", ""},
      {"Misc", "Helper", 2022, "study: skb_adjust_room mac header", ""},
      {"Misc", "Helper", 2022, "study: redirect map flush race", ""},
      {"Misc", "Verifier", 2021, "study: subprog stack depth accounting",
       ""},
      {"Misc", "Verifier", 2021, "study: precision mark backtracking", ""},
      {"Misc", "Verifier", 2022, "study: atomic op alignment", ""},
      {"Misc", "Verifier", 2022, "study: btf id resolution", ""},
  };
  return kBugs;
}

std::map<std::string, CategoryCount> BugCensus() {
  std::map<std::string, CategoryCount> census;
  for (const BugEntry& bug : BugDatabase()) {
    CategoryCount& row = census[bug.category];
    ++row.total;
    if (bug.component == "Helper") {
      ++row.helper;
    } else {
      ++row.verifier;
    }
    CategoryCount& total = census["Total"];
    ++total.total;
    if (bug.component == "Helper") {
      ++total.helper;
    } else {
      ++total.verifier;
    }
  }
  return census;
}

std::vector<BugEntry> ModeledBugs() {
  std::vector<BugEntry> modeled;
  for (const BugEntry& bug : BugDatabase()) {
    if (!bug.fault_id.empty()) {
      modeled.push_back(bug);
    }
  }
  return modeled;
}

}  // namespace analysis

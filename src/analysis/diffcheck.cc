#include "src/analysis/diffcheck.h"

#include <cmath>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>

#include "src/analysis/workloads.h"
#include "src/ebpf/loader.h"
#include "src/staticcheck/check.h"
#include "src/xbase/strfmt.h"

namespace analysis {

namespace {

using xbase::StrFormat;
using xbase::u32;

// A minimal stack for one differential cell: kernel + BPF + loader. Fresh
// per cell so injected faults and created maps cannot bleed across rows.
struct Cell {
  Cell() : kernel(Config()), bpf(kernel), loader(bpf) {
    (void)kernel.BootstrapWorkload();
  }

  static simkern::KernelConfig Config() {
    simkern::KernelConfig config;
    config.unprivileged_bpf_disabled = false;  // let the exploits try
    return config;
  }

  xbase::Result<int> CreateArrayMap(const std::string& name, u32 value_size,
                                    u32 entries) {
    ebpf::MapSpec spec;
    spec.type = ebpf::MapType::kArray;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = entries;
    spec.name = name;
    return bpf.maps().Create(spec);
  }

  xbase::Result<int> CreateTaskStorageMap(const std::string& name,
                                          u32 value_size) {
    ebpf::MapSpec spec;
    spec.type = ebpf::MapType::kTaskStorage;
    spec.key_size = 4;
    spec.value_size = value_size;
    spec.max_entries = 64;
    spec.name = name;
    return bpf.maps().Create(spec);
  }

  simkern::Kernel kernel;
  ebpf::Bpf bpf;
  ebpf::Loader loader;
};

// One differential case: a fault id plus a builder that sets up maps on
// the cell and returns the exploit bytecode.
struct DiffCase {
  std::string_view fault_id;  // empty = no injectable defect (interface bug)
  std::string_view exploit;
  std::string_view bug_class;
  bool privileged = true;
  std::function<xbase::Result<ebpf::Program>(Cell&)> build;
};

std::vector<DiffCase> Cases() {
  std::vector<DiffCase> cases;
  cases.push_back(
      {ebpf::kFaultVerifierScalarBounds, "arbitrary-read",
       "Arbitrary read/write", true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 8, 4));
         return BuildArbitraryReadExploit(fd, 4096);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierPtrLeak, "ptr-leak", "Kernel pointer leak",
       /*privileged=*/false, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 8, 4));
         return BuildPtrLeakExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierJmp32Bounds, "jmp32-oob", "Out-of-bound access",
       true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 64, 4));
         return BuildJmp32BoundsExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierAlu32BoundsTrunc, "alu32-trunc-oob",
       "Out-of-bound access", true,
       [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 16, 1));
         return BuildAlu32TruncExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierSignExtConfusion, "sign-ext-oob",
       "Out-of-bound access", true,
       [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 16, 1));
         return BuildSignExtExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierJgtOffByOne, "jgt-off-by-one",
       "Out-of-bound access", true,
       [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 16, 1));
         return BuildJgtOffByOneExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierTnumMulPrecision, "tnum-mul-oob",
       "Out-of-bound access", true,
       [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("vic", 16, 1));
         return BuildTnumMulExploit(fd);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierSpinLock, "double-spin-lock", "Deadlock/Hang",
       true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("locked", 16, 1));
         return BuildDoubleSpinLock(fd);
       }});
  cases.push_back({ebpf::kFaultVerifierRefTracking, "sk-lookup-no-release",
                   "Reference count leak", true, [](Cell&) {
                     return BuildSkLookupNoRelease();
                   }});
  cases.push_back(
      {ebpf::kFaultVerifierLoopInlineUaf, "nested-loop-stall",
       "Use-after-free", true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("m", 8, 4));
         return BuildNestedLoopStall(fd, 1, 4);
       }});
  cases.push_back(
      {ebpf::kFaultVerifierStateLeak, "branch-diamonds", "Memory leak",
       true, [](Cell&) { return BuildBranchDiamonds(12); }});
  cases.push_back(
      {ebpf::kFaultHelperTaskStorageNull, "task-storage-null-owner",
       "Null-pointer dereference", true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd,
                             cell.CreateTaskStorageMap("storage", 8));
         return BuildTaskStorageNullOwner(fd);
       }});
  cases.push_back({ebpf::kFaultJitBranchOffByOne, "jit-hijack-victim",
                   "Use-after-free", true,
                   [](Cell&) { return BuildJitHijackVictim(); }});
  cases.push_back({ebpf::kFaultHelperSkLookupLeak, "sk-lookup-correct",
                   "Memory leak", true,
                   [](Cell&) { return BuildSkLookupWithRelease(); }});
  cases.push_back({ebpf::kFaultHelperTaskStackLeak, "task-stack-err-path",
                   "Reference count leak", true,
                   [](Cell&) { return BuildGetTaskStackErrorPath(); }});
  cases.push_back(
      {ebpf::kFaultHelperArrayOverflow, "array-index-overflow",
       "Integer overflow/underflow", true, [](Cell& cell) -> xbase::Result<ebpf::Program> {
         XB_ASSIGN_OR_RETURN(int fd, cell.CreateArrayMap("arr", 8, 4));
         return BuildArrayOverflowExploit(fd, 0x40000000u);
       }});
  // The paper's §2.2 limitation: no defect injected anywhere — the NULL
  // pointer rides inside the bpf_attr union where neither the verifier
  // nor any bytecode analysis can see it.
  cases.push_back({std::string_view{}, "sys-bpf-null-crash", "Interface",
                   true, [](Cell&) { return BuildSysBpfNullCrash(); }});
  return cases;
}

bool LoadAccepts(const DiffCase& diff_case, bool inject) {
  Cell cell;
  if (inject && !diff_case.fault_id.empty()) {
    cell.bpf.faults().Inject(diff_case.fault_id);
  }
  auto prog = diff_case.build(cell);
  if (!prog.ok()) {
    return false;
  }
  ebpf::LoadOptions opts;
  opts.privileged = diff_case.privileged;
  return cell.loader.Load(prog.value(), opts).ok();
}

}  // namespace

xbase::Result<DiffReport> RunDiffCheck() {
  DiffReport report;
  for (const DiffCase& diff_case : Cases()) {
    DiffRow row;
    row.fault_id = diff_case.fault_id.empty()
                       ? "-"
                       : std::string(diff_case.fault_id);
    row.exploit = std::string(diff_case.exploit);
    row.bug_class = std::string(diff_case.bug_class);

    row.clean_verifier_rejects = !LoadAccepts(diff_case, /*inject=*/false);
    row.buggy_verifier_accepts = LoadAccepts(diff_case, /*inject=*/true);

    // The independent analysis, on the same bytecode the verifier saw.
    Cell cell;
    XB_ASSIGN_OR_RETURN(ebpf::Program prog, diff_case.build(cell));
    staticcheck::CheckOptions copts;
    copts.maps = &cell.bpf.maps();
    copts.helpers = &cell.bpf.helpers();
    copts.callgraph = &cell.kernel.callgraph();
    XB_ASSIGN_OR_RETURN(staticcheck::Report analysis,
                        staticcheck::RunChecks(prog, copts));
    for (const staticcheck::Finding& finding : analysis.findings) {
      if (finding.severity == staticcheck::Severity::kError) {
        ++row.staticcheck_errors;
        if (row.first_rule.empty()) {
          row.first_rule = finding.rule;
        }
      } else {
        ++row.staticcheck_warnings;
      }
    }
    row.caught = row.staticcheck_errors > 0;
    if (row.divergence_caught()) {
      ++report.caught;
    } else if (row.buggy_verifier_accepts && !row.caught) {
      ++report.missed;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string FormatDiffTable(const DiffReport& report,
                            bool machine_readable) {
  std::string out = StrFormat(
      "%-34s %-24s %7s %7s %7s  %s\n", "injected defect", "exploit",
      "cleanV", "buggyV", "caught", "first staticcheck rule");
  out += std::string(106, '-') + "\n";
  for (const DiffRow& row : report.rows) {
    out += StrFormat(
        "%-34s %-24s %7s %7s %7s  %s\n", row.fault_id.c_str(),
        row.exploit.c_str(),
        row.clean_verifier_rejects ? "reject" : "accept",
        row.buggy_verifier_accepts ? "accept" : "reject",
        row.caught ? "YES" : "no",
        row.first_rule.empty() ? "-" : row.first_rule.c_str());
  }
  out += std::string(106, '-') + "\n";
  out += StrFormat(
      "mis-verifications caught by the independent analysis: %zu; "
      "admitted and missed: %zu\n",
      report.caught, report.missed);
  if (machine_readable) {
    for (const DiffRow& row : report.rows) {
      out += StrFormat(
          "DIFFCHECK-TSV\t%s\t%s\t%s\t%d\t%d\t%zu\t%zu\t%s\t%d\n",
          row.fault_id.c_str(), row.exploit.c_str(),
          row.bug_class.c_str(), row.clean_verifier_rejects ? 1 : 0,
          row.buggy_verifier_accepts ? 1 : 0, row.staticcheck_errors,
          row.staticcheck_warnings,
          row.first_rule.empty() ? "-" : row.first_rule.c_str(),
          row.divergence_caught() ? 1 : 0);
    }
  }
  return out;
}

RangeCompareResult CompareRangeTraces(
    const ebpf::RangeTrace& staticcheck_trace,
    const ebpf::RangeTrace& verifier_trace,
    const std::vector<bool>* executed_pcs) {
  RangeCompareResult result;
  const xbase::usize len = staticcheck_trace.per_pc.size() <
                                   verifier_trace.per_pc.size()
                               ? staticcheck_trace.per_pc.size()
                               : verifier_trace.per_pc.size();
  for (xbase::usize pc = 0; pc < len; ++pc) {
    if (executed_pcs != nullptr &&
        (pc >= executed_pcs->size() || !(*executed_pcs)[pc])) {
      continue;
    }
    for (u32 reg = 0; reg < ebpf::kNumRegs; ++reg) {
      const ebpf::RegClaim& sc = staticcheck_trace.per_pc[pc][reg];
      const ebpf::RegClaim& ver = verifier_trace.per_pc[pc][reg];
      if (sc.kind != ebpf::RegClaim::Kind::kScalar ||
          ver.kind != ebpf::RegClaim::Kind::kScalar) {
        continue;
      }
      ++result.points;
      // Widths saturate at u64 max; +1 in double space keeps the log
      // finite and maps equal intervals to exactly log-ratio 0.
      result.width_ratio_sum +=
          std::log2(static_cast<double>(sc.Width()) + 1.0) -
          std::log2(static_cast<double>(ver.Width()) + 1.0);
      if (ebpf::ClaimsDisjoint(sc, ver)) {
        ++result.disjoint;
        if (result.disagreements.size() < 32) {
          result.disagreements.push_back(
              {static_cast<u32>(pc), static_cast<xbase::u8>(reg), sc, ver});
        }
      }
    }
  }
  return result;
}

RelCompareResult CompareRelTraces(const ebpf::RangeTrace& staticcheck_trace,
                                  const ebpf::RangeTrace& verifier_trace,
                                  const std::vector<bool>* executed_pcs) {
  RelCompareResult result;
  const xbase::usize len =
      std::min(staticcheck_trace.rel_per_pc.size(),
               verifier_trace.rel_per_pc.size());
  for (xbase::usize pc = 0; pc < len; ++pc) {
    if (executed_pcs != nullptr &&
        (pc >= executed_pcs->size() || !(*executed_pcs)[pc])) {
      continue;
    }
    const ebpf::RelClaims& sc = staticcheck_trace.rel_per_pc[pc];
    const ebpf::RelClaims& ver = verifier_trace.rel_per_pc[pc];
    if (!sc.seen || !ver.seen) {
      continue;
    }
    for (int i = 0; i < ebpf::kRelRegs; ++i) {
      for (int j = 0; j < ebpf::kRelRegs; ++j) {
        if (i == j) {
          continue;
        }
        const xbase::s64 fwd = sc.At(i, j);   // ri - rj <= fwd
        const xbase::s64 rev = ver.At(j, i);  // rj - ri <= rev
        if (fwd == ebpf::kRelInf || rev == ebpf::kRelInf) {
          continue;
        }
        ++result.points;
        if (ebpf::RelBoundsContradict(fwd, rev)) {
          ++result.contradictions;
          if (result.disagreements.size() < 32) {
            result.disagreements.push_back({static_cast<u32>(pc),
                                            static_cast<xbase::u8>(i),
                                            static_cast<xbase::u8>(j), fwd,
                                            rev});
          }
        }
      }
    }
  }
  return result;
}

}  // namespace analysis

// The differential oracle: for every injectable defect in ebpf/fault.h,
// load the paired exploit under (a) the clean verifier and (b) the broken
// one, then run the verifier-independent staticcheck analysis on the same
// bytecode. A row where the buggy verifier says "safe" but staticcheck
// flags the program is a mis-verification caught by cross-checking — the
// "Table 1, caught by independent analysis" artifact. Rows staticcheck
// cannot catch (helper-internal bugs, verifier-process bugs, the sys_bpf
// union) quantify the paper's point that program analysis alone cannot
// carry the safety argument.
#pragma once

#include <string>
#include <vector>

#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace analysis {

struct DiffRow {
  std::string fault_id;       // injected defect ("-" for the sys_bpf row)
  std::string exploit;        // workload name
  std::string bug_class;      // Table 1 category
  bool clean_verifier_rejects = false;
  bool buggy_verifier_accepts = false;
  xbase::usize staticcheck_errors = 0;
  xbase::usize staticcheck_warnings = 0;
  std::string first_rule;     // first error-severity rule, if any
  bool caught = false;        // staticcheck reports >= 1 error finding
  // True when this row demonstrates the oracle working: the broken
  // verifier admitted the exploit and staticcheck flagged it anyway.
  bool divergence_caught() const {
    return buggy_verifier_accepts && caught;
  }
};

struct DiffReport {
  std::vector<DiffRow> rows;
  xbase::usize caught = 0;      // rows with divergence_caught()
  xbase::usize missed = 0;      // buggy verifier accepts, staticcheck silent
};

// Runs the whole matrix. Builds a fresh kernel + BPF stack per cell so
// injected faults cannot bleed across rows.
xbase::Result<DiffReport> RunDiffCheck();

// Human-readable table; when `machine_readable` also appends one
// "DIFFCHECK-TSV" line per row for scripts to scrape.
std::string FormatDiffTable(const DiffReport& report, bool machine_readable);

}  // namespace analysis

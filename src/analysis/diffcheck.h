// The differential oracle: for every injectable defect in ebpf/fault.h,
// load the paired exploit under (a) the clean verifier and (b) the broken
// one, then run the verifier-independent staticcheck analysis on the same
// bytecode. A row where the buggy verifier says "safe" but staticcheck
// flags the program is a mis-verification caught by cross-checking — the
// "Table 1, caught by independent analysis" artifact. Rows staticcheck
// cannot catch (helper-internal bugs, verifier-process bugs, the sys_bpf
// union) quantify the paper's point that program analysis alone cannot
// carry the safety argument.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "src/ebpf/rangetrace.h"
#include "src/xbase/status.h"
#include "src/xbase/types.h"

namespace analysis {

struct DiffRow {
  std::string fault_id;       // injected defect ("-" for the sys_bpf row)
  std::string exploit;        // workload name
  std::string bug_class;      // Table 1 category
  bool clean_verifier_rejects = false;
  bool buggy_verifier_accepts = false;
  xbase::usize staticcheck_errors = 0;
  xbase::usize staticcheck_warnings = 0;
  std::string first_rule;     // first error-severity rule, if any
  bool caught = false;        // staticcheck reports >= 1 error finding
  // True when this row demonstrates the oracle working: the broken
  // verifier admitted the exploit and staticcheck flagged it anyway.
  bool divergence_caught() const {
    return buggy_verifier_accepts && caught;
  }
};

struct DiffReport {
  std::vector<DiffRow> rows;
  xbase::usize caught = 0;      // rows with divergence_caught()
  xbase::usize missed = 0;      // buggy verifier accepts, staticcheck silent
};

// Runs the whole matrix. Builds a fresh kernel + BPF stack per cell so
// injected faults cannot bleed across rows.
xbase::Result<DiffReport> RunDiffCheck();

// Human-readable table; when `machine_readable` also appends one
// "DIFFCHECK-TSV" line per row for scripts to scrape.
std::string FormatDiffTable(const DiffReport& report, bool machine_readable);

// ---- instruction-by-instruction range comparison ---------------------------

// One (pc, reg) where the two analyses' scalar claims share no value: a
// proof that at least one of them is wrong about this program.
struct RangeDisagreement {
  xbase::u32 pc = 0;
  xbase::u8 reg = 0;
  ebpf::RegClaim staticcheck;
  ebpf::RegClaim verifier;
};

struct RangeCompareResult {
  xbase::u64 points = 0;    // (pc, reg) pairs where both claims are scalar
  xbase::u64 disjoint = 0;  // of those, provably contradictory pairs
  // Precision metric: sum over compared points of
  // log2((staticcheck width + 1) / (verifier width + 1)). Kept in log
  // space so the mean is geometric — one unknown-vs-constant pair (ratio
  // 2^64) must not drown every exact match.
  double width_ratio_sum = 0;
  std::vector<RangeDisagreement> disagreements;  // first 32, for reports

  // Geometric mean ratio: 1.0 means the path-insensitive intervals match
  // the verifier's exactly; 2.0 means twice as wide on a typical point.
  double MeanWidthRatio() const {
    return points == 0
               ? 1.0
               : std::exp2(width_ratio_sum / static_cast<double>(points));
  }
};

// Compares staticcheck's range trace against the verifier's, per
// instruction and register. Claims only count where both analyses visited
// the pc and agree the register holds a scalar; everything else (pointer,
// dead code one analysis pruned, ld_imm64 second slots) is skipped.
// `executed_pcs`, when non-null, restricts comparison to pcs some concrete
// execution actually reached: claims over never-executed code are vacuous
// (both analyses may soundly describe the empty set of states in disjoint
// ways), so only disagreements at reached pcs are real contradictions.
RangeCompareResult CompareRangeTraces(const ebpf::RangeTrace& staticcheck_trace,
                                      const ebpf::RangeTrace& verifier_trace,
                                      const std::vector<bool>* executed_pcs =
                                          nullptr);

// ---- relational (difference-bound) claim comparison ------------------------

// One (pc, i, j) where staticcheck claims ri - rj <= static_bound while the
// verifier claims rj - ri <= verifier_rev_bound with static_bound +
// verifier_rev_bound < 0: no register valuation satisfies both, so at
// least one relational analysis is wrong about this program.
struct RelDisagreement {
  xbase::u32 pc = 0;
  xbase::u8 i = 0;
  xbase::u8 j = 0;
  xbase::s64 static_bound = 0;        // staticcheck: ri - rj <= this
  xbase::s64 verifier_rev_bound = 0;  // verifier: rj - ri <= this
};

struct RelCompareResult {
  xbase::u64 points = 0;          // ordered pairs with both sides finite
  xbase::u64 contradictions = 0;  // of those, provably contradictory
  std::vector<RelDisagreement> disagreements;  // first 32, for reports
};

// Compares per-pc difference-bound claims the same way CompareRangeTraces
// compares intervals: only at pcs both analyses visited (and, when
// `executed_pcs` is given, some concrete execution reached), pairing each
// staticcheck bound on ri - rj with the verifier's reverse bound on
// rj - ri and flagging pairs whose sum is negative.
RelCompareResult CompareRelTraces(const ebpf::RangeTrace& staticcheck_trace,
                                  const ebpf::RangeTrace& verifier_trace,
                                  const std::vector<bool>* executed_pcs =
                                      nullptr);

}  // namespace analysis
